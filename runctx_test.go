package chaos

import (
	"context"
	"errors"
	"testing"
)

// TestRunPreparedContextCanceled: a canceled context stops the engine
// at the first iteration boundary and surfaces as context.Canceled (so
// the job service can tell cancellation from failure). Pre-canceling
// makes the test deterministic — the engine must notice at its first
// poll, not depend on timing.
func TestRunPreparedContextCanceled(t *testing.T) {
	edges := GenerateRMAT(6, false, 1)
	opt := Options{ChunkBytes: 1 << 10, LatencyScale: 1.0 / 4096, Seed: 1}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, rep, err := RunPreparedContext(ctx, "PR", edges, 1<<6, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil || rep != nil {
		t.Error("canceled run must not return partial results")
	}
}

// TestRunPreparedContextBackground: a background context changes
// nothing — bit-identical to the context-free entry point.
func TestRunPreparedContextBackground(t *testing.T) {
	edges := GenerateRMAT(6, false, 1)
	opt := Options{ChunkBytes: 1 << 10, LatencyScale: 1.0 / 4096, Seed: 1}
	want, wantRep, err := RunPrepared("PR", edges, 1<<6, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, gotRep, err := RunPreparedContext(context.Background(), "PR", edges, 1<<6, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Summary["rank_sum"] != want.Summary["rank_sum"] || gotRep.SimulatedSeconds != wantRep.SimulatedSeconds {
		t.Errorf("context run drifted: %v/%v vs %v/%v",
			got.Summary, gotRep.SimulatedSeconds, want.Summary, wantRep.SimulatedSeconds)
	}
}
