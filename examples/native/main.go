// Native: run PageRank on the same R-MAT graph twice — once under the
// discrete-event simulation (the paper's evaluation plane, reporting
// virtual seconds) and once on the native execution plane (goroutine
// groups at host speed, reporting wall-clock) — and print the two
// reports side by side. The ranks agree up to floating-point fold order;
// only the clocks differ (see DESIGN.md, "Two planes, one protocol").
package main

import (
	"fmt"
	"log"
	"math"

	"chaos"
)

func main() {
	// A scale-13 R-MAT graph: 8192 vertices, 131072 edges, heavy skew.
	edges := chaos.GenerateRMAT(13, false, 42)
	opt := chaos.Options{
		Machines:   8,
		ChunkBytes: 64 << 10,
		// Shrinking the 4 MB chunk by 64x: scale the fixed latencies
		// to match (see DESIGN.md). The native plane ignores latency
		// modeling entirely — it has no modeled hardware.
		LatencyScale: 1.0 / 64,
		Seed:         7,
	}

	simRanks, simRep, err := chaos.RunPageRank(edges, 0, 5, opt)
	if err != nil {
		log.Fatal(err)
	}

	opt.Engine = chaos.EngineNative
	natRanks, natRep, err := chaos.RunPageRank(edges, 0, 5, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("PageRank over %d edges on %d machines, both planes\n\n", len(edges), simRep.Machines)
	fmt.Printf("%-22s %12s %12s\n", "", "sim (DES)", "native")
	fmt.Printf("%-22s %12s %12s\n", "clock",
		fmt.Sprintf("%.3fs virt", simRep.SimulatedSeconds),
		fmt.Sprintf("%.3fs wall", natRep.WallSeconds))
	fmt.Printf("%-22s %12d %12d\n", "iterations", simRep.Iterations, natRep.Iterations)
	fmt.Printf("%-22s %11.1fM %11.1fM\n", "bytes moved",
		float64(simRep.BytesRead+simRep.BytesWritten)/1e6,
		float64(natRep.BytesRead+natRep.BytesWritten)/1e6)
	fmt.Printf("%-22s %12d %12d\n", "steals accepted", simRep.StealsAccepted, natRep.StealsAccepted)

	// The simulated clock models a whole rack of SSDs and NICs; the
	// native run is this host doing the same protocol work in memory.
	// Comparing them is rack-vs-laptop, not a validation claim — the
	// point is that the native plane finishes in host wall-clock time
	// with the simulator's thread out of the way.
	var maxDiff float64
	for i := range simRanks {
		d := math.Abs(float64(simRanks[i] - natRanks[i]))
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("\nmax |sim - native| rank difference: %.2g (float fold order only)\n", maxDiff)
}
