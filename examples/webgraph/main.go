// Webgraph: analyze a synthetic web crawl (the paper's Data Commons
// stand-in) on a simulated 16-machine cluster with HDD storage, the
// configuration of the paper's Figure 9: breadth-first search from a portal
// page, connectivity, and the conductance of a hash partition of the pages.
package main

import (
	"fmt"
	"log"

	"chaos"
)

func main() {
	const pages = 1 << 14
	edges := chaos.GenerateWebGraph(pages, 2014)
	opt := chaos.Options{
		Machines:     16,
		Storage:      chaos.HDD,
		ChunkBytes:   16 << 10,
		LatencyScale: 16.0 / 4096,
		Seed:         3,
	}

	fmt.Printf("synthetic web crawl: %d pages, %d hyperlinks, 16 machines, HDD\n\n", pages, len(edges))

	levels, bfsRep, err := chaos.RunBFS(edges, pages, 0, opt)
	if err != nil {
		log.Fatal(err)
	}
	var reached, maxDepth uint32
	hist := map[uint32]int{}
	for _, l := range levels {
		if l == ^uint32(0) {
			continue
		}
		reached++
		hist[l]++
		if l > maxDepth {
			maxDepth = l
		}
	}
	fmt.Printf("BFS from page 0: reached %d/%d pages, depth %d, %.3fs simulated\n",
		reached, pages, maxDepth, bfsRep.SimulatedSeconds)
	for d := uint32(0); d <= maxDepth && d < 8; d++ {
		fmt.Printf("  depth %d: %6d pages\n", d, hist[d])
	}

	labels, _, err := chaos.RunWCC(edges, pages, opt)
	if err != nil {
		log.Fatal(err)
	}
	comps := map[uint32]int{}
	for _, l := range labels {
		comps[l]++
	}
	largest := 0
	for _, c := range comps {
		if c > largest {
			largest = c
		}
	}
	fmt.Printf("\nconnectivity: %d weakly connected components, largest holds %.1f%% of pages\n",
		len(comps), 100*float64(largest)/float64(pages))

	cond, condRep, err := chaos.RunConductance(edges, pages, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconductance of hash-split page subset: %.4f (single pass, %.3fs simulated)\n",
		cond, condRep.SimulatedSeconds)
}
