// Shortestpaths: single-source shortest paths over a weighted R-MAT graph
// with fault tolerance enabled — the run checkpoints vertex state at
// iteration boundaries and survives an injected transient machine failure
// (§6.6), recovering from the last checkpoint.
package main

import (
	"fmt"
	"log"

	"chaos"
)

func main() {
	edges := chaos.GenerateRMAT(12, true, 99)
	const n = 1 << 12

	opt := chaos.Options{
		Machines:        4,
		ChunkBytes:      32 << 10,
		LatencyScale:    32.0 / 4096,
		CheckpointEvery: 2,
		Seed:            5,
	}

	dists, rep, err := chaos.RunSSSP(edges, n, 0, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SSSP over %d weighted edges on %d machines: %.3fs simulated, %d iterations\n",
		len(edges), rep.Machines, rep.SimulatedSeconds, rep.Iterations)
	fmt.Printf("checkpoint I/O: %.2f MB\n", float64(rep.CheckpointBytes)/1e6)
	printHistogram(dists)

	// The same run with a transient failure injected mid-computation:
	// the cluster rolls back to the last checkpoint and finishes with
	// identical results.
	opt.FailAtIteration = 3
	dists2, rep2, err := chaos.RunSSSP(edges, n, 0, opt)
	if err != nil {
		log.Fatal(err)
	}
	same := true
	for i := range dists {
		if dists[i] != dists2[i] {
			same = false
			break
		}
	}
	fmt.Printf("\nwith failure at iteration %d: %d recovery, results identical: %v\n",
		3, rep2.Recoveries, same)
}

func printHistogram(dists []float32) {
	const buckets = 8
	var maxD float32
	reached := 0
	for _, d := range dists {
		if d == chaosInf {
			continue
		}
		reached++
		if d > maxD {
			maxD = d
		}
	}
	fmt.Printf("reached %d/%d vertices, max distance %.3f\n", reached, len(dists), maxD)
	if maxD == 0 {
		return
	}
	hist := make([]int, buckets)
	for _, d := range dists {
		if d == chaosInf {
			continue
		}
		b := int(d / maxD * (buckets - 1))
		hist[b]++
	}
	for b, c := range hist {
		fmt.Printf("  dist <= %6.3f: %6d vertices\n", maxD*float32(b+1)/buckets, c)
	}
}

// chaosInf mirrors the engine's unreachable-distance sentinel.
const chaosInf = float32(3.4028234663852886e+38)
