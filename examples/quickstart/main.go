// Quickstart: run PageRank on an R-MAT graph over an 8-machine simulated
// Chaos cluster and print the top-ranked vertices plus the run report.
package main

import (
	"fmt"
	"log"
	"sort"

	"chaos"
)

func main() {
	// A scale-13 R-MAT graph: 8192 vertices, 131072 edges, heavy skew.
	edges := chaos.GenerateRMAT(13, false, 42)

	ranks, report, err := chaos.RunPageRank(edges, 0, 5, chaos.Options{
		Machines:   8,
		ChunkBytes: 64 << 10,
		// Shrinking the 4 MB chunk by 64x: scale the fixed latencies
		// to match (see DESIGN.md).
		LatencyScale: 1.0 / 64,
		Seed:         7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("PageRank over %d edges on %d machines\n", len(edges), report.Machines)
	fmt.Printf("simulated runtime: %.3fs (%.3fs pre-processing), %d iterations\n",
		report.SimulatedSeconds, report.PreprocessSeconds, report.Iterations)
	fmt.Printf("device I/O: %.1f MB read, %.1f MB written, utilization %.1f%%\n",
		float64(report.BytesRead)/1e6, float64(report.BytesWritten)/1e6, 100*report.DeviceUtilization)
	fmt.Printf("work stealing: %d accepted / %d rejected proposals\n\n",
		report.StealsAccepted, report.StealsRejected)

	type vr struct {
		v    int
		rank float32
	}
	top := make([]vr, len(ranks))
	for v, r := range ranks {
		top[v] = vr{v, r}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].rank > top[j].rank })
	fmt.Println("top 10 vertices by rank:")
	for _, t := range top[:10] {
		fmt.Printf("  vertex %5d  rank %8.2f\n", t.v, t.rank)
	}
}
