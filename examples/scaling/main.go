// Scaling: a miniature version of the paper's headline weak-scaling claim
// (§9.1): double the graph with every doubling of the cluster and watch the
// runtime stay nearly flat — on 32 machines the paper solves a 32x larger
// problem in only 1.61x the single-machine time on average.
package main

import (
	"fmt"
	"log"

	"chaos"
)

func main() {
	const baseScale = 10
	fmt.Println("weak scaling, BFS on R-MAT (graph doubles with machine count)")
	fmt.Printf("%-9s %-9s %12s %12s %12s\n", "machines", "scale", "edges", "runtime(s)", "normalized")

	var base float64
	for _, m := range []int{1, 2, 4, 8, 16, 32} {
		scale := baseScale
		for 1<<uint(scale-baseScale) < m {
			scale++
		}
		edges := chaos.GenerateRMAT(scale, false, 42)
		n := uint64(1) << uint(scale)
		_, rep, err := chaos.RunBFS(edges, n, 0, chaos.Options{
			Machines:       m,
			ChunkBytes:     1 << 10,
			LatencyScale:   1.0 / 4096,
			MemBudgetBytes: int64(n) * 8 / int64(2*m),
			Seed:           1,
		})
		if err != nil {
			log.Fatal(err)
		}
		if m == 1 {
			base = rep.SimulatedSeconds
		}
		fmt.Printf("%-9d %-9d %12d %12.4f %11.2fx\n",
			m, scale, len(edges), rep.SimulatedSeconds, rep.SimulatedSeconds/base)
	}
	fmt.Println("\npaper: 32x the data on 32 machines costs only ~1.61x the time")
}
