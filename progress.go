package chaos

import (
	"context"

	"chaos/internal/core"
)

// Progress is a live snapshot of a running simulation, reported at each
// iteration boundary — the same boundary cooperative cancellation is
// observed at. Subscribing is guaranteed not to perturb the run: the
// engine invokes the callback with already-settled counters and the
// callback cannot reach the run's RNG, clock or event order, so
// results, reports and the virtual clock are bit-identical with and
// without a subscriber (see DESIGN.md and TestProgressDoesNotPerturbRun).
type Progress struct {
	// Iterations counts completed iterations (1 at the first boundary).
	Iterations int `json:"iterations"`
	// SimulatedSeconds is the virtual clock at the boundary. Zero under
	// the native engine, which has no virtual clock (see WallSeconds).
	SimulatedSeconds float64 `json:"simulatedSeconds"`
	// WallSeconds is the host wall-clock since the run started,
	// reported by the native engine only (zero under the DES engine,
	// whose progress stream stays bit-reproducible).
	WallSeconds float64 `json:"wallSeconds,omitempty"`
	// BytesRead / BytesWritten are device-level totals so far.
	BytesRead    int64 `json:"bytesRead"`
	BytesWritten int64 `json:"bytesWritten"`
	// StealsAccepted counts steal proposals accepted so far.
	StealsAccepted int `json:"stealsAccepted"`
	// StealsRejected counts steal proposals the §5.4 criterion turned
	// down so far.
	StealsRejected int `json:"stealsRejected"`
	// SpillBytes counts encoded bytes the native engine's update
	// transport has written to spill files so far (always zero under the
	// DES engine, whose simulated storage accounts bytes in
	// BytesRead/BytesWritten).
	SpillBytes int64 `json:"spillBytes,omitempty"`
}

// progressKey carries the subscriber through a context; the engine-side
// wiring happens in runProgram, so every context-taking entry point
// (RunPreparedContext and the algorithm runners) observes it.
type progressKey struct{}

// WithProgress returns a context that subscribes fn to iteration-
// boundary progress reports of any run started under it (the job
// service feeds live job views and SSE ticks from this). fn runs on the
// simulation goroutine: keep it cheap — a slow callback stalls host
// wall-clock, never simulated time or results.
func WithProgress(ctx context.Context, fn func(Progress)) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, progressKey{}, fn)
}

// progressFrom extracts the subscriber WithProgress installed, nil if
// none.
func progressFrom(ctx context.Context) func(Progress) {
	if ctx == nil {
		return nil
	}
	fn, _ := ctx.Value(progressKey{}).(func(Progress))
	return fn
}

// coreProgress adapts the engine's counter snapshot to the public form.
func coreProgress(p core.Progress) Progress {
	return Progress{
		Iterations:       p.Iterations,
		SimulatedSeconds: p.Now.Seconds(),
		BytesRead:        p.BytesRead,
		BytesWritten:     p.BytesWritten,
		StealsAccepted:   p.StealsAccepted,
		StealsRejected:   p.StealsRejected,
		SpillBytes:       p.SpillBytes,
	}
}

// nativeProgress adapts a native-driver snapshot, whose Now is host
// wall-clock, not virtual time.
func nativeProgress(p core.Progress) Progress {
	return Progress{
		Iterations:     p.Iterations,
		WallSeconds:    p.Now.Seconds(),
		BytesRead:      p.BytesRead,
		BytesWritten:   p.BytesWritten,
		StealsAccepted: p.StealsAccepted,
		StealsRejected: p.StealsRejected,
		SpillBytes:     p.SpillBytes,
	}
}
