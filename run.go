package chaos

import (
	"chaos/internal/algorithms"
	"chaos/internal/core"
	"chaos/internal/gas"
)

// runProgram executes a GAS program through the Chaos engine and wraps the
// statistics.
func runProgram[V, U, A any](opt Options, prog gas.Program[V, U, A], edges []Edge, n uint64) ([]V, *Report, error) {
	values, run, err := core.Run(opt.config(), prog, edges, n)
	if err != nil {
		return nil, nil, err
	}
	return values, reportFrom(run, opt.config().Spec.Machines), nil
}

// RunBFS computes breadth-first levels from root over the undirected view
// of edges. Levels of unreachable vertices are ^uint32(0). n may be zero
// to infer the vertex count.
func RunBFS(edges []Edge, n uint64, root VertexID, opt Options) ([]uint32, *Report, error) {
	values, rep, err := runProgram(opt, &algorithms.BFS{Root: root}, Undirected(edges), n)
	if err != nil {
		return nil, nil, err
	}
	levels := make([]uint32, len(values))
	for i := range values {
		levels[i] = values[i].Level
	}
	return levels, rep, nil
}

// RunWCC returns the minimum vertex ID of each vertex's weakly connected
// component.
func RunWCC(edges []Edge, n uint64, opt Options) ([]uint32, *Report, error) {
	values, rep, err := runProgram(opt, &algorithms.WCC{}, Undirected(edges), n)
	if err != nil {
		return nil, nil, err
	}
	labels := make([]uint32, len(values))
	for i := range values {
		labels[i] = values[i].Label
	}
	return labels, rep, nil
}

// RunSSSP returns shortest-path distances from root over the undirected
// weighted view of edges (Inf for unreachable vertices).
func RunSSSP(edges []Edge, n uint64, root VertexID, opt Options) ([]float32, *Report, error) {
	values, rep, err := runProgram(opt, &algorithms.SSSP{Root: root}, Undirected(edges), n)
	if err != nil {
		return nil, nil, err
	}
	dists := make([]float32, len(values))
	for i := range values {
		dists[i] = values[i].Dist
	}
	return dists, rep, nil
}

// RunPageRank runs iters rounds of PageRank over the directed edge list
// and returns the rank vector.
func RunPageRank(edges []Edge, n uint64, iters int, opt Options) ([]float32, *Report, error) {
	values, rep, err := runProgram(opt, &algorithms.PageRank{Iterations: iters}, edges, n)
	if err != nil {
		return nil, nil, err
	}
	ranks := make([]float32, len(values))
	for i := range values {
		ranks[i] = values[i].Rank
	}
	return ranks, rep, nil
}

// RunMIS computes a maximal independent set over the undirected view of
// edges and returns the membership vector.
func RunMIS(edges []Edge, n uint64, opt Options) ([]bool, *Report, error) {
	prog := &algorithms.MIS{}
	values, rep, err := runProgram(opt, prog, Undirected(edges), n)
	if err != nil {
		return nil, nil, err
	}
	in := make([]bool, len(values))
	for i := range values {
		in[i] = prog.InSet(values[i])
	}
	return in, rep, nil
}

// MCSTResult reports a minimum-cost spanning forest.
type MCSTResult struct {
	// TotalWeight is the forest weight.
	TotalWeight float64
	// Edges is the number of forest edges.
	Edges int
	// Component is each vertex's component representative.
	Component []uint64
}

// RunMCST computes the minimum-cost spanning forest of the undirected
// weighted view of edges (Borůvka's algorithm).
func RunMCST(edges []Edge, n uint64, opt Options) (*MCSTResult, *Report, error) {
	prog := &algorithms.MCST{}
	values, rep, err := runProgram(opt, prog, Undirected(edges), n)
	if err != nil {
		return nil, nil, err
	}
	res := &MCSTResult{TotalWeight: prog.Total, Edges: prog.Edges, Component: make([]uint64, len(values))}
	for i := range values {
		res.Component[i] = values[i].Comp
	}
	return res, rep, nil
}

// RunSCC returns each vertex's strongly connected component label over the
// directed edge list.
func RunSCC(edges []Edge, n uint64, opt Options) ([]uint32, *Report, error) {
	values, rep, err := runProgram(opt, &algorithms.SCC{}, algorithms.AugmentEdges(edges), n)
	if err != nil {
		return nil, nil, err
	}
	ids := make([]uint32, len(values))
	for i := range values {
		ids[i] = values[i].SCC
	}
	return ids, rep, nil
}

// RunConductance computes the conductance of a deterministic hash-based
// vertex subset over the directed edge list (a single pass).
func RunConductance(edges []Edge, n uint64, opt Options) (float64, *Report, error) {
	prog := &algorithms.Conductance{}
	values, rep, err := runProgram(opt, prog, edges, n)
	if err != nil {
		return 0, nil, err
	}
	return prog.Aggregate(values), rep, nil
}

// RunSpMV computes y = A*x over the weighted directed edge list
// (A[dst][src] = weight; x is a deterministic input vector) and returns y.
func RunSpMV(edges []Edge, n uint64, opt Options) ([]float32, *Report, error) {
	values, rep, err := runProgram(opt, &algorithms.SpMV{}, edges, n)
	if err != nil {
		return nil, nil, err
	}
	y := make([]float32, len(values))
	for i := range values {
		y[i] = values[i].Y
	}
	return y, rep, nil
}

// RunBP runs iters rounds of simplified loopy belief propagation over the
// weighted directed edge list and returns the belief vector.
func RunBP(edges []Edge, n uint64, iters int, opt Options) ([]float32, *Report, error) {
	values, rep, err := runProgram(opt, &algorithms.BP{Iterations: iters}, edges, n)
	if err != nil {
		return nil, nil, err
	}
	beliefs := make([]float32, len(values))
	for i := range values {
		beliefs[i] = values[i].Belief
	}
	return beliefs, rep, nil
}

// Algorithms lists the evaluation algorithm names in Table 1 order.
func Algorithms() []string {
	return []string{"BFS", "WCC", "MCST", "MIS", "SSSP", "PR", "SCC", "Cond", "SpMV", "BP"}
}

// RunByName dispatches to the named algorithm with its evaluation-default
// parameters, returning only the report (used by the benchmark harness).
func RunByName(name string, edges []Edge, n uint64, opt Options) (*Report, error) {
	var rep *Report
	var err error
	switch name {
	case "BFS":
		_, rep, err = RunBFS(edges, n, 0, opt)
	case "WCC":
		_, rep, err = RunWCC(edges, n, opt)
	case "MCST":
		_, rep, err = RunMCST(edges, n, opt)
	case "MIS":
		_, rep, err = RunMIS(edges, n, opt)
	case "SSSP":
		_, rep, err = RunSSSP(edges, n, 0, opt)
	case "PR":
		_, rep, err = RunPageRank(edges, n, 5, opt)
	case "SCC":
		_, rep, err = RunSCC(edges, n, opt)
	case "Cond":
		_, rep, err = RunConductance(edges, n, opt)
	case "SpMV":
		_, rep, err = RunSpMV(edges, n, opt)
	case "BP":
		_, rep, err = RunBP(edges, n, 5, opt)
	default:
		return nil, errUnknownAlgorithm(name)
	}
	return rep, err
}

// NeedsWeights reports whether the named algorithm consumes edge weights.
func NeedsWeights(name string) bool {
	switch name {
	case "MCST", "SSSP", "SpMV", "BP":
		return true
	}
	return false
}

type errUnknownAlgorithm string

func (e errUnknownAlgorithm) Error() string { return "chaos: unknown algorithm " + string(e) }
