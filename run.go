package chaos

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"

	"chaos/internal/algorithms"
	"chaos/internal/core"
	"chaos/internal/core/native"
	"chaos/internal/gas"
	"chaos/internal/metrics"
)

// runProgram executes a GAS program through the configured driver —
// the DES engine by default, the native execution plane for
// Options.Engine = "native" — and wraps the statistics. A cancelable ctx
// is observed at iteration boundaries under both drivers: the run
// finishes the current iteration, unwinds cleanly and the error is
// ctx.Err() (so callers can errors.Is against context.Canceled).
func runProgram[V, U, A any](ctx context.Context, opt Options, prog gas.Program[V, U, A], edges []Edge, n uint64) ([]V, *Report, error) {
	engine, err := ParseEngine(opt.Engine)
	if err != nil {
		return nil, nil, err
	}
	cfg := opt.config()
	if ctx == nil {
		ctx = context.Background()
	}
	if done := ctx.Done(); done != nil {
		cfg.Interrupt = func() bool {
			select {
			case <-done:
				return true
			default:
				return false
			}
		}
	}
	if fn := traceFrom(ctx); fn != nil {
		cfg.Trace = fn // TraceSpan = drive.Span, same time base per engine
	}
	cfg.SpillDir = spillDirFrom(ctx)
	if fn := progressFrom(ctx); fn != nil {
		if engine == EngineNative {
			// The native driver has no virtual clock: its Now is host
			// wall-clock, surfaced as WallSeconds so SimulatedSeconds
			// never carries a non-simulated figure.
			cfg.Progress = func(p core.Progress) { fn(nativeProgress(p)) }
		} else {
			cfg.Progress = func(p core.Progress) { fn(coreProgress(p)) }
		}
	}
	var values []V
	var run *metrics.Run
	if engine == EngineNative {
		values, run, err = native.Run(cfg, prog, edges, n)
	} else {
		values, run, err = core.Run(cfg, prog, edges, n)
	}
	if err != nil {
		if errors.Is(err, core.ErrInterrupted) && ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
		return nil, nil, err
	}
	if engine == EngineNative {
		return values, nativeReportFrom(run, cfg.Spec.Machines), nil
	}
	return values, reportFrom(run, cfg.Spec.Machines), nil
}

// View names the edge-list transformation an algorithm consumes. The
// evaluation (§8) runs the undirected algorithms over edges plus their
// reverses and SCC over the forward/backward augmented list; callers that
// run many jobs over one graph (the job service) apply the view once,
// cache it, and dispatch through RunPrepared.
type View int

const (
	// ViewDirected is the raw edge list (PR, Cond, SpMV, BP).
	ViewDirected View = iota
	// ViewUndirected adds each edge's reverse (BFS, WCC, MCST, MIS, SSSP).
	ViewUndirected
	// ViewAugmented is the SCC forward/backward augmentation.
	ViewAugmented
)

func (v View) String() string {
	switch v {
	case ViewUndirected:
		return "undirected"
	case ViewAugmented:
		return "augmented"
	default:
		return "directed"
	}
}

// Apply materializes the view of edges. ViewDirected returns edges
// unchanged (no copy).
func (v View) Apply(edges []Edge) []Edge {
	switch v {
	case ViewUndirected:
		return Undirected(edges)
	case ViewAugmented:
		return algorithms.AugmentEdges(edges)
	default:
		return edges
	}
}

// ViewFor returns the view RunByName applies for the named algorithm.
func ViewFor(name string) (View, error) {
	switch name {
	case "BFS", "WCC", "MCST", "MIS", "SSSP":
		return ViewUndirected, nil
	case "SCC":
		return ViewAugmented, nil
	case "PR", "Cond", "SpMV", "BP":
		return ViewDirected, nil
	}
	return ViewDirected, errUnknownAlgorithm(name)
}

// RunBFS computes breadth-first levels from root over the undirected view
// of edges. Levels of unreachable vertices are ^uint32(0). n may be zero
// to infer the vertex count.
func RunBFS(edges []Edge, n uint64, root VertexID, opt Options) ([]uint32, *Report, error) {
	return runBFS(context.Background(), ViewUndirected.Apply(edges), n, root, opt)
}

func runBFS(ctx context.Context, undirected []Edge, n uint64, root VertexID, opt Options) ([]uint32, *Report, error) {
	values, rep, err := runProgram(ctx, opt, &algorithms.BFS{Root: root}, undirected, n)
	if err != nil {
		return nil, nil, err
	}
	levels := make([]uint32, len(values))
	for i := range values {
		levels[i] = values[i].Level
	}
	return levels, rep, nil
}

// RunWCC returns the minimum vertex ID of each vertex's weakly connected
// component.
func RunWCC(edges []Edge, n uint64, opt Options) ([]uint32, *Report, error) {
	return runWCC(context.Background(), ViewUndirected.Apply(edges), n, opt)
}

func runWCC(ctx context.Context, undirected []Edge, n uint64, opt Options) ([]uint32, *Report, error) {
	values, rep, err := runProgram(ctx, opt, &algorithms.WCC{}, undirected, n)
	if err != nil {
		return nil, nil, err
	}
	labels := make([]uint32, len(values))
	for i := range values {
		labels[i] = values[i].Label
	}
	return labels, rep, nil
}

// RunSSSP returns shortest-path distances from root over the undirected
// weighted view of edges (Inf for unreachable vertices).
func RunSSSP(edges []Edge, n uint64, root VertexID, opt Options) ([]float32, *Report, error) {
	return runSSSP(context.Background(), ViewUndirected.Apply(edges), n, root, opt)
}

func runSSSP(ctx context.Context, undirected []Edge, n uint64, root VertexID, opt Options) ([]float32, *Report, error) {
	values, rep, err := runProgram(ctx, opt, &algorithms.SSSP{Root: root}, undirected, n)
	if err != nil {
		return nil, nil, err
	}
	dists := make([]float32, len(values))
	for i := range values {
		dists[i] = values[i].Dist
	}
	return dists, rep, nil
}

// RunPageRank runs iters rounds of PageRank over the directed edge list
// and returns the rank vector.
func RunPageRank(edges []Edge, n uint64, iters int, opt Options) ([]float32, *Report, error) {
	return runPageRank(context.Background(), edges, n, iters, opt)
}

func runPageRank(ctx context.Context, edges []Edge, n uint64, iters int, opt Options) ([]float32, *Report, error) {
	values, rep, err := runProgram(ctx, opt, &algorithms.PageRank{Iterations: iters}, edges, n)
	if err != nil {
		return nil, nil, err
	}
	ranks := make([]float32, len(values))
	for i := range values {
		ranks[i] = values[i].Rank
	}
	return ranks, rep, nil
}

// RunMIS computes a maximal independent set over the undirected view of
// edges and returns the membership vector.
func RunMIS(edges []Edge, n uint64, opt Options) ([]bool, *Report, error) {
	return runMIS(context.Background(), ViewUndirected.Apply(edges), n, opt)
}

func runMIS(ctx context.Context, undirected []Edge, n uint64, opt Options) ([]bool, *Report, error) {
	prog := &algorithms.MIS{}
	values, rep, err := runProgram(ctx, opt, prog, undirected, n)
	if err != nil {
		return nil, nil, err
	}
	in := make([]bool, len(values))
	for i := range values {
		in[i] = prog.InSet(values[i])
	}
	return in, rep, nil
}

// MCSTResult reports a minimum-cost spanning forest.
type MCSTResult struct {
	// TotalWeight is the forest weight.
	TotalWeight float64
	// Edges is the number of forest edges.
	Edges int
	// Component is each vertex's component representative.
	Component []uint64
}

// RunMCST computes the minimum-cost spanning forest of the undirected
// weighted view of edges (Borůvka's algorithm).
func RunMCST(edges []Edge, n uint64, opt Options) (*MCSTResult, *Report, error) {
	return runMCST(context.Background(), ViewUndirected.Apply(edges), n, opt)
}

func runMCST(ctx context.Context, undirected []Edge, n uint64, opt Options) (*MCSTResult, *Report, error) {
	prog := &algorithms.MCST{}
	values, rep, err := runProgram(ctx, opt, prog, undirected, n)
	if err != nil {
		return nil, nil, err
	}
	res := &MCSTResult{TotalWeight: prog.Total, Edges: prog.Edges, Component: make([]uint64, len(values))}
	for i := range values {
		res.Component[i] = values[i].Comp
	}
	return res, rep, nil
}

// RunSCC returns each vertex's strongly connected component label over the
// directed edge list.
func RunSCC(edges []Edge, n uint64, opt Options) ([]uint32, *Report, error) {
	return runSCC(context.Background(), ViewAugmented.Apply(edges), n, opt)
}

func runSCC(ctx context.Context, augmented []Edge, n uint64, opt Options) ([]uint32, *Report, error) {
	values, rep, err := runProgram(ctx, opt, &algorithms.SCC{}, augmented, n)
	if err != nil {
		return nil, nil, err
	}
	ids := make([]uint32, len(values))
	for i := range values {
		ids[i] = values[i].SCC
	}
	return ids, rep, nil
}

// RunConductance computes the conductance of a deterministic hash-based
// vertex subset over the directed edge list (a single pass).
func RunConductance(edges []Edge, n uint64, opt Options) (float64, *Report, error) {
	return runConductance(context.Background(), edges, n, opt)
}

func runConductance(ctx context.Context, edges []Edge, n uint64, opt Options) (float64, *Report, error) {
	prog := &algorithms.Conductance{}
	values, rep, err := runProgram(ctx, opt, prog, edges, n)
	if err != nil {
		return 0, nil, err
	}
	return prog.Aggregate(values), rep, nil
}

// RunSpMV computes y = A*x over the weighted directed edge list
// (A[dst][src] = weight; x is a deterministic input vector) and returns y.
func RunSpMV(edges []Edge, n uint64, opt Options) ([]float32, *Report, error) {
	return runSpMV(context.Background(), edges, n, opt)
}

func runSpMV(ctx context.Context, edges []Edge, n uint64, opt Options) ([]float32, *Report, error) {
	values, rep, err := runProgram(ctx, opt, &algorithms.SpMV{}, edges, n)
	if err != nil {
		return nil, nil, err
	}
	y := make([]float32, len(values))
	for i := range values {
		y[i] = values[i].Y
	}
	return y, rep, nil
}

// RunBP runs iters rounds of simplified loopy belief propagation over the
// weighted directed edge list and returns the belief vector.
func RunBP(edges []Edge, n uint64, iters int, opt Options) ([]float32, *Report, error) {
	return runBP(context.Background(), edges, n, iters, opt)
}

func runBP(ctx context.Context, edges []Edge, n uint64, iters int, opt Options) ([]float32, *Report, error) {
	values, rep, err := runProgram(ctx, opt, &algorithms.BP{Iterations: iters}, edges, n)
	if err != nil {
		return nil, nil, err
	}
	beliefs := make([]float32, len(values))
	for i := range values {
		beliefs[i] = values[i].Belief
	}
	return beliefs, rep, nil
}

// Algorithms lists the evaluation algorithm names in Table 1 order.
func Algorithms() []string {
	return []string{"BFS", "WCC", "MCST", "MIS", "SSSP", "PR", "SCC", "Cond", "SpMV", "BP"}
}

// Result captures an algorithm's output in a compact, JSON-friendly form.
// The job service returns it instead of the raw per-vertex vector, which
// for large graphs would dwarf the transport; the summaries are also what
// the evaluation checks against reference implementations.
type Result struct {
	// Algorithm is the canonical algorithm name.
	Algorithm string `json:"algorithm"`
	// Vertices is the length of the value vector the run produced.
	Vertices int `json:"vertices"`
	// Summary holds the per-algorithm scalar summaries (e.g. BFS
	// "reachable" and "depth", WCC "components", PR "rank_sum").
	Summary map[string]float64 `json:"summary"`
}

// RunPrepared runs the named algorithm with its evaluation-default
// parameters, assuming edges is already in the view ViewFor(name) returns.
// Callers that cache converted edge lists — the job service keeps one
// undirected and one augmented copy per graph — use it to skip the
// per-run conversion RunByName performs.
func RunPrepared(name string, edges []Edge, n uint64, opt Options) (*Result, *Report, error) {
	return RunPreparedContext(context.Background(), name, edges, n, opt)
}

// RunPreparedContext is RunPrepared with cooperative cancellation: the
// engine polls ctx at each iteration boundary and, once ctx is
// canceled, finishes the iteration, unwinds the simulation cleanly and
// returns ctx.Err(). The job service uses it to make DELETE on a
// running job take effect without killing the process.
func RunPreparedContext(ctx context.Context, name string, edges []Edge, n uint64, opt Options) (*Result, *Report, error) {
	res := &Result{Algorithm: name}
	var rep *Report
	var err error
	switch name {
	case "BFS":
		var levels []uint32
		levels, rep, err = runBFS(ctx, edges, n, 0, opt)
		if err == nil {
			reachable, depth := 0, uint32(0)
			for _, l := range levels {
				if l != ^uint32(0) {
					reachable++
					if l > depth {
						depth = l
					}
				}
			}
			res.Vertices = len(levels)
			res.Summary = map[string]float64{"reachable": float64(reachable), "depth": float64(depth)}
		}
	case "WCC":
		var labels []uint32
		labels, rep, err = runWCC(ctx, edges, n, opt)
		if err == nil {
			res.Vertices = len(labels)
			res.Summary = componentSummary(labels)
		}
	case "MCST":
		var forest *MCSTResult
		forest, rep, err = runMCST(ctx, edges, n, opt)
		if err == nil {
			res.Vertices = len(forest.Component)
			res.Summary = map[string]float64{
				"total_weight": forest.TotalWeight,
				"forest_edges": float64(forest.Edges),
			}
		}
	case "MIS":
		var in []bool
		in, rep, err = runMIS(ctx, edges, n, opt)
		if err == nil {
			size := 0
			for _, b := range in {
				if b {
					size++
				}
			}
			res.Vertices = len(in)
			res.Summary = map[string]float64{"set_size": float64(size)}
		}
	case "SSSP":
		var dists []float32
		dists, rep, err = runSSSP(ctx, edges, n, 0, opt)
		if err == nil {
			reached, maxDist := 0, 0.0
			for _, d := range dists {
				if !math.IsInf(float64(d), 1) {
					reached++
					if float64(d) > maxDist {
						maxDist = float64(d)
					}
				}
			}
			res.Vertices = len(dists)
			res.Summary = map[string]float64{"reached": float64(reached), "max_dist": maxDist}
		}
	case "PR":
		var ranks []float32
		ranks, rep, err = runPageRank(ctx, edges, n, 5, opt)
		if err == nil {
			sum, maxRank := 0.0, 0.0
			for _, r := range ranks {
				sum += float64(r)
				if float64(r) > maxRank {
					maxRank = float64(r)
				}
			}
			res.Vertices = len(ranks)
			res.Summary = map[string]float64{"rank_sum": sum, "max_rank": maxRank}
		}
	case "SCC":
		var ids []uint32
		ids, rep, err = runSCC(ctx, edges, n, opt)
		if err == nil {
			res.Vertices = len(ids)
			res.Summary = componentSummary(ids)
		}
	case "Cond":
		var cond float64
		cond, rep, err = runConductance(ctx, edges, n, opt)
		if err == nil {
			nv := n
			if nv == 0 {
				nv = NumVertices(edges)
			}
			res.Vertices = int(nv)
			res.Summary = map[string]float64{"conductance": cond}
		}
	case "SpMV":
		var y []float32
		y, rep, err = runSpMV(ctx, edges, n, opt)
		if err == nil {
			var norm1 float64
			for _, v := range y {
				norm1 += math.Abs(float64(v))
			}
			res.Vertices = len(y)
			res.Summary = map[string]float64{"norm1": norm1}
		}
	case "BP":
		var beliefs []float32
		beliefs, rep, err = runBP(ctx, edges, n, 5, opt)
		if err == nil {
			var sum float64
			for _, b := range beliefs {
				sum += float64(b)
			}
			res.Vertices = len(beliefs)
			res.Summary = map[string]float64{"belief_sum": sum}
		}
	default:
		return nil, nil, errUnknownAlgorithm(name)
	}
	if err != nil {
		return nil, nil, err
	}
	return res, rep, nil
}

// componentSummary summarizes a component-labeling vector.
func componentSummary(labels []uint32) map[string]float64 {
	sizes := make(map[uint32]int)
	for _, l := range labels {
		sizes[l]++
	}
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	return map[string]float64{"components": float64(len(sizes)), "largest": float64(largest)}
}

// RunByNameResult dispatches to the named algorithm with its
// evaluation-default parameters, applying the algorithm's edge view
// first, and returns the captured Result alongside the Report.
func RunByNameResult(name string, edges []Edge, n uint64, opt Options) (*Result, *Report, error) {
	view, err := ViewFor(name)
	if err != nil {
		return nil, nil, err
	}
	return RunPrepared(name, view.Apply(edges), n, opt)
}

// RunByName dispatches to the named algorithm with its evaluation-default
// parameters, returning only the report (used by the benchmark harness).
func RunByName(name string, edges []Edge, n uint64, opt Options) (*Report, error) {
	_, rep, err := RunByNameResult(name, edges, n, opt)
	return rep, err
}

// NeedsWeights reports whether the named algorithm consumes edge weights.
func NeedsWeights(name string) bool {
	switch name {
	case "MCST", "SSSP", "SpMV", "BP":
		return true
	}
	return false
}

type errUnknownAlgorithm string

func (e errUnknownAlgorithm) Error() string {
	return fmt.Sprintf("chaos: unknown algorithm %q (want one of %s)", string(e), strings.Join(Algorithms(), " "))
}
