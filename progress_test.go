package chaos

import (
	"context"
	"math"
	"reflect"
	"testing"
)

// TestProgressDeterminism is the serving-path determinism guarantee:
// for every algorithm, a run with a progress subscriber produces a
// bit-identical Result, Report and virtual clock to one without, and
// the subscriber's final tick agrees with the report.
func TestProgressDeterminism(t *testing.T) {
	opt := Options{
		Machines: 2, ChunkBytes: 1 << 10, LatencyScale: 1.0 / 4096,
		MemBudgetBytes: 1 << 12, Seed: 1,
	}
	edges := GenerateRMAT(6, true, 42)
	for _, alg := range Algorithms() {
		t.Run(alg, func(t *testing.T) {
			view, err := ViewFor(alg)
			if err != nil {
				t.Fatal(err)
			}
			prepared := view.Apply(edges)
			want, wantRep, err := RunPrepared(alg, prepared, 1<<6, opt)
			if err != nil {
				t.Fatal(err)
			}
			var ticks []Progress
			ctx := WithProgress(context.Background(), func(p Progress) {
				ticks = append(ticks, p)
			})
			got, gotRep, err := RunPreparedContext(ctx, alg, prepared, 1<<6, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(ticks) != gotRep.Iterations {
				t.Fatalf("%d ticks, want one per iteration (%d)", len(ticks), gotRep.Iterations)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("result drifted under a subscriber:\n%+v\nvs\n%+v", got, want)
			}
			if !reflect.DeepEqual(gotRep, wantRep) {
				t.Errorf("report drifted under a subscriber:\n%+v\nvs\n%+v", gotRep, wantRep)
			}
			// Bit-level virtual-clock check, not just DeepEqual of the
			// float: the clock is the acceptance criterion.
			if math.Float64bits(gotRep.SimulatedSeconds) != math.Float64bits(wantRep.SimulatedSeconds) {
				t.Errorf("virtual clock drifted: %v vs %v", gotRep.SimulatedSeconds, wantRep.SimulatedSeconds)
			}
			last := ticks[len(ticks)-1]
			if last.Iterations != gotRep.Iterations || last.StealsAccepted != gotRep.StealsAccepted {
				t.Errorf("final tick %+v disagrees with report (%d iters, %d steals)",
					last, gotRep.Iterations, gotRep.StealsAccepted)
			}
			if last.StealsRejected != gotRep.StealsRejected || last.SpillBytes != gotRep.SpillBytes {
				t.Errorf("final tick %+v disagrees with report (%d steals rejected, %d spill bytes)",
					last, gotRep.StealsRejected, gotRep.SpillBytes)
			}
			if last.SimulatedSeconds > gotRep.SimulatedSeconds {
				t.Errorf("final tick clock %v past the report's %v",
					last.SimulatedSeconds, gotRep.SimulatedSeconds)
			}
		})
	}
}
