#!/usr/bin/env bash
# chaos-serve durability smoke: start -> register -> job -> kill -> restart -> cache hit
set -euo pipefail
BIN=${1:-./chaos-serve}
DIR=$(mktemp -d)
ADDR=127.0.0.1:18080
BASE=http://$ADDR

wait_up() {
  for i in $(seq 1 100); do
    curl -sf $BASE/healthz >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "server did not come up" >&2; return 1
}

cleanup() {
  kill -TERM "${PID:-}" 2>/dev/null || true
  wait "${PID:-}" 2>/dev/null || true
  rm -rf "$DIR"
}

"$BIN" -addr $ADDR -workers 2 -chunk-kb 1 -data-dir "$DIR/state" &
PID=$!
# Installed before the first request: a failure anywhere must not leak
# the server (holding the port for the next run) or the temp dir.
trap cleanup EXIT
wait_up

curl -sf -XPOST $BASE/v1/graphs -d '{"name":"smoke","type":"rmat","scale":7,"weighted":true,"seed":42}' >/dev/null
JOB=$(curl -sf -XPOST $BASE/v1/jobs -d '{"graph":"smoke","algorithm":"PR","options":{"machines":2,"seed":7}}' | sed -n 's/.*"id": "\(j[0-9]*\)".*/\1/p')
for i in $(seq 1 200); do
  STATE=$(curl -sf $BASE/v1/jobs/$JOB | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')
  [ "$STATE" = done ] && break
  [ "$STATE" = failed ] && { echo "job failed" >&2; exit 1; }
  sleep 0.1
done
[ "$STATE" = done ] || { echo "job never finished: $STATE" >&2; exit 1; }

# SIGTERM: graceful shutdown snapshots before exit.
kill -TERM $PID; wait $PID || true

"$BIN" -addr $ADDR -workers 2 -chunk-kb 1 -data-dir "$DIR/state" &
PID=$!
wait_up

# The graph survived the restart...
curl -sf $BASE/v1/graphs | grep -q '"id": "smoke"' || { echo "graph lost" >&2; exit 1; }
# ...and the identical submission is an immediate cache hit served from
# the disk result store (the fresh process's memory cache was empty).
HIT=$(curl -sf -XPOST $BASE/v1/jobs -d '{"graph":"smoke","algorithm":"PR","options":{"machines":2,"seed":7}}')
echo "$HIT" | grep -q '"state": "done"' || { echo "resubmission not served from cache: $HIT" >&2; exit 1; }
echo "$HIT" | grep -q '"cacheHit": true' || { echo "no cacheHit flag: $HIT" >&2; exit 1; }
curl -sf $BASE/v1/stats | grep -q '"diskHits": [1-9]' || { echo "no disk hit recorded" >&2; exit 1; }
echo "SMOKE OK"
