#!/usr/bin/env bash
# chaos-serve durability smoke: start -> register -> job (with /metrics
# scrape + /events SSE stream) -> kill -> restart -> cache hit, with
# /metrics re-scraped on the recovered process. Both sides of the
# restart also check the latency histograms and the pprof debug
# listener, so the observability surface is exercised on a recovered
# process too, not just a fresh one. The job is submitted under a
# caller-chosen traceparent, and its lifecycle trace tree is asserted
# complete (request root -> queued -> run -> done, no orphan spans)
# before the restart, after the graceful restart, and after a final
# SIGKILL restart that leaves recovery nothing but the journal.
set -euo pipefail
BIN=${1:-./chaos-serve}
DIR=$(mktemp -d)
ADDR=127.0.0.1:18080
BASE=http://$ADDR
DEBUG_ADDR=127.0.0.1:18081
DEBUG=http://$DEBUG_ADDR

# check_observability: the latency-histogram families are present and
# internally consistent (queue-wait count matches at least one executed
# job when $1 jobs have run), and the operator listener answers a heap
# profile.
check_observability() {
  local min_jobs=$1 m
  m=$(curl -sf $BASE/metrics)
  for fam in chaos_http_request_duration_seconds chaos_job_queue_wait_seconds chaos_job_wall_seconds; do
    echo "$m" | grep -q "^# TYPE $fam histogram" || { echo "metrics missing histogram $fam" >&2; exit 1; }
    echo "$m" | grep -q "^${fam}_bucket.*le=\"+Inf\"" || { echo "$fam has no +Inf bucket" >&2; exit 1; }
  done
  # POST /v1/jobs was hit on this process by the time we scrape.
  echo "$m" | grep -q "^chaos_http_request_duration_seconds_count{route=\"POST /v1/jobs\"} [1-9]" \
    || { echo "no request-duration samples for POST /v1/jobs" >&2; exit 1; }
  echo "$m" | grep -q "^chaos_job_queue_wait_seconds_count [$min_jobs-9]" \
    || { echo "queue-wait histogram missing executed jobs" >&2; exit 1; }
  # Capture, then grep: piping straight into grep -q would close the
  # pipe on the first match and fail curl under pipefail.
  local heap
  heap=$(curl -sf "$DEBUG/debug/pprof/heap?debug=1" || true)
  echo "$heap" | grep -q '^heap profile' \
    || { echo "pprof heap profile not served on $DEBUG_ADDR" >&2; exit 1; }
}

# check_trace: the job's journaled lifecycle trace is complete and
# whole — the caller's trace id survived, the request root and the
# queued -> run -> done chain are present, and no span is orphaned.
check_trace() {
  local t
  t=$(curl -sf $BASE/v1/jobs/$JOB/trace)
  echo "$t" | grep -q "\"traceId\": \"$TRACE_ID\"" \
    || { echo "trace id drifted: $t" >&2; exit 1; }
  for name in 'POST /v1/jobs' queued run done; do
    echo "$t" | grep -q "\"name\": \"$name\"" \
      || { echo "trace tree missing '$name' span: $t" >&2; exit 1; }
  done
  echo "$t" | grep -q '"orphans": 0' \
    || { echo "trace tree has orphan spans: $t" >&2; exit 1; }
}

wait_up() {
  for i in $(seq 1 100); do
    curl -sf $BASE/healthz >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "server did not come up" >&2; return 1
}

cleanup() {
  kill -TERM "${PID:-}" 2>/dev/null || true
  wait "${PID:-}" 2>/dev/null || true
  rm -rf "$DIR"
}

"$BIN" -addr $ADDR -debug-addr $DEBUG_ADDR -workers 2 -chunk-kb 1 -data-dir "$DIR/state" &
PID=$!
# Installed before the first request: a failure anywhere must not leak
# the server (holding the port for the next run) or the temp dir.
trap cleanup EXIT
wait_up

curl -sf -XPOST $BASE/v1/graphs -d '{"name":"smoke","type":"rmat","scale":7,"weighted":true,"seed":42}' >/dev/null
# Submit under our own W3C trace context; the server must adopt the
# trace id and echo it in a traceparent response header.
TRACE_ID=aaaabbbbccccddddeeeeffff00112233
HDRS="$DIR/submit-headers.txt"
JOB=$(curl -sf -D "$HDRS" -XPOST $BASE/v1/jobs \
  -H "traceparent: 00-$TRACE_ID-0123456789abcdef-01" \
  -d '{"graph":"smoke","algorithm":"PR","options":{"machines":2,"seed":7}}' | sed -n 's/.*"id": "\(j[0-9]*\)".*/\1/p')
grep -qi "^traceparent: 00-$TRACE_ID-" "$HDRS" \
  || { echo "inbound traceparent not adopted/echoed" >&2; cat "$HDRS" >&2; exit 1; }
# Stream the job's SSE feed while it runs; the handler closes the
# stream at the terminal state, so this curl exits on its own.
EVENTS="$DIR/events.txt"
curl -sN -m 60 $BASE/v1/jobs/$JOB/events > "$EVENTS" &
SSE=$!
for i in $(seq 1 200); do
  STATE=$(curl -sf $BASE/v1/jobs/$JOB | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')
  [ "$STATE" = done ] && break
  [ "$STATE" = failed ] && { echo "job failed" >&2; exit 1; }
  sleep 0.1
done
[ "$STATE" = done ] || { echo "job never finished: $STATE" >&2; exit 1; }
wait $SSE || { echo "event stream did not terminate with the job" >&2; exit 1; }
grep -q '^event: state' "$EVENTS" || { echo "no state events in SSE stream" >&2; cat "$EVENTS" >&2; exit 1; }
grep -q '"state":"done"' "$EVENTS" || { echo "SSE stream missed the done transition" >&2; cat "$EVENTS" >&2; exit 1; }

# /metrics serves Prometheus text exposition with the serving and WAL
# counter families.
METRICS=$(curl -sf $BASE/metrics)
echo "$METRICS" | grep -q '^# TYPE chaos_jobs gauge' || { echo "metrics missing TYPE preamble" >&2; exit 1; }
echo "$METRICS" | grep -q '^chaos_jobs{state="done"} [1-9]' || { echo "metrics missing done-job count" >&2; echo "$METRICS" >&2; exit 1; }
echo "$METRICS" | grep -q '^chaos_wal_records_total [1-9]' || { echo "metrics missing WAL records" >&2; exit 1; }
echo "$METRICS" | grep -q '^chaos_persist_healthy 1' || { echo "persistence not healthy" >&2; exit 1; }
# One job has executed here: histograms fed, pprof answering.
check_observability 1
# The executing process serves the full tree, trace-id lookup included.
check_trace
# Capture, then grep (see check_observability: grep -q + pipefail).
BYTRACE=$(curl -sf $BASE/v1/traces/$TRACE_ID)
echo "$BYTRACE" | grep -q "\"id\": \"$JOB\"" \
  || { echo "trace id does not resolve to the job" >&2; exit 1; }

# SIGTERM: graceful shutdown snapshots before exit.
kill -TERM $PID; wait $PID || true

"$BIN" -addr $ADDR -debug-addr $DEBUG_ADDR -workers 2 -chunk-kb 1 -data-dir "$DIR/state" &
PID=$!
wait_up

# The graph survived the restart... (every check below captures before
# grepping: grep -q exits on the first match, and under pipefail the
# SIGPIPE that gives curl would fail the whole pipeline.)
GRAPHS=$(curl -sf $BASE/v1/graphs)
echo "$GRAPHS" | grep -q '"id": "smoke"' || { echo "graph lost" >&2; exit 1; }
# ...and the identical submission is an immediate cache hit served from
# the disk result store (the fresh process's memory cache was empty).
HIT=$(curl -sf -XPOST $BASE/v1/jobs -d '{"graph":"smoke","algorithm":"PR","options":{"machines":2,"seed":7}}')
echo "$HIT" | grep -q '"state": "done"' || { echo "resubmission not served from cache: $HIT" >&2; exit 1; }
echo "$HIT" | grep -q '"cacheHit": true' || { echo "no cacheHit flag: $HIT" >&2; exit 1; }
STATS=$(curl -sf $BASE/v1/stats)
echo "$STATS" | grep -q '"diskHits": [1-9]' || { echo "no disk hit recorded" >&2; exit 1; }
# The recovered process exposes the restored history on /metrics (two
# done jobs now: the pre-crash run and the cache-hit resubmission).
METRICS=$(curl -sf $BASE/metrics)
echo "$METRICS" | grep -q '^chaos_jobs{state="done"} [2-9]' || { echo "recovered metrics missing job history" >&2; exit 1; }
# The SSE stream of a job finished before the crash replays as a single
# terminal snapshot on the recovered process.
REPLAY=$(curl -sN -m 10 $BASE/v1/jobs/$JOB/events)
echo "$REPLAY" | grep -q '"state":"done"' || { echo "no terminal snapshot for recovered job" >&2; exit 1; }
# Observability after recovery: the histogram families come back
# pre-seeded (0 is a real value — the cache-hit resubmission never
# executed, so queue-wait legitimately has no new samples) and the
# debug listener serves profiles on the recovered process too.
check_observability 0
# The lifecycle trace rode the journal across the graceful restart.
check_trace

# SIGKILL: no snapshot, no drain — the journal alone must rebuild the
# trace. Sleep past the fsync batching window first so the journal
# holds everything the dead process acknowledged.
sleep 0.3
kill -KILL $PID; wait $PID 2>/dev/null || true
"$BIN" -addr $ADDR -debug-addr $DEBUG_ADDR -workers 2 -chunk-kb 1 -data-dir "$DIR/state" &
PID=$!
wait_up
check_trace
# Engine spans are execution-scoped: the restored trace reports the
# tier absent with a reason instead of inventing a recording.
RESTORED=$(curl -sf $BASE/v1/jobs/$JOB/trace)
echo "$RESTORED" | grep -q '"engineAbsent"' \
  || { echo "restored trace claims an engine recording" >&2; exit 1; }
echo "SMOKE OK"
