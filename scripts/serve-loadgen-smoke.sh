#!/usr/bin/env bash
# chaos-loadgen smoke: start chaos-serve, drive it with 50 concurrent
# jobs through the load generator, and sanity-check the BENCH_serve.json
# record it emits (zero failures, every job measured, positive
# throughput and latency percentiles). Usage:
#
#   serve-loadgen-smoke.sh [chaos-serve-binary] [chaos-loadgen-binary]
set -euo pipefail
SERVE=${1:-./chaos-serve}
LOADGEN=${2:-./chaos-loadgen}
DIR=$(mktemp -d)
ADDR=127.0.0.1:18084
BASE=http://$ADDR
JOBS=50

cleanup() {
  kill -TERM "${PID:-}" 2>/dev/null || true
  wait "${PID:-}" 2>/dev/null || true
  rm -rf "$DIR"
}

"$SERVE" -addr $ADDR -workers 4 -chunk-kb 1 &
PID=$!
trap cleanup EXIT
for i in $(seq 1 100); do
  curl -sf $BASE/healthz >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf $BASE/healthz >/dev/null || { echo "server did not come up" >&2; exit 1; }

REC="$DIR/BENCH_serve.json"
# The loadgen itself exits non-zero when any job fails; set -e stops us.
"$LOADGEN" -addr $ADDR -jobs $JOBS -concurrency 8 -scale 7 -out "$REC"

test -s "$REC" || { echo "no BENCH_serve.json written" >&2; exit 1; }
grep -q '"failed": 0' "$REC" || { echo "record reports failed jobs" >&2; cat "$REC" >&2; exit 1; }
grep -q '"rejected_429": 0' "$REC" || { echo "unexpected 429s with an unbounded queue" >&2; cat "$REC" >&2; exit 1; }
# Every job contributed an end-to-end latency sample...
grep -A6 '"e2e_seconds"' "$REC" | grep -q "\"count\": $JOBS" \
  || { echo "e2e sample count != $JOBS" >&2; cat "$REC" >&2; exit 1; }
# ...and the throughput and percentile fields hold real measurements
# (0.000... would mean the clock never advanced or nothing ran).
grep -q '"jobs_per_second": [1-9]' "$REC" || { echo "no throughput measured" >&2; cat "$REC" >&2; exit 1; }
grep -A6 '"e2e_seconds"' "$REC" | grep -q '"p99": 0\.0*[1-9]' \
  || { echo "e2e p99 is zero" >&2; cat "$REC" >&2; exit 1; }
echo "LOADGEN SMOKE OK"
