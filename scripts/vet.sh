#!/usr/bin/env sh
# vet.sh — the repo's static-analysis gate, used by CI and by local
# verification. Everything here runs offline against the module cache:
# no downloads, no external tools.
#
#   1. go vet: the stock suite.
#   2. chaos-vet: the repo's own analyzers (internal/analysis/...) over
#      every package, plus the //go:build ignore scripts that `./...`
#      patterns skip — scripts/perf_gate.go is load-bearing CI code and
#      gets the same scrutiny.
#   3. gofmt -l: formatting is a gate, not a suggestion.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== chaos-vet"
go run ./cmd/chaos-vet ./... scripts/perf_gate.go

echo "== gofmt"
unformatted=$(gofmt -l . | grep -v '^\.git/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "vet.sh: all gates passed"
