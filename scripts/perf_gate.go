//go:build ignore

// perf_gate compares a freshly measured BENCH_native.json against the
// committed record (records/BENCH_native.json) and fails when any arm
// got more than -factor times slower, with -slack seconds of absolute
// headroom so quick-scale runs (tens of milliseconds) are not judged
// on scheduler noise. It is the CI tripwire for engine wall-clock
// regressions: the committed record is the trajectory, the fresh run
// is today.
//
// Different hosts are different speeds, which is why the gate is a
// coarse 2x and not a percentage — it catches "accidentally quadratic",
// not "3% slower".
//
//	go run scripts/perf_gate.go -fresh BENCH_native.json -committed records/BENCH_native.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// record mirrors the fields of experiments.BenchRecord the gate reads.
type record struct {
	Experiment string `json:"experiment"`
	Scale      string `json:"scale"`
	Arms       []struct {
		Name        string  `json:"name"`
		WallSeconds float64 `json:"wall_seconds"`
	} `json:"arms"`
}

func load(path string) (record, error) {
	var r record
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func main() {
	var (
		freshPath     = flag.String("fresh", "BENCH_native.json", "record measured by this run")
		committedPath = flag.String("committed", "records/BENCH_native.json", "record committed to the repo")
		factor        = flag.Float64("factor", 2.0, "fail when fresh wall-clock exceeds committed*factor+slack")
		slack         = flag.Float64("slack", 0.75, "absolute headroom in seconds per arm")
		armFactors    = flag.String("arm-factors", "oocore=3,native-barrier=3",
			"per-arm factor overrides as name=factor[,name=factor...]; disk-bound arms get a wider envelope than CPU-bound ones, and the barrier A/B arm exists to be lost to, so its own wall-clock only matters at the accidentally-quadratic level")
	)
	flag.Parse()
	perArm := make(map[string]float64)
	if *armFactors != "" {
		for _, kv := range strings.Split(*armFactors, ",") {
			name, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				fmt.Fprintf(os.Stderr, "perf_gate: bad -arm-factors entry %q (want name=factor)\n", kv)
				os.Exit(1)
			}
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "perf_gate: bad factor in %q: %v\n", kv, err)
				os.Exit(1)
			}
			perArm[name] = f
		}
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perf_gate:", err)
		os.Exit(1)
	}
	committed, err := load(*committedPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perf_gate:", err)
		os.Exit(1)
	}
	if fresh.Scale != committed.Scale {
		fmt.Fprintf(os.Stderr, "perf_gate: scale mismatch: fresh %q vs committed %q — not comparable\n",
			fresh.Scale, committed.Scale)
		os.Exit(1)
	}
	base := make(map[string]float64, len(committed.Arms))
	for _, a := range committed.Arms {
		base[a.Name] = a.WallSeconds
	}
	failed := false
	for _, a := range fresh.Arms {
		want, ok := base[a.Name]
		if !ok {
			// A new arm has no trajectory yet; report, don't fail.
			fmt.Printf("perf_gate: arm %-12s %8.3fs (no committed baseline)\n", a.Name, a.WallSeconds)
			continue
		}
		f := *factor
		if af, ok := perArm[a.Name]; ok {
			f = af
		}
		limit := want*f + *slack
		verdict := "ok"
		if a.WallSeconds > limit {
			verdict = "REGRESSION"
			failed = true
		}
		fmt.Printf("perf_gate: arm %-12s %8.3fs vs committed %8.3fs (limit %8.3fs) %s\n",
			a.Name, a.WallSeconds, want, limit, verdict)
	}
	if len(fresh.Arms) == 0 {
		fmt.Fprintln(os.Stderr, "perf_gate: fresh record has no arms")
		os.Exit(1)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "perf_gate: wall-clock regression past the factor+slack envelope")
		os.Exit(1)
	}
}
