package chaos_test

import (
	"fmt"

	"chaos"
)

// ExampleRunBFS runs breadth-first search on a small deterministic graph
// over a simulated 2-machine cluster.
func ExampleRunBFS() {
	// A path 0 - 1 - 2 plus an isolated vertex 3.
	edges := []chaos.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 3, Dst: 3}}
	levels, _, err := chaos.RunBFS(edges, 4, 0, chaos.Options{Machines: 2, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(levels[0], levels[1], levels[2], levels[3] == ^uint32(0))
	// Output: 0 1 2 true
}

// ExampleRunWCC labels weakly connected components by their smallest
// member.
func ExampleRunWCC() {
	edges := []chaos.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}}
	labels, _, err := chaos.RunWCC(edges, 4, chaos.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(labels)
	// Output: [0 0 2 2]
}

// ExampleRunMCST computes a minimum spanning forest weight.
func ExampleRunMCST() {
	// Triangle with weights 1, 1, 5: the MST takes the two cheap edges.
	edges := []chaos.Edge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 1, Dst: 2, Weight: 1},
		{Src: 0, Dst: 2, Weight: 5},
	}
	res, _, err := chaos.RunMCST(edges, 3, chaos.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.0f over %d edges\n", res.TotalWeight, res.Edges)
	// Output: 2 over 2 edges
}

// ExampleTheoreticalUtilization evaluates Equation 4 at the paper's
// operating point: batch factor k=5 keeps all storage engines above 99.3%
// utilization regardless of cluster size.
func ExampleTheoreticalUtilization() {
	fmt.Printf("%.4f %.4f\n",
		chaos.TheoreticalUtilization(32, 5), chaos.UtilizationFloor(5))
	// Output: 0.9956 0.9933
}

// ExampleRunSSSP runs weighted shortest paths with checkpointing enabled.
func ExampleRunSSSP() {
	edges := []chaos.Edge{
		{Src: 0, Dst: 1, Weight: 5},
		{Src: 1, Dst: 2, Weight: 1},
		{Src: 0, Dst: 2, Weight: 2},
	}
	dists, rep, err := chaos.RunSSSP(edges, 3, 0, chaos.Options{CheckpointEvery: 1, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.0f %.0f %.0f (checkpointed: %v)\n",
		dists[0], dists[1], dists[2], rep.CheckpointBytes > 0)
	// Output: 0 3 2 (checkpointed: true)
}
