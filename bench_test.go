// Benchmarks regenerating every table and figure of the Chaos evaluation.
// Each benchmark runs the corresponding experiment of
// internal/experiments; the first execution prints the reproduced
// rows/series (compare against EXPERIMENTS.md and the paper). Set
// CHAOS_BENCH_SCALE=quick for a fast smoke pass.
package chaos_test

import (
	"io"
	"os"
	"sync"
	"testing"

	"chaos/internal/experiments"
)

var benchPrinted sync.Map

func benchScale() experiments.Scale {
	if os.Getenv("CHAOS_BENCH_SCALE") == "quick" {
		return experiments.Quick
	}
	return experiments.Lab
}

func benchExperiment(b *testing.B, name string, f func(io.Writer, experiments.Scale) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		var w io.Writer = io.Discard
		if _, loaded := benchPrinted.LoadOrStore(name, true); !loaded {
			w = os.Stdout
		}
		if err := f(w, benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1_SingleMachine regenerates Table 1: X-Stream vs
// single-machine Chaos across the ten algorithms.
func BenchmarkTable1_SingleMachine(b *testing.B) {
	benchExperiment(b, "table1", experiments.Table1)
}

// BenchmarkFigure5_Utilization regenerates Figure 5: theoretical storage
// utilization rho(m,k) (Equation 4).
func BenchmarkFigure5_Utilization(b *testing.B) {
	benchExperiment(b, "fig5", experiments.Figure5)
}

// BenchmarkFigure7_WeakScaling regenerates Figure 7: weak scaling of all
// ten algorithms, normalized to one machine.
func BenchmarkFigure7_WeakScaling(b *testing.B) {
	benchExperiment(b, "fig7", experiments.Figure7)
}

// BenchmarkFigure8_StrongScaling regenerates Figure 8: strong scaling on a
// fixed RMAT graph.
func BenchmarkFigure8_StrongScaling(b *testing.B) {
	benchExperiment(b, "fig8", experiments.Figure8)
}

// BenchmarkFigure9_DataCommons regenerates Figure 9: strong scaling on the
// synthetic web crawl from HDDs.
func BenchmarkFigure9_DataCommons(b *testing.B) {
	benchExperiment(b, "fig9", experiments.Figure9)
}

// BenchmarkCapacity_Trillion regenerates the §9.3 capacity experiment via
// measured-I/O extrapolation to a trillion edges.
func BenchmarkCapacity_Trillion(b *testing.B) {
	benchExperiment(b, "capacity", experiments.Capacity)
}

// BenchmarkFigure10_Cores regenerates Figure 10: the CPU-core sweep.
func BenchmarkFigure10_Cores(b *testing.B) {
	benchExperiment(b, "fig10", experiments.Figure10)
}

// BenchmarkFigure11_Storage regenerates Figure 11: SSD vs HDD.
func BenchmarkFigure11_Storage(b *testing.B) {
	benchExperiment(b, "fig11", experiments.Figure11)
}

// BenchmarkFigure12_Network regenerates Figure 12: 40 GigE vs 1 GigE.
func BenchmarkFigure12_Network(b *testing.B) {
	benchExperiment(b, "fig12", experiments.Figure12)
}

// BenchmarkFigure13_Checkpoint regenerates Figure 13: checkpoint overhead.
func BenchmarkFigure13_Checkpoint(b *testing.B) {
	benchExperiment(b, "fig13", experiments.Figure13)
}

// BenchmarkFigure14_Bandwidth regenerates Figure 14: aggregate achieved
// storage bandwidth vs the theoretical maximum.
func BenchmarkFigure14_Bandwidth(b *testing.B) {
	benchExperiment(b, "fig14", experiments.Figure14)
}

// BenchmarkFigure15_Centralized regenerates Figure 15: randomized placement
// vs a centralized chunk directory.
func BenchmarkFigure15_Centralized(b *testing.B) {
	benchExperiment(b, "fig15", experiments.Figure15)
}

// BenchmarkFigure16_BatchFactor regenerates Figure 16: the request-window
// (phi*k) sweep.
func BenchmarkFigure16_BatchFactor(b *testing.B) {
	benchExperiment(b, "fig16", experiments.Figure16)
}

// BenchmarkFigure17_Breakdown regenerates Figure 17: the runtime breakdown.
func BenchmarkFigure17_Breakdown(b *testing.B) {
	benchExperiment(b, "fig17", experiments.Figure17)
}

// BenchmarkFigure18_StealBias regenerates Figure 18: the stealing-bias
// (alpha) sweep.
func BenchmarkFigure18_StealBias(b *testing.B) {
	benchExperiment(b, "fig18", experiments.Figure18)
}

// BenchmarkFigure19_Giraph regenerates Figure 19: Chaos vs the Giraph-style
// baseline.
func BenchmarkFigure19_Giraph(b *testing.B) {
	benchExperiment(b, "fig19", experiments.Figure19)
}

// BenchmarkFigure20_Partitioning regenerates Figure 20: dynamic rebalancing
// cost vs grid partitioning time.
func BenchmarkFigure20_Partitioning(b *testing.B) {
	benchExperiment(b, "fig20", experiments.Figure20)
}

// BenchmarkAblation_Combiners measures Pregel-style update aggregation
// (§11.1): the paper rejected it because merging costs outweigh the
// traffic reduction.
func BenchmarkAblation_Combiners(b *testing.B) {
	benchExperiment(b, "abl-comb", experiments.AblationCombiner)
}

// BenchmarkAblation_EdgeCompaction measures the §6.1 extended model: MCST
// rewriting away intra-component edges each Borůvka round.
func BenchmarkAblation_EdgeCompaction(b *testing.B) {
	benchExperiment(b, "abl-compact", experiments.AblationCompaction)
}

// BenchmarkAblation_Replication measures the §6.6 vertex-set mirroring
// overhead.
func BenchmarkAblation_Replication(b *testing.B) {
	benchExperiment(b, "abl-repl", experiments.AblationReplication)
}

// BenchmarkAblation_PartitionCount sweeps the streaming-partition multiple,
// the §3 sequentiality-vs-balance trade-off.
func BenchmarkAblation_PartitionCount(b *testing.B) {
	benchExperiment(b, "abl-parts", experiments.AblationPartitionCount)
}
