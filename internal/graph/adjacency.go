package graph

// Adjacency is an in-memory adjacency-list view of an edge list. It backs
// the sequential reference implementations used to validate the Chaos
// engine; the engine itself never materializes adjacency lists.
type Adjacency struct {
	// N is the number of vertices.
	N uint64
	// Out[v] lists the outgoing edges of v.
	Out [][]Edge
}

// BuildAdjacency constructs adjacency lists for n vertices. If n is zero it
// is inferred from the largest referenced vertex.
func BuildAdjacency(edges []Edge, n uint64) *Adjacency {
	if n == 0 {
		n = MaxVertex(edges)
	}
	deg := make([]int, n)
	for _, e := range edges {
		deg[e.Src]++
	}
	out := make([][]Edge, n)
	for v := range out {
		if deg[v] > 0 {
			out[v] = make([]Edge, 0, deg[v])
		}
	}
	for _, e := range edges {
		out[e.Src] = append(out[e.Src], e)
	}
	return &Adjacency{N: n, Out: out}
}

// OutDegree returns the out-degree of v.
func (a *Adjacency) OutDegree(v VertexID) int { return len(a.Out[v]) }

// NumEdges returns the total number of directed edges.
func (a *Adjacency) NumEdges() uint64 {
	var m uint64
	for _, es := range a.Out {
		m += uint64(len(es))
	}
	return m
}
