package graph

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

var allFormats = []Format{
	{Compact: true},
	{Compact: true, Weighted: true},
	{Compact: false},
	{Compact: false, Weighted: true},
}

func TestFormatSizes(t *testing.T) {
	want := map[Format]int{
		{Compact: true}:                  8,
		{Compact: true, Weighted: true}:  12,
		{Compact: false}:                 16,
		{Compact: false, Weighted: true}: 20,
	}
	for f, w := range want {
		if got := f.EdgeSize(); got != w {
			t.Errorf("%v EdgeSize = %d, want %d", f, got, w)
		}
	}
}

func TestFormatForMatchesPaperRule(t *testing.T) {
	if f := FormatFor(1<<32-1, false); !f.Compact {
		t.Error("graph just under 2^32 vertices should be compact")
	}
	if f := FormatFor(1<<32, false); f.Compact {
		t.Error("graph with 2^32 vertices must be non-compact")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, f := range allFormats {
		e := Edge{Src: 123456, Dst: 654321, Weight: 3.5}
		buf := make([]byte, f.EdgeSize())
		f.Encode(buf, e)
		got := f.Decode(buf)
		want := e
		if !f.Weighted {
			want.Weight = 0
		}
		if got != want {
			t.Errorf("%v round trip: got %+v want %+v", f, got, want)
		}
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	for _, f := range allFormats {
		f := f
		prop := func(src, dst uint32, w float32) bool {
			e := Edge{Src: VertexID(src), Dst: VertexID(dst), Weight: w}
			buf := make([]byte, f.EdgeSize())
			f.Encode(buf, e)
			got := f.Decode(buf)
			if !f.Weighted {
				e.Weight = 0
			}
			// NaN weights compare unequal; compare bit patterns via re-encode.
			buf2 := make([]byte, f.EdgeSize())
			f.Encode(buf2, got)
			return bytes.Equal(buf, buf2) && got.Src == e.Src && got.Dst == e.Dst
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Errorf("%v: %v", f, err)
		}
	}
}

func TestNonCompactCarries64BitIDs(t *testing.T) {
	f := Format{Compact: false}
	e := Edge{Src: 1 << 40, Dst: 1<<40 + 7}
	buf := make([]byte, f.EdgeSize())
	f.Encode(buf, e)
	if got := f.Decode(buf); got.Src != e.Src || got.Dst != e.Dst {
		t.Errorf("64-bit IDs mangled: %+v", got)
	}
}

func TestWriterReaderStream(t *testing.T) {
	for _, f := range allFormats {
		rng := rand.New(rand.NewSource(1))
		var edges []Edge
		for i := 0; i < 1000; i++ {
			e := Edge{Src: VertexID(rng.Uint32()), Dst: VertexID(rng.Uint32())}
			if f.Weighted {
				e.Weight = rng.Float32()
			}
			edges = append(edges, e)
		}
		var buf bytes.Buffer
		w := NewWriter(&buf, f)
		for _, e := range edges {
			if err := w.WriteEdge(e); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if w.Count() != 1000 {
			t.Errorf("writer count %d, want 1000", w.Count())
		}
		if got := buf.Len(); got != 1000*f.EdgeSize() {
			t.Errorf("%v: stream size %d, want %d", f, got, 1000*f.EdgeSize())
		}
		got, err := NewReader(&buf, f).ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(edges) {
			t.Fatalf("read %d edges, want %d", len(got), len(edges))
		}
		for i := range got {
			if got[i] != edges[i] {
				t.Fatalf("%v: edge %d: got %+v want %+v", f, i, got[i], edges[i])
			}
		}
	}
}

func TestReaderReportsTruncation(t *testing.T) {
	f := Format{Compact: true}
	r := NewReader(bytes.NewReader([]byte{1, 2, 3}), f)
	if _, err := r.ReadEdge(); err == nil || err == io.EOF {
		t.Errorf("truncated record: err = %v, want explicit error", err)
	}
}

func TestUndirectedDoublesEdges(t *testing.T) {
	in := []Edge{{Src: 1, Dst: 2, Weight: 5}, {Src: 3, Dst: 4, Weight: 7}}
	out := Undirected(in)
	if len(out) != 4 {
		t.Fatalf("got %d edges, want 4", len(out))
	}
	if out[1] != (Edge{Src: 2, Dst: 1, Weight: 5}) {
		t.Errorf("reverse edge wrong: %+v", out[1])
	}
}

// A self-loop is its own reverse: the undirected view must keep exactly
// one copy, or every self-looping vertex sees its degree (and the loop's
// weight contribution in MCST/SSSP) doubled.
func TestUndirectedEmitsSelfLoopsOnce(t *testing.T) {
	in := []Edge{
		{Src: 0, Dst: 0, Weight: 1},
		{Src: 0, Dst: 1, Weight: 2},
		{Src: 2, Dst: 2, Weight: 3},
		{Src: 2, Dst: 2, Weight: 4}, // parallel self-loops stay distinct
	}
	out := Undirected(in)
	want := []Edge{
		{Src: 0, Dst: 0, Weight: 1},
		{Src: 0, Dst: 1, Weight: 2},
		{Src: 1, Dst: 0, Weight: 2},
		{Src: 2, Dst: 2, Weight: 3},
		{Src: 2, Dst: 2, Weight: 4},
	}
	if len(out) != len(want) {
		t.Fatalf("got %d edges %+v, want %d", len(out), out, len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("edge %d: got %+v, want %+v", i, out[i], want[i])
		}
	}
	deg := make(map[VertexID]int)
	for _, e := range out {
		deg[e.Src]++
	}
	if deg[0] != 2 || deg[2] != 2 {
		t.Errorf("self-loop degree doubled: out-degrees %v", deg)
	}
}

func TestMaxVertex(t *testing.T) {
	if got := MaxVertex(nil); got != 0 {
		t.Errorf("empty: %d, want 0", got)
	}
	if got := MaxVertex([]Edge{{Src: 5, Dst: 9}}); got != 10 {
		t.Errorf("got %d, want 10", got)
	}
}

func TestBuildAdjacency(t *testing.T) {
	edges := []Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 2, Dst: 0}}
	a := BuildAdjacency(edges, 0)
	if a.N != 3 {
		t.Errorf("N = %d, want 3", a.N)
	}
	if a.OutDegree(0) != 2 || a.OutDegree(1) != 0 || a.OutDegree(2) != 1 {
		t.Errorf("degrees wrong: %d %d %d", a.OutDegree(0), a.OutDegree(1), a.OutDegree(2))
	}
	if a.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", a.NumEdges())
	}
}

func TestEncodeDecodeEdgesBatch(t *testing.T) {
	f := Format{Compact: true, Weighted: true}
	edges := []Edge{{1, 2, 0.5}, {3, 4, 1.5}, {5, 6, 2.5}}
	buf := f.EncodeEdges(nil, edges)
	got := f.DecodeEdges(nil, buf)
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("edge %d: got %+v want %+v", i, got[i], edges[i])
		}
	}
}

func TestDecodeEdgesPanicsOnPartialRecord(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on partial record")
		}
	}()
	Format{Compact: true}.DecodeEdges(nil, make([]byte, 9))
}
