package graph

import (
	"bufio"
	"fmt"
	"io"
)

// Writer streams binary edge records to an underlying writer.
type Writer struct {
	w   *bufio.Writer
	f   Format
	buf []byte
	n   uint64
}

// NewWriter creates an edge-list writer using format f.
func NewWriter(w io.Writer, f Format) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<20), f: f, buf: make([]byte, f.EdgeSize())}
}

// WriteEdge appends one edge record.
func (w *Writer) WriteEdge(e Edge) error {
	w.f.Encode(w.buf, e)
	if _, err := w.w.Write(w.buf); err != nil {
		return err
	}
	w.n++
	return nil
}

// Count returns the number of edges written so far.
func (w *Writer) Count() uint64 { return w.n }

// Flush writes any buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader streams binary edge records from an underlying reader.
type Reader struct {
	r   *bufio.Reader
	f   Format
	buf []byte
}

// NewReader creates an edge-list reader expecting format f.
func NewReader(r io.Reader, f Format) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<20), f: f, buf: make([]byte, f.EdgeSize())}
}

// ReadEdge returns the next edge, or io.EOF after the last record. A
// truncated final record is reported as an error.
func (r *Reader) ReadEdge() (Edge, error) {
	_, err := io.ReadFull(r.r, r.buf)
	if err == io.ErrUnexpectedEOF {
		return Edge{}, fmt.Errorf("graph: truncated edge record: %w", err)
	}
	if err != nil {
		return Edge{}, err
	}
	return r.f.Decode(r.buf), nil
}

// ReadAll reads every remaining edge.
func (r *Reader) ReadAll() ([]Edge, error) {
	var edges []Edge
	for {
		e, err := r.ReadEdge()
		if err == io.EOF {
			return edges, nil
		}
		if err != nil {
			return edges, err
		}
		edges = append(edges, e)
	}
}

// Undirected returns the edge list converted for undirected algorithms by
// adding the reverse of every edge (§8: "we convert directed to undirected
// graphs by adding a reverse edge"). A self-loop is its own reverse and is
// emitted once; duplicating it would double the loop's degree and weight
// contribution in every undirected view.
func Undirected(edges []Edge) []Edge {
	out := make([]Edge, 0, 2*len(edges))
	for _, e := range edges {
		if e.Src == e.Dst {
			out = append(out, e)
			continue
		}
		out = append(out, e, Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight})
	}
	return out
}

// MaxVertex returns one past the largest vertex ID referenced, i.e. the
// vertex-set size for densely numbered graphs. It returns 0 for an empty
// edge list.
func MaxVertex(edges []Edge) uint64 {
	var max uint64
	for _, e := range edges {
		if uint64(e.Src) >= max {
			max = uint64(e.Src) + 1
		}
		if uint64(e.Dst) >= max {
			max = uint64(e.Dst) + 1
		}
	}
	return max
}
