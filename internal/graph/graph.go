// Package graph defines the on-disk and in-memory graph representations
// shared by the Chaos engine, its baselines, and the workload generators.
//
// Following the paper (§8), the input to a computation is an unsorted edge
// list. Each edge carries its source and target vertex and an optional
// weight. Graphs with fewer than 2^32 vertices use the compact format
// (4 bytes per vertex ID and per weight); larger graphs use the non-compact
// format (8 bytes per ID).
package graph

import (
	"encoding/binary"
	"fmt"
)

// VertexID identifies a vertex. IDs are dense: a graph with N vertices uses
// IDs 0..N-1.
type VertexID uint64

// Edge is a directed edge with an optional weight. For unweighted graphs
// and formats the weight is carried as zero.
type Edge struct {
	Src, Dst VertexID
	Weight   float32
}

// Format describes the binary edge record layout.
type Format struct {
	// Compact selects 4-byte vertex IDs (valid for < 2^32 vertices).
	Compact bool
	// Weighted adds a 4-byte IEEE-754 weight to every record.
	Weighted bool
}

// FormatFor returns the natural format for a graph with numVertices
// vertices, compact when the IDs fit in 32 bits (§8).
func FormatFor(numVertices uint64, weighted bool) Format {
	return Format{Compact: numVertices < 1<<32, Weighted: weighted}
}

// EdgeSize returns the size in bytes of one edge record.
func (f Format) EdgeSize() int {
	s := 16
	if f.Compact {
		s = 8
	}
	if f.Weighted {
		s += 4
	}
	return s
}

// Encode writes e into buf, which must be at least EdgeSize bytes.
func (f Format) Encode(buf []byte, e Edge) {
	if f.Compact {
		binary.LittleEndian.PutUint32(buf[0:4], uint32(e.Src))
		binary.LittleEndian.PutUint32(buf[4:8], uint32(e.Dst))
		if f.Weighted {
			binary.LittleEndian.PutUint32(buf[8:12], floatBits(e.Weight))
		}
		return
	}
	binary.LittleEndian.PutUint64(buf[0:8], uint64(e.Src))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(e.Dst))
	if f.Weighted {
		binary.LittleEndian.PutUint32(buf[16:20], floatBits(e.Weight))
	}
}

// Decode reads one edge record from buf.
func (f Format) Decode(buf []byte) Edge {
	var e Edge
	if f.Compact {
		e.Src = VertexID(binary.LittleEndian.Uint32(buf[0:4]))
		e.Dst = VertexID(binary.LittleEndian.Uint32(buf[4:8]))
		if f.Weighted {
			e.Weight = floatFromBits(binary.LittleEndian.Uint32(buf[8:12]))
		}
		return e
	}
	e.Src = VertexID(binary.LittleEndian.Uint64(buf[0:8]))
	e.Dst = VertexID(binary.LittleEndian.Uint64(buf[8:16]))
	if f.Weighted {
		e.Weight = floatFromBits(binary.LittleEndian.Uint32(buf[16:20]))
	}
	return e
}

func (f Format) String() string {
	n, w := "non-compact", "unweighted"
	if f.Compact {
		n = "compact"
	}
	if f.Weighted {
		w = "weighted"
	}
	return fmt.Sprintf("%s/%s (%dB/edge)", n, w, f.EdgeSize())
}

// EncodeEdges appends the binary encoding of edges to dst and returns the
// extended slice.
func (f Format) EncodeEdges(dst []byte, edges []Edge) []byte {
	sz := f.EdgeSize()
	off := len(dst)
	dst = append(dst, make([]byte, sz*len(edges))...)
	for _, e := range edges {
		f.Encode(dst[off:off+sz], e)
		off += sz
	}
	return dst
}

// DecodeEdges appends all edge records in buf to dst and returns the
// extended slice. len(buf) must be a multiple of EdgeSize.
func (f Format) DecodeEdges(dst []Edge, buf []byte) []Edge {
	sz := f.EdgeSize()
	if len(buf)%sz != 0 {
		panic(fmt.Sprintf("graph: buffer of %d bytes is not a whole number of %dB edges", len(buf), sz))
	}
	for off := 0; off < len(buf); off += sz {
		dst = append(dst, f.Decode(buf[off:off+sz]))
	}
	return dst
}
