package service

import (
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"chaos/internal/obs"
)

// statusWriter captures the status code and body size a handler
// produced, so the logging/metrics layer can report them after the
// fact. It must keep streaming working: handleJobEvents type-asserts
// http.Flusher on the writer it receives, so Flush exists
// unconditionally and forwards when the underlying writer streams.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK // implicit WriteHeader on first Write
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK // handler wrote nothing at all
	}
	return w.code
}

// reqID numbers requests process-wide so log lines from one request
// correlate (and interleaved concurrent requests stay tellable apart).
// It is also the counter trace-id derivation pairs with the boot nonce,
// so fresh traces are unique per request without a randomness source.
var reqID atomic.Uint64

// bootNonce seeds derived trace ids for requests that arrive without a
// traceparent; pid + boot instant keeps traces from different process
// lives distinct (the lifecycle journal outlives the process, so ids
// minted after a restart must not collide with journaled ones).
var (
	bootNonceOnce sync.Once
	bootNonceVal  string
)

func bootNonce() string {
	bootNonceOnce.Do(func() {
		bootNonceVal = fmt.Sprintf("chaos-serve/%d/%d", os.Getpid(), time.Now().UnixNano())
	})
	return bootNonceVal
}

// startTrace resolves the request's trace context: adopt the caller's
// trace when it sent a well-formed W3C traceparent (the caller's span
// becomes the remote parent), otherwise start a fresh derived trace.
// Either way this process opens its own request span.
func startTrace(r *http.Request, id uint64, start time.Time) *reqTrace {
	rt := &reqTrace{name: r.Method + " " + r.URL.Path, start: start}
	if tid, parent, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
		rt.traceID = tid.String()
		rt.parent = parent.String()
		rt.remote = true
	} else {
		rt.traceID = obs.DeriveTraceID(bootNonce(), id).String()
	}
	rt.span = obs.DeriveSpanID(rt.traceID+"/req", id).String()
	return rt
}

// instrument wraps the API mux with the observability layer: every
// request is timed into the per-route duration histogram, carries a
// trace context (inbound traceparent honored, the trace id echoed back
// in a traceparent response header), and — when the service has a
// logger — is logged as one structured line, trace id included, after
// it completes. Metrics always run; logging is opt-in via Config.Logger
// so library users and tests stay quiet by default.
func (s *Service) instrument(next http.Handler) http.Handler {
	logger := s.cfg.Logger
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := reqID.Add(1)
		start := time.Now()
		rt := startTrace(r, id, start)
		// Echo the trace identity before the handler writes: the caller
		// learns which trace to query (GET /v1/traces/{id}) even on
		// errors, and our request span id is what a downstream hop of
		// theirs would parent under.
		w.Header().Set("traceparent", "00-"+rt.traceID+"-"+rt.span+"-01")
		r = r.WithContext(withReqTrace(r.Context(), rt))
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		// ServeMux stamps the matched pattern onto the request it
		// dispatched, so the route label is readable here — after the
		// handler — without re-matching. Empty means nothing matched.
		route := r.Pattern
		if route == "" {
			route = routeUnmatched
		}
		s.metrics.observeHTTP(route, elapsed.Seconds())
		if logger != nil {
			logger.Info("http_request",
				slog.Uint64("req", id),
				slog.String("trace", rt.traceID),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", sw.status()),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("dur", elapsed),
				slog.String("remote", r.RemoteAddr),
			)
		}
	})
}
