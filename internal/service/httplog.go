package service

import (
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"
)

// statusWriter captures the status code and body size a handler
// produced, so the logging/metrics layer can report them after the
// fact. It must keep streaming working: handleJobEvents type-asserts
// http.Flusher on the writer it receives, so Flush exists
// unconditionally and forwards when the underlying writer streams.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK // implicit WriteHeader on first Write
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK // handler wrote nothing at all
	}
	return w.code
}

// reqID numbers requests process-wide so log lines from one request
// correlate (and interleaved concurrent requests stay tellable apart).
var reqID atomic.Uint64

// instrument wraps the API mux with the observability layer: every
// request is timed into the per-route duration histogram, and — when
// the service has a logger — logged as one structured line after it
// completes. Metrics always run; logging is opt-in via Config.Logger
// so library users and tests stay quiet by default.
func (s *Service) instrument(next http.Handler) http.Handler {
	logger := s.cfg.Logger
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := reqID.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		// ServeMux stamps the matched pattern onto the request it
		// dispatched, so the route label is readable here — after the
		// handler — without re-matching. Empty means nothing matched.
		route := r.Pattern
		if route == "" {
			route = routeUnmatched
		}
		s.metrics.observeHTTP(route, elapsed.Seconds())
		if logger != nil {
			logger.Info("http_request",
				slog.Uint64("req", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", sw.status()),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("dur", elapsed),
				slog.String("remote", r.RemoteAddr),
			)
		}
	})
}
