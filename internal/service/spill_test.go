package service

import (
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chaos"
)

// TestSpillMetricsPreSeeded checks the out-of-core counters are present
// in the Prometheus exposition — with HELP/TYPE headers and a zero
// sample — before any job has spilled, so dashboards and alerts see the
// series from the first scrape (absent-vs-zero matters to alerting).
func TestSpillMetricsPreSeeded(t *testing.T) {
	svc := newTestService(t, 1)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"# HELP chaos_spill_bytes_total ",
		"# TYPE chaos_spill_bytes_total counter",
		"\nchaos_spill_bytes_total 0\n",
		"# HELP chaos_spill_files_total ",
		"# TYPE chaos_spill_files_total counter",
		"\nchaos_spill_files_total 0\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
	// Exposition-format sanity for the two families: HELP, then TYPE,
	// then the sample, each on its own line.
	for _, fam := range []string{"chaos_spill_bytes_total", "chaos_spill_files_total"} {
		help := strings.Index(text, "# HELP "+fam)
		typ := strings.Index(text, "# TYPE "+fam)
		sample := strings.Index(text, "\n"+fam+" ")
		if !(help >= 0 && help < typ && typ < sample) {
			t.Errorf("%s: HELP/TYPE/sample out of order (%d, %d, %d)", fam, help, typ, sample)
		}
	}
}

// TestSpillOrphanSweepOnOpen plants a fake dead-run spill directory
// under the data dir and checks Open removes it: a process killed
// mid-spill must not leak disk across restarts.
func TestSpillOrphanSweepOnOpen(t *testing.T) {
	dir := t.TempDir()
	orphan := filepath.Join(dir, "spill", "chaos-spill-dead123")
	if err := os.MkdirAll(orphan, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(orphan, "upd.s0000.d0001"), []byte("stale spill data"), 0o644); err != nil {
		t.Fatal(err)
	}
	svc := openDurable(t, dir, 1)
	defer svc.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan spill dir survived Open: stat err = %v", err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "spill"))
	if err != nil {
		t.Fatalf("spill root missing after Open: %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("spill root not empty after sweep: %v", entries)
	}
}

// TestNativeOutOfCoreJobThroughService runs a native job with a memory
// budget small enough to spill, end to end through the service: the
// option travels the wire form, the run spills under the service's
// spill root, the report carries the tallies, and stats and /metrics
// both surface them.
func TestNativeOutOfCoreJobThroughService(t *testing.T) {
	dir := t.TempDir()
	svc := openDurable(t, dir, 1)
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	if _, err := svc.RegisterGraph(GraphSpec{Name: "g", Type: "rmat", Scale: 14, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	jv, err := svc.Submit("g", "BFS", chaos.Options{Engine: chaos.EngineNative, MemoryBudgetMB: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := waitJob(t, svc, jv.ID)
	if done.State != JobDone {
		t.Fatalf("job ended %s: %s", done.State, done.Error)
	}
	if done.Report == nil || done.Report.SpillBytes == 0 || done.Report.SpillFiles == 0 {
		t.Fatalf("budgeted native run did not spill: %+v", done.Report)
	}
	st := svc.Stats()
	if st.SpillBytes != done.Report.SpillBytes || st.SpillFiles != done.Report.SpillFiles {
		t.Errorf("stats spill counters (%d, %d) do not match report (%d, %d)",
			st.SpillBytes, st.SpillFiles, done.Report.SpillBytes, done.Report.SpillFiles)
	}
	// The run's temp dir under the service spill root is gone.
	entries, err := os.ReadDir(filepath.Join(dir, "spill"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("spill root not empty after job: %v", entries)
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "chaos_spill_files_total 1") &&
		!strings.Contains(string(raw), "chaos_spill_bytes_total") {
		t.Error("/metrics lacks spill counters after an out-of-core run")
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "chaos_spill_bytes_total ") && strings.HasSuffix(line, " 0") {
			t.Errorf("spill bytes still zero after an out-of-core run: %q", line)
		}
	}
}
