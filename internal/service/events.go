// Emission/listing order in this file must be byte-stable across runs:
// chaos-vet's detrange analyzer checks every map iteration below.
//
//chaos:sorted-maps
package service

import "sync"

// Event types carried by JobEvent.
const (
	// EventState marks a lifecycle transition (or the snapshot a fresh
	// subscriber receives first); Job is the payload-stripped view.
	EventState = "state"
	// EventProgress marks an engine iteration-boundary tick; Job carries
	// the live Progress snapshot and no timestamps.
	EventProgress = "progress"
)

// JobEvent is one entry of a job's event stream (the SSE payload).
type JobEvent struct {
	// Seq orders events hub-wide: within one job it is strictly
	// increasing, so clients can detect reordering or replay. The
	// snapshot that opens an SSE stream carries the watermark sequence
	// it is current as of; every live event that follows is above it.
	Seq  uint64  `json:"seq"`
	Type string  `json:"type"`
	Job  JobView `json:"job"`
}

// eventHub fans job events out to subscribers. Publishing never
// blocks: a progress tick that finds a subscriber's buffer full is
// dropped (advisory data; see publish), while a subscriber too slow
// for state transitions is disconnected (channel closed) so it can
// resubscribe and resync from a fresh snapshot instead of silently
// missing a transition.
type eventHub struct {
	mu     sync.Mutex
	seq    uint64
	closed bool
	subs   map[string]map[chan JobEvent]struct{}
}

// subBuffer is each subscriber's channel depth: enough for every
// lifecycle transition of a job plus a healthy run of progress ticks
// between reads.
const subBuffer = 64

func newEventHub() *eventHub {
	return &eventHub{subs: make(map[string]map[chan JobEvent]struct{})}
}

// subscribe registers for events about job id. The channel is closed
// when the subscriber falls too far behind a state transition, or when
// the hub shuts down; cancel unsubscribes (idempotent, safe after the
// hub-side close). On a closed hub the channel comes back already
// closed, so a stream opened during drain ends after its snapshot.
func (h *eventHub) subscribe(id string) (<-chan JobEvent, func()) {
	ch := make(chan JobEvent, subBuffer)
	h.mu.Lock()
	if h.closed {
		close(ch)
		h.mu.Unlock()
		return ch, func() {}
	}
	set := h.subs[id]
	if set == nil {
		set = make(map[chan JobEvent]struct{})
		h.subs[id] = set
	}
	set[ch] = struct{}{}
	h.mu.Unlock()
	cancel := func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if set, ok := h.subs[id]; ok {
			if _, live := set[ch]; live {
				h.dropLocked(id, ch)
			}
		}
	}
	return ch, cancel
}

// dropLocked removes and closes one subscription; callers hold h.mu
// and have verified the channel is still registered (the guard that
// makes close exactly-once).
func (h *eventHub) dropLocked(id string, ch chan JobEvent) {
	set := h.subs[id]
	delete(set, ch)
	if len(set) == 0 {
		delete(h.subs, id)
	}
	close(ch)
}

// lastSeq returns the hub's latest published sequence number — the
// watermark a snapshot taken now is at least as fresh as (publishers
// of job state hold the scheduler mutex across both the mutation and
// the publish, so anything at or below this seq is already reflected
// in a view snapshotted under that same mutex).
func (h *eventHub) lastSeq() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seq
}

// closeAll disconnects every subscriber and refuses new ones — called
// when shutdown begins, so open SSE streams end immediately instead of
// holding the HTTP server's drain budget for the life of their jobs.
func (h *eventHub) closeAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for id, set := range h.subs {
		for ch := range set {
			close(ch)
		}
		delete(h.subs, id)
	}
}

// publish delivers an event to every subscriber of the job,
// non-blocking. A full buffer drops the incoming progress tick — the
// ~64 queued ticks the client has not read are fresher signal than
// perfect recency, and the next state event against a still-full
// buffer disconnects the laggard anyway, forcing a resync from a fresh
// snapshot. A state event must never be silently lost, hence the
// disconnect rather than a drop.
func (h *eventHub) publish(id, typ string, v JobView) {
	h.mu.Lock()
	defer h.mu.Unlock()
	set := h.subs[id]
	if len(set) == 0 {
		return
	}
	h.seq++
	ev := JobEvent{Seq: h.seq, Type: typ, Job: v}
	// Each subscriber observes only its own channel: per-subscriber
	// ordering is fixed by seq, and cross-subscriber delivery order is
	// concurrent anyway, so iteration order cannot leak into anything a
	// client can distinguish.
	//chaos:nondeterministic-ok per-subscriber streams are independent; order is unobservable
	for ch := range set {
		select {
		case ch <- ev:
		default:
			if typ != EventProgress {
				h.dropLocked(id, ch)
			}
		}
	}
}
