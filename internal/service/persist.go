package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"chaos"
	"chaos/internal/durable"
	"chaos/internal/graph"
	"chaos/internal/obs"
)

// Journal record kinds. The on-disk layout under Config.DataDir:
//
//	wal/journal-<seq>.wal   append-only record segments (durable.Journal)
//	wal/snapshot.json       latest compacting snapshot (serviceSnapshot)
//	results/<k[:2]>/<key>   content-addressed result blobs (storedResult)
//	uploads/<id>.edges      uploaded edge-list payloads (chaos-gen binary)
//
// Unknown kinds are skipped on replay, so older binaries tolerate
// journals written by newer ones.
const (
	recGraph  = "graph"  // graphRecord: a registration (spec, not edge bytes)
	recJob    = "job"    // jobRecord: full job state at a transition (upsert)
	recResult = "result" // resultRecord: a result-store write
)

// graphRecord is the journaled form of a registration. Edge bytes are
// never journaled: generated graphs are deterministic functions of
// (type, scale/pages, seed), and uploads persist their payload under
// uploads/ with only the path recorded here.
type graphRecord struct {
	ID         string    `json:"id"`
	Type       string    `json:"type"`
	Scale      int       `json:"scale,omitempty"`
	Pages      uint64    `json:"pages,omitempty"`
	Seed       int64     `json:"seed,omitempty"`
	Registered time.Time `json:"registered"`
	// SpecWeighted and DeclaredVertices reproduce the upload record
	// format (graph.FormatFor's inputs); Weighted/Vertices/Edges are the
	// effective metadata served without materializing.
	SpecWeighted     bool   `json:"specWeighted,omitempty"`
	DeclaredVertices uint64 `json:"declaredVertices,omitempty"`
	Weighted         bool   `json:"weighted"`
	Vertices         uint64 `json:"vertices"`
	Edges            int    `json:"edges"`
	Upload           string `json:"upload,omitempty"` // data-dir-relative payload path
}

// jobRecord is the journaled form of one job transition. It carries the
// job's complete state, not a delta, so replay is an idempotent upsert:
// the last record wins, and a record that also made it into a snapshot
// is harmless to reapply.
type jobRecord struct {
	ID        string        `json:"id"`
	Graph     string        `json:"graph"`
	Algorithm string        `json:"algorithm"`
	Options   chaos.Options `json:"options"`
	State     JobState      `json:"state"`
	// Canceling marks a running job whose cancellation the API already
	// accepted; recovery honors it by restoring the job as canceled
	// instead of re-enqueuing it.
	Canceling  bool      `json:"canceling,omitempty"`
	Error      string    `json:"error,omitempty"`
	CacheHit   bool      `json:"cacheHit,omitempty"`
	Restarts   int       `json:"restarts,omitempty"`
	EnqueuedAt time.Time `json:"enqueuedAt"`
	StartedAt  time.Time `json:"startedAt,omitzero"`
	FinishedAt time.Time `json:"finishedAt,omitzero"`
	// Trace state: the job's trace identity and its lifecycle span list
	// (full copy, like the rest of the record — replay is an upsert).
	// Journaling the spans is what makes GET /v1/jobs/{id}/trace serve a
	// complete lifecycle tree even after a SIGKILL-restart; engine spans
	// stay execution-scoped and are never persisted. Absent in records
	// journaled before tracing existed.
	TraceID     string         `json:"traceId,omitempty"`
	TraceRemote bool           `json:"traceRemote,omitempty"`
	SpanSeq     uint64         `json:"spanSeq,omitempty"`
	Spans       []obs.TreeSpan `json:"spans,omitempty"`
}

// resultRecord notes a result-store write. The store itself re-indexes
// its directory on boot, so the record is informational (ordering the
// blob against job transitions in the log, sizing during debugging).
type resultRecord struct {
	Key   string `json:"key"`
	Bytes int    `json:"bytes"`
}

// serviceSnapshot is the compacting snapshot: the full durable state at
// capture time. Replay applies it first, then the surviving journal
// records on top.
type serviceSnapshot struct {
	SavedAt     time.Time     `json:"savedAt"`
	NextGraphID int           `json:"nextGraphID"`
	NextJobID   int           `json:"nextJobID"`
	Graphs      []graphRecord `json:"graphs"`
	Jobs        []jobRecord   `json:"jobs"`
}

// persistence bundles the durable machinery behind a Service with a
// data dir. A Service without one has a nil *persistence.
type persistence struct {
	dataDir       string
	wal           *durable.WAL
	store         *durable.ResultStore
	snapshotEvery int
	compacting    atomic.Bool
	// err is the first persistence failure (sticky, reported in Stats):
	// the service keeps serving from memory, but durability is gone and
	// operators need to see that.
	err atomic.Value // string
}

func openPersistence(cfg Config) (*persistence, *durable.Recovered, error) {
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, nil, err
	}
	wal, rec, err := durable.OpenWAL(filepath.Join(cfg.DataDir, "wal"), 0)
	if err != nil {
		return nil, nil, err
	}
	store, err := durable.OpenResultStore(filepath.Join(cfg.DataDir, "results"), cfg.ResultStoreMaxBytes)
	if err != nil {
		wal.Close()
		return nil, nil, err
	}
	return &persistence{
		dataDir:       cfg.DataDir,
		wal:           wal,
		store:         store,
		snapshotEvery: cfg.SnapshotEvery,
	}, rec, nil
}

// note records a persistence failure without failing the request path.
func (p *persistence) note(err error) {
	if err != nil {
		p.err.CompareAndSwap(nil, err.Error())
	}
}

// lastError returns the sticky persistence failure, "" when healthy.
func (p *persistence) lastError() string {
	if s, ok := p.err.Load().(string); ok {
		return s
	}
	return ""
}

// uploadRel is where a graph's uploaded payload lives, relative to the
// data dir. Derived from the id so nothing has to be mutated after
// registration.
func uploadRel(id string) string { return filepath.Join("uploads", id+".edges") }

// graphRecordOf flattens a registered graph for the journal/snapshot.
func graphRecordOf(g *Graph) graphRecord {
	rec := graphRecord{
		ID:               g.ID,
		Type:             g.Type,
		Scale:            g.spec.Scale,
		Pages:            g.spec.Pages,
		Seed:             g.spec.Seed,
		Registered:       g.Registered,
		SpecWeighted:     g.spec.Weighted,
		DeclaredVertices: g.spec.Vertices,
		Weighted:         g.Weighted,
		Vertices:         g.Vertices,
		Edges:            g.EdgeCount,
	}
	if g.Type == "upload" {
		rec.Upload = uploadRel(g.ID)
	}
	return rec
}

// graphFromRecord rebuilds a catalog entry lazily: metadata now, edges
// on first use via the loader.
func graphFromRecord(rec graphRecord, dataDir string) *Graph {
	g := &Graph{
		ID:         rec.ID,
		Type:       rec.Type,
		Weighted:   rec.Weighted,
		Vertices:   rec.Vertices,
		EdgeCount:  rec.Edges,
		Registered: rec.Registered,
		persisted:  true, // it came FROM the log
		spec: GraphSpec{
			Name:     rec.ID,
			Type:     rec.Type,
			Scale:    rec.Scale,
			Pages:    rec.Pages,
			Weighted: rec.SpecWeighted,
			Seed:     rec.Seed,
			Vertices: rec.DeclaredVertices,
		},
	}
	switch rec.Type {
	case "rmat":
		g.load = func() ([]chaos.Edge, error) {
			return chaos.GenerateRMAT(rec.Scale, rec.SpecWeighted, rec.Seed), nil
		}
	case "web":
		g.load = func() ([]chaos.Edge, error) {
			return chaos.GenerateWebGraph(rec.Pages, rec.Seed), nil
		}
	case "upload":
		path := filepath.Join(dataDir, rec.Upload)
		g.load = func() ([]chaos.Edge, error) {
			data, err := os.ReadFile(path)
			if err != nil {
				return nil, err
			}
			declared := rec.DeclaredVertices
			if declared == 0 {
				declared = 1 // compact format, as at registration
			}
			return graph.NewReader(bytes.NewReader(data), graph.FormatFor(declared, rec.SpecWeighted)).ReadAll()
		}
	default:
		g.load = func() ([]chaos.Edge, error) {
			return nil, fmt.Errorf("unknown persisted graph type %q", rec.Type)
		}
	}
	return g
}

// jobRecordOf flattens a job for the journal/snapshot; callers hold the
// scheduler's mutex.
func jobRecordOf(j *Job) jobRecord {
	return jobRecord{
		ID:         j.ID,
		Graph:      j.Graph,
		Algorithm:  j.Algorithm,
		Options:    j.Options,
		State:      j.state,
		Canceling:  j.canceling.Load() && j.state == JobRunning,
		Error:      j.err,
		CacheHit:   j.cacheHit,
		Restarts:   j.restarts,
		EnqueuedAt: j.enqueuedAt,
		StartedAt:  j.startedAt,
		FinishedAt: j.finishedAt,

		TraceID:     j.traceID,
		TraceRemote: j.traceRemote,
		SpanSeq:     j.spanSeq,
		Spans:       append([]obs.TreeSpan(nil), j.spans...),
	}
}

func terminal(s JobState) bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// recover rebuilds the service's state from what the WAL found:
// snapshot first, then journal records as idempotent upserts. Jobs that
// were queued or running at crash time are re-enqueued (the engine is
// deterministic, so a rerun reproduces the lost run exactly — usually
// as a disk-cache hit); jobs whose graph cannot be recovered are failed
// with a restart reason.
func (s *Service) recover(rec *durable.Recovered) error {
	var snap serviceSnapshot
	if rec.Snapshot != nil {
		if err := json.Unmarshal(rec.Snapshot, &snap); err != nil {
			return fmt.Errorf("service: decoding snapshot: %w", err)
		}
	}

	graphs := snap.Graphs
	graphIdx := make(map[string]int, len(graphs))
	for i, g := range graphs {
		graphIdx[g.ID] = i
	}
	jobs := snap.Jobs
	jobIdx := make(map[string]int, len(jobs))
	for i, j := range jobs {
		jobIdx[j.ID] = i
	}

	for _, r := range rec.Records {
		switch r.Kind {
		case recGraph:
			var gr graphRecord
			if err := json.Unmarshal(r.Data, &gr); err != nil {
				return fmt.Errorf("service: decoding graph record: %w", err)
			}
			if _, ok := graphIdx[gr.ID]; ok {
				continue // snapshot already has it (compaction overlap)
			}
			graphIdx[gr.ID] = len(graphs)
			graphs = append(graphs, gr)
		case recJob:
			var jr jobRecord
			if err := json.Unmarshal(r.Data, &jr); err != nil {
				return fmt.Errorf("service: decoding job record: %w", err)
			}
			if i, ok := jobIdx[jr.ID]; ok {
				// Last record wins — except that a snapshot captured
				// after this record was appended may already hold a
				// LATER state (the compaction overlap window). A
				// terminal state never regresses.
				if terminal(jobs[i].State) && !terminal(jr.State) {
					continue
				}
				jobs[i] = jr
				continue
			}
			jobIdx[jr.ID] = len(jobs)
			jobs = append(jobs, jr)
		case recResult:
			// The result store re-indexed its directory already.
		default:
			// Forward compatibility: skip kinds this binary predates.
		}
	}

	// Catalog: restore metadata; edges re-materialize lazily.
	nextGraph := snap.NextGraphID
	for _, gr := range graphs {
		s.catalog.restore(graphFromRecord(gr, s.persist.dataDir))
		var n int
		if _, err := fmt.Sscanf(gr.ID, "g%d", &n); err == nil && n > nextGraph {
			nextGraph = n
		}
	}
	s.catalog.floorNextID(nextGraph)

	// Scheduler: restore history, re-enqueue interrupted work.
	sort.SliceStable(jobs, func(i, k int) bool {
		a, _ := jobSeq(jobs[i].ID)
		b, _ := jobSeq(jobs[k].ID)
		return a < b
	})
	s.restoreJobs(jobs, snap.NextJobID)
	return nil
}

// restoreJobs files recovered job records with the scheduler. Terminal
// jobs come back as history (results rehydrate lazily from the disk
// store); queued/running jobs go back on the queue, or fail if their
// graph is gone. Changed jobs are re-journaled so the log reflects the
// requeue/failure.
func (s *Service) restoreJobs(recs []jobRecord, nextID int) {
	sc := s.scheduler
	now := time.Now().UTC()
	sc.mu.Lock()
	defer sc.mu.Unlock()
	maxSeq := nextID
	for _, r := range recs {
		if _, dup := sc.jobs[r.ID]; dup {
			continue
		}
		j := &Job{
			ID:         r.ID,
			Graph:      r.Graph,
			Algorithm:  r.Algorithm,
			Options:    r.Options,
			state:      r.State,
			err:        r.Error,
			cacheHit:   r.CacheHit,
			restarts:   r.Restarts,
			enqueuedAt: r.EnqueuedAt,
			startedAt:  r.StartedAt,
			finishedAt: r.FinishedAt,

			traceID:     r.TraceID,
			traceRemote: r.TraceRemote,
			spanSeq:     r.SpanSeq,
			spans:       append([]obs.TreeSpan(nil), r.Spans...),
		}
		// Rebuild the trace bookkeeping (root/open span ids) from the
		// journaled spans before any transition below needs to close or
		// extend them; pre-trace records get a synthetic root.
		sc.restoreTraceLocked(j)
		changed := false
		switch {
		case !terminal(j.state) && r.Canceling:
			// The API accepted this cancellation before the crash;
			// honor it instead of rerunning the job.
			j.state = JobCanceled
			j.err = "canceled while running; the process restarted before the run stopped"
			j.finishedAt = now
			j.noteTerminalLocked(now)
			changed = true
		case !terminal(j.state):
			if _, ok := s.catalog.Get(j.Graph); !ok {
				j.state = JobFailed
				j.err = fmt.Sprintf("not recoverable after restart: graph %q is gone", j.Graph)
				j.finishedAt = now
				j.noteTerminalLocked(now)
			} else {
				// Re-enqueues bypass admission control: a job the API
				// already accepted must not be dropped by MaxQueue.
				j.state = JobQueued
				j.startedAt = time.Time{}
				j.finishedAt = time.Time{}
				j.restarts++
				sc.noteRecoveryLocked(j, now)
				sc.queue = append(sc.queue, j)
				sc.queued++
			}
			changed = true
		}
		sc.jobs[j.ID] = j
		sc.order = append(sc.order, j.ID)
		sc.counts[j.Algorithm]++
		sc.engines[j.engine()]++ // pre-engine records fold to "sim"
		if seq, ok := jobSeq(j.ID); ok && seq > maxSeq {
			maxSeq = seq
		}
		if changed {
			sc.noteLocked(j)
		}
	}
	sc.nextID = maxSeq
	sc.pruneLocked()
	sc.cond.Broadcast()
}

// noteJob is the scheduler's transition hook: journal every state
// change (called with the scheduler mutex held, which keeps the journal
// in transition order; the append is a buffered write, fsync is
// batched). It also drives the snapshot policy.
func (s *Service) noteJob(j *Job) {
	s.persist.note(s.persist.wal.Append(recJob, jobRecordOf(j)))
	s.maybeCompact()
}

// persistGraph makes a fresh registration durable: the upload payload
// (if any) first, fsynced, then the journal record, synced before the
// client sees 201 — a graph the API acknowledged must never vanish.
func (s *Service) persistGraph(g *Graph, payload []byte) error {
	p := s.persist
	if g.Type == "upload" {
		path := filepath.Join(p.dataDir, uploadRel(g.ID))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		if err := durable.WriteFileAtomic(path, payload); err != nil {
			return err
		}
	}
	if err := p.wal.Append(recGraph, graphRecordOf(g)); err != nil {
		return err
	}
	if err := p.wal.Sync(); err != nil {
		return err
	}
	g.markPersisted() // snapshots may include it from here on
	s.maybeCompact()
	return nil
}

// persistResult makes a finished run durable: blob first (fsynced by
// the store), then the journal record. Runs on the worker goroutine
// that computed the result, off every lock.
func (s *Service) persistResult(key string, res *chaos.Result, rep *chaos.Report) {
	p := s.persist
	data, err := json.Marshal(storedResult{Result: res, Report: rep})
	if err != nil {
		p.note(err)
		return
	}
	if err := p.store.Put(key, data); err != nil {
		p.note(err)
		return
	}
	p.note(p.wal.Append(recResult, resultRecord{Key: key, Bytes: len(data)}))
}

// maybeCompact kicks off a background snapshot once the journal has
// accumulated SnapshotEvery records. Single-flight; the snapshot runs
// off the request path (see durable.WAL.Compact for why appends may
// proceed concurrently).
func (s *Service) maybeCompact() {
	p := s.persist
	if p.wal.AppendedSinceCompact() < p.snapshotEvery {
		return
	}
	if !p.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer p.compacting.Store(false)
		p.note(p.wal.Compact(s.captureSnapshot))
	}()
}

// captureSnapshot freezes the full durable state. Called by the WAL
// after rotating the journal; takes the catalog and scheduler locks.
func (s *Service) captureSnapshot() (any, error) {
	snap := serviceSnapshot{SavedAt: time.Now().UTC()}
	c := s.catalog
	c.mu.RLock()
	snap.NextGraphID = c.nextID
	graphs := make([]*Graph, 0, len(c.order))
	for _, id := range c.order {
		graphs = append(graphs, c.graphs[id])
	}
	c.mu.RUnlock()
	for _, g := range graphs {
		// Skip registrations the journal does not hold yet: if their
		// persist step fails they are rolled back and reported 500, and
		// a snapshot must not resurrect them (isPersisted takes g.mu,
		// so it cannot be read under the catalog lock ordering).
		if g.isPersisted() {
			snap.Graphs = append(snap.Graphs, graphRecordOf(g))
		}
	}
	sc := s.scheduler
	sc.mu.Lock()
	snap.NextJobID = sc.nextID
	for _, id := range sc.order {
		snap.Jobs = append(snap.Jobs, jobRecordOf(sc.jobs[id]))
	}
	sc.mu.Unlock()
	return snap, nil
}
