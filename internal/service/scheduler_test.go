package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chaos"
)

// gate is a controllable runFunc: each run blocks until released and
// records the peak concurrency the pool allowed.
type gate struct {
	release chan struct{}
	active  atomic.Int32
	peak    atomic.Int32
	runs    atomic.Int32
}

func newGate() *gate { return &gate{release: make(chan struct{})} }

// run blocks until released or canceled, mirroring the engine's
// iteration-boundary cancellation: a canceled context surfaces as
// ctx.Err() from the run.
func (g *gate) run(ctx context.Context, j *Job) (*chaos.Result, *chaos.Report, error) {
	n := g.active.Add(1)
	for {
		p := g.peak.Load()
		if n <= p || g.peak.CompareAndSwap(p, n) {
			break
		}
	}
	defer g.active.Add(-1)
	select {
	case <-g.release:
	case <-ctx.Done():
		return nil, nil, ctx.Err()
	}
	g.runs.Add(1)
	return &chaos.Result{Algorithm: j.Algorithm}, &chaos.Report{Algorithm: j.Algorithm}, nil
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSchedulerBoundsConcurrency checks that a pool of W workers never
// runs more than W simulations at once while still completing every job.
func TestSchedulerBoundsConcurrency(t *testing.T) {
	const workers, jobs = 3, 12
	g := newGate()
	s := NewScheduler(SchedulerConfig{Workers: workers}, g.run)

	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Submit("g", "PR", chaos.Options{Seed: int64(i)}); err != nil {
				t.Errorf("submit: %v", err)
			}
		}(i)
	}
	wg.Wait()

	// All workers saturate, and no more than `workers` run at once.
	waitFor(t, "pool saturation", func() bool { return g.active.Load() == workers })
	st := s.stats()
	if st.running != workers || st.queueDepth != jobs-workers {
		t.Errorf("stats: running %d queued %d, want %d/%d", st.running, st.queueDepth, workers, jobs-workers)
	}
	close(g.release)
	waitFor(t, "all jobs done", func() bool { return g.runs.Load() == jobs })
	if got := g.peak.Load(); got != workers {
		t.Errorf("peak concurrency %d, want exactly %d", got, workers)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	for _, jv := range s.List() {
		if jv.State != JobDone {
			t.Errorf("job %s: state %s, want done", jv.ID, jv.State)
		}
	}
}

// TestSchedulerCancel covers the cancellation state machine: queued jobs
// cancel immediately, running jobs stop cooperatively via their context,
// finished ones conflict, canceled jobs never run.
func TestSchedulerCancel(t *testing.T) {
	g := newGate()
	s := NewScheduler(SchedulerConfig{Workers: 1}, g.run)
	defer func() {
		close(g.release)
		s.Shutdown(context.Background())
	}()

	running, _ := s.Submit("g", "PR", chaos.Options{})
	waitFor(t, "first job running", func() bool {
		jv, _ := s.Get(running.ID)
		return jv.State == JobRunning
	})
	queued, _ := s.Submit("g", "BFS", chaos.Options{})

	if _, err := s.Cancel(queued.ID); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if jv, _ := s.Get(queued.ID); jv.State != JobCanceled {
		t.Errorf("state %s, want canceled", jv.State)
	}
	if _, err := s.Cancel("j999"); !errors.As(err, new(*notFoundError)) {
		t.Errorf("canceling unknown job: %v, want not-found", err)
	}

	// Canceling the running job is accepted (not a conflict): the view
	// reports the pending cancellation, and the job lands in canceled
	// once the run observes its context — without ever being released.
	jv, err := s.Cancel(running.ID)
	if err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	if jv.State != JobRunning || !jv.Canceling {
		t.Errorf("cancel running returned state %s canceling %v", jv.State, jv.Canceling)
	}
	if _, err := s.Cancel(running.ID); err != nil {
		t.Errorf("repeated cancel of a running job must be idempotent: %v", err)
	}
	waitFor(t, "running job canceled", func() bool {
		jv, _ := s.Get(running.ID)
		return jv.State == JobCanceled
	})
	waitFor(t, "queue drained", func() bool { return s.stats().queueDepth == 0 })
	if got := g.runs.Load(); got != 0 {
		t.Errorf("%d jobs ran to completion, want 0 (both were canceled)", got)
	}
	if _, err := s.Cancel(running.ID); err == nil {
		t.Error("canceling an already-canceled job should conflict")
	}
}

// TestSchedulerShutdownDrains checks that Shutdown waits for running jobs,
// cancels queued ones, and refuses new submissions.
func TestSchedulerShutdownDrains(t *testing.T) {
	g := newGate()
	s := NewScheduler(SchedulerConfig{Workers: 1}, g.run)

	running, _ := s.Submit("g", "PR", chaos.Options{})
	waitFor(t, "job running", func() bool {
		jv, _ := s.Get(running.ID)
		return jv.State == JobRunning
	})
	queued, _ := s.Submit("g", "BFS", chaos.Options{})

	// With the job still blocked, a short deadline must report a timeout.
	shortCtx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(shortCtx); err == nil {
		t.Fatal("shutdown with a stuck job should time out")
	}
	if _, err := s.Submit("g", "PR", chaos.Options{}); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("submit after shutdown: %v, want ErrShuttingDown", err)
	}
	if jv, _ := s.Get(queued.ID); jv.State != JobCanceled {
		t.Errorf("queued job state %s, want canceled at shutdown", jv.State)
	}

	// Release the job: the drain now completes and the job finished
	// normally (graceful shutdown does not kill running work).
	close(g.release)
	ctx, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if jv, _ := s.Get(running.ID); jv.State != JobDone {
		t.Errorf("running job state %s, want done after drain", jv.State)
	}
}

// TestSchedulerRetentionEvictsOnlyFinishedJobs checks the history cap:
// old finished jobs are evicted as new ones arrive, but queued and
// running jobs survive even when the cap is exceeded.
func TestSchedulerRetentionEvictsOnlyFinishedJobs(t *testing.T) {
	g := newGate()
	s := NewScheduler(SchedulerConfig{Workers: 1, Retain: 3}, g.run)
	defer s.Shutdown(context.Background())

	// Five finished jobs, released one at a time.
	var ids []string
	for i := 0; i < 5; i++ {
		jv, err := s.Submit("g", "PR", chaos.Options{Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, jv.ID)
		g.release <- struct{}{}
		waitFor(t, "job done", func() bool {
			got, ok := s.Get(jv.ID)
			return ok && got.State == JobDone
		})
	}
	// Submitting one more prunes history down to the cap; the oldest
	// finished jobs are gone, the newest survive.
	last, err := s.Submit("g", "PR", chaos.Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(ids[0]); ok {
		t.Error("oldest finished job survived past the retention cap")
	}
	if _, ok := s.Get(ids[4]); !ok {
		t.Error("recent finished job was evicted")
	}
	if got, _ := s.Get(last.ID); got.State == "" {
		t.Error("in-flight job missing")
	}
	if n := len(s.List()); n > 3 {
		t.Errorf("history holds %d jobs, want <= 3", n)
	}
	g.release <- struct{}{}
	waitFor(t, "last job done", func() bool {
		got, _ := s.Get(last.ID)
		return got.State == JobDone
	})
}

// TestResultCacheEviction checks the bounded cache evicts oldest-first.
func TestResultCacheEviction(t *testing.T) {
	c := newResultCache(2, nil)
	res := &chaos.Result{}
	rep := &chaos.Report{}
	c.store("a", res, rep)
	c.store("b", res, rep)
	c.store("c", res, rep) // evicts "a"
	if _, _, ok := c.lookup("a"); ok {
		t.Error("oldest entry survived past capacity")
	}
	if _, _, ok := c.lookup("b"); !ok {
		t.Error("entry b evicted prematurely")
	}
	if _, _, ok := c.lookup("c"); !ok {
		t.Error("entry c missing")
	}
	if st := c.stats(); st.Entries != 2 || st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats %+v", st)
	}
}

// TestResultCacheEvictionOrderAndCompaction is the regression test for
// the order-slice leak: eviction used to reslice order = order[1:],
// which keeps every evicted key reachable through the shared backing
// array forever. The ring head plus periodic compaction must keep the
// queue's capacity proportional to the cache bound while still evicting
// strictly oldest-first.
func TestResultCacheEvictionOrderAndCompaction(t *testing.T) {
	const capacity, total = 8, 1000
	c := newResultCache(capacity, nil)
	res := &chaos.Result{}
	rep := &chaos.Report{}
	key := func(i int) string { return fmt.Sprintf("k%04d", i) }
	for i := 0; i < total; i++ {
		c.store(key(i), res, rep)
		if n := len(c.entries); n > capacity {
			t.Fatalf("after %d stores: %d entries, cap %d", i+1, n, capacity)
		}
	}
	// Strict FIFO: exactly the last `capacity` keys survive.
	for i := 0; i < total-capacity; i++ {
		if _, _, ok := c.lookup(key(i)); ok {
			t.Fatalf("evicted key %s still cached", key(i))
		}
	}
	for i := total - capacity; i < total; i++ {
		if _, _, ok := c.lookup(key(i)); !ok {
			t.Fatalf("live key %s missing", key(i))
		}
	}
	// The order queue must not have accumulated the ~1000 dead keys:
	// compaction bounds both its length and its capacity.
	c.mu.Lock()
	qlen, qcap, head := len(c.order), cap(c.order), c.head
	c.mu.Unlock()
	if qlen-head != capacity {
		t.Errorf("live queue window %d, want %d", qlen-head, capacity)
	}
	if qcap > 8*capacity {
		t.Errorf("order queue capacity grew to %d for a %d-entry cache (evicted keys pinned)", qcap, capacity)
	}
}

// TestSchedulerListFiltered covers state filtering and after/limit
// paging over a mixed-state history.
func TestSchedulerListFiltered(t *testing.T) {
	g := newGate()
	s := NewScheduler(SchedulerConfig{Workers: 1}, g.run)
	defer func() {
		close(g.release)
		s.Shutdown(context.Background())
	}()

	running, _ := s.Submit("g", "PR", chaos.Options{})
	waitFor(t, "job running", func() bool {
		jv, _ := s.Get(running.ID)
		return jv.State == JobRunning
	})
	var queued []string
	for i := 0; i < 5; i++ {
		jv, err := s.Submit("g", "BFS", chaos.Options{Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, jv.ID)
	}
	if _, err := s.Cancel(queued[1]); err != nil {
		t.Fatal(err)
	}

	if all := s.ListFiltered(JobFilter{}); len(all) != 6 {
		t.Fatalf("unfiltered: %d jobs, want 6", len(all))
	}
	q := s.ListFiltered(JobFilter{State: JobQueued})
	if len(q) != 4 {
		t.Fatalf("queued filter: %d jobs, want 4", len(q))
	}
	// Page through the queued jobs two at a time using the cursor.
	page1 := s.ListFiltered(JobFilter{State: JobQueued, Limit: 2})
	if len(page1) != 2 || page1[0].ID != q[0].ID || page1[1].ID != q[1].ID {
		t.Fatalf("page1 %v", page1)
	}
	page2 := s.ListFiltered(JobFilter{State: JobQueued, Limit: 2, After: page1[1].ID})
	if len(page2) != 2 || page2[0].ID != q[2].ID {
		t.Fatalf("page2 %v", page2)
	}
	if page3 := s.ListFiltered(JobFilter{State: JobQueued, Limit: 2, After: page2[1].ID}); len(page3) != 0 {
		t.Fatalf("page3 %v, want empty", page3)
	}
	// A cursor whose job no longer exists still works: ids order the
	// sequence even after history eviction.
	if got := s.ListFiltered(JobFilter{After: "j3"}); len(got) != 3 {
		t.Fatalf("after j3: %d jobs, want 3", len(got))
	}
	if got := s.ListFiltered(JobFilter{State: JobCanceled}); len(got) != 1 || got[0].ID != queued[1] {
		t.Fatalf("canceled filter %v", got)
	}
}

// TestSchedulerFailedJob surfaces run errors as the failed state.
func TestSchedulerFailedJob(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1}, func(ctx context.Context, j *Job) (*chaos.Result, *chaos.Report, error) {
		return nil, nil, fmt.Errorf("boom")
	})
	defer s.Shutdown(context.Background())
	jv, err := s.Submit("g", "PR", chaos.Options{})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job failed", func() bool {
		got, _ := s.Get(jv.ID)
		return got.State == JobFailed
	})
	got, _ := s.Get(jv.ID)
	if got.Error != "boom" || got.Result != nil {
		t.Errorf("failed job view %+v", got)
	}
}
