package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"chaos"
	"chaos/internal/durable"
	"chaos/internal/obs"
)

// collectNames flattens a trace tree into span names, depth-first.
func collectNames(roots []*obs.Node) []string {
	var names []string
	var walk func(*obs.Node)
	walk = func(n *obs.Node) {
		names = append(names, n.Span.Name)
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return names
}

func hasName(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

// TestTraceparentRoundTrip drives the W3C propagation contract over a
// live server: an inbound traceparent is adopted (the job's trace IS
// the caller's trace, the caller's span is the remote parent), the
// response echoes the trace in a traceparent header, and a malformed
// header falls back to a fresh derived trace instead of failing the
// request.
func TestTraceparentRoundTrip(t *testing.T) {
	svc := newTestService(t, 1)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	if code, body := doJSON(t, client, http.MethodPost, ts.URL+"/v1/graphs",
		GraphSpec{Name: "g", Type: "rmat", Scale: 6, Weighted: true, Seed: 42}, nil); code != http.StatusCreated {
		t.Fatalf("register graph: %d %s", code, body)
	}

	// Mint a caller-side trace identity, as chaos-loadgen does.
	callerTrace := obs.DeriveTraceID("trace-roundtrip-test", 1)
	callerSpan := obs.DeriveSpanID(callerTrace.String(), 1)
	header := obs.Traceparent(callerTrace, callerSpan)

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
		strings.NewReader(`{"graph":"g","algorithm":"PR","options":{"seed":7}}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", header)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	echoed := resp.Header.Get("traceparent")
	var jv JobView
	if err := decodeInto(resp, &jv); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit with traceparent: %d", resp.StatusCode)
	}

	// The response header carries OUR trace id with the server's own
	// request span (not the span we sent, which is the server's parent).
	gotTrace, gotSpan, ok := obs.ParseTraceparent(echoed)
	if !ok {
		t.Fatalf("response traceparent %q does not parse", echoed)
	}
	if gotTrace != callerTrace {
		t.Fatalf("response trace id %s, want the inbound %s", gotTrace, callerTrace)
	}
	if gotSpan == callerSpan {
		t.Fatal("server echoed our span id instead of opening its own request span")
	}
	if jv.TraceID != callerTrace.String() {
		t.Fatalf("job view trace id %q, want adopted %s", jv.TraceID, callerTrace)
	}

	pollJob(t, client, ts.URL, jv.ID)
	var tr traceResponse
	if code, body := doJSON(t, client, http.MethodGet, ts.URL+"/v1/jobs/"+jv.ID+"/trace", nil, &tr); code != http.StatusOK {
		t.Fatalf("GET trace: %d %s", code, body)
	}
	if len(tr.Tree) != 1 {
		t.Fatalf("trace has %d roots, want 1", len(tr.Tree))
	}
	root := tr.Tree[0].Span
	if !root.Remote || root.Parent != callerSpan.String() {
		t.Fatalf("root span = %+v, want remote with parent %s (the caller's span)", root, callerSpan)
	}
	if tr.Orphans != 0 {
		t.Fatalf("orphans = %d, want 0", tr.Orphans)
	}

	// The trace resolves by trace id too.
	var byTrace traceResponse
	if code, _ := doJSON(t, client, http.MethodGet, ts.URL+"/v1/traces/"+callerTrace.String(), nil, &byTrace); code != http.StatusOK {
		t.Fatalf("GET /v1/traces/{id}: %d", code)
	}
	if byTrace.ID != jv.ID {
		t.Fatalf("trace id resolved to job %q, want %q", byTrace.ID, jv.ID)
	}

	// Malformed headers: the request succeeds with a FRESH derived trace.
	for _, bad := range []string{
		"00-00000000000000000000000000000000-0000000000000000-01", // all-zero ids
		"not-a-traceparent",
		"FF-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // uppercase version
	} {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
			strings.NewReader(`{"graph":"g","algorithm":"BFS","options":{"seed":8}}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("traceparent", bad)
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var fresh JobView
		if err := decodeInto(resp, &fresh); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit with malformed traceparent %q: %d", bad, resp.StatusCode)
		}
		ft, _, ok := obs.ParseTraceparent(resp.Header.Get("traceparent"))
		if !ok {
			t.Fatalf("fresh traceparent %q does not parse", resp.Header.Get("traceparent"))
		}
		if ft == callerTrace {
			t.Fatalf("malformed header %q was adopted as trace %s", bad, ft)
		}
		if fresh.TraceID != ft.String() {
			t.Fatalf("job trace %q != response header trace %s", fresh.TraceID, ft)
		}
	}
}

// TestTraceTreeSurvivesCrashRequeue is the tentpole's durability
// acceptance in miniature: a job that was RUNNING when the process
// died is requeued on restart, and its trace tree — journaled span by
// span — carries the whole story: the original request root, the
// interrupted run, the recovery marker, the re-queue, the second run
// and the terminal state, with zero orphan spans.
func TestTraceTreeSurvivesCrashRequeue(t *testing.T) {
	dir := t.TempDir()
	w, _, err := durable.OpenWAL(filepath.Join(dir, "wal"), 0)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UTC()
	opts := mergeOptions(labOptions, chaos.Options{Seed: 7})

	// The journal a crashed process leaves behind: a graph and a running
	// job whose spans were journaled through its transitions.
	trace := obs.DeriveTraceID("crash-requeue-test", 1).String()
	seed := trace + "/j1"
	sid := func(n uint64) string { return obs.DeriveSpanID(seed, n).String() }
	base := now.Add(-time.Second).UnixNano()
	spans := []obs.TreeSpan{
		{TraceID: trace, SpanID: sid(0), Name: "POST /v1/jobs", Kind: obs.KindRequest, Start: base, End: base + 1e6},
		{TraceID: trace, SpanID: sid(1), Parent: sid(0), Name: "admitted", Kind: obs.KindLifecycle, Start: base + 1e6, End: base + 1e6},
		{TraceID: trace, SpanID: sid(2), Parent: sid(0), Name: "queued", Kind: obs.KindLifecycle, Start: base + 1e6, End: base + 2e6},
		{TraceID: trace, SpanID: sid(3), Parent: sid(0), Name: "run", Kind: obs.KindLifecycle, Start: base + 2e6}, // open: the crash cut it
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.Append(recGraph, graphRecord{
		ID: "g1", Type: "rmat", Scale: 6, Seed: 1, SpecWeighted: true,
		Weighted: true, Vertices: 1 << 6, Edges: 1 << 10, Registered: now,
	}))
	must(w.Append(recJob, jobRecord{
		ID: "j1", Graph: "g1", Algorithm: "PR", Options: opts,
		State: JobRunning, EnqueuedAt: now, StartedAt: now,
		TraceID: trace, TraceRemote: false, SpanSeq: 4, Spans: spans,
	}))
	must(w.Sync())
	w.Close()

	svc := openDurable(t, dir, 2)
	t.Cleanup(func() { svc.Shutdown(context.Background()) })

	jv := waitJob(t, svc, "j1")
	if jv.State != JobDone {
		t.Fatalf("recovered job: %s %q, want done", jv.State, jv.Error)
	}
	if jv.TraceID != trace {
		t.Fatalf("trace id %q did not survive the restart, want %s", jv.TraceID, trace)
	}

	ti, ok := svc.Scheduler().TraceInfo("j1")
	if !ok {
		t.Fatal("no trace info for the recovered job")
	}
	roots, orphans := obs.BuildTree(ti.spans)
	if orphans != 0 {
		t.Fatalf("orphans = %d, want 0 (every journaled span must link)", orphans)
	}
	if len(roots) != 1 || roots[0].Span.SpanID != sid(0) {
		t.Fatalf("roots = %d, want the original request span surviving as the single root", len(roots))
	}
	names := collectNames(roots)
	for _, want := range []string{"POST /v1/jobs", "admitted", "queued", "recovered", "run", "done"} {
		if !hasName(names, want) {
			t.Fatalf("trace tree %v is missing %q", names, want)
		}
	}
	// The interrupted first run is closed with the restart reason, and a
	// second queued span records the requeue.
	var interrupted, queued int
	for _, s := range ti.spans {
		if strings.Contains(s.Detail, "interrupted by restart") {
			interrupted++
		}
		if s.Name == "queued" {
			queued++
		}
		if s.End == 0 {
			t.Errorf("span %q (%s) left open after the job finished", s.Name, s.SpanID)
		}
	}
	if interrupted == 0 {
		t.Error("no span closed with the restart interruption reason")
	}
	if queued != 2 {
		t.Errorf("queued spans = %d, want 2 (original + post-recovery requeue)", queued)
	}

	// Crash AGAIN after completion: the full tree — recovery story
	// included — must come back read-only from the journal.
	crash(t, svc)
	svc2 := openDurable(t, dir, 2)
	t.Cleanup(func() { svc2.Shutdown(context.Background()) })
	ti2, ok := svc2.Scheduler().TraceInfo("j1")
	if !ok {
		t.Fatal("trace info lost after second restart")
	}
	roots2, orphans2 := obs.BuildTree(ti2.spans)
	if orphans2 != 0 || len(roots2) != 1 {
		t.Fatalf("post-restart tree: %d roots %d orphans, want 1/0", len(roots2), orphans2)
	}
	names2 := collectNames(roots2)
	for _, want := range []string{"POST /v1/jobs", "recovered", "run", "done"} {
		if !hasName(names2, want) {
			t.Fatalf("post-restart tree %v is missing %q", names2, want)
		}
	}
	if ti2.rec != nil {
		t.Error("restored job claims an engine recording; engine spans are execution-scoped")
	}
}

// decodeInto drains an http.Response body into out and closes it.
func decodeInto(resp *http.Response, out any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}
