package service

import (
	"encoding/json"
	"errors"
	"net/http"

	"chaos"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/graphs     register a graph (GraphSpec JSON)
//	GET    /v1/graphs     list registered graphs
//	GET    /v1/graphs/{id}  one graph with its cached views
//	POST   /v1/jobs       submit a job (jobRequest JSON) -> 202
//	GET    /v1/jobs       list jobs
//	GET    /v1/jobs/{id}  job state, full Report and Result when done
//	DELETE /v1/jobs/{id}  cancel a queued job
//	GET    /healthz       liveness
//	GET    /v1/stats      queue depth, cache hit rate, per-algorithm counts
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/graphs", s.handleRegisterGraph)
	mux.HandleFunc("GET /v1/graphs", s.handleListGraphs)
	mux.HandleFunc("GET /v1/graphs/{id}", s.handleGetGraph)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

// jobOptions is the wire form of chaos.Options: hardware names as
// strings, byte sizes explicit. Zero-valued fields inherit the service's
// BaseOptions and then the paper defaults.
type jobOptions struct {
	Machines        int     `json:"machines,omitempty"`
	Storage         string  `json:"storage,omitempty"`
	Network         string  `json:"network,omitempty"`
	Cores           int     `json:"cores,omitempty"`
	ChunkBytes      int     `json:"chunkBytes,omitempty"`
	MemBudgetBytes  int64   `json:"memBudgetBytes,omitempty"`
	BatchK          int     `json:"batchK,omitempty"`
	Alpha           float64 `json:"alpha,omitempty"`
	DisableStealing bool    `json:"disableStealing,omitempty"`
	AlwaysSteal     bool    `json:"alwaysSteal,omitempty"`
	CheckpointEvery int     `json:"checkpointEvery,omitempty"`
	MaxIterations   int     `json:"maxIterations,omitempty"`
	LatencyScale    float64 `json:"latencyScale,omitempty"`
	Seed            int64   `json:"seed,omitempty"`
}

// jobRequest is the POST /v1/jobs payload.
type jobRequest struct {
	Graph     string     `json:"graph"`
	Algorithm string     `json:"algorithm"`
	Options   jobOptions `json:"options"`
}

// resolve validates the request through the same chaos.ParseOptions
// helper the CLIs use, so a bad algorithm or device name fails with the
// identical message everywhere.
func (r jobRequest) resolve() (string, chaos.Options, error) {
	base := chaos.Options{
		Machines:        r.Options.Machines,
		Cores:           r.Options.Cores,
		ChunkBytes:      r.Options.ChunkBytes,
		MemBudgetBytes:  r.Options.MemBudgetBytes,
		BatchK:          r.Options.BatchK,
		Alpha:           r.Options.Alpha,
		DisableStealing: r.Options.DisableStealing,
		AlwaysSteal:     r.Options.AlwaysSteal,
		CheckpointEvery: r.Options.CheckpointEvery,
		MaxIterations:   r.Options.MaxIterations,
		LatencyScale:    r.Options.LatencyScale,
		Seed:            r.Options.Seed,
	}
	return chaos.ParseOptions(r.Algorithm, r.Options.Storage, r.Options.Network, base)
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// statusFor maps service errors to HTTP statuses.
func statusFor(err error, fallback int) int {
	var nf *notFoundError
	var cf *conflictError
	switch {
	case errors.As(err, &nf):
		return http.StatusNotFound
	case errors.As(err, &cf):
		return http.StatusConflict
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	default:
		return fallback
	}
}

func (s *Service) handleRegisterGraph(w http.ResponseWriter, r *http.Request) {
	var spec GraphSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	g, err := s.catalog.Register(spec)
	if err != nil {
		writeError(w, statusFor(err, http.StatusBadRequest), err)
		return
	}
	writeJSON(w, http.StatusCreated, g.Info())
}

func (s *Service) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	graphs := s.catalog.List()
	infos := make([]GraphInfo, len(graphs))
	for i, g := range graphs {
		infos[i] = g.Info()
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Service) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	g, ok := s.catalog.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, &notFoundError{what: "graph", id: r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, g.Info())
}

func (s *Service) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	alg, opt, err := req.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.Submit(req.Graph, alg, opt)
	if err != nil {
		writeError(w, statusFor(err, http.StatusBadRequest), err)
		return
	}
	writeJSON(w, http.StatusAccepted, job)
}

func (s *Service) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.scheduler.List())
}

func (s *Service) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.scheduler.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, &notFoundError{what: "job", id: r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Service) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.scheduler.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, statusFor(err, http.StatusConflict), err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
