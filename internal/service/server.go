package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"chaos"
	"chaos/internal/obs"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/graphs     register a graph (GraphSpec JSON)
//	GET    /v1/graphs     list registered graphs
//	GET    /v1/graphs/{id}  one graph with its cached views
//	POST   /v1/jobs       submit a job (jobRequest JSON) -> 202, or 429
//	                      + Retry-After when the queue is at -max-queue
//	GET    /v1/jobs       list jobs (?state=done&limit=N&after=<id>);
//	                      views are payload-stripped (no Result/Report)
//	GET    /v1/jobs/{id}  job state, live progress while running, full
//	                      Report and Result when done
//	GET    /v1/jobs/{id}/events  SSE stream of state transitions and
//	                      iteration-boundary progress ticks
//	GET    /v1/jobs/{id}/trace  the job's end-to-end trace tree —
//	                      request, scheduler lifecycle, WAL and engine
//	                      spans stitched into one causal tree
//	                      (?format=chrome for trace_event JSON loadable
//	                      in about:tracing / Perfetto)
//	GET    /v1/traces/{id}  the same tree looked up by trace id (the
//	                      traceparent response header names it)
//	DELETE /v1/jobs/{id}  cancel a job (running ones stop at the next
//	                      iteration boundary; poll until "canceled")
//	GET    /healthz       liveness
//	GET    /v1/stats      queue depth, cache hit rate, per-algorithm counts
//	GET    /metrics       Prometheus text exposition of the same counters
//
// The handler is wrapped in the observability layer (see instrument):
// per-route latency histograms always, structured request logs when
// Config.Logger is set.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	for pattern, h := range s.routes() {
		mux.HandleFunc(pattern, h)
	}
	return s.instrument(mux)
}

// routes is the API surface as one table, so Handler registration and
// the pre-seeded per-route metric series (see routePatterns) cannot
// drift apart: a new endpoint added here gets its histogram for free.
func (s *Service) routes() map[string]http.HandlerFunc {
	return map[string]http.HandlerFunc{
		"POST /v1/graphs":          s.handleRegisterGraph,
		"GET /v1/graphs":           s.handleListGraphs,
		"GET /v1/graphs/{id}":      s.handleGetGraph,
		"POST /v1/jobs":            s.handleSubmitJob,
		"GET /v1/jobs":             s.handleListJobs,
		"GET /v1/jobs/{id}":        s.handleGetJob,
		"GET /v1/jobs/{id}/events": s.handleJobEvents,
		"GET /v1/jobs/{id}/trace":  s.handleJobTrace,
		"GET /v1/traces/{id}":      s.handleGetTrace,
		"DELETE /v1/jobs/{id}":     s.handleCancelJob,
		"GET /healthz":             s.handleHealth,
		"GET /v1/stats":            s.handleStats,
		"GET /metrics":             s.handleMetrics,
	}
}

// routePatterns lists the mux patterns of routes(); Open pre-seeds one
// duration-histogram series per pattern from it.
func (s *Service) routePatterns() []string {
	routes := s.routes()
	pats := make([]string, 0, len(routes))
	for p := range routes {
		pats = append(pats, p)
	}
	return pats
}

// jobOptions is the wire form of chaos.Options: hardware names as
// strings, byte sizes explicit. Zero-valued fields inherit the service's
// BaseOptions and then the paper defaults. Every chaos.Options field has
// a wire counterpart — TestJobOptionsCoverAllOptionFields enforces the
// correspondence, so a new engine knob cannot be silently dropped by the
// job API again.
type jobOptions struct {
	Machines          int     `json:"machines,omitempty"`
	Storage           string  `json:"storage,omitempty"`
	Network           string  `json:"network,omitempty"`
	Cores             int     `json:"cores,omitempty"`
	ChunkBytes        int     `json:"chunkBytes,omitempty"`
	VertexChunkBytes  int     `json:"vertexChunkBytes,omitempty"`
	MemBudgetBytes    int64   `json:"memBudgetBytes,omitempty"`
	MemoryBudgetMB    int64   `json:"memoryBudgetMB,omitempty"`
	BatchK            int     `json:"batchK,omitempty"`
	WindowOverride    int     `json:"windowOverride,omitempty"`
	Alpha             float64 `json:"alpha,omitempty"`
	DisableStealing   bool    `json:"disableStealing,omitempty"`
	AlwaysSteal       bool    `json:"alwaysSteal,omitempty"`
	CheckpointEvery   int     `json:"checkpointEvery,omitempty"`
	FailAtIteration   int     `json:"failAtIteration,omitempty"`
	CentralDirectory  bool    `json:"centralDirectory,omitempty"`
	CombineUpdates    bool    `json:"combineUpdates,omitempty"`
	RewriteEdges      bool    `json:"rewriteEdges,omitempty"`
	ReplicateVertices bool    `json:"replicateVertices,omitempty"`
	MaxIterations     int     `json:"maxIterations,omitempty"`
	LatencyScale      float64 `json:"latencyScale,omitempty"`
	ComputeWorkers    int     `json:"computeWorkers,omitempty"`
	// Engine selects the execution plane: "sim" (default) or "native".
	// Absent in pre-PR-5 journal records, which decode to "" and
	// canonicalize to "sim" — the only engine that existed then.
	Engine string `json:"engine,omitempty"`
	// NativeBarrier restores the native engine's barrier-per-phase
	// layout (default false = the streaming pipeline). Values are
	// identical either way; the knob is for A/B measurement.
	NativeBarrier bool  `json:"nativeBarrier,omitempty"`
	Seed          int64 `json:"seed,omitempty"`
}

// jobRequest is the POST /v1/jobs payload.
type jobRequest struct {
	Graph     string     `json:"graph"`
	Algorithm string     `json:"algorithm"`
	Options   jobOptions `json:"options"`
}

// resolve validates the request through the same chaos.ParseOptions
// helper the CLIs use, so a bad algorithm or device name fails with the
// identical message everywhere.
func (r jobRequest) resolve() (string, chaos.Options, error) {
	base := chaos.Options{
		Machines:          r.Options.Machines,
		Cores:             r.Options.Cores,
		ChunkBytes:        r.Options.ChunkBytes,
		VertexChunkBytes:  r.Options.VertexChunkBytes,
		MemBudgetBytes:    r.Options.MemBudgetBytes,
		MemoryBudgetMB:    r.Options.MemoryBudgetMB,
		BatchK:            r.Options.BatchK,
		WindowOverride:    r.Options.WindowOverride,
		Alpha:             r.Options.Alpha,
		DisableStealing:   r.Options.DisableStealing,
		AlwaysSteal:       r.Options.AlwaysSteal,
		CheckpointEvery:   r.Options.CheckpointEvery,
		FailAtIteration:   r.Options.FailAtIteration,
		CentralDirectory:  r.Options.CentralDirectory,
		CombineUpdates:    r.Options.CombineUpdates,
		RewriteEdges:      r.Options.RewriteEdges,
		ReplicateVertices: r.Options.ReplicateVertices,
		MaxIterations:     r.Options.MaxIterations,
		LatencyScale:      r.Options.LatencyScale,
		ComputeWorkers:    r.Options.ComputeWorkers,
		NativeBarrier:     r.Options.NativeBarrier,
		Seed:              r.Options.Seed,
	}
	// The engine name is validated here so a typo fails the submission
	// with 400 (and the same message as the CLIs) instead of failing the
	// job later; the canonical spelling is what gets journaled. An
	// omitted engine stays empty so mergeOptions can apply the server's
	// BaseOptions default (chaos-serve -engine).
	if r.Options.Engine != "" {
		engine, err := chaos.ParseEngine(r.Options.Engine)
		if err != nil {
			return "", base, err
		}
		base.Engine = engine
	}
	return chaos.ParseOptions(r.Algorithm, r.Options.Storage, r.Options.Network, base)
}

// maxBodyBytes bounds POST /v1/jobs payloads: job requests are small
// metadata, so anything past 1 MB is garbage or abuse. Graph
// registrations carry whole base64 edge lists and get their own, far
// larger, configurable cap (Config.MaxUploadBytes) — a weighted
// scale-16 R-MAT upload alone is tens of MB.
const maxBodyBytes = 1 << 20

// decodeStrict decodes a JSON request body, rejecting unknown fields —
// a typo'd option name fails loudly with 400 instead of silently running
// with defaults — and enforcing the given body size limit.
func decodeStrict(w http.ResponseWriter, r *http.Request, v any, limit int64) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// A second document in the body is as suspect as an unknown field.
	if dec.More() {
		return errors.New("request body must be a single JSON object")
	}
	return nil
}

// decodeStatus maps a decodeStrict failure to its HTTP status: an
// over-limit body is 413 Content Too Large, anything else is the
// caller's 400.
func decodeStatus(err error) int {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// statusFor maps service errors to HTTP statuses.
func statusFor(err error, fallback int) int {
	var nf *notFoundError
	var cf *conflictError
	switch {
	case errors.As(err, &nf):
		return http.StatusNotFound
	case errors.As(err, &cf):
		return http.StatusConflict
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	default:
		return fallback
	}
}

func (s *Service) handleRegisterGraph(w http.ResponseWriter, r *http.Request) {
	var spec GraphSpec
	if err := decodeStrict(w, r, &spec, s.cfg.MaxUploadBytes); err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	g, err := s.RegisterGraph(spec)
	if err != nil {
		writeError(w, statusFor(err, http.StatusBadRequest), err)
		return
	}
	writeJSON(w, http.StatusCreated, g.Info())
}

func (s *Service) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	graphs := s.catalog.List()
	infos := make([]GraphInfo, len(graphs))
	for i, g := range graphs {
		infos[i] = g.Info()
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Service) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	g, ok := s.catalog.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, &notFoundError{what: "graph", id: r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, g.Info())
}

func (s *Service) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if err := decodeStrict(w, r, &req, maxBodyBytes); err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	alg, opt, err := req.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.SubmitCtx(r.Context(), req.Graph, alg, opt)
	if err != nil {
		var qf *QueueFullError
		if errors.As(err, &qf) {
			// Admission control: the queue is at -max-queue. 429 with a
			// backlog-derived Retry-After keeps well-behaved clients
			// backing off instead of hammering the full queue.
			w.Header().Set("Retry-After", strconv.Itoa(qf.RetryAfterSeconds()))
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		writeError(w, statusFor(err, http.StatusBadRequest), err)
		return
	}
	writeJSON(w, http.StatusAccepted, job)
}

// handleListJobs lists jobs, optionally filtered and paged:
// ?state=<queued|running|done|failed|canceled> keeps one state,
// ?limit=N caps the page, ?after=<id> resumes past a previous page's
// last id. With the journal preserving history across restarts,
// unpaged listings would otherwise grow with the service's lifetime.
func (s *Service) handleListJobs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var f JobFilter
	if st := q.Get("state"); st != "" {
		switch JobState(st) {
		case JobQueued, JobRunning, JobDone, JobFailed, JobCanceled:
			f.State = JobState(st)
		default:
			writeError(w, http.StatusBadRequest, errors.New("unknown state "+strconv.Quote(st)))
			return
		}
	}
	if lim := q.Get("limit"); lim != "" {
		n, err := strconv.Atoi(lim)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, errors.New("limit must be a non-negative integer"))
			return
		}
		f.Limit = n
	}
	if after := q.Get("after"); after != "" {
		if _, ok := jobSeq(after); !ok {
			writeError(w, http.StatusBadRequest, errors.New("after must be a job id like j42"))
			return
		}
		f.After = after
	}
	writeJSON(w, http.StatusOK, s.scheduler.ListFiltered(f))
}

func (s *Service) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.scheduler.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, &notFoundError{what: "job", id: r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// traceResponse is the GET /v1/jobs/{id}/trace payload: the job's
// identity plus its end-to-end trace — the rooted span tree (request,
// scheduler lifecycle, WAL and engine tiers stitched causally) and the
// flat engine flight recording. Dropped counts engine spans lost to
// the bounded ring (raise -trace-spans if nonzero); Orphans counts
// spans whose parent was dropped, re-attached under the root rather
// than lost. EngineAbsent explains a missing engine tier: engine spans
// are execution-scoped, so a trace recovered from the journal keeps
// its lifecycle tree but not the dead process's flight recording.
type traceResponse struct {
	ID      string      `json:"id"`
	TraceID string      `json:"traceId,omitempty"`
	Engine  string      `json:"engine"`
	State   JobState    `json:"state"`
	Tree    []*obs.Node `json:"tree"`
	Orphans int         `json:"orphans"`
	// Spans is the flat engine flight recording (the pre-tree wire
	// form, kept for existing consumers); empty when EngineAbsent.
	Spans        []chaos.TraceSpan `json:"spans"`
	Dropped      uint64            `json:"dropped,omitempty"`
	EngineAbsent string            `json:"engineAbsent,omitempty"`
}

// walTreeSpans converts the retained WAL operation spans overlapping
// [fromNs, toNs] into tree spans parented under the job's root. Span
// ids are derived from the snapshot index; the WAL tier is shared
// across jobs, so a busy server attributes an overlapping append to
// every job in flight — tiers, not exclusivity, is what the tree shows.
func (s *Service) walTreeSpans(traceID, root string, fromNs, toNs int64) []obs.TreeSpan {
	if s.walSpans == nil {
		return nil
	}
	spans, _ := s.walSpans.Snapshot()
	var out []obs.TreeSpan
	for i, sp := range spans {
		start := sp.Start.UnixNano()
		end := sp.Start.Add(sp.Dur).UnixNano()
		if end < fromNs || start > toNs {
			continue
		}
		detail := ""
		if sp.Bytes > 0 {
			detail = fmt.Sprintf("%d bytes", sp.Bytes)
		}
		out = append(out, obs.TreeSpan{
			TraceID: traceID,
			SpanID:  obs.DeriveSpanID(traceID+"/wal", uint64(i)).String(),
			Parent:  root,
			Name:    sp.Op,
			Kind:    obs.KindWAL,
			Start:   start,
			End:     end,
			Detail:  detail,
		})
	}
	return out
}

// jobTimeline assembles the merged cross-tier timeline of one job.
func (s *Service) jobTimeline(t jobTrace) (obs.Timeline, []chaos.TraceSpan, uint64, string) {
	tl := obs.Timeline{
		TraceID:    t.traceID,
		Spans:      t.spans,
		RunSpanID:  t.runSpanID,
		RunStartNs: t.runStartNs,
	}
	var engine []chaos.TraceSpan
	var dropped uint64
	absent := ""
	if t.rec != nil {
		engine, dropped = t.rec.Spans()
		tl.Engine = engine
		tl.EngineVirtual = t.view.Engine == chaos.EngineSim
	} else {
		absent = "engine spans are execution-scoped and this process has no recording for the job " +
			"(still queued, answered from the result cache, or restored from the journal after a restart)"
	}
	if t.traceID != "" {
		from := t.view.EnqueuedAt.UnixNano()
		to := time.Now().UTC().UnixNano()
		if t.view.FinishedAt != nil {
			to = t.view.FinishedAt.UnixNano()
		}
		rootID := ""
		for _, sp := range t.spans {
			if sp.Kind == obs.KindRequest {
				rootID = sp.SpanID
				break
			}
		}
		tl.Spans = append(tl.Spans, s.walTreeSpans(t.traceID, rootID, from, to)...)
	}
	return tl, engine, dropped, absent
}

// handleJobTrace serves a job's end-to-end trace: the causal span tree
// stitched from the HTTP request, the scheduler lifecycle (admitted,
// queue wait, run, checkpoints, terminal — journaled through the WAL,
// so the tree survives a SIGKILL-restart), the WAL's own operation
// spans, and the engine flight recording of both planes. Plain JSON by
// default; ?format=chrome emits Chrome trace_event JSON loadable in
// about:tracing or Perfetto, with flow arrows across the queue and
// engine boundaries. A running job's trace is the spans so far. Only
// jobs journaled before tracing existed (and never re-run since) have
// nothing to serve, reported as 404 with the reason.
func (s *Service) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	s.serveTrace(w, r, r.PathValue("id"))
}

// handleGetTrace serves the same trace looked up by trace id — the id
// the traceparent response header and every job view carry.
func (s *Service) handleGetTrace(w http.ResponseWriter, r *http.Request) {
	traceID := r.PathValue("id")
	jobID, ok := s.scheduler.JobForTrace(traceID)
	if !ok {
		writeError(w, http.StatusNotFound, &notFoundError{what: "trace", id: traceID})
		return
	}
	s.serveTrace(w, r, jobID)
}

func (s *Service) serveTrace(w http.ResponseWriter, r *http.Request, id string) {
	t, ok := s.scheduler.TraceInfo(id)
	if !ok {
		writeError(w, http.StatusNotFound, &notFoundError{what: "job", id: id})
		return
	}
	if t.traceID == "" && t.rec == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf(
			"service: job %s has no trace: it was journaled before tracing existed and has not run since", id))
		return
	}
	tl, engine, dropped, absent := s.jobTimeline(t)
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		tl.WriteChrome(w)
		return
	}
	tree, orphans := tl.Tree()
	writeJSON(w, http.StatusOK, traceResponse{
		ID:           t.view.ID,
		TraceID:      t.traceID,
		Engine:       t.view.Engine,
		State:        t.view.State,
		Tree:         tree,
		Orphans:      orphans,
		Spans:        engine,
		Dropped:      dropped,
		EngineAbsent: absent,
	})
}

func (s *Service) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.scheduler.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, statusFor(err, http.StatusConflict), err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleJobEvents streams a job's lifecycle as Server-Sent Events: a
// "state" snapshot first (so subscribers start from truth, not from
// the next transition), then every state transition and engine
// progress tick as they happen. The stream ends when the job reaches a
// terminal state, the client disconnects, or the subscriber lags too
// far behind a transition (reconnect and resync from the fresh
// snapshot). Event payloads are payload-stripped job views; fetch
// GET /v1/jobs/{id} for the full Result/Report after the "done" event.
func (s *Service) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("response writer does not support streaming"))
		return
	}
	// Subscribe before snapshotting so no transition is lost in the
	// gap; events buffered in that gap are older than the snapshot and
	// are discarded below by the snapshot's sequence watermark (they
	// are not harmless duplicates — replaying them would walk a
	// client's progress backward).
	ch, cancelSub := s.scheduler.Subscribe(id)
	defer cancelSub()
	// Peek, not Get: the stream never serves payloads, so hydrating a
	// journal-restored job's result from the disk store here would read
	// and pin a blob only to strip it.
	jv, since, ok := s.scheduler.Peek(id)
	if !ok {
		writeError(w, http.StatusNotFound, &notFoundError{what: "job", id: id})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	if err := writeSSE(w, JobEvent{Seq: since, Type: EventState, Job: jv}); err != nil {
		return
	}
	flusher.Flush()
	if terminal(jv.State) {
		return
	}
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, open := <-ch:
			if !open {
				return // hub dropped a lagging subscriber; client resyncs
			}
			if ev.Seq <= since {
				continue // published before the snapshot; already reflected
			}
			if err := writeSSE(w, ev); err != nil {
				return
			}
			flusher.Flush()
			if ev.Type == EventState && terminal(ev.Job.State) {
				return
			}
		}
	}
}

// writeSSE frames one event in text/event-stream form.
func writeSSE(w io.Writer, ev JobEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
	return err
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
