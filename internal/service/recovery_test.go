package service

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"chaos"
	"chaos/internal/durable"
	"chaos/internal/graph"
)

// openDurable starts a durable Service on dir without registering a
// cleanup — crash tests abandon instances on purpose.
func openDurable(t *testing.T, dir string, workers int) *Service {
	t.Helper()
	svc, err := Open(Config{Workers: workers, BaseOptions: labOptions, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// crash simulates a SIGKILL: fsync what the OS already has (a real
// crash loses at most the sync interval; the test must not race the
// batcher) and drop the instance without snapshot, drain or close.
func crash(t *testing.T, svc *Service) {
	t.Helper()
	if err := svc.persist.wal.Sync(); err != nil {
		t.Fatal(err)
	}
	svc.persist.wal.Close()
}

func waitJob(t *testing.T, svc *Service, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		jv, ok := svc.Scheduler().Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if jv.State != JobQueued && jv.State != JobRunning {
			return jv
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobView{}
}

// TestCrashRecoveryEndToEnd is the acceptance scenario: register a
// graph, run a job to completion, SIGKILL, restart — the graph lists,
// the identical submission is answered from the disk result store, and
// the job history (with its result, rehydrated from disk) survived.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	dir := t.TempDir()
	svc1 := openDurable(t, dir, 2)
	if _, err := svc1.RegisterGraph(GraphSpec{Name: "rmat7", Type: "rmat", Scale: 7, Weighted: true, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	jv, err := svc1.Submit("rmat7", "PR", chaos.Options{Machines: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	first := waitJob(t, svc1, jv.ID)
	if first.State != JobDone {
		t.Fatalf("job %s: %s %s", first.ID, first.State, first.Error)
	}
	crash(t, svc1)

	svc2 := openDurable(t, dir, 2)
	t.Cleanup(func() { svc2.Shutdown(context.Background()) })

	// The graph came back — metadata only, edges still cold.
	g, ok := svc2.Catalog().Get("rmat7")
	if !ok {
		t.Fatal("graph lost across restart")
	}
	if g.Materialized() {
		t.Error("restored graph should stay cold until its first job")
	}
	if g.Vertices != 1<<7 || g.EdgeCount != 1<<11 || !g.Weighted {
		t.Errorf("restored metadata %+v", g.Info())
	}

	// The finished job came back; its result rehydrates from disk.
	old, ok := svc2.Scheduler().Get(jv.ID)
	if !ok {
		t.Fatal("job history lost across restart")
	}
	if old.State != JobDone || old.Result == nil {
		t.Fatalf("restored job %s: state %s, result %v", old.ID, old.State, old.Result)
	}
	if fmt.Sprint(old.Result.Summary) != fmt.Sprint(first.Result.Summary) {
		t.Errorf("rehydrated summary %v != original %v", old.Result.Summary, first.Result.Summary)
	}

	// The identical submission is a cache hit served from the disk
	// store — no simulation runs, same payload, and the new process's
	// memory cache was empty so the hit must have come from disk.
	hit, err := svc2.Submit("rmat7", "PR", chaos.Options{Machines: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if hit.State != JobDone || !hit.CacheHit {
		t.Fatalf("resubmission: state %s cacheHit %v, want cached done", hit.State, hit.CacheHit)
	}
	if fmt.Sprint(hit.Result.Summary) != fmt.Sprint(first.Result.Summary) {
		t.Errorf("disk-cached summary %v != original %v", hit.Result.Summary, first.Result.Summary)
	}
	st := svc2.Stats()
	if st.Cache.DiskHits < 1 {
		t.Errorf("stats report %d disk hits, want >= 1: %+v", st.Cache.DiskHits, st.Cache)
	}
	if st.Durable == nil || st.Durable.LastError != "" {
		t.Errorf("durable stats %+v", st.Durable)
	}

	// New ids never collide with recovered ones.
	if hitSeq, _ := jobSeq(hit.ID); hitSeq <= 1 {
		t.Errorf("post-restart job id %s collides with recovered history", hit.ID)
	}
}

// TestRecoveryRequeuesInterruptedJobs crafts the journal a crashed
// process would leave — a graph, a running job, a queued job, a done
// job and a queued job on a vanished graph — and checks recovery:
// interrupted work re-runs to completion, the unrecoverable job fails
// with a restart reason, and the done job stays done.
func TestRecoveryRequeuesInterruptedJobs(t *testing.T) {
	dir := t.TempDir()
	w, _, err := durable.OpenWAL(filepath.Join(dir, "wal"), 0)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UTC()
	opts := mergeOptions(labOptions, chaos.Options{Seed: 7})
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.Append(recGraph, graphRecord{
		ID: "g1", Type: "rmat", Scale: 6, Seed: 1, SpecWeighted: true,
		Weighted: true, Vertices: 1 << 6, Edges: 1 << 10, Registered: now,
	}))
	must(w.Append(recJob, jobRecord{ID: "j1", Graph: "g1", Algorithm: "PR", Options: opts, State: JobRunning, EnqueuedAt: now, StartedAt: now}))
	must(w.Append(recJob, jobRecord{ID: "j2", Graph: "g1", Algorithm: "BFS", Options: opts, State: JobQueued, EnqueuedAt: now}))
	must(w.Append(recJob, jobRecord{ID: "j3", Graph: "g1", Algorithm: "WCC", Options: opts, State: JobDone, EnqueuedAt: now, FinishedAt: now}))
	must(w.Append(recJob, jobRecord{ID: "j4", Graph: "ghost", Algorithm: "PR", Options: opts, State: JobQueued, EnqueuedAt: now}))
	must(w.Append(recJob, jobRecord{ID: "j5", Graph: "g1", Algorithm: "MIS", Options: opts, State: JobRunning, Canceling: true, EnqueuedAt: now, StartedAt: now}))
	must(w.Sync())
	w.Close()

	svc := openDurable(t, dir, 2)
	t.Cleanup(func() { svc.Shutdown(context.Background()) })

	// j1 (running at crash) and j2 (queued at crash) run to completion.
	for _, id := range []string{"j1", "j2"} {
		jv := waitJob(t, svc, id)
		if jv.State != JobDone {
			t.Errorf("job %s: %s %q, want done", id, jv.State, jv.Error)
		}
		if jv.Restarts != 1 {
			t.Errorf("job %s restarts = %d, want 1", id, jv.Restarts)
		}
		if jv.Result == nil || jv.Result.Vertices != 1<<6 {
			t.Errorf("job %s result %+v", id, jv.Result)
		}
	}
	// j3 stays done; its blob never existed, so the result is simply
	// absent (not an error).
	if jv, _ := svc.Scheduler().Get("j3"); jv.State != JobDone {
		t.Errorf("j3 state %s, want done", jv.State)
	}
	// j4's graph is gone: failed with a restart reason.
	jv, _ := svc.Scheduler().Get("j4")
	if jv.State != JobFailed || !strings.Contains(jv.Error, "not recoverable after restart") {
		t.Errorf("j4: %s %q, want failed with restart reason", jv.State, jv.Error)
	}
	// j5's cancellation was accepted before the crash: honored, not
	// rerun.
	jv, _ = svc.Scheduler().Get("j5")
	if jv.State != JobCanceled || !strings.Contains(jv.Error, "canceled while running") {
		t.Errorf("j5: %s %q, want canceled (accepted cancellation survives restart)", jv.State, jv.Error)
	}

	// Fresh submissions continue the id sequence past the recovered jobs.
	fresh, err := svc.Submit("g1", "Cond", chaos.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if seq, _ := jobSeq(fresh.ID); seq <= 5 {
		t.Errorf("fresh job id %s collides with recovered ids", fresh.ID)
	}
}

// TestRecoveryTornJournalTail: a crash mid-append leaves a truncated
// final record. Everything before it must recover; the torn suffix is
// discarded and the journal keeps working.
func TestRecoveryTornJournalTail(t *testing.T) {
	dir := t.TempDir()
	svc1 := openDurable(t, dir, 1)
	if _, err := svc1.RegisterGraph(GraphSpec{Name: "keep", Type: "rmat", Scale: 6, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	crash(t, svc1)

	// Tear the tail: append half a frame to the newest segment, as if
	// the process died inside a write.
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "journal-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no journal segments: %v %v", segs, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{42, 0, 0, 0, 99, 99}); err != nil { // 6 of 8 header bytes
		t.Fatal(err)
	}
	f.Close()

	svc2 := openDurable(t, dir, 1)
	t.Cleanup(func() { svc2.Shutdown(context.Background()) })
	if _, ok := svc2.Catalog().Get("keep"); !ok {
		t.Fatal("complete records before the torn tail were lost")
	}
	// The journal still accepts writes after truncating the tear.
	if _, err := svc2.RegisterGraph(GraphSpec{Name: "after", Type: "rmat", Scale: 6, Seed: 4}); err != nil {
		t.Fatal(err)
	}

	svc2.Shutdown(context.Background())
	svc3 := openDurable(t, dir, 1)
	t.Cleanup(func() { svc3.Shutdown(context.Background()) })
	for _, id := range []string{"keep", "after"} {
		if _, ok := svc3.Catalog().Get(id); !ok {
			t.Errorf("graph %s missing after second restart", id)
		}
	}
}

// TestUploadSurvivesRestart: an uploaded edge list persists as a
// payload file, re-materializes lazily after a crash, and produces
// bit-identical results to the original process.
func TestUploadSurvivesRestart(t *testing.T) {
	edges := chaos.GenerateRMAT(6, false, 5)
	var buf bytes.Buffer
	wr := graph.NewWriter(&buf, graph.FormatFor(1<<6, false))
	for _, e := range edges {
		if err := wr.WriteEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	svc1 := openDurable(t, dir, 1)
	if _, err := svc1.RegisterGraph(GraphSpec{Name: "up", Type: "upload", Vertices: 1 << 6, Data: buf.Bytes()}); err != nil {
		t.Fatal(err)
	}
	crash(t, svc1)

	svc2 := openDurable(t, dir, 1)
	t.Cleanup(func() { svc2.Shutdown(context.Background()) })
	jv, err := svc2.Submit("up", "BFS", chaos.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := waitJob(t, svc2, jv.ID)
	if got.State != JobDone {
		t.Fatalf("job on restored upload: %s %q", got.State, got.Error)
	}
	opt := labOptions
	opt.Seed = 3
	want, _, err := chaos.RunByNameResult("BFS", edges, 1<<6, opt)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Result.Summary) != fmt.Sprint(want.Summary) {
		t.Errorf("restored-upload summary %v != direct %v", got.Result.Summary, want.Summary)
	}
}

// TestCorruptResultBlobIsReplaced: an undecodable blob in the disk
// store must not poison its key forever — the lookup drops it, the
// deterministic rerun recomputes, and the rewritten blob serves the
// next restart.
func TestCorruptResultBlobIsReplaced(t *testing.T) {
	dir := t.TempDir()
	svc1 := openDurable(t, dir, 1)
	if _, err := svc1.RegisterGraph(GraphSpec{Name: "g", Type: "rmat", Scale: 6, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	jv, err := svc1.Submit("g", "PR", chaos.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := waitJob(t, svc1, jv.ID)
	crash(t, svc1)

	// Corrupt the blob on disk.
	blobs, err := filepath.Glob(filepath.Join(dir, "results", "*", "*"))
	if err != nil || len(blobs) != 1 {
		t.Fatalf("result blobs %v (%v)", blobs, err)
	}
	if err := os.WriteFile(blobs[0], []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	svc2 := openDurable(t, dir, 1) // crashed below, no cleanup needed
	// Not a cache hit (the blob was garbage), but the rerun completes
	// with the identical summary and rewrites the key.
	re, err := svc2.Submit("g", "PR", chaos.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if re.CacheHit {
		t.Fatal("corrupt blob served as a cache hit")
	}
	got := waitJob(t, svc2, re.ID)
	if got.State != JobDone || fmt.Sprint(got.Result.Summary) != fmt.Sprint(want.Result.Summary) {
		t.Fatalf("rerun: %s %v, want done %v", got.State, got.Result, want.Result.Summary)
	}
	crash(t, svc2)

	svc3 := openDurable(t, dir, 1)
	t.Cleanup(func() { svc3.Shutdown(context.Background()) })
	hit, err := svc3.Submit("g", "PR", chaos.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit {
		t.Fatal("rewritten blob not served from disk after the next restart")
	}
}

// TestSnapshotCompactionAcrossRestarts: enough traffic to trip the
// snapshot policy must compact the journal, and recovery from
// snapshot + fresh segment equals recovery from a full journal.
func TestSnapshotCompactionAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	svc1, err := Open(Config{
		Workers: 2, BaseOptions: labOptions, DataDir: dir,
		SnapshotEvery: 8, // tiny, so the test trips it quickly
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc1.RegisterGraph(GraphSpec{Name: "g", Type: "rmat", Scale: 6, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	var last JobView
	for i := 0; i < 6; i++ { // 6 jobs x >=3 transitions >> 8 records
		jv, err := svc1.Submit("g", "PR", chaos.Options{Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		last = waitJob(t, svc1, jv.ID)
	}
	if last.State != JobDone {
		t.Fatalf("last job %s: %s", last.ID, last.State)
	}
	// Let the background compaction(s) finish, then crash.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && svc1.persist.compacting.Load() {
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := os.Stat(filepath.Join(dir, "wal", "snapshot.json")); err != nil {
		t.Fatalf("no snapshot written despite %d-record policy: %v", 8, err)
	}
	crash(t, svc1)

	svc2 := openDurable(t, dir, 2)
	t.Cleanup(func() { svc2.Shutdown(context.Background()) })
	if _, ok := svc2.Catalog().Get("g"); !ok {
		t.Fatal("graph lost across compacted restart")
	}
	jobs := svc2.Scheduler().List()
	if len(jobs) != 6 {
		t.Fatalf("recovered %d jobs, want 6", len(jobs))
	}
	for _, jv := range jobs {
		if jv.State != JobDone {
			t.Errorf("job %s: %s, want done", jv.ID, jv.State)
		}
	}
}
