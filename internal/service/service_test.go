package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"chaos"
	"chaos/internal/graph"
)

// labOptions are the scaled-down defaults every test job inherits, the
// same chunk-shrinking rule the benches use (see DESIGN.md).
var labOptions = chaos.Options{
	ChunkBytes:   1 << 10,
	LatencyScale: 1.0 / 4096,
	Seed:         1,
}

func newTestService(t *testing.T, workers int) *Service {
	t.Helper()
	svc := New(Config{Workers: workers, BaseOptions: labOptions})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})
	return svc
}

func doJSON(t *testing.T, client *http.Client, method, url string, body any, out any) (int, string) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	raw.ReadFrom(resp.Body)
	if out != nil {
		if err := json.Unmarshal(raw.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, raw.String(), err)
		}
	}
	return resp.StatusCode, raw.String()
}

// pollJob polls GET /v1/jobs/{id} until the job leaves the queued and
// running states.
func pollJob(t *testing.T, client *http.Client, base, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		var jv JobView
		code, body := doJSON(t, client, http.MethodGet, base+"/v1/jobs/"+id, nil, &jv)
		if code != http.StatusOK {
			t.Fatalf("GET job %s: %d %s", id, code, body)
		}
		if jv.State != JobQueued && jv.State != JobRunning {
			return jv
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return JobView{}
}

// TestEndToEnd drives the whole API against a live httptest server:
// register a graph, submit concurrent jobs across several algorithms,
// poll them to completion, verify the report and result payloads, take a
// result-cache hit on resubmission, and shut down gracefully.
func TestEndToEnd(t *testing.T) {
	svc := newTestService(t, 2)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	// Liveness.
	if code, body := doJSON(t, client, http.MethodGet, ts.URL+"/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz: %d %s", code, body)
	}

	// Register a weighted R-MAT graph (weights let every algorithm run).
	var g GraphInfo
	code, body := doJSON(t, client, http.MethodPost, ts.URL+"/v1/graphs",
		GraphSpec{Name: "rmat8", Type: "rmat", Scale: 8, Weighted: true, Seed: 42}, &g)
	if code != http.StatusCreated {
		t.Fatalf("register graph: %d %s", code, body)
	}
	if g.ID != "rmat8" || g.Vertices != 1<<8 || g.Edges != 1<<12 {
		t.Fatalf("graph payload %+v", g)
	}

	// Re-registering the same name conflicts; an invalid spec that
	// happens to reuse an existing name is still a plain bad request.
	if code, _ := doJSON(t, client, http.MethodPost, ts.URL+"/v1/graphs",
		GraphSpec{Name: "rmat8", Type: "rmat", Scale: 8, Weighted: true, Seed: 42}, nil); code != http.StatusConflict {
		t.Errorf("duplicate register: code %d, want 409", code)
	}
	if code, _ := doJSON(t, client, http.MethodPost, ts.URL+"/v1/graphs",
		GraphSpec{Name: "rmat8", Type: "mystery"}, nil); code != http.StatusBadRequest {
		t.Errorf("invalid spec on existing name: code %d, want 400", code)
	}

	var graphs []GraphInfo
	if code, body := doJSON(t, client, http.MethodGet, ts.URL+"/v1/graphs", nil, &graphs); code != http.StatusOK || len(graphs) != 1 {
		t.Fatalf("list graphs: %d %s", code, body)
	}

	// Submit 5 jobs across 4 algorithms concurrently (the pool runs 2 at
	// a time). Seeds are fixed, so every run is deterministic.
	type submission struct {
		alg  string
		seed int64
	}
	subs := []submission{{"BFS", 7}, {"PR", 7}, {"SSSP", 7}, {"WCC", 7}, {"PR", 8}}
	ids := make([]string, len(subs))
	var wg sync.WaitGroup
	for i, sub := range subs {
		wg.Add(1)
		go func(i int, sub submission) {
			defer wg.Done()
			var jv JobView
			code, body := doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs", jobRequest{
				Graph:     "rmat8",
				Algorithm: strings.ToLower(sub.alg), // exercises case-insensitive parsing
				Options:   jobOptions{Machines: 2, Seed: sub.seed},
			}, &jv)
			if code != http.StatusAccepted {
				t.Errorf("submit %s: %d %s", sub.alg, code, body)
				return
			}
			ids[i] = jv.ID
		}(i, sub)
	}
	wg.Wait()

	// Every job completes with a full report and a result summary.
	for i, sub := range subs {
		jv := pollJob(t, client, ts.URL, ids[i])
		if jv.State != JobDone {
			t.Fatalf("job %s (%s): state %s, error %q", jv.ID, sub.alg, jv.State, jv.Error)
		}
		if jv.Report == nil || jv.Result == nil {
			t.Fatalf("job %s: missing report/result", jv.ID)
		}
		if jv.Report.Algorithm != sub.alg || jv.Result.Algorithm != sub.alg {
			t.Errorf("job %s: algorithm %q/%q, want %s", jv.ID, jv.Report.Algorithm, jv.Result.Algorithm, sub.alg)
		}
		if jv.Report.Machines != 2 {
			t.Errorf("job %s: machines %d, want 2", jv.ID, jv.Report.Machines)
		}
		if jv.Report.SimulatedSeconds <= 0 || jv.Report.Iterations < 1 {
			t.Errorf("job %s: implausible report %+v", jv.ID, jv.Report)
		}
		if len(jv.Report.Breakdown) == 0 {
			t.Errorf("job %s: empty breakdown", jv.ID)
		}
		if jv.Result.Vertices != 1<<8 || len(jv.Result.Summary) == 0 {
			t.Errorf("job %s: implausible result %+v", jv.ID, jv.Result)
		}
	}

	// Resubmitting an identical request is answered from the result
	// cache: done immediately, flagged as a hit, same payload.
	first := pollJob(t, client, ts.URL, ids[0])
	var hit JobView
	code, body = doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs", jobRequest{
		Graph:     "rmat8",
		Algorithm: "BFS",
		Options:   jobOptions{Machines: 2, Seed: 7},
	}, &hit)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: %d %s", code, body)
	}
	if hit.State != JobDone || !hit.CacheHit {
		t.Fatalf("resubmit: state %s cacheHit %v, want immediate cached done", hit.State, hit.CacheHit)
	}
	if fmt.Sprint(hit.Result.Summary) != fmt.Sprint(first.Result.Summary) {
		t.Errorf("cache returned different summary: %v vs %v", hit.Result.Summary, first.Result.Summary)
	}

	// Canceling a finished job is a conflict.
	if code, _ := doJSON(t, client, http.MethodDelete, ts.URL+"/v1/jobs/"+ids[0], nil, nil); code != http.StatusConflict {
		t.Errorf("cancel done job: code %d, want 409", code)
	}

	// Stats reflect what happened.
	var st Stats
	if code, body := doJSON(t, client, http.MethodGet, ts.URL+"/v1/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	}
	if st.Graphs != 1 || st.Workers != 2 {
		t.Errorf("stats header %+v", st)
	}
	if st.Cache.Hits < 1 || st.Cache.HitRate <= 0 {
		t.Errorf("cache stats %+v, want at least one hit", st.Cache)
	}
	if st.PerAlgorithm["PR"] != 2 || st.PerAlgorithm["BFS"] != 2 {
		t.Errorf("per-algorithm counts %+v", st.PerAlgorithm)
	}
	if st.Jobs[string(JobDone)] != 6 {
		t.Errorf("done count %d, want 6", st.Jobs[string(JobDone)])
	}

	// Unknown algorithm and unknown graph fail with the right statuses.
	if code, body := doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs",
		jobRequest{Graph: "rmat8", Algorithm: "dijkstra"}, nil); code != http.StatusBadRequest || !strings.Contains(body, "unknown algorithm") {
		t.Errorf("bad algorithm: %d %s", code, body)
	}
	if code, _ := doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs",
		jobRequest{Graph: "nope", Algorithm: "PR"}, nil); code != http.StatusNotFound {
		t.Errorf("bad graph: code %d, want 404", code)
	}
	if code, _ := doJSON(t, client, http.MethodGet, ts.URL+"/v1/jobs/j999", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown job: code %d, want 404", code)
	}

	// Graceful shutdown drains; afterwards submissions are refused.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if code, _ := doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs",
		jobRequest{Graph: "rmat8", Algorithm: "PR", Options: jobOptions{Seed: 99}}, nil); code != http.StatusServiceUnavailable {
		t.Errorf("submit after shutdown: code %d, want 503", code)
	}
}

// TestUploadedGraphMatchesDirectRun registers a chaos-gen binary edge
// list over HTTP and checks the service's answer is bit-identical to
// calling the library directly.
func TestUploadedGraphMatchesDirectRun(t *testing.T) {
	edges := chaos.GenerateRMAT(6, false, 5)
	var buf bytes.Buffer
	w := graph.NewWriter(&buf, graph.FormatFor(1<<6, false))
	for _, e := range edges {
		if err := w.WriteEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	svc := newTestService(t, 1)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	var g GraphInfo
	code, body := doJSON(t, client, http.MethodPost, ts.URL+"/v1/graphs",
		GraphSpec{Name: "up", Type: "upload", Vertices: 1 << 6, Data: buf.Bytes()}, &g)
	if code != http.StatusCreated {
		t.Fatalf("upload: %d %s", code, body)
	}
	if g.Edges != len(edges) || g.Vertices != 1<<6 {
		t.Fatalf("uploaded graph %+v, want %d edges", g, len(edges))
	}

	var jv JobView
	if code, body := doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs",
		jobRequest{Graph: "up", Algorithm: "BFS", Options: jobOptions{Seed: 3}}, &jv); code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	got := pollJob(t, client, ts.URL, jv.ID)
	if got.State != JobDone {
		t.Fatalf("job: %s %s", got.State, got.Error)
	}

	opt := labOptions
	opt.Seed = 3
	want, wantRep, err := chaos.RunByNameResult("BFS", edges, 1<<6, opt)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Result.Summary) != fmt.Sprint(want.Summary) {
		t.Errorf("service summary %v != direct run %v", got.Result.Summary, want.Summary)
	}
	if got.Report.SimulatedSeconds != wantRep.SimulatedSeconds {
		t.Errorf("service runtime %v != direct run %v", got.Report.SimulatedSeconds, wantRep.SimulatedSeconds)
	}
}

// TestWeightedAlgorithmNeedsWeightedGraph: weight-consuming algorithms
// on an unweighted graph are rejected instead of silently computing (and
// caching) all-zero distances.
func TestWeightedAlgorithmNeedsWeightedGraph(t *testing.T) {
	svc := newTestService(t, 1)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	if code, body := doJSON(t, client, http.MethodPost, ts.URL+"/v1/graphs",
		GraphSpec{Name: "plain", Type: "rmat", Scale: 6, Seed: 1}, nil); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	for _, alg := range []string{"sssp", "mcst", "spmv", "bp"} {
		code, body := doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs",
			jobRequest{Graph: "plain", Algorithm: alg}, nil)
		if code != http.StatusBadRequest || !strings.Contains(body, "needs edge weights") {
			t.Errorf("%s on unweighted graph: %d %s", alg, code, body)
		}
	}
	// Unweighted algorithms still run.
	var jv JobView
	if code, body := doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs",
		jobRequest{Graph: "plain", Algorithm: "bfs"}, &jv); code != http.StatusAccepted {
		t.Fatalf("bfs: %d %s", code, body)
	}
	if got := pollJob(t, client, ts.URL, jv.ID); got.State != JobDone {
		t.Errorf("bfs job: %s %s", got.State, got.Error)
	}
}

// TestMergeOptionsLatencyScale checks the chunk/latency coupling: a job
// that overrides the chunk size without pinning LatencyScale gets the
// scale derived from its own chunks, not the base configuration's.
func TestMergeOptionsLatencyScale(t *testing.T) {
	base := chaos.Options{ChunkBytes: 4 << 20, LatencyScale: 1}

	// Inheriting the base chunk size inherits the base scale.
	got := mergeOptions(base, chaos.Options{})
	if got.LatencyScale != 1 || got.ChunkBytes != 4<<20 {
		t.Errorf("inherited: %+v", got)
	}
	// Overriding the chunk size re-derives the scale (64 KiB / 4 MiB).
	got = mergeOptions(base, chaos.Options{ChunkBytes: 64 << 10})
	if want := 1.0 / 64; got.LatencyScale != want {
		t.Errorf("overridden chunk: scale %v, want %v", got.LatencyScale, want)
	}
	// An explicit request scale always wins.
	got = mergeOptions(base, chaos.Options{ChunkBytes: 64 << 10, LatencyScale: 0.5})
	if got.LatencyScale != 0.5 {
		t.Errorf("explicit scale: %v, want 0.5", got.LatencyScale)
	}
	// No base scale at all: derive from the effective chunk size.
	got = mergeOptions(chaos.Options{}, chaos.Options{})
	if got.LatencyScale != 1 {
		t.Errorf("paper defaults: scale %v, want 1", got.LatencyScale)
	}
}

// TestCacheKeyCanonicalization checks that requests differing only in
// spelled-out defaults share one cache entry.
func TestCacheKeyCanonicalization(t *testing.T) {
	svc := newTestService(t, 1)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	if code, body := doJSON(t, client, http.MethodPost, ts.URL+"/v1/graphs",
		GraphSpec{Name: "tiny", Type: "rmat", Scale: 6, Seed: 1}, nil); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}

	var first JobView
	doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs",
		jobRequest{Graph: "tiny", Algorithm: "PR"}, &first)
	pollJob(t, client, ts.URL, first.ID)

	// machines:1, storage "ssd", network "40g" are all defaults; the
	// fingerprint must not distinguish them from the zero request.
	var second JobView
	code, body := doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs",
		jobRequest{Graph: "tiny", Algorithm: "pagerank",
			Options: jobOptions{Machines: 1, Storage: "ssd", Network: "40g"}}, &second)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: %d %s", code, body)
	}
	if !second.CacheHit {
		t.Error("canonically-equal request missed the cache")
	}
}
