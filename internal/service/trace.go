// End-to-end job tracing: every job owns one W3C-sized trace, rooted
// at the HTTP request that submitted it (or a synthetic submit span for
// library callers), with scheduler lifecycle spans journaled through
// the WAL so the tree survives a crash-restart. Engine flight-recorder
// spans and WAL operation spans are merged in at serve time — see
// obs.Timeline and DESIGN.md "One trace per job, across tiers".
//
// Everything here is observational-only: trace context rides
// context.Context (reqTrace, mirroring chaos.WithTrace), never
// chaos.Options, so tracing can never change a result or a cache key.
package service

import (
	"context"
	"fmt"
	"time"

	"chaos"
	"chaos/internal/obs"
)

// reqTrace is the trace context the HTTP middleware extracts from an
// inbound traceparent header (or mints when there is none) and hands
// down the submission path on the request context. The scheduler roots
// the job's span tree in it.
type reqTrace struct {
	traceID string // lowercase-hex trace id
	span    string // the request (root) span's id
	parent  string // inbound parent span id, "" when the trace starts here
	remote  bool   // the parent span lives in the caller's process
	name    string // root span name, e.g. "POST /v1/jobs"
	start   time.Time
}

type reqTraceKey struct{}

// withReqTrace attaches the request's trace context; the middleware is
// the only producer.
func withReqTrace(ctx context.Context, rt *reqTrace) context.Context {
	return context.WithValue(ctx, reqTraceKey{}, rt)
}

// reqTraceFrom extracts what withReqTrace attached, nil if nothing.
func reqTraceFrom(ctx context.Context) *reqTrace {
	if ctx == nil {
		return nil
	}
	rt, _ := ctx.Value(reqTraceKey{}).(*reqTrace)
	return rt
}

// spanSeed is the per-job span-id derivation seed: scoping it to the
// job keeps ids unique even when one client trace spans many jobs.
func (j *Job) spanSeed() string { return j.traceID + "/" + j.ID }

// nextSpanIDLocked derives the job's next span id; callers hold s.mu.
func (j *Job) nextSpanIDLocked() string {
	j.spanSeq++
	return obs.DeriveSpanID(j.spanSeed(), j.spanSeq).String()
}

// addSpanLocked appends one span to the job's journaled span list and
// returns its id; end 0 leaves the span open. Callers hold s.mu.
func (j *Job) addSpanLocked(kind, name, detail, parent string, start, end int64) string {
	id := j.nextSpanIDLocked()
	j.spans = append(j.spans, obs.TreeSpan{
		TraceID: j.traceID,
		SpanID:  id,
		Parent:  parent,
		Name:    name,
		Kind:    kind,
		Start:   start,
		End:     end,
		Detail:  detail,
	})
	return id
}

// closeSpanLocked ends the span with the given id, optionally stamping
// a detail; callers hold s.mu. Closing an unknown id is a no-op (the
// span may predate a schema change in an old journal).
func (j *Job) closeSpanLocked(id string, end int64, detail string) {
	if id == "" {
		return
	}
	for i := range j.spans {
		if j.spans[i].SpanID == id {
			j.spans[i].End = end
			if detail != "" {
				j.spans[i].Detail = detail
			}
			return
		}
	}
}

// closeOpenSpansLocked ends every still-open span — the crash-recovery
// path: an open "run" from a dead process will never close itself.
func (j *Job) closeOpenSpansLocked(end int64, detail string) {
	for i := range j.spans {
		if j.spans[i].End == 0 {
			j.spans[i].End = end
			j.spans[i].Detail = detail
		}
	}
}

// initTraceLocked roots a job's trace: from the request context when
// the submission came over HTTP (the root is the request span, remote
// when the caller sent a traceparent), or a synthetic submit span
// derived from the job's options fingerprint for library callers —
// either way the ids are derived, never random (see internal/obs).
// Callers hold s.mu.
func (s *Scheduler) initTraceLocked(j *Job, rt *reqTrace) {
	now := j.enqueuedAt.UnixNano()
	if rt != nil {
		j.traceID = rt.traceID
		j.traceRemote = rt.remote
		j.rootSpanID = rt.span
		name := rt.name
		if name == "" {
			name = "request"
		}
		j.spans = append(j.spans, obs.TreeSpan{
			TraceID: j.traceID,
			SpanID:  rt.span,
			Parent:  rt.parent,
			Remote:  rt.remote,
			Name:    name,
			Kind:    obs.KindRequest,
			Start:   rt.start.UnixNano(),
			End:     now, // the request is answered at admission
		})
	} else {
		j.traceID = obs.DeriveTraceID(j.Options.Fingerprint()+"|"+j.ID, 0).String()
		j.rootSpanID = obs.DeriveSpanID(j.spanSeed(), 0).String()
		j.spans = append(j.spans, obs.TreeSpan{
			TraceID: j.traceID,
			SpanID:  j.rootSpanID,
			Name:    "submit",
			Kind:    obs.KindRequest,
			Start:   now,
			End:     now,
		})
	}
	j.addSpanLocked(obs.KindLifecycle, "admitted", "", j.rootSpanID, now, now)
	s.byTrace[j.traceID] = j.ID
}

// restoreTraceLocked rebuilds a restored job's trace bookkeeping from
// its journaled spans: the root and the still-open queue/run spans are
// recomputed rather than journaled. Records from before tracing
// existed get a fresh synthetic root so recovery and reruns still
// produce a tree. Callers hold s.mu.
func (s *Scheduler) restoreTraceLocked(j *Job) {
	if j.traceID == "" {
		s.initTraceLocked(j, nil)
		return
	}
	s.byTrace[j.traceID] = j.ID
	for i := range j.spans {
		sp := &j.spans[i]
		if sp.Kind == obs.KindRequest {
			j.rootSpanID = sp.SpanID
		}
		switch sp.Name {
		case "queued":
			if sp.End == 0 {
				j.queuedSpanID = sp.SpanID
			}
		case "run":
			j.runSpanID = sp.SpanID
		}
	}
}

// noteRecoveryLocked files the restart-recovery spans of a job being
// re-enqueued after a crash: the previous life's open spans are closed
// at the recovery instant (the run they belonged to is gone), an
// explicit recovery point marks the requeue, and a fresh queued span
// opens. Callers hold s.mu.
func (s *Scheduler) noteRecoveryLocked(j *Job, at time.Time) {
	now := at.UnixNano()
	j.closeOpenSpansLocked(now, "interrupted by restart")
	j.addSpanLocked(obs.KindLifecycle, "recovered",
		fmt.Sprintf("restart %d: re-enqueued after crash recovery", j.restarts),
		j.rootSpanID, now, now)
	j.queuedSpanID = j.addSpanLocked(obs.KindLifecycle, "queued", "requeued after restart", j.rootSpanID, now, 0)
	// The old run span (if any) stays closed in the tree, but new engine
	// spans must not parent under it.
	j.runSpanID = ""
}

// noteTerminalLocked closes the run/queue spans and files the terminal
// point span (done/failed/canceled, with the error as detail); callers
// hold s.mu after setting the final state.
func (j *Job) noteTerminalLocked(at time.Time) {
	if j.traceID == "" {
		return
	}
	now := at.UnixNano()
	j.closeSpanLocked(j.queuedSpanID, now, "")
	j.closeSpanLocked(j.runSpanID, now, "")
	j.addSpanLocked(obs.KindLifecycle, string(j.state), j.err, j.rootSpanID, now, now)
}

// NoteJobSpan files an extra lifecycle span against a job — the
// service's durability checkpoint (result blob persisted) is the one
// producer. The span parents under the run span while one is open so
// checkpoints nest inside the run. The span is journaled (the job
// record carries the full span list) but not published as an event.
func (s *Scheduler) NoteJobSpan(j *Job, name, detail string, start time.Time, dur time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.traceID == "" {
		return
	}
	parent := j.runSpanID
	if parent == "" {
		parent = j.rootSpanID
	}
	j.addSpanLocked(obs.KindLifecycle, name, detail, parent, start.UnixNano(), start.Add(dur).UnixNano())
	if s.onUpdate != nil {
		s.onUpdate(j)
	}
}

// jobTrace is the scheduler's contribution to GET /v1/jobs/{id}/trace:
// an immutable snapshot of the job's trace identity, journaled spans,
// flight recorder and run-span alignment.
type jobTrace struct {
	view    JobView
	traceID string
	spans   []obs.TreeSpan
	// rec is the engine flight recorder, nil when this process never
	// executed the job (queued, cache hit, journal-restored history).
	rec *chaos.TraceRecorder
	// runSpanID/runStartNs locate the run span engine spans parent
	// under and the epoch origin that aligns native engine times.
	runSpanID  string
	runStartNs int64
}

// TraceInfo snapshots everything the trace endpoint needs in one lock
// acquisition.
func (s *Scheduler) TraceInfo(id string) (jobTrace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return jobTrace{}, false
	}
	t := jobTrace{
		view:      j.view().stripped(),
		traceID:   j.traceID,
		spans:     append([]obs.TreeSpan(nil), j.spans...),
		rec:       j.trace.Load(),
		runSpanID: j.runSpanID,
	}
	for _, sp := range j.spans {
		if sp.SpanID == j.runSpanID {
			t.runStartNs = sp.Start
		}
	}
	return t, true
}

// JobForTrace resolves a trace id to the job that owns it — the
// GET /v1/traces/{id} lookup.
func (s *Scheduler) JobForTrace(traceID string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.byTrace[traceID]
	return id, ok
}
