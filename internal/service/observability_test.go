package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"chaos"
	"chaos/internal/obs"
)

// TestRetryAfterSecondsNeverZero pins the admission-control contract
// the HTTP layer relies on: Retry-After is never 0 (a zero tells
// clients to retry immediately, defeating the backoff) and never
// unbounded.
func TestRetryAfterSecondsNeverZero(t *testing.T) {
	cases := []struct {
		depth, workers, want int
	}{
		{0, 4, 1},     // empty backlog still asks for a beat of patience
		{3, 4, 1},     // sub-worker backlog rounds up to the floor
		{8, 4, 2},     // coarse backlog-per-worker estimate
		{1000, 4, 60}, // capped so clients never park for minutes
		{5, 0, 5},     // worker count defensively floored at 1
	}
	for _, c := range cases {
		e := &QueueFullError{Depth: c.depth, Max: c.depth, Workers: c.workers}
		got := e.RetryAfterSeconds()
		if got != c.want {
			t.Errorf("RetryAfterSeconds(depth=%d, workers=%d) = %d, want %d", c.depth, c.workers, got, c.want)
		}
		if got < 1 {
			t.Errorf("RetryAfterSeconds(depth=%d, workers=%d) = %d < 1", c.depth, c.workers, got)
		}
	}
}

// TestPromLabelEscaping: label values escape exactly the three
// metacharacters the exposition format defines — backslash, double
// quote, newline — and pass everything else through verbatim (where %q
// would have mangled tabs and non-ASCII runes into Go escapes).
func TestPromLabelEscaping(t *testing.T) {
	var p promWriter
	p.sample("m", [][2]string{{"l", "a\"b\\c\nd\te"}}, 1)
	want := "m{l=\"a\\\"b\\\\c\\nd\te\"} 1\n"
	if got := p.b.String(); got != want {
		t.Errorf("escaped sample:\n got %q\nwant %q", got, want)
	}
}

// TestHistogramExposition checks the histogram render against the
// Prometheus histogram contract: cumulative nondecreasing buckets, the
// +Inf bucket equal to _count, and a faithful _sum.
func TestHistogramExposition(t *testing.T) {
	h := newHistogram(latencyBuckets)
	h.observe(0.003) // le=0.005 bucket
	h.observe(0.003)
	h.observe(100) // past every bound: +Inf only
	var p promWriter
	p.histogram("x", [][2]string{{"k", "v"}}, h)
	out := p.b.String()

	get := func(line string) float64 {
		t.Helper()
		for _, l := range strings.Split(out, "\n") {
			if strings.HasPrefix(l, line+" ") {
				v, err := strconv.ParseFloat(strings.TrimPrefix(l, line+" "), 64)
				if err != nil {
					t.Fatalf("parsing %q: %v", l, err)
				}
				return v
			}
		}
		t.Fatalf("no sample %q in:\n%s", line, out)
		return 0
	}
	if v := get(`x_bucket{k="v",le="0.005"}`); v != 2 {
		t.Errorf("le=0.005 bucket = %g, want 2", v)
	}
	if v := get(`x_bucket{k="v",le="60"}`); v != 2 {
		t.Errorf("le=60 bucket = %g, want 2 (the 100s observation is +Inf-only)", v)
	}
	if v := get(`x_bucket{k="v",le="+Inf"}`); v != 3 {
		t.Errorf("+Inf bucket = %g, want 3", v)
	}
	if v := get(`x_count{k="v"}`); v != 3 {
		t.Errorf("_count = %g, want 3", v)
	}
	if v := get(`x_sum{k="v"}`); v < 100 || v > 100.1 {
		t.Errorf("_sum = %g, want ~100.006", v)
	}
	// Cumulative buckets never decrease.
	prev := -1.0
	for _, l := range strings.Split(out, "\n") {
		if !strings.HasPrefix(l, "x_bucket{") {
			continue
		}
		v, err := strconv.ParseFloat(l[strings.LastIndex(l, " ")+1:], 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", l, err)
		}
		if v < prev {
			t.Fatalf("bucket series decreases at %q:\n%s", l, out)
		}
		prev = v
	}
}

// TestMetricsHistogramsPreSeededAndFed scrapes /metrics on a fresh
// service (every route and engine series must exist at zero before any
// traffic) and again after one sim job (queue-wait and sim wall-time
// histograms must have counted it; the HTTP histogram must have
// counted the scrape).
func TestMetricsHistogramsPreSeededAndFed(t *testing.T) {
	svc := newTestService(t, 1)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	scrape := func() string {
		t.Helper()
		resp, err := client.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String()
	}

	first := scrape()
	// Every route in the route table — not a hand-picked sample — must
	// have its series alive at zero from the first scrape, so a newly
	// added endpoint (e.g. the trace routes) can never ship with an
	// absent series (absent ≠ zero to alerting rules).
	wanted := []string{
		`chaos_http_request_duration_seconds_count{route="unmatched"} 0`,
		`chaos_job_queue_wait_seconds_count 0`,
		`chaos_job_wall_seconds_count{engine="sim"} 0`,
		`chaos_job_wall_seconds_count{engine="native"} 0`,
	}
	for _, route := range svc.routePatterns() {
		wanted = append(wanted,
			`chaos_http_request_duration_seconds_count{route="`+route+`"} 0`)
	}
	for _, want := range wanted {
		if !strings.Contains(first, want) {
			t.Errorf("fresh scrape lacks %q", want)
		}
	}

	if code, body := doJSON(t, client, http.MethodPost, ts.URL+"/v1/graphs",
		GraphSpec{Name: "g", Type: "rmat", Scale: 7, Seed: 42}, nil); code != http.StatusCreated {
		t.Fatalf("register graph: %d %s", code, body)
	}
	var jv JobView
	if code, body := doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs",
		jobRequest{Graph: "g", Algorithm: "PR", Options: jobOptions{}}, &jv); code != http.StatusAccepted {
		t.Fatalf("submit job: %d %s", code, body)
	}
	if done := pollJob(t, client, ts.URL, jv.ID); done.State != JobDone {
		t.Fatalf("job ended %s: %s", done.State, done.Error)
	}

	second := scrape()
	for _, want := range []string{
		`chaos_job_queue_wait_seconds_count 1`,
		`chaos_job_wall_seconds_count{engine="sim"} 1`,
		`chaos_job_wall_seconds_count{engine="native"} 0`,
	} {
		if !strings.Contains(second, want) {
			t.Errorf("post-job scrape lacks %q", want)
		}
	}
	// The first scrape itself was counted by the time of the second.
	if !strings.Contains(second, `chaos_http_request_duration_seconds_count{route="GET /metrics"} 1`) {
		t.Errorf("scrape did not count the previous /metrics request:\n%s", second)
	}
}

// TestJobTraceEndpoint runs a native job and reads its end-to-end trace
// back through the API: the flat engine timeline carries per-machine
// scatter and gather spans, the span tree roots in a single trace with
// the lifecycle chain under it, the chrome format is valid trace_event
// JSON, and cache-hit jobs serve a lifecycle tree with the engine tier
// marked absent (nothing ran).
func TestJobTraceEndpoint(t *testing.T) {
	svc := newTestService(t, 1)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	if code, body := doJSON(t, client, http.MethodPost, ts.URL+"/v1/graphs",
		GraphSpec{Name: "g", Type: "rmat", Scale: 7, Seed: 42}, nil); code != http.StatusCreated {
		t.Fatalf("register graph: %d %s", code, body)
	}
	// Stealing disabled so span attribution is deterministic: on a
	// graph this small the first machine scheduled can otherwise steal
	// every partition before the other goroutine even starts, and the
	// per-machine assertions below would flake.
	req := jobRequest{Graph: "g", Algorithm: "PR",
		Options: jobOptions{Engine: "native", Machines: 2, DisableStealing: true, Seed: 3}}
	var jv JobView
	if code, body := doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs", req, &jv); code != http.StatusAccepted {
		t.Fatalf("submit job: %d %s", code, body)
	}
	if done := pollJob(t, client, ts.URL, jv.ID); done.State != JobDone {
		t.Fatalf("job ended %s: %s", done.State, done.Error)
	}

	var tr traceResponse
	if code, body := doJSON(t, client, http.MethodGet, ts.URL+"/v1/jobs/"+jv.ID+"/trace", nil, &tr); code != http.StatusOK {
		t.Fatalf("GET trace: %d %s", code, body)
	}
	if tr.ID != jv.ID || tr.Engine != chaos.EngineNative || tr.State != JobDone {
		t.Fatalf("trace header wrong: %+v", tr)
	}
	if len(tr.Spans) == 0 {
		t.Fatal("trace holds no spans")
	}
	scatter, gather := map[int]bool{}, map[int]bool{}
	for _, s := range tr.Spans {
		switch s.Phase {
		case chaos.PhaseScatter:
			scatter[s.Machine] = true
		case chaos.PhaseGather:
			gather[s.Machine] = true
		}
	}
	if len(scatter) != 2 || len(gather) != 2 {
		t.Errorf("scatter spans from %d machines, gather from %d, want 2 each", len(scatter), len(gather))
	}

	// The tree: one root (the submitting request), no orphans, and the
	// lifecycle chain — admitted, queued, run, done — under it, with the
	// engine spans parented under the run span.
	if tr.TraceID == "" || tr.TraceID != jv.TraceID {
		t.Errorf("trace id %q, job view carried %q", tr.TraceID, jv.TraceID)
	}
	if len(tr.Tree) != 1 {
		t.Fatalf("trace has %d roots, want 1", len(tr.Tree))
	}
	if tr.Orphans != 0 {
		t.Errorf("trace has %d orphans, want 0", tr.Orphans)
	}
	names := map[string]int{}
	engineUnderRun := 0
	var walkNames func(n *obs.Node, underRun bool)
	walkNames = func(n *obs.Node, underRun bool) {
		names[n.Span.Name]++
		if n.Span.Kind == "engine" && underRun {
			engineUnderRun++
		}
		for _, c := range n.Children {
			walkNames(c, underRun || n.Span.Name == "run")
		}
	}
	for _, r := range tr.Tree {
		walkNames(r, false)
	}
	for _, want := range []string{"admitted", "queued", "run", "done"} {
		if names[want] == 0 {
			t.Errorf("lifecycle span %q missing from tree (have %v)", want, names)
		}
	}
	if engineUnderRun != len(tr.Spans) {
		t.Errorf("%d engine spans nest under the run span, want all %d", engineUnderRun, len(tr.Spans))
	}

	// Chrome format: valid trace_event JSON with at least one event per
	// retained span.
	resp, err := client.Get(ts.URL + "/v1/jobs/" + jv.ID + "/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chrome trace: %d", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < len(tr.Spans) {
		t.Errorf("chrome trace holds %d events for %d spans", len(doc.TraceEvents), len(tr.Spans))
	}

	// The identical resubmission is answered from the result cache:
	// nothing ran, so the lifecycle tree is served with the engine tier
	// marked absent-with-reason.
	var hit JobView
	if code, body := doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs", req, &hit); code != http.StatusAccepted {
		t.Fatalf("resubmit: %d %s", code, body)
	}
	if !hit.CacheHit {
		t.Fatalf("resubmission was not a cache hit: %+v", hit)
	}
	var cached traceResponse
	if code, body := doJSON(t, client, http.MethodGet, ts.URL+"/v1/jobs/"+hit.ID+"/trace", nil, &cached); code != http.StatusOK {
		t.Fatalf("cache-hit trace: %d %s, want 200 with a lifecycle tree", code, body)
	}
	if len(cached.Tree) != 1 || len(cached.Spans) != 0 || cached.EngineAbsent == "" {
		t.Fatalf("cache-hit trace should be one lifecycle tree with the engine tier absent: %+v", cached)
	}
	// The same tree is addressable by trace id.
	var byTrace traceResponse
	if code, body := doJSON(t, client, http.MethodGet, ts.URL+"/v1/traces/"+tr.TraceID, nil, &byTrace); code != http.StatusOK {
		t.Fatalf("GET /v1/traces/{id}: %d %s", code, body)
	}
	if byTrace.ID != jv.ID || byTrace.TraceID != tr.TraceID {
		t.Fatalf("trace lookup resolved %+v, want job %s", byTrace, jv.ID)
	}
	if code, _ := doJSON(t, client, http.MethodGet, ts.URL+"/v1/jobs/j999/trace", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown-job trace: %d, want 404", code)
	}
	if code, _ := doJSON(t, client, http.MethodGet, ts.URL+"/v1/traces/deadbeef", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown trace id: %d, want 404", code)
	}
}
