package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"chaos"
)

// TestNativeEngineJobEndToEnd submits a job on the native execution
// plane through the HTTP API and checks the engine surfaces everywhere:
// the job view, the report, /v1/stats and /metrics.
func TestNativeEngineJobEndToEnd(t *testing.T) {
	svc := newTestService(t, 2)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	if code, body := doJSON(t, client, http.MethodPost, ts.URL+"/v1/graphs",
		GraphSpec{Name: "g", Type: "rmat", Scale: 7, Seed: 42}, nil); code != http.StatusCreated {
		t.Fatalf("register graph: %d %s", code, body)
	}

	var jv JobView
	code, body := doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs",
		jobRequest{Graph: "g", Algorithm: "PR", Options: jobOptions{Engine: "native", Seed: 3}}, &jv)
	if code != http.StatusAccepted {
		t.Fatalf("submit native job: %d %s", code, body)
	}
	if jv.Engine != chaos.EngineNative {
		t.Fatalf("queued view engine = %q, want native", jv.Engine)
	}
	done := pollJob(t, client, ts.URL, jv.ID)
	if done.State != JobDone {
		t.Fatalf("native job ended %s: %s", done.State, done.Error)
	}
	if done.Engine != chaos.EngineNative {
		t.Errorf("done view engine = %q, want native", done.Engine)
	}
	if done.Report == nil || done.Report.Engine != chaos.EngineNative {
		t.Fatalf("report engine wrong: %+v", done.Report)
	}
	if done.Report.WallSeconds <= 0 || done.Report.SimulatedSeconds != 0 {
		t.Errorf("native report times wrong: %+v", done.Report)
	}
	if done.Result == nil || done.Result.Summary["rank_sum"] <= 0 {
		t.Errorf("native result not populated: %+v", done.Result)
	}

	// The identical resubmission is a cache hit — the two engines must
	// not share an entry, so a sim-engine submission of the same job
	// really runs (and reports virtual time).
	var simJV JobView
	if code, body := doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs",
		jobRequest{Graph: "g", Algorithm: "PR", Options: jobOptions{Seed: 3}}, &simJV); code != http.StatusAccepted {
		t.Fatalf("submit sim job: %d %s", code, body)
	}
	simDone := pollJob(t, client, ts.URL, simJV.ID)
	if simDone.CacheHit {
		t.Error("sim submission hit the native cache entry")
	}
	if simDone.Engine != chaos.EngineSim || simDone.Report == nil || simDone.Report.SimulatedSeconds <= 0 {
		t.Errorf("sim job shape wrong: engine %q report %+v", simDone.Engine, simDone.Report)
	}

	// And the native resubmission IS a hit.
	var hitJV JobView
	if code, _ := doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs",
		jobRequest{Graph: "g", Algorithm: "PR", Options: jobOptions{Engine: "native", Seed: 3}}, &hitJV); code != http.StatusAccepted {
		t.Fatal("native resubmission rejected")
	}
	if hit := pollJob(t, client, ts.URL, hitJV.ID); !hit.CacheHit || hit.Engine != chaos.EngineNative {
		t.Errorf("native resubmission: cacheHit=%v engine=%q", hit.CacheHit, hit.Engine)
	}

	// Stats and metrics carry the per-engine counters.
	var st Stats
	if code, body := doJSON(t, client, http.MethodGet, ts.URL+"/v1/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	}
	if st.PerEngine[chaos.EngineNative] != 2 || st.PerEngine[chaos.EngineSim] != 1 {
		t.Errorf("perEngine = %v, want native:2 sim:1", st.PerEngine)
	}
	if st.NativeWallSeconds <= 0 {
		t.Errorf("nativeWallSeconds = %g, want > 0", st.NativeWallSeconds)
	}

	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`chaos_jobs_by_engine{engine="native"} 2`,
		`chaos_jobs_by_engine{engine="sim"} 1`,
		"chaos_native_wall_seconds_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics lacks %q:\n%s", want, text)
		}
	}
}

// TestBadEngineRejectedAtSubmit checks a typo'd engine name fails the
// submission with 400 and the shared ParseEngine message.
func TestBadEngineRejectedAtSubmit(t *testing.T) {
	svc := newTestService(t, 1)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	if code, _ := doJSON(t, client, http.MethodPost, ts.URL+"/v1/graphs",
		GraphSpec{Name: "g", Type: "rmat", Scale: 5, Seed: 1}, nil); code != http.StatusCreated {
		t.Fatal("register failed")
	}
	code, body := doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs",
		jobRequest{Graph: "g", Algorithm: "PR", Options: jobOptions{Engine: "turbo"}}, nil)
	if code != http.StatusBadRequest || !strings.Contains(body, "unknown engine") {
		t.Fatalf("bad engine: %d %s", code, body)
	}
}

// TestOldJournalRecordDefaultsEngineToSim replays a job record written
// before the engine option existed (its options JSON has no Engine key)
// and checks it restores reporting the only engine there was.
func TestOldJournalRecordDefaultsEngineToSim(t *testing.T) {
	// A verbatim pre-PR-5 jobRecord: chaos.Options marshals with Go
	// field names, and old records simply lack "Engine".
	raw := []byte(`{
		"id": "j9",
		"graph": "g1",
		"algorithm": "PR",
		"options": {"Machines": 2, "ChunkBytes": 1024, "Seed": 7},
		"state": "done",
		"enqueuedAt": "2026-01-02T03:04:05Z",
		"finishedAt": "2026-01-02T03:05:06Z"
	}`)
	var jr jobRecord
	if err := json.Unmarshal(raw, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.Options.Engine != "" {
		t.Fatalf("decoded engine %q, want empty", jr.Options.Engine)
	}

	svc := newTestService(t, 1)
	svc.restoreJobs([]jobRecord{jr}, 0)
	v, ok := svc.scheduler.Get("j9")
	if !ok {
		t.Fatal("restored job not found")
	}
	if v.Engine != chaos.EngineSim {
		t.Errorf("restored engine = %q, want sim", v.Engine)
	}
	if v.State != JobDone {
		t.Errorf("restored state = %s, want done", v.State)
	}
}
