package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sync"

	"chaos"
	"chaos/internal/durable"
)

// cacheKey content-addresses a run: the graph id (catalog ids are
// immutable bindings to one edge set), the canonical algorithm name, and
// the canonicalized options fingerprint. Two submissions with the same
// key are guaranteed to produce identical results, so the second is
// served from memory — or, with a data dir, from the disk result store,
// across process restarts.
func cacheKey(graphID, algorithm string, opt chaos.Options) string {
	h := sha256.New()
	h.Write([]byte(graphID))
	h.Write([]byte{0})
	h.Write([]byte(algorithm))
	h.Write([]byte{0})
	h.Write([]byte(opt.Fingerprint()))
	return hex.EncodeToString(h.Sum(nil))
}

type cacheEntry struct {
	result *chaos.Result
	report *chaos.Report
}

// storedResult is the disk encoding of a finished run in the result
// store (one JSON blob per cache key).
type storedResult struct {
	Result *chaos.Result `json:"result"`
	Report *chaos.Report `json:"report"`
}

// resultCache holds finished runs by content-addressed key, bounded to
// capacity entries with oldest-first eviction (an always-on server must
// not grow without bound). Entries are immutable once stored; lookups
// hand out the shared pointers.
//
// With a disk store attached it becomes the hot tier of a two-level
// cache: memory misses fall through to disk, and disk hits are promoted
// back into memory. Writing to disk is the service's job (it must order
// the blob write against the journal); the cache only reads.
type resultCache struct {
	mu      sync.Mutex
	entries map[string]cacheEntry
	// order is the insertion queue backing FIFO eviction: live keys are
	// order[head:]. Eviction advances head instead of reslicing from the
	// front — order = order[1:] would keep the evicted strings reachable
	// through the backing array forever — and compacts once the dead
	// prefix dominates.
	order    []string
	head     int
	cap      int
	hits     int
	misses   int
	diskHits int

	disk *durable.ResultStore // nil without a data dir
}

func newResultCache(capacity int, disk *durable.ResultStore) *resultCache {
	return &resultCache{entries: make(map[string]cacheEntry), cap: capacity, disk: disk}
}

// lookup returns the cached run for key, counting a hit or miss. On a
// memory miss it consults the disk tier and promotes a hit.
func (c *resultCache) lookup(key string) (*chaos.Result, *chaos.Report, bool) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		return e.result, e.report, true
	}
	disk := c.disk
	if disk == nil {
		c.misses++
		c.mu.Unlock()
		return nil, nil, false
	}
	c.mu.Unlock() // don't hold the lock across file IO

	data, ok := disk.Get(key)
	if !ok {
		c.mu.Lock()
		c.misses++
		c.mu.Unlock()
		return nil, nil, false
	}
	var sr storedResult
	if err := json.Unmarshal(data, &sr); err != nil || sr.Result == nil {
		// Undecodable blob (schema drift, bit rot): drop it so the
		// deterministic rerun can rewrite the key — Put is a no-op for
		// keys the store still indexes, so merely reporting a miss
		// would leave it poisoned forever.
		disk.Delete(key)
		c.mu.Lock()
		c.misses++
		c.mu.Unlock()
		return nil, nil, false
	}
	c.mu.Lock()
	c.storeLocked(key, sr.Result, sr.Report)
	c.hits++
	c.diskHits++
	c.mu.Unlock()
	return sr.Result, sr.Report, true
}

// store files a finished run under key, evicting the oldest entry when
// the cache is full.
func (c *resultCache) store(key string, res *chaos.Result, rep *chaos.Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.storeLocked(key, res, rep)
}

func (c *resultCache) storeLocked(key string, res *chaos.Result, rep *chaos.Report) {
	if _, exists := c.entries[key]; exists {
		return // identical deterministic run already cached
	}
	for c.cap > 0 && len(c.entries) >= c.cap {
		c.evictOldestLocked()
	}
	c.entries[key] = cacheEntry{result: res, report: rep}
	c.order = append(c.order, key)
}

// evictOldestLocked removes the oldest live entry. The vacated slot is
// zeroed immediately (so the key string is collectable) and the queue
// is compacted once half of it is dead, releasing the backing array the
// old order[1:] reslicing pinned.
func (c *resultCache) evictOldestLocked() {
	key := c.order[c.head]
	c.order[c.head] = ""
	c.head++
	delete(c.entries, key)
	if c.head >= 32 && c.head*2 >= len(c.order) {
		// Copy the live window into a fresh slice: the old backing
		// array — and every evicted key string it still references —
		// becomes garbage.
		c.order = append(make([]string, 0, len(c.order)-c.head), c.order[c.head:]...)
		c.head = 0
	}
}

// CacheStats is the cache's contribution to /v1/stats.
type CacheStats struct {
	Entries int     `json:"entries"`
	Hits    int     `json:"hits"`
	Misses  int     `json:"misses"`
	HitRate float64 `json:"hitRate"`
	// DiskHits counts lookups the memory tier missed but the disk
	// result store answered (a subset of Hits).
	DiskHits int `json:"diskHits,omitempty"`
	// Disk reports the persistent tier, present only with a data dir.
	Disk *durable.StoreStats `json:"disk,omitempty"`
}

func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CacheStats{Entries: len(c.entries), Hits: c.hits, Misses: c.misses, DiskHits: c.diskHits}
	if total := c.hits + c.misses; total > 0 {
		st.HitRate = float64(c.hits) / float64(total)
	}
	if c.disk != nil {
		ds := c.disk.Stats()
		st.Disk = &ds
	}
	return st
}
