package service

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"chaos"
)

// cacheKey content-addresses a run: the graph id (catalog ids are
// immutable bindings to one edge set), the canonical algorithm name, and
// the canonicalized options fingerprint. Two submissions with the same
// key are guaranteed to produce identical results, so the second is
// served from memory.
func cacheKey(graphID, algorithm string, opt chaos.Options) string {
	h := sha256.New()
	h.Write([]byte(graphID))
	h.Write([]byte{0})
	h.Write([]byte(algorithm))
	h.Write([]byte{0})
	h.Write([]byte(opt.Fingerprint()))
	return hex.EncodeToString(h.Sum(nil))
}

type cacheEntry struct {
	result *chaos.Result
	report *chaos.Report
}

// resultCache holds finished runs by content-addressed key, bounded to
// capacity entries with oldest-first eviction (an always-on server must
// not grow without bound). Entries are immutable once stored; lookups
// hand out the shared pointers.
type resultCache struct {
	mu      sync.Mutex
	entries map[string]cacheEntry
	order   []string // insertion order, oldest first
	cap     int
	hits    int
	misses  int
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{entries: make(map[string]cacheEntry), cap: capacity}
}

// lookup returns the cached run for key, counting a hit or miss.
func (c *resultCache) lookup(key string) (*chaos.Result, *chaos.Report, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, nil, false
	}
	c.hits++
	return e.result, e.report, true
}

// store files a finished run under key, evicting the oldest entry when
// the cache is full.
func (c *resultCache) store(key string, res *chaos.Result, rep *chaos.Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[key]; exists {
		return // identical deterministic run already cached
	}
	for c.cap > 0 && len(c.entries) >= c.cap {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
	c.entries[key] = cacheEntry{result: res, report: rep}
	c.order = append(c.order, key)
}

// CacheStats is the cache's contribution to /v1/stats.
type CacheStats struct {
	Entries int     `json:"entries"`
	Hits    int     `json:"hits"`
	Misses  int     `json:"misses"`
	HitRate float64 `json:"hitRate"`
}

func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CacheStats{Entries: len(c.entries), Hits: c.hits, Misses: c.misses}
	if total := c.hits + c.misses; total > 0 {
		st.HitRate = float64(c.hits) / float64(total)
	}
	return st
}
