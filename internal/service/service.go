// Package service turns the chaos library into a long-lived
// graph-analytics job service: an always-on process that amortizes graph
// ingestion across runs and executes independent jobs concurrently.
//
// Three pieces cooperate:
//
//   - the Catalog registers graphs once (R-MAT/webgraph generation
//     parameters or an uploaded chaos-gen binary edge list), materializes
//     the edge slice, and lazily caches the undirected and augmented
//     views the algorithms consume, so repeated jobs skip pre-processing;
//   - the Scheduler runs submitted jobs on a bounded worker pool (N
//     concurrent simulations, each itself a multi-core cluster model)
//     with queued/running/done/failed states and cancellation;
//   - a content-addressed result cache keyed on (graph, algorithm,
//     canonicalized Options) serves identical requests from memory.
//
// Service wires them behind a JSON HTTP API (see Handler) with graceful
// shutdown that drains running jobs. cmd/chaos-serve is the binary front
// end; README.md documents the endpoints with curl examples.
package service

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"chaos"
	"chaos/internal/durable"
	"chaos/internal/obs"
)

// Config parameterizes a Service.
type Config struct {
	// Workers bounds the number of concurrently running simulations
	// (default 4). Each simulation models a whole cluster, so a small
	// pool saturates the host.
	Workers int
	// BaseOptions is merged under every job's options: fields the job
	// request leaves at zero fall back to these (used by chaos-serve to
	// set lab-scale chunk sizes, and by tests).
	BaseOptions chaos.Options
	// MaxCacheEntries bounds the result cache; oldest entries are
	// evicted first (default 4096).
	MaxCacheEntries int
	// MaxJobHistory bounds how many finished jobs stay queryable;
	// queued and running jobs are never evicted (default 10000).
	MaxJobHistory int
	// MaxQueue bounds the number of queued (not yet running) jobs —
	// the admission control that keeps a traffic burst from growing the
	// queue without bound. Submissions past it fail with *QueueFullError
	// (HTTP 429 + Retry-After). 0 = unbounded.
	MaxQueue int
	// ComputeBudget is the total engine compute workers shared across
	// concurrently running jobs (default GOMAXPROCS): a job that does
	// not pin Options.ComputeWorkers starts with the budget divided by
	// the concurrency it will run beside (running + backlog, capped at
	// Workers), so N concurrent simulations stop oversubscribing the
	// host N×. Negative disables the division (every job defaults to
	// GOMAXPROCS again).
	ComputeBudget int
	// MaxUploadBytes bounds POST /v1/graphs request bodies (default
	// 64 MiB). Graph uploads carry whole edge lists, so they get a far
	// larger cap than the other endpoints' 1 MB.
	MaxUploadBytes int64
	// DataDir, when non-empty, makes the service durable: graph
	// registrations, job transitions and results are journaled under
	// it and recovered on the next Open (see internal/durable and
	// DESIGN.md). Empty means today's purely in-memory service.
	DataDir string
	// SnapshotEvery compacts the journal into a snapshot after this
	// many records (default 1024; needs DataDir).
	SnapshotEvery int
	// ResultStoreMaxBytes bounds the disk result store; the least
	// recently used blobs are evicted past it (0 = unbounded; needs
	// DataDir).
	ResultStoreMaxBytes int64
	// Logger, when set, makes the HTTP layer emit one structured line
	// per request (request id, method, path, matched route, status,
	// bytes, duration, remote). Nil keeps the handler silent — latency
	// histograms are recorded either way.
	Logger *slog.Logger
	// TraceSpanCap bounds the per-job flight recorder: each run keeps
	// at most this many spans, dropping the oldest past it (default
	// 8192). The recorder is observational-only — see chaos.WithTrace.
	TraceSpanCap int
}

// Service is the graph-analytics job service.
type Service struct {
	cfg       Config
	catalog   *Catalog
	scheduler *Scheduler
	cache     *resultCache

	metrics *serviceMetrics

	persist *persistence // nil without Config.DataDir
	// spillDir is the parent directory handed to native out-of-core runs
	// (chaos.WithSpillDir); "" without a data dir (the OS temp dir is
	// used). Swept clean on Open so a crash mid-run never leaks spill
	// files across restarts.
	spillDir string
	// walSpans retains the durability tier's recent operation spans
	// (append/fsync/rotate/snapshot, reported by the WAL's SetTrace
	// hook); the trace endpoint merges the ones overlapping a job's
	// lifetime into its tree. Nil without a data dir.
	walSpans  *obs.Ring[durable.Span]
	closeOnce sync.Once
}

// walSpanCap bounds the retained WAL operation spans; old spans fall
// off first, which only thins the WAL tier of very old traces.
const walSpanCap = 4096

// New starts an in-memory Service with its worker pool running. It is
// Open for configurations that cannot fail; a Config with a DataDir
// should use Open directly (New panics on persistence errors).
func New(cfg Config) *Service {
	s, err := Open(cfg)
	if err != nil {
		panic(err) // unreachable without DataDir: no IO happens
	}
	return s
}

// Open starts a Service. With cfg.DataDir set it opens the durable
// state under it, recovers graphs and job history from the snapshot and
// journal, and re-enqueues whatever was queued or running when the last
// process died; jobs that cannot be recovered are marked failed with a
// restart reason.
func Open(cfg Config) (*Service, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MaxCacheEntries <= 0 {
		cfg.MaxCacheEntries = 4096
	}
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = 64 << 20
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 1024
	}
	if cfg.TraceSpanCap <= 0 {
		cfg.TraceSpanCap = 8192
	}
	switch {
	case cfg.ComputeBudget == 0:
		cfg.ComputeBudget = runtime.GOMAXPROCS(0)
	case cfg.ComputeBudget < 0:
		cfg.ComputeBudget = 0 // explicit opt-out: unmanaged
	}
	s := &Service{
		cfg:     cfg,
		catalog: NewCatalog(),
	}
	var recovered *durable.Recovered
	if cfg.DataDir != "" {
		p, rec, err := openPersistence(cfg)
		if err != nil {
			return nil, fmt.Errorf("service: opening data dir %s: %w", cfg.DataDir, err)
		}
		s.persist = p
		recovered = rec
		// Out-of-core spill files live under the data dir so a crashed
		// run's orphans are found and removed at the next boot (a live
		// run deletes its own temp dir on completion, interruption or
		// rollback; only a process death can leave one behind).
		s.spillDir = filepath.Join(cfg.DataDir, "spill")
		if err := os.RemoveAll(s.spillDir); err != nil {
			return nil, fmt.Errorf("service: sweeping spill dir: %w", err)
		}
		if err := os.MkdirAll(s.spillDir, 0o755); err != nil {
			return nil, fmt.Errorf("service: creating spill dir: %w", err)
		}
		s.cache = newResultCache(cfg.MaxCacheEntries, p.store)
		// The WAL reports its operations as observational spans into a
		// bounded ring (never back into the journal; see durable.SpanHook).
		s.walSpans = obs.NewRing[durable.Span](walSpanCap)
		p.wal.SetTrace(s.walSpans.Record)
	} else {
		s.cache = newResultCache(cfg.MaxCacheEntries, nil)
	}
	s.scheduler = NewScheduler(SchedulerConfig{
		Workers:       cfg.Workers,
		Retain:        cfg.MaxJobHistory,
		MaxQueue:      cfg.MaxQueue,
		ComputeBudget: cfg.ComputeBudget,
	}, s.execute)
	// Latency histograms, pre-seeded with every route and engine so the
	// first scrape sees zeros; the scheduler hooks feed the queue-wait
	// and job-wall families. Set before recovery can start any job.
	s.metrics = newServiceMetrics(s.routePatterns())
	s.scheduler.onJobStart = func(wait time.Duration) { s.metrics.queueWait.observe(wait.Seconds()) }
	s.scheduler.onJobDone = func(engine string, wall time.Duration) { s.metrics.observeJobWall(engine, wall.Seconds()) }
	if s.persist != nil {
		// Hooks before recovery: requeue/failure transitions during
		// recovery must hit the journal too. The lazy result hydrator
		// serves GETs of pre-crash done jobs from the disk store.
		s.scheduler.onUpdate = s.noteJob
		s.scheduler.hydrate = func(graphID, alg string, opt chaos.Options) (*chaos.Result, *chaos.Report, bool) {
			return s.cache.lookup(cacheKey(graphID, alg, opt))
		}
		if err := s.recover(recovered); err != nil {
			s.persist.wal.Close()
			return nil, err
		}
	}
	return s, nil
}

// execute runs one job to completion on a worker goroutine: resolve the
// graph (re-materializing it if it was restored from the journal), fetch
// its cached edge view, run the algorithm — canceling at iteration
// boundaries once ctx is canceled — and populate the result cache (and,
// when durable, the disk result store) on success.
func (s *Service) execute(ctx context.Context, job *Job) (*chaos.Result, *chaos.Report, error) {
	key := cacheKey(job.Graph, job.Algorithm, job.Options)
	if job.restarts > 0 {
		// A crash-re-enqueued job may have finished before the crash
		// with only its "done" record lost in the fsync-batching
		// window; the fsynced result blob then answers without
		// re-simulating. Fresh submissions were already cache-checked
		// in Submit, so only restarted jobs pay this lookup.
		if res, rep, ok := s.cache.lookup(key); ok {
			job.answeredFromCache.Store(true)
			return res, rep, nil
		}
	}
	g, ok := s.catalog.Get(job.Graph)
	if !ok {
		return nil, nil, fmt.Errorf("service: graph %q disappeared", job.Graph)
	}
	if err := g.ensure(); err != nil {
		return nil, nil, err
	}
	view, err := chaos.ViewFor(job.Algorithm)
	if err != nil {
		return nil, nil, err
	}
	// Live progress: the engine reports at every iteration boundary (the
	// Interrupt boundary), the scheduler keeps the latest snapshot for
	// job views and fans ticks out to SSE subscribers. Subscribing
	// cannot change the run (see chaos.WithProgress).
	ctx = chaos.WithProgress(ctx, func(p chaos.Progress) {
		s.scheduler.NoteProgress(job, p)
	})
	// Flight recorder: every executed job records its per-phase span
	// stream into a bounded ring served by GET /v1/jobs/{id}/trace.
	// Like progress, attaching it cannot change the run (see
	// chaos.WithTrace); cache-answered jobs above never reach here and
	// stay recorder-less.
	rec := chaos.NewTraceRecorder(s.cfg.TraceSpanCap)
	job.trace.Store(rec)
	ctx = chaos.WithTrace(ctx, rec.Record)
	if s.spillDir != "" {
		// Native out-of-core runs spill under the data dir (swept on
		// boot) instead of the OS temp dir.
		ctx = chaos.WithSpillDir(ctx, s.spillDir)
	}
	opt := job.Options
	if opt.ComputeWorkers == 0 && job.computeShare > 0 {
		// The job did not pin its host parallelism: run it on its share
		// of the scheduler's compute budget instead of the GOMAXPROCS
		// default, which would oversubscribe the host by the number of
		// running jobs. Does not touch job.Options: the cache key and the
		// journal keep the submitted options.
		opt.ComputeWorkers = job.computeShare
	}
	res, rep, err := chaos.RunPreparedContext(ctx, job.Algorithm, g.View(view), g.Vertices, opt)
	if err != nil {
		return nil, nil, err
	}
	s.cache.store(key, res, rep)
	if s.persist != nil {
		// Blob (fsynced) before journal record: a journaled key never
		// points at a hole. The done transition is journaled by the
		// scheduler hook after this returns. The write is the job's
		// durability checkpoint, so it becomes a span under the run.
		start := time.Now().UTC()
		s.persistResult(key, res, rep)
		s.scheduler.NoteJobSpan(job, "checkpoint", "result blob persisted", start, time.Since(start))
	}
	return res, rep, nil
}

// RegisterGraph materializes and files a graph, and — when durable —
// persists the registration (upload payloads land as files under the
// data dir, generated graphs as their spec) before acknowledging it.
func (s *Service) RegisterGraph(spec GraphSpec) (*Graph, error) {
	g, err := s.catalog.Register(spec)
	if err != nil {
		return nil, err
	}
	if s.persist != nil {
		if err := s.persistGraph(g, spec.Data); err != nil {
			// Roll back: a registration the log does not have must not
			// be visible, or it would silently vanish on restart.
			s.catalog.remove(g.ID)
			s.persist.note(err)
			return nil, fmt.Errorf("service: persisting graph %q: %w", g.ID, err)
		}
	}
	return g, nil
}

// Submit enqueues a job for graph id, serving it from the result cache
// when an identical (graph, algorithm, canonical options) run has already
// completed. The algorithm name must be canonical (see chaos.ParseOptions).
func (s *Service) Submit(graphID, algorithm string, opt chaos.Options) (JobView, error) {
	return s.SubmitCtx(context.Background(), graphID, algorithm, opt)
}

// SubmitCtx is Submit carrying the caller's context: when the HTTP
// middleware attached a request trace to it, the job's trace tree
// roots in that request (and in the caller's inbound traceparent, when
// one was sent). The context carries only observational trace state —
// cancellation and deadlines are the job's own affair once admitted.
func (s *Service) SubmitCtx(ctx context.Context, graphID, algorithm string, opt chaos.Options) (JobView, error) {
	g, ok := s.catalog.Get(graphID)
	if !ok {
		return JobView{}, &notFoundError{what: "graph", id: graphID}
	}
	if _, err := chaos.ViewFor(algorithm); err != nil {
		return JobView{}, err
	}
	if chaos.NeedsWeights(algorithm) && !g.Weighted {
		// chaos-run guards this by generating weights on demand; with a
		// registered graph the edge set is fixed, so running a
		// weight-consuming algorithm would silently produce (and cache)
		// all-zero distances/weights.
		return JobView{}, fmt.Errorf("service: %s needs edge weights but graph %q is unweighted", algorithm, g.ID)
	}
	opt = mergeOptions(s.cfg.BaseOptions, opt)
	rt := reqTraceFrom(ctx)
	if res, rep, ok := s.cache.lookup(cacheKey(g.ID, algorithm, opt)); ok {
		return s.scheduler.AdmitCachedTraced(rt, g.ID, algorithm, opt, res, rep)
	}
	return s.scheduler.SubmitTraced(rt, g.ID, algorithm, opt)
}

// mergeOptions fills zero-valued fields of opt from base. Only the knobs
// a serving deployment plausibly pins are merged: hardware sizing, chunk
// geometry and latency scale.
func mergeOptions(base, opt chaos.Options) chaos.Options {
	if opt.Machines == 0 {
		opt.Machines = base.Machines
	}
	if opt.Cores == 0 {
		opt.Cores = base.Cores
	}
	if opt.ChunkBytes == 0 {
		opt.ChunkBytes = base.ChunkBytes
	}
	if opt.VertexChunkBytes == 0 {
		opt.VertexChunkBytes = base.VertexChunkBytes
	}
	if opt.MemBudgetBytes == 0 {
		opt.MemBudgetBytes = base.MemBudgetBytes
	}
	if opt.MemoryBudgetMB == 0 {
		opt.MemoryBudgetMB = base.MemoryBudgetMB
	}
	// LatencyScale must follow the chunk size unless the request pins it:
	// shrinking chunks by f without shrinking fixed latencies by f
	// distorts the latency-to-service-time ratio (DESIGN.md). The base
	// scale only applies to the base chunk size it was derived for.
	if opt.LatencyScale == 0 {
		if opt.ChunkBytes == base.ChunkBytes && base.LatencyScale != 0 {
			opt.LatencyScale = base.LatencyScale
		} else {
			cb := opt.ChunkBytes
			if cb == 0 {
				cb = 4 << 20
			}
			opt.LatencyScale = float64(cb) / float64(4<<20)
		}
	}
	if opt.Seed == 0 {
		opt.Seed = base.Seed
	}
	// The execution engine is a deployment default too (chaos-serve
	// -engine); a job that names one explicitly keeps it.
	if opt.Engine == "" {
		opt.Engine = base.Engine
	}
	return opt
}

// CloseEventStreams ends every open job-event stream and refuses new
// subscriptions. Register it with http.Server.RegisterOnShutdown so
// SSE connections — never idle from the HTTP server's point of view —
// end when drain begins instead of consuming the whole drain budget
// (Service.Shutdown also closes them, but the HTTP server drains
// handlers first).
func (s *Service) CloseEventStreams() { s.scheduler.CloseEventStreams() }

// Catalog exposes the graph catalog (used by the HTTP layer and tests).
func (s *Service) Catalog() *Catalog { return s.catalog }

// Scheduler exposes the job scheduler (used by the HTTP layer and tests).
func (s *Service) Scheduler() *Scheduler { return s.scheduler }

// Stats is the /v1/stats payload.
type Stats struct {
	Graphs       int            `json:"graphs"`
	Workers      int            `json:"workers"`
	QueueDepth   int            `json:"queueDepth"`
	Running      int            `json:"running"`
	Jobs         map[string]int `json:"jobs"`
	PerAlgorithm map[string]int `json:"perAlgorithm"`
	// PerEngine counts submissions by execution plane ("sim"/"native").
	PerEngine map[string]int `json:"perEngine"`
	// NativeWallSeconds is the summed measured wall-clock of completed
	// native runs (cache hits excluded — they never ran).
	NativeWallSeconds float64 `json:"nativeWallSeconds"`
	// SpillBytes / SpillFiles sum the out-of-core spill traffic of
	// completed native runs with a memory budget (cache hits excluded).
	SpillBytes int64      `json:"spillBytes"`
	SpillFiles int        `json:"spillFiles"`
	Cache      CacheStats `json:"cache"`
	// Durable reports the persistence layer; nil without a data dir.
	Durable *DurableStats `json:"durable,omitempty"`
}

// DurableStats is the persistence slice of /v1/stats.
type DurableStats struct {
	DataDir string `json:"dataDir"`
	// JournalRecords counts records appended since the last compacting
	// snapshot (the snapshot-every policy input).
	JournalRecords int `json:"journalRecords"`
	// WAL is the full write-ahead-log counter surface (lifetime
	// records, fsyncs issued, snapshots taken) — what /metrics exports.
	WAL durable.WALStats `json:"wal"`
	// LastError is the first persistence failure since boot, "" while
	// healthy. State keeps serving from memory past it, but durability
	// is gone until the operator intervenes.
	LastError string `json:"lastError,omitempty"`
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	st := s.scheduler.stats()
	out := Stats{
		Graphs:            len(s.catalog.List()),
		Workers:           s.cfg.Workers,
		QueueDepth:        st.queueDepth,
		Running:           st.running,
		Jobs:              st.jobs,
		PerAlgorithm:      st.perAlgorithm,
		PerEngine:         st.perEngine,
		NativeWallSeconds: st.nativeWallSeconds,
		SpillBytes:        st.spillBytes,
		SpillFiles:        st.spillFiles,
		Cache:             s.cache.stats(),
	}
	if s.persist != nil {
		out.Durable = &DurableStats{
			DataDir:        s.persist.dataDir,
			JournalRecords: s.persist.wal.AppendedSinceCompact(),
			WAL:            s.persist.wal.Stats(),
			LastError:      s.persist.lastError(),
		}
	}
	return out
}

// Shutdown stops accepting work, cancels still-queued jobs and drains the
// running ones, waiting up to ctx's deadline. A durable service then
// takes a final compacting snapshot and closes the journal, so the next
// Open replays (almost) nothing.
func (s *Service) Shutdown(ctx context.Context) error {
	err := s.scheduler.Shutdown(ctx)
	s.Close()
	return err
}

// Close releases the persistence layer (final snapshot + journal
// close) without waiting for jobs; Shutdown calls it. Idempotent, safe
// on an in-memory service.
func (s *Service) Close() {
	if s.persist == nil {
		return
	}
	s.closeOnce.Do(func() {
		s.persist.note(s.persist.wal.Compact(s.captureSnapshot))
		s.persist.wal.Close()
	})
}

// notFoundError distinguishes missing resources so the HTTP layer can
// answer 404 instead of 400.
type notFoundError struct{ what, id string }

func (e *notFoundError) Error() string { return fmt.Sprintf("service: unknown %s %q", e.what, e.id) }

// conflictError distinguishes already-exists failures so the HTTP layer
// can answer 409 instead of 400.
type conflictError struct{ what, id string }

func (e *conflictError) Error() string {
	return fmt.Sprintf("service: %s %q already registered", e.what, e.id)
}
