// Package service turns the chaos library into a long-lived
// graph-analytics job service: an always-on process that amortizes graph
// ingestion across runs and executes independent jobs concurrently.
//
// Three pieces cooperate:
//
//   - the Catalog registers graphs once (R-MAT/webgraph generation
//     parameters or an uploaded chaos-gen binary edge list), materializes
//     the edge slice, and lazily caches the undirected and augmented
//     views the algorithms consume, so repeated jobs skip pre-processing;
//   - the Scheduler runs submitted jobs on a bounded worker pool (N
//     concurrent simulations, each itself a multi-core cluster model)
//     with queued/running/done/failed states and cancellation;
//   - a content-addressed result cache keyed on (graph, algorithm,
//     canonicalized Options) serves identical requests from memory.
//
// Service wires them behind a JSON HTTP API (see Handler) with graceful
// shutdown that drains running jobs. cmd/chaos-serve is the binary front
// end; README.md documents the endpoints with curl examples.
package service

import (
	"context"
	"fmt"

	"chaos"
)

// Config parameterizes a Service.
type Config struct {
	// Workers bounds the number of concurrently running simulations
	// (default 4). Each simulation models a whole cluster, so a small
	// pool saturates the host.
	Workers int
	// BaseOptions is merged under every job's options: fields the job
	// request leaves at zero fall back to these (used by chaos-serve to
	// set lab-scale chunk sizes, and by tests).
	BaseOptions chaos.Options
	// MaxCacheEntries bounds the result cache; oldest entries are
	// evicted first (default 4096).
	MaxCacheEntries int
	// MaxJobHistory bounds how many finished jobs stay queryable;
	// queued and running jobs are never evicted (default 10000).
	MaxJobHistory int
}

// Service is the graph-analytics job service.
type Service struct {
	cfg       Config
	catalog   *Catalog
	scheduler *Scheduler
	cache     *resultCache
}

// New starts a Service with its worker pool running.
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MaxCacheEntries <= 0 {
		cfg.MaxCacheEntries = 4096
	}
	s := &Service{
		cfg:     cfg,
		catalog: NewCatalog(),
		cache:   newResultCache(cfg.MaxCacheEntries),
	}
	s.scheduler = NewScheduler(cfg.Workers, cfg.MaxJobHistory, s.execute)
	return s
}

// execute runs one job to completion on a worker goroutine: resolve the
// graph, fetch its cached edge view, run the algorithm, and populate the
// result cache on success.
func (s *Service) execute(job *Job) (*chaos.Result, *chaos.Report, error) {
	g, ok := s.catalog.Get(job.Graph)
	if !ok {
		return nil, nil, fmt.Errorf("service: graph %q disappeared", job.Graph)
	}
	view, err := chaos.ViewFor(job.Algorithm)
	if err != nil {
		return nil, nil, err
	}
	res, rep, err := chaos.RunPrepared(job.Algorithm, g.View(view), g.Vertices, job.Options)
	if err != nil {
		return nil, nil, err
	}
	s.cache.store(cacheKey(job.Graph, job.Algorithm, job.Options), res, rep)
	return res, rep, nil
}

// Submit enqueues a job for graph id, serving it from the result cache
// when an identical (graph, algorithm, canonical options) run has already
// completed. The algorithm name must be canonical (see chaos.ParseOptions).
func (s *Service) Submit(graphID, algorithm string, opt chaos.Options) (JobView, error) {
	g, ok := s.catalog.Get(graphID)
	if !ok {
		return JobView{}, &notFoundError{what: "graph", id: graphID}
	}
	if _, err := chaos.ViewFor(algorithm); err != nil {
		return JobView{}, err
	}
	if chaos.NeedsWeights(algorithm) && !g.Weighted {
		// chaos-run guards this by generating weights on demand; with a
		// registered graph the edge set is fixed, so running a
		// weight-consuming algorithm would silently produce (and cache)
		// all-zero distances/weights.
		return JobView{}, fmt.Errorf("service: %s needs edge weights but graph %q is unweighted", algorithm, g.ID)
	}
	opt = mergeOptions(s.cfg.BaseOptions, opt)
	if res, rep, ok := s.cache.lookup(cacheKey(g.ID, algorithm, opt)); ok {
		return s.scheduler.AdmitCached(g.ID, algorithm, opt, res, rep)
	}
	return s.scheduler.Submit(g.ID, algorithm, opt)
}

// mergeOptions fills zero-valued fields of opt from base. Only the knobs
// a serving deployment plausibly pins are merged: hardware sizing, chunk
// geometry and latency scale.
func mergeOptions(base, opt chaos.Options) chaos.Options {
	if opt.Machines == 0 {
		opt.Machines = base.Machines
	}
	if opt.Cores == 0 {
		opt.Cores = base.Cores
	}
	if opt.ChunkBytes == 0 {
		opt.ChunkBytes = base.ChunkBytes
	}
	if opt.VertexChunkBytes == 0 {
		opt.VertexChunkBytes = base.VertexChunkBytes
	}
	if opt.MemBudgetBytes == 0 {
		opt.MemBudgetBytes = base.MemBudgetBytes
	}
	// LatencyScale must follow the chunk size unless the request pins it:
	// shrinking chunks by f without shrinking fixed latencies by f
	// distorts the latency-to-service-time ratio (DESIGN.md). The base
	// scale only applies to the base chunk size it was derived for.
	if opt.LatencyScale == 0 {
		if opt.ChunkBytes == base.ChunkBytes && base.LatencyScale != 0 {
			opt.LatencyScale = base.LatencyScale
		} else {
			cb := opt.ChunkBytes
			if cb == 0 {
				cb = 4 << 20
			}
			opt.LatencyScale = float64(cb) / float64(4<<20)
		}
	}
	if opt.Seed == 0 {
		opt.Seed = base.Seed
	}
	return opt
}

// Catalog exposes the graph catalog (used by the HTTP layer and tests).
func (s *Service) Catalog() *Catalog { return s.catalog }

// Scheduler exposes the job scheduler (used by the HTTP layer and tests).
func (s *Service) Scheduler() *Scheduler { return s.scheduler }

// Stats is the /v1/stats payload.
type Stats struct {
	Graphs       int            `json:"graphs"`
	Workers      int            `json:"workers"`
	QueueDepth   int            `json:"queueDepth"`
	Running      int            `json:"running"`
	Jobs         map[string]int `json:"jobs"`
	PerAlgorithm map[string]int `json:"perAlgorithm"`
	Cache        CacheStats     `json:"cache"`
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	st := s.scheduler.stats()
	return Stats{
		Graphs:       len(s.catalog.List()),
		Workers:      s.cfg.Workers,
		QueueDepth:   st.queueDepth,
		Running:      st.running,
		Jobs:         st.jobs,
		PerAlgorithm: st.perAlgorithm,
		Cache:        s.cache.stats(),
	}
}

// Shutdown stops accepting work, cancels still-queued jobs and drains the
// running ones, waiting up to ctx's deadline.
func (s *Service) Shutdown(ctx context.Context) error {
	return s.scheduler.Shutdown(ctx)
}

// notFoundError distinguishes missing resources so the HTTP layer can
// answer 404 instead of 400.
type notFoundError struct{ what, id string }

func (e *notFoundError) Error() string { return fmt.Sprintf("service: unknown %s %q", e.what, e.id) }

// conflictError distinguishes already-exists failures so the HTTP layer
// can answer 409 instead of 400.
type conflictError struct{ what, id string }

func (e *conflictError) Error() string {
	return fmt.Sprintf("service: %s %q already registered", e.what, e.id)
}
