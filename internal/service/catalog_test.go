package service

import (
	"bytes"
	"testing"

	"chaos"
	"chaos/internal/graph"
)

func TestCatalogRegisterAndViews(t *testing.T) {
	c := NewCatalog()
	g, err := c.Register(GraphSpec{Name: "r", Type: "rmat", Scale: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.Vertices != 64 || g.EdgeCount != 1024 {
		t.Errorf("graph %+v", g)
	}

	// Views are converted once and cached: the second call returns the
	// same backing slice.
	u1 := g.View(chaos.ViewUndirected)
	u2 := g.View(chaos.ViewUndirected)
	// Non-loop edges gain a reverse; self-loops are emitted once.
	loops := 0
	for _, e := range g.View(chaos.ViewDirected) {
		if e.Src == e.Dst {
			loops++
		}
	}
	if len(u1) != 2*g.EdgeCount-loops {
		t.Errorf("undirected view has %d edges, want %d", len(u1), 2*g.EdgeCount-loops)
	}
	if &u1[0] != &u2[0] {
		t.Error("undirected view was recomputed instead of cached")
	}
	if d := g.View(chaos.ViewDirected); len(d) != g.EdgeCount {
		t.Error("directed view must be the raw edge slice")
	}
	views := g.CachedViews()
	if len(views) != 2 { // directed + undirected; augmented untouched
		t.Errorf("cached views %v", views)
	}

	// Lookup by id, anonymous registration, and listing order.
	if _, ok := c.Get("r"); !ok {
		t.Error("registered graph not found")
	}
	anon, err := c.Register(GraphSpec{Type: "web", Pages: 256, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if anon.ID != "g1" {
		t.Errorf("anonymous id %q, want g1", anon.ID)
	}
	if l := c.List(); len(l) != 2 || l[0].ID != "r" || l[1].ID != "g1" {
		t.Errorf("list %v", l)
	}
}

func TestCatalogRejectsBadSpecs(t *testing.T) {
	c := NewCatalog()
	if _, err := c.Register(GraphSpec{Name: "x", Type: "rmat", Scale: 6}); err != nil {
		t.Fatal(err)
	}
	cases := []GraphSpec{
		{Name: "x", Type: "rmat", Scale: 6},        // duplicate name
		{Name: "bad name", Type: "rmat", Scale: 6}, // invalid name
		{Type: "rmat", Scale: 0},                   // scale out of range
		{Type: "rmat", Scale: 31},                  // scale out of range
		{Type: "web", Pages: 1},                    // too few pages
		{Type: "upload"},                           // no data
		{Type: "upload", Data: []byte{1, 2, 3}},    // truncated record
		{Type: "mystery"},                          // unknown type
	}
	for _, spec := range cases {
		if _, err := c.Register(spec); err == nil {
			t.Errorf("Register(%+v) should fail", spec)
		}
	}
}

// TestCatalogRejectsUndersizedUpload: a declared vertex count smaller
// than the edge list's IDs must be rejected at registration — otherwise
// every job on the graph would crash the engine on an out-of-range
// vertex index.
func TestCatalogRejectsUndersizedUpload(t *testing.T) {
	var buf bytes.Buffer
	w := graph.NewWriter(&buf, graph.FormatFor(128, false))
	if err := w.WriteEdge(graph.Edge{Src: 0, Dst: 100}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	c := NewCatalog()
	if _, err := c.Register(GraphSpec{Type: "upload", Vertices: 2, Data: buf.Bytes()}); err == nil {
		t.Fatal("undersized vertex declaration should be rejected")
	}
	// The same data with a sufficient (or inferred) count registers fine.
	if g, err := c.Register(GraphSpec{Type: "upload", Data: buf.Bytes()}); err != nil || g.Vertices != 101 {
		t.Fatalf("inferred upload: %+v, %v", g, err)
	}
}
