package service

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"chaos"
)

// TestJobOptionsCoverAllOptionFields reflects over chaos.Options and the
// wire form: every engine knob must have a same-named wire field, so a
// new option cannot be silently dropped by the job API.
func TestJobOptionsCoverAllOptionFields(t *testing.T) {
	opt := reflect.TypeOf(chaos.Options{})
	wire := reflect.TypeOf(jobOptions{})
	for i := 0; i < opt.NumField(); i++ {
		name := opt.Field(i).Name
		if _, ok := wire.FieldByName(name); !ok {
			t.Errorf("chaos.Options.%s has no jobOptions counterpart", name)
		}
	}
	for i := 0; i < wire.NumField(); i++ {
		name := wire.Field(i).Name
		if _, ok := opt.FieldByName(name); !ok {
			t.Errorf("jobOptions.%s does not correspond to a chaos.Options field", name)
		}
	}
}

// TestJobOptionsRoundTrip sets every wire field to a non-default value
// and checks resolve carries each one into the engine options.
func TestJobOptionsRoundTrip(t *testing.T) {
	req := jobRequest{
		Graph:     "g",
		Algorithm: "pagerank",
		Options: jobOptions{
			Machines:          3,
			Storage:           "hdd",
			Network:           "1g",
			Cores:             8,
			ChunkBytes:        1 << 12,
			VertexChunkBytes:  1 << 11,
			MemBudgetBytes:    1 << 21,
			MemoryBudgetMB:    12,
			BatchK:            7,
			WindowOverride:    9,
			Alpha:             2.5,
			DisableStealing:   true,
			AlwaysSteal:       true,
			CheckpointEvery:   2,
			FailAtIteration:   3,
			CentralDirectory:  true,
			CombineUpdates:    true,
			RewriteEdges:      true,
			ReplicateVertices: true,
			MaxIterations:     42,
			LatencyScale:      0.25,
			ComputeWorkers:    4,
			Engine:            "native",
			Seed:              99,
		},
	}
	alg, got, err := req.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if alg != "PR" {
		t.Errorf("algorithm = %q, want PR", alg)
	}
	want := chaos.Options{
		Machines:          3,
		Storage:           chaos.HDD,
		Network:           chaos.Net1GigE,
		Cores:             8,
		ChunkBytes:        1 << 12,
		VertexChunkBytes:  1 << 11,
		MemBudgetBytes:    1 << 21,
		MemoryBudgetMB:    12,
		BatchK:            7,
		WindowOverride:    9,
		Alpha:             2.5,
		DisableStealing:   true,
		AlwaysSteal:       true,
		CheckpointEvery:   2,
		FailAtIteration:   3,
		CentralDirectory:  true,
		CombineUpdates:    true,
		RewriteEdges:      true,
		ReplicateVertices: true,
		MaxIterations:     42,
		LatencyScale:      0.25,
		ComputeWorkers:    4,
		Engine:            chaos.EngineNative,
		Seed:              99,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resolved options\n got %+v\nwant %+v", got, want)
	}
}

func postJSON(t *testing.T, h http.Handler, url, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, url, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// Typo'd JSON keys used to run jobs with silent defaults; now they fail
// with 400 before anything is scheduled.
func TestPostRejectsUnknownFields(t *testing.T) {
	svc := newTestService(t, 1)
	h := svc.Handler()
	w := postJSON(t, h, "/v1/jobs", `{"graph":"g","algorithm":"PR","options":{"mahcines":4}}`)
	if w.Code != http.StatusBadRequest || !strings.Contains(w.Body.String(), "mahcines") {
		t.Errorf("typo'd job option: status %d, body %s", w.Code, w.Body.String())
	}
	w = postJSON(t, h, "/v1/graphs", `{"type":"rmat","scael":5}`)
	if w.Code != http.StatusBadRequest {
		t.Errorf("typo'd graph field: status %d, body %s", w.Code, w.Body.String())
	}
	w = postJSON(t, h, "/v1/jobs", `{"graph":"g","algorithm":"PR"}{"graph":"g"}`)
	if w.Code != http.StatusBadRequest {
		t.Errorf("trailing document: status %d, body %s", w.Code, w.Body.String())
	}
}

// TestListJobsQueryValidation: the pagination query parameters reject
// garbage with 400 and page a real listing end to end.
func TestListJobsQuery(t *testing.T) {
	svc := newTestService(t, 1)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	if code, _ := doJSON(t, client, http.MethodPost, ts.URL+"/v1/graphs",
		GraphSpec{Name: "g", Type: "rmat", Scale: 6, Seed: 1}, nil); code != http.StatusCreated {
		t.Fatal("register failed")
	}
	ids := make([]string, 3)
	for i := range ids {
		var jv JobView
		if code, body := doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs",
			jobRequest{Graph: "g", Algorithm: "PR", Options: jobOptions{Seed: int64(i + 1)}}, &jv); code != http.StatusAccepted {
			t.Fatalf("submit: %d %s", code, body)
		}
		ids[i] = jv.ID
		pollJob(t, client, ts.URL, jv.ID)
	}

	var page []JobView
	if code, _ := doJSON(t, client, http.MethodGet, ts.URL+"/v1/jobs?state=done&limit=2", nil, &page); code != http.StatusOK || len(page) != 2 {
		t.Fatalf("first page: %d jobs", len(page))
	}
	if code, _ := doJSON(t, client, http.MethodGet,
		ts.URL+"/v1/jobs?state=done&limit=2&after="+page[1].ID, nil, &page); code != http.StatusOK || len(page) != 1 || page[0].ID != ids[2] {
		t.Fatalf("second page %+v", page)
	}
	for _, bad := range []string{"?state=zombie", "?limit=-1", "?limit=x", "?after=42", "?after=jx"} {
		if code, body := doJSON(t, client, http.MethodGet, ts.URL+"/v1/jobs"+bad, nil, nil); code != http.StatusBadRequest {
			t.Errorf("GET /v1/jobs%s: %d %s, want 400", bad, code, body)
		}
	}
}

// TestPostRejectsOversizedBody: over-limit bodies answer 413 (not a
// generic 400), and the two POST endpoints have different limits — job
// requests are capped at 1 MB, graph registrations at the much larger
// configurable upload cap, so a multi-MB base64 edge list registers
// fine while the same bytes sent as a job request are refused.
func TestPostRejectsOversizedBody(t *testing.T) {
	svc := New(Config{Workers: 1, BaseOptions: labOptions, MaxUploadBytes: 8 << 20})
	t.Cleanup(func() { svc.Shutdown(context.Background()) })
	pad := strings.Repeat(" ", maxBodyBytes) // > 1 MB, well under the upload cap

	var b bytes.Buffer
	b.WriteString(`{"graph":"g","algorithm":"PR","options":{"seed":`)
	b.WriteString(pad)
	b.WriteString(`1}}`)
	w := postJSON(t, svc.Handler(), "/v1/jobs", b.String())
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized job body: status %d, want 413", w.Code)
	}

	// The same padding inside a graph registration is within the upload
	// cap: it must reach the spec validator (400 for the bogus type),
	// not die at the size gate.
	b.Reset()
	b.WriteString(`{"type":"mystery","name":`)
	b.WriteString(pad)
	b.WriteString(`"x"}`)
	w = postJSON(t, svc.Handler(), "/v1/graphs", b.String())
	if w.Code != http.StatusBadRequest {
		t.Errorf("graph body over 1MB but under the upload cap: status %d, want 400", w.Code)
	}

	// Past the upload cap, graphs 413 too.
	b.Reset()
	b.WriteString(`{"type":"mystery","name":`)
	b.WriteString(strings.Repeat(" ", 8<<20))
	b.WriteString(`"x"}`)
	w = postJSON(t, svc.Handler(), "/v1/graphs", b.String())
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("graph body over the upload cap: status %d, want 413", w.Code)
	}
}
