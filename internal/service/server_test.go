package service

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"chaos"
)

// TestJobOptionsCoverAllOptionFields reflects over chaos.Options and the
// wire form: every engine knob must have a same-named wire field, so a
// new option cannot be silently dropped by the job API.
func TestJobOptionsCoverAllOptionFields(t *testing.T) {
	opt := reflect.TypeOf(chaos.Options{})
	wire := reflect.TypeOf(jobOptions{})
	for i := 0; i < opt.NumField(); i++ {
		name := opt.Field(i).Name
		if _, ok := wire.FieldByName(name); !ok {
			t.Errorf("chaos.Options.%s has no jobOptions counterpart", name)
		}
	}
	for i := 0; i < wire.NumField(); i++ {
		name := wire.Field(i).Name
		if _, ok := opt.FieldByName(name); !ok {
			t.Errorf("jobOptions.%s does not correspond to a chaos.Options field", name)
		}
	}
}

// TestJobOptionsRoundTrip sets every wire field to a non-default value
// and checks resolve carries each one into the engine options.
func TestJobOptionsRoundTrip(t *testing.T) {
	req := jobRequest{
		Graph:     "g",
		Algorithm: "pagerank",
		Options: jobOptions{
			Machines:          3,
			Storage:           "hdd",
			Network:           "1g",
			Cores:             8,
			ChunkBytes:        1 << 12,
			VertexChunkBytes:  1 << 11,
			MemBudgetBytes:    1 << 21,
			BatchK:            7,
			WindowOverride:    9,
			Alpha:             2.5,
			DisableStealing:   true,
			AlwaysSteal:       true,
			CheckpointEvery:   2,
			FailAtIteration:   3,
			CentralDirectory:  true,
			CombineUpdates:    true,
			RewriteEdges:      true,
			ReplicateVertices: true,
			MaxIterations:     42,
			LatencyScale:      0.25,
			ComputeWorkers:    4,
			Seed:              99,
		},
	}
	alg, got, err := req.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if alg != "PR" {
		t.Errorf("algorithm = %q, want PR", alg)
	}
	want := chaos.Options{
		Machines:          3,
		Storage:           chaos.HDD,
		Network:           chaos.Net1GigE,
		Cores:             8,
		ChunkBytes:        1 << 12,
		VertexChunkBytes:  1 << 11,
		MemBudgetBytes:    1 << 21,
		BatchK:            7,
		WindowOverride:    9,
		Alpha:             2.5,
		DisableStealing:   true,
		AlwaysSteal:       true,
		CheckpointEvery:   2,
		FailAtIteration:   3,
		CentralDirectory:  true,
		CombineUpdates:    true,
		RewriteEdges:      true,
		ReplicateVertices: true,
		MaxIterations:     42,
		LatencyScale:      0.25,
		ComputeWorkers:    4,
		Seed:              99,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resolved options\n got %+v\nwant %+v", got, want)
	}
}

func postJSON(t *testing.T, h http.Handler, url, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, url, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// Typo'd JSON keys used to run jobs with silent defaults; now they fail
// with 400 before anything is scheduled.
func TestPostRejectsUnknownFields(t *testing.T) {
	svc := newTestService(t, 1)
	h := svc.Handler()
	w := postJSON(t, h, "/v1/jobs", `{"graph":"g","algorithm":"PR","options":{"mahcines":4}}`)
	if w.Code != http.StatusBadRequest || !strings.Contains(w.Body.String(), "mahcines") {
		t.Errorf("typo'd job option: status %d, body %s", w.Code, w.Body.String())
	}
	w = postJSON(t, h, "/v1/graphs", `{"type":"rmat","scael":5}`)
	if w.Code != http.StatusBadRequest {
		t.Errorf("typo'd graph field: status %d, body %s", w.Code, w.Body.String())
	}
	w = postJSON(t, h, "/v1/jobs", `{"graph":"g","algorithm":"PR"}{"graph":"g"}`)
	if w.Code != http.StatusBadRequest {
		t.Errorf("trailing document: status %d, body %s", w.Code, w.Body.String())
	}
}

func TestPostRejectsOversizedBody(t *testing.T) {
	svc := newTestService(t, 1)
	var b bytes.Buffer
	b.WriteString(`{"graph":"g","algorithm":"PR","options":{"seed":`)
	b.WriteString(strings.Repeat(" ", maxBodyBytes))
	b.WriteString(`1}}`)
	w := postJSON(t, svc.Handler(), "/v1/jobs", b.String())
	if w.Code != http.StatusBadRequest {
		t.Errorf("oversized body: status %d, want 400", w.Code)
	}
}
