package service

import (
	"bytes"
	"fmt"
	"regexp"
	"sort"
	"sync"
	"time"

	"chaos"
	"chaos/internal/graph"
)

// GraphSpec describes a graph to register. Type selects the source:
//
//   - "rmat": GenerateRMAT(Scale, Weighted, Seed)
//   - "web":  GenerateWebGraph(Pages, Seed)
//   - "upload": Data holds a chaos-gen binary edge list (base64 in JSON),
//     with Vertices the declared vertex count (0 = infer) and Weighted
//     describing the record format.
type GraphSpec struct {
	Name     string `json:"name,omitempty"`
	Type     string `json:"type"`
	Scale    int    `json:"scale,omitempty"`
	Pages    uint64 `json:"pages,omitempty"`
	Weighted bool   `json:"weighted,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	Vertices uint64 `json:"vertices,omitempty"`
	Data     []byte `json:"data,omitempty"`
}

// Graph is a registered graph: the materialized edge slice plus lazily
// cached views, shared read-only by every job that references it.
type Graph struct {
	ID         string
	Type       string
	Weighted   bool
	Vertices   uint64
	EdgeCount  int
	Registered time.Time

	edges []chaos.Edge
	mu    sync.Mutex
	views map[chaos.View][]chaos.Edge
}

// GraphInfo is the wire form of a Graph (Graph itself carries the edge
// slices and a mutex, so it never crosses the API boundary).
type GraphInfo struct {
	ID          string    `json:"id"`
	Type        string    `json:"type"`
	Weighted    bool      `json:"weighted"`
	Vertices    uint64    `json:"vertices"`
	Edges       int       `json:"edges"`
	Registered  time.Time `json:"registered"`
	CachedViews []string  `json:"cachedViews"`
}

// Info snapshots the graph for serialization.
func (g *Graph) Info() GraphInfo {
	return GraphInfo{
		ID:          g.ID,
		Type:        g.Type,
		Weighted:    g.Weighted,
		Vertices:    g.Vertices,
		Edges:       g.EdgeCount,
		Registered:  g.Registered,
		CachedViews: g.CachedViews(),
	}
}

// View returns the graph's edges in the requested view, converting on
// first use and caching the result so subsequent jobs skip the
// pre-processing (the point of registering a graph once).
func (g *Graph) View(v chaos.View) []chaos.Edge {
	if v == chaos.ViewDirected {
		return g.edges
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if cached, ok := g.views[v]; ok {
		return cached
	}
	converted := v.Apply(g.edges)
	g.views[v] = converted
	return converted
}

// CachedViews lists the views materialized so far (diagnostics).
func (g *Graph) CachedViews() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	names := []string{chaos.ViewDirected.String()}
	for v := range g.views {
		names = append(names, v.String())
	}
	sort.Strings(names)
	return names
}

// Catalog is the registry of materialized graphs.
type Catalog struct {
	mu     sync.RWMutex
	graphs map[string]*Graph
	order  []string
	nextID int
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{graphs: make(map[string]*Graph)}
}

var graphNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]*$`)

// Register materializes the graph spec describes and files it under
// spec.Name (or a generated id). Registering a name twice is an error:
// the catalog's contract is that a graph id always denotes the same edge
// set, which is what lets results be cached per graph.
func (c *Catalog) Register(spec GraphSpec) (*Graph, error) {
	var edges []chaos.Edge
	var n uint64
	weighted := spec.Weighted
	switch spec.Type {
	case "rmat":
		if spec.Scale < 1 || spec.Scale > 30 {
			return nil, fmt.Errorf("service: rmat scale %d out of range [1,30]", spec.Scale)
		}
		edges = chaos.GenerateRMAT(spec.Scale, spec.Weighted, spec.Seed)
		n = uint64(1) << uint(spec.Scale)
	case "web":
		if spec.Pages < 2 || spec.Pages > 1<<30 {
			return nil, fmt.Errorf("service: web pages %d out of range [2,2^30]", spec.Pages)
		}
		edges = chaos.GenerateWebGraph(spec.Pages, spec.Seed)
		n = spec.Pages
		weighted = false
	case "upload":
		if len(spec.Data) == 0 {
			return nil, fmt.Errorf("service: upload needs a non-empty data field")
		}
		declared := spec.Vertices
		if declared == 0 {
			declared = 1 // compact format; infer the count from the edges
		}
		var err error
		edges, err = graph.NewReader(bytes.NewReader(spec.Data), graph.FormatFor(declared, spec.Weighted)).ReadAll()
		if err != nil {
			return nil, fmt.Errorf("service: decoding upload: %w", err)
		}
		n = chaos.NumVertices(edges)
		if spec.Vertices != 0 {
			// A declared count smaller than the edge list's vertex IDs
			// would index out of range deep inside the engine.
			if spec.Vertices < n {
				return nil, fmt.Errorf("service: upload declares %d vertices but edges reference vertex %d", spec.Vertices, n-1)
			}
			n = spec.Vertices
		}
	default:
		return nil, fmt.Errorf("service: unknown graph type %q (want rmat, web or upload)", spec.Type)
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("service: graph has no edges")
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	id := spec.Name
	if id == "" {
		c.nextID++
		id = fmt.Sprintf("g%d", c.nextID)
	} else if !graphNameRE.MatchString(id) {
		return nil, fmt.Errorf("service: invalid graph name %q", id)
	}
	if _, exists := c.graphs[id]; exists {
		return nil, &conflictError{what: "graph", id: id}
	}
	g := &Graph{
		ID:         id,
		Type:       spec.Type,
		Weighted:   weighted,
		Vertices:   n,
		EdgeCount:  len(edges),
		Registered: time.Now().UTC(),
		edges:      edges,
		views:      make(map[chaos.View][]chaos.Edge),
	}
	c.graphs[id] = g
	c.order = append(c.order, id)
	return g, nil
}

// Get returns the graph registered under id.
func (c *Catalog) Get(id string) (*Graph, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	g, ok := c.graphs[id]
	return g, ok
}

// List returns every registered graph in registration order.
func (c *Catalog) List() []*Graph {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Graph, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.graphs[id])
	}
	return out
}
