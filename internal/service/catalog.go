// Emission/listing order in this file must be byte-stable across runs:
// chaos-vet's detrange analyzer checks every map iteration below.
//
//chaos:sorted-maps
package service

import (
	"bytes"
	"fmt"
	"regexp"
	"sort"
	"sync"
	"time"

	"chaos"
	"chaos/internal/graph"
)

// GraphSpec describes a graph to register. Type selects the source:
//
//   - "rmat": GenerateRMAT(Scale, Weighted, Seed)
//   - "web":  GenerateWebGraph(Pages, Seed)
//   - "upload": Data holds a chaos-gen binary edge list (base64 in JSON),
//     with Vertices the declared vertex count (0 = infer) and Weighted
//     describing the record format.
type GraphSpec struct {
	Name     string `json:"name,omitempty"`
	Type     string `json:"type"`
	Scale    int    `json:"scale,omitempty"`
	Pages    uint64 `json:"pages,omitempty"`
	Weighted bool   `json:"weighted,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	Vertices uint64 `json:"vertices,omitempty"`
	Data     []byte `json:"data,omitempty"`
}

// Graph is a registered graph: the materialized edge slice plus lazily
// cached views, shared read-only by every job that references it.
//
// A graph restored from the durable log starts unmaterialized: only its
// metadata (and, for uploads, the persisted edge-list file) came back
// from disk, and `load` regenerates the edge slice on first use. The
// generated graph types are deterministic functions of their spec, so
// re-materialization is exact; uploads re-read their persisted payload.
type Graph struct {
	ID         string
	Type       string
	Weighted   bool
	Vertices   uint64
	EdgeCount  int
	Registered time.Time

	// spec is the registration request with any upload payload
	// stripped; it is what the durable log records so the graph can be
	// rebuilt after a restart.
	spec GraphSpec
	// load materializes the edge slice for restored graphs (nil once
	// edges is set, or for graphs registered in this process).
	load func() ([]chaos.Edge, error)

	// loadMu serializes materialization only; g.mu guards the quick
	// state reads (edges pointer, views map) and is never held across
	// generation or file IO, so Info/List stay responsive while a big
	// restored graph rebuilds.
	loadMu sync.Mutex
	mu     sync.Mutex
	edges  []chaos.Edge // nil for a restored graph until ensure()
	views  map[chaos.View][]chaos.Edge
	// persisted means the registration has reached the durable log. A
	// snapshot captured in the window between catalog insertion and the
	// journal append must skip the graph: if persisting then fails, the
	// registration is rolled back and reported 500, and a snapshot that
	// had captured it would resurrect it on restart.
	persisted bool
}

// markPersisted records that the durable log holds this registration.
func (g *Graph) markPersisted() {
	g.mu.Lock()
	g.persisted = true
	g.mu.Unlock()
}

// isPersisted reports whether the durable log holds this registration.
func (g *Graph) isPersisted() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.persisted
}

// ensure materializes a restored graph's edge slice. It is a no-op for
// graphs registered in this process; every job run calls it before
// touching View. Concurrent calls are serialized; after the first
// success the edges are immutable.
func (g *Graph) ensure() error {
	g.loadMu.Lock()
	defer g.loadMu.Unlock()
	g.mu.Lock()
	loaded := g.edges != nil
	g.mu.Unlock()
	if loaded {
		return nil
	}
	if g.load == nil {
		return fmt.Errorf("service: graph %q has no edges and no loader", g.ID)
	}
	edges, err := g.load() // potentially slow: no locks besides loadMu
	if err != nil {
		return fmt.Errorf("service: re-materializing graph %q: %w", g.ID, err)
	}
	if len(edges) != g.EdgeCount {
		// The regenerated/re-read edge list disagrees with the recorded
		// metadata: a swapped upload file or a generator change. Serving
		// it would silently invalidate every cached result for this id.
		return fmt.Errorf("service: graph %q re-materialized with %d edges, recorded %d", g.ID, len(edges), g.EdgeCount)
	}
	g.mu.Lock()
	g.edges = edges
	g.mu.Unlock()
	return nil
}

// Materialized reports whether the edge slice is resident (restored
// graphs stay cold until their first job).
func (g *Graph) Materialized() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.edges != nil
}

// GraphInfo is the wire form of a Graph (Graph itself carries the edge
// slices and a mutex, so it never crosses the API boundary).
type GraphInfo struct {
	ID           string    `json:"id"`
	Type         string    `json:"type"`
	Weighted     bool      `json:"weighted"`
	Vertices     uint64    `json:"vertices"`
	Edges        int       `json:"edges"`
	Registered   time.Time `json:"registered"`
	Materialized bool      `json:"materialized"`
	CachedViews  []string  `json:"cachedViews"`
}

// Info snapshots the graph for serialization.
func (g *Graph) Info() GraphInfo {
	return GraphInfo{
		ID:           g.ID,
		Type:         g.Type,
		Weighted:     g.Weighted,
		Vertices:     g.Vertices,
		Edges:        g.EdgeCount,
		Registered:   g.Registered,
		Materialized: g.Materialized(),
		CachedViews:  g.CachedViews(),
	}
}

// View returns the graph's edges in the requested view, converting on
// first use and caching the result so subsequent jobs skip the
// pre-processing (the point of registering a graph once). For a graph
// restored from the durable log the caller must ensure() first; the
// scheduler's execute path always does.
func (g *Graph) View(v chaos.View) []chaos.Edge {
	if v == chaos.ViewDirected {
		return g.edges
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if cached, ok := g.views[v]; ok {
		return cached
	}
	converted := v.Apply(g.edges)
	g.views[v] = converted
	return converted
}

// CachedViews lists the views materialized so far (diagnostics).
func (g *Graph) CachedViews() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.edges == nil {
		return []string{} // restored and still cold: nothing resident
	}
	names := []string{chaos.ViewDirected.String()}
	for v := range g.views {
		names = append(names, v.String())
	}
	sort.Strings(names)
	return names
}

// Catalog is the registry of materialized graphs.
type Catalog struct {
	mu     sync.RWMutex
	graphs map[string]*Graph
	order  []string
	nextID int
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{graphs: make(map[string]*Graph)}
}

var graphNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]*$`)

// Register materializes the graph spec describes and files it under
// spec.Name (or a generated id). Registering a name twice is an error:
// the catalog's contract is that a graph id always denotes the same edge
// set, which is what lets results be cached per graph.
func (c *Catalog) Register(spec GraphSpec) (*Graph, error) {
	var edges []chaos.Edge
	var n uint64
	weighted := spec.Weighted
	switch spec.Type {
	case "rmat":
		if spec.Scale < 1 || spec.Scale > 30 {
			return nil, fmt.Errorf("service: rmat scale %d out of range [1,30]", spec.Scale)
		}
		edges = chaos.GenerateRMAT(spec.Scale, spec.Weighted, spec.Seed)
		n = uint64(1) << uint(spec.Scale)
	case "web":
		if spec.Pages < 2 || spec.Pages > 1<<30 {
			return nil, fmt.Errorf("service: web pages %d out of range [2,2^30]", spec.Pages)
		}
		edges = chaos.GenerateWebGraph(spec.Pages, spec.Seed)
		n = spec.Pages
		weighted = false
	case "upload":
		if len(spec.Data) == 0 {
			return nil, fmt.Errorf("service: upload needs a non-empty data field")
		}
		declared := spec.Vertices
		if declared == 0 {
			declared = 1 // compact format; infer the count from the edges
		}
		var err error
		edges, err = graph.NewReader(bytes.NewReader(spec.Data), graph.FormatFor(declared, spec.Weighted)).ReadAll()
		if err != nil {
			return nil, fmt.Errorf("service: decoding upload: %w", err)
		}
		n = chaos.NumVertices(edges)
		if spec.Vertices != 0 {
			// A declared count smaller than the edge list's vertex IDs
			// would index out of range deep inside the engine.
			if spec.Vertices < n {
				return nil, fmt.Errorf("service: upload declares %d vertices but edges reference vertex %d", spec.Vertices, n-1)
			}
			n = spec.Vertices
		}
	default:
		return nil, fmt.Errorf("service: unknown graph type %q (want rmat, web or upload)", spec.Type)
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("service: graph has no edges")
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	id := spec.Name
	if id == "" {
		c.nextID++
		id = fmt.Sprintf("g%d", c.nextID)
	} else if !graphNameRE.MatchString(id) {
		return nil, fmt.Errorf("service: invalid graph name %q", id)
	}
	if _, exists := c.graphs[id]; exists {
		return nil, &conflictError{what: "graph", id: id}
	}
	persistSpec := spec
	persistSpec.Data = nil // upload payloads are persisted as files, not journal records
	g := &Graph{
		ID:         id,
		Type:       spec.Type,
		Weighted:   weighted,
		Vertices:   n,
		EdgeCount:  len(edges),
		Registered: time.Now().UTC(),
		spec:       persistSpec,
		edges:      edges,
		views:      make(map[chaos.View][]chaos.Edge),
	}
	c.graphs[id] = g
	c.order = append(c.order, id)
	return g, nil
}

// restore files a graph rebuilt from the durable log without
// materializing its edges. Duplicate ids are ignored (journal replay is
// idempotent: a registration can appear in both the snapshot and the
// surviving journal segment around a compaction).
func (c *Catalog) restore(g *Graph) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.graphs[g.ID]; exists {
		return
	}
	if g.views == nil {
		g.views = make(map[chaos.View][]chaos.Edge)
	}
	c.graphs[g.ID] = g
	c.order = append(c.order, g.ID)
}

// remove unregisters a graph; the registration path uses it to roll
// back when persisting a fresh registration fails.
func (c *Catalog) remove(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.graphs[id]; !ok {
		return
	}
	delete(c.graphs, id)
	for i, got := range c.order {
		if got == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

// floorNextID raises the anonymous-id counter so ids assigned after a
// restart never collide with recovered ones.
func (c *Catalog) floorNextID(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n > c.nextID {
		c.nextID = n
	}
}

// Get returns the graph registered under id.
func (c *Catalog) Get(id string) (*Graph, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	g, ok := c.graphs[id]
	return g, ok
}

// List returns every registered graph in registration order.
func (c *Catalog) List() []*Graph {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Graph, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.graphs[id])
	}
	return out
}
