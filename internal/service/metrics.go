// Emission/listing order in this file must be byte-stable across runs:
// chaos-vet's detrange analyzer checks every map iteration below.
//
//chaos:sorted-maps
package service

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"chaos"
)

// promWriter accumulates Prometheus text exposition format (the 0.0.4
// text format every Prometheus-compatible scraper speaks). The service
// has a handful of scalar counters and two small label families, so a
// dependency-free emitter beats vendoring a client library the
// container cannot fetch anyway.
type promWriter struct {
	b strings.Builder
}

// family starts a metric family with its HELP/TYPE preamble.
func (p *promWriter) family(name, help, typ string) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// labelEscaper applies exactly the label-value escapes the exposition
// format defines — backslash, double quote, newline — and nothing else.
// %q would over-escape: a label value containing, say, a tab or a
// non-ASCII rune must pass through verbatim, not as a Go escape
// sequence the scraper would take literally.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// sample emits one sample line; labels come as name=value pairs.
func (p *promWriter) sample(name string, labels [][2]string, value float64) {
	p.b.WriteString(name)
	if len(labels) > 0 {
		p.b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				p.b.WriteByte(',')
			}
			p.b.WriteString(l[0])
			p.b.WriteString(`="`)
			p.b.WriteString(labelEscaper.Replace(l[1]))
			p.b.WriteByte('"')
		}
		p.b.WriteByte('}')
	}
	// %g prints integers without an exponent or trailing zeros, and the
	// format tolerates either form for every metric type.
	fmt.Fprintf(&p.b, " %g\n", value)
}

// scalar is family + one unlabeled sample, the common case here.
func (p *promWriter) scalar(name, help, typ string, value float64) {
	p.family(name, help, typ)
	p.sample(name, nil, value)
}

// latencyBuckets are the shared duration bounds (seconds) of every
// histogram the service exports. One layout for HTTP requests, queue
// wait and job wall time keeps the families comparable on a dashboard:
// sub-millisecond handler hits through minute-long simulations.
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60,
}

// histogram is a fixed-bucket latency histogram with the cumulative
// semantics the Prometheus histogram type defines. One mutex per
// histogram: observations come from HTTP handlers and scheduler
// workers, scrapes from /metrics, and none of them are hot enough to
// justify anything cleverer.
type histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, ascending
	counts []uint64  // len(bounds)+1; the extra slot is the +Inf bucket
	sum    float64
	count  uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// observe files one value (seconds) into its bucket.
func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// snapshot copies the counters for rendering.
func (h *histogram) snapshot() (counts []uint64, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint64(nil), h.counts...), h.sum, h.count
}

// histogram renders one labeled series of a histogram family:
// cumulative _bucket lines per bound plus +Inf, then _sum and _count.
func (p *promWriter) histogram(name string, labels [][2]string, h *histogram) {
	counts, sum, count := h.snapshot()
	var cum uint64
	for i, b := range h.bounds {
		cum += counts[i]
		ls := append(append([][2]string{}, labels...),
			[2]string{"le", strconv.FormatFloat(b, 'g', -1, 64)})
		p.sample(name+"_bucket", ls, float64(cum))
	}
	ls := append(append([][2]string{}, labels...), [2]string{"le", "+Inf"})
	p.sample(name+"_bucket", ls, float64(count))
	p.sample(name+"_sum", labels, sum)
	p.sample(name+"_count", labels, float64(count))
}

// routeUnmatched is the route label for requests no mux pattern
// claimed (404s, bad methods). Real routes pre-seed their own series.
const routeUnmatched = "unmatched"

// serviceMetrics holds the service's latency histograms. All series
// are pre-seeded at construction — every route, both engines — so the
// first scrape sees zeros, not absent series (absent-vs-zero matters
// to alerting), and the maps stay read-only afterward, which is what
// makes lock-free concurrent lookup safe.
type serviceMetrics struct {
	httpDur   map[string]*histogram // by mux route pattern + routeUnmatched
	queueWait *histogram            // submit -> dequeue, per started job
	jobWall   map[string]*histogram // start -> done, by engine
}

func newServiceMetrics(routes []string) *serviceMetrics {
	m := &serviceMetrics{
		httpDur:   make(map[string]*histogram, len(routes)+1),
		queueWait: newHistogram(latencyBuckets),
		jobWall:   make(map[string]*histogram, 2),
	}
	for _, r := range routes {
		m.httpDur[r] = newHistogram(latencyBuckets)
	}
	m.httpDur[routeUnmatched] = newHistogram(latencyBuckets)
	for _, eng := range []string{chaos.EngineSim, chaos.EngineNative} {
		m.jobWall[eng] = newHistogram(latencyBuckets)
	}
	return m
}

// observeHTTP files a request duration under its route pattern,
// folding unknown patterns into the unmatched series.
func (m *serviceMetrics) observeHTTP(route string, seconds float64) {
	h, ok := m.httpDur[route]
	if !ok {
		h = m.httpDur[routeUnmatched]
	}
	h.observe(seconds)
}

// observeJobWall files a completed run's wall time under its engine;
// engines outside the pre-seeded set (impossible past Submit
// validation) are dropped rather than invented.
func (m *serviceMetrics) observeJobWall(engine string, seconds float64) {
	if h, ok := m.jobWall[engine]; ok {
		h.observe(seconds)
	}
}

// jobStates fixes the label order so scrapes are stable and every
// state series exists from the first scrape (absent-vs-zero matters to
// alerting rules).
var jobStates = []JobState{JobQueued, JobRunning, JobDone, JobFailed, JobCanceled}

// metricsText renders the service counters — the same surface as
// /v1/stats — in Prometheus text exposition format.
func (s *Service) metricsText() string {
	st := s.Stats()
	var p promWriter

	p.family("chaos_jobs", "Jobs in history by lifecycle state.", "gauge")
	for _, state := range jobStates {
		p.sample("chaos_jobs", [][2]string{{"state", string(state)}}, float64(st.Jobs[string(state)]))
	}
	p.scalar("chaos_queue_depth", "Jobs queued and not yet running.", "gauge", float64(st.QueueDepth))
	p.scalar("chaos_running", "Simulations currently executing.", "gauge", float64(st.Running))
	p.scalar("chaos_workers", "Size of the simulation worker pool.", "gauge", float64(st.Workers))
	p.scalar("chaos_graphs", "Graphs registered in the catalog.", "gauge", float64(st.Graphs))

	p.family("chaos_jobs_submitted_total", "Job submissions by algorithm.", "counter")
	algs := make([]string, 0, len(st.PerAlgorithm))
	for alg := range st.PerAlgorithm {
		algs = append(algs, alg)
	}
	sort.Strings(algs)
	for _, alg := range algs {
		p.sample("chaos_jobs_submitted_total", [][2]string{{"algorithm", alg}}, float64(st.PerAlgorithm[alg]))
	}

	// Per-engine series are pre-seeded for both planes so a scrape sees
	// chaos_jobs_by_engine{engine="native"} 0 before the first native
	// job, not an absent series (absent-vs-zero matters to alerting).
	p.family("chaos_jobs_by_engine", "Job submissions by execution engine.", "counter")
	for _, eng := range []string{chaos.EngineSim, chaos.EngineNative} {
		p.sample("chaos_jobs_by_engine", [][2]string{{"engine", eng}}, float64(st.PerEngine[eng]))
	}
	p.scalar("chaos_native_wall_seconds_total", "Summed measured wall-clock of completed native runs.", "counter", st.NativeWallSeconds)

	// Out-of-core spill counters, always emitted (zero until a native
	// job with a memory budget actually spills) so dashboards see the
	// series before the first out-of-core run.
	p.scalar("chaos_spill_bytes_total", "Encoded update bytes spilled to disk by native out-of-core runs.", "counter", float64(st.SpillBytes))
	p.scalar("chaos_spill_files_total", "Spill files created by native out-of-core runs.", "counter", float64(st.SpillFiles))

	// Latency histograms. Route and engine series were pre-seeded at
	// Open, so the first scrape already names every route at zero.
	p.family("chaos_http_request_duration_seconds", "HTTP request duration by mux route pattern.", "histogram")
	routes := make([]string, 0, len(s.metrics.httpDur))
	for route := range s.metrics.httpDur {
		routes = append(routes, route)
	}
	sort.Strings(routes)
	for _, route := range routes {
		p.histogram("chaos_http_request_duration_seconds", [][2]string{{"route", route}}, s.metrics.httpDur[route])
	}
	p.family("chaos_job_queue_wait_seconds", "Time jobs spent queued before a worker started them.", "histogram")
	p.histogram("chaos_job_queue_wait_seconds", nil, s.metrics.queueWait)
	p.family("chaos_job_wall_seconds", "Wall-clock of completed runs by execution engine.", "histogram")
	for _, eng := range []string{chaos.EngineSim, chaos.EngineNative} {
		p.histogram("chaos_job_wall_seconds", [][2]string{{"engine", eng}}, s.metrics.jobWall[eng])
	}

	p.scalar("chaos_result_cache_entries", "Entries in the in-memory result cache.", "gauge", float64(st.Cache.Entries))
	p.scalar("chaos_result_cache_hits_total", "Result-cache hits (memory or disk).", "counter", float64(st.Cache.Hits))
	p.scalar("chaos_result_cache_misses_total", "Result-cache misses.", "counter", float64(st.Cache.Misses))
	p.scalar("chaos_result_cache_disk_hits_total", "Hits served by the disk tier (subset of hits).", "counter", float64(st.Cache.DiskHits))

	if d := st.Cache.Disk; d != nil {
		p.scalar("chaos_result_store_entries", "Blobs in the disk result store.", "gauge", float64(d.Entries))
		p.scalar("chaos_result_store_bytes", "Bytes held by the disk result store.", "gauge", float64(d.Bytes))
		p.scalar("chaos_result_store_max_bytes", "Disk result store bound (0 = unbounded).", "gauge", float64(d.MaxBytes))
		p.scalar("chaos_result_store_evictions_total", "Blobs LRU-evicted from the disk result store.", "counter", float64(d.Evictions))
	}
	if du := st.Durable; du != nil {
		p.scalar("chaos_wal_records_total", "Journal records appended since this process opened the WAL.", "counter", float64(du.WAL.Records))
		p.scalar("chaos_wal_records_since_snapshot", "Journal records since the last compacting snapshot.", "gauge", float64(du.WAL.SinceCompact))
		p.scalar("chaos_wal_fsyncs_total", "Fsyncs the journal issued (group commit batches many records per fsync).", "counter", float64(du.WAL.Fsyncs))
		p.scalar("chaos_wal_snapshots_total", "Compacting snapshots taken since this process started.", "counter", float64(du.WAL.Snapshots))
		healthy := 1.0
		if du.LastError != "" {
			healthy = 0
		}
		p.scalar("chaos_persist_healthy", "1 while no persistence failure has occurred, 0 after the first (durability lost; see /v1/stats lastError).", "gauge", healthy)
	}
	return p.b.String()
}

// handleMetrics serves GET /metrics.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(s.metricsText()))
}
