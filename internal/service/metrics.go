package service

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"chaos"
)

// promWriter accumulates Prometheus text exposition format (the 0.0.4
// text format every Prometheus-compatible scraper speaks). The service
// has a handful of scalar counters and two small label families, so a
// dependency-free emitter beats vendoring a client library the
// container cannot fetch anyway.
type promWriter struct {
	b strings.Builder
}

// family starts a metric family with its HELP/TYPE preamble.
func (p *promWriter) family(name, help, typ string) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample emits one sample line; labels come as name=value pairs. %q
// escapes exactly the metacharacters the exposition format defines for
// label values (backslash, quote, newline) in the format it expects;
// the label domain here (job states, canonical algorithm names) is
// printable ASCII, so %q never reaches its non-Prometheus escapes.
func (p *promWriter) sample(name string, labels [][2]string, value float64) {
	p.b.WriteString(name)
	if len(labels) > 0 {
		p.b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				p.b.WriteByte(',')
			}
			fmt.Fprintf(&p.b, "%s=%q", l[0], l[1])
		}
		p.b.WriteByte('}')
	}
	// %g prints integers without an exponent or trailing zeros, and the
	// format tolerates either form for every metric type.
	fmt.Fprintf(&p.b, " %g\n", value)
}

// scalar is family + one unlabeled sample, the common case here.
func (p *promWriter) scalar(name, help, typ string, value float64) {
	p.family(name, help, typ)
	p.sample(name, nil, value)
}

// jobStates fixes the label order so scrapes are stable and every
// state series exists from the first scrape (absent-vs-zero matters to
// alerting rules).
var jobStates = []JobState{JobQueued, JobRunning, JobDone, JobFailed, JobCanceled}

// metricsText renders the service counters — the same surface as
// /v1/stats — in Prometheus text exposition format.
func (s *Service) metricsText() string {
	st := s.Stats()
	var p promWriter

	p.family("chaos_jobs", "Jobs in history by lifecycle state.", "gauge")
	for _, state := range jobStates {
		p.sample("chaos_jobs", [][2]string{{"state", string(state)}}, float64(st.Jobs[string(state)]))
	}
	p.scalar("chaos_queue_depth", "Jobs queued and not yet running.", "gauge", float64(st.QueueDepth))
	p.scalar("chaos_running", "Simulations currently executing.", "gauge", float64(st.Running))
	p.scalar("chaos_workers", "Size of the simulation worker pool.", "gauge", float64(st.Workers))
	p.scalar("chaos_graphs", "Graphs registered in the catalog.", "gauge", float64(st.Graphs))

	p.family("chaos_jobs_submitted_total", "Job submissions by algorithm.", "counter")
	algs := make([]string, 0, len(st.PerAlgorithm))
	for alg := range st.PerAlgorithm {
		algs = append(algs, alg)
	}
	sort.Strings(algs)
	for _, alg := range algs {
		p.sample("chaos_jobs_submitted_total", [][2]string{{"algorithm", alg}}, float64(st.PerAlgorithm[alg]))
	}

	// Per-engine series are pre-seeded for both planes so a scrape sees
	// chaos_jobs_by_engine{engine="native"} 0 before the first native
	// job, not an absent series (absent-vs-zero matters to alerting).
	p.family("chaos_jobs_by_engine", "Job submissions by execution engine.", "counter")
	for _, eng := range []string{chaos.EngineSim, chaos.EngineNative} {
		p.sample("chaos_jobs_by_engine", [][2]string{{"engine", eng}}, float64(st.PerEngine[eng]))
	}
	p.scalar("chaos_native_wall_seconds_total", "Summed measured wall-clock of completed native runs.", "counter", st.NativeWallSeconds)

	p.scalar("chaos_result_cache_entries", "Entries in the in-memory result cache.", "gauge", float64(st.Cache.Entries))
	p.scalar("chaos_result_cache_hits_total", "Result-cache hits (memory or disk).", "counter", float64(st.Cache.Hits))
	p.scalar("chaos_result_cache_misses_total", "Result-cache misses.", "counter", float64(st.Cache.Misses))
	p.scalar("chaos_result_cache_disk_hits_total", "Hits served by the disk tier (subset of hits).", "counter", float64(st.Cache.DiskHits))

	if d := st.Cache.Disk; d != nil {
		p.scalar("chaos_result_store_entries", "Blobs in the disk result store.", "gauge", float64(d.Entries))
		p.scalar("chaos_result_store_bytes", "Bytes held by the disk result store.", "gauge", float64(d.Bytes))
		p.scalar("chaos_result_store_max_bytes", "Disk result store bound (0 = unbounded).", "gauge", float64(d.MaxBytes))
		p.scalar("chaos_result_store_evictions_total", "Blobs LRU-evicted from the disk result store.", "counter", float64(d.Evictions))
	}
	if du := st.Durable; du != nil {
		p.scalar("chaos_wal_records_total", "Journal records appended since this process opened the WAL.", "counter", float64(du.WAL.Records))
		p.scalar("chaos_wal_records_since_snapshot", "Journal records since the last compacting snapshot.", "gauge", float64(du.WAL.SinceCompact))
		p.scalar("chaos_wal_fsyncs_total", "Fsyncs the journal issued (group commit batches many records per fsync).", "counter", float64(du.WAL.Fsyncs))
		p.scalar("chaos_wal_snapshots_total", "Compacting snapshots taken since this process started.", "counter", float64(du.WAL.Snapshots))
		healthy := 1.0
		if du.LastError != "" {
			healthy = 0
		}
		p.scalar("chaos_persist_healthy", "1 while no persistence failure has occurred, 0 after the first (durability lost; see /v1/stats lastError).", "gauge", healthy)
	}
	return p.b.String()
}

// handleMetrics serves GET /metrics.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(s.metricsText()))
}
