// Emission/listing order in this file must be byte-stable across runs:
// chaos-vet's detrange analyzer checks every map iteration below.
//
//chaos:sorted-maps
package service

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"chaos"
	"chaos/internal/obs"
)

// JobState is the lifecycle state of a job.
type JobState string

// Job lifecycle: Submit puts a job in JobQueued; a worker moves it to
// JobRunning and then JobDone or JobFailed; Cancel moves a still-queued
// job straight to JobCanceled, and asks a running job to stop at its
// next iteration boundary (the engine observes the job's context there),
// after which the worker records JobCanceled. After a crash, recovery
// re-enqueues jobs that were queued or running and fails unrecoverable
// ones with a restart reason.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Job is one algorithm run over a registered graph. Fields after Options
// are guarded by the scheduler's mutex; handlers read them through
// snapshots (JobView), never directly.
type Job struct {
	ID        string
	Graph     string
	Algorithm string
	Options   chaos.Options

	state      JobState
	err        string
	result     *chaos.Result
	report     *chaos.Report
	cacheHit   bool
	enqueuedAt time.Time
	startedAt  time.Time
	finishedAt time.Time

	// cancel stops the running simulation at its next iteration
	// boundary; set only while state == JobRunning.
	cancel context.CancelFunc
	// canceling records that Cancel was accepted on a running job;
	// atomic (all writes still happen under s.mu) so the lock-free
	// progress ticks can carry the flag — otherwise a cancel would
	// visibly "un-happen" in every tick between acceptance and the
	// iteration boundary that honors it.
	canceling atomic.Bool
	// restarts counts how many times crash recovery re-enqueued this
	// job (diagnostics; also journaled).
	restarts int
	// answeredFromCache marks a run the executor satisfied from the
	// result cache instead of computing (the restart-path lookup in
	// Service.execute); atomic because the executor sets it on the run
	// goroutine while metrics accounting reads it under s.mu. Such a
	// "run" must not count toward nativeWallSeconds — nothing ran.
	answeredFromCache atomic.Bool

	// progress is the engine's latest iteration-boundary snapshot,
	// written by the run goroutine at every tick and read by view();
	// atomic so ticks never contend on the scheduler mutex.
	progress atomic.Pointer[chaos.Progress]
	// trace is the flight recorder the executor attached before running
	// (nil for cache hits and journal-restored jobs — nothing ran, so
	// nothing was recorded); atomic because the run goroutine stores it
	// while GET /v1/jobs/{id}/trace loads it. The recorder itself is
	// safe for concurrent use, so reading it mid-run is fine: the trace
	// of a running job is simply a prefix.
	trace atomic.Pointer[chaos.TraceRecorder]
	// computeShare is this job's slice of the scheduler's shared
	// compute-worker budget, fixed when the job starts (0 = unmanaged).
	computeShare int

	// Trace state (all guarded by s.mu; see trace.go). traceID roots the
	// job's causal trace; spans is the journaled lifecycle span list
	// (request/admitted/queued/run/terminal, plus recovery and
	// checkpoint spans), carried in every jobRecord so the tree survives
	// a crash-restart. rootSpanID/queuedSpanID/runSpanID locate the
	// spans later transitions must close or parent under.
	traceID      string
	traceRemote  bool
	spans        []obs.TreeSpan
	spanSeq      uint64
	rootSpanID   string
	queuedSpanID string
	runSpanID    string
}

// JobView is an immutable snapshot of a Job, safe to serialize.
type JobView struct {
	ID        string `json:"id"`
	Graph     string `json:"graph"`
	Algorithm string `json:"algorithm"`
	// Engine is the execution plane that runs (or ran) the job: "sim"
	// or "native". Jobs journaled before the engine option existed
	// report "sim", the only engine there was.
	Engine string `json:"engine"`
	// TraceID is the job's end-to-end trace (GET /v1/traces/{id});
	// empty only for jobs journaled before tracing existed.
	TraceID    string        `json:"traceId,omitempty"`
	State      JobState      `json:"state"`
	CacheHit   bool          `json:"cacheHit,omitempty"`
	Canceling  bool          `json:"canceling,omitempty"`
	Restarts   int           `json:"restarts,omitempty"`
	Error      string        `json:"error,omitempty"`
	EnqueuedAt time.Time     `json:"enqueuedAt"`
	StartedAt  *time.Time    `json:"startedAt,omitempty"`
	FinishedAt *time.Time    `json:"finishedAt,omitempty"`
	Result     *chaos.Result `json:"result,omitempty"`
	Report     *chaos.Report `json:"report,omitempty"`
	// Progress is the live iteration-boundary snapshot of a running
	// job: iterations, simulated seconds, bytes moved, steals accepted.
	Progress *chaos.Progress `json:"progress,omitempty"`
}

// stripped returns the view without the Result/Report payloads —
// the uniform list/event form. Listings used to embed full payloads
// for in-memory done jobs but null for journal-restored ones (listing
// never hydrates from the disk store); stripping both ways keeps
// listings uniform and cheap, and GET /v1/jobs/{id} keeps the payload.
func (v JobView) stripped() JobView {
	v.Result, v.Report = nil, nil
	return v
}

// engine is the job's canonical execution-engine name ("" and aliases
// fold to "sim"); derived from the submitted options so journal-restored
// pre-engine jobs report "sim".
func (j *Job) engine() string {
	if eng, err := chaos.ParseEngine(j.Options.Engine); err == nil {
		return eng
	}
	return j.Options.Engine // unknown names never pass Submit; be honest
}

// identView builds the JobView fields that are stable while a job runs
// (identity, engine, enqueue/start times, restart count) — the one
// construction site shared by the locked view() and the lock-free
// NoteProgress tick, so a new JobView field cannot be added to one and
// silently stay zero in the other.
func (j *Job) identView() JobView {
	v := JobView{
		ID:         j.ID,
		Graph:      j.Graph,
		Algorithm:  j.Algorithm,
		Engine:     j.engine(),
		TraceID:    j.traceID, // written once at admission, before the job can run
		Restarts:   j.restarts,
		EnqueuedAt: j.enqueuedAt,
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		v.StartedAt = &t
	}
	return v
}

// view snapshots the job; callers hold s.mu.
func (j *Job) view() JobView {
	v := j.identView()
	v.State = j.state
	v.CacheHit = j.cacheHit
	v.Canceling = j.canceling.Load() && j.state == JobRunning
	v.Error = j.err
	v.Result = j.result
	v.Report = j.report
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		v.FinishedAt = &t
	}
	if j.state == JobRunning {
		v.Progress = j.progress.Load()
	}
	return v
}

// runFunc executes one job and returns its result; the scheduler owns all
// state transitions around the call. ctx is canceled when the job's
// cancellation is requested; a run that returns ctx.Err() after that is
// recorded as canceled, not failed.
type runFunc func(ctx context.Context, j *Job) (*chaos.Result, *chaos.Report, error)

// Scheduler runs jobs on a bounded worker pool: at most `workers`
// simulations execute concurrently, the rest wait in a bounded FIFO
// queue (admission control rejects past MaxQueue).
type Scheduler struct {
	run      runFunc
	workers  int
	retain   int // finished jobs kept in history
	maxQueue int // queued-job bound (0 = unbounded)
	// computeBudget is the shared pool of engine compute workers divided
	// across running jobs (0 = unmanaged: every job defaults to
	// GOMAXPROCS, oversubscribing the host N×).
	computeBudget int

	mu   sync.Mutex
	cond *sync.Cond
	// queue is the FIFO of submitted jobs: live entries are
	// queue[qhead:]. Popping advances qhead after nilling the slot —
	// queue = queue[1:] would pin every popped *Job (result payloads
	// included) in the backing array — and compacts once the dead
	// prefix dominates, the same ring-head discipline as resultCache.
	queue  []*Job
	qhead  int
	queued int // jobs in state JobQueued (admission-control depth)
	jobs   map[string]*Job
	// byTrace maps a trace id to the job that owns it (GET
	// /v1/traces/{id}); pruned together with the job history.
	byTrace map[string]string
	order   []string
	nextID  int
	running int
	closed  bool
	counts  map[string]int // submissions per algorithm
	engines map[string]int // submissions per execution engine
	// nativeWallSeconds accumulates the measured wall-clock of
	// completed native runs (the /metrics
	// chaos_native_wall_seconds_total counter); cache hits never ran,
	// so they add nothing.
	nativeWallSeconds float64
	// spillBytes / spillFiles accumulate the out-of-core spill traffic
	// of completed native runs (the /metrics chaos_spill_*_total
	// counters); like nativeWallSeconds, cache hits add nothing.
	spillBytes int64
	spillFiles int
	wg         sync.WaitGroup

	// events fans state transitions and progress ticks out to SSE
	// subscribers; it has its own lock and never blocks publishers.
	events *eventHub

	// onUpdate, when set (before any submission), observes every state
	// transition with s.mu held — the service journals them through it.
	// Holding the lock keeps the journal in transition order.
	onUpdate func(*Job)
	// hydrate, when set, lazily reloads the (result, report) of a done
	// job whose payload did not survive in memory (a job restored from
	// the journal); it may read the disk result store.
	hydrate func(graph, algorithm string, opt chaos.Options) (*chaos.Result, *chaos.Report, bool)
	// onJobStart and onJobDone, when set (before any submission), feed
	// the /metrics latency histograms: queue wait as a worker dequeues a
	// job, and wall time by engine when a run completes successfully.
	// Both are called with s.mu held, so they must stay cheap.
	onJobStart func(queueWait time.Duration)
	onJobDone  func(engine string, wall time.Duration)
}

// noteLocked reports a state transition to the service and to event
// subscribers; callers hold s.mu and call it after every mutation of a
// job's state.
func (s *Scheduler) noteLocked(j *Job) {
	if s.onUpdate != nil {
		s.onUpdate(j)
	}
	s.events.publish(j.ID, EventState, j.view().stripped())
}

// NoteProgress files an engine progress tick against a running job:
// the job's live snapshot is replaced (lock-free — ticks arrive at
// every simulated iteration boundary) and subscribers get an event.
// Ordering with state events is inherent: ticks happen strictly inside
// the run, after the running transition and before the terminal one.
func (s *Scheduler) NoteProgress(j *Job, p chaos.Progress) {
	j.progress.Store(&p)
	// The view is assembled lock-free from fields that cannot change
	// while the job runs (identView: identity, engine, enqueue/start
	// times, restart count), the atomic canceling flag (so an accepted
	// cancel never "un-happens" in a later tick), and the tick itself.
	v := j.identView()
	v.State = JobRunning
	v.Canceling = j.canceling.Load()
	v.Progress = &p
	s.events.publish(j.ID, EventProgress, v)
}

// Subscribe streams a job's state transitions and progress ticks; see
// eventHub.subscribe for the channel contract.
func (s *Scheduler) Subscribe(id string) (<-chan JobEvent, func()) {
	return s.events.subscribe(id)
}

// SchedulerConfig parameterizes a Scheduler.
type SchedulerConfig struct {
	// Workers bounds concurrently running simulations.
	Workers int
	// Retain bounds the finished-job history: once more than Retain jobs
	// exist, the oldest finished ones are evicted (queued and running
	// jobs never are), so an always-on server does not grow without
	// bound. <= 0 means the default of 10000.
	Retain int
	// MaxQueue bounds the number of queued (not yet running) jobs;
	// Submit past it returns *QueueFullError so the HTTP layer can
	// answer 429 with Retry-After. 0 = unbounded.
	MaxQueue int
	// ComputeBudget is the total engine compute workers shared across
	// running jobs: a job that does not pin Options.ComputeWorkers
	// starts with the budget divided by the concurrency it will see
	// (running + backlog, capped at Workers), so a lone job gets the
	// whole budget and a burst's shares sum to at most the budget —
	// except that every job keeps a floor of one worker, so a pool
	// wider than the budget still runs Workers jobs at one worker each.
	// Without the budget every job defaults to GOMAXPROCS, and N
	// concurrent jobs oversubscribe the host N×. 0 = unmanaged (the
	// old behavior).
	ComputeBudget int
}

// NewScheduler starts a pool of workers feeding jobs through run.
func NewScheduler(cfg SchedulerConfig, run runFunc) *Scheduler {
	if cfg.Retain <= 0 {
		cfg.Retain = 10000
	}
	s := &Scheduler{
		run:           run,
		workers:       cfg.Workers,
		retain:        cfg.Retain,
		maxQueue:      cfg.MaxQueue,
		computeBudget: cfg.ComputeBudget,
		jobs:          make(map[string]*Job),
		byTrace:       make(map[string]string),
		counts:        make(map[string]int),
		engines:       make(map[string]int),
		events:        newEventHub(),
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// ErrShuttingDown is returned by Submit after Shutdown has begun.
var ErrShuttingDown = fmt.Errorf("service: shutting down")

// QueueFullError reports a submission rejected by admission control:
// the queue already holds MaxQueue jobs. The HTTP layer answers 429
// with a Retry-After derived from the backlog.
type QueueFullError struct {
	Depth   int // queued jobs at rejection time
	Max     int
	Workers int
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("service: job queue is full (%d queued, max %d); retry later", e.Depth, e.Max)
}

// RetryAfterSeconds estimates when a retry could be admitted. Job
// durations are unknowable up front (they depend on graph size and
// options), so this is deliberately a coarse backlog-per-worker
// heuristic, never less than a second.
func (e *QueueFullError) RetryAfterSeconds() int {
	w := e.Workers
	if w < 1 {
		w = 1
	}
	retry := e.Depth / w
	if retry < 1 {
		retry = 1
	}
	if retry > 60 {
		retry = 60
	}
	return retry
}

// pruneLocked evicts the oldest finished jobs beyond the retention cap;
// callers hold s.mu.
func (s *Scheduler) pruneLocked() {
	excess := len(s.order) - s.retain
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		terminal := j.state == JobDone || j.state == JobFailed || j.state == JobCanceled
		if excess > 0 && terminal {
			delete(s.jobs, id)
			if j.traceID != "" && s.byTrace[j.traceID] == id {
				delete(s.byTrace, j.traceID)
			}
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// newJobLocked files a new job; callers hold s.mu.
func (s *Scheduler) newJobLocked(graphID, alg string, opt chaos.Options) *Job {
	s.nextID++
	j := &Job{
		ID:         fmt.Sprintf("j%d", s.nextID),
		Graph:      graphID,
		Algorithm:  alg,
		Options:    opt,
		enqueuedAt: time.Now().UTC(),
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.counts[alg]++
	s.engines[j.engine()]++
	s.pruneLocked() // the new job is not yet terminal, so never evicted
	return j
}

// Submit enqueues a job, rejecting it with *QueueFullError when
// admission control finds the queue at its bound.
func (s *Scheduler) Submit(graphID, alg string, opt chaos.Options) (JobView, error) {
	return s.SubmitTraced(nil, graphID, alg, opt)
}

// SubmitTraced is Submit rooted in the request's trace context (nil
// derives a synthetic root from the job's options fingerprint).
func (s *Scheduler) SubmitTraced(rt *reqTrace, graphID, alg string, opt chaos.Options) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobView{}, ErrShuttingDown
	}
	if s.maxQueue > 0 && s.queued >= s.maxQueue {
		return JobView{}, &QueueFullError{Depth: s.queued, Max: s.maxQueue, Workers: s.workers}
	}
	j := s.newJobLocked(graphID, alg, opt)
	j.state = JobQueued
	s.initTraceLocked(j, rt)
	j.queuedSpanID = j.addSpanLocked(obs.KindLifecycle, "queued", "", j.rootSpanID, j.enqueuedAt.UnixNano(), 0)
	s.queue = append(s.queue, j)
	s.queued++
	s.noteLocked(j)
	s.cond.Signal()
	return j.view(), nil
}

// AdmitCached files an already-answered job (a result-cache hit) directly
// in the done state, so clients observe the same lifecycle either way.
func (s *Scheduler) AdmitCached(graphID, alg string, opt chaos.Options, res *chaos.Result, rep *chaos.Report) (JobView, error) {
	return s.AdmitCachedTraced(nil, graphID, alg, opt, res, rep)
}

// AdmitCachedTraced is AdmitCached rooted in the request's trace
// context; the trace tree records admission and an immediate done span
// (no queue, run or engine spans — nothing ran).
func (s *Scheduler) AdmitCachedTraced(rt *reqTrace, graphID, alg string, opt chaos.Options, res *chaos.Result, rep *chaos.Report) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobView{}, ErrShuttingDown
	}
	j := s.newJobLocked(graphID, alg, opt)
	j.state = JobDone
	j.cacheHit = true
	j.result = res
	j.report = rep
	j.finishedAt = j.enqueuedAt
	s.initTraceLocked(j, rt)
	at := j.finishedAt.UnixNano()
	j.addSpanLocked(obs.KindLifecycle, "done", "served from the result cache", j.rootSpanID, at, at)
	s.noteLocked(j)
	return j.view(), nil
}

// Get snapshots the job with the given id, lazily rehydrating the
// result payload of a journal-restored done job from the disk store.
func (s *Scheduler) Get(id string) (JobView, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobView{}, false
	}
	needsHydration := j.state == JobDone && j.result == nil && s.hydrate != nil
	v := j.view()
	s.mu.Unlock()
	if !needsHydration {
		return v, true
	}
	// Hydration reads the disk store; doing it under s.mu would stall
	// every worker transition and submission behind one HTTP GET. The
	// payload for a key is immutable, so filling it in after re-locking
	// cannot race to a wrong value (a concurrent Get at worst loads the
	// same blob twice).
	res, rep, ok := s.hydrate(v.Graph, v.Algorithm, j.Options)
	if !ok {
		return v, true // blob evicted or lost: the view just lacks a result
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.result == nil {
		j.result, j.report = res, rep
	}
	return j.view(), true
}

// List snapshots every job in submission order.
func (s *Scheduler) List() []JobView {
	return s.ListFiltered(JobFilter{})
}

// Peek snapshots a job payload-stripped, without the lazy disk-store
// hydration Get performs — the right form for event streams and other
// callers that would discard the Result/Report anyway (hydrating would
// read and pin a potentially large blob just to strip it). The second
// return is the event-hub sequence the snapshot is current as of:
// subscribers that attached before the Peek must discard buffered
// events at or below it, or they would replay pre-snapshot history
// (stale progress, earlier states) after the newer snapshot.
func (s *Scheduler) Peek(id string) (JobView, uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, 0, false
	}
	// Seq before view would be equally correct for state (both are
	// under s.mu); for lock-free progress ticks the store-then-publish
	// order in NoteProgress means a tick not yet published when we read
	// the seq is already visible to view() — replayed, it is a
	// duplicate, never a regression.
	return j.view().stripped(), s.events.lastSeq(), true
}

// Trace returns a job's flight recorder together with a
// payload-stripped view. The recorder is nil when the job never ran
// with one attached: still queued, answered from the result cache, or
// restored from the journal (spans are process-local and are not
// persisted). A running job's recorder is live — snapshotting it
// yields the spans emitted so far.
func (s *Scheduler) Trace(id string) (*chaos.TraceRecorder, JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, JobView{}, false
	}
	return j.trace.Load(), j.view().stripped(), true
}

// JobFilter selects and pages a job listing.
type JobFilter struct {
	// State keeps only jobs in this state ("" = all).
	State JobState
	// After resumes the listing just past this job id (exclusive
	// cursor). The id itself need not still exist — history eviction
	// may have removed it — because ids are ordered: jN sorts by N.
	After string
	// Limit caps the page size (0 = unlimited).
	Limit int
}

// ListFiltered snapshots jobs in submission order, restricted by f.
// Pagination protocol: pass the last id of one page as After for the
// next; a short (or empty) page means the listing is exhausted.
// Listing views are payload-stripped (no Result/Report): an unpaged
// listing of N done jobs must not serialize N full reports, and
// journal-restored done jobs would list null payloads anyway (listing
// never hydrates from the disk store). GET /v1/jobs/{id} serves the
// full payload.
func (s *Scheduler) ListFiltered(f JobFilter) []JobView {
	afterSeq := -1
	if f.After != "" {
		if seq, ok := jobSeq(f.After); ok {
			afterSeq = seq
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := []JobView{}
	for _, id := range s.order {
		if afterSeq >= 0 {
			if seq, ok := jobSeq(id); ok && seq <= afterSeq {
				continue
			}
		}
		j := s.jobs[id]
		if f.State != "" && j.state != f.State {
			continue
		}
		out = append(out, j.view().stripped())
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// jobSeq extracts the numeric part of a job id ("j42" -> 42). Ids are
// assigned from a single counter, so the sequence orders submissions
// even across restarts.
func jobSeq(id string) (int, bool) {
	if len(id) < 2 || id[0] != 'j' {
		return 0, false
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Cancel stops a job. A queued job moves to JobCanceled immediately; a
// running job gets its context canceled and stops at the simulation's
// next iteration boundary (the returned view still says "running" with
// canceling set — poll until the worker records the final state).
// Finished jobs are immutable and report a state conflict.
func (s *Scheduler) Cancel(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, &notFoundError{what: "job", id: id}
	}
	switch j.state {
	case JobQueued:
		j.state = JobCanceled
		j.finishedAt = time.Now().UTC()
		s.queued--
		j.noteTerminalLocked(j.finishedAt)
		s.noteLocked(j)
		// The job stays in s.queue; workers skip non-queued entries.
		return j.view(), nil
	case JobRunning:
		if !j.canceling.Load() {
			j.canceling.Store(true)
			j.cancel() // observed at the next iteration boundary
			if j.traceID != "" {
				at := time.Now().UTC().UnixNano()
				j.addSpanLocked(obs.KindLifecycle, "cancel requested",
					"stops at the next iteration boundary", j.rootSpanID, at, at)
			}
			// Journal the accepted cancellation: if the process dies
			// before the boundary, recovery must cancel the job, not
			// rerun it to completion.
			s.noteLocked(j)
		}
		return j.view(), nil // idempotent: repeat cancels just re-report
	default:
		return j.view(), fmt.Errorf("service: job %s is already %s", id, j.state)
	}
}

// popLocked removes and returns the queue head; callers hold s.mu and
// have checked non-emptiness. The vacated slot is nilled immediately
// (so a finished job's payload is collectable the moment history
// eviction drops it) and the dead prefix is compacted once it
// dominates, releasing the backing array that queue = queue[1:] used
// to pin every popped *Job in.
func (s *Scheduler) popLocked() *Job {
	j := s.queue[s.qhead]
	s.queue[s.qhead] = nil
	s.qhead++
	switch {
	case s.qhead == len(s.queue):
		// Drained: every slot behind qhead is already nil, so resetting
		// in place pins nothing.
		s.queue = s.queue[:0]
		s.qhead = 0
	case s.qhead >= 32 && s.qhead*2 >= len(s.queue):
		s.queue = append(make([]*Job, 0, len(s.queue)-s.qhead), s.queue[s.qhead:]...)
		s.qhead = 0
	}
	return j
}

// queueLen reports the live queue window; callers hold s.mu.
func (s *Scheduler) queueLenLocked() int { return len(s.queue) - s.qhead }

// worker pops queued jobs until shutdown.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.queueLenLocked() == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.queueLenLocked() == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		j := s.popLocked()
		if j.state != JobQueued { // canceled while waiting
			s.mu.Unlock()
			continue
		}
		j.state = JobRunning
		j.startedAt = time.Now().UTC()
		if s.onJobStart != nil {
			s.onJobStart(j.startedAt.Sub(j.enqueuedAt))
		}
		// Trace: the queue wait ends here, the run span opens — the
		// engine flight recording parents under it at serve time.
		startNs := j.startedAt.UnixNano()
		j.closeSpanLocked(j.queuedSpanID, startNs, "")
		j.runSpanID = j.addSpanLocked(obs.KindLifecycle, "run", "", j.rootSpanID, startNs, 0)
		ctx, cancel := context.WithCancel(context.Background())
		j.cancel = cancel
		s.running++
		s.queued--
		if s.computeBudget > 0 {
			// Split the host compute budget across the concurrency this
			// job will actually see: the jobs running now plus the backlog
			// that will run beside it, capped at the pool size. A lone job
			// on an idle pool gets the whole budget; a burst divides it so
			// the shares of jobs started under load sum to at most the
			// budget — instead of every job defaulting to GOMAXPROCS and
			// oversubscribing the host N×. A simulation's pool is fixed at
			// start, so shares are never rebalanced mid-run: a job started
			// alone briefly overlaps later arrivals above the budget, and
			// that is the accepted trade against idling the whole machine
			// between bursts. ComputeWorkers only trades wall-clock —
			// results are bit-identical for every value — so the share is
			// free to vary run to run.
			// s.queued, not the queue slice length: canceled jobs linger
			// in the slice until popped and must not dilute the shares of
			// jobs that will actually run.
			concurrency := s.running + s.queued
			if concurrency > s.workers {
				concurrency = s.workers
			}
			if share := s.computeBudget / concurrency; share > 1 {
				j.computeShare = share
			} else {
				j.computeShare = 1
			}
		}
		s.noteLocked(j)
		s.mu.Unlock()

		res, rep, err := s.run(ctx, j)
		cancel()

		s.mu.Lock()
		s.running--
		j.cancel = nil
		j.finishedAt = time.Now().UTC()
		switch {
		case err == nil:
			j.state = JobDone
			j.result = res
			j.report = rep
			if rep != nil && rep.Engine == chaos.EngineNative && !j.answeredFromCache.Load() {
				// The cached report's WallSeconds belongs to the run
				// that produced the blob (already counted when it
				// completed), not to this process.
				s.nativeWallSeconds += rep.WallSeconds
				s.spillBytes += rep.SpillBytes
				s.spillFiles += rep.SpillFiles
			}
			if s.onJobDone != nil && !j.answeredFromCache.Load() {
				// Cache-answered restarts excluded for the same reason
				// as nativeWallSeconds: nothing ran.
				s.onJobDone(j.engine(), j.finishedAt.Sub(j.startedAt))
			}
		case errors.Is(err, context.Canceled) && j.canceling.Load():
			j.state = JobCanceled
			j.err = "canceled while running; stopped at an iteration boundary"
		default:
			j.state = JobFailed
			j.err = err.Error()
		}
		j.noteTerminalLocked(j.finishedAt)
		s.noteLocked(j)
		s.mu.Unlock()
	}
}

// CloseEventStreams disconnects every event subscriber and refuses new
// ones. The HTTP front end registers it as an on-shutdown hook: an SSE
// stream is never idle as far as the HTTP server can tell, so without
// this a single attached viewer would hold the entire drain budget.
func (s *Scheduler) CloseEventStreams() { s.events.closeAll() }

// Shutdown stops accepting submissions, cancels still-queued jobs,
// disconnects event subscribers, and waits for the running ones to
// drain (or ctx to expire).
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.events.closeAll()
	s.mu.Lock()
	s.closed = true
	for _, j := range s.queue[s.qhead:] {
		if j.state == JobQueued {
			j.state = JobCanceled
			j.err = "canceled at shutdown before running"
			j.finishedAt = time.Now().UTC()
			s.queued--
			j.noteTerminalLocked(j.finishedAt)
			s.noteLocked(j)
		}
	}
	s.queue, s.qhead = nil, 0
	s.cond.Broadcast()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: shutdown timed out with jobs still running: %w", ctx.Err())
	}
}

// schedStats is the scheduler's contribution to /v1/stats.
type schedStats struct {
	queueDepth        int
	running           int
	jobs              map[string]int
	perAlgorithm      map[string]int
	perEngine         map[string]int
	nativeWallSeconds float64
	spillBytes        int64
	spillFiles        int
}

func (s *Scheduler) stats() schedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := schedStats{
		running:           s.running,
		queueDepth:        s.queued,
		jobs:              make(map[string]int),
		perAlgorithm:      make(map[string]int),
		perEngine:         make(map[string]int),
		nativeWallSeconds: s.nativeWallSeconds,
		spillBytes:        s.spillBytes,
		spillFiles:        s.spillFiles,
	}
	for _, j := range s.jobs {
		st.jobs[string(j.state)]++
	}
	for alg, n := range s.counts {
		st.perAlgorithm[alg] = n
	}
	for eng, n := range s.engines {
		st.perEngine[eng] = n
	}
	return st
}
