package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"chaos"
)

// JobState is the lifecycle state of a job.
type JobState string

// Job lifecycle: Submit puts a job in JobQueued; a worker moves it to
// JobRunning and then JobDone or JobFailed; Cancel moves a still-queued
// job to JobCanceled (running simulations are not interruptible).
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Job is one algorithm run over a registered graph. Fields after Options
// are guarded by the scheduler's mutex; handlers read them through
// snapshots (JobView), never directly.
type Job struct {
	ID        string
	Graph     string
	Algorithm string
	Options   chaos.Options

	state      JobState
	err        string
	result     *chaos.Result
	report     *chaos.Report
	cacheHit   bool
	enqueuedAt time.Time
	startedAt  time.Time
	finishedAt time.Time
}

// JobView is an immutable snapshot of a Job, safe to serialize.
type JobView struct {
	ID         string        `json:"id"`
	Graph      string        `json:"graph"`
	Algorithm  string        `json:"algorithm"`
	State      JobState      `json:"state"`
	CacheHit   bool          `json:"cacheHit,omitempty"`
	Error      string        `json:"error,omitempty"`
	EnqueuedAt time.Time     `json:"enqueuedAt"`
	StartedAt  *time.Time    `json:"startedAt,omitempty"`
	FinishedAt *time.Time    `json:"finishedAt,omitempty"`
	Result     *chaos.Result `json:"result,omitempty"`
	Report     *chaos.Report `json:"report,omitempty"`
}

// view snapshots the job; callers hold s.mu.
func (j *Job) view() JobView {
	v := JobView{
		ID:         j.ID,
		Graph:      j.Graph,
		Algorithm:  j.Algorithm,
		State:      j.state,
		CacheHit:   j.cacheHit,
		Error:      j.err,
		EnqueuedAt: j.enqueuedAt,
		Result:     j.result,
		Report:     j.report,
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		v.StartedAt = &t
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		v.FinishedAt = &t
	}
	return v
}

// runFunc executes one job and returns its result; the scheduler owns all
// state transitions around the call.
type runFunc func(*Job) (*chaos.Result, *chaos.Report, error)

// Scheduler runs jobs on a bounded worker pool: at most `workers`
// simulations execute concurrently, the rest wait in a FIFO queue.
type Scheduler struct {
	run     runFunc
	workers int
	retain  int // finished jobs kept in history

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*Job
	jobs    map[string]*Job
	order   []string
	nextID  int
	running int
	closed  bool
	counts  map[string]int // submissions per algorithm
	wg      sync.WaitGroup
}

// NewScheduler starts a pool of workers feeding jobs through run. The
// job history is bounded: once more than retain jobs exist, the oldest
// finished ones are evicted (queued and running jobs never are), so an
// always-on server does not grow without bound. retain <= 0 means the
// default of 10000.
func NewScheduler(workers, retain int, run runFunc) *Scheduler {
	if retain <= 0 {
		retain = 10000
	}
	s := &Scheduler{
		run:     run,
		workers: workers,
		retain:  retain,
		jobs:    make(map[string]*Job),
		counts:  make(map[string]int),
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// ErrShuttingDown is returned by Submit after Shutdown has begun.
var ErrShuttingDown = fmt.Errorf("service: shutting down")

// pruneLocked evicts the oldest finished jobs beyond the retention cap;
// callers hold s.mu.
func (s *Scheduler) pruneLocked() {
	excess := len(s.order) - s.retain
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		terminal := j.state == JobDone || j.state == JobFailed || j.state == JobCanceled
		if excess > 0 && terminal {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// newJobLocked files a new job; callers hold s.mu.
func (s *Scheduler) newJobLocked(graphID, alg string, opt chaos.Options) *Job {
	s.nextID++
	j := &Job{
		ID:         fmt.Sprintf("j%d", s.nextID),
		Graph:      graphID,
		Algorithm:  alg,
		Options:    opt,
		enqueuedAt: time.Now().UTC(),
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.counts[alg]++
	s.pruneLocked() // the new job is not yet terminal, so never evicted
	return j
}

// Submit enqueues a job.
func (s *Scheduler) Submit(graphID, alg string, opt chaos.Options) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobView{}, ErrShuttingDown
	}
	j := s.newJobLocked(graphID, alg, opt)
	j.state = JobQueued
	s.queue = append(s.queue, j)
	s.cond.Signal()
	return j.view(), nil
}

// AdmitCached files an already-answered job (a result-cache hit) directly
// in the done state, so clients observe the same lifecycle either way.
func (s *Scheduler) AdmitCached(graphID, alg string, opt chaos.Options, res *chaos.Result, rep *chaos.Report) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobView{}, ErrShuttingDown
	}
	j := s.newJobLocked(graphID, alg, opt)
	j.state = JobDone
	j.cacheHit = true
	j.result = res
	j.report = rep
	j.finishedAt = j.enqueuedAt
	return j.view(), nil
}

// Get snapshots the job with the given id.
func (s *Scheduler) Get(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// List snapshots every job in submission order.
func (s *Scheduler) List() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].view())
	}
	return out
}

// Cancel moves a queued job to JobCanceled. Running jobs are not
// interruptible (the simulation has no preemption point); finished jobs
// are immutable. Both report a state conflict.
func (s *Scheduler) Cancel(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, &notFoundError{what: "job", id: id}
	}
	if j.state != JobQueued {
		return j.view(), fmt.Errorf("service: job %s is %s, only queued jobs can be canceled", id, j.state)
	}
	j.state = JobCanceled
	j.finishedAt = time.Now().UTC()
	// The job stays in s.queue; workers skip non-queued entries.
	return j.view(), nil
}

// worker pops queued jobs until shutdown.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		j := s.queue[0]
		s.queue = s.queue[1:]
		if j.state != JobQueued { // canceled while waiting
			s.mu.Unlock()
			continue
		}
		j.state = JobRunning
		j.startedAt = time.Now().UTC()
		s.running++
		s.mu.Unlock()

		res, rep, err := s.run(j)

		s.mu.Lock()
		s.running--
		j.finishedAt = time.Now().UTC()
		if err != nil {
			j.state = JobFailed
			j.err = err.Error()
		} else {
			j.state = JobDone
			j.result = res
			j.report = rep
		}
		s.mu.Unlock()
	}
}

// Shutdown stops accepting submissions, cancels still-queued jobs, and
// waits for the running ones to drain (or ctx to expire).
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	for _, j := range s.queue {
		if j.state == JobQueued {
			j.state = JobCanceled
			j.finishedAt = time.Now().UTC()
		}
	}
	s.queue = nil
	s.cond.Broadcast()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: shutdown timed out with jobs still running: %w", ctx.Err())
	}
}

// schedStats is the scheduler's contribution to /v1/stats.
type schedStats struct {
	queueDepth   int
	running      int
	jobs         map[string]int
	perAlgorithm map[string]int
}

func (s *Scheduler) stats() schedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := schedStats{
		running:      s.running,
		jobs:         make(map[string]int),
		perAlgorithm: make(map[string]int),
	}
	for _, j := range s.jobs {
		st.jobs[string(j.state)]++
		if j.state == JobQueued {
			st.queueDepth++
		}
	}
	for alg, n := range s.counts {
		st.perAlgorithm[alg] = n
	}
	return st
}
