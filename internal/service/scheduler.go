package service

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"chaos"
)

// JobState is the lifecycle state of a job.
type JobState string

// Job lifecycle: Submit puts a job in JobQueued; a worker moves it to
// JobRunning and then JobDone or JobFailed; Cancel moves a still-queued
// job straight to JobCanceled, and asks a running job to stop at its
// next iteration boundary (the engine observes the job's context there),
// after which the worker records JobCanceled. After a crash, recovery
// re-enqueues jobs that were queued or running and fails unrecoverable
// ones with a restart reason.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Job is one algorithm run over a registered graph. Fields after Options
// are guarded by the scheduler's mutex; handlers read them through
// snapshots (JobView), never directly.
type Job struct {
	ID        string
	Graph     string
	Algorithm string
	Options   chaos.Options

	state      JobState
	err        string
	result     *chaos.Result
	report     *chaos.Report
	cacheHit   bool
	enqueuedAt time.Time
	startedAt  time.Time
	finishedAt time.Time

	// cancel stops the running simulation at its next iteration
	// boundary; set only while state == JobRunning.
	cancel    context.CancelFunc
	canceling bool // Cancel was requested on a running job
	// restarts counts how many times crash recovery re-enqueued this
	// job (diagnostics; also journaled).
	restarts int
}

// JobView is an immutable snapshot of a Job, safe to serialize.
type JobView struct {
	ID         string        `json:"id"`
	Graph      string        `json:"graph"`
	Algorithm  string        `json:"algorithm"`
	State      JobState      `json:"state"`
	CacheHit   bool          `json:"cacheHit,omitempty"`
	Canceling  bool          `json:"canceling,omitempty"`
	Restarts   int           `json:"restarts,omitempty"`
	Error      string        `json:"error,omitempty"`
	EnqueuedAt time.Time     `json:"enqueuedAt"`
	StartedAt  *time.Time    `json:"startedAt,omitempty"`
	FinishedAt *time.Time    `json:"finishedAt,omitempty"`
	Result     *chaos.Result `json:"result,omitempty"`
	Report     *chaos.Report `json:"report,omitempty"`
}

// view snapshots the job; callers hold s.mu.
func (j *Job) view() JobView {
	v := JobView{
		ID:         j.ID,
		Graph:      j.Graph,
		Algorithm:  j.Algorithm,
		State:      j.state,
		CacheHit:   j.cacheHit,
		Canceling:  j.canceling && j.state == JobRunning,
		Restarts:   j.restarts,
		Error:      j.err,
		EnqueuedAt: j.enqueuedAt,
		Result:     j.result,
		Report:     j.report,
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		v.StartedAt = &t
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		v.FinishedAt = &t
	}
	return v
}

// runFunc executes one job and returns its result; the scheduler owns all
// state transitions around the call. ctx is canceled when the job's
// cancellation is requested; a run that returns ctx.Err() after that is
// recorded as canceled, not failed.
type runFunc func(ctx context.Context, j *Job) (*chaos.Result, *chaos.Report, error)

// Scheduler runs jobs on a bounded worker pool: at most `workers`
// simulations execute concurrently, the rest wait in a FIFO queue.
type Scheduler struct {
	run     runFunc
	workers int
	retain  int // finished jobs kept in history

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*Job
	jobs    map[string]*Job
	order   []string
	nextID  int
	running int
	closed  bool
	counts  map[string]int // submissions per algorithm
	wg      sync.WaitGroup

	// onUpdate, when set (before any submission), observes every state
	// transition with s.mu held — the service journals them through it.
	// Holding the lock keeps the journal in transition order.
	onUpdate func(*Job)
	// hydrate, when set, lazily reloads the (result, report) of a done
	// job whose payload did not survive in memory (a job restored from
	// the journal); it may read the disk result store.
	hydrate func(graph, algorithm string, opt chaos.Options) (*chaos.Result, *chaos.Report, bool)
}

// noteLocked reports a state transition to the service; callers hold
// s.mu and call it after every mutation of a job's state.
func (s *Scheduler) noteLocked(j *Job) {
	if s.onUpdate != nil {
		s.onUpdate(j)
	}
}

// NewScheduler starts a pool of workers feeding jobs through run. The
// job history is bounded: once more than retain jobs exist, the oldest
// finished ones are evicted (queued and running jobs never are), so an
// always-on server does not grow without bound. retain <= 0 means the
// default of 10000.
func NewScheduler(workers, retain int, run runFunc) *Scheduler {
	if retain <= 0 {
		retain = 10000
	}
	s := &Scheduler{
		run:     run,
		workers: workers,
		retain:  retain,
		jobs:    make(map[string]*Job),
		counts:  make(map[string]int),
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// ErrShuttingDown is returned by Submit after Shutdown has begun.
var ErrShuttingDown = fmt.Errorf("service: shutting down")

// pruneLocked evicts the oldest finished jobs beyond the retention cap;
// callers hold s.mu.
func (s *Scheduler) pruneLocked() {
	excess := len(s.order) - s.retain
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		terminal := j.state == JobDone || j.state == JobFailed || j.state == JobCanceled
		if excess > 0 && terminal {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// newJobLocked files a new job; callers hold s.mu.
func (s *Scheduler) newJobLocked(graphID, alg string, opt chaos.Options) *Job {
	s.nextID++
	j := &Job{
		ID:         fmt.Sprintf("j%d", s.nextID),
		Graph:      graphID,
		Algorithm:  alg,
		Options:    opt,
		enqueuedAt: time.Now().UTC(),
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.counts[alg]++
	s.pruneLocked() // the new job is not yet terminal, so never evicted
	return j
}

// Submit enqueues a job.
func (s *Scheduler) Submit(graphID, alg string, opt chaos.Options) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobView{}, ErrShuttingDown
	}
	j := s.newJobLocked(graphID, alg, opt)
	j.state = JobQueued
	s.queue = append(s.queue, j)
	s.noteLocked(j)
	s.cond.Signal()
	return j.view(), nil
}

// AdmitCached files an already-answered job (a result-cache hit) directly
// in the done state, so clients observe the same lifecycle either way.
func (s *Scheduler) AdmitCached(graphID, alg string, opt chaos.Options, res *chaos.Result, rep *chaos.Report) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobView{}, ErrShuttingDown
	}
	j := s.newJobLocked(graphID, alg, opt)
	j.state = JobDone
	j.cacheHit = true
	j.result = res
	j.report = rep
	j.finishedAt = j.enqueuedAt
	s.noteLocked(j)
	return j.view(), nil
}

// Get snapshots the job with the given id, lazily rehydrating the
// result payload of a journal-restored done job from the disk store.
func (s *Scheduler) Get(id string) (JobView, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobView{}, false
	}
	needsHydration := j.state == JobDone && j.result == nil && s.hydrate != nil
	v := j.view()
	s.mu.Unlock()
	if !needsHydration {
		return v, true
	}
	// Hydration reads the disk store; doing it under s.mu would stall
	// every worker transition and submission behind one HTTP GET. The
	// payload for a key is immutable, so filling it in after re-locking
	// cannot race to a wrong value (a concurrent Get at worst loads the
	// same blob twice).
	res, rep, ok := s.hydrate(v.Graph, v.Algorithm, j.Options)
	if !ok {
		return v, true // blob evicted or lost: the view just lacks a result
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.result == nil {
		j.result, j.report = res, rep
	}
	return j.view(), true
}

// List snapshots every job in submission order.
func (s *Scheduler) List() []JobView {
	return s.ListFiltered(JobFilter{})
}

// JobFilter selects and pages a job listing.
type JobFilter struct {
	// State keeps only jobs in this state ("" = all).
	State JobState
	// After resumes the listing just past this job id (exclusive
	// cursor). The id itself need not still exist — history eviction
	// may have removed it — because ids are ordered: jN sorts by N.
	After string
	// Limit caps the page size (0 = unlimited).
	Limit int
}

// ListFiltered snapshots jobs in submission order, restricted by f.
// Pagination protocol: pass the last id of one page as After for the
// next; a short (or empty) page means the listing is exhausted.
func (s *Scheduler) ListFiltered(f JobFilter) []JobView {
	afterSeq := -1
	if f.After != "" {
		if seq, ok := jobSeq(f.After); ok {
			afterSeq = seq
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := []JobView{}
	for _, id := range s.order {
		if afterSeq >= 0 {
			if seq, ok := jobSeq(id); ok && seq <= afterSeq {
				continue
			}
		}
		j := s.jobs[id]
		if f.State != "" && j.state != f.State {
			continue
		}
		out = append(out, j.view())
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// jobSeq extracts the numeric part of a job id ("j42" -> 42). Ids are
// assigned from a single counter, so the sequence orders submissions
// even across restarts.
func jobSeq(id string) (int, bool) {
	if len(id) < 2 || id[0] != 'j' {
		return 0, false
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Cancel stops a job. A queued job moves to JobCanceled immediately; a
// running job gets its context canceled and stops at the simulation's
// next iteration boundary (the returned view still says "running" with
// canceling set — poll until the worker records the final state).
// Finished jobs are immutable and report a state conflict.
func (s *Scheduler) Cancel(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, &notFoundError{what: "job", id: id}
	}
	switch j.state {
	case JobQueued:
		j.state = JobCanceled
		j.finishedAt = time.Now().UTC()
		s.noteLocked(j)
		// The job stays in s.queue; workers skip non-queued entries.
		return j.view(), nil
	case JobRunning:
		if !j.canceling {
			j.canceling = true
			j.cancel() // observed at the next iteration boundary
			// Journal the accepted cancellation: if the process dies
			// before the boundary, recovery must cancel the job, not
			// rerun it to completion.
			s.noteLocked(j)
		}
		return j.view(), nil // idempotent: repeat cancels just re-report
	default:
		return j.view(), fmt.Errorf("service: job %s is already %s", id, j.state)
	}
}

// worker pops queued jobs until shutdown.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		j := s.queue[0]
		s.queue = s.queue[1:]
		if j.state != JobQueued { // canceled while waiting
			s.mu.Unlock()
			continue
		}
		j.state = JobRunning
		j.startedAt = time.Now().UTC()
		ctx, cancel := context.WithCancel(context.Background())
		j.cancel = cancel
		s.running++
		s.noteLocked(j)
		s.mu.Unlock()

		res, rep, err := s.run(ctx, j)
		cancel()

		s.mu.Lock()
		s.running--
		j.cancel = nil
		j.finishedAt = time.Now().UTC()
		switch {
		case err == nil:
			j.state = JobDone
			j.result = res
			j.report = rep
		case errors.Is(err, context.Canceled) && j.canceling:
			j.state = JobCanceled
			j.err = "canceled while running; stopped at an iteration boundary"
		default:
			j.state = JobFailed
			j.err = err.Error()
		}
		s.noteLocked(j)
		s.mu.Unlock()
	}
}

// Shutdown stops accepting submissions, cancels still-queued jobs, and
// waits for the running ones to drain (or ctx to expire).
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	for _, j := range s.queue {
		if j.state == JobQueued {
			j.state = JobCanceled
			j.err = "canceled at shutdown before running"
			j.finishedAt = time.Now().UTC()
			s.noteLocked(j)
		}
	}
	s.queue = nil
	s.cond.Broadcast()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: shutdown timed out with jobs still running: %w", ctx.Err())
	}
}

// schedStats is the scheduler's contribution to /v1/stats.
type schedStats struct {
	queueDepth   int
	running      int
	jobs         map[string]int
	perAlgorithm map[string]int
}

func (s *Scheduler) stats() schedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := schedStats{
		running:      s.running,
		jobs:         make(map[string]int),
		perAlgorithm: make(map[string]int),
	}
	for _, j := range s.jobs {
		st.jobs[string(j.state)]++
		if j.state == JobQueued {
			st.queueDepth++
		}
	}
	for alg, n := range s.counts {
		st.perAlgorithm[alg] = n
	}
	return st
}
