package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"chaos"
)

// TestSchedulerQueueRingCompaction is the regression test for the queue
// pinning bug: popping with queue = queue[1:] kept every popped *Job
// reachable through the backing array for the life of the scheduler.
// The ring-head pop must nil slots immediately and compact the dead
// prefix, so after a full drain nothing in the backing array pins a job.
func TestSchedulerQueueRingCompaction(t *testing.T) {
	const jobs = 100
	g := newGate()
	s := NewScheduler(SchedulerConfig{Workers: 1}, g.run)
	defer s.Shutdown(context.Background())

	for i := 0; i < jobs; i++ {
		if _, err := s.Submit("g", "PR", chaos.Options{Seed: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	close(g.release)
	waitFor(t, "all jobs done", func() bool { return g.runs.Load() == jobs })
	waitFor(t, "queue drained", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.queueLenLocked() == 0
	})

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.queued != 0 {
		t.Errorf("queued counter = %d after drain, want 0", s.queued)
	}
	// The whole backing array — not just the live window — must be free
	// of job pointers: a non-nil slot behind the head is exactly the
	// leak this fix removes.
	backing := s.queue[:cap(s.queue)]
	for i, j := range backing {
		if j != nil {
			t.Fatalf("backing array slot %d still pins job %s after drain", i, j.ID)
		}
	}
}

// TestSchedulerQueueBound: admission control rejects the submission
// that would exceed MaxQueue with *QueueFullError, keeps FIFO order for
// the admitted ones, and admits again once the queue drains.
func TestSchedulerQueueBound(t *testing.T) {
	g := newGate()
	s := NewScheduler(SchedulerConfig{Workers: 1, MaxQueue: 3}, g.run)
	defer func() {
		close(g.release)
		s.Shutdown(context.Background())
	}()

	first, err := s.Submit("g", "PR", chaos.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first job running", func() bool {
		jv, _ := s.Get(first.ID)
		return jv.State == JobRunning
	})
	// The running job does not occupy the queue: three more fit.
	var admitted []string
	for i := 0; i < 3; i++ {
		jv, err := s.Submit("g", "PR", chaos.Options{Seed: int64(i + 2)})
		if err != nil {
			t.Fatalf("submission %d within the bound: %v", i, err)
		}
		admitted = append(admitted, jv.ID)
	}
	_, err = s.Submit("g", "PR", chaos.Options{Seed: 99})
	qf, ok := err.(*QueueFullError)
	if !ok {
		t.Fatalf("over-bound submission: %v, want *QueueFullError", err)
	}
	if qf.Depth != 3 || qf.Max != 3 {
		t.Errorf("QueueFullError %+v, want depth 3 max 3", qf)
	}
	if ra := qf.RetryAfterSeconds(); ra < 1 || ra > 60 {
		t.Errorf("RetryAfterSeconds = %d, want within [1, 60]", ra)
	}

	// Canceling a queued job frees a slot immediately.
	if _, err := s.Cancel(admitted[1]); err != nil {
		t.Fatal(err)
	}
	refill, err := s.Submit("g", "PR", chaos.Options{Seed: 100})
	if err != nil {
		t.Fatalf("submission after a queued cancel: %v", err)
	}

	// Drain everything; the admitted jobs ran in FIFO order.
	for i := 0; i < 4; i++ {
		g.release <- struct{}{}
	}
	waitFor(t, "all jobs finished", func() bool {
		jv, _ := s.Get(refill.ID)
		return jv.State == JobDone
	})
	if jv, _ := s.Get(admitted[1]); jv.State != JobCanceled {
		t.Errorf("canceled job state %s", jv.State)
	}
}

// TestSubmitQueueFull429: the HTTP layer maps QueueFullError to 429
// with a Retry-After header.
func TestSubmitQueueFull429(t *testing.T) {
	svc := New(Config{Workers: 1, BaseOptions: labOptions, MaxQueue: 1})
	t.Cleanup(func() { svc.Shutdown(context.Background()) })
	// Replace nothing: saturate with real jobs on a real (tiny) graph.
	if _, err := svc.RegisterGraph(GraphSpec{Name: "g", Type: "rmat", Scale: 6, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	h := svc.Handler()
	submit := func(seed int) *httptest.ResponseRecorder {
		body := fmt.Sprintf(`{"graph":"g","algorithm":"PR","options":{"seed":%d,"maxIterations":50}}`, seed)
		return postJSON(t, h, "/v1/jobs", body)
	}
	// Saturate: one running (eventually), one queued, then overflow.
	// Submissions are fast relative to a run, but a burst larger than
	// worker+queue capacity guarantees at least one 429 regardless of
	// how quickly the worker drains.
	var got429 *httptest.ResponseRecorder
	for i := 0; i < 50 && got429 == nil; i++ {
		if w := submit(i + 1); w.Code == http.StatusTooManyRequests {
			got429 = w
		} else if w.Code != http.StatusAccepted {
			t.Fatalf("submission %d: unexpected status %d: %s", i, w.Code, w.Body.String())
		}
	}
	if got429 == nil {
		t.Fatal("50 rapid submissions against a 1-worker, 1-slot queue never hit 429")
	}
	ra := got429.Header().Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without Retry-After")
	}
	if n, err := strconv.Atoi(ra); err != nil || n < 1 {
		t.Errorf("Retry-After = %q, want a positive integer of seconds", ra)
	}
	if !strings.Contains(got429.Body.String(), "queue is full") {
		t.Errorf("429 body %q", got429.Body.String())
	}
}

// TestListFilteredAfterEvictedCursor: a pagination cursor whose job id
// has been evicted from history still resumes correctly — ids order
// the sequence, so the listing continues just past the missing id.
func TestListFilteredAfterEvictedCursor(t *testing.T) {
	g := newGate()
	s := NewScheduler(SchedulerConfig{Workers: 1, Retain: 3}, g.run)
	defer s.Shutdown(context.Background())

	var ids []string
	for i := 0; i < 6; i++ {
		jv, err := s.Submit("g", "PR", chaos.Options{Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, jv.ID)
		g.release <- struct{}{}
		waitFor(t, "job done", func() bool {
			got, ok := s.Get(jv.ID)
			return ok && got.State == JobDone
		})
	}
	// History holds at most 3 jobs now; the first ones are gone.
	if _, ok := s.Get(ids[0]); ok {
		t.Fatalf("job %s should have been evicted", ids[0])
	}
	// Cursor at the evicted first id: the page must hold exactly the
	// surviving jobs after it, in order, with no duplicates or error.
	page := s.ListFiltered(JobFilter{After: ids[0]})
	if len(page) != 3 {
		t.Fatalf("after evicted cursor %s: %d jobs, want the 3 survivors", ids[0], len(page))
	}
	for i, jv := range page {
		if jv.ID != ids[3+i] {
			t.Errorf("page[%d] = %s, want %s", i, jv.ID, ids[3+i])
		}
	}
	// An evicted cursor in the middle of the evicted range behaves the
	// same: everything with a later sequence number.
	if page := s.ListFiltered(JobFilter{After: ids[1], Limit: 2}); len(page) != 2 || page[0].ID != ids[3] {
		t.Fatalf("limited page after evicted cursor: %+v", page)
	}
}

// TestListStripsPayloads: listings carry no Result/Report (uniform and
// cheap — journal-restored done jobs could not offer them anyway), the
// single-job GET still does.
func TestListStripsPayloads(t *testing.T) {
	g := newGate()
	s := NewScheduler(SchedulerConfig{Workers: 1}, g.run)
	defer s.Shutdown(context.Background())

	jv, err := s.Submit("g", "PR", chaos.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g.release <- struct{}{}
	waitFor(t, "job done", func() bool {
		got, _ := s.Get(jv.ID)
		return got.State == JobDone
	})
	full, _ := s.Get(jv.ID)
	if full.Result == nil || full.Report == nil {
		t.Fatal("GET view lost its payload")
	}
	for _, listed := range s.List() {
		if listed.Result != nil || listed.Report != nil {
			t.Errorf("list view of %s carries a payload", listed.ID)
		}
	}
}

// TestEventHubOrderingUnderConcurrentTransitions: with many jobs
// transitioning concurrently and a subscriber per job, every
// subscriber observes its job's lifecycle in order (queued before
// running before terminal) with hub-wide strictly increasing sequence
// numbers — the contract the SSE stream exposes.
func TestEventHubOrderingUnderConcurrentTransitions(t *testing.T) {
	const jobs = 8
	g := newGate()
	s := NewScheduler(SchedulerConfig{Workers: 4}, g.run)
	defer s.Shutdown(context.Background())

	// Subscriptions must exist before the first transition: subscribe,
	// then submit, per job, collecting concurrently.
	type stream struct {
		id     string
		events []JobEvent
	}
	streams := make([]stream, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		id := fmt.Sprintf("j%d", i+1) // ids are assigned sequentially
		ch, cancel := s.Subscribe(id)
		streams[i].id = id
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer cancel()
			for ev := range ch {
				streams[i].events = append(streams[i].events, ev)
				if ev.Type == EventState && terminal(ev.Job.State) {
					return
				}
			}
		}(i)
	}
	for i := 0; i < jobs; i++ {
		if _, err := s.Submit("g", "PR", chaos.Options{Seed: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	close(g.release)
	wg.Wait()

	rank := map[JobState]int{JobQueued: 0, JobRunning: 1, JobDone: 2, JobFailed: 2, JobCanceled: 2}
	for _, st := range streams {
		if len(st.events) < 3 {
			t.Fatalf("job %s: %d events, want at least queued/running/done", st.id, len(st.events))
		}
		lastSeq := uint64(0)
		lastRank := -1
		for _, ev := range st.events {
			if ev.Job.ID != st.id {
				t.Fatalf("job %s: received event for %s", st.id, ev.Job.ID)
			}
			if ev.Seq <= lastSeq {
				t.Errorf("job %s: sequence regressed %d -> %d", st.id, lastSeq, ev.Seq)
			}
			lastSeq = ev.Seq
			if ev.Type == EventState {
				r := rank[ev.Job.State]
				if r < lastRank {
					t.Errorf("job %s: state %s after a later state", st.id, ev.Job.State)
				}
				lastRank = r
			}
			if ev.Job.Result != nil || ev.Job.Report != nil {
				t.Errorf("job %s: event carries a result payload", st.id)
			}
		}
		final := st.events[len(st.events)-1]
		if final.Type != EventState || final.Job.State != JobDone {
			t.Errorf("job %s: final event %s/%s, want state/done", st.id, final.Type, final.Job.State)
		}
	}
}

// TestProgressTicksFlowToViewsAndEvents: a progress tick filed while a
// job runs appears in the job view, is ordered between the running and
// terminal events for subscribers, and vanishes from the view once the
// job completes (the full report supersedes it).
func TestProgressTicksFlowToViewsAndEvents(t *testing.T) {
	g := newGate()
	s := NewScheduler(SchedulerConfig{Workers: 1}, g.run)
	defer s.Shutdown(context.Background())

	ch, cancel := s.Subscribe("j1")
	defer cancel()
	jv, err := s.Submit("g", "PR", chaos.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job running", func() bool {
		got, _ := s.Get(jv.ID)
		return got.State == JobRunning
	})
	s.mu.Lock()
	job := s.jobs[jv.ID]
	s.mu.Unlock()
	for i := 1; i <= 3; i++ {
		s.NoteProgress(job, chaos.Progress{
			Iterations: i, SimulatedSeconds: float64(i), BytesRead: int64(i) << 20,
			StealsRejected: 2 * i, SpillBytes: int64(i) << 10,
		})
	}
	got, _ := s.Get(jv.ID)
	if got.Progress == nil || got.Progress.Iterations != 3 {
		t.Fatalf("running view progress %+v, want iteration 3", got.Progress)
	}
	if got.Progress.StealsRejected != 6 || got.Progress.SpillBytes != 3<<10 {
		t.Fatalf("running view progress %+v lost steal/spill counters", got.Progress)
	}
	g.release <- struct{}{}
	waitFor(t, "job done", func() bool {
		got, _ := s.Get(jv.ID)
		return got.State == JobDone
	})
	if got, _ := s.Get(jv.ID); got.Progress != nil {
		t.Error("done view still carries live progress")
	}

	// Event order: queued, running, 3 progress ticks, done.
	var types []string
	var states []JobState
	deadline := time.After(30 * time.Second)
	for len(types) < 6 {
		select {
		case ev := <-ch:
			types = append(types, ev.Type)
			states = append(states, ev.Job.State)
		case <-deadline:
			t.Fatalf("timed out with events %v", types)
		}
	}
	want := []string{EventState, EventState, EventProgress, EventProgress, EventProgress, EventState}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("event sequence %v (states %v), want %v", types, states, want)
		}
	}
	if states[5] != JobDone {
		t.Errorf("final event state %s, want done", states[5])
	}
}

// TestEventHubDropsLaggingSubscriber: a subscriber that never reads is
// disconnected (channel closed) when a state event finds its buffer
// full, instead of blocking the scheduler or silently losing the
// transition; progress ticks just drop.
func TestEventHubDropsLaggingSubscriber(t *testing.T) {
	h := newEventHub()
	ch, cancel := h.subscribe("j1")
	defer cancel()
	// Fill the buffer with progress ticks, then overflow with more:
	// progress overflow drops events but keeps the subscription.
	for i := 0; i < subBuffer+8; i++ {
		h.publish("j1", EventProgress, JobView{ID: "j1"})
	}
	if len(ch) != subBuffer {
		t.Fatalf("buffered %d events, want full buffer %d", len(ch), subBuffer)
	}
	// A state event against the still-full buffer disconnects.
	h.publish("j1", EventState, JobView{ID: "j1", State: JobDone})
	drained := 0
	for range ch { // closed after the buffered events
		drained++
	}
	if drained != subBuffer {
		t.Errorf("drained %d events from the dropped subscriber, want %d", drained, subBuffer)
	}
}

// TestShutdownDisconnectsEventStreams: beginning shutdown closes every
// subscriber channel immediately — even with the job still running —
// so SSE handlers (never idle from the HTTP server's perspective)
// release the drain budget; and a subscription opened during drain
// comes back already closed.
func TestShutdownDisconnectsEventStreams(t *testing.T) {
	g := newGate()
	s := NewScheduler(SchedulerConfig{Workers: 1}, g.run)

	jv, err := s.Submit("g", "PR", chaos.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job running", func() bool {
		got, _ := s.Get(jv.ID)
		return got.State == JobRunning
	})
	ch, cancel := s.Subscribe(jv.ID)
	defer cancel()
	for len(ch) > 0 { // drain the queued/running transitions
		<-ch
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Shutdown(context.Background()) // blocks on the gated run
	}()
	select {
	case _, open := <-ch:
		if open {
			t.Fatal("received an event instead of a close")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("subscriber not disconnected at shutdown")
	}
	if late, _ := s.Subscribe(jv.ID); late != nil {
		if _, open := <-late; open {
			t.Fatal("subscription during drain delivered events")
		}
	}
	close(g.release) // let the run finish and the shutdown complete
	<-done
}

// promLineRE validates one exposition line: a comment or a sample of
// the form name{labels} value.
var promLineRE = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*` +
		`|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? [-+0-9.eE]+(e[-+]?[0-9]+)?)$`)

// checkPromText validates the exposition format strictly enough to
// catch real breakage: every line parses, every sample's family was
// declared by a preceding TYPE line.
func checkPromText(t *testing.T, text string) {
	t.Helper()
	typed := map[string]bool{}
	n := 0
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if !promLineRE.MatchString(line) {
			t.Fatalf("unparseable exposition line %q", line)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			typed[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		// Histogram samples carry the family name plus a fixed suffix
		// (x_bucket/x_sum/x_count under "# TYPE x histogram").
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if s, ok := strings.CutSuffix(name, suf); ok && typed[s] {
				base = s
				break
			}
		}
		if !typed[base] {
			t.Errorf("sample %q precedes its TYPE declaration", line)
		}
		n++
	}
	if n == 0 {
		t.Fatal("no samples in exposition")
	}
}

// TestMetricsParsesUnderLoad scrapes /metrics concurrently with job
// traffic and checks every scrape parses as Prometheus text exposition
// with the expected families present.
func TestMetricsParsesUnderLoad(t *testing.T) {
	svc := newTestService(t, 2)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	if code, _ := doJSON(t, client, http.MethodPost, ts.URL+"/v1/graphs",
		GraphSpec{Name: "g", Type: "rmat", Scale: 6, Seed: 1}, nil); code != http.StatusCreated {
		t.Fatal("register failed")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // job traffic while scraping
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs",
				jobRequest{Graph: "g", Algorithm: "PR", Options: jobOptions{Seed: int64(i%5 + 1)}}, nil)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	for i := 0; i < 25; i++ {
		resp, err := client.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("content type %q", ct)
		}
		var b strings.Builder
		if _, err := bufio.NewReader(resp.Body).WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		checkPromText(t, b.String())
		for _, want := range []string{"chaos_jobs{state=\"done\"}", "chaos_queue_depth", "chaos_running",
			"chaos_result_cache_hits_total", "chaos_workers 2"} {
			if !strings.Contains(b.String(), want) {
				t.Fatalf("scrape %d missing %q:\n%s", i, want, b.String())
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestJobEventsSSE drives the real SSE endpoint end to end: the stream
// opens with a state snapshot, relays transitions, and closes after
// the terminal event. Any progress ticks the run emits in between must
// be well-formed and ordered.
func TestJobEventsSSE(t *testing.T) {
	svc := newTestService(t, 1)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	if code, _ := doJSON(t, client, http.MethodPost, ts.URL+"/v1/graphs",
		GraphSpec{Name: "g", Type: "rmat", Scale: 7, Seed: 1}, nil); code != http.StatusCreated {
		t.Fatal("register failed")
	}
	var jv JobView
	if code, body := doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs",
		jobRequest{Graph: "g", Algorithm: "PR", Options: jobOptions{Machines: 2, Seed: 7}}, &jv); code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}

	resp, err := client.Get(ts.URL + "/v1/jobs/" + jv.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	// Parse the stream to completion: the handler closes it after the
	// terminal state event.
	var events []JobEvent
	scanner := bufio.NewScanner(resp.Body)
	var evType string
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			evType = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var ev JobEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("undecodable SSE data %q: %v", line, err)
			}
			if ev.Type != evType {
				t.Errorf("frame event name %q vs payload type %q", evType, ev.Type)
			}
			events = append(events, ev)
		case line == "":
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	if events[0].Type != EventState {
		t.Fatalf("stream must open with a state snapshot, got %s", events[0].Type)
	}
	final := events[len(events)-1]
	if final.Type != EventState || final.Job.State != JobDone {
		t.Fatalf("stream must end at the terminal state, got %s/%s", final.Type, final.Job.State)
	}
	lastIter := 0
	for _, ev := range events {
		if ev.Job.ID != jv.ID {
			t.Fatalf("event for job %s on %s's stream", ev.Job.ID, jv.ID)
		}
		if ev.Job.Result != nil || ev.Job.Report != nil {
			t.Error("SSE event carries a result payload")
		}
		if ev.Type == EventProgress {
			if ev.Job.Progress == nil {
				t.Fatal("progress event without a progress snapshot")
			}
			if ev.Job.Progress.Iterations <= lastIter {
				t.Errorf("progress iterations regressed: %d after %d", ev.Job.Progress.Iterations, lastIter)
			}
			lastIter = ev.Job.Progress.Iterations
		}
	}
	// The done job's full payload is still one GET away.
	full := pollJob(t, client, ts.URL, jv.ID)
	if full.Result == nil || full.Report == nil {
		t.Error("GET /v1/jobs/{id} after the stream lost the payload")
	}

	// A stream opened on an already-finished job is just the snapshot.
	resp2, err := client.Get(ts.URL + "/v1/jobs/" + jv.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var b strings.Builder
	if _, err := bufio.NewReader(resp2.Body).WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(b.String(), "event: "); got != 1 {
		t.Fatalf("terminal-job stream held %d events, want 1 snapshot:\n%s", got, b.String())
	}

	// Unknown jobs 404 before any stream starts.
	resp3, err := client.Get(ts.URL + "/v1/jobs/j999/events")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Errorf("events for unknown job: %d, want 404", resp3.StatusCode)
	}
}

// TestComputeBudgetShares: the scheduler divides its compute budget by
// the concurrency a starting job will see — a lone job on an idle pool
// gets the whole budget, while jobs started out of a burst divide it
// by the pool size, so the shares of a loaded pool sum to at most the
// budget instead of every job taking GOMAXPROCS.
func TestComputeBudgetShares(t *testing.T) {
	g := newGate()
	s := NewScheduler(SchedulerConfig{Workers: 2, ComputeBudget: 8}, g.run)
	defer func() {
		close(g.release)
		s.Shutdown(context.Background())
	}()

	// A lone job on an idle pool: the whole budget.
	a, _ := s.Submit("g", "PR", chaos.Options{Seed: 1})
	waitFor(t, "first job running", func() bool {
		jv, _ := s.Get(a.ID)
		return jv.State == JobRunning
	})
	// A job starting beside it divides by the pool's concurrency.
	b, _ := s.Submit("g", "PR", chaos.Options{Seed: 2})
	waitFor(t, "second job running", func() bool {
		jv, _ := s.Get(b.ID)
		return jv.State == JobRunning
	})
	// Backlog counts toward anticipated concurrency: jobs queued behind
	// a full pool will also start with the divided share.
	c, _ := s.Submit("g", "PR", chaos.Options{Seed: 3})
	d, _ := s.Submit("g", "PR", chaos.Options{Seed: 4})
	g.release <- struct{}{} // finish one running job; a queued one starts
	g.release <- struct{}{}
	waitFor(t, "backlog jobs running", func() bool {
		cv, _ := s.Get(c.ID)
		dv, _ := s.Get(d.ID)
		return cv.State == JobRunning && dv.State == JobRunning
	})

	s.mu.Lock()
	shareA := s.jobs[a.ID].computeShare
	shareB := s.jobs[b.ID].computeShare
	shareC := s.jobs[c.ID].computeShare
	shareD := s.jobs[d.ID].computeShare
	s.mu.Unlock()
	if shareA != 8 {
		t.Errorf("lone job's share = %d, want the whole budget 8", shareA)
	}
	if shareB != 4 {
		t.Errorf("second job's share = %d, want 8/2 = 4", shareB)
	}
	// C and D each started with the pool saturated: 8/2 = 4 apiece, so
	// the concurrently running shares sum to the budget.
	if shareC != 4 || shareD != 4 {
		t.Errorf("backlog shares = %d/%d, want 4/4 (sum within the budget)", shareC, shareD)
	}
}
