package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Journal is an append-only log of framed records split across numbered
// segment files (journal-<seq>.wal). Each record is framed as
//
//	[4B little-endian payload length][4B CRC-32C of payload][payload]
//
// Replay scans segments in sequence order and stops at the first frame
// that is incomplete or fails its checksum — a torn write from a crash
// mid-append — truncating the segment there so the file ends on a
// record boundary again. Appends go to the newest segment; Rotate seals
// it and starts the next one (the compaction hook, see WAL.Compact).
//
// Durability is batched: Append returns after the buffered write, and a
// background flusher fsyncs dirty segments every SyncInterval. Sync
// forces an immediate fsync for records that must not wait.
type Journal struct {
	dir      string
	interval time.Duration

	mu    sync.Mutex
	f     *os.File // current segment, positioned at its end
	seq   int      // current segment number
	dirty bool     // written since the last fsync
	syncs int      // fsyncs actually issued (batching effectiveness, /metrics)
	err   error    // sticky write/sync error: the journal is dead once a write is lost
	hook  SpanHook // observational span reporter, nil when tracing is off
	stop  chan struct{}
	done  chan struct{}

	closeOnce sync.Once
	closeErr  error
}

const (
	frameHeaderBytes = 8
	// maxRecordBytes rejects absurd frames on both sides: an append this
	// large is a bug, and a replayed length this large is corruption.
	maxRecordBytes = 1 << 28

	segmentPrefix = "journal-"
	segmentSuffix = ".wal"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// DefaultSyncInterval is the fsync batching window: the longest an
// acknowledged Append can stay non-durable.
const DefaultSyncInterval = 5 * time.Millisecond

func segmentName(seq int) string {
	return fmt.Sprintf("%s%08d%s", segmentPrefix, seq, segmentSuffix)
}

func parseSegmentName(name string) (int, bool) {
	if len(name) != len(segmentPrefix)+8+len(segmentSuffix) ||
		name[:len(segmentPrefix)] != segmentPrefix ||
		name[len(name)-len(segmentSuffix):] != segmentSuffix {
		return 0, false
	}
	seq := 0
	for _, c := range name[len(segmentPrefix) : len(segmentPrefix)+8] {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + int(c-'0')
	}
	return seq, true
}

// OpenJournal opens (creating if necessary) the journal in dir, replays
// every surviving record into replay in append order, and leaves the
// journal ready for appends at the end of the newest segment. A torn
// tail is truncated and reported through torn (recovery proceeds — a
// torn final record is the expected crash signature, not an error).
func OpenJournal(dir string, interval time.Duration, replay func(payload []byte) error) (j *Journal, torn int, err error) {
	if interval <= 0 {
		interval = DefaultSyncInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, 0, err
	}
	seqs, err := listSegments(dir)
	if err != nil {
		return nil, 0, err
	}
	if len(seqs) == 0 {
		seqs = []int{1}
	}
	for i, seq := range seqs {
		last := i == len(seqs)-1
		t, err := replaySegment(filepath.Join(dir, segmentName(seq)), last, replay)
		if err != nil {
			return nil, 0, fmt.Errorf("durable: replaying %s: %w", segmentName(seq), err)
		}
		torn += t
	}
	cur := seqs[len(seqs)-1]
	f, err := os.OpenFile(filepath.Join(dir, segmentName(cur)), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, 0, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, 0, err
	}
	if err := syncDir(dir); err != nil { // the segment file itself must survive a crash
		f.Close()
		return nil, 0, err
	}
	j = &Journal{
		dir:      dir,
		interval: interval,
		f:        f,
		seq:      cur,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go j.flusher()
	return j, torn, nil
}

// listSegments returns the segment sequence numbers present in dir,
// ascending.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []int
	for _, e := range entries {
		if seq, ok := parseSegmentName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}

// replaySegment feeds every complete record of one segment file to
// replay. When the segment is the newest one, an incomplete or
// checksum-failing tail is truncated away (torn write); a sealed
// segment must scan clean and fails the open otherwise.
//
// Truncation is guarded: a crash mid-append can only ever damage the
// FINAL frame of the ACTIVE segment, so if any valid frame exists after
// the broken one — or the break is in a sealed segment at all — this is
// mid-file corruption (bit rot, partial-sector damage), and truncating
// or skipping would silently destroy acknowledged records; the open
// fails loudly instead and leaves the file for the operator.
func replaySegment(path string, truncateTorn bool, replay func([]byte) error) (torn int, err error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return 0, err
	}
	off := 0
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return 0, nil // clean end on a record boundary
		}
		if len(rest) < frameHeaderBytes {
			break // torn header
		}
		n := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if n > maxRecordBytes || len(rest) < frameHeaderBytes+int(n) {
			break // torn or corrupt payload length
		}
		payload := rest[frameHeaderBytes : frameHeaderBytes+int(n)]
		if crc32.Checksum(payload, crcTable) != sum {
			break // torn payload (crash mid-write) or bit rot
		}
		if err := replay(payload); err != nil {
			return 0, err
		}
		off += frameHeaderBytes + int(n)
	}
	if !truncateTorn {
		// Sealed segments were fsynced before rotation and any torn
		// tail was truncated when they were still active, so they must
		// scan to a clean end: a broken frame here is corruption, and
		// skipping the rest would silently drop acknowledged records.
		return 0, fmt.Errorf("durable: %s: sealed journal segment has a broken frame at offset %d — corruption, refusing to drop the records after it", filepath.Base(path), off)
	}
	if at, found := nextValidFrame(data, off+1); found {
		return 0, fmt.Errorf("durable: %s: broken frame at offset %d but a valid frame follows at %d — mid-file corruption, refusing to truncate acknowledged records", filepath.Base(path), off, at)
	}
	if err := f.Truncate(int64(off)); err != nil {
		return 0, err
	}
	if err := f.Sync(); err != nil {
		return 0, err
	}
	return 1, nil
}

// nextValidFrame scans forward from offset `from` for a complete frame
// with a matching checksum — proof that the break before it is not a
// torn tail. A torn append leaves at most one partial frame, so the
// scan window is one max-size frame past the break.
func nextValidFrame(data []byte, from int) (int, bool) {
	limit := len(data) - frameHeaderBytes
	if max := from + maxRecordBytes + frameHeaderBytes; limit > max {
		limit = max
	}
	for o := from; o <= limit; o++ {
		n := binary.LittleEndian.Uint32(data[o:])
		if n == 0 || n > maxRecordBytes || o+frameHeaderBytes+int(n) > len(data) {
			continue
		}
		sum := binary.LittleEndian.Uint32(data[o+4:])
		if crc32.Checksum(data[o+frameHeaderBytes:o+frameHeaderBytes+int(n)], crcTable) == sum {
			return o, true
		}
	}
	return 0, false
}

// Append journals one payload. It returns once the frame is written to
// the OS; the flusher makes it durable within the sync interval.
func (j *Journal) Append(payload []byte) error {
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("durable: record of %d bytes exceeds the %d-byte journal limit", len(payload), maxRecordBytes)
	}
	frame := make([]byte, frameHeaderBytes+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	copy(frame[frameHeaderBytes:], payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	start := time.Now()
	if _, err := j.f.Write(frame); err != nil {
		j.err = fmt.Errorf("durable: journal append: %w", err)
		return j.err
	}
	j.dirty = true
	if j.hook != nil {
		j.hook(Span{Op: "append", Start: start, Dur: time.Since(start), Bytes: len(payload)})
	}
	return nil
}

// Sync blocks until every appended record is fsynced.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if j.err != nil {
		return j.err
	}
	if !j.dirty {
		return nil
	}
	start := time.Now()
	if err := j.f.Sync(); err != nil {
		j.err = fmt.Errorf("durable: journal sync: %w", err)
		return j.err
	}
	j.dirty = false
	j.syncs++
	if j.hook != nil {
		j.hook(Span{Op: "fsync", Start: start, Dur: time.Since(start)})
	}
	return nil
}

// Syncs returns how many fsyncs the journal has issued — appends per
// sync is the batching win /metrics reports.
func (j *Journal) Syncs() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncs
}

// flusher is the fsync batcher: it amortizes one fsync over every
// record appended in the interval.
func (j *Journal) flusher() {
	defer close(j.done)
	ticker := time.NewTicker(j.interval)
	defer ticker.Stop()
	for {
		select {
		case <-j.stop:
			return
		case <-ticker.C:
			j.Sync() // sticky error surfaces on the next Append/Sync
		}
	}
}

// Rotate seals the current segment (fsyncing its tail) and directs
// subsequent appends to a fresh one. It returns the sealed segment's
// sequence number; DropThrough(sealed) discards it and its predecessors
// once a snapshot has made them redundant.
func (j *Journal) Rotate() (sealed int, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	start := time.Now()
	if err := j.syncLocked(); err != nil {
		return 0, err
	}
	next, err := os.OpenFile(filepath.Join(j.dir, segmentName(j.seq+1)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("durable: rotating journal: %w", err)
	}
	if err := syncDir(j.dir); err != nil {
		next.Close()
		return 0, err
	}
	j.f.Close()
	sealed = j.seq
	j.f = next
	j.seq++
	if j.hook != nil {
		j.hook(Span{Op: "rotate", Start: start, Dur: time.Since(start)})
	}
	return sealed, nil
}

// DropThrough removes every sealed segment with sequence number <= seq.
// Called after a snapshot has captured the state those segments rebuilt.
func (j *Journal) DropThrough(seq int) error {
	j.mu.Lock()
	cur := j.seq
	j.mu.Unlock()
	if seq >= cur {
		return fmt.Errorf("durable: refusing to drop the active journal segment %d", cur)
	}
	seqs, err := listSegments(j.dir)
	if err != nil {
		return err
	}
	for _, s := range seqs {
		if s <= seq {
			if err := os.Remove(filepath.Join(j.dir, segmentName(s))); err != nil {
				return err
			}
		}
	}
	return syncDir(j.dir)
}

// Close stops the flusher and fsyncs the tail. Idempotent: repeated
// closes return the first close's result.
func (j *Journal) Close() error {
	j.closeOnce.Do(func() {
		close(j.stop)
		<-j.done
		j.mu.Lock()
		defer j.mu.Unlock()
		j.closeErr = j.syncLocked()
		if cerr := j.f.Close(); j.closeErr == nil && cerr != nil {
			j.closeErr = cerr
		}
		if j.err == nil {
			j.err = fmt.Errorf("durable: journal closed")
		}
	})
	return j.closeErr
}

// syncDir fsyncs a directory so renames and file creations inside it
// survive a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
