package durable

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// WAL combines the journal and the snapshot into one recovery unit: on
// open it hands back the latest snapshot plus every journal record that
// survives checksumming, and while running it appends records and
// periodically compacts them into a fresh snapshot.
type WAL struct {
	dir     string
	journal *Journal

	mu        sync.Mutex
	appended  int        // records since the last compaction (snapshot policy input)
	total     int        // records appended over the WAL's lifetime (this process)
	snapshots int        // successful compactions (this process)
	hook      SpanHook   // observational span reporter, nil when tracing is off
	compactMu sync.Mutex // serializes Compact callers
}

// WALStats snapshots the WAL's counters for /metrics and /v1/stats.
// All counts are per-process (since this WAL was opened), matching the
// Prometheus counter convention of resetting on restart.
type WALStats struct {
	// Records counts journal records appended since open (replayed
	// records from a previous process count once, at open).
	Records int `json:"records"`
	// SinceCompact counts records appended since the last compacting
	// snapshot — the snapshot-every policy input.
	SinceCompact int `json:"sinceCompact"`
	// Fsyncs counts fsyncs the journal actually issued; Records much
	// greater than Fsyncs is group commit working.
	Fsyncs int `json:"fsyncs"`
	// Snapshots counts successful compacting snapshots since open.
	Snapshots int `json:"snapshots"`
}

// Recovered is what a WAL found on disk at open time.
type Recovered struct {
	// Snapshot is the raw snapshot JSON, nil when none was taken.
	Snapshot json.RawMessage
	// Records are the journal records appended after (or, around a
	// compaction crash window, slightly before) the snapshot, in append
	// order. Replay must treat them as idempotent upserts.
	Records []Record
	// Torn counts journal tails truncated at a broken frame — the
	// normal signature of a crash mid-append, surfaced for logging.
	Torn int
}

// OpenWAL opens (creating if necessary) the durable state under dir and
// recovers whatever a previous process left. syncInterval <= 0 means
// DefaultSyncInterval.
func OpenWAL(dir string, syncInterval time.Duration) (*WAL, *Recovered, error) {
	rec := &Recovered{}
	var raw json.RawMessage
	if found, err := LoadSnapshot(dir, &raw); err != nil {
		return nil, nil, err
	} else if found {
		rec.Snapshot = raw
	}
	j, torn, err := OpenJournal(dir, syncInterval, func(payload []byte) error {
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			// The frame passed its checksum, so this is a schema bug or
			// foreign file, not a torn write; refuse to guess.
			return fmt.Errorf("durable: undecodable journal record: %w", err)
		}
		rec.Records = append(rec.Records, r)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	rec.Torn = torn
	w := &WAL{dir: dir, journal: j, appended: len(rec.Records), total: len(rec.Records)}
	return w, rec, nil
}

// Append journals one record (see Log).
func (w *WAL) Append(kind string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("durable: encoding %s record: %w", kind, err)
	}
	payload, err := json.Marshal(Record{Kind: kind, Data: data})
	if err != nil {
		return err
	}
	if err := w.journal.Append(payload); err != nil {
		return err
	}
	w.mu.Lock()
	w.appended++
	w.total++
	w.mu.Unlock()
	return nil
}

// Sync blocks until every appended record is fsynced (see Log).
func (w *WAL) Sync() error { return w.journal.Sync() }

// AppendedSinceCompact returns how many records the journal has
// accumulated since the last compaction — the input to the caller's
// snapshot-every policy.
func (w *WAL) AppendedSinceCompact() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appended
}

// Stats snapshots the WAL's counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WALStats{
		Records:      w.total,
		SinceCompact: w.appended,
		Fsyncs:       w.journal.Syncs(),
		Snapshots:    w.snapshots,
	}
}

// Compact bounds replay time: it rotates the journal onto a fresh
// segment, captures the caller's full state, writes it as the new
// snapshot, and only then drops the sealed segments the snapshot made
// redundant.
//
// The rotate-then-capture order is what makes this safe without
// freezing the service: every record in a sealed segment predates the
// capture, so the snapshot subsumes it and the segment can be deleted;
// records appended between the rotation and the capture live in the
// surviving segment and may ALSO be reflected in the snapshot, which is
// why replay must be idempotent (Recovered.Records). A crash anywhere
// in between leaves a superset of the needed records — never a gap.
//
// capture runs without any WAL lock held, so it may take the same locks
// appenders hold.
func (w *WAL) Compact(capture func() (any, error)) error {
	w.compactMu.Lock()
	defer w.compactMu.Unlock()
	sealed, err := w.journal.Rotate()
	if err != nil {
		return err
	}
	w.mu.Lock()
	w.appended = 0 // the new segment starts empty
	w.mu.Unlock()
	start := time.Now()
	state, err := capture()
	if err != nil {
		return fmt.Errorf("durable: capturing snapshot state: %w", err)
	}
	if err := SaveSnapshot(w.dir, state); err != nil {
		return err
	}
	if err := w.journal.DropThrough(sealed); err != nil {
		return err
	}
	w.mu.Lock()
	w.snapshots++
	hook := w.hook
	w.mu.Unlock()
	if hook != nil {
		hook(Span{Op: "snapshot", Start: start, Dur: time.Since(start)})
	}
	return nil
}

// Close fsyncs and closes the journal. The caller should Compact first
// if it wants a fresh snapshot on disk (replay works either way).
func (w *WAL) Close() error { return w.journal.Close() }

var _ Log = (*WAL)(nil)
