package durable

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"testing"
	"time"
)

func key(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprint(i)))
	return hex.EncodeToString(sum[:])
}

func TestResultStorePutGet(t *testing.T) {
	s, err := OpenResultStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key(1)); ok {
		t.Fatal("empty store returned a blob")
	}
	blob := []byte(`{"result":42}`)
	if err := s.Put(key(1), blob); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(1), blob); err != nil { // idempotent
		t.Fatal(err)
	}
	got, ok := s.Get(key(1))
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if err := s.Put("not a key", blob); err == nil {
		t.Error("invalid key accepted")
	}
	st := s.Stats()
	if st.Entries != 1 || st.Bytes != int64(len(blob)) || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestResultStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenResultStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(1), []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(2), []byte("two")); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenResultStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get(key(2)); !ok || string(got) != "two" {
		t.Fatalf("after reopen: %q, %v", got, ok)
	}
	if st := s2.Stats(); st.Entries != 2 {
		t.Errorf("reindexed %d entries, want 2", st.Entries)
	}
}

// TestResultStoreEvictsLRU fills the store past its byte bound and
// checks the coldest blobs go first — including recency learned from
// Get, and recency carried across a reopen via mtimes.
func TestResultStoreEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	blob := bytes.Repeat([]byte("x"), 100)
	s, err := OpenResultStore(dir, 250) // fits two blobs
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(1), blob); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(2), blob); err != nil {
		t.Fatal(err)
	}
	// Touch key(1) so key(2) is now the coldest.
	if _, ok := s.Get(key(1)); !ok {
		t.Fatal("key 1 missing before eviction")
	}
	if err := s.Put(key(3), blob); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key(2)); ok {
		t.Error("key 2 should have been evicted (coldest)")
	}
	if _, ok := s.Get(key(1)); !ok {
		t.Error("key 1 was touched; it must survive")
	}
	if st := s.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats %+v", st)
	}
}

// TestResultStoreRecencyAcrossReopen: eviction order after a restart
// follows file mtimes, not directory iteration order.
func TestResultStoreRecencyAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenResultStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	blob := bytes.Repeat([]byte("y"), 100)
	for i := 1; i <= 3; i++ {
		if err := s.Put(key(i), blob); err != nil {
			t.Fatal(err)
		}
	}
	// Backdate key(2): it becomes the coldest on reopen.
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(s.path(key(2)), old, old); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenResultStore(dir, 250)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(key(2)); ok {
		t.Error("backdated blob should have been evicted at open")
	}
	for _, i := range []int{1, 3} {
		if _, ok := s2.Get(key(i)); !ok {
			t.Errorf("key %d missing after reopen eviction", i)
		}
	}
}
