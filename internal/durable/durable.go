// Package durable is the crash-safe persistence layer under the job
// service: a write-ahead journal with compacting snapshots, plus a
// disk-backed content-addressed result store.
//
// The design splits durability into two tiers with different shapes:
//
//   - Small, ordered facts — graph registrations, job lifecycle
//     transitions, result-store writes — go through the WAL: an
//     append-only journal of length-prefixed, checksummed JSON records
//     (see Journal for the on-disk framing). Appends are cheap buffered
//     writes; an fsync batcher makes the tail durable every
//     SyncInterval, and Sync forces it for records that must not be
//     lost (a registration acknowledged with 201, a result file the
//     journal is about to reference). Replay on boot rebuilds state;
//     a periodic snapshot compacts the journal so replay time is
//     bounded by the state size, not the service's uptime.
//
//   - Large, immutable blobs — finished (Result, Report) payloads —
//     go to the ResultStore, a content-addressed directory tree
//     (results/<key[:2]>/<key>) with size-bounded LRU eviction. Blobs
//     are never journaled; the journal only records that a key was
//     written.
//
// Record replay must be idempotent and convergent (the last record for
// an entity wins): compaction rotates the journal segment before
// capturing the snapshot, so records appended during the capture window
// can appear both in the snapshot and in the surviving segment. See
// WAL.Compact.
//
// The package knows nothing about the service's record schemas; it
// moves opaque kinds and JSON payloads. internal/service defines the
// graph/job/result record types and the recovery logic.
package durable

import "encoding/json"

// Record is one journal entry: a kind tag selecting the payload schema,
// plus the payload itself.
type Record struct {
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data"`
}

// Log is the append-side interface the service writes state changes
// through. *WAL implements it; a nil Log (in-memory mode) means the
// caller skips persistence entirely.
type Log interface {
	// Append journals one record. It returns once the record is in the
	// OS write buffer; durability follows within the sync interval, or
	// immediately after a Sync.
	Append(kind string, v any) error
	// Sync blocks until every appended record is fsynced.
	Sync() error
}
