package durable

import (
	"container/list"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"
)

// ResultStore is a disk-backed content-addressed blob store: key ->
// results/<key[:2]>/<key>. It backs the service's in-memory result
// cache as a second tier, so memoized runs survive restarts. Total size
// is bounded: when the store exceeds maxBytes, the least-recently-used
// blobs are deleted. Recency survives restarts through file mtimes
// (touched on every hit), so a reboot does not reset the eviction
// order.
type ResultStore struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*list.Element // key -> lru element
	lru     *list.List               // front = most recently used
	total   int64

	hits, misses, evictions int
}

type storeEntry struct {
	key  string
	size int64
}

// Result-store keys are hex digests (the service uses sha256), which
// keeps every path one safe flat filename.
var storeKeyRE = regexp.MustCompile(`^[0-9a-f]{8,128}$`)

// OpenResultStore opens (creating if necessary) the store rooted at
// dir, indexing the blobs a previous process left, oldest-mtime coldest.
// maxBytes <= 0 means unbounded.
func OpenResultStore(dir string, maxBytes int64) (*ResultStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &ResultStore{
		dir:      dir,
		maxBytes: maxBytes,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
	}
	type found struct {
		storeEntry
		mtime time.Time
	}
	var blobs []found
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		key := d.Name()
		if !storeKeyRE.MatchString(key) {
			return nil // temp file or foreign debris; leave it alone
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		blobs = append(blobs, found{storeEntry{key, info.Size()}, info.ModTime()})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("durable: indexing result store: %w", err)
	}
	sort.Slice(blobs, func(i, k int) bool { return blobs[i].mtime.Before(blobs[k].mtime) })
	for _, b := range blobs { // oldest first, so each PushFront lands it colder than the next
		s.entries[b.key] = s.lru.PushFront(b.storeEntry)
		s.total += b.size
	}
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
	return s, nil
}

func (s *ResultStore) path(key string) string {
	return filepath.Join(s.dir, key[:2], key)
}

// Get returns the blob stored under key and marks it most recently
// used (on disk too, via mtime, so recency survives restarts).
func (s *ResultStore) Get(key string) ([]byte, bool) {
	if !storeKeyRE.MatchString(key) {
		return nil, false
	}
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok {
		s.lru.MoveToFront(e)
		s.hits++
	} else {
		s.misses++
	}
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		// The file vanished under us (manual cleanup?); drop the index
		// entry and report a miss rather than an error.
		s.mu.Lock()
		if e, ok := s.entries[key]; ok {
			s.total -= e.Value.(storeEntry).size
			s.lru.Remove(e)
			delete(s.entries, key)
		}
		s.hits--
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	now := time.Now()
	os.Chtimes(s.path(key), now, now) // best effort
	return data, true
}

// Put stores data under key (a no-op when the key exists — blobs are
// content-addressed, so equal keys mean equal bytes) and evicts the
// coldest blobs if the store now exceeds its bound. The blob is fsynced
// before Put returns: the journal records the write right after, and a
// journaled key must never point at a hole.
func (s *ResultStore) Put(key string, data []byte) error {
	if !storeKeyRE.MatchString(key) {
		return fmt.Errorf("durable: invalid result-store key %q", key)
	}
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.lru.MoveToFront(e)
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	shard := filepath.Join(s.dir, key[:2])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return err
	}
	if err := WriteFileAtomic(s.path(key), data); err != nil {
		return fmt.Errorf("durable: storing result %s: %w", key, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[key]; ok {
		return nil // raced another Put of the same content
	}
	s.entries[key] = s.lru.PushFront(storeEntry{key, int64(len(data))})
	s.total += int64(len(data))
	s.evictLocked()
	return nil
}

// Delete removes a blob (used when a reader finds the stored bytes
// undecodable: dropping the key lets the deterministic rerun rewrite
// it, since Put is a no-op for keys the index already has). Missing
// keys are a no-op.
func (s *ResultStore) Delete(key string) {
	if !storeKeyRE.MatchString(key) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return
	}
	os.Remove(s.path(key))
	s.total -= e.Value.(storeEntry).size
	s.lru.Remove(e)
	delete(s.entries, key)
}

// evictLocked deletes cold blobs until the store fits its bound,
// always sparing the most recently used one.
func (s *ResultStore) evictLocked() {
	for s.maxBytes > 0 && s.total > s.maxBytes && s.lru.Len() > 1 {
		e := s.lru.Back()
		ent := e.Value.(storeEntry)
		os.Remove(s.path(ent.key)) // best effort; the index is authoritative
		s.lru.Remove(e)
		delete(s.entries, ent.key)
		s.total -= ent.size
		s.evictions++
	}
}

// StoreStats snapshots the store's counters for /v1/stats.
type StoreStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"maxBytes,omitempty"`
	Hits      int   `json:"hits"`
	Misses    int   `json:"misses"`
	Evictions int   `json:"evictions"`
}

// Stats snapshots the store's counters.
func (s *ResultStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Entries:   len(s.entries),
		Bytes:     s.total,
		MaxBytes:  s.maxBytes,
		Hits:      s.hits,
		Misses:    s.misses,
		Evictions: s.evictions,
	}
}
