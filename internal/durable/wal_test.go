package durable

import (
	"encoding/json"
	"testing"
)

type testRec struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

func TestWALRecoversSnapshotAndRecords(t *testing.T) {
	dir := t.TempDir()
	w, rec, err := OpenWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	if err := w.Append("job", testRec{"j1", "queued"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append("job", testRec{"j1", "done"}); err != nil {
		t.Fatal(err)
	}
	if n := w.AppendedSinceCompact(); n != 2 {
		t.Errorf("appended = %d, want 2", n)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, rec, err := OpenWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(rec.Records) != 2 || rec.Records[0].Kind != "job" {
		t.Fatalf("recovered %+v", rec.Records)
	}
	var r testRec
	if err := json.Unmarshal(rec.Records[1].Data, &r); err != nil {
		t.Fatal(err)
	}
	if r.ID != "j1" || r.State != "done" {
		t.Errorf("last record %+v", r)
	}
	// Replayed records count toward the snapshot policy: a process that
	// boots with a fat journal should compact soon, not after another
	// full snapshot-every interval.
	if n := w2.AppendedSinceCompact(); n != 2 {
		t.Errorf("appended after recovery = %d, want 2", n)
	}
}

type testState struct {
	Jobs []testRec `json:"jobs"`
}

func TestWALCompactBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append("job", testRec{"j1", "running"}); err != nil {
			t.Fatal(err)
		}
	}
	state := testState{Jobs: []testRec{{"j1", "done"}}}
	if err := w.Compact(func() (any, error) { return state, nil }); err != nil {
		t.Fatal(err)
	}
	if n := w.AppendedSinceCompact(); n != 0 {
		t.Errorf("appended after compact = %d, want 0", n)
	}
	// One post-compaction record lands in the fresh segment.
	if err := w.Append("job", testRec{"j2", "queued"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, rec, err := OpenWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	var got testState
	if rec.Snapshot == nil {
		t.Fatal("no snapshot recovered")
	}
	if err := json.Unmarshal(rec.Snapshot, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != 1 || got.Jobs[0].State != "done" {
		t.Errorf("snapshot %+v", got)
	}
	if len(rec.Records) != 1 {
		t.Fatalf("replayed %d records after compaction, want 1", len(rec.Records))
	}
}

// TestWALStats: the counter surface behind /metrics — lifetime records,
// fsyncs actually issued, snapshot count — tracks appends, Sync and
// Compact, and restarts from the replayed record count.
func TestWALStats(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append("job", testRec{"j1", "running"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Records != 5 || st.SinceCompact != 5 {
		t.Errorf("stats after 5 appends: %+v", st)
	}
	if st.Fsyncs < 1 {
		t.Errorf("no fsync counted after Sync: %+v", st)
	}
	if st.Snapshots != 0 {
		t.Errorf("snapshots before any compaction: %+v", st)
	}
	if err := w.Compact(func() (any, error) { return testState{}, nil }); err != nil {
		t.Fatal(err)
	}
	st = w.Stats()
	if st.Snapshots != 1 || st.SinceCompact != 0 || st.Records != 5 {
		t.Errorf("stats after compaction: %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// A restart keeps replayed records in the lifetime count but resets
	// the per-process fsync and snapshot counters.
	w2, _, err := OpenWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if st := w2.Stats(); st.Records != 0 || st.Snapshots != 0 {
		t.Errorf("stats after clean restart (snapshot subsumed the records): %+v", st)
	}
}
