package durable

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func openCollect(t *testing.T, dir string) (*Journal, [][]byte, int) {
	t.Helper()
	var got [][]byte
	j, torn, err := OpenJournal(dir, 0, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return j, got, torn
}

func TestJournalAppendReplay(t *testing.T) {
	dir := t.TempDir()
	j, got, torn := openCollect(t, dir)
	if len(got) != 0 || torn != 0 {
		t.Fatalf("fresh journal replayed %d records, torn %d", len(got), torn)
	}
	want := [][]byte{[]byte(`{"a":1}`), []byte(`{"b":2}`), []byte(`{"c":3}`)}
	for _, p := range want {
		if err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, got, torn = openCollect(t, dir)
	if torn != 0 {
		t.Errorf("clean journal reported %d torn tails", torn)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Errorf("record %d: %s, want %s", i, got[i], want[i])
		}
	}
}

// TestJournalTornTail simulates a crash mid-append: the final frame is
// cut short. Replay must keep every complete record, truncate the torn
// tail, and leave the journal appendable on a record boundary.
func TestJournalTornTail(t *testing.T) {
	for name, mutilate := range map[string]func([]byte) []byte{
		// The second record's frame is 8 header + 10 payload bytes.
		"half header":  func(b []byte) []byte { return b[:len(b)-14] },
		"half payload": func(b []byte) []byte { return b[:len(b)-3] },
		"bad checksum": func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			j, _, _ := openCollect(t, dir)
			if err := j.Append([]byte(`{"keep":1}`)); err != nil {
				t.Fatal(err)
			}
			if err := j.Append([]byte(`{"torn":2}`)); err != nil {
				t.Fatal(err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}

			path := filepath.Join(dir, segmentName(1))
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, mutilate(data), 0o644); err != nil {
				t.Fatal(err)
			}

			j2, got, torn := openCollect(t, dir)
			if torn != 1 {
				t.Errorf("torn = %d, want 1", torn)
			}
			if len(got) != 1 || string(got[0]) != `{"keep":1}` {
				t.Fatalf("survivors %q, want just the first record", got)
			}
			// The journal keeps working after truncation.
			if err := j2.Append([]byte(`{"after":3}`)); err != nil {
				t.Fatal(err)
			}
			if err := j2.Close(); err != nil {
				t.Fatal(err)
			}
			_, got, torn = openCollect(t, dir)
			if torn != 0 || len(got) != 2 || string(got[1]) != `{"after":3}` {
				t.Fatalf("after re-append: torn %d records %q", torn, got)
			}
		})
	}
}

// TestJournalRefusesMidFileCorruption: a torn write can only damage the
// final frame. When a broken frame is followed by a valid one — proof
// of mid-file corruption — the open must fail instead of truncating
// away acknowledged records.
func TestJournalRefusesMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openCollect(t, dir)
	if err := j.Append([]byte(`{"first":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte(`{"second":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeaderBytes] ^= 0xff // corrupt the FIRST record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(dir, 0, func([]byte) error { return nil }); err == nil {
		t.Fatal("open must refuse to truncate past a valid frame")
	}
	// The file is untouched: fixing nothing and re-reading shows the
	// second record still physically present.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(data) {
		t.Fatalf("segment was modified: %d bytes, want %d", len(after), len(data))
	}
}

// TestJournalCorruptLengthStopsReplay: a frame whose length field is
// garbage (larger than the file) must stop the scan instead of reading
// past the buffer.
func TestJournalCorruptLength(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openCollect(t, dir)
	if err := j.Append([]byte(`{"ok":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segmentName(1))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:], 1<<30) // absurd length
	f.Write(hdr[:])
	f.Close()

	_, got, torn := openCollect(t, dir)
	if torn != 1 || len(got) != 1 {
		t.Fatalf("torn %d, %d records; want 1 and 1", torn, len(got))
	}
}

func TestJournalRotateAndDrop(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openCollect(t, dir)
	if err := j.Append([]byte(`{"old":1}`)); err != nil {
		t.Fatal(err)
	}
	sealed, err := j.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte(`{"new":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.DropThrough(sealed); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, _ := openCollect(t, dir)
	if len(got) != 1 || string(got[0]) != `{"new":2}` {
		t.Fatalf("after drop: %q, want only the new-segment record", got)
	}
}

// TestJournalRotateKeepsBothSegments: before DropThrough, records from
// the sealed and the live segment both replay, in order.
func TestJournalRotateKeepsBothSegments(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openCollect(t, dir)
	if err := j.Append([]byte(`{"old":1}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte(`{"new":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, _ := openCollect(t, dir)
	if len(got) != 2 || string(got[0]) != `{"old":1}` || string(got[1]) != `{"new":2}` {
		t.Fatalf("replay across segments: %q", got)
	}
}

// TestJournalDropRefusesActiveSegment guards the compaction invariant:
// the live segment must never be deleted.
func TestJournalDropRefusesActiveSegment(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openCollect(t, dir)
	defer j.Close()
	if err := j.DropThrough(1); err == nil {
		t.Fatal("dropping the active segment should fail")
	}
}
