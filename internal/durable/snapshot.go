package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

const snapshotName = "snapshot.json"

// SaveSnapshot atomically replaces dir's snapshot with the JSON
// encoding of state: write to a temp file, fsync, rename over the old
// snapshot, fsync the directory. A crash at any point leaves either the
// old snapshot or the new one, never a mix.
func SaveSnapshot(dir string, state any) error {
	data, err := json.Marshal(state)
	if err != nil {
		return fmt.Errorf("durable: encoding snapshot: %w", err)
	}
	return WriteFileAtomic(filepath.Join(dir, snapshotName), data)
}

// LoadSnapshot decodes dir's snapshot into state, reporting found=false
// (and leaving state untouched) when none has been taken yet.
func LoadSnapshot(dir string, state any) (found bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	if err := json.Unmarshal(data, state); err != nil {
		return false, fmt.Errorf("durable: decoding snapshot: %w", err)
	}
	return true, nil
}

// WriteFileAtomic durably replaces path with data: write to a temp file
// in the same directory, fsync, rename, fsync the directory. Exposed for
// callers (the service's upload payloads) that persist blobs the
// journal will reference.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}
