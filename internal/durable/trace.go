package durable

import "time"

// Span is one durability operation as the observability layer sees it:
// what the WAL did (append, fsync, rotate, snapshot), when, for how
// long, and over how many bytes. It is the durable tier's contribution
// to the per-job trace tree the service serves — fsync stalls and
// compaction pauses become visible spans instead of unexplained gaps.
type Span struct {
	// Op is "append", "fsync", "rotate" or "snapshot".
	Op    string
	Start time.Time
	Dur   time.Duration
	// Bytes is the payload size for appends, 0 for the other ops.
	Bytes int
}

// SpanHook observes durability operations. Install it with SetTrace.
//
// The hook is OBSERVATIONAL ONLY: it must not change what the journal
// writes or when (the same contract as chaos.WithTrace, enforced for
// this hook by chaos-vet's ctxhook analyzer — only the persistence
// roots may install one). It is invoked with journal-internal locks
// held, so it must be cheap and must never call back into the journal
// or WAL; recording into a bounded ring (obs.Ring) is the intended
// consumer.
type SpanHook func(Span)

// SetTrace installs (or, with nil, removes) the journal's span hook.
// Install it before concurrent use — typically right after open,
// before the first append.
func (j *Journal) SetTrace(hook SpanHook) {
	j.mu.Lock()
	j.hook = hook
	j.mu.Unlock()
}

// SetTrace installs (or, with nil, removes) the WAL's span hook: the
// journal's append/fsync/rotate spans plus the WAL's own snapshot
// spans (see Compact).
func (w *WAL) SetTrace(hook SpanHook) {
	w.mu.Lock()
	w.hook = hook
	w.mu.Unlock()
	w.journal.SetTrace(hook)
}
