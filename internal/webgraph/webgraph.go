// Package webgraph generates a synthetic hyperlink graph standing in for
// the Web Data Commons 2014 crawl used in the paper (§8: 1.7 billion pages,
// 64 billion hyperlinks, 1 TB input).
//
// The real dataset is not redistributable at this scale, so we synthesize a
// graph with the statistics that matter to Chaos: a power-law in-degree
// distribution (hubs), a bounded, skewed out-degree distribution (pages
// link to tens of pages), and link locality (most links stay within a
// "site", a contiguous ID range). These properties drive the same partition
// imbalance and update-volume skew as the crawl.
package webgraph

import (
	"math"
	"math/rand"

	"chaos/internal/graph"
)

// Generator produces a synthetic web crawl.
type Generator struct {
	// Pages is the number of vertices.
	Pages uint64
	// MeanOutDegree is the average number of links per page. The Data
	// Commons 2014 crawl averages ~37; the default used by New is scaled
	// alongside the page count.
	MeanOutDegree int
	// SiteSize is the number of consecutive page IDs forming one site.
	SiteSize uint64
	// IntraSite is the probability that a link targets the same site.
	IntraSite float64
	// InExponent is the power-law exponent for target popularity
	// (in-degree); crawls measure roughly 2.1.
	InExponent float64
	// Seed selects the random stream.
	Seed int64
}

// New returns a generator with crawl-like defaults for the given number of
// pages.
func New(pages uint64, seed int64) *Generator {
	siteSize := pages / 64
	if siteSize < 4 {
		siteSize = 4
	}
	return &Generator{
		Pages:         pages,
		MeanOutDegree: 16,
		SiteSize:      siteSize,
		IntraSite:     0.7,
		InExponent:    2.1,
		Seed:          seed,
	}
}

// NumVertices returns the number of pages.
func (g *Generator) NumVertices() uint64 { return g.Pages }

// Format returns the natural binary edge format.
func (g *Generator) Format() graph.Format {
	return graph.FormatFor(g.Pages, false)
}

// Generate materializes the full edge list.
func (g *Generator) Generate() []graph.Edge {
	var edges []graph.Edge
	g.Each(func(e graph.Edge) { edges = append(edges, e) })
	return edges
}

// Each invokes fn for every link in a deterministic order.
func (g *Generator) Each(fn func(graph.Edge)) {
	rng := rand.New(rand.NewSource(g.Seed))
	for p := uint64(0); p < g.Pages; p++ {
		// Out-degree: geometric-ish skew around the mean, min 1.
		d := 1 + rng.Intn(2*g.MeanOutDegree-1)
		for i := 0; i < d; i++ {
			fn(graph.Edge{Src: graph.VertexID(p), Dst: graph.VertexID(g.target(rng, p))})
		}
	}
}

// target draws a link destination for page p.
func (g *Generator) target(rng *rand.Rand, p uint64) uint64 {
	if rng.Float64() < g.IntraSite {
		site := p / g.SiteSize
		base := site * g.SiteSize
		span := g.SiteSize
		if base+span > g.Pages {
			span = g.Pages - base
		}
		return base + g.powerLaw(rng, span)
	}
	return g.powerLaw(rng, g.Pages)
}

// powerLaw draws from [0, n) with P(k) proportional to (k+1)^-InExponent
// via inverse-transform sampling, so low IDs are the popular hubs.
func (g *Generator) powerLaw(rng *rand.Rand, n uint64) uint64 {
	if n <= 1 {
		return 0
	}
	// Inverse CDF of a bounded Pareto on [1, n].
	alpha := g.InExponent - 1 // exponent of the CDF tail
	u := rng.Float64()
	hMin := 1.0
	hMax := math.Pow(float64(n), -alpha)
	x := math.Pow(hMin-u*(hMin-hMax), -1/alpha)
	k := uint64(x) - 1
	if k >= n {
		k = n - 1
	}
	return k
}
