package webgraph

import (
	"sort"
	"testing"

	"chaos/internal/graph"
)

func TestAllTargetsInRange(t *testing.T) {
	g := New(1000, 1)
	for _, e := range g.Generate() {
		if uint64(e.Src) >= g.Pages || uint64(e.Dst) >= g.Pages {
			t.Fatalf("edge %+v out of range [0,%d)", e, g.Pages)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := New(500, 42).Generate()
	b := New(500, 42).Generate()
	if len(a) != len(b) {
		t.Fatalf("edge counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs across runs with equal seed", i)
		}
	}
}

func TestMeanOutDegreeApproximate(t *testing.T) {
	g := New(2000, 7)
	edges := g.Generate()
	mean := float64(len(edges)) / float64(g.Pages)
	if mean < float64(g.MeanOutDegree)*0.7 || mean > float64(g.MeanOutDegree)*1.3 {
		t.Errorf("mean out-degree %.1f, want about %d", mean, g.MeanOutDegree)
	}
}

func TestEveryPageLinksOut(t *testing.T) {
	g := New(300, 3)
	deg := make([]int, g.Pages)
	g.Each(func(e graph.Edge) { deg[e.Src]++ })
	for p, d := range deg {
		if d == 0 {
			t.Fatalf("page %d has no outgoing links", p)
		}
	}
}

func TestInDegreeIsSkewed(t *testing.T) {
	g := New(4000, 9)
	in := make([]int, g.Pages)
	g.Each(func(e graph.Edge) { in[e.Dst]++ })
	sorted := append([]int(nil), in...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	total := 0
	for _, d := range in {
		total += d
	}
	top := 0
	for _, d := range sorted[:len(sorted)/100] {
		top += d
	}
	if frac := float64(top) / float64(total); frac < 0.15 {
		t.Errorf("top 1%% of pages receive %.2f of links, want >= 0.15 (power-law hubs)", frac)
	}
}

func TestLinkLocality(t *testing.T) {
	g := New(10000, 5)
	intra, total := 0, 0
	g.Each(func(e graph.Edge) {
		total++
		if uint64(e.Src)/g.SiteSize == uint64(e.Dst)/g.SiteSize {
			intra++
		}
	})
	frac := float64(intra) / float64(total)
	// IntraSite=0.7 plus chance hits; allow a generous band.
	if frac < 0.5 || frac > 0.95 {
		t.Errorf("intra-site link fraction %.2f, want within [0.5, 0.95]", frac)
	}
}

func TestTinySiteSizeFloor(t *testing.T) {
	g := New(16, 1)
	if g.SiteSize < 4 {
		t.Errorf("site size %d, want >= 4", g.SiteSize)
	}
	for _, e := range g.Generate() {
		if uint64(e.Dst) >= g.Pages {
			t.Fatalf("edge %+v out of range for tiny graph", e)
		}
	}
}
