// Package partition implements Chaos streaming partitions (§3).
//
// A streaming partition is a set of vertices that fits in memory, all of
// their outgoing edges, and all of their incoming updates. Chaos picks the
// number of partitions as the smallest multiple of the number of machines
// such that each partition's vertex set fits in the per-machine memory
// budget, partitions the vertex set into ranges of consecutive IDs, and
// assigns each edge to the partition of its source vertex. This single
// cheap pass over the edge list is the only pre-processing Chaos performs.
package partition

import (
	"fmt"

	"chaos/internal/graph"
)

// Layout describes a streaming-partition decomposition of a vertex set.
type Layout struct {
	// NumVertices is the size of the vertex set.
	NumVertices uint64
	// NumPartitions is the chosen number of streaming partitions, always
	// a multiple of NumMachines.
	NumPartitions int
	// NumMachines is the number of computation engines.
	NumMachines int
	// PerPartition is the width of each vertex-ID range (the last
	// partition may be narrower).
	PerPartition uint64
}

// NewLayout chooses the partitioning for numVertices vertices across
// numMachines machines, where each vertex record occupies vertexBytes and
// each machine can dedicate memBudget bytes to a partition's vertex set
// (plus auxiliary structures, which the caller folds into the budget, as
// X-Stream does).
//
// Per §3, the partition count is the smallest multiple of the machine count
// whose per-partition vertex set fits the budget.
func NewLayout(numVertices uint64, numMachines int, vertexBytes, memBudget int64) (*Layout, error) {
	if numMachines <= 0 {
		return nil, fmt.Errorf("partition: need at least one machine, got %d", numMachines)
	}
	if numVertices == 0 {
		return nil, fmt.Errorf("partition: empty vertex set")
	}
	if vertexBytes <= 0 || memBudget < vertexBytes {
		return nil, fmt.Errorf("partition: memory budget %d cannot hold a single %d-byte vertex", memBudget, vertexBytes)
	}
	maxPerPartition := uint64(memBudget / vertexBytes)
	for mult := 1; ; mult++ {
		p := numMachines * mult
		per := ceilDiv(numVertices, uint64(p))
		if per <= maxPerPartition {
			return &Layout{
				NumVertices:   numVertices,
				NumPartitions: p,
				NumMachines:   numMachines,
				PerPartition:  per,
			}, nil
		}
	}
}

// FixedLayout builds a layout with an explicit partition count, which must
// be a positive multiple of numMachines. It is used by tests and by
// experiments that sweep the partition count directly.
func FixedLayout(numVertices uint64, numMachines, numPartitions int) (*Layout, error) {
	if numPartitions <= 0 || numPartitions%numMachines != 0 {
		return nil, fmt.Errorf("partition: count %d is not a positive multiple of machines %d", numPartitions, numMachines)
	}
	return &Layout{
		NumVertices:   numVertices,
		NumPartitions: numPartitions,
		NumMachines:   numMachines,
		PerPartition:  ceilDiv(numVertices, uint64(numPartitions)),
	}, nil
}

func ceilDiv(a, b uint64) uint64 { return (a + b - 1) / b }

// Of returns the partition owning vertex v.
func (l *Layout) Of(v graph.VertexID) int {
	p := int(uint64(v) / l.PerPartition)
	if p >= l.NumPartitions {
		// Only reachable for IDs beyond NumVertices; clamp defensively.
		p = l.NumPartitions - 1
	}
	return p
}

// Range returns the vertex-ID range [lo, hi) of partition p.
func (l *Layout) Range(p int) (lo, hi graph.VertexID) {
	lo = graph.VertexID(uint64(p) * l.PerPartition)
	hi = graph.VertexID(uint64(p+1) * l.PerPartition)
	if uint64(hi) > l.NumVertices {
		hi = graph.VertexID(l.NumVertices)
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// Size returns the number of vertices in partition p.
func (l *Layout) Size(p int) uint64 {
	lo, hi := l.Range(p)
	return uint64(hi - lo)
}

// Master returns the machine initially assigned partition p (§5: the
// number of partitions is a multiple k of the engines; engine i masters
// partitions i, i+m, i+2m, ...).
func (l *Layout) Master(p int) int { return p % l.NumMachines }

// PartitionsOf returns the partitions mastered by machine m, in order.
func (l *Layout) PartitionsOf(m int) []int {
	var ps []int
	for p := m; p < l.NumPartitions; p += l.NumMachines {
		ps = append(ps, p)
	}
	return ps
}

// Multiple returns the per-machine partition multiple k.
func (l *Layout) Multiple() int { return l.NumPartitions / l.NumMachines }

// BinEdges performs the pre-processing pass in memory: one scan of the edge
// list, binning each edge by the partition of its source. The engine's
// distributed pre-processing streams edges instead but uses the same rule.
func (l *Layout) BinEdges(edges []graph.Edge) [][]graph.Edge {
	bins := make([][]graph.Edge, l.NumPartitions)
	for _, e := range edges {
		p := l.Of(e.Src)
		bins[p] = append(bins[p], e)
	}
	return bins
}

func (l *Layout) String() string {
	return fmt.Sprintf("layout{V=%d machines=%d partitions=%d per=%d}",
		l.NumVertices, l.NumMachines, l.NumPartitions, l.PerPartition)
}
