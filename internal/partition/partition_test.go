package partition

import (
	"testing"
	"testing/quick"

	"chaos/internal/graph"
)

func TestSmallestMultipleRule(t *testing.T) {
	// 1000 vertices, 4 machines, 8-byte vertices, budget 1600B => 200
	// vertices per partition max; need >= 5 partitions => smallest
	// multiple of 4 is 8.
	l, err := NewLayout(1000, 4, 8, 1600)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumPartitions != 8 {
		t.Errorf("partitions = %d, want 8", l.NumPartitions)
	}
	if l.PerPartition != 125 {
		t.Errorf("per-partition = %d, want 125", l.PerPartition)
	}
}

func TestSinglePartitionWhenEverythingFits(t *testing.T) {
	l, err := NewLayout(100, 1, 8, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumPartitions != 1 {
		t.Errorf("partitions = %d, want 1", l.NumPartitions)
	}
}

func TestBudgetTooSmallForOneVertex(t *testing.T) {
	if _, err := NewLayout(10, 1, 8, 4); err == nil {
		t.Error("budget smaller than one vertex should error")
	}
}

func TestRejectsZeroMachinesAndVertices(t *testing.T) {
	if _, err := NewLayout(10, 0, 8, 100); err == nil {
		t.Error("zero machines should error")
	}
	if _, err := NewLayout(0, 1, 8, 100); err == nil {
		t.Error("zero vertices should error")
	}
}

func TestRangesTileVertexSet(t *testing.T) {
	l, err := NewLayout(1003, 4, 4, 400) // deliberately non-divisible
	if err != nil {
		t.Fatal(err)
	}
	var covered uint64
	for p := 0; p < l.NumPartitions; p++ {
		lo, hi := l.Range(p)
		covered += uint64(hi - lo)
		if p > 0 {
			_, prevHi := l.Range(p - 1)
			if lo != prevHi {
				t.Errorf("partition %d starts at %d, previous ended at %d", p, lo, prevHi)
			}
		}
		for v := lo; v < hi; v++ {
			if l.Of(v) != p {
				t.Fatalf("vertex %d maps to partition %d, expected %d", v, l.Of(v), p)
			}
		}
	}
	if covered != l.NumVertices {
		t.Errorf("ranges cover %d vertices, want %d", covered, l.NumVertices)
	}
}

func TestRangesTileProperty(t *testing.T) {
	prop := func(nv uint32, m uint8, mult uint8) bool {
		n := uint64(nv%100000) + 1
		machines := int(m%16) + 1
		parts := machines * (int(mult%8) + 1)
		l, err := FixedLayout(n, machines, parts)
		if err != nil {
			return false
		}
		var covered uint64
		for p := 0; p < l.NumPartitions; p++ {
			covered += l.Size(p)
		}
		if covered != n {
			return false
		}
		// Spot-check Of() consistency at range boundaries.
		for p := 0; p < l.NumPartitions; p++ {
			lo, hi := l.Range(p)
			if lo < hi && (l.Of(lo) != p || l.Of(hi-1) != p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMasterAssignmentRoundRobin(t *testing.T) {
	l, err := FixedLayout(1000, 4, 12)
	if err != nil {
		t.Fatal(err)
	}
	if l.Multiple() != 3 {
		t.Errorf("multiple = %d, want 3", l.Multiple())
	}
	counts := make(map[int]int)
	for p := 0; p < l.NumPartitions; p++ {
		counts[l.Master(p)]++
	}
	for m := 0; m < 4; m++ {
		if counts[m] != 3 {
			t.Errorf("machine %d masters %d partitions, want 3", m, counts[m])
		}
	}
	ps := l.PartitionsOf(1)
	want := []int{1, 5, 9}
	for i := range want {
		if ps[i] != want[i] {
			t.Errorf("PartitionsOf(1) = %v, want %v", ps, want)
		}
	}
}

func TestBinEdgesBySource(t *testing.T) {
	l, err := FixedLayout(100, 2, 4) // 25 vertices per partition
	if err != nil {
		t.Fatal(err)
	}
	edges := []graph.Edge{
		{Src: 0, Dst: 99},
		{Src: 24, Dst: 0},
		{Src: 25, Dst: 10},
		{Src: 99, Dst: 1},
	}
	bins := l.BinEdges(edges)
	if len(bins[0]) != 2 || len(bins[1]) != 1 || len(bins[3]) != 1 {
		t.Errorf("bin sizes wrong: %d %d %d %d", len(bins[0]), len(bins[1]), len(bins[2]), len(bins[3]))
	}
	total := 0
	for _, b := range bins {
		total += len(b)
	}
	if total != len(edges) {
		t.Errorf("binning lost edges: %d of %d", total, len(edges))
	}
}

func TestFixedLayoutValidation(t *testing.T) {
	if _, err := FixedLayout(10, 4, 6); err == nil {
		t.Error("partition count not a multiple of machines should error")
	}
	if _, err := FixedLayout(10, 4, 0); err == nil {
		t.Error("zero partitions should error")
	}
}
