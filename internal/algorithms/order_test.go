package algorithms

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"chaos/internal/graph"
)

// The engine exploits order-independence (§2): the result of folding any
// multiset of updates through Gather and combining partial accumulators
// through Merge must not depend on the order or the partitioning. These
// property tests verify it for every algorithm's accumulator algebra.

// foldOrders folds updates in two different random orders and with a
// random split into two accumulators merged at the end, then compares via
// eq.
func checkOrderIndependence[V, U, A any](t *testing.T, name string,
	initAccum func() A,
	gather func(A, U, *V) A,
	merge func(A, A) A,
	gen func(*rand.Rand) U,
	eq func(A, A) bool,
) {
	t.Helper()
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%20) + 1
		updates := make([]U, n)
		for i := range updates {
			updates[i] = gen(rng)
		}
		var v V

		// Order A: sequential.
		a := initAccum()
		for _, u := range updates {
			a = gather(a, u, &v)
		}
		// Order B: shuffled, split into two partial accumulators.
		perm := rng.Perm(n)
		split := rng.Intn(n + 1)
		b1, b2 := initAccum(), initAccum()
		for i, pi := range perm {
			if i < split {
				b1 = gather(b1, updates[pi], &v)
			} else {
				b2 = gather(b2, updates[pi], &v)
			}
		}
		b := merge(b1, b2)
		// Merge with identity must be a no-op.
		b = merge(b, initAccum())
		return eq(a, b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("%s accumulator not order-independent: %v", name, err)
	}
}

func TestBFSOrderIndependent(t *testing.T) {
	p := &BFS{}
	checkOrderIndependence(t, "BFS", p.InitAccum, p.Gather, p.Merge,
		func(r *rand.Rand) uint32 { return uint32(r.Intn(100)) },
		func(a, b uint32) bool { return a == b })
}

func TestWCCOrderIndependent(t *testing.T) {
	p := &WCC{}
	checkOrderIndependence(t, "WCC", p.InitAccum, p.Gather, p.Merge,
		func(r *rand.Rand) uint32 { return uint32(r.Intn(1000)) },
		func(a, b uint32) bool { return a == b })
}

func TestSSSPOrderIndependent(t *testing.T) {
	p := &SSSP{}
	checkOrderIndependence(t, "SSSP", p.InitAccum, p.Gather, p.Merge,
		func(r *rand.Rand) float32 { return r.Float32() * 100 },
		func(a, b float32) bool { return a == b })
}

func TestPageRankOrderIndependentWithinTolerance(t *testing.T) {
	// Float addition is only approximately associative; the engine
	// tolerates that (as does the paper's own distributed execution).
	p := &PageRank{}
	checkOrderIndependence(t, "PR", p.InitAccum, p.Gather, p.Merge,
		func(r *rand.Rand) float32 { return r.Float32() },
		func(a, b float64) bool { d := a - b; return d < 1e-6 && d > -1e-6 })
}

func TestMISOrderIndependent(t *testing.T) {
	p := &MIS{}
	checkOrderIndependence(t, "MIS", p.InitAccum, p.Gather, p.Merge,
		func(r *rand.Rand) MISUpdate {
			if r.Intn(4) == 0 {
				return MISUpdate{Elim: true}
			}
			return MISUpdate{Prio: uint64(r.Intn(50)), ID: uint32(r.Intn(50))}
		},
		func(a, b MISAccum) bool { return a == b })
}

func TestMCSTOrderIndependent(t *testing.T) {
	p := &MCST{}
	checkOrderIndependence(t, "MCST", p.InitAccum, p.Gather, p.Merge,
		func(r *rand.Rand) MCSTUpdate {
			// Few distinct comps and weights to force slot contention
			// and ties.
			return MCSTUpdate{Comp: uint64(r.Intn(3)), W: float32(r.Intn(4))}
		},
		func(a, b MCSTAccum) bool {
			// The two-slot contract: the cheapest entry must agree; the
			// second slot may legitimately retain different survivors,
			// but the cheapest crossing candidate for any given "own
			// component" must be recoverable identically. Compare the
			// best slot and the best-excluding-each-component view.
			for comp := uint64(0); comp < 4; comp++ {
				wa, ca, oka := bestExcluding(a, comp)
				wb, cb, okb := bestExcluding(b, comp)
				if oka != okb {
					return false
				}
				if oka && (wa != wb || ca != cb) {
					return false
				}
			}
			return true
		})
}

// bestExcluding mirrors MCST.Apply's candidate selection.
func bestExcluding(a MCSTAccum, mine uint64) (float32, uint64, bool) {
	switch {
	case a.Has1 && a.C1 != mine:
		return a.W1, a.C1, true
	case a.Has2 && a.C2 != mine:
		return a.W2, a.C2, true
	}
	return 0, 0, false
}

func TestSCCOrderIndependent(t *testing.T) {
	p := &SCC{}
	p.mode = sccFwd
	checkOrderIndependence(t, "SCC-fwd", p.InitAccum, p.Gather, p.Merge,
		func(r *rand.Rand) uint32 { return uint32(r.Intn(100)) },
		func(a, b SCCAccum) bool { return a == b })
}

func TestConductanceOrderIndependent(t *testing.T) {
	p := &Conductance{}
	checkOrderIndependence(t, "Cond", p.InitAccum, p.Gather, p.Merge,
		func(r *rand.Rand) uint32 { return uint32(r.Intn(2)) },
		func(a, b CondAccum) bool { return a == b })
}

func TestCombinerConsistentWithGather(t *testing.T) {
	// For programs with a combiner, pre-combining updates then gathering
	// must equal gathering them individually.
	prop := func(raw []float32) bool {
		if len(raw) == 0 {
			return true
		}
		// Rank contributions are small positive reals; map arbitrary
		// inputs into [0, 1) to avoid float32 overflow artifacts.
		vals := make([]float32, len(raw))
		for i, r := range raw {
			v := math.Abs(math.Mod(float64(r), 1))
			if math.IsNaN(v) {
				v = 0.5
			}
			vals[i] = float32(v)
		}
		p := &PageRank{}
		var v PRVertex
		direct := p.InitAccum()
		for _, u := range vals {
			direct = p.Gather(direct, u, &v)
		}
		combined := vals[0]
		for _, u := range vals[1:] {
			combined = p.Combine(combined, u)
		}
		viaCombine := p.Gather(p.InitAccum(), combined, &v)
		d := direct - viaCombine
		return d < 1e-3 && d > -1e-3
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// Min-style combiners are exact.
	b := &BFS{}
	if b.Combine(3, 5) != 3 || b.Combine(5, 3) != 3 {
		t.Error("BFS combiner is not min")
	}
	w := &WCC{}
	if w.Combine(9, 2) != 2 {
		t.Error("WCC combiner is not min")
	}
	s := &SSSP{}
	if s.Combine(1.5, 0.5) != 0.5 {
		t.Error("SSSP combiner is not min")
	}
}

func TestMCSTRewriteEdgeDropsInternal(t *testing.T) {
	p := &MCST{}
	var v MCSTVertex
	p.Init(0, &v, 0)
	p.Init(1, &v, 0)
	p.Init(2, &v, 0)
	// Union 0 and 1 directly through the structure RewriteEdge consults.
	p.parent[1] = 0
	if _, keep := p.RewriteEdge(0, graph.Edge{Src: 0, Dst: 1}, &v); keep {
		t.Error("intra-component edge kept")
	}
	if _, keep := p.RewriteEdge(0, graph.Edge{Src: 1, Dst: 2}, &v); !keep {
		t.Error("crossing edge dropped")
	}
}
