package algorithms

import (
	"encoding/binary"
	"math"

	"chaos/internal/gas"
	"chaos/internal/graph"
)

// SpMVVertex holds the input vector element X and the output Y.
type SpMVVertex struct {
	X, Y float32
}

// SpMV computes one sparse matrix-vector product y = A*x over the weighted
// directed edge list (entry A[dst][src] = weight): a single scatter of
// w*x[src] and a gather-sum.
type SpMV struct{}

// Name implements gas.Program.
func (*SpMV) Name() string { return "SpMV" }

// Weighted implements gas.Program.
func (*SpMV) Weighted() bool { return true }

// NeedsDegrees implements gas.Program.
func (*SpMV) NeedsDegrees() bool { return false }

// Init implements gas.Program: x_i derives deterministically from the
// vertex ID so results are reproducible without a separate input vector.
func (*SpMV) Init(id graph.VertexID, v *SpMVVertex, _ uint32) {
	v.X = 1 + float32(mix64(uint64(id))%1000)/1000
	v.Y = 0
}

// Scatter implements gas.Program.
func (*SpMV) Scatter(_ int, e graph.Edge, src *SpMVVertex) (graph.VertexID, float32, bool) {
	return e.Dst, e.Weight * src.X, true
}

// InitAccum implements gas.Program.
func (*SpMV) InitAccum() float64 { return 0 }

// Gather implements gas.Program.
func (*SpMV) Gather(a float64, u float32, _ *SpMVVertex) float64 { return a + float64(u) }

// Merge implements gas.Program.
func (*SpMV) Merge(a, b float64) float64 { return a + b }

// Apply implements gas.Program.
func (*SpMV) Apply(_ int, _ graph.VertexID, v *SpMVVertex, a float64) bool {
	v.Y = float32(a)
	return true
}

// Converged implements gas.Program: one product, one iteration.
func (*SpMV) Converged(iter int, _ uint64) bool { return iter >= 0 }

// VertexCodec implements gas.Program.
func (*SpMV) VertexCodec() gas.Codec[SpMVVertex] {
	return gas.Codec[SpMVVertex]{
		Bytes: 8,
		Put: func(buf []byte, v *SpMVVertex) {
			binary.LittleEndian.PutUint32(buf, math.Float32bits(v.X))
			binary.LittleEndian.PutUint32(buf[4:], math.Float32bits(v.Y))
		},
		Get: func(buf []byte, v *SpMVVertex) {
			v.X = math.Float32frombits(binary.LittleEndian.Uint32(buf))
			v.Y = math.Float32frombits(binary.LittleEndian.Uint32(buf[4:]))
		},
	}
}

// UpdateCodec implements gas.Program.
func (*SpMV) UpdateCodec() gas.Codec[float32] { return gas.Float32Codec() }

// AccumBytes implements gas.Program.
func (*SpMV) AccumBytes() int { return 8 }
