package algorithms_test

import (
	"math"
	"testing"

	"chaos/internal/algorithms"
	"chaos/internal/cluster"
	"chaos/internal/core"
	"chaos/internal/graph"
	"chaos/internal/refalgo"
	"chaos/internal/rmat"
)

// cfg builds a lab-scale config forcing ~2 partitions per machine.
func cfg(m int, n uint64, vbytes int) core.Config {
	c := core.DefaultConfig(cluster.SSD(m))
	c.ChunkBytes = 4 << 10
	c.VertexChunkBytes = 4 << 10
	c.MemBudget = int64(n)*int64(vbytes)/int64(2*m) + int64(vbytes)
	return c
}

func rmatEdges(scale int, weighted bool, seed int64) ([]graph.Edge, uint64) {
	g := rmat.New(scale, seed)
	g.Weighted = weighted
	return g.Generate(), g.NumVertices()
}

func TestBFSAllLevels(t *testing.T) {
	edges, n := rmatEdges(8, false, 7)
	und := graph.Undirected(edges)
	want := refalgo.BFSLevels(graph.BuildAdjacency(und, n), 0)
	values, _, err := core.Run(cfg(4, n, 5), &algorithms.BFS{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		if values[i].Level != want[i] {
			t.Fatalf("vertex %d: level %d, want %d", i, values[i].Level, want[i])
		}
	}
}

func TestBFSNonZeroRoot(t *testing.T) {
	edges, n := rmatEdges(7, false, 9)
	und := graph.Undirected(edges)
	root := graph.VertexID(17)
	want := refalgo.BFSLevels(graph.BuildAdjacency(und, n), root)
	values, _, err := core.Run(cfg(2, n, 5), &algorithms.BFS{Root: root}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		if values[i].Level != want[i] {
			t.Fatalf("vertex %d: level %d, want %d", i, values[i].Level, want[i])
		}
	}
}

func TestWCCMatchesUnionFind(t *testing.T) {
	edges, n := rmatEdges(8, false, 11)
	und := graph.Undirected(edges)
	want := refalgo.WCCLabels(graph.BuildAdjacency(und, n))
	values, _, err := core.Run(cfg(4, n, 5), &algorithms.WCC{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		if values[i].Label != want[i] {
			t.Fatalf("vertex %d: label %d, want %d", i, values[i].Label, want[i])
		}
	}
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	edges, n := rmatEdges(8, true, 13)
	und := graph.Undirected(edges)
	want := refalgo.SSSPDistances(graph.BuildAdjacency(und, n), 0)
	values, _, err := core.Run(cfg(4, n, 5), &algorithms.SSSP{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		got, exp := values[i].Dist, want[i]
		if exp == algorithms.Inf {
			if got != algorithms.Inf {
				t.Fatalf("vertex %d: dist %g, want unreachable", i, got)
			}
			continue
		}
		if math.Abs(float64(got-exp)) > 1e-4*math.Max(1, float64(exp)) {
			t.Fatalf("vertex %d: dist %g, want %g", i, got, exp)
		}
	}
}

func TestPageRankMatchesPowerIteration(t *testing.T) {
	edges, n := rmatEdges(8, false, 15)
	want := refalgo.PageRank(graph.BuildAdjacency(edges, n), 5)
	values, _, err := core.Run(cfg(4, n, 8), &algorithms.PageRank{Iterations: 5}, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		if math.Abs(float64(values[i].Rank)-want[i]) > 1e-3*math.Max(1, want[i]) {
			t.Fatalf("vertex %d: rank %g, want %g", i, values[i].Rank, want[i])
		}
	}
}

func TestMISIsMaximalIndependent(t *testing.T) {
	for _, seed := range []int64{3, 17, 99} {
		edges, n := rmatEdges(7, false, seed)
		und := graph.Undirected(edges)
		prog := &algorithms.MIS{}
		values, _, err := core.Run(cfg(4, n, 2), prog, und, n)
		if err != nil {
			t.Fatal(err)
		}
		in := make([]bool, n)
		for i := range values {
			in[i] = prog.InSet(values[i])
		}
		adj := graph.BuildAdjacency(und, n)
		if !refalgo.IsIndependentSet(adj, in) {
			t.Fatalf("seed %d: result is not independent", seed)
		}
		if !refalgo.IsMaximalIndependentSet(adj, in) {
			t.Fatalf("seed %d: result is not maximal", seed)
		}
	}
}

func TestMCSTMatchesKruskal(t *testing.T) {
	for _, seed := range []int64{5, 21} {
		edges, n := rmatEdges(7, true, seed)
		und := graph.Undirected(edges)
		wantW, wantE := refalgo.MSTWeight(graph.BuildAdjacency(und, n))
		prog := &algorithms.MCST{}
		_, _, err := core.Run(cfg(4, n, 8), prog, und, n)
		if err != nil {
			t.Fatal(err)
		}
		if prog.Edges != wantE {
			t.Fatalf("seed %d: %d forest edges, want %d", seed, prog.Edges, wantE)
		}
		if math.Abs(prog.Total-wantW) > 1e-3*math.Max(1, wantW) {
			t.Fatalf("seed %d: forest weight %g, want %g", seed, prog.Total, wantW)
		}
	}
}

func TestSCCMatchesTarjan(t *testing.T) {
	edges, n := rmatEdges(7, false, 23)
	want := refalgo.SCCIDs(graph.BuildAdjacency(edges, n))
	aug := algorithms.AugmentEdges(edges)
	values, _, err := core.Run(cfg(4, n, 11), &algorithms.SCC{}, aug, n)
	if err != nil {
		t.Fatal(err)
	}
	// Compare partitions: same grouping, arbitrary labels.
	toRef := make(map[uint32]uint32)
	toGot := make(map[uint32]uint32)
	for i := range values {
		g, w := values[i].SCC, want[i]
		if r, ok := toRef[g]; ok {
			if r != w {
				t.Fatalf("vertex %d: SCC label %d maps to both %d and %d", i, g, r, w)
			}
		} else {
			toRef[g] = w
		}
		if r, ok := toGot[w]; ok {
			if r != g {
				t.Fatalf("vertex %d: reference SCC %d maps to both %d and %d", i, w, r, g)
			}
		} else {
			toGot[w] = g
		}
		if !values[i].Done {
			t.Fatalf("vertex %d left undecided", i)
		}
	}
}

func TestConductanceMatchesDirectCount(t *testing.T) {
	edges, n := rmatEdges(8, false, 29)
	adj := graph.BuildAdjacency(edges, n)
	want := refalgo.Conductance(adj, algorithms.InSubset)
	prog := &algorithms.Conductance{}
	values, run, err := core.Run(cfg(4, n, 13), prog, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	got := prog.Aggregate(values)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("conductance %g, want %g", got, want)
	}
	if run.Iterations != 1 {
		t.Errorf("conductance took %d iterations, want 1", run.Iterations)
	}
}

func TestSpMVMatchesDirectProduct(t *testing.T) {
	edges, n := rmatEdges(8, true, 31)
	adj := graph.BuildAdjacency(edges, n)
	prog := &algorithms.SpMV{}
	values, _, err := core.Run(cfg(4, n, 8), prog, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, n)
	for i := range x {
		x[i] = values[i].X
	}
	want := refalgo.SpMV(adj, x)
	for i := range values {
		if math.Abs(float64(values[i].Y)-want[i]) > 1e-3*math.Max(1, math.Abs(want[i])) {
			t.Fatalf("vertex %d: y %g, want %g", i, values[i].Y, want[i])
		}
	}
}

func TestBPMatchesSequentialRecurrence(t *testing.T) {
	edges, n := rmatEdges(7, true, 37)
	prog := &algorithms.BP{Iterations: 4}
	values, _, err := core.Run(cfg(4, n, 4), prog, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	want := refalgo.BPBeliefs(graph.BuildAdjacency(edges, n), prog.Prior, 4)
	for i := range values {
		if math.Abs(float64(values[i].Belief-want[i])) > 1e-2 {
			t.Fatalf("vertex %d: belief %g, want %g", i, values[i].Belief, want[i])
		}
	}
}

func TestAugmentEdgesTagsDirections(t *testing.T) {
	in := []graph.Edge{{Src: 1, Dst: 2}}
	out := algorithms.AugmentEdges(in)
	if len(out) != 2 {
		t.Fatalf("got %d edges, want 2", len(out))
	}
	if out[0].Weight != 0 || out[1].Weight != 1 {
		t.Errorf("direction tags wrong: %+v", out)
	}
	if out[1].Src != 2 || out[1].Dst != 1 {
		t.Errorf("reverse edge wrong: %+v", out[1])
	}
}
