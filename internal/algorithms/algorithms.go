// Package algorithms implements the ten graph algorithms of the Chaos
// evaluation (Table 1) as GAS programs: BFS, WCC, MCST, MIS and SSSP on
// undirected graphs; Pagerank, SCC, Conductance, SpMV and BP on directed
// graphs. Callers convert directed inputs to undirected (graph.Undirected)
// for the first group, as §8 describes.
package algorithms

import "chaos/internal/graph"

// mix64 is a splitmix64-style hash used for deterministic per-vertex
// pseudo-randomness (MIS priorities, BP priors).
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hashPrio returns a deterministic priority for vertex v in round r.
func hashPrio(v graph.VertexID, r int) uint64 {
	return mix64(uint64(v)*0x100000001B3 + uint64(r))
}

const unreachable = ^uint32(0)
