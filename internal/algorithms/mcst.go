package algorithms

import (
	"encoding/binary"
	"math"
	"slices"

	"chaos/internal/gas"
	"chaos/internal/graph"
)

// MCSTVertex exposes the vertex's final component label for inspection.
type MCSTVertex struct {
	Comp uint64
}

// MCSTUpdate announces the source vertex's component and the edge weight.
type MCSTUpdate struct {
	Comp uint64
	W    float32
}

// MCSTAccum keeps the two cheapest incoming announcements with distinct
// components; two slots suffice because at most one of them can match the
// receiver's own component.
type MCSTAccum struct {
	W1   float32
	C1   uint64
	Has1 bool
	W2   float32
	C2   uint64
	Has2 bool
}

// MCST computes the weight of a minimum-cost spanning forest with Borůvka's
// algorithm on a weighted undirected edge list. Every iteration streams all
// edges once: each edge announces its source's component to its destination,
// each vertex gathers the cheapest crossing edge, and the per-component
// minima are merged.
//
// Component membership (a union-find over vertex IDs) lives at the
// coordinator. The vertex set of a streaming partition fits in memory by
// definition (§3), so this auxiliary structure respects the memory model;
// the out-of-core quantity the evaluation measures — one full edge stream
// per Borůvka round — is preserved exactly. X-Stream's MCST kept equivalent
// in-memory auxiliaries, and Table 1 shows it as the most expensive
// algorithm, as it is here. Checkpoint/rollback of coordinator state is not
// supported for this program.
type MCST struct {
	parent []uint64
	// cand[c] is the cheapest crossing edge found for component c this
	// round.
	cand map[uint64]MCSTUpdate
	// Total accumulates the forest weight.
	Total float64
	// Edges counts forest edges taken.
	Edges int
}

// Name implements gas.Program.
func (*MCST) Name() string { return "MCST" }

// Weighted implements gas.Program.
func (*MCST) Weighted() bool { return true }

// NeedsDegrees implements gas.Program.
func (*MCST) NeedsDegrees() bool { return false }

// Init implements gas.Program.
func (m *MCST) Init(id graph.VertexID, v *MCSTVertex, _ uint32) {
	if m.parent == nil || uint64(len(m.parent)) <= uint64(id) {
		np := make([]uint64, uint64(id)+1)
		copy(np, m.parent)
		for i := len(m.parent); i < len(np); i++ {
			np[i] = uint64(i)
		}
		m.parent = np
	}
	m.parent[id] = uint64(id)
	m.cand = make(map[uint64]MCSTUpdate)
	m.Total = 0
	m.Edges = 0
	v.Comp = uint64(id)
}

// find is the union-find lookup with path compression. It may only be
// called from Apply and Converged, which the engine serializes; Scatter
// and RewriteEdge run concurrently on the engine's compute workers and
// must use the read-only findRO.
func (m *MCST) find(x uint64) uint64 {
	for m.parent[x] != x {
		m.parent[x] = m.parent[m.parent[x]]
		x = m.parent[x]
	}
	return x
}

// findRO is the lookup without path compression: safe for concurrent
// calls during a phase, because the engine guarantees no union or
// compression runs while scatter kernels are in flight.
func (m *MCST) findRO(x uint64) uint64 {
	for m.parent[x] != x {
		x = m.parent[x]
	}
	return x
}

// Scatter implements gas.Program: every edge announces its source's
// current component.
func (m *MCST) Scatter(_ int, e graph.Edge, _ *MCSTVertex) (graph.VertexID, MCSTUpdate, bool) {
	return e.Dst, MCSTUpdate{Comp: m.findRO(uint64(e.Src)), W: e.Weight}, true
}

// InitAccum implements gas.Program.
func (*MCST) InitAccum() MCSTAccum { return MCSTAccum{} }

// less orders candidate edges by (weight, component) for deterministic
// tie-breaking.
func mcstLess(w1 float32, c1 uint64, w2 float32, c2 uint64) bool {
	if w1 != w2 {
		return w1 < w2
	}
	return c1 < c2
}

// insert folds one announcement into the two-slot accumulator.
func (a MCSTAccum) insert(u MCSTUpdate) MCSTAccum {
	switch {
	case a.Has1 && a.C1 == u.Comp:
		if mcstLess(u.W, u.Comp, a.W1, a.C1) {
			a.W1 = u.W
		}
	case a.Has2 && a.C2 == u.Comp:
		if mcstLess(u.W, u.Comp, a.W2, a.C2) {
			a.W2 = u.W
		}
	case !a.Has1:
		a.W1, a.C1, a.Has1 = u.W, u.Comp, true
	case !a.Has2:
		a.W2, a.C2, a.Has2 = u.W, u.Comp, true
	case mcstLess(u.W, u.Comp, a.W2, a.C2):
		a.W2, a.C2 = u.W, u.Comp
	}
	// Keep slot 1 the cheaper of the two.
	if a.Has1 && a.Has2 && mcstLess(a.W2, a.C2, a.W1, a.C1) {
		a.W1, a.C1, a.W2, a.C2 = a.W2, a.C2, a.W1, a.C1
	}
	return a
}

// Gather implements gas.Program.
func (m *MCST) Gather(a MCSTAccum, u MCSTUpdate, _ *MCSTVertex) MCSTAccum {
	return a.insert(u)
}

// Merge implements gas.Program.
func (m *MCST) Merge(a, b MCSTAccum) MCSTAccum {
	if b.Has1 {
		a = a.insert(MCSTUpdate{Comp: b.C1, W: b.W1})
	}
	if b.Has2 {
		a = a.insert(MCSTUpdate{Comp: b.C2, W: b.W2})
	}
	return a
}

// Apply implements gas.Program: pick the cheapest announcement crossing the
// vertex's own component and offer it as the component's candidate.
func (m *MCST) Apply(_ int, id graph.VertexID, v *MCSTVertex, a MCSTAccum) bool {
	mine := m.find(uint64(id))
	v.Comp = mine
	var u MCSTUpdate
	switch {
	case a.Has1 && a.C1 != mine:
		u = MCSTUpdate{Comp: a.C1, W: a.W1}
	case a.Has2 && a.C2 != mine:
		u = MCSTUpdate{Comp: a.C2, W: a.W2}
	default:
		return false
	}
	if best, ok := m.cand[mine]; !ok || mcstLess(u.W, u.Comp, best.W, best.Comp) {
		m.cand[mine] = u
	}
	return true
}

// Converged implements gas.Program: merge this round's component minima
// (classic Borůvka; processing each component's cheapest crossing edge once
// per round, skipping pairs a previous merge already united). Components
// merge in sorted order: map iteration order would make the union
// sequence — and with it the final component representatives — differ
// between identical runs.
func (m *MCST) Converged(_ int, changed uint64) bool {
	if changed == 0 {
		return true
	}
	comps := make([]uint64, 0, len(m.cand))
	for comp := range m.cand {
		comps = append(comps, comp)
	}
	slices.Sort(comps)
	for _, comp := range comps {
		u := m.cand[comp]
		a, b := m.find(comp), m.find(u.Comp)
		if a == b {
			continue
		}
		m.parent[b] = a
		m.Total += float64(u.W)
		m.Edges++
	}
	m.cand = make(map[uint64]MCSTUpdate)
	return false
}

// VertexCodec implements gas.Program.
func (*MCST) VertexCodec() gas.Codec[MCSTVertex] {
	return gas.Codec[MCSTVertex]{
		Bytes: 8,
		Put:   func(buf []byte, v *MCSTVertex) { binary.LittleEndian.PutUint64(buf, v.Comp) },
		Get:   func(buf []byte, v *MCSTVertex) { v.Comp = binary.LittleEndian.Uint64(buf) },
	}
}

// UpdateCodec implements gas.Program.
func (*MCST) UpdateCodec() gas.Codec[MCSTUpdate] {
	return gas.Codec[MCSTUpdate]{
		Bytes: 12,
		Put: func(buf []byte, u *MCSTUpdate) {
			binary.LittleEndian.PutUint64(buf, u.Comp)
			binary.LittleEndian.PutUint32(buf[8:], math.Float32bits(u.W))
		},
		Get: func(buf []byte, u *MCSTUpdate) {
			u.Comp = binary.LittleEndian.Uint64(buf)
			u.W = math.Float32frombits(binary.LittleEndian.Uint32(buf[8:]))
		},
	}
}

// AccumBytes implements gas.Program.
func (*MCST) AccumBytes() int { return 26 }

// RewriteEdge implements gas.EdgeRewriter (the §6.1 extended model): an
// edge whose endpoints have merged is internal to a component and can
// never be a Borůvka candidate again, so it is dropped from the next
// iteration's stream. Later rounds then stream a shrinking edge set, the
// classic Borůvka compaction.
func (m *MCST) RewriteEdge(_ int, e graph.Edge, _ *MCSTVertex) (graph.Edge, bool) {
	return e, m.findRO(uint64(e.Src)) != m.findRO(uint64(e.Dst))
}
