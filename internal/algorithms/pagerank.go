package algorithms

import (
	"encoding/binary"
	"math"

	"chaos/internal/gas"
	"chaos/internal/graph"
)

// PRVertex is PageRank's per-vertex state.
type PRVertex struct {
	Rank   float32
	Degree uint32
}

// PageRank runs the fixed-iteration PageRank of Figure 2: scatter
// rank/degree along out-edges, gather the sum, apply
// rank = 0.15 + 0.85 * sum. Out-degrees are counted during pre-processing.
type PageRank struct {
	// Iterations is the number of rounds (the paper's capacity experiment
	// runs 5; that is the default).
	Iterations int
}

// Name implements gas.Program.
func (*PageRank) Name() string { return "PR" }

// Weighted implements gas.Program.
func (*PageRank) Weighted() bool { return false }

// NeedsDegrees implements gas.Program.
func (*PageRank) NeedsDegrees() bool { return true }

func (pr *PageRank) iters() int {
	if pr.Iterations > 0 {
		return pr.Iterations
	}
	return 5
}

// Init implements gas.Program.
func (*PageRank) Init(_ graph.VertexID, v *PRVertex, outDegree uint32) {
	v.Rank = 1
	v.Degree = outDegree
}

// Scatter implements gas.Program.
func (*PageRank) Scatter(_ int, e graph.Edge, src *PRVertex) (graph.VertexID, float32, bool) {
	return e.Dst, src.Rank / float32(src.Degree), true
}

// InitAccum implements gas.Program.
func (*PageRank) InitAccum() float64 { return 0 }

// Gather implements gas.Program.
func (*PageRank) Gather(a float64, u float32, _ *PRVertex) float64 { return a + float64(u) }

// Merge implements gas.Program.
func (*PageRank) Merge(a, b float64) float64 { return a + b }

// Apply implements gas.Program.
func (*PageRank) Apply(_ int, _ graph.VertexID, v *PRVertex, a float64) bool {
	v.Rank = 0.15 + 0.85*float32(a)
	return true
}

// Converged implements gas.Program: fixed iteration count.
func (pr *PageRank) Converged(iter int, _ uint64) bool { return iter+1 >= pr.iters() }

// VertexCodec implements gas.Program.
func (*PageRank) VertexCodec() gas.Codec[PRVertex] {
	return gas.Codec[PRVertex]{
		Bytes: 8,
		Put: func(buf []byte, v *PRVertex) {
			binary.LittleEndian.PutUint32(buf, math.Float32bits(v.Rank))
			binary.LittleEndian.PutUint32(buf[4:], v.Degree)
		},
		Get: func(buf []byte, v *PRVertex) {
			v.Rank = math.Float32frombits(binary.LittleEndian.Uint32(buf))
			v.Degree = binary.LittleEndian.Uint32(buf[4:])
		},
	}
}

// UpdateCodec implements gas.Program.
func (*PageRank) UpdateCodec() gas.Codec[float32] { return gas.Float32Codec() }

// AccumBytes implements gas.Program.
func (*PageRank) AccumBytes() int { return 8 }

// Combine implements gas.Combiner: rank contributions to the same vertex
// sum (the Pregel-style aggregation of §11.1).
func (*PageRank) Combine(a, b float32) float32 { return a + b }
