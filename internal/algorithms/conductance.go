package algorithms

import (
	"encoding/binary"

	"chaos/internal/gas"
	"chaos/internal/graph"
)

// CondVertex records, per vertex, its out-degree and the number of incoming
// edges whose source lies in the subset S.
type CondVertex struct {
	Degree uint32
	InS    bool
	FromS  uint32
	FromO  uint32
}

// CondAccum counts incoming edges by source-side membership.
type CondAccum struct{ FromS, FromO uint32 }

// Conductance measures the conductance of the vertex subset S = {v : hash
// bit set} in a single edge pass: each edge reports its source's
// membership; the host aggregates cut size and volumes from the vertex
// states (see Aggregate). It is the cheapest algorithm of Table 1.
type Conductance struct{}

// InSubset reports membership of v in the measured subset S (a
// deterministic hash bit, giving an even split).
func InSubset(v graph.VertexID) bool { return mix64(uint64(v))&1 == 1 }

// Name implements gas.Program.
func (*Conductance) Name() string { return "Cond" }

// Weighted implements gas.Program.
func (*Conductance) Weighted() bool { return false }

// NeedsDegrees implements gas.Program.
func (*Conductance) NeedsDegrees() bool { return true }

// Init implements gas.Program.
func (*Conductance) Init(id graph.VertexID, v *CondVertex, outDegree uint32) {
	v.Degree = outDegree
	v.InS = InSubset(id)
}

// Scatter implements gas.Program: each edge carries its source membership.
func (*Conductance) Scatter(_ int, e graph.Edge, src *CondVertex) (graph.VertexID, uint32, bool) {
	if src.InS {
		return e.Dst, 1, true
	}
	return e.Dst, 0, true
}

// InitAccum implements gas.Program.
func (*Conductance) InitAccum() CondAccum { return CondAccum{} }

// Gather implements gas.Program.
func (*Conductance) Gather(a CondAccum, u uint32, _ *CondVertex) CondAccum {
	if u == 1 {
		a.FromS++
	} else {
		a.FromO++
	}
	return a
}

// Merge implements gas.Program.
func (*Conductance) Merge(a, b CondAccum) CondAccum {
	return CondAccum{FromS: a.FromS + b.FromS, FromO: a.FromO + b.FromO}
}

// Apply implements gas.Program.
func (*Conductance) Apply(_ int, _ graph.VertexID, v *CondVertex, a CondAccum) bool {
	v.FromS = a.FromS
	v.FromO = a.FromO
	return false
}

// Converged implements gas.Program: a single pass.
func (*Conductance) Converged(iter int, _ uint64) bool { return iter >= 0 }

// VertexCodec implements gas.Program.
func (*Conductance) VertexCodec() gas.Codec[CondVertex] {
	return gas.Codec[CondVertex]{
		Bytes: 13,
		Put: func(buf []byte, v *CondVertex) {
			binary.LittleEndian.PutUint32(buf, v.Degree)
			buf[4] = b2u(v.InS)
			binary.LittleEndian.PutUint32(buf[5:], v.FromS)
			binary.LittleEndian.PutUint32(buf[9:], v.FromO)
		},
		Get: func(buf []byte, v *CondVertex) {
			v.Degree = binary.LittleEndian.Uint32(buf)
			v.InS = buf[4] != 0
			v.FromS = binary.LittleEndian.Uint32(buf[5:])
			v.FromO = binary.LittleEndian.Uint32(buf[9:])
		},
	}
}

// UpdateCodec implements gas.Program.
func (*Conductance) UpdateCodec() gas.Codec[uint32] { return gas.Uint32Codec() }

// AccumBytes implements gas.Program.
func (*Conductance) AccumBytes() int { return 8 }

// Aggregate computes the conductance cut(S, S̄) / min(vol(S), vol(S̄)) from
// the final vertex states.
func (*Conductance) Aggregate(verts []CondVertex) float64 {
	var cut, volS, volO uint64
	for i := range verts {
		v := &verts[i]
		if v.InS {
			volS += uint64(v.Degree)
			cut += uint64(v.FromO)
		} else {
			volO += uint64(v.Degree)
			cut += uint64(v.FromS)
		}
	}
	den := min(volS, volO)
	if den == 0 {
		return 0
	}
	return float64(cut) / float64(den)
}
