package algorithms

import (
	"encoding/binary"

	"chaos/internal/gas"
	"chaos/internal/graph"
)

// SCC phase modes.
const (
	sccFwd = iota
	sccMarkRoots
	sccBwd
	sccFinalize
)

// SCCVertex is the per-vertex state of strongly connected components.
type SCCVertex struct {
	Color   uint32 // max vertex ID known to reach this vertex
	SCC     uint32 // assigned component, or unreachable while undecided
	Done    bool
	BwReach bool
	Active  bool
}

// SCCAccum carries the max color (forward phase) or a same-color hit
// (backward phase).
type SCCAccum struct {
	Max uint32
	Hit bool
}

// SCC computes strongly connected components by forward-backward coloring
// (the algorithm X-Stream uses): propagate the maximum vertex ID forward to
// fixpoint, giving every vertex a color; the vertex whose ID equals its
// color is the root of its color class; propagate backward within the class
// to find the root's SCC; peel it off and repeat on the remainder.
//
// The input must contain every directed edge twice: once forward with
// weight 0 and once reversed with weight 1 (see AugmentEdges); the weight
// field selects the propagation direction.
type SCC struct {
	mode int
}

// AugmentEdges returns the edge list SCC expects: each directed edge
// forward (weight 0) plus its reverse (weight 1).
func AugmentEdges(edges []graph.Edge) []graph.Edge {
	out := make([]graph.Edge, 0, 2*len(edges))
	for _, e := range edges {
		out = append(out, graph.Edge{Src: e.Src, Dst: e.Dst, Weight: 0},
			graph.Edge{Src: e.Dst, Dst: e.Src, Weight: 1})
	}
	return out
}

// Name implements gas.Program.
func (*SCC) Name() string { return "SCC" }

// Weighted implements gas.Program: the weight carries the edge direction
// tag.
func (*SCC) Weighted() bool { return true }

// NeedsDegrees implements gas.Program.
func (*SCC) NeedsDegrees() bool { return false }

// Init implements gas.Program.
func (s *SCC) Init(id graph.VertexID, v *SCCVertex, _ uint32) {
	s.mode = sccFwd
	v.Color = uint32(id)
	v.SCC = unreachable
	v.Active = true
}

// Scatter implements gas.Program.
func (s *SCC) Scatter(_ int, e graph.Edge, src *SCCVertex) (graph.VertexID, uint32, bool) {
	if src.Done || !src.Active {
		return 0, 0, false
	}
	switch s.mode {
	case sccFwd:
		if e.Weight == 0 {
			return e.Dst, src.Color, true
		}
	case sccBwd:
		if e.Weight == 1 && src.BwReach {
			return e.Dst, src.Color, true
		}
	}
	return 0, 0, false
}

// InitAccum implements gas.Program.
func (*SCC) InitAccum() SCCAccum { return SCCAccum{} }

// Gather implements gas.Program: max color forward; same-color hit
// backward. Done vertices ignore all traffic.
func (s *SCC) Gather(a SCCAccum, u uint32, v *SCCVertex) SCCAccum {
	if v.Done {
		return a
	}
	switch s.mode {
	case sccFwd:
		if u > a.Max {
			a.Max = u
		}
	case sccBwd:
		if !v.BwReach && u == v.Color {
			a.Hit = true
		}
	}
	return a
}

// Merge implements gas.Program.
func (*SCC) Merge(a, b SCCAccum) SCCAccum {
	if b.Max > a.Max {
		a.Max = b.Max
	}
	if b.Hit {
		a.Hit = true
	}
	return a
}

// Apply implements gas.Program.
func (s *SCC) Apply(_ int, id graph.VertexID, v *SCCVertex, a SCCAccum) bool {
	if v.Done {
		v.Active = false
		return false
	}
	switch s.mode {
	case sccFwd:
		if a.Max > v.Color {
			v.Color = a.Max
			v.Active = true
			return true
		}
		v.Active = false
		return false
	case sccMarkRoots:
		if v.Color == uint32(id) && !v.BwReach {
			v.BwReach = true
			v.Active = true
			return true
		}
		v.Active = false
		return false
	case sccBwd:
		if !v.BwReach && a.Hit {
			v.BwReach = true
			v.Active = true
			return true
		}
		v.Active = false
		return false
	default: // sccFinalize
		changed := false
		if v.BwReach {
			v.SCC = v.Color
			v.Done = true
			changed = true
		} else {
			// Reset for the next peeling round.
			v.Color = uint32(id)
		}
		v.BwReach = false
		v.Active = !v.Done
		return changed
	}
}

// Converged implements gas.Program; it also advances the phase machine
// (called exactly once per iteration, after all applies).
func (s *SCC) Converged(_ int, changed uint64) bool {
	switch s.mode {
	case sccFwd:
		if changed == 0 {
			s.mode = sccMarkRoots
		}
	case sccMarkRoots:
		if changed == 0 {
			return true // no roots marked: every vertex is done
		}
		s.mode = sccBwd
	case sccBwd:
		if changed == 0 {
			s.mode = sccFinalize
		}
	default:
		s.mode = sccFwd
	}
	return false
}

// VertexCodec implements gas.Program.
func (*SCC) VertexCodec() gas.Codec[SCCVertex] {
	return gas.Codec[SCCVertex]{
		Bytes: 11,
		Put: func(buf []byte, v *SCCVertex) {
			binary.LittleEndian.PutUint32(buf, v.Color)
			binary.LittleEndian.PutUint32(buf[4:], v.SCC)
			buf[8] = b2u(v.Done)
			buf[9] = b2u(v.BwReach)
			buf[10] = b2u(v.Active)
		},
		Get: func(buf []byte, v *SCCVertex) {
			v.Color = binary.LittleEndian.Uint32(buf)
			v.SCC = binary.LittleEndian.Uint32(buf[4:])
			v.Done = buf[8] != 0
			v.BwReach = buf[9] != 0
			v.Active = buf[10] != 0
		},
	}
}

// UpdateCodec implements gas.Program.
func (*SCC) UpdateCodec() gas.Codec[uint32] { return gas.Uint32Codec() }

// AccumBytes implements gas.Program.
func (*SCC) AccumBytes() int { return 5 }
