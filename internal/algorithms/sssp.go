package algorithms

import (
	"encoding/binary"
	"math"

	"chaos/internal/gas"
	"chaos/internal/graph"
)

// SSSPVertex is the per-vertex state of single-source shortest paths.
type SSSPVertex struct {
	Dist   float32
	Active bool
}

// SSSP computes single-source shortest paths by Bellman-Ford frontier
// relaxation over a weighted undirected edge list.
type SSSP struct {
	// Root is the source vertex (0 by default).
	Root graph.VertexID
}

// Name implements gas.Program.
func (*SSSP) Name() string { return "SSSP" }

// Weighted implements gas.Program.
func (*SSSP) Weighted() bool { return true }

// NeedsDegrees implements gas.Program.
func (*SSSP) NeedsDegrees() bool { return false }

// Inf is the distance of unreached vertices.
const Inf = float32(math.MaxFloat32)

// Init implements gas.Program.
func (s *SSSP) Init(id graph.VertexID, v *SSSPVertex, _ uint32) {
	if id == s.Root {
		v.Dist = 0
		v.Active = true
	} else {
		v.Dist = Inf
		v.Active = false
	}
}

// Scatter implements gas.Program: relaxed vertices propose dist+weight.
func (s *SSSP) Scatter(_ int, e graph.Edge, src *SSSPVertex) (graph.VertexID, float32, bool) {
	if !src.Active {
		return 0, 0, false
	}
	return e.Dst, src.Dist + e.Weight, true
}

// InitAccum implements gas.Program.
func (*SSSP) InitAccum() float32 { return Inf }

// Gather implements gas.Program.
func (*SSSP) Gather(a float32, u float32, _ *SSSPVertex) float32 { return min(a, u) }

// Merge implements gas.Program.
func (*SSSP) Merge(a, b float32) float32 { return min(a, b) }

// Apply implements gas.Program.
func (*SSSP) Apply(_ int, _ graph.VertexID, v *SSSPVertex, a float32) bool {
	if a < v.Dist {
		v.Dist = a
		v.Active = true
		return true
	}
	v.Active = false
	return false
}

// Converged implements gas.Program.
func (*SSSP) Converged(_ int, changed uint64) bool { return changed == 0 }

// VertexCodec implements gas.Program.
func (*SSSP) VertexCodec() gas.Codec[SSSPVertex] {
	return gas.Codec[SSSPVertex]{
		Bytes: 5,
		Put: func(buf []byte, v *SSSPVertex) {
			binary.LittleEndian.PutUint32(buf, math.Float32bits(v.Dist))
			buf[4] = b2u(v.Active)
		},
		Get: func(buf []byte, v *SSSPVertex) {
			v.Dist = math.Float32frombits(binary.LittleEndian.Uint32(buf))
			v.Active = buf[4] != 0
		},
	}
}

// UpdateCodec implements gas.Program.
func (*SSSP) UpdateCodec() gas.Codec[float32] { return gas.Float32Codec() }

// AccumBytes implements gas.Program.
func (*SSSP) AccumBytes() int { return 4 }

// Combine implements gas.Combiner: competing distance proposals keep the
// minimum.
func (*SSSP) Combine(a, b float32) float32 { return min(a, b) }
