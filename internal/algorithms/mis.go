package algorithms

import (
	"encoding/binary"

	"chaos/internal/gas"
	"chaos/internal/graph"
)

// MIS vertex states.
const (
	misUndecided = uint8(0)
	misIn        = uint8(1)
	misOut       = uint8(2)
)

// MISVertex is the per-vertex state of maximal independent set.
type MISVertex struct {
	State uint8
	Fresh bool // joined the set last round; must eliminate neighbors
}

// MISUpdate is either a priority announcement (select step) or an
// elimination notice (Elim).
type MISUpdate struct {
	Prio uint64
	ID   uint32
	Elim bool
}

// MISAccum keeps the minimum (priority, id) heard and whether an
// elimination notice arrived.
type MISAccum struct {
	Prio uint64
	ID   uint32
	Seen bool
	Hit  bool
}

// MIS computes a maximal independent set with Luby's algorithm on an
// undirected edge list. Rounds alternate two iterations: in the select
// step every undecided vertex announces a fresh deterministic random
// priority and joins the set if it beats all undecided neighbors; in the
// eliminate step new members knock out their undecided neighbors.
type MIS struct{}

// Name implements gas.Program.
func (*MIS) Name() string { return "MIS" }

// Weighted implements gas.Program.
func (*MIS) Weighted() bool { return false }

// NeedsDegrees implements gas.Program.
func (*MIS) NeedsDegrees() bool { return false }

// Init implements gas.Program.
func (*MIS) Init(_ graph.VertexID, v *MISVertex, _ uint32) {
	v.State = misUndecided
	v.Fresh = false
}

// Scatter implements gas.Program: self-loops are ignored — a vertex never
// blocks itself.
func (*MIS) Scatter(iter int, e graph.Edge, src *MISVertex) (graph.VertexID, MISUpdate, bool) {
	if e.Src == e.Dst {
		return 0, MISUpdate{}, false
	}
	if iter%2 == 0 {
		if src.State != misUndecided {
			return 0, MISUpdate{}, false
		}
		return e.Dst, MISUpdate{Prio: hashPrio(e.Src, iter/2), ID: uint32(e.Src)}, true
	}
	if src.State == misIn && src.Fresh {
		return e.Dst, MISUpdate{Elim: true}, true
	}
	return 0, MISUpdate{}, false
}

// InitAccum implements gas.Program.
func (*MIS) InitAccum() MISAccum {
	return MISAccum{Prio: ^uint64(0), ID: ^uint32(0)}
}

// Gather implements gas.Program.
func (*MIS) Gather(a MISAccum, u MISUpdate, _ *MISVertex) MISAccum {
	if u.Elim {
		a.Hit = true
		return a
	}
	if !a.Seen || u.Prio < a.Prio || (u.Prio == a.Prio && u.ID < a.ID) {
		a.Prio, a.ID, a.Seen = u.Prio, u.ID, true
	}
	return a
}

// Merge implements gas.Program.
func (*MIS) Merge(a, b MISAccum) MISAccum {
	if b.Hit {
		a.Hit = true
	}
	if b.Seen && (!a.Seen || b.Prio < a.Prio || (b.Prio == a.Prio && b.ID < a.ID)) {
		a.Prio, a.ID, a.Seen = b.Prio, b.ID, true
	}
	return a
}

// Apply implements gas.Program.
func (*MIS) Apply(iter int, id graph.VertexID, v *MISVertex, a MISAccum) bool {
	if iter%2 == 0 {
		// Select step: join if my priority beats every undecided
		// neighbor's.
		if v.State != misUndecided {
			return false
		}
		mine := hashPrio(id, iter/2)
		if !a.Seen || mine < a.Prio || (mine == a.Prio && uint32(id) < a.ID) {
			v.State = misIn
			v.Fresh = true
			return true
		}
		return false
	}
	// Eliminate step.
	if v.State == misIn && v.Fresh {
		v.Fresh = false
	}
	if v.State == misUndecided && a.Hit {
		v.State = misOut
		return true
	}
	return false
}

// Converged implements gas.Program: a select step that adds nobody means no
// undecided vertices remain.
func (*MIS) Converged(iter int, changed uint64) bool {
	return iter%2 == 0 && changed == 0
}

// VertexCodec implements gas.Program.
func (*MIS) VertexCodec() gas.Codec[MISVertex] {
	return gas.Codec[MISVertex]{
		Bytes: 2,
		Put: func(buf []byte, v *MISVertex) {
			buf[0] = v.State
			buf[1] = b2u(v.Fresh)
		},
		Get: func(buf []byte, v *MISVertex) {
			v.State = buf[0]
			v.Fresh = buf[1] != 0
		},
	}
}

// UpdateCodec implements gas.Program.
func (*MIS) UpdateCodec() gas.Codec[MISUpdate] {
	return gas.Codec[MISUpdate]{
		Bytes: 13,
		Put: func(buf []byte, u *MISUpdate) {
			binary.LittleEndian.PutUint64(buf, u.Prio)
			binary.LittleEndian.PutUint32(buf[8:], u.ID)
			buf[12] = b2u(u.Elim)
		},
		Get: func(buf []byte, u *MISUpdate) {
			u.Prio = binary.LittleEndian.Uint64(buf)
			u.ID = binary.LittleEndian.Uint32(buf[8:])
			u.Elim = buf[12] != 0
		},
	}
}

// AccumBytes implements gas.Program.
func (*MIS) AccumBytes() int { return 14 }

// InSet reports whether vertex state v is in the computed set.
func (*MIS) InSet(v MISVertex) bool { return v.State == misIn }
