package algorithms

import (
	"encoding/binary"
	"math"

	"chaos/internal/gas"
	"chaos/internal/graph"
)

// BPVertex is the per-vertex state of belief propagation.
type BPVertex struct {
	Belief float32
}

// BP runs a fixed number of rounds of simplified loopy belief propagation
// for a binary pairwise Markov random field over the weighted directed
// edge list: each vertex holds a log-odds belief, every edge carries the
// damped message w*tanh(belief), and the gather sums incoming messages
// which are combined with the vertex's deterministic prior.
type BP struct {
	// Iterations is the number of message rounds (default 5).
	Iterations int
}

// Name implements gas.Program.
func (*BP) Name() string { return "BP" }

// Weighted implements gas.Program.
func (*BP) Weighted() bool { return true }

// NeedsDegrees implements gas.Program.
func (*BP) NeedsDegrees() bool { return false }

func (b *BP) iters() int {
	if b.Iterations > 0 {
		return b.Iterations
	}
	return 5
}

// Prior returns the deterministic log-odds prior of a vertex (a hash-based
// stand-in for observed evidence).
func (*BP) Prior(id graph.VertexID) float32 {
	if mix64(uint64(id))&2 == 0 {
		return 0.5
	}
	return -0.5
}

// Init implements gas.Program.
func (b *BP) Init(id graph.VertexID, v *BPVertex, _ uint32) {
	v.Belief = b.Prior(id)
}

// Scatter implements gas.Program.
func (*BP) Scatter(_ int, e graph.Edge, src *BPVertex) (graph.VertexID, float32, bool) {
	msg := e.Weight * float32(math.Tanh(float64(src.Belief)))
	return e.Dst, msg, true
}

// InitAccum implements gas.Program.
func (*BP) InitAccum() float64 { return 0 }

// Gather implements gas.Program.
func (*BP) Gather(a float64, u float32, _ *BPVertex) float64 { return a + float64(u) }

// Merge implements gas.Program.
func (*BP) Merge(a, b float64) float64 { return a + b }

// Apply implements gas.Program: damped update, clamped for stability.
func (b *BP) Apply(_ int, id graph.VertexID, v *BPVertex, a float64) bool {
	nb := float64(b.Prior(id)) + 0.5*a
	if nb > 10 {
		nb = 10
	}
	if nb < -10 {
		nb = -10
	}
	v.Belief = float32(nb)
	return true
}

// Converged implements gas.Program.
func (b *BP) Converged(iter int, _ uint64) bool { return iter+1 >= b.iters() }

// VertexCodec implements gas.Program.
func (*BP) VertexCodec() gas.Codec[BPVertex] {
	return gas.Codec[BPVertex]{
		Bytes: 4,
		Put: func(buf []byte, v *BPVertex) {
			binary.LittleEndian.PutUint32(buf, math.Float32bits(v.Belief))
		},
		Get: func(buf []byte, v *BPVertex) {
			v.Belief = math.Float32frombits(binary.LittleEndian.Uint32(buf))
		},
	}
}

// UpdateCodec implements gas.Program.
func (*BP) UpdateCodec() gas.Codec[float32] { return gas.Float32Codec() }

// AccumBytes implements gas.Program.
func (*BP) AccumBytes() int { return 8 }
