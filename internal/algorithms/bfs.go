package algorithms

import (
	"encoding/binary"

	"chaos/internal/gas"
	"chaos/internal/graph"
)

// BFSVertex is the per-vertex state of breadth-first search: the BFS level
// (depth from the root) and the frontier flag.
type BFSVertex struct {
	Level  uint32
	Active bool
}

// BFS computes breadth-first levels from Root by frontier expansion: newly
// discovered vertices scatter their level along out-edges; gather keeps the
// minimum proposed level.
type BFS struct {
	// Root is the search root (vertex 0 by default).
	Root graph.VertexID
}

// Name implements gas.Program.
func (*BFS) Name() string { return "BFS" }

// Weighted implements gas.Program.
func (*BFS) Weighted() bool { return false }

// NeedsDegrees implements gas.Program.
func (*BFS) NeedsDegrees() bool { return false }

// Init implements gas.Program.
func (b *BFS) Init(id graph.VertexID, v *BFSVertex, _ uint32) {
	if id == b.Root {
		v.Level = 0
		v.Active = true
	} else {
		v.Level = unreachable
		v.Active = false
	}
}

// Scatter implements gas.Program: frontier vertices propose level+1 to
// their neighbors.
func (b *BFS) Scatter(_ int, e graph.Edge, src *BFSVertex) (graph.VertexID, uint32, bool) {
	if !src.Active {
		return 0, 0, false
	}
	return e.Dst, src.Level + 1, true
}

// InitAccum implements gas.Program.
func (*BFS) InitAccum() uint32 { return unreachable }

// Gather implements gas.Program: minimum proposed level.
func (*BFS) Gather(a uint32, u uint32, _ *BFSVertex) uint32 { return min(a, u) }

// Merge implements gas.Program.
func (*BFS) Merge(a, b uint32) uint32 { return min(a, b) }

// Apply implements gas.Program: adopt a strictly better level and join the
// next frontier.
func (b *BFS) Apply(_ int, _ graph.VertexID, v *BFSVertex, a uint32) bool {
	if a < v.Level {
		v.Level = a
		v.Active = true
		return true
	}
	v.Active = false
	return false
}

// Converged implements gas.Program: stop when the frontier dies out.
func (*BFS) Converged(_ int, changed uint64) bool { return changed == 0 }

// VertexCodec implements gas.Program.
func (*BFS) VertexCodec() gas.Codec[BFSVertex] {
	return gas.Codec[BFSVertex]{
		Bytes: 5,
		Put: func(buf []byte, v *BFSVertex) {
			binary.LittleEndian.PutUint32(buf, v.Level)
			buf[4] = b2u(v.Active)
		},
		Get: func(buf []byte, v *BFSVertex) {
			v.Level = binary.LittleEndian.Uint32(buf)
			v.Active = buf[4] != 0
		},
	}
}

// UpdateCodec implements gas.Program.
func (*BFS) UpdateCodec() gas.Codec[uint32] { return gas.Uint32Codec() }

// AccumBytes implements gas.Program.
func (*BFS) AccumBytes() int { return 4 }

func b2u(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// Combine implements gas.Combiner: competing level proposals keep the
// minimum.
func (*BFS) Combine(a, b uint32) uint32 { return min(a, b) }
