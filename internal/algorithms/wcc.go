package algorithms

import (
	"encoding/binary"

	"chaos/internal/gas"
	"chaos/internal/graph"
)

// WCCVertex is the per-vertex state of weakly connected components.
type WCCVertex struct {
	Label  uint32
	Active bool
}

// WCC finds weakly connected components by minimum-label propagation on an
// undirected edge list: every vertex starts with its own ID and adopts the
// smallest label it hears.
type WCC struct{}

// Name implements gas.Program.
func (*WCC) Name() string { return "WCC" }

// Weighted implements gas.Program.
func (*WCC) Weighted() bool { return false }

// NeedsDegrees implements gas.Program.
func (*WCC) NeedsDegrees() bool { return false }

// Init implements gas.Program.
func (*WCC) Init(id graph.VertexID, v *WCCVertex, _ uint32) {
	v.Label = uint32(id)
	v.Active = true
}

// Scatter implements gas.Program.
func (*WCC) Scatter(_ int, e graph.Edge, src *WCCVertex) (graph.VertexID, uint32, bool) {
	if !src.Active {
		return 0, 0, false
	}
	return e.Dst, src.Label, true
}

// InitAccum implements gas.Program.
func (*WCC) InitAccum() uint32 { return unreachable }

// Gather implements gas.Program.
func (*WCC) Gather(a uint32, u uint32, _ *WCCVertex) uint32 { return min(a, u) }

// Merge implements gas.Program.
func (*WCC) Merge(a, b uint32) uint32 { return min(a, b) }

// Apply implements gas.Program.
func (*WCC) Apply(_ int, _ graph.VertexID, v *WCCVertex, a uint32) bool {
	if a < v.Label {
		v.Label = a
		v.Active = true
		return true
	}
	v.Active = false
	return false
}

// Converged implements gas.Program.
func (*WCC) Converged(_ int, changed uint64) bool { return changed == 0 }

// VertexCodec implements gas.Program.
func (*WCC) VertexCodec() gas.Codec[WCCVertex] {
	return gas.Codec[WCCVertex]{
		Bytes: 5,
		Put: func(buf []byte, v *WCCVertex) {
			binary.LittleEndian.PutUint32(buf, v.Label)
			buf[4] = b2u(v.Active)
		},
		Get: func(buf []byte, v *WCCVertex) {
			v.Label = binary.LittleEndian.Uint32(buf)
			v.Active = buf[4] != 0
		},
	}
}

// UpdateCodec implements gas.Program.
func (*WCC) UpdateCodec() gas.Codec[uint32] { return gas.Uint32Codec() }

// AccumBytes implements gas.Program.
func (*WCC) AccumBytes() int { return 4 }

// Combine implements gas.Combiner: competing labels keep the minimum.
func (*WCC) Combine(a, b uint32) uint32 { return min(a, b) }
