// Package gridpart implements PowerGraph's grid (2-D constrained vertex
// cut) partitioning algorithm, the comparison point of Figure 20. Chaos
// argues that its cheap sequential-access partitioning plus runtime load
// balancing beats up-front high-quality partitioning; the figure shows the
// worst-case dynamic rebalance cost at about a tenth of the grid
// partitioner's running time, even with partitioning run fully in memory.
//
// The assignment logic here is the real algorithm (it computes actual
// placements and replication factors); its running time in the shared
// virtual-time frame is modeled from the same cluster parameters Chaos is
// simulated with, charging the in-memory pass the paper granted it: read
// the edge list once from storage, hash and place each edge, and shuffle
// every edge to its assigned machine.
package gridpart

import (
	"fmt"
	"math"

	"chaos/internal/cluster"
	"chaos/internal/graph"
	"chaos/internal/sim"
)

// Grid is a 2-D constrained vertex-cut partitioner for an n-machine
// cluster arranged as close to square as possible.
type Grid struct {
	Machines   int
	rows, cols int
}

// New creates a grid for the given machine count.
func New(machines int) (*Grid, error) {
	if machines <= 0 {
		return nil, fmt.Errorf("gridpart: invalid machine count %d", machines)
	}
	// Factor machines into the most square rows x cols grid.
	rows := int(math.Sqrt(float64(machines)))
	for machines%rows != 0 {
		rows--
	}
	return &Grid{Machines: machines, rows: rows, cols: machines / rows}, nil
}

// Shard returns the grid cell (machine) hosting vertex v's constraint set
// representative: vertices hash to a (row, col); an edge goes to a machine
// in the intersection of its endpoints' constraint sets.
func (g *Grid) shard(v graph.VertexID) (row, col int) {
	h := uint64(v) * 0x9E3779B97F4A7C15
	h ^= h >> 32
	return int(h % uint64(g.rows)), int((h / uint64(g.rows)) % uint64(g.cols))
}

// Assign places edge e on a machine: the intersection of the source's row
// and the destination's column (always non-empty in a full grid).
func (g *Grid) Assign(e graph.Edge) int {
	r, _ := g.shard(e.Src)
	_, c := g.shard(e.Dst)
	return r*g.cols + c
}

// Result reports the partitioning outcome and its modeled cost.
type Result struct {
	// Time is the modeled partitioning time on the cluster.
	Time sim.Time
	// ReplicationFactor is the mean number of machines holding a replica
	// of each vertex, the quality metric PowerGraph optimizes.
	ReplicationFactor float64
	// Balance is max-machine edge count over the mean.
	Balance float64
	// PerMachine is the edge count per machine.
	PerMachine []int64
}

// Partition runs the grid algorithm over the edge list and models its cost
// on the given hardware.
func (g *Grid) Partition(spec cluster.Spec, edges []graph.Edge, numVertices uint64) *Result {
	perMachine := make([]int64, g.Machines)
	replicas := make(map[uint64]map[int]bool, numVertices)
	for _, e := range edges {
		m := g.Assign(e)
		perMachine[m]++
		for _, v := range []graph.VertexID{e.Src, e.Dst} {
			set := replicas[uint64(v)]
			if set == nil {
				set = make(map[int]bool, 2)
				replicas[uint64(v)] = set
			}
			set[m] = true
		}
	}
	var totalReplicas int64
	for _, set := range replicas {
		totalReplicas += int64(len(set))
	}
	rf := 0.0
	if len(replicas) > 0 {
		rf = float64(totalReplicas) / float64(len(replicas))
	}
	var maxEdges int64
	for _, c := range perMachine {
		if c > maxEdges {
			maxEdges = c
		}
	}
	mean := float64(len(edges)) / float64(g.Machines)
	balance := 0.0
	if mean > 0 {
		balance = float64(maxEdges) / mean
	}

	// Cost model (circumstances favorable to partitioning, as in §10.3):
	// the graph is read once from the aggregate storage of the cluster
	// and each edge record crosses the network once to its assigned
	// machine; edge placement plus replica/routing-table construction
	// proceeds at PowerGraph's measured in-memory ingress rate of about
	// one million edges per second per machine (OSDI'12 loading
	// figures).
	const ingressEdgesPerSecPerMachine = 1e6
	edgeBytes := int64(graph.FormatFor(numVertices, false).EdgeSize())
	readTime := float64(int64(len(edges))*edgeBytes) / (float64(spec.Machines) * spec.StorageBytesPerSec)
	buildTime := float64(len(edges)) / (float64(spec.Machines) * ingressEdgesPerSecPerMachine)
	shuffleTime := float64(maxEdges*edgeBytes) / spec.NICBytesPerSec
	secs := readTime + buildTime + shuffleTime
	return &Result{
		Time:              sim.Seconds(secs),
		ReplicationFactor: rf,
		Balance:           balance,
		PerMachine:        perMachine,
	}
}
