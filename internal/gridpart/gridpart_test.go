package gridpart

import (
	"testing"

	"chaos/internal/cluster"
	"chaos/internal/graph"
	"chaos/internal/rmat"
)

func TestGridShapes(t *testing.T) {
	for _, tc := range []struct{ m, rows, cols int }{
		{1, 1, 1}, {4, 2, 2}, {8, 2, 4}, {16, 4, 4}, {32, 4, 8}, {6, 2, 3},
	} {
		g, err := New(tc.m)
		if err != nil {
			t.Fatal(err)
		}
		if g.rows != tc.rows || g.cols != tc.cols {
			t.Errorf("m=%d: grid %dx%d, want %dx%d", tc.m, g.rows, g.cols, tc.rows, tc.cols)
		}
	}
	if _, err := New(0); err == nil {
		t.Error("zero machines should error")
	}
}

func TestAssignInRangeAndDeterministic(t *testing.T) {
	g, _ := New(16)
	for i := 0; i < 1000; i++ {
		e := graph.Edge{Src: graph.VertexID(i * 7), Dst: graph.VertexID(i * 13)}
		m := g.Assign(e)
		if m < 0 || m >= 16 || m != g.Assign(e) {
			t.Fatalf("assign(%v) = %d", e, m)
		}
	}
}

func TestReplicationFactorBounded(t *testing.T) {
	// Grid partitioning bounds the replication factor by
	// rows + cols - 1; RMAT graphs should come in well under that for
	// low-degree vertices but above 1.
	gen := rmat.New(10, 9)
	edges := gen.Generate()
	g, _ := New(16)
	res := g.Partition(cluster.SSD(16), edges, gen.NumVertices())
	if res.ReplicationFactor < 1 || res.ReplicationFactor > 7 {
		t.Errorf("replication factor %.2f outside (1, rows+cols-1]", res.ReplicationFactor)
	}
	if res.Balance < 1 {
		t.Errorf("balance %.2f below 1", res.Balance)
	}
	if res.Time <= 0 {
		t.Error("no partitioning time modeled")
	}
	var total int64
	for _, c := range res.PerMachine {
		total += c
	}
	if total != int64(len(edges)) {
		t.Errorf("placed %d edges, want %d", total, len(edges))
	}
}

func TestPartitioningCostGrowsWithGraph(t *testing.T) {
	g, _ := New(4)
	small := rmat.New(8, 1)
	large := rmat.New(11, 1)
	rs := g.Partition(cluster.SSD(4), small.Generate(), small.NumVertices())
	rl := g.Partition(cluster.SSD(4), large.Generate(), large.NumVertices())
	if rl.Time <= rs.Time {
		t.Errorf("larger graph partitioned faster: %v vs %v", rl.Time, rs.Time)
	}
}
