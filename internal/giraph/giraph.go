// Package giraph implements the comparison baseline of Figure 19: a
// Pregel-style vertex-centric BSP engine with out-of-core support, as in
// Apache Giraph. Vertices are statically hash-partitioned across machines;
// each machine processes only its own vertices, spills adjacency lists and
// incoming messages to its local disk, and synchronizes at superstep
// barriers. There is no dynamic load balancing of any kind — the property
// whose absence the figure demonstrates.
//
// The engine runs real PageRank over real graph data on the same simulated
// cluster as Chaos, so the two systems' scaling curves are directly
// comparable (each normalized to its own single-machine runtime, as the
// paper does to factor out constant-factor engineering differences such as
// JVM overhead).
package giraph

import (
	"fmt"

	"chaos/internal/cluster"
	"chaos/internal/graph"
	"chaos/internal/sim"
)

// Config parameterizes a Giraph-style run.
type Config struct {
	Spec cluster.Spec
	// Iterations is the number of PageRank supersteps.
	Iterations int
	// BytesPerMessage models Giraph's message record size (vertex ID +
	// value plus object overhead; Giraph's Java object model makes this
	// considerably larger than Chaos's packed updates).
	BytesPerMessage int
	// SpillFragmentation models the out-of-core message store's random
	// access pattern: incoming message batches from every peer
	// interleave across per-partition spill files, so the effective
	// spill bandwidth degrades with the number of senders. The paper
	// attributes much of out-of-core Giraph's slowdown to such
	// engineering issues (§10.2). Effective spill cost is multiplied by
	// (1 + SpillFragmentation*(machines-1)).
	SpillFragmentation float64
	// Seed drives placement randomness.
	Seed int64
}

// DefaultConfig returns the baseline configuration on the given hardware.
func DefaultConfig(spec cluster.Spec) Config {
	return Config{Spec: spec, Iterations: 5, BytesPerMessage: 16, SpillFragmentation: 0.15, Seed: 1}
}

// Owner returns the machine owning vertex v under random (hash)
// partitioning, Giraph's default.
func Owner(v graph.VertexID, machines int) int {
	h := uint64(v) * 0x9E3779B97F4A7C15
	h ^= h >> 32
	return int(h % uint64(machines))
}

// Result summarizes a run.
type Result struct {
	Runtime    sim.Time
	Ranks      []float64
	MaxLoad    float64 // max over machines of per-superstep work share
	BytesMoved int64
}

// RunPageRank executes PageRank on the Giraph baseline and returns the
// runtime plus the computed ranks (validated against the same reference as
// Chaos).
func RunPageRank(cfg Config, edges []graph.Edge, numVertices uint64) (*Result, error) {
	if cfg.Spec.Machines <= 0 {
		return nil, fmt.Errorf("giraph: invalid machine count")
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 5
	}
	if cfg.BytesPerMessage <= 0 {
		cfg.BytesPerMessage = 16
	}
	nm := cfg.Spec.Machines
	env := sim.NewEnv(cfg.Seed)
	clu := cluster.New(env, cfg.Spec)

	// Static partitioning: each machine owns the out-edges of its
	// vertices and receives the messages of its vertices.
	owner := make([]int, numVertices)
	degree := make([]uint32, numVertices)
	for v := range owner {
		owner[v] = Owner(graph.VertexID(v), nm)
	}
	machEdges := make([][]graph.Edge, nm)
	for _, e := range edges {
		degree[e.Src]++
		machEdges[owner[e.Src]] = append(machEdges[owner[e.Src]], e)
	}

	rank := make([]float64, numVertices)
	for i := range rank {
		rank[i] = 1
	}
	sums := make([]float64, numVertices)

	const edgeBytes = 8
	barrier := sim.NewBarrier(env, nm)
	res := &Result{}

	for i := 0; i < nm; i++ {
		i := i
		env.Spawn(fmt.Sprintf("giraph%d", i), func(p *sim.Proc) {
			me := clu.Machines[i]
			myEdges := machEdges[i]
			// Message bytes this machine will receive per superstep:
			// one message per in-edge of an owned vertex.
			var inMsgs int64
			for _, e := range edges {
				if owner[e.Dst] == i {
					inMsgs++
				}
			}
			for step := 0; step < cfg.Iterations; step++ {
				// Compute phase: stream own adjacency from local
				// disk, emit one message per edge to the target's
				// owner. Out-of-core Giraph reads its edge store
				// and writes incoming messages to disk.
				me.Device.Use(p, int64(len(myEdges))*edgeBytes)
				me.CPU.Use(p, int64(len(myEdges)))
				perOwner := make([]int64, nm)
				for _, e := range myEdges {
					sums[e.Dst] += rank[e.Src] / float64(degree[e.Src])
					perOwner[owner[e.Dst]]++
				}
				for o, cnt := range perOwner {
					if cnt == 0 {
						continue
					}
					bytes := cnt * int64(cfg.BytesPerMessage)
					if o != i {
						// Egress charge; the receiver's spill is
						// charged below against its own budget.
						me.NICOut.Use(p, bytes)
					}
				}
				// Spill received messages to local disk, then read
				// them back for the apply; fragmentation across
				// per-partition stores grows with the sender count.
				frag := 1 + cfg.SpillFragmentation*float64(nm-1)
				me.Device.Use(p, int64(float64(2*inMsgs*int64(cfg.BytesPerMessage))*frag))
				barrier.Wait(p)
				// Apply phase for owned vertices (machine 0 also
				// folds the shared arrays exactly once).
				if i == 0 {
					for v := range rank {
						rank[v] = 0.15 + 0.85*sums[v]
						sums[v] = 0
					}
				}
				me.CPU.Use(p, int64(len(rank))/int64(nm)+1)
				barrier.Wait(p)
			}
		})
	}
	env.Run()
	if stuck := env.Stuck(); len(stuck) > 0 {
		env.Close()
		return nil, fmt.Errorf("giraph: stuck processes: %v", stuck)
	}
	env.Close()

	res.Runtime = env.Now()
	res.Ranks = rank
	res.BytesMoved = clu.BytesMoved()
	// Load imbalance: max per-machine edge share over the mean.
	maxEdges := 0
	for _, es := range machEdges {
		if len(es) > maxEdges {
			maxEdges = len(es)
		}
	}
	mean := float64(len(edges)) / float64(nm)
	if mean > 0 {
		res.MaxLoad = float64(maxEdges) / mean
	}
	return res, nil
}
