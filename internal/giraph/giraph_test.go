package giraph

import (
	"math"
	"testing"

	"chaos/internal/cluster"
	"chaos/internal/graph"
	"chaos/internal/refalgo"
	"chaos/internal/rmat"
)

func TestPageRankCorrect(t *testing.T) {
	g := rmat.New(8, 3)
	edges := g.Generate()
	n := g.NumVertices()
	res, err := RunPageRank(DefaultConfig(cluster.SSD(4)), edges, n)
	if err != nil {
		t.Fatal(err)
	}
	want := refalgo.PageRank(graph.BuildAdjacency(edges, n), 5)
	for i := range res.Ranks {
		if math.Abs(res.Ranks[i]-want[i]) > 1e-9*math.Max(1, want[i]) {
			t.Fatalf("vertex %d: rank %g, want %g", i, res.Ranks[i], want[i])
		}
	}
	if res.Runtime <= 0 {
		t.Error("no runtime recorded")
	}
}

func TestOwnerIsDeterministicAndInRange(t *testing.T) {
	for v := graph.VertexID(0); v < 1000; v++ {
		o := Owner(v, 7)
		if o != Owner(v, 7) || o < 0 || o >= 7 {
			t.Fatalf("owner(%d) = %d", v, o)
		}
	}
}

func TestScalingWorseThanLinear(t *testing.T) {
	// Static partitioning cannot beat perfect scaling; the skewed
	// message load should keep speedup clearly below linear.
	g := rmat.New(10, 5)
	edges := g.Generate()
	n := g.NumVertices()
	r1, err := RunPageRank(DefaultConfig(cluster.SSD(1)), edges, n)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := RunPageRank(DefaultConfig(cluster.SSD(8)), edges, n)
	if err != nil {
		t.Fatal(err)
	}
	speedup := r1.Runtime.Seconds() / r8.Runtime.Seconds()
	if speedup > 8 {
		t.Errorf("speedup %.1f exceeds machine count", speedup)
	}
	if speedup < 1 {
		t.Errorf("8 machines slower than 1: speedup %.2f", speedup)
	}
	if r8.MaxLoad < 1 {
		t.Errorf("max load %.2f below mean", r8.MaxLoad)
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := RunPageRank(Config{}, nil, 0); err == nil {
		t.Error("zero machines should error")
	}
}
