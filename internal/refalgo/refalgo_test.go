package refalgo

import (
	"math"
	"testing"

	"chaos/internal/graph"
)

// line returns the path graph 0-1-2-...-(n-1) as a symmetric edge list.
func line(n int) *graph.Adjacency {
	var edges []graph.Edge
	for i := 0; i < n-1; i++ {
		edges = append(edges,
			graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1), Weight: 1},
			graph.Edge{Src: graph.VertexID(i + 1), Dst: graph.VertexID(i), Weight: 1})
	}
	return graph.BuildAdjacency(edges, uint64(n))
}

func TestBFSLevelsOnLine(t *testing.T) {
	levels := BFSLevels(line(5), 0)
	for i, want := range []uint32{0, 1, 2, 3, 4} {
		if levels[i] != want {
			t.Errorf("level[%d] = %d, want %d", i, levels[i], want)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	adj := graph.BuildAdjacency([]graph.Edge{{Src: 0, Dst: 1}}, 3)
	levels := BFSLevels(adj, 0)
	if levels[2] != ^uint32(0) {
		t.Errorf("isolated vertex level = %d, want unreachable", levels[2])
	}
}

func TestWCCLabelsTwoComponents(t *testing.T) {
	edges := []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0},
		{Src: 2, Dst: 3}, {Src: 3, Dst: 2},
	}
	labels := WCCLabels(graph.BuildAdjacency(edges, 4))
	if labels[0] != 0 || labels[1] != 0 || labels[2] != 2 || labels[3] != 2 {
		t.Errorf("labels = %v", labels)
	}
}

func TestSSSPOnWeightedTriangle(t *testing.T) {
	edges := graph.Undirected([]graph.Edge{
		{Src: 0, Dst: 1, Weight: 5},
		{Src: 1, Dst: 2, Weight: 1},
		{Src: 0, Dst: 2, Weight: 2},
	})
	d := SSSPDistances(graph.BuildAdjacency(edges, 3), 0)
	if d[0] != 0 || d[2] != 2 || d[1] != 3 {
		t.Errorf("distances = %v, want [0 3 2]", d)
	}
}

func TestPageRankSinksAndSources(t *testing.T) {
	// 0 -> 1, 1 has no out-edges.
	ranks := PageRank(graph.BuildAdjacency([]graph.Edge{{Src: 0, Dst: 1}}, 2), 1)
	if ranks[0] != 0.15 {
		t.Errorf("source rank = %f, want 0.15", ranks[0])
	}
	if math.Abs(ranks[1]-(0.15+0.85)) > 1e-12 {
		t.Errorf("sink rank = %f, want 1.0", ranks[1])
	}
}

func TestMSTWeightOnKnownGraph(t *testing.T) {
	// Square with a diagonal: MST = 1 + 1 + 2 = 4... edges (0-1:1),
	// (1-2:1), (2-3:3), (0-3:2), (0-2:5): MST takes 1,1,2.
	edges := graph.Undirected([]graph.Edge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 1, Dst: 2, Weight: 1},
		{Src: 2, Dst: 3, Weight: 3},
		{Src: 0, Dst: 3, Weight: 2},
		{Src: 0, Dst: 2, Weight: 5},
	})
	w, n := MSTWeight(graph.BuildAdjacency(edges, 4))
	if w != 4 || n != 3 {
		t.Errorf("MST weight=%f edges=%d, want 4 and 3", w, n)
	}
}

func TestSCCIDsOnTwoCycles(t *testing.T) {
	// Cycle {0,1,2} -> cycle {3,4}.
	edges := []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0},
		{Src: 2, Dst: 3},
		{Src: 3, Dst: 4}, {Src: 4, Dst: 3},
	}
	ids := SCCIDs(graph.BuildAdjacency(edges, 5))
	if ids[0] != ids[1] || ids[1] != ids[2] {
		t.Errorf("first cycle split: %v", ids)
	}
	if ids[3] != ids[4] {
		t.Errorf("second cycle split: %v", ids)
	}
	if ids[0] == ids[3] {
		t.Errorf("cycles merged: %v", ids)
	}
}

func TestSpMVIdentityLike(t *testing.T) {
	// Diagonal-ish: edge i -> i with weight 2 doubles x.
	edges := []graph.Edge{{Src: 0, Dst: 0, Weight: 2}, {Src: 1, Dst: 1, Weight: 2}}
	y := SpMV(graph.BuildAdjacency(edges, 2), []float32{3, 4})
	if y[0] != 6 || y[1] != 8 {
		t.Errorf("y = %v, want [6 8]", y)
	}
}

func TestConductanceFullCut(t *testing.T) {
	// 0 <-> 1 with S={0}: both directed edges cross, volumes are 1 and 1.
	adj := graph.BuildAdjacency([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}}, 2)
	c := Conductance(adj, func(v graph.VertexID) bool { return v == 0 })
	if c != 2 {
		t.Errorf("conductance = %f, want 2 (both edges cross, min volume 1)", c)
	}
	// Zero min-volume side yields zero by convention.
	one := graph.BuildAdjacency([]graph.Edge{{Src: 0, Dst: 1}}, 2)
	if got := Conductance(one, func(v graph.VertexID) bool { return v == 0 }); got != 0 {
		t.Errorf("conductance with empty side = %f, want 0", got)
	}
}

func TestIndependentSetCheckers(t *testing.T) {
	adj := line(4) // path 0-1-2-3
	if !IsIndependentSet(adj, []bool{true, false, true, false}) {
		t.Error("alternating set should be independent")
	}
	if IsIndependentSet(adj, []bool{true, true, false, false}) {
		t.Error("adjacent pair should not be independent")
	}
	if !IsMaximalIndependentSet(adj, []bool{true, false, true, false}) {
		t.Error("alternating set on a path is maximal")
	}
	if IsMaximalIndependentSet(adj, []bool{true, false, false, false}) {
		t.Error("non-maximal set accepted (vertices 2,3 uncovered)")
	}
}

func TestBPBeliefsMatchesHandRolled(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1, Weight: 1}}
	prior := func(v graph.VertexID) float32 { return 0.5 }
	b := BPBeliefs(graph.BuildAdjacency(edges, 2), prior, 1)
	want1 := 0.5 + 0.5*math.Tanh(0.5)
	if math.Abs(float64(b[1])-want1) > 1e-6 {
		t.Errorf("belief[1] = %f, want %f", b[1], want1)
	}
	if b[0] != 0.5 {
		t.Errorf("belief[0] = %f, want prior 0.5 (no in-edges)", b[0])
	}
}
