// Package refalgo provides simple sequential in-memory reference
// implementations of the evaluation algorithms. The test suite validates
// the Chaos engine's distributed, out-of-core results against these.
package refalgo

import (
	"container/heap"
	"math"
	"sort"

	"chaos/internal/graph"
)

// BFSLevels returns the BFS level of every vertex from root (max uint32 for
// unreachable vertices).
func BFSLevels(adj *graph.Adjacency, root graph.VertexID) []uint32 {
	const inf = ^uint32(0)
	levels := make([]uint32, adj.N)
	for i := range levels {
		levels[i] = inf
	}
	levels[root] = 0
	frontier := []graph.VertexID{root}
	for len(frontier) > 0 {
		var next []graph.VertexID
		for _, v := range frontier {
			for _, e := range adj.Out[v] {
				if levels[e.Dst] == inf {
					levels[e.Dst] = levels[v] + 1
					next = append(next, e.Dst)
				}
			}
		}
		frontier = next
	}
	return levels
}

// WCCLabels returns the minimum vertex ID in each vertex's weakly connected
// component (the edge list must already be symmetric).
func WCCLabels(adj *graph.Adjacency) []uint32 {
	labels := make([]uint32, adj.N)
	for i := range labels {
		labels[i] = uint32(i)
	}
	// Union-find by minimum label.
	parent := make([]int, adj.N)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for v := range adj.Out {
		for _, e := range adj.Out[v] {
			a, b := find(v), find(int(e.Dst))
			if a != b {
				if a < b {
					parent[b] = a
				} else {
					parent[a] = b
				}
			}
		}
	}
	for i := range labels {
		labels[i] = uint32(find(i))
	}
	return labels
}

// distHeap is a min-heap for Dijkstra.
type distItem struct {
	v graph.VertexID
	d float32
}
type distHeap []distItem

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// SSSPDistances returns Dijkstra distances from root (+Inf for unreachable).
func SSSPDistances(adj *graph.Adjacency, root graph.VertexID) []float32 {
	inf := float32(math.MaxFloat32)
	dist := make([]float32, adj.N)
	for i := range dist {
		dist[i] = inf
	}
	dist[root] = 0
	h := &distHeap{{root, 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(distItem)
		if it.d > dist[it.v] {
			continue
		}
		for _, e := range adj.Out[it.v] {
			nd := it.d + e.Weight
			if nd < dist[e.Dst] {
				dist[e.Dst] = nd
				heap.Push(h, distItem{e.Dst, nd})
			}
		}
	}
	return dist
}

// PageRank runs iters rounds of the Figure 2 recurrence sequentially.
func PageRank(adj *graph.Adjacency, iters int) []float64 {
	rank := make([]float64, adj.N)
	for i := range rank {
		rank[i] = 1
	}
	for it := 0; it < iters; it++ {
		sum := make([]float64, adj.N)
		for v := range adj.Out {
			deg := len(adj.Out[v])
			if deg == 0 {
				continue
			}
			share := rank[v] / float64(deg)
			for _, e := range adj.Out[v] {
				sum[e.Dst] += share
			}
		}
		for i := range rank {
			rank[i] = 0.15 + 0.85*sum[i]
		}
	}
	return rank
}

// MSTWeight returns the total weight of a minimum spanning forest
// (Kruskal's algorithm; the edge list must be symmetric).
func MSTWeight(adj *graph.Adjacency) (float64, int) {
	type we struct {
		w        float32
		src, dst graph.VertexID
	}
	var edges []we
	for v := range adj.Out {
		for _, e := range adj.Out[v] {
			if e.Src < e.Dst { // each undirected edge once
				edges = append(edges, we{e.Weight, e.Src, e.Dst})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].w < edges[j].w })
	parent := make([]int, adj.N)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	var total float64
	count := 0
	for _, e := range edges {
		a, b := find(int(e.src)), find(int(e.dst))
		if a != b {
			parent[a] = b
			total += float64(e.w)
			count++
		}
	}
	return total, count
}

// SCCIDs returns strongly connected component IDs via Tarjan's algorithm
// (iterative).
func SCCIDs(adj *graph.Adjacency) []uint32 {
	n := int(adj.N)
	const undef = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]uint32, n)
	for i := range index {
		index[i] = undef
	}
	next := 0
	var stack []int
	var ncomp uint32

	type frame struct {
		v, ei int
	}
	for start := 0; start < n; start++ {
		if index[start] != undef {
			continue
		}
		work := []frame{{start, 0}}
		for len(work) > 0 {
			f := &work[len(work)-1]
			v := f.v
			if f.ei == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.ei < len(adj.Out[v]) {
				w := int(adj.Out[v][f.ei].Dst)
				f.ei++
				if index[w] == undef {
					work = append(work, frame{w, 0})
					advanced = true
					break
				} else if onStack[w] {
					if index[w] < low[v] {
						low[v] = index[w]
					}
				}
			}
			if advanced {
				continue
			}
			// v finished.
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return comp
}

// SpMV computes y = A*x where A[dst][src] = weight.
func SpMV(adj *graph.Adjacency, x []float32) []float64 {
	y := make([]float64, adj.N)
	for v := range adj.Out {
		for _, e := range adj.Out[v] {
			y[e.Dst] += float64(e.Weight) * float64(x[v])
		}
	}
	return y
}

// Conductance computes cut(S,~S)/min(vol(S), vol(~S)) for membership inS.
func Conductance(adj *graph.Adjacency, inS func(graph.VertexID) bool) float64 {
	var cut, volS, volO uint64
	for v := range adj.Out {
		s := inS(graph.VertexID(v))
		if s {
			volS += uint64(len(adj.Out[v]))
		} else {
			volO += uint64(len(adj.Out[v]))
		}
		for _, e := range adj.Out[v] {
			if s != inS(e.Dst) {
				cut++
			}
		}
	}
	den := volS
	if volO < den {
		den = volO
	}
	if den == 0 {
		return 0
	}
	return float64(cut) / float64(den)
}

// IsIndependentSet verifies no two set members are adjacent.
func IsIndependentSet(adj *graph.Adjacency, in []bool) bool {
	for v := range adj.Out {
		if !in[v] {
			continue
		}
		for _, e := range adj.Out[v] {
			if e.Dst != graph.VertexID(v) && in[e.Dst] {
				return false
			}
		}
	}
	return true
}

// IsMaximalIndependentSet verifies independence plus maximality: every
// non-member has a member neighbor (self-loops ignored).
func IsMaximalIndependentSet(adj *graph.Adjacency, in []bool) bool {
	if !IsIndependentSet(adj, in) {
		return false
	}
	for v := range adj.Out {
		if in[v] {
			continue
		}
		covered := false
		for _, e := range adj.Out[v] {
			if e.Dst != graph.VertexID(v) && in[e.Dst] {
				covered = true
				break
			}
		}
		if !covered && len(nonSelf(adj.Out[v], graph.VertexID(v))) > 0 {
			return false
		}
		if !covered && len(nonSelf(adj.Out[v], graph.VertexID(v))) == 0 {
			// Isolated vertex must be in the set.
			return false
		}
	}
	return true
}

func nonSelf(es []graph.Edge, v graph.VertexID) []graph.Edge {
	var out []graph.Edge
	for _, e := range es {
		if e.Dst != v {
			out = append(out, e)
		}
	}
	return out
}

// BPBeliefs runs the same simplified BP recurrence sequentially.
func BPBeliefs(adj *graph.Adjacency, prior func(graph.VertexID) float32, iters int) []float32 {
	belief := make([]float32, adj.N)
	for i := range belief {
		belief[i] = prior(graph.VertexID(i))
	}
	for it := 0; it < iters; it++ {
		sum := make([]float64, adj.N)
		for v := range adj.Out {
			msg := float64(0)
			for _, e := range adj.Out[v] {
				msg = float64(e.Weight) * math.Tanh(float64(belief[v]))
				sum[e.Dst] += float64(float32(msg))
			}
		}
		for i := range belief {
			nb := float64(prior(graph.VertexID(i))) + 0.5*sum[i]
			if nb > 10 {
				nb = 10
			}
			if nb < -10 {
				nb = -10
			}
			belief[i] = float32(nb)
		}
	}
	return belief
}
