package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectivePrefix introduces every chaos-vet annotation. Like go:build
// directives, annotations are machine-readable comments with no space
// after the slashes: //chaos:nondeterministic-ok <reason>.
const DirectivePrefix = "//chaos:"

// DirectiveIndex records where //chaos: directives appear in one file.
type DirectiveIndex struct {
	byLine    map[int][]string
	fileLevel map[string]bool
}

// IndexDirectives scans a parsed file's comments for //chaos:
// directives. A directive whose comment starts at or before the end of
// the package clause (i.e. lives in the file's doc region) is
// file-level; all others attach to their line.
func IndexDirectives(fset *token.FileSet, f *ast.File) *DirectiveIndex {
	idx := &DirectiveIndex{byLine: map[int][]string{}, fileLevel: map[string]bool{}}
	pkgLine := fset.Position(f.Name.End()).Line
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			name, ok := parseDirective(c.Text)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			if pos.Line <= pkgLine {
				idx.fileLevel[name] = true
				continue
			}
			idx.byLine[pos.Line] = append(idx.byLine[pos.Line], name)
		}
	}
	return idx
}

func parseDirective(text string) (name string, ok bool) {
	if !strings.HasPrefix(text, DirectivePrefix) {
		return "", false
	}
	rest := strings.TrimPrefix(text, DirectivePrefix)
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	if rest == "" {
		return "", false
	}
	return rest, true
}

// SuppressedAt reports whether directive name is attached to pos's
// line: trailing on the same line, or alone on the line directly above.
func (d *DirectiveIndex) SuppressedAt(fset *token.FileSet, pos token.Pos, name string) bool {
	line := fset.Position(pos).Line
	for _, n := range d.byLine[line] {
		if n == name {
			return true
		}
	}
	for _, n := range d.byLine[line-1] {
		if n == name {
			return true
		}
	}
	return false
}

// FileLevel reports whether directive name appears in the file's doc
// region (before or on the package clause), marking the whole file.
func (d *DirectiveIndex) FileLevel(name string) bool { return d.fileLevel[name] }

// FileHasDirective reports whether the given parsed file carries the
// file-level directive — a convenience for scope decisions that are
// made per file rather than per diagnostic site.
func FileHasDirective(fset *token.FileSet, f *ast.File, name string) bool {
	return IndexDirectives(fset, f).FileLevel(name)
}
