// Package framework is a self-contained, stdlib-only re-implementation
// of the golang.org/x/tools/go/analysis surface this repo's analyzers
// are written against: Analyzer/Pass/Diagnostic/SuggestedFix, a package
// loader, and directive helpers.
//
// Why not depend on x/tools? The build environment is offline and the
// module has no dependencies; rather than vendor a large tree, this
// package reproduces the small slice of the API the chaos-vet suite
// needs. Analyzers are written in the x/tools idiom (same field names,
// same Run signature), so migrating to the real framework later is a
// change of import path, not of analyzer code.
//
// Type information comes from the gc export data the go command already
// produces: the loader shells out to `go list -export -deps -json`,
// parses the target packages from source, and resolves every import
// through go/importer's gc reader. This works fully offline and stays
// byte-for-byte consistent with the compiler's view of the code.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the chaos-vet
	// command line. By convention it is a single lowercase word.
	Name string
	// Doc is the analyzer's documentation: first line a one-sentence
	// summary, then the invariant it enforces and the escape hatch.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (interface{}, error)
}

// A Pass presents one package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic.
	Report func(Diagnostic)

	pkg *Package // backing loaded package (sources, directives)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Source returns the raw bytes of the file containing pos, for
// diagnostics that quote or rewrite the original text.
func (p *Pass) Source(pos token.Pos) []byte {
	return p.pkg.Sources[p.Fset.Position(pos).Filename]
}

// Directives returns the directive index for the file containing pos.
func (p *Pass) Directives(pos token.Pos) *DirectiveIndex {
	return p.pkg.directives(p.Fset.Position(pos).Filename)
}

// Suppressed reports whether the //chaos:<name> directive is attached
// to the line of pos (trailing on the same line or alone on the line
// above), the per-site escape hatch every chaos-vet analyzer honors.
func (p *Pass) Suppressed(name string, pos token.Pos) bool {
	return p.Directives(pos).SuppressedAt(p.Fset, pos, name)
}

// A Diagnostic is one finding, positioned within a source file.
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos // optional
	Message string
	// Analyzer is filled in by the driver.
	Analyzer string
	// SuggestedFixes holds mechanical rewrites that resolve the
	// diagnostic; chaos-vet -fix applies them.
	SuggestedFixes []SuggestedFix
}

// A SuggestedFix is one self-contained rewrite.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// A TextEdit replaces [Pos, End) with NewText. An insertion has
// Pos == End.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// Run applies each analyzer to each package and returns all
// diagnostics in file/position order. Every package must have been
// loaded into the same FileSet: a Pos is an offset into one FileSet,
// and resolving it against another silently yields positions in the
// wrong file (and, under -fix, rewrites of the wrong file).
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	for i := 1; i < len(pkgs); i++ {
		if pkgs[i].Fset != pkgs[0].Fset {
			return nil, fmt.Errorf(
				"packages %s and %s were loaded into different FileSets; pass one shared FileSet to every Load/LoadFile call of a run",
				pkgs[0].PkgPath, pkgs[i].PkgPath)
		}
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				pkg:       pkg,
			}
			pass.Report = func(d Diagnostic) {
				d.Analyzer = a.Name
				diags = append(diags, d)
			}
			if _, err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("%s: %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sortDiagnostics(pkgs, diags)
	return diags, nil
}

func sortDiagnostics(pkgs []*Package, diags []Diagnostic) {
	if len(pkgs) == 0 {
		return
	}
	fset := pkgs[0].Fset
	// Insertion sort keeps the dependency footprint minimal; diagnostic
	// counts are tiny.
	for i := 1; i < len(diags); i++ {
		for j := i; j > 0; j-- {
			a, b := fset.Position(diags[j-1].Pos), fset.Position(diags[j].Pos)
			if a.Filename < b.Filename || (a.Filename == b.Filename && a.Offset <= b.Offset) {
				break
			}
			diags[j-1], diags[j] = diags[j], diags[j-1]
		}
	}
}
