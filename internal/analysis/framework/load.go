package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// Sources maps absolute file path to raw bytes, for fix building.
	Sources map[string][]byte

	dirIdx map[string]*DirectiveIndex
}

func (p *Package) directives(filename string) *DirectiveIndex {
	if idx, ok := p.dirIdx[filename]; ok {
		return idx
	}
	idx := &DirectiveIndex{}
	for _, f := range p.Files {
		if p.Fset.Position(f.Pos()).Filename == filename {
			idx = IndexDirectives(p.Fset, f)
			break
		}
	}
	if p.dirIdx == nil {
		p.dirIdx = map[string]*DirectiveIndex{}
	}
	p.dirIdx[filename] = idx
	return idx
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load loads, parses and type-checks the packages matched by patterns,
// resolving every dependency (stdlib and intra-module alike) from the
// gc export data `go list -export` places in the build cache. It runs
// entirely offline. Only non-test Go files are analyzed: the suite's
// invariants constrain production code, and test files routinely (and
// legitimately) use maps, wall clocks and hooks in ways the analyzers
// would have to special-case.
//
// The caller supplies the FileSet. Every package analyzed in one run —
// across any number of Load and LoadFile calls — must share a single
// FileSet, because diagnostic positions are resolved against one
// FileSet when printing, sorting and applying fixes; Run rejects
// packages loaded into different FileSets.
func Load(fset *token.FileSet, dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,Standard,DepOnly,GoFiles,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			q := p
			targets = append(targets, &q)
		}
	}

	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := typecheck(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadFile loads a single standalone Go file — the escape hatch for
// sources the go command will not list, such as scripts carrying a
// //go:build ignore tag. Imports still resolve through export data, so
// the file is type-checked exactly as `go run` would compile it.
//
// As with Load, the caller supplies the FileSet, and it must be the
// same one used for every other package of the run: positions only
// mean anything relative to the FileSet that minted them.
func LoadFile(fset *token.FileSet, dir, file string) (*Package, error) {
	abs := file
	if !filepath.IsAbs(abs) {
		abs = filepath.Join(dir, file)
	}
	src, err := os.ReadFile(abs)
	if err != nil {
		return nil, err
	}
	f, err := parser.ParseFile(fset, abs, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	var imports []string
	for _, spec := range f.Imports {
		path := strings.Trim(spec.Path.Value, `"`)
		if path != "unsafe" {
			imports = append(imports, path)
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		args := append([]string{
			"list", "-export", "-deps",
			"-json=ImportPath,Export,Error", "--",
		}, imports...)
		cmd := exec.Command("go", args...)
		cmd.Dir = dir
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list (imports of %s): %v\n%s", file, err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p listPackage
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Error != nil {
				return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := exportImporter(fset, exports)
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(file, fset, []*ast.File{f}, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", file, err)
	}
	return &Package{
		PkgPath:   file,
		Dir:       dir,
		Fset:      fset,
		Files:     []*ast.File{f},
		Types:     tpkg,
		TypesInfo: info,
		Sources:   map[string][]byte{abs: src},
	}, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, pkgPath, dir string, goFiles []string) (*Package, error) {
	files := make([]*ast.File, 0, len(goFiles))
	sources := map[string][]byte{}
	for _, name := range goFiles {
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		sources[path] = src
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
		Sources:   sources,
	}, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// exportImporter resolves import paths through the export-data files
// recorded by `go list -export`. One importer instance is shared by
// every package of a load so type identity is consistent across them.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (not in the go list -deps closure)", path)
		}
		return os.Open(f)
	})
}
