package framework

import (
	"fmt"
	"go/token"
	"sort"
)

// ApplyFixes collects every suggested fix in diags and returns the
// rewritten file contents, keyed by absolute path. Overlapping edits
// are rejected rather than guessed at: the caller re-runs the suite
// after applying one round.
func ApplyFixes(fset *token.FileSet, sources map[string][]byte, diags []Diagnostic) (map[string][]byte, error) {
	type edit struct {
		start, end int
		text       []byte
	}
	perFile := map[string][]edit{}
	for _, d := range diags {
		for _, fix := range d.SuggestedFixes {
			for _, te := range fix.TextEdits {
				p := fset.Position(te.Pos)
				end := p.Offset
				if te.End.IsValid() {
					end = fset.Position(te.End).Offset
				}
				perFile[p.Filename] = append(perFile[p.Filename], edit{p.Offset, end, te.NewText})
			}
		}
	}
	out := map[string][]byte{}
	for file, edits := range perFile {
		src, ok := sources[file]
		if !ok {
			return nil, fmt.Errorf("fix: no source for %s", file)
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start < edits[j].start })
		for i := 1; i < len(edits); i++ {
			if edits[i].start < edits[i-1].end {
				return nil, fmt.Errorf("fix: overlapping edits in %s; apply and re-run", file)
			}
		}
		var buf []byte
		last := 0
		for _, e := range edits {
			buf = append(buf, src[last:e.start]...)
			buf = append(buf, e.text...)
			last = e.end
		}
		buf = append(buf, src[last:]...)
		out[file] = buf
	}
	return out, nil
}
