package ctxhook_test

import (
	"testing"

	"chaos/internal/analysis/analysistest"
	"chaos/internal/analysis/ctxhook"
)

func TestCtxhook(t *testing.T) {
	analysistest.Run(t, ctxhook.Analyzer, "a", "b", "c")
}
