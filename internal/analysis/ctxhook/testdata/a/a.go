// Package a exercises ctxhook rule 1: function-typed fields on
// fingerprinted structs.
package a

// Opts is fingerprinted, so hook-shaped fields are forbidden on it.
type Opts struct {
	Partitions int
	OnStep     func(int)   // want `Opts.OnStep is function-typed on a fingerprinted struct`
	Tracers    []func(int) // want `Opts.Tracers is function-typed on a fingerprinted struct`
	Legacy     func()      //chaos:ctxhook-ok grandfathered fixture hook
}

func (o Opts) Fingerprint() string { return "x" }

// Plain has no Fingerprint method: callbacks are its own business.
type Plain struct {
	OnStep func(int)
}

// nested types are traversed: a struct-valued field smuggling a func in
// is still a hook on the cache-keyed surface.
type hooks struct {
	Emit func(string)
}

// Wrapped is fingerprinted and embeds the func through a struct value.
type Wrapped struct {
	Inner hooks // want `Wrapped.Inner is function-typed on a fingerprinted struct`
}

func (w Wrapped) Fingerprint() string { return "y" }
