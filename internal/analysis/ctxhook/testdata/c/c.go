// Package c exercises ctxhook rule 3: it is neither the durable package
// nor the service layer, so wiring the WAL/journal span hooks here
// installs a storage-tier side channel the durability tests never see.
package c

import "chaos/internal/durable"

func wireJournal(j *durable.Journal) {
	j.SetTrace(func(durable.Span) {}) // want `durable\.Journal\.SetTrace outside the durable/service plumbing`
}

func wireWAL(w *durable.WAL) {
	w.SetTrace(nil) // want `durable\.WAL\.SetTrace outside the durable/service plumbing`
}

func methodValue(j *durable.Journal) func(durable.SpanHook) {
	return j.SetTrace // want `durable\.Journal\.SetTrace outside the durable/service plumbing`
}

// sameName has a SetTrace of its own; calling it is fine — rule 3 keys
// on the durable package's receiver types, not the method name.
type sameName struct{}

func (sameName) SetTrace(durable.SpanHook) {}

func unrelated(s sameName) {
	s.SetTrace(nil)
}

func suppressed(w *durable.WAL) {
	w.SetTrace(nil) //chaos:ctxhook-ok fixture stands in for the service wiring
}
