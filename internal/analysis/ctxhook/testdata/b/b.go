// Package b exercises ctxhook rule 2: it is not a sanctioned package,
// so writing core.Config's hook fields directly bypasses the context
// plumbing.
package b

import "chaos/internal/core"

func assignHooks(cfg *core.Config) {
	cfg.Progress = func(core.Progress) {}        // want `assignment to core.Config.Progress outside the engine`
	cfg.Interrupt = func() bool { return false } // want `assignment to core.Config.Interrupt outside the engine`
	cfg.MaxIterations = 3                        // not a hook field: fine
}

func literalHooks() core.Config {
	return core.Config{
		Trace: nil, // want `core.Config\{Trace: ...\} outside the engine`
	}
}

func suppressed(cfg *core.Config) {
	cfg.Progress = func(core.Progress) {} //chaos:ctxhook-ok fixture stands in for the context bridge
}
