// Package ctxhook enforces "observability rides the context": trace and
// progress hooks must never be storable — or stored — where the result
// cache's fingerprint can see them.
//
// Three rules:
//
//  1. A struct that has a Fingerprint() string method must not declare
//     a function-typed field (directly or inside a composite). A hook
//     living on a fingerprinted struct either poisons the cache key or
//     is silently dropped from it — both were near-misses in this
//     repo's history; chaos.WithProgress / chaos.WithTrace exist so
//     hooks travel on the context instead.
//
//  2. The engine's own hook fields (core.Config.Progress, .Trace,
//     .Interrupt) may only be assigned inside the sanctioned plumbing:
//     the chaos package (which unwraps them from the context) and the
//     engine drivers themselves. Any other package writing them is
//     bypassing the context path and the "observation cannot perturb
//     the run" tests that guard it.
//
//  3. The WAL span hooks (durable.Journal.SetTrace / durable.WAL.
//     SetTrace) are the same kind of observational plumbing one tier
//     down: the hook is invoked under the journal's locks and must stay
//     a passive reporter. Only the durable package itself and the
//     service layer (which fans spans into its observability ring) may
//     wire them; any other caller is installing a side channel the
//     durability and determinism tests never exercise.
//
// //chaos:ctxhook-ok on the offending line suppresses any rule.
package ctxhook

import (
	"go/ast"
	"go/types"

	"chaos/internal/analysis/framework"
)

// Analyzer is the ctxhook analyzer.
var Analyzer = &framework.Analyzer{
	Name: "ctxhook",
	Doc: "keeps trace/progress hooks out of fingerprinted structs and off unsanctioned Config writes\n\n" +
		"Hooks ride the context (chaos.WithProgress, chaos.WithTrace), never\n" +
		"Options: a func-typed field on a struct with a Fingerprint method is\n" +
		"flagged at its declaration, assignments to core.Config's\n" +
		"Progress/Trace/Interrupt fields are only allowed in the chaos root\n" +
		"package and the engine drivers, and the durable WAL/journal span\n" +
		"hooks (SetTrace) may only be wired by the durable package and the\n" +
		"service layer. Suppress with //chaos:ctxhook-ok.",
	Run: run,
}

// Directive is the per-site suppression annotation.
const Directive = "ctxhook-ok"

// configPkg is the package owning the hook-carrying engine Config.
const configPkg = "chaos/internal/core"

// hookFields are core.Config's context-plumbed fields.
var hookFields = map[string]bool{"Progress": true, "Trace": true, "Interrupt": true}

// sanctioned are the packages allowed to write core.Config hook
// fields: the context-unwrapping bridge and the engine drivers.
var sanctioned = map[string]bool{
	"chaos":                      true,
	"chaos/internal/core":        true,
	"chaos/internal/core/native": true,
	"chaos/internal/core/drive":  true,
}

// spanHookPkg owns the WAL/journal span hooks, and spanHookSanctioned
// are the packages allowed to call its SetTrace installers: the owner
// itself and the service layer, whose observability ring is the one
// sanctioned sink for storage-tier spans.
const spanHookPkg = "chaos/internal/durable"

var spanHookSanctioned = map[string]bool{
	"chaos/internal/durable": true,
	"chaos/internal/service": true,
}

func run(pass *framework.Pass) (interface{}, error) {
	checkFingerprintedFields(pass)
	if !sanctioned[pass.Pkg.Path()] {
		checkConfigWrites(pass)
	}
	if !spanHookSanctioned[pass.Pkg.Path()] {
		checkSpanHookWires(pass)
	}
	return nil, nil
}

// checkFingerprintedFields applies rule 1 to every struct declared in
// this package.
func checkFingerprintedFields(pass *framework.Pass) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok || !hasFingerprint(named) {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !containsFunc(f.Type(), map[types.Type]bool{}) {
				continue
			}
			if pass.Suppressed(Directive, f.Pos()) {
				continue
			}
			pass.Reportf(f.Pos(),
				"%s.%s is function-typed on a fingerprinted struct: hooks must ride the context "+
					"(chaos.WithProgress/WithTrace), not the options that feed the cache key",
				name, f.Name())
		}
	}
}

// checkConfigWrites applies rule 2: assignments and composite-literal
// keys targeting core.Config hook fields outside the sanctioned
// packages.
func checkConfigWrites(pass *framework.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if field, ok := configHookField(pass, sel); ok {
						if pass.Suppressed(Directive, sel.Pos()) {
							continue
						}
						pass.Reportf(sel.Pos(),
							"assignment to core.Config.%s outside the engine: wire the hook through the context "+
								"(chaos.WithProgress/WithTrace, ctx cancellation) so observation cannot perturb the run",
							field)
					}
				}
			case *ast.CompositeLit:
				t := pass.TypesInfo.TypeOf(n)
				if t == nil || !isConfigType(t) {
					return true
				}
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					id, ok := kv.Key.(*ast.Ident)
					if !ok || !hookFields[id.Name] {
						continue
					}
					if pass.Suppressed(Directive, kv.Pos()) {
						continue
					}
					pass.Reportf(kv.Pos(),
						"core.Config{%s: ...} outside the engine: wire the hook through the context "+
							"(chaos.WithProgress/WithTrace, ctx cancellation) so observation cannot perturb the run",
						id.Name)
				}
			}
			return true
		})
	}
}

// checkSpanHookWires applies rule 3: calls to the durable package's
// SetTrace span-hook installers outside the sanctioned packages. Method
// values count too — storing journal.SetTrace for later defeats the
// rule as thoroughly as calling it.
func checkSpanHookWires(pass *framework.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv, ok := spanHookInstaller(pass, sel)
			if !ok {
				return true
			}
			if pass.Suppressed(Directive, sel.Pos()) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"durable.%s.SetTrace outside the durable/service plumbing: storage-tier spans flow to the "+
					"service observability ring; a hook wired elsewhere runs under the journal's locks unseen "+
					"by the durability tests", recv)
			return true
		})
	}
}

// spanHookInstaller reports whether sel resolves to a SetTrace method
// whose receiver is declared in the durable package, returning the
// receiver type name for the diagnostic.
func spanHookInstaller(pass *framework.Pass, sel *ast.SelectorExpr) (string, bool) {
	if sel.Sel.Name != "SetTrace" {
		return "", false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", false
	}
	obj := s.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != spanHookPkg {
		return "", false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	if named, ok := recv.(*types.Named); ok {
		return named.Obj().Name(), true
	}
	return "value", true
}

func configHookField(pass *framework.Pass, sel *ast.SelectorExpr) (string, bool) {
	if !hookFields[sel.Sel.Name] {
		return "", false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	if !isConfigType(s.Recv()) {
		return "", false
	}
	return sel.Sel.Name, true
}

func isConfigType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Config" && obj.Pkg() != nil && obj.Pkg().Path() == configPkg
}

func hasFingerprint(named *types.Named) bool {
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if m.Name() != "Fingerprint" {
			continue
		}
		sig := m.Type().(*types.Signature)
		if sig.Params().Len() == 0 && sig.Results().Len() == 1 {
			if b, ok := sig.Results().At(0).Type().(*types.Basic); ok && b.Kind() == types.String {
				return true
			}
		}
	}
	return false
}

// containsFunc reports whether t contains a function type anywhere a
// value of t could carry one (fields, elements, pointers). Interfaces
// are not traversed: an interface-typed option is a different design
// smell with different fixes.
func containsFunc(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch t := t.Underlying().(type) {
	case *types.Signature:
		return true
	case *types.Pointer:
		return containsFunc(t.Elem(), seen)
	case *types.Slice:
		return containsFunc(t.Elem(), seen)
	case *types.Array:
		return containsFunc(t.Elem(), seen)
	case *types.Map:
		return containsFunc(t.Key(), seen) || containsFunc(t.Elem(), seen)
	case *types.Chan:
		return containsFunc(t.Elem(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if containsFunc(t.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}
