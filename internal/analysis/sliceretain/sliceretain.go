// Package sliceretain flags the ring-head pop pattern that pins popped
// elements in a long-lived slice's backing array.
//
// Invariant: popping from a queue or ring held in a struct field or
// package variable with `q = q[1:]` keeps the popped element reachable
// through the backing array for the queue's whole lifetime — the exact
// leak fixed twice in this repo (resultCache.order pinning evicted key
// strings, Scheduler.queue pinning every completed *Job with its result
// payload). The slot must be zeroed before the reslice:
//
//	q[0] = nil // or the element type's zero value
//	q = q[1:]
//
// Only pops from long-lived homes (field selectors, package-level
// variables) with memory-retaining element types (pointers, interfaces,
// maps, chans, funcs, slices, strings, or structs containing them) are
// flagged; a local []int scratch slice is not a leak. Suppress with
// //chaos:sliceretain-ok <reason>.
package sliceretain

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"chaos/internal/analysis/framework"
)

// Analyzer is the sliceretain analyzer.
var Analyzer = &framework.Analyzer{
	Name: "sliceretain",
	Doc: "flags q = q[1:] pops on long-lived slices without zeroing the popped slot\n\n" +
		"Reslicing from the front keeps popped elements reachable through the\n" +
		"backing array. Zero the slot first (q[0] = nil), or annotate\n" +
		"//chaos:sliceretain-ok <reason> when retention is intended.",
	Run: run,
}

// Directive is the per-site suppression annotation.
const Directive = "sliceretain-ok"

func run(pass *framework.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, s := range block.List {
				as, ok := s.(*ast.AssignStmt)
				if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
					continue
				}
				checkPop(pass, block, i, as)
			}
			return true
		})
	}
	return nil, nil
}

func checkPop(pass *framework.Pass, block *ast.BlockStmt, idx int, as *ast.AssignStmt) {
	slice, ok := as.Rhs[0].(*ast.SliceExpr)
	if !ok || slice.Slice3 || slice.High != nil || slice.Low == nil {
		return
	}
	if isZeroLiteral(pass, slice.Low) {
		return
	}
	if !exprEqual(as.Lhs[0], slice.X) {
		return
	}
	if !longLived(pass, as.Lhs[0]) {
		return
	}
	t := pass.TypesInfo.TypeOf(as.Lhs[0])
	if t == nil {
		return
	}
	st, ok := t.Underlying().(*types.Slice)
	if !ok || !retainsMemory(st.Elem(), map[types.Type]bool{}) {
		return
	}
	if zeroedBefore(pass, block, idx, as.Lhs[0]) {
		return
	}
	if pass.Suppressed(Directive, as.Pos()) {
		return
	}
	sliceText := exprText(pass, as.Lhs[0])
	d := framework.Diagnostic{
		Pos: as.Pos(),
		End: as.End(),
		Message: fmt.Sprintf(
			"%s = %s[...:] pins the popped element in the backing array; zero %s[0] before reslicing "+
				"(ring-head leak: see resultCache.order / Scheduler.queue), or annotate //chaos:%s <reason>",
			sliceText, sliceText, sliceText, Directive),
	}
	if fix, ok := zeroSlotFix(pass, as, slice, st.Elem()); ok {
		d.SuggestedFixes = []framework.SuggestedFix{fix}
	}
	pass.Report(d)
}

// zeroedBefore scans up to three statements immediately preceding the
// pop for a store that actually releases the popped slot: the element
// zero value written to slot 0 (q[0] = nil), or to a loop-computed slot
// when the store sits inside a for/range clearing loop (the q[n:] pop
// shape). An arbitrary element write — q[i] = v at top level, or a
// non-zero store into slot 0 — replaces a slot without releasing the
// popped one and must not silence the diagnostic; this mirrors the
// strictness zeroSlotFix applies when generating the fix.
func zeroedBefore(pass *framework.Pass, block *ast.BlockStmt, idx int, sliceExpr ast.Expr) bool {
	for back := 1; back <= 3 && idx-back >= 0; back++ {
		s := block.List[idx-back]
		inLoop := false
		switch s.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			inLoop = true
		}
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				ie, ok := lhs.(*ast.IndexExpr)
				if !ok || !exprEqual(ie.X, sliceExpr) {
					continue
				}
				if !isZeroExpr(pass, as.Rhs[i]) {
					continue
				}
				if isZeroLiteral(pass, ie.Index) || inLoop {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// isZeroExpr reports whether e is syntactically the zero value of its
// type: nil, a zero/false/empty-string constant, or an empty composite
// literal.
func isZeroExpr(pass *framework.Pass, e ast.Expr) bool {
	if p, ok := e.(*ast.ParenExpr); ok {
		return isZeroExpr(pass, p.X)
	}
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		if tv.IsNil() {
			return true
		}
		if tv.Value != nil {
			switch tv.Value.Kind() {
			case constant.Bool:
				return !constant.BoolVal(tv.Value)
			case constant.String:
				return constant.StringVal(tv.Value) == ""
			case constant.Int, constant.Float:
				return constant.Sign(tv.Value) == 0
			case constant.Complex:
				return constant.Sign(constant.Real(tv.Value)) == 0 &&
					constant.Sign(constant.Imag(tv.Value)) == 0
			}
			return false
		}
	}
	cl, ok := e.(*ast.CompositeLit)
	return ok && len(cl.Elts) == 0
}

// zeroSlotFix inserts `q[0] = <zero>` on the line before a `q = q[1:]`
// pop. Only offered for the literal low bound 1, where slot 0 is
// unambiguously the popped element.
func zeroSlotFix(pass *framework.Pass, as *ast.AssignStmt, slice *ast.SliceExpr, elem types.Type) (framework.SuggestedFix, bool) {
	if !isIntLiteral(pass, slice.Low, 1) {
		return framework.SuggestedFix{}, false
	}
	zero, ok := zeroValue(pass, elem)
	if !ok {
		return framework.SuggestedFix{}, false
	}
	src := pass.Source(as.Pos())
	if src == nil {
		return framework.SuggestedFix{}, false
	}
	file := pass.Fset.File(as.Pos())
	lineStart := file.LineStart(pass.Fset.Position(as.Pos()).Line)
	indent := string(src[file.Offset(lineStart):file.Offset(as.Pos())])
	if strings.TrimSpace(indent) != "" {
		return framework.SuggestedFix{}, false
	}
	text := fmt.Sprintf("%s[0] = %s\n%s", exprText(pass, as.Lhs[0]), zero, indent)
	return framework.SuggestedFix{
		Message: "zero the popped slot before reslicing",
		TextEdits: []framework.TextEdit{
			{Pos: as.Pos(), End: as.Pos(), NewText: []byte(text)},
		},
	}, true
}

func zeroValue(pass *framework.Pass, t types.Type) (string, bool) {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Map, *types.Chan, *types.Signature, *types.Slice:
		return "nil", true
	case *types.Basic:
		if u.Info()&types.IsString != 0 {
			return `""`, true
		}
		return "", false
	case *types.Struct:
		return types.TypeString(t, types.RelativeTo(pass.Pkg)) + "{}", true
	}
	return "", false
}

// longLived reports whether the slice lives beyond the enclosing
// function: a field selector (m.q, c.order) or a package-level var.
func longLived(pass *framework.Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if s, ok := pass.TypesInfo.Selections[e]; ok && s.Kind() == types.FieldVal {
			return true
		}
		// Qualified package-level var (pkg.Var).
		if id, ok := e.X.(*ast.Ident); ok {
			if _, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
				return true
			}
		}
		return false
	case *ast.Ident:
		obj, ok := pass.TypesInfo.Uses[e].(*types.Var)
		if !ok {
			return false
		}
		return obj.Parent() == pass.Pkg.Scope()
	default:
		return false
	}
}

// retainsMemory reports whether keeping a value of t alive retains
// heap memory beyond the value itself.
func retainsMemory(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Map, *types.Chan, *types.Signature, *types.Slice:
		return true
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if retainsMemory(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return retainsMemory(u.Elem(), seen)
	}
	return false
}

func isZeroLiteral(pass *framework.Pass, e ast.Expr) bool {
	return isIntLiteral(pass, e, 0)
}

func isIntLiteral(pass *framework.Pass, e ast.Expr, want int64) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	return ok && v == want
}

// exprEqual compares two ident/selector/index chains structurally.
func exprEqual(a, b ast.Expr) bool {
	switch a := a.(type) {
	case *ast.Ident:
		bb, ok := b.(*ast.Ident)
		return ok && a.Name == bb.Name
	case *ast.SelectorExpr:
		bb, ok := b.(*ast.SelectorExpr)
		return ok && a.Sel.Name == bb.Sel.Name && exprEqual(a.X, bb.X)
	case *ast.ParenExpr:
		return exprEqual(a.X, b)
	default:
		return false
	}
}

func exprText(pass *framework.Pass, e ast.Expr) string {
	src := pass.Source(e.Pos())
	if src == nil {
		return "slice"
	}
	file := pass.Fset.File(e.Pos())
	return string(src[file.Offset(e.Pos()):file.Offset(e.End())])
}
