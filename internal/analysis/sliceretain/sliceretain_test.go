package sliceretain_test

import (
	"strings"
	"testing"

	"chaos/internal/analysis/analysistest"
	"chaos/internal/analysis/sliceretain"
)

func TestSliceretain(t *testing.T) {
	diags := analysistest.Run(t, sliceretain.Analyzer, "a")
	// The q = q[1:] pops must carry the zero-the-slot fix — including
	// the ones preceded by a non-releasing element write — while the
	// variable-bound pop must not.
	var withFix, withoutFix int
	for _, d := range diags {
		if len(d.SuggestedFixes) > 0 {
			withFix++
			edit := string(d.SuggestedFixes[0].TextEdits[0].NewText)
			if !strings.Contains(edit, "[0] = ") {
				t.Errorf("fix does not zero slot 0: %q", edit)
			}
		} else {
			withoutFix++
		}
	}
	if withFix < 5 {
		t.Errorf("expected >=5 diagnostics with the zero-slot fix, got %d", withFix)
	}
	if withoutFix < 1 {
		t.Errorf("expected the variable-bound pop to come without a fix")
	}
}
