// Package a exercises sliceretain: front-pops on long-lived slices.
package a

// queue is the ring-head shape that leaked twice in the engine's
// history: a struct-field slice of pointers popped from the front.
type queue struct {
	jobs []*job
	ids  []string
	nums []int
}

type job struct{ payload []byte }

func (q *queue) popLeak() *job {
	j := q.jobs[0]
	q.jobs = q.jobs[1:] // want `pins the popped element in the backing array`
	return j
}

func (q *queue) popZeroed() *job {
	j := q.jobs[0]
	q.jobs[0] = nil
	q.jobs = q.jobs[1:]
	return j
}

func (q *queue) popString() string {
	s := q.ids[0]
	q.ids = q.ids[1:] // want `pins the popped element in the backing array`
	return s
}

// []int elements retain nothing beyond themselves: not a leak.
func (q *queue) popInt() int {
	n := q.nums[0]
	q.nums = q.nums[1:]
	return n
}

// pending is package-level, so it outlives any one call.
var pending []*job

func drainOne() {
	pending = pending[1:] // want `pins the popped element in the backing array`
}

// A local scratch slice dies with the call; the backing array goes
// with it.
func localPop(in []*job) *job {
	work := in
	j := work[0]
	work = work[1:]
	return j
}

func (q *queue) popAnnotated() *job {
	j := q.jobs[0]
	q.jobs = q.jobs[1:] //chaos:sliceretain-ok fixture: bounded queue, retention measured harmless
	return j
}

// A variable low bound is still a front-pop; no mechanical fix is
// offered because the popped range is not statically slot 0.
func (q *queue) popN(n int) {
	q.jobs = q.jobs[n:] // want `pins the popped element in the backing array`
}

// Writing an arbitrary element just before the pop does not release
// slot 0: the popped job stays pinned.
func (q *queue) popWriteOther(j *job, i int) *job {
	out := q.jobs[0]
	q.jobs[i] = j
	q.jobs = q.jobs[1:] // want `pins the popped element in the backing array`
	return out
}

// A non-zero store into slot 0 replaces the slot, it does not release
// the value the reslice is about to strand.
func (q *queue) popOverwrite(j *job) *job {
	out := q.jobs[0]
	q.jobs[0] = j
	q.jobs = q.jobs[1:] // want `pins the popped element in the backing array`
	return out
}

// A clearing loop releases every slot the multi-element pop strands.
func (q *queue) dropN(n int) {
	for i := 0; i < n; i++ {
		q.jobs[i] = nil
	}
	q.jobs = q.jobs[n:]
}

// Zeroing a string slot with "" counts like nil for pointers.
func (q *queue) popStringZeroed() string {
	s := q.ids[0]
	q.ids[0] = ""
	q.ids = q.ids[1:]
	return s
}
