package detrange_test

import (
	"strings"
	"testing"

	"chaos/internal/analysis/analysistest"
	"chaos/internal/analysis/detrange"
)

func TestDetrange(t *testing.T) {
	diags := analysistest.Run(t, detrange.Analyzer, "a", "b", "c")
	// The collect-without-sort case is the mechanical one: it must
	// carry the sort-the-keys rewrite. The collide fixture's fix must
	// rename its keys slice away from the `ks` the body already uses,
	// and fixture c (no import block to add sort to) must report its
	// range with no fix at all — a fix there would not compile.
	var sawFix, sawFresh bool
	for _, d := range diags {
		for _, fix := range d.SuggestedFixes {
			for _, e := range fix.TextEdits {
				text := string(e.NewText)
				if strings.Contains(text, "sort.Slice(") {
					sawFix = true
				}
				if strings.Contains(text, "ks2 := make(") {
					sawFresh = true
				}
				if strings.Contains(text, "len(mm)") {
					t.Errorf("fixture c got a fix despite having no import block to extend: %q", text)
				}
			}
		}
	}
	if !sawFix {
		t.Errorf("no diagnostic carried the sort-the-keys suggested fix")
	}
	if !sawFresh {
		t.Errorf("collide fixture's fix did not rename the keys slice to ks2")
	}
}
