package detrange_test

import (
	"strings"
	"testing"

	"chaos/internal/analysis/analysistest"
	"chaos/internal/analysis/detrange"
)

func TestDetrange(t *testing.T) {
	diags := analysistest.Run(t, detrange.Analyzer, "a", "b")
	// The collect-without-sort case is the mechanical one: it must
	// carry the sort-the-keys rewrite.
	var sawFix bool
	for _, d := range diags {
		for _, fix := range d.SuggestedFixes {
			for _, e := range fix.TextEdits {
				if strings.Contains(string(e.NewText), "sort.Slice(") {
					sawFix = true
				}
			}
		}
	}
	if !sawFix {
		t.Errorf("no diagnostic carried the sort-the-keys suggested fix")
	}
}
