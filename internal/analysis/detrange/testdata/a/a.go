// Package a exercises detrange: map ranges in a deterministic file.
//
//chaos:deterministic
package a

import "sort"

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `nondeterministic order`
		keys = append(keys, k)
	}
	return keys
}

func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func keyedMerge(dst, src map[string]float64, combine func(a, b float64) float64) {
	for k, v := range src {
		if old, ok := dst[k]; ok {
			dst[k] = combine(old, v)
		} else {
			dst[k] = v
		}
	}
}

func intCount(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	for _, v := range m {
		n += v
	}
	return n
}

func floatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `nondeterministic order`
		sum += v
	}
	return sum
}

func strayRead(m map[string]int, out map[string]int) {
	n := 0
	for k := range m { // want `nondeterministic order`
		n++
		out[k] = n // keyed write, but reads the counter mid-loop: order observable
	}
}

func earlyExit(m map[string]int) (string, bool) {
	for k := range m { // want `nondeterministic order`
		if k != "" {
			return k, true
		}
	}
	return "", false
}

func clearAll(subs map[string]chan int) {
	for id, ch := range subs {
		close(ch)
		delete(subs, id)
	}
}

func annotated(m map[string]int, f func(string)) {
	//chaos:nondeterministic-ok fixture: order provably cannot leak
	for k := range m {
		f(k)
	}
}

func idempotentFlag(m map[string]bool) bool {
	found := false
	for _, v := range m {
		if v {
			found = true
		}
	}
	return found
}

func conflictingConst(m map[string]bool) int {
	mode := 0
	for _, v := range m { // want `nondeterministic order`
		if v {
			mode = 1
		} else {
			mode = 2
		}
	}
	return mode
}

// The function already uses `ks`, the name the fix would derive from
// the key variable `k`; the generated keys slice must pick a fresh
// name (ks2) or the rewritten body's appends would target it.
func collide(m map[string]int) []string {
	var ks []string
	for k := range m { // want `nondeterministic order`
		ks = append(ks, k)
	}
	return ks
}
