// Package c exercises the sort-the-keys fix's import handling: this
// file has only a single-line import and no parenthesized block to
// extend, so the rewrite's sort.Slice call cannot be made to compile —
// the diagnostic must still fire, but without a suggested fix.
//
//chaos:deterministic
package c

import "fmt"

func Collect(mm map[string]int) []string {
	var out []string
	for key := range mm { // want `nondeterministic order`
		out = append(out, key)
	}
	_ = fmt.Sprint(len(out))
	return out
}
