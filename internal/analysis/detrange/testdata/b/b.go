// Package b has no determinism directive and is outside the engine
// package list: detrange must stay silent even on flagrant map ranges.
package b

func Order(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
