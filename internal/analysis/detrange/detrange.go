// Package detrange flags map iteration with observable order inside
// the repo's deterministic code.
//
// Invariant: packages under the determinism contract must produce
// bit-identical output for equal seeds, and Go randomizes map iteration
// order per run. A `range` over a map is therefore only admissible when
// the loop body is provably order-independent (commutative writes,
// collect-then-sort, idempotent deletes) or when a human has signed off
// with //chaos:nondeterministic-ok <reason>.
//
// The classifier is deliberately conservative: a body it cannot prove
// commutative is reported even if it happens to be safe — the escape
// hatch exists exactly for that case, and the annotation documents the
// argument where the next reader needs it.
package detrange

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"chaos/internal/analysis/detscope"
	"chaos/internal/analysis/framework"
)

// Analyzer is the detrange analyzer.
var Analyzer = &framework.Analyzer{
	Name: "detrange",
	Doc: "flags map iteration with observable order in deterministic code\n\n" +
		"Map iteration order is randomized per run; inside the deterministic\n" +
		"engine packages (and files marked //chaos:deterministic or\n" +
		"//chaos:sorted-maps) a range over a map must either have a provably\n" +
		"order-independent body, sort before use, or carry a\n" +
		"//chaos:nondeterministic-ok annotation explaining why order cannot leak.",
	Run: run,
}

// Directive is the per-site suppression annotation.
const Directive = "nondeterministic-ok"

func run(pass *framework.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		if !detscope.FileInDetRangeScope(pass, f) {
			continue
		}
		// Walk function by function so the collect-then-sort rule can
		// look for the sort call in the enclosing body.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			checkFunc(pass, body)
			return true
		})
	}
	return nil, nil
}

func checkFunc(pass *framework.Pass, fnBody *ast.BlockStmt) {
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if _, isFn := n.(*ast.FuncLit); isFn {
			return false // nested functions are walked on their own
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if pass.Suppressed(Directive, rs.Pos()) {
			return true
		}
		c := newClassifier(pass, rs, fnBody)
		if c.safe() {
			return true
		}
		d := framework.Diagnostic{
			Pos: rs.Pos(),
			End: rs.End(),
			Message: fmt.Sprintf(
				"range over map %s has nondeterministic order in deterministic code; "+
					"iterate sorted keys, or annotate //chaos:%s <reason> if order provably cannot leak",
				typeLabel(pass, rs.X), Directive),
		}
		if fix, ok := sortKeysFix(pass, rs, fnBody); ok {
			d.SuggestedFixes = []framework.SuggestedFix{fix}
		}
		pass.Report(d)
		return true
	})
}

func typeLabel(pass *framework.Pass, x ast.Expr) string {
	t := pass.TypesInfo.TypeOf(x)
	return types.TypeString(t, types.RelativeTo(pass.Pkg))
}

// classifier decides whether one map-range body is order-independent.
type classifier struct {
	pass   *framework.Pass
	rs     *ast.RangeStmt
	fnBody *ast.BlockStmt
	// keys are the loop-variable objects whose values are distinct per
	// iteration; writes indexed by them cannot collide across
	// iterations.
	keys map[types.Object]bool
	// constWrites tracks idempotent constant stores per object.
	constWrites map[types.Object]constant.Value
	// mutated counts the sanctioned write-site occurrences of each
	// order-mutated variable (integer-compound and constant-store
	// targets). Any further read of such a variable inside the body
	// observes a value that depends on iteration order, so safe()
	// re-counts occurrences at the end and rejects extras.
	mutated map[types.Object]int
}

func newClassifier(pass *framework.Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) *classifier {
	c := &classifier{
		pass: pass, rs: rs, fnBody: fnBody,
		keys:        map[types.Object]bool{},
		constWrites: map[types.Object]constant.Value{},
		mutated:     map[types.Object]int{},
	}
	c.addKey(rs.Key)
	return c
}

func (c *classifier) addKey(e ast.Expr) {
	if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
		if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
			c.keys[obj] = true
		}
	}
}

func (c *classifier) safe() bool {
	// A keyless range (`for range m`) runs an identical body len(m)
	// times; order cannot be observed through it.
	if c.rs.Key == nil || isBlank(c.rs.Key) {
		if c.rs.Value == nil || isBlank(c.rs.Value) {
			return true
		}
	}
	if c.collectThenSort() {
		return true
	}
	if !c.safeStmts(c.rs.Body.List) {
		return false
	}
	return c.noStrayReads()
}

// noStrayReads verifies that order-mutated variables (counters,
// idempotent flags) are only touched at their sanctioned write sites:
// a body that also *reads* such a variable observes an
// iteration-order-dependent intermediate value.
func (c *classifier) noStrayReads() bool {
	if len(c.mutated) == 0 {
		return true
	}
	seen := map[types.Object]int{}
	ast.Inspect(c.rs.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := objectOf(c.pass, id); obj != nil {
			if _, tracked := c.mutated[obj]; tracked {
				seen[obj]++
			}
		}
		return true
	})
	for obj, n := range seen {
		if n > c.mutated[obj] {
			return false
		}
	}
	return true
}

// collectThenSort recognizes the canonical fix pattern: the body only
// appends keys/values to a slice that the same function sorts after
// the loop. A sort-free collection stays flagged — that is the exact
// bug shape the analyzer exists for.
func (c *classifier) collectThenSort() bool {
	if len(c.rs.Body.List) != 1 {
		return false
	}
	as, ok := c.rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltin(c.pass, call.Fun, "append") {
		return false
	}
	if len(call.Args) == 0 || !sameObject(c.pass, call.Args[0], dst) {
		return false
	}
	dstObj := objectOf(c.pass, dst)
	if dstObj == nil {
		return false
	}
	// Look for sort.X(dst, ...) / slices.SortX(dst, ...) after the loop.
	sorted := false
	ast.Inspect(c.fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < c.rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := c.pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		path := pkgName.Imported().Path()
		if path != "sort" && path != "slices" {
			return true
		}
		if len(call.Args) >= 1 {
			if id, ok := call.Args[0].(*ast.Ident); ok && objectOf(c.pass, id) == dstObj {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

func (c *classifier) safeStmts(stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if !c.safeStmt(s) {
			return false
		}
	}
	return true
}

func (c *classifier) safeStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return c.safeAssign(s)
	case *ast.IncDecStmt:
		if !isIntegerType(c.pass, s.X) {
			return false
		}
		c.trackMutated(s.X)
		return true
	case *ast.DeclStmt:
		return true
	case *ast.EmptyStmt:
		return true
	case *ast.ExprStmt:
		// Only the order-free builtins: delete removes each visited key
		// at most once, close closes each collected channel exactly
		// once; neither observes position in the iteration.
		if call, ok := s.X.(*ast.CallExpr); ok {
			return isBuiltin(c.pass, call.Fun, "delete") || isBuiltin(c.pass, call.Fun, "close")
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil && !c.safeStmt(s.Init) {
			return false
		}
		if !c.safeStmts(s.Body.List) {
			return false
		}
		if s.Else != nil {
			return c.safeStmt(s.Else)
		}
		return true
	case *ast.BlockStmt:
		return c.safeStmts(s.List)
	case *ast.RangeStmt:
		// A nested range's own loop variables are NOT distinct across
		// iterations of the outer map range (the same inner collection
		// may be visited every time), so they earn no spot in c.keys;
		// the nested body is checked under the outer loop's rules. A
		// nested map range is additionally visited by checkFunc on its
		// own.
		return c.safeStmts(s.Body.List)
	case *ast.ForStmt:
		if s.Init != nil && !c.safeStmt(s.Init) {
			return false
		}
		if s.Post != nil && !c.safeStmt(s.Post) {
			return false
		}
		return c.safeStmts(s.Body.List)
	case *ast.BranchStmt:
		// continue only filters iterations; break/return/goto make the
		// set of executed iterations order-dependent.
		return s.Tok == token.CONTINUE
	default:
		return false
	}
}

func (c *classifier) safeAssign(as *ast.AssignStmt) bool {
	// Compound integer updates commute regardless of target.
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
		for _, lhs := range as.Lhs {
			if !isIntegerType(c.pass, lhs) {
				return false
			}
			c.trackMutated(lhs)
		}
		return true
	case token.ASSIGN, token.DEFINE:
		// handled below
	default:
		return false // %=, <<=, &^=: not order-commutative in general
	}
	for i, lhs := range as.Lhs {
		if c.safeLHS(lhs) {
			continue
		}
		// Idempotent constant store: every iteration that reaches this
		// assignment writes the same constant to the same variable.
		if id, ok := lhs.(*ast.Ident); ok && i < len(as.Rhs) {
			tv, hasVal := c.pass.TypesInfo.Types[as.Rhs[i]]
			obj := objectOf(c.pass, id)
			if hasVal && tv.Value != nil && obj != nil {
				if prev, seen := c.constWrites[obj]; !seen {
					c.constWrites[obj] = tv.Value
					c.mutated[obj]++
					continue
				} else if constant.Compare(prev, token.EQL, tv.Value) {
					c.mutated[obj]++
					continue
				}
			}
		}
		return false
	}
	// Multi-value defines (v, ok := m[k]) introduce locals; RHS reads
	// are always fine.
	return true
}

// safeLHS reports whether a write target cannot leak iteration order:
// blank, a variable local to the loop body, or an element keyed by a
// per-iteration loop variable.
func (c *classifier) safeLHS(lhs ast.Expr) bool {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return true
		}
		return c.isBodyLocal(objectOf(c.pass, lhs))
	case *ast.IndexExpr:
		if id, ok := lhs.Index.(*ast.Ident); ok {
			if obj := objectOf(c.pass, id); obj != nil && c.keys[obj] {
				return true
			}
		}
		return false
	case *ast.SelectorExpr:
		// Field of a body-local value.
		root := lhs.X
		for {
			if sel, ok := root.(*ast.SelectorExpr); ok {
				root = sel.X
				continue
			}
			break
		}
		if id, ok := root.(*ast.Ident); ok {
			return c.isBodyLocal(objectOf(c.pass, id))
		}
		return false
	default:
		return false
	}
}

// trackMutated records a sanctioned write occurrence when the target
// is a plain identifier. Element targets (m[k] += 1) are keyed or
// rejected elsewhere and are not tracked.
func (c *classifier) trackMutated(lhs ast.Expr) {
	if id, ok := lhs.(*ast.Ident); ok {
		if obj := objectOf(c.pass, id); obj != nil {
			c.mutated[obj]++
		}
	}
}

func (c *classifier) isBodyLocal(obj types.Object) bool {
	if obj == nil {
		return false
	}
	return obj.Pos() >= c.rs.Body.Pos() && obj.Pos() < c.rs.Body.End()
}

// sortKeysFix builds the mechanical rewrite
//
//	keys := make([]K, 0, len(m))
//	for k := range m { keys = append(keys, k) }
//	sort.Slice(keys, ...)
//	for _, k := range keys { v := m[k]; ... }
//
// offered when the map expression is a pure ident/selector chain, the
// key type is ordered, and the sort import is present or insertable.
func sortKeysFix(pass *framework.Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) (framework.SuggestedFix, bool) {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" || rs.Tok != token.DEFINE {
		return framework.SuggestedFix{}, false
	}
	if !pureChain(rs.X) {
		return framework.SuggestedFix{}, false
	}
	mt, ok := pass.TypesInfo.TypeOf(rs.X).Underlying().(*types.Map)
	if !ok || !isOrdered(mt.Key()) {
		return framework.SuggestedFix{}, false
	}
	// The rewrite calls sort.Slice; if sort is not already imported and
	// the file has no parenthesized import block to extend, the fix
	// would not compile — withhold it rather than emit broken code.
	impEdit, impNeeded, impOK := importEdit(pass, rs.Pos(), "sort")
	if !impOK {
		return framework.SuggestedFix{}, false
	}
	src := pass.Source(rs.Pos())
	if src == nil {
		return framework.SuggestedFix{}, false
	}
	file := pass.Fset.File(rs.Pos())
	off := func(p token.Pos) int { return file.Offset(p) }
	// Indentation of the `for` line.
	lineStart := file.LineStart(pass.Fset.Position(rs.Pos()).Line)
	indent := string(src[off(lineStart):off(rs.Pos())])
	if strings.TrimSpace(indent) != "" {
		return framework.SuggestedFix{}, false // `for` not first on its line
	}
	mapText := string(src[off(rs.X.Pos()):off(rs.X.End())])
	keyType := types.TypeString(mt.Key(), types.RelativeTo(pass.Pkg))
	keysName := freshName(fnBody, key.Name+"s")
	bodyText := string(src[off(rs.Body.Lbrace)+1 : off(rs.Body.Rbrace)])

	var b strings.Builder
	fmt.Fprintf(&b, "%s := make([]%s, 0, len(%s))\n", keysName, keyType, mapText)
	fmt.Fprintf(&b, "%sfor %s := range %s {\n", indent, key.Name, mapText)
	fmt.Fprintf(&b, "%s\t%s = append(%s, %s)\n", indent, keysName, keysName, key.Name)
	fmt.Fprintf(&b, "%s}\n", indent)
	fmt.Fprintf(&b, "%ssort.Slice(%s, func(i, j int) bool { return %s[i] < %s[j] })\n",
		indent, keysName, keysName, keysName)
	fmt.Fprintf(&b, "%sfor _, %s := range %s {", indent, key.Name, keysName)
	if v, ok := rs.Value.(*ast.Ident); ok && v.Name != "_" {
		fmt.Fprintf(&b, "\n%s\t%s := %s[%s]", indent, v.Name, mapText, key.Name)
	}
	b.WriteString(bodyText)
	b.WriteString("}")

	edits := []framework.TextEdit{{Pos: rs.Pos(), End: rs.End(), NewText: []byte(b.String())}}
	if impNeeded {
		edits = append(edits, impEdit)
	}
	return framework.SuggestedFix{
		Message:   "iterate over sorted keys",
		TextEdits: edits,
	}, true
}

// importEdit locates or builds the edit that makes path importable in
// the file containing at. needed is false when the import already
// exists (the rewrite compiles with no edit); ok is false when the
// import is missing and the file has no parenthesized import block to
// extend, so no compiling edit can be built.
func importEdit(pass *framework.Pass, at token.Pos, path string) (edit framework.TextEdit, needed, ok bool) {
	filename := pass.Fset.Position(at).Filename
	for _, f := range pass.Files {
		if pass.Fset.Position(f.Pos()).Filename != filename {
			continue
		}
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) == path {
				return framework.TextEdit{}, false, true
			}
		}
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.IMPORT || !gd.Lparen.IsValid() {
				continue
			}
			return framework.TextEdit{
				Pos:     gd.Lparen + 1,
				End:     gd.Lparen + 1,
				NewText: []byte("\n\t\"" + path + "\""),
			}, true, true
		}
	}
	return framework.TextEdit{}, false, false
}

// freshName returns base, or base with a numeric suffix, such that the
// name is not used anywhere in the enclosing function body. Shadowing
// an outer-scope name the body never mentions is harmless; colliding
// with one it does mention would silently rebind the body's reads.
func freshName(fnBody *ast.BlockStmt, base string) string {
	used := map[string]bool{}
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			used[id.Name] = true
		}
		return true
	})
	name := base
	for i := 2; used[name]; i++ {
		name = fmt.Sprintf("%s%d", base, i)
	}
	return name
}

func pureChain(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

func isOrdered(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsOrdered != 0
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func isIntegerType(pass *framework.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isBuiltin(pass *framework.Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

func objectOf(pass *framework.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}

func sameObject(pass *framework.Pass, a ast.Expr, b *ast.Ident) bool {
	ida, ok := a.(*ast.Ident)
	if !ok {
		return false
	}
	oa, ob := objectOf(pass, ida), objectOf(pass, b)
	return oa != nil && oa == ob
}
