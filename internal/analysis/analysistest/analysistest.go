// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against // want comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract on the stdlib
// only.
//
// Fixtures live under the analyzer package's testdata/ directory, one
// directory per fixture package (testdata/a, testdata/b, ...). They are
// real, compiling Go packages inside this module — the loader builds
// them with `go list -export`, so a fixture that does not compile fails
// loudly. The testdata/ location keeps them out of ./... patterns:
// deliberate violations never trip the tree-wide chaos-vet gate.
//
// Expectations are end-of-line comments:
//
//	for k := range m { // want `nondeterministic order`
//
// Each quoted string is a regexp that must match exactly one
// diagnostic reported on that line; diagnostics with no matching want
// (and wants with no matching diagnostic) fail the test.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"chaos/internal/analysis/framework"
)

// Run loads each fixture package (a path relative to the calling test's
// testdata/ directory), applies the analyzer, and reports mismatches
// through t. It returns the diagnostics so tests can make additional
// assertions (e.g. on suggested fixes).
func Run(t *testing.T, a *framework.Analyzer, fixtures ...string) []framework.Diagnostic {
	t.Helper()
	var all []framework.Diagnostic
	for _, fx := range fixtures {
		pkgs, err := framework.Load(token.NewFileSet(), ".", "./testdata/"+fx)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", fx, err)
		}
		diags, err := framework.Run(pkgs, []*framework.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on fixture %s: %v", a.Name, fx, err)
		}
		for _, pkg := range pkgs {
			check(t, pkg, diags)
		}
		all = append(all, diags...)
	}
	return all
}

type key struct {
	file string
	line int
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// check compares diagnostics against want comments for one package.
func check(t *testing.T, pkg *framework.Package, diags []framework.Diagnostic) {
	t.Helper()
	wants := map[key][]string{}
	for _, f := range pkg.Files {
		fileName := pkg.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "// want ")
				if i < 0 {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				for _, m := range wantRE.FindAllStringSubmatch(text[i+len("// want "):], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					wants[key{fileName, line}] = append(wants[key{fileName, line}], pat)
				}
			}
		}
	}

	got := map[key][]string{}
	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		if _, mine := pkg.Sources[p.Filename]; !mine {
			continue
		}
		got[key{p.Filename, p.Line}] = append(got[key{p.Filename, p.Line}], d.Message)
	}

	for k, pats := range wants {
		msgs := got[k]
		for _, pat := range pats {
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Errorf("%s:%d: bad want regexp %q: %v", k.file, k.line, pat, err)
				continue
			}
			matched := -1
			for i, msg := range msgs {
				if msg != "" && re.MatchString(msg) {
					matched = i
					break
				}
			}
			if matched < 0 {
				t.Errorf("%s:%d: no diagnostic matching %q (got %s)", k.file, k.line, pat, quoteAll(msgs))
				continue
			}
			msgs[matched] = "" // consumed
		}
		for _, msg := range msgs {
			if msg != "" {
				t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, msg)
			}
		}
		delete(got, k)
	}
	for k, msgs := range got {
		for _, msg := range msgs {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, msg)
		}
	}
}

func quoteAll(msgs []string) string {
	if len(msgs) == 0 {
		return "none"
	}
	q := make([]string, len(msgs))
	for i, m := range msgs {
		q[i] = fmt.Sprintf("%q", m)
	}
	return strings.Join(q, ", ")
}
