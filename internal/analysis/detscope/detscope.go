// Package detscope decides which code the determinism analyzers
// (detrange, wallclock) apply to. The deterministic core of the repo —
// the packages whose outputs must be bit-identical across execution
// planes, worker counts and hosts — is enumerated here once so the
// analyzers agree on the boundary.
package detscope

import (
	"go/ast"
	"go/token"

	"chaos/internal/analysis/framework"
)

// EnginePackages are the packages under the full determinism contract:
// equal seeds must reproduce results, reports and (on the DES plane)
// the virtual clock exactly. detrange and wallclock both apply.
//
// internal/algorithms is included although ISSUE lists it implicitly:
// the motivating regression (MCST.Converged unioning labels in map
// order) lived there, and every gas.Program it defines executes inside
// the deterministic engines.
var EnginePackages = map[string]bool{
	"chaos/internal/core":        true,
	"chaos/internal/core/native": true,
	"chaos/internal/core/drive":  true,
	"chaos/internal/gas":         true,
	"chaos/internal/sim":         true,
	"chaos/internal/refalgo":     true,
	"chaos/internal/algorithms":  true,
}

// Directives widening the analyzers' scope beyond EnginePackages:
//
//	//chaos:deterministic — file-level; the file is under the full
//	    contract (detrange + wallclock). Used by fixture packages and
//	    any future package that joins the deterministic core.
//	//chaos:sorted-maps — file-level; the file promises deterministic
//	    emission order only (detrange applies, wallclock does not).
//	    Used by record-emission and listing paths whose output is
//	    diffed or paged: benchmark JSON records, /metrics rendering,
//	    API listings.
const (
	DirDeterministic = "deterministic"
	DirSortedMaps    = "sorted-maps"
)

// FileInDetRangeScope reports whether detrange applies to file f.
func FileInDetRangeScope(pass *framework.Pass, f *ast.File) bool {
	if EnginePackages[pass.Pkg.Path()] {
		return true
	}
	return framework.FileHasDirective(pass.Fset, f, DirDeterministic) ||
		framework.FileHasDirective(pass.Fset, f, DirSortedMaps)
}

// FileInWallClockScope reports whether wallclock applies to file f.
func FileInWallClockScope(pass *framework.Pass, f *ast.File) bool {
	if EnginePackages[pass.Pkg.Path()] {
		return true
	}
	return framework.FileHasDirective(pass.Fset, f, DirDeterministic)
}

// Line returns pos's line, a convenience shared by the analyzers'
// tests and fix builders.
func Line(fset *token.FileSet, pos token.Pos) int { return fset.Position(pos).Line }
