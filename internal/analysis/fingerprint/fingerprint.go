// Package fingerprint verifies that every exported field of a
// fingerprinted options struct participates in both Fingerprint and
// Canonical.
//
// Invariant: the job service content-addresses cached results by
// Options.Fingerprint, and two Options must share a fingerprint exactly
// when their canonical forms are equal. A field added to the struct but
// not to Fingerprint silently falls out of the cache key — distinct
// configurations start sharing results — and a field Canonical neither
// folds nor explicitly passes through leaves the equivalence argument
// implicit. The reflection test (TestFingerprintCoversAllFields) keeps
// enforcing this at run time; this analyzer moves the failure to vet
// time and names the missing field at its declaration.
//
// A field that intentionally passes through Canonical unchanged is
// named there with a blank assignment (`_ = c.Field`), turning the
// implicit copy into a checked declaration of intent.
package fingerprint

import (
	"go/ast"
	"go/types"

	"chaos/internal/analysis/framework"
)

// Analyzer is the fingerprint analyzer.
var Analyzer = &framework.Analyzer{
	Name: "fingerprint",
	Doc: "checks every exported field of a fingerprinted struct is used by Fingerprint and Canonical\n\n" +
		"Applies to any struct type with both a Fingerprint() string and a\n" +
		"Canonical() method returning its own type. Each exported field must be\n" +
		"referenced in both method bodies; //chaos:fingerprint-ok on the field\n" +
		"declaration exempts a field that genuinely must not enter the cache key.",
	Run: run,
}

// Directive exempts a field, written on its declaration line.
const Directive = "fingerprint-ok"

func run(pass *framework.Pass) (interface{}, error) {
	for _, target := range fingerprintedStructs(pass) {
		checkStruct(pass, target)
	}
	return nil, nil
}

// target is one struct type carrying Fingerprint+Canonical.
type target struct {
	name        *types.TypeName
	st          *types.Struct
	fingerprint *ast.FuncDecl
	canonical   *ast.FuncDecl
	structDecl  *ast.StructType
}

func fingerprintedStructs(pass *framework.Pass) []*target {
	var out []*target
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		if !hasFingerprintShape(named) {
			continue
		}
		t := &target{name: tn, st: st}
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Recv == nil || len(d.Recv.List) != 1 {
						continue
					}
					if receiverType(pass, d) != tn {
						continue
					}
					switch d.Name.Name {
					case "Fingerprint":
						t.fingerprint = d
					case "Canonical":
						t.canonical = d
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok || ts.Name.Name != name {
							continue
						}
						if s, ok := ts.Type.(*ast.StructType); ok {
							t.structDecl = s
						}
					}
				}
			}
		}
		if t.fingerprint != nil && t.canonical != nil && t.structDecl != nil {
			out = append(out, t)
		}
	}
	return out
}

// hasFingerprintShape reports whether named has Fingerprint() string
// and Canonical() returning the type itself.
func hasFingerprintShape(named *types.Named) bool {
	var haveFP, haveCanon bool
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		sig := m.Type().(*types.Signature)
		switch m.Name() {
		case "Fingerprint":
			if sig.Params().Len() == 0 && sig.Results().Len() == 1 {
				if b, ok := sig.Results().At(0).Type().(*types.Basic); ok && b.Kind() == types.String {
					haveFP = true
				}
			}
		case "Canonical":
			if sig.Params().Len() == 0 && sig.Results().Len() == 1 {
				res := sig.Results().At(0).Type()
				if p, ok := res.(*types.Pointer); ok {
					res = p.Elem()
				}
				if res == named.Obj().Type() {
					haveCanon = true
				}
			}
		}
	}
	return haveFP && haveCanon
}

func receiverType(pass *framework.Pass, d *ast.FuncDecl) *types.TypeName {
	t := pass.TypesInfo.TypeOf(d.Recv.List[0].Type)
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

func checkStruct(pass *framework.Pass, t *target) {
	fpRefs := fieldRefs(pass, t.fingerprint)
	canonRefs := fieldRefs(pass, t.canonical)
	for i := 0; i < t.st.NumFields(); i++ {
		field := t.st.Field(i)
		if !field.Exported() {
			continue
		}
		if pass.Suppressed(Directive, field.Pos()) {
			continue
		}
		if !fpRefs[field] {
			pass.Reportf(field.Pos(),
				"%s.%s is not referenced in (%s).Fingerprint: the field would silently fall out of the result-cache key",
				t.name.Name(), field.Name(), t.name.Name())
		}
		if !canonRefs[field] {
			pass.Reportf(field.Pos(),
				"%s.%s is not referenced in (%s).Canonical: fold its default or declare the pass-through explicitly (_ = c.%s)",
				t.name.Name(), field.Name(), t.name.Name(), field.Name())
		}
	}
}

// fieldRefs collects every struct field object referenced in the
// method body, through selectors (o.Field, c.Field) and composite
// literal keys (T{Field: v}).
func fieldRefs(pass *framework.Pass, fn *ast.FuncDecl) map[*types.Var]bool {
	refs := map[*types.Var]bool{}
	if fn.Body == nil {
		return refs
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok {
					refs[v] = true
				}
			}
		case *ast.KeyValueExpr:
			if id, ok := n.Key.(*ast.Ident); ok {
				if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && v.IsField() {
					refs[v] = true
				}
			}
		}
		return true
	})
	return refs
}
