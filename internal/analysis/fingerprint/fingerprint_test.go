package fingerprint_test

import (
	"testing"

	"chaos/internal/analysis/analysistest"
	"chaos/internal/analysis/fingerprint"
)

func TestFingerprint(t *testing.T) {
	analysistest.Run(t, fingerprint.Analyzer, "a")
}
