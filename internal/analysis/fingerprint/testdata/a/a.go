// Package a exercises fingerprint: an options struct whose exported
// fields must all be referenced in Fingerprint and Canonical.
package a

import "fmt"

// Options carries the Fingerprint+Canonical shape, so every exported
// field is checked against both method bodies.
type Options struct {
	Partitions int    // in both: ok
	Threads    int    // want `Options.Threads is not referenced in \(Options\).Fingerprint`
	Label      string // want `Options.Label is not referenced in \(Options\).Canonical: fold its default or declare the pass-through explicitly`
	Seed       int64  // want `Options.Seed is not referenced in \(Options\).Fingerprint` `Options.Seed is not referenced in \(Options\).Canonical`
	Debug      bool   //chaos:fingerprint-ok debug output never enters the cache key
	scratch    []byte // unexported: not part of the contract
}

func (o Options) Canonical() Options {
	c := o
	if c.Partitions <= 0 {
		c.Partitions = 1
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	return c
}

func (o Options) Fingerprint() string {
	c := o.Canonical()
	return fmt.Sprintf("p=%d label=%s", c.Partitions, c.Label)
}

// Plain has no Fingerprint/Canonical pair: never checked.
type Plain struct {
	Anything string
}

// HalfShape has Fingerprint but no Canonical, so it lacks the shape and
// is ignored too.
type HalfShape struct {
	Ignored int
}

func (h HalfShape) Fingerprint() string { return "static" }
