// Package wallclock forbids host wall-clock and global-randomness
// reads inside the repo's deterministic code.
//
// Invariant: the DES driver runs on virtual time — sim.Time advances
// only through simulated events — and every randomized decision draws
// from a seeded *rand.Rand. A time.Now, time.Since or global math/rand
// call inside the deterministic packages smuggles host state into the
// run and breaks equal-seed reproducibility. The native plane is the
// sanctioned exception: files that measure wall-clock by design carry a
// file-level //chaos:wallclock-ok directive (native.go's elapsed
// clock); individual call sites may carry the same directive inline.
//
// Constructing seeded generators (rand.New, rand.NewSource) is allowed
// everywhere — only draws from the package-global source are flagged.
package wallclock

import (
	"go/ast"
	"go/types"

	"chaos/internal/analysis/detscope"
	"chaos/internal/analysis/framework"
)

// Analyzer is the wallclock analyzer.
var Analyzer = &framework.Analyzer{
	Name: "wallclock",
	Doc: "forbids wall-clock and global math/rand in deterministic code\n\n" +
		"time.Now/Since/Until, timers and package-global math/rand draws make a\n" +
		"run depend on host speed and process-global state. Deterministic\n" +
		"packages must take time from the simulation (sim.Time) and randomness\n" +
		"from a seeded *rand.Rand. Files that measure wall time by design (the\n" +
		"native plane's clock) carry //chaos:wallclock-ok at file level.",
	Run: run,
}

// Directive suppresses a finding at a call site (line level) or for a
// whole file (in the file's doc region).
const Directive = "wallclock-ok"

// forbiddenTime are the time-package functions that read the host
// clock or schedule against it.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// allowedRand are the math/rand package-level functions that merely
// construct seeded state rather than drawing from the global source.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func run(pass *framework.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		if !detscope.FileInWallClockScope(pass, f) {
			continue
		}
		if framework.FileHasDirective(pass.Fset, f, Directive) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
			if !ok {
				return true
			}
			// Only package-level *functions* are clock/randomness
			// reads; rand.Rand in a type position or method values on
			// a seeded generator are fine.
			if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isFunc {
				return true
			}
			var what string
			switch pkgName.Imported().Path() {
			case "time":
				if forbiddenTime[sel.Sel.Name] {
					what = "reads the host clock"
				}
			case "math/rand", "math/rand/v2":
				// Package-level functions draw from the process-global
				// source; methods on a seeded *rand.Rand resolve to the
				// type, not the package, and never reach here.
				if !allowedRand[sel.Sel.Name] {
					what = "draws from the process-global random source"
				}
			}
			if what == "" {
				return true
			}
			if pass.Suppressed(Directive, sel.Pos()) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"%s.%s %s in deterministic code; use sim.Time / a seeded *rand.Rand, "+
					"or annotate //chaos:%s <reason> for sanctioned wall-time measurement",
				pkgID.Name, sel.Sel.Name, what, Directive)
			return true
		})
	}
	return nil, nil
}
