// Package a exercises wallclock: clock and global-rand reads in a
// deterministic file.
//
//chaos:deterministic
package a

import (
	"math/rand"
	"time"
)

func clockReads() time.Duration {
	start := time.Now()      // want `reads the host clock`
	return time.Since(start) // want `reads the host clock`
}

var _ = func() {
	time.Sleep(0) // want `reads the host clock`
}

func globalRand() int {
	return rand.Intn(10) // want `process-global random source`
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10) // methods on a seeded generator are fine
}

func typeUseOK(r *rand.Rand, d time.Duration) time.Time {
	var t time.Time
	return t.Add(d)
}

func annotated() time.Time {
	return time.Now() //chaos:wallclock-ok fixture: sanctioned wall-time measurement
}
