// Package exempt is under the determinism contract but measures wall
// time by design, the native-plane shape: the file-level directive
// switches wallclock off for the whole file.
//
//chaos:deterministic
//chaos:wallclock-ok this fixture stands in for the native plane's clock
package exempt

import "time"

func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

func Stamp() time.Time { return time.Now() }
