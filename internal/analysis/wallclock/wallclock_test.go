package wallclock_test

import (
	"testing"

	"chaos/internal/analysis/analysistest"
	"chaos/internal/analysis/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, wallclock.Analyzer, "a", "exempt")
}
