package chaosvet_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chaos/internal/analysis/chaosvet"
)

// TestEveryAnalyzerHasFixtures enforces the suite's own contract: an
// analyzer registered in chaos-vet ships analysistest fixtures. An
// analyzer without fixtures is an analyzer whose diagnostics nobody has
// pinned down — it gets added here, it gets testdata.
func TestEveryAnalyzerHasFixtures(t *testing.T) {
	for _, a := range chaosvet.All() {
		dir := filepath.Join("..", a.Name, "testdata")
		var goFiles int
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".go") {
				goFiles++
			}
			return nil
		})
		if err != nil {
			t.Errorf("%s: no testdata directory (%v)", a.Name, err)
			continue
		}
		if goFiles == 0 {
			t.Errorf("%s: testdata directory has no Go fixtures", a.Name)
		}
	}
}

// TestAnalyzerMetadata keeps the registry presentable: names are
// non-empty and unique (they become the [name] tag on every
// diagnostic and the -analyzers flag vocabulary), docs begin with a
// one-line summary.
func TestAnalyzerMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range chaosvet.All() {
		if a.Name == "" {
			t.Error("analyzer with empty name")
			continue
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if strings.TrimSpace(a.Doc) == "" {
			t.Errorf("%s: empty Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("%s: nil Run", a.Name)
		}
	}
}
