// Package chaosvet registers the repo's analyzers in one place, shared
// by the cmd/chaos-vet multichecker and the meta-test that keeps every
// registered analyzer covered by fixtures.
package chaosvet

import (
	"chaos/internal/analysis/ctxhook"
	"chaos/internal/analysis/detrange"
	"chaos/internal/analysis/fingerprint"
	"chaos/internal/analysis/framework"
	"chaos/internal/analysis/sliceretain"
	"chaos/internal/analysis/wallclock"
)

// All returns every analyzer in the chaos-vet suite, in reporting
// order. Each entry must ship an analysistest fixture under
// internal/analysis/<name>/testdata/ — TestEveryAnalyzerHasFixtures
// enforces it.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		detrange.Analyzer,
		wallclock.Analyzer,
		fingerprint.Analyzer,
		ctxhook.Analyzer,
		sliceretain.Analyzer,
	}
}
