package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"chaos/internal/core/drive"
)

// TreeSpan is one node of a causal trace tree: a named time range with
// a trace-wide identity and a parent link. The service journals its
// lifecycle spans in this form (the JSON tags are the wire and journal
// encoding), and the merged-timeline builder converts engine
// flight-recorder spans into it at serve time.
type TreeSpan struct {
	TraceID string `json:"traceId,omitempty"`
	SpanID  string `json:"spanId"`
	// Parent is the span id this span nests under; "" marks a root.
	Parent string `json:"parent,omitempty"`
	// Remote marks a span whose parent lives in another process (the
	// caller named it via an inbound traceparent); tree building treats
	// such spans as roots rather than orphans.
	Remote bool   `json:"remote,omitempty"`
	Name   string `json:"name"`
	// Kind is the tier the span came from: "request" (HTTP), "lifecycle"
	// (scheduler), "wal" (durability), "engine" (flight recorder).
	Kind string `json:"kind"`
	// Start/End are wall-clock epoch nanoseconds, except spans with
	// Clock "virtual" (DES-engine spans), whose times are virtual
	// nanoseconds since run start. End 0 means the span is still open.
	Start int64 `json:"startNs"`
	End   int64 `json:"endNs,omitempty"`
	// Clock is "" for wall-clock spans, "virtual" for DES-engine spans.
	Clock  string `json:"clock,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Span kinds.
const (
	KindRequest   = "request"
	KindLifecycle = "lifecycle"
	KindWAL       = "wal"
	KindEngine    = "engine"
)

// Node is one assembled tree position: a span and its children,
// ordered by start time.
type Node struct {
	Span     TreeSpan `json:"span"`
	Children []*Node  `json:"children,omitempty"`
}

// BuildTree assembles spans into rooted trees. A span is a root when
// it has no parent or its parent is remote; a span whose parent was
// dropped (ring overflow, a journal gap) is an ORPHAN: it is counted
// and re-attached under the earliest root — never silently lost — so a
// Chrome export of a clipped trace still shows every retained span.
// When no root survived at all, orphans are promoted to roots.
// Children are sorted by (Start, SpanID), so the tree shape is a pure
// function of the span set.
func BuildTree(spans []TreeSpan) (roots []*Node, orphans int) {
	nodes := make([]*Node, len(spans))
	byID := make(map[string]*Node, len(spans))
	for i, s := range spans {
		n := &Node{Span: s}
		nodes[i] = n
		if _, dup := byID[s.SpanID]; !dup {
			byID[s.SpanID] = n
		}
	}
	var orphaned []*Node
	for _, n := range nodes {
		switch {
		case n.Span.Parent == "" || n.Span.Remote:
			roots = append(roots, n)
		default:
			p := byID[n.Span.Parent]
			if p == nil || p == n {
				orphans++
				orphaned = append(orphaned, n)
				continue
			}
			p.Children = append(p.Children, n)
		}
	}
	if len(roots) == 0 && len(orphaned) > 0 {
		// Every ancestor was dropped: promote the orphans so the trees
		// still carry the retained spans.
		roots, orphaned = orphaned, nil
	}
	sortNodes(roots)
	if len(orphaned) > 0 {
		primary := roots[0]
		primary.Children = append(primary.Children, orphaned...)
	}
	// A cycle among spans (corrupt input) is unreachable from any root;
	// break it by promoting its earliest member, counting it orphaned.
	reached := map[*Node]bool{}
	var mark func(n *Node)
	mark = func(n *Node) {
		if reached[n] {
			return
		}
		reached[n] = true
		for _, c := range n.Children {
			mark(c)
		}
	}
	for _, r := range roots {
		mark(r)
	}
	for _, n := range nodes {
		if reached[n] {
			continue
		}
		if p := byID[n.Span.Parent]; p != nil {
			p.Children = removeChild(p.Children, n)
		}
		orphans++
		roots = append(roots, n)
		mark(n)
	}
	for _, r := range roots {
		sortChildren(r)
	}
	sortNodes(roots)
	return roots, orphans
}

func removeChild(children []*Node, n *Node) []*Node {
	for i, c := range children {
		if c == n {
			return append(children[:i], children[i+1:]...)
		}
	}
	return children
}

func sortNodes(ns []*Node) {
	sort.SliceStable(ns, func(i, k int) bool {
		a, b := ns[i].Span, ns[k].Span
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.SpanID < b.SpanID
	})
}

func sortChildren(n *Node) {
	sortNodes(n.Children)
	for _, c := range n.Children {
		sortChildren(c)
	}
}

// Timeline is the merged cross-tier view of one job: the journaled
// service spans (request, lifecycle, WAL — wall-clock epoch ns) plus
// the execution-scoped engine flight recording, stitched under the
// job's run span at build time.
type Timeline struct {
	TraceID string
	// Spans are the service-tier spans (request/lifecycle/wal).
	Spans []TreeSpan
	// Engine is the flight recording of the run, when this process
	// executed it (times are nanoseconds relative to run start).
	Engine []drive.Span
	// EngineVirtual marks DES-engine recordings, whose span times are
	// VIRTUAL nanoseconds: they order and nest correctly but cannot be
	// aligned with the wall-clock tiers, so they keep their own clock.
	EngineVirtual bool
	// RunSpanID is the lifecycle span the engine spans parent under;
	// "" leaves them orphans (BuildTree re-attaches them to the root).
	RunSpanID string
	// RunStartNs is the epoch time of the run span's start, the offset
	// that aligns native (wall-clock) engine spans with the other tiers.
	RunStartNs int64
}

// engineTreeSpans converts the flight recording into TreeSpans with
// deterministically derived span ids, parented under the run span.
func (tl Timeline) engineTreeSpans() []TreeSpan {
	out := make([]TreeSpan, 0, len(tl.Engine))
	for i, s := range tl.Engine {
		start, end := s.Start, s.Start+s.Dur
		clock := ""
		if tl.EngineVirtual {
			clock = "virtual"
		} else {
			start += tl.RunStartNs
			end += tl.RunStartNs
		}
		out = append(out, TreeSpan{
			TraceID: tl.TraceID,
			SpanID:  DeriveSpanID(tl.TraceID+"/engine", uint64(i)).String(),
			Parent:  tl.RunSpanID,
			Name:    engineSpanName(s),
			Kind:    KindEngine,
			Start:   start,
			End:     end,
			Clock:   clock,
			Detail:  fmt.Sprintf("machine %d iter %d", s.Machine, s.Iter),
		})
	}
	return out
}

func engineSpanName(s drive.Span) string {
	name := s.Phase
	if s.Part >= 0 {
		name = fmt.Sprintf("%s p%d", s.Phase, s.Part)
	}
	if s.Stolen {
		name += " (stolen)"
	}
	return name
}

// Tree assembles the merged timeline into rooted trees (see BuildTree
// for orphan handling).
func (tl Timeline) Tree() ([]*Node, int) {
	spans := make([]TreeSpan, 0, len(tl.Spans)+len(tl.Engine))
	spans = append(spans, tl.Spans...)
	spans = append(spans, tl.engineTreeSpans()...)
	return BuildTree(spans)
}

// Chrome thread ids per tier; engine spans get engineTidBase+machine.
const (
	tidRequest    = 0
	tidLifecycle  = 1
	tidWAL        = 2
	engineTidBase = 10
)

// WriteChrome emits the merged timeline as Chrome trace_event JSON:
// the full tree as complete ("X") events on per-tier threads, engine
// spans on per-machine threads, and flow ("s"/"f") events wherever a
// child runs on a different thread than its parent — the queue
// boundary between the HTTP request and the worker, and the handoff
// from the run span into the engine. Virtual-clock engine spans land
// in their own process (pid 1, "virtual ns") since they cannot be
// aligned with wall-clock time.
func (tl Timeline) WriteChrome(w io.Writer) error {
	roots, _ := tl.Tree()

	// Normalize wall-clock timestamps to the earliest span so the view
	// opens at ~0 µs instead of the unix epoch offset.
	var base int64 = -1
	var walk func(n *Node, f func(*Node))
	walk = func(n *Node, f func(*Node)) {
		f(n)
		for _, c := range n.Children {
			walk(c, f)
		}
	}
	for _, r := range roots {
		walk(r, func(n *Node) {
			if n.Span.Clock == "" && (base < 0 || n.Span.Start < base) {
				base = n.Span.Start
			}
		})
	}
	if base < 0 {
		base = 0
	}

	events := []chromeEvent{
		{Name: "thread_name", Ph: "M", Pid: 0, Tid: tidRequest, Args: map[string]any{"name": "http"}},
		{Name: "thread_name", Ph: "M", Pid: 0, Tid: tidLifecycle, Args: map[string]any{"name": "scheduler"}},
		{Name: "thread_name", Ph: "M", Pid: 0, Tid: tidWAL, Args: map[string]any{"name": "wal"}},
	}
	seen := map[int]bool{}
	var machines []int
	for _, s := range tl.Engine {
		if !seen[s.Machine] {
			seen[s.Machine] = true
			machines = append(machines, s.Machine)
		}
	}
	sort.Ints(machines)
	pidOf := func(sp TreeSpan) int {
		if sp.Clock == "virtual" {
			return 1
		}
		return 0
	}
	enginePid := 0
	if tl.EngineVirtual {
		enginePid = 1
		events = append(events, chromeEvent{Name: "process_name", Ph: "M", Pid: 1,
			Args: map[string]any{"name": "engine (virtual ns)"}})
	}
	for _, m := range machines {
		events = append(events, chromeEvent{Name: "thread_name", Ph: "M", Pid: enginePid,
			Tid: engineTidBase + m, Args: map[string]any{"name": fmt.Sprintf("machine %d", m)}})
	}

	tidOf := func(sp TreeSpan) int {
		switch sp.Kind {
		case KindRequest:
			return tidRequest
		case KindWAL:
			return tidWAL
		case KindEngine:
			// Recover the machine from the detail the converter wrote.
			var m, iter int
			if _, err := fmt.Sscanf(sp.Detail, "machine %d iter %d", &m, &iter); err == nil {
				return engineTidBase + m
			}
			return engineTidBase
		default:
			return tidLifecycle
		}
	}
	tsOf := func(sp TreeSpan, at int64) float64 {
		if sp.Clock == "virtual" {
			return float64(at) / 1e3
		}
		return float64(at-base) / 1e3
	}

	flowID := 0
	var emit func(n *Node)
	emit = func(n *Node) {
		sp := n.Span
		end := sp.End
		if end < sp.Start {
			end = sp.Start // still open: render as a point
		}
		args := map[string]any{"spanId": sp.SpanID, "kind": sp.Kind}
		if sp.Detail != "" {
			args["detail"] = sp.Detail
		}
		if sp.End == 0 {
			args["open"] = true
		}
		events = append(events, chromeEvent{
			Name: sp.Name, Ph: "X",
			Ts: tsOf(sp, sp.Start), Dur: float64(end-sp.Start) / 1e3,
			Pid: pidOf(sp), Tid: tidOf(sp), Cat: sp.Kind, Args: args,
		})
		for _, c := range n.Children {
			// A child on another thread (or clock) is a causal handoff:
			// draw the flow arrow across the boundary.
			if tidOf(c.Span) != tidOf(sp) || pidOf(c.Span) != pidOf(sp) {
				flowID++
				events = append(events,
					chromeEvent{Name: "handoff", Ph: "s", ID: flowID, Cat: "flow",
						Ts: tsOf(sp, sp.Start), Pid: pidOf(sp), Tid: tidOf(sp)},
					chromeEvent{Name: "handoff", Ph: "f", BP: "e", ID: flowID, Cat: "flow",
						Ts: tsOf(c.Span, c.Span.Start), Pid: pidOf(c.Span), Tid: tidOf(c.Span)})
			}
			emit(c)
		}
	}
	for _, r := range roots {
		emit(r)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}
