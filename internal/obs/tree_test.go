package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"chaos/internal/core/drive"
)

func countNodes(roots []*Node) int {
	n := 0
	var walk func(*Node)
	walk = func(nd *Node) {
		n++
		for _, c := range nd.Children {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return n
}

// BuildTree's base case: parent links become nesting, children sort by
// (Start, SpanID), and a remote parent makes a root rather than an
// orphan.
func TestBuildTreeNesting(t *testing.T) {
	spans := []TreeSpan{
		{SpanID: "root", Remote: true, Parent: "caller", Name: "request", Start: 10},
		{SpanID: "b", Parent: "root", Name: "run", Start: 30},
		{SpanID: "a", Parent: "root", Name: "queued", Start: 20},
		{SpanID: "a2", Parent: "root", Name: "admitted", Start: 20}, // ties break on SpanID
	}
	roots, orphans := BuildTree(spans)
	if orphans != 0 {
		t.Fatalf("orphans = %d, want 0", orphans)
	}
	if len(roots) != 1 || roots[0].Span.SpanID != "root" {
		t.Fatalf("roots = %+v, want the single remote-parent span", roots)
	}
	got := make([]string, 0, 3)
	for _, c := range roots[0].Children {
		got = append(got, c.Span.SpanID)
	}
	want := []string{"a", "a2", "b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("children order = %v, want %v", got, want)
		}
	}
	if countNodes(roots) != len(spans) {
		t.Fatalf("tree holds %d spans, want %d", countNodes(roots), len(spans))
	}
}

// A span whose parent is missing (ring overflow, journal gap) is
// counted as an orphan and re-attached under the earliest root — never
// dropped from the tree.
func TestBuildTreeOrphanReattached(t *testing.T) {
	spans := []TreeSpan{
		{SpanID: "root", Name: "request", Start: 5},
		{SpanID: "lost-child", Parent: "evicted", Name: "scatter p0", Start: 50},
	}
	roots, orphans := BuildTree(spans)
	if orphans != 1 {
		t.Fatalf("orphans = %d, want 1", orphans)
	}
	if len(roots) != 1 || len(roots[0].Children) != 1 || roots[0].Children[0].Span.SpanID != "lost-child" {
		t.Fatalf("orphan was not re-attached under the root: %+v", roots)
	}
}

// When every ancestor was dropped, the orphans are promoted to roots so
// the retained spans still render.
func TestBuildTreeAllOrphansPromoted(t *testing.T) {
	spans := []TreeSpan{
		{SpanID: "x", Parent: "gone1", Name: "scatter p0", Start: 2},
		{SpanID: "y", Parent: "gone2", Name: "gather p0", Start: 1},
	}
	roots, orphans := BuildTree(spans)
	if orphans != 2 {
		t.Fatalf("orphans = %d, want 2", orphans)
	}
	if len(roots) != 2 || roots[0].Span.SpanID != "y" || roots[1].Span.SpanID != "x" {
		t.Fatalf("promoted roots = %+v, want y then x (start order)", roots)
	}
}

// A parent cycle (corrupt input) must not hang or vanish: the cycle is
// broken, its members surface as roots, and they count as orphans.
func TestBuildTreeCycleBroken(t *testing.T) {
	spans := []TreeSpan{
		{SpanID: "root", Name: "request", Start: 0},
		{SpanID: "c1", Parent: "c2", Name: "a", Start: 10},
		{SpanID: "c2", Parent: "c1", Name: "b", Start: 20},
	}
	roots, orphans := BuildTree(spans)
	if orphans == 0 {
		t.Fatal("cycle members were not counted as orphans")
	}
	if countNodes(roots) != len(spans) {
		t.Fatalf("tree holds %d spans, want %d (cycle must not drop spans)", countNodes(roots), len(spans))
	}
	// A self-parented span is the degenerate cycle.
	roots, orphans = BuildTree([]TreeSpan{{SpanID: "s", Parent: "s", Name: "self", Start: 0}})
	if countNodes(roots) != 1 || orphans != 1 {
		t.Fatalf("self-parent: roots=%d orphans=%d, want 1/1", countNodes(roots), orphans)
	}
}

// Ring wraparound with parented spans: when the ring evicts a parent
// but keeps its children, the tree re-attaches the survivors and the
// Chrome export still renders every retained span — a clipped
// recording degrades, it does not orphan the export.
func TestRingWraparoundKeepsChromeExportWhole(t *testing.T) {
	const capacity = 4
	ring := NewRing[TreeSpan](capacity)
	// A chain root -> s1 -> ... -> s6; the ring keeps only the last 4,
	// so the retained spans' ancestors are all evicted.
	prev := ""
	for i := 0; i < 7; i++ {
		id := fmt.Sprintf("s%d", i)
		name := "request"
		if i > 0 {
			name = fmt.Sprintf("phase %d", i)
		}
		ring.Record(TreeSpan{SpanID: id, Parent: prev, Name: name, Kind: KindLifecycle, Start: int64(i * 100), End: int64(i*100 + 50)})
		prev = id
	}
	spans, dropped := ring.Snapshot()
	if dropped != 3 || len(spans) != capacity {
		t.Fatalf("ring kept %d spans, dropped %d; want %d kept, 3 dropped", len(spans), dropped, capacity)
	}
	roots, orphans := BuildTree(spans)
	if orphans != 0 {
		// s3's parent s2 was evicted, but s3 is the only parentless
		// survivor chain head: it must have been promoted, not counted
		// against a surviving root.
		t.Logf("orphans = %d (survivor chain head re-attached)", orphans)
	}
	if countNodes(roots) != capacity {
		t.Fatalf("tree holds %d spans, want all %d retained", countNodes(roots), capacity)
	}

	tl := Timeline{TraceID: DeriveTraceID("wrap", 0).String(), Spans: spans}
	var buf bytes.Buffer
	if err := tl.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, buf.String())
	}
	complete := 0
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			complete++
		}
	}
	if complete != capacity {
		t.Fatalf("chrome export holds %d complete events, want %d (dropped parents must not orphan the export)", complete, capacity)
	}
}

// The merged timeline parents engine spans under the run span, keeps
// the virtual clock separate from wall-clock tiers, and draws flow
// events across the run->engine boundary.
func TestTimelineMergesEngineSpans(t *testing.T) {
	trace := DeriveTraceID("timeline", 0).String()
	runID := DeriveSpanID(trace, 2).String()
	tl := Timeline{
		TraceID: trace,
		Spans: []TreeSpan{
			{TraceID: trace, SpanID: DeriveSpanID(trace, 0).String(), Name: "request", Kind: KindRequest, Start: 1_000_000, End: 1_100_000},
			{TraceID: trace, SpanID: runID, Parent: DeriveSpanID(trace, 0).String(), Name: "run", Kind: KindLifecycle, Start: 1_100_000, End: 9_000_000},
		},
		Engine: []drive.Span{
			{Machine: 0, Iter: 0, Part: 0, Phase: drive.PhaseScatter, Start: 0, Dur: 500},
			{Machine: 1, Iter: 0, Part: 1, Phase: drive.PhaseGather, Start: 500, Dur: 300},
		},
		EngineVirtual: true,
		RunSpanID:     runID,
	}
	roots, orphans := BuildTree(append(append([]TreeSpan{}, tl.Spans...), tl.engineTreeSpans()...))
	if orphans != 0 {
		t.Fatalf("orphans = %d, want 0", orphans)
	}
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	run := roots[0].Children[0]
	if run.Span.SpanID != runID || len(run.Children) != 2 {
		t.Fatalf("engine spans did not nest under the run span: %+v", run)
	}
	for _, c := range run.Children {
		if c.Span.Kind != KindEngine || c.Span.Clock != "virtual" {
			t.Fatalf("engine child = %+v, want kind engine with virtual clock", c.Span)
		}
	}

	var buf bytes.Buffer
	if err := tl.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Pid int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	var flowStarts, flowEnds, virtualEvents int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "s":
			flowStarts++
		case "f":
			flowEnds++
		case "X":
			if e.Pid == 1 {
				virtualEvents++
			}
		}
	}
	if flowStarts == 0 || flowStarts != flowEnds {
		t.Fatalf("flow events s=%d f=%d, want matched pairs across the run->engine handoff", flowStarts, flowEnds)
	}
	if virtualEvents != 2 {
		t.Fatalf("virtual-clock engine events = %d, want 2 (own pid keeps clocks apart)", virtualEvents)
	}
}
