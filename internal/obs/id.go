package obs

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"strings"
)

// Trace identity. IDs follow the W3C Trace Context sizes (16-byte
// trace id, 8-byte span id) and are DERIVED, never drawn from a global
// randomness source: a trace id is a hash of a caller-chosen seed (the
// job fingerprint, a boot nonce) plus a monotonic counter, and a span
// id is a hash of its trace id plus a per-trace counter. Derivation
// keeps the ids out of chaos-vet's wallclock/randomness scope and lets
// tests pin exact ids; uniqueness holds as long as (seed, counter)
// pairs are not reused, which the callers' monotonic counters ensure.

// TraceID identifies one causal trace (one job, end to end).
type TraceID [16]byte

// SpanID identifies one span within a trace.
type SpanID [8]byte

// String renders the id as lowercase hex, the traceparent wire form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports the all-zero id, which traceparent forbids.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the id as lowercase hex, the traceparent wire form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports the all-zero id, which traceparent forbids.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// derive hashes (tag, seed, n) and copies the prefix into out,
// nudging the last byte if the prefix came out all zero (the one value
// the wire format reserves).
func derive(out []byte, tag, seed string, n uint64) {
	h := sha256.New()
	h.Write([]byte(tag))
	h.Write([]byte{0})
	h.Write([]byte(seed))
	var ctr [8]byte
	binary.LittleEndian.PutUint64(ctr[:], n)
	h.Write(ctr[:])
	sum := h.Sum(nil)
	copy(out, sum)
	zero := true
	for _, b := range out {
		if b != 0 {
			zero = false
			break
		}
	}
	if zero {
		out[len(out)-1] = 1
	}
}

// DeriveTraceID returns the trace id for (seed, n). Callers pair a
// stable seed (job fingerprint, boot nonce) with a monotonic counter.
func DeriveTraceID(seed string, n uint64) TraceID {
	var t TraceID
	derive(t[:], "chaos.trace", seed, n)
	return t
}

// DeriveSpanID returns span n of the given trace (trace is the
// lowercase-hex trace id). Distinct counters yield distinct ids.
func DeriveSpanID(trace string, n uint64) SpanID {
	var s SpanID
	derive(s[:], "chaos.span", trace, n)
	return s
}

// Traceparent renders the W3C traceparent header value for a sampled
// trace: 00-<trace>-<span>-01.
func Traceparent(t TraceID, s SpanID) string {
	return "00-" + t.String() + "-" + s.String() + "-01"
}

// ParseTraceparent parses a W3C traceparent header, returning the
// trace id and the caller's span id (the parent of the span the
// receiver opens). It is strict where the spec is: lowercase hex only,
// exact field widths, no all-zero ids, version ff invalid, and version
// 00 admits exactly four fields (higher versions may append more).
// Malformed headers return ok=false — the caller starts a fresh trace
// instead of failing the request.
func ParseTraceparent(h string) (t TraceID, parent SpanID, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) < 4 {
		return t, parent, false
	}
	version := parts[0]
	if len(version) != 2 || !isLowerHex(version) || version == "ff" {
		return t, parent, false
	}
	if version == "00" && len(parts) != 4 {
		return t, parent, false
	}
	if len(parts[1]) != 32 || !isLowerHex(parts[1]) ||
		len(parts[2]) != 16 || !isLowerHex(parts[2]) ||
		len(parts[3]) != 2 || !isLowerHex(parts[3]) {
		return t, parent, false
	}
	if _, err := hex.Decode(t[:], []byte(parts[1])); err != nil {
		return t, parent, false
	}
	if _, err := hex.Decode(parent[:], []byte(parts[2])); err != nil {
		return t, parent, false
	}
	if t.IsZero() || parent.IsZero() {
		return TraceID{}, SpanID{}, false
	}
	return t, parent, true
}

func isLowerHex(s string) bool {
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return len(s) > 0
}
