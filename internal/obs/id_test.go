package obs

import (
	"regexp"
	"testing"
)

// Derived ids must be a pure function of (seed, counter): the same
// inputs always yield the same id (tests and the post-crash journal
// depend on it), different counters or seeds yield different ids, and
// the wire form is exactly the lowercase hex the spec demands.
func TestDerivationStability(t *testing.T) {
	traceHex := regexp.MustCompile(`^[0-9a-f]{32}$`)
	spanHex := regexp.MustCompile(`^[0-9a-f]{16}$`)

	a := DeriveTraceID("job-fingerprint|j1", 0)
	b := DeriveTraceID("job-fingerprint|j1", 0)
	if a != b {
		t.Fatalf("DeriveTraceID is not stable: %s vs %s", a, b)
	}
	if a.IsZero() {
		t.Fatal("derived trace id is all-zero (reserved by the wire format)")
	}
	if !traceHex.MatchString(a.String()) {
		t.Fatalf("trace id wire form %q is not 32 lowercase hex chars", a)
	}
	if DeriveTraceID("job-fingerprint|j1", 1) == a {
		t.Fatal("distinct counters yielded the same trace id")
	}
	if DeriveTraceID("job-fingerprint|j2", 0) == a {
		t.Fatal("distinct seeds yielded the same trace id")
	}

	s0 := DeriveSpanID(a.String(), 0)
	if s0 != DeriveSpanID(a.String(), 0) {
		t.Fatal("DeriveSpanID is not stable")
	}
	if s0.IsZero() {
		t.Fatal("derived span id is all-zero (reserved by the wire format)")
	}
	if !spanHex.MatchString(s0.String()) {
		t.Fatalf("span id wire form %q is not 16 lowercase hex chars", s0)
	}
	if DeriveSpanID(a.String(), 1) == s0 {
		t.Fatal("distinct counters yielded the same span id")
	}
	// Trace and span derivation are domain-separated: the same (seed,
	// counter) fed to both must not make the span id a prefix of the
	// trace id.
	same := DeriveSpanID("job-fingerprint|j1", 0)
	if string(a[:8]) == string(same[:]) {
		t.Fatal("span id equals trace id prefix: derivation domains collide")
	}
}

// A traceparent we mint must parse back to the ids we minted it from.
func TestTraceparentRoundTrip(t *testing.T) {
	tid := DeriveTraceID("round-trip", 7)
	sid := DeriveSpanID(tid.String(), 3)
	h := Traceparent(tid, sid)
	gotT, gotS, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected our own header", h)
	}
	if gotT != tid || gotS != sid {
		t.Fatalf("round trip drifted: got (%s, %s), want (%s, %s)", gotT, gotS, tid, sid)
	}
	// Leading/trailing whitespace is tolerated (proxies pad headers).
	if _, _, ok := ParseTraceparent(" " + h + " "); !ok {
		t.Fatalf("ParseTraceparent rejected %q with surrounding spaces", h)
	}
}

// ParseTraceparent is strict where the W3C spec is strict: every
// malformed shape is rejected so the server starts a fresh trace rather
// than adopting garbage identity.
func TestParseTraceparentMalformed(t *testing.T) {
	const (
		goodTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
		goodSpan  = "00f067aa0ba902b7"
	)
	cases := []struct {
		name string
		h    string
	}{
		{"empty", ""},
		{"too few fields", "00-" + goodTrace},
		{"uppercase trace id", "00-" + "4BF92F3577B34DA6A3CE929D0E0E4736" + "-" + goodSpan + "-01"},
		{"uppercase span id", "00-" + goodTrace + "-" + "00F067AA0BA902B7" + "-01"},
		{"short trace id", "00-" + goodTrace[:30] + "-" + goodSpan + "-01"},
		{"long trace id", "00-" + goodTrace + "ab-" + goodSpan + "-01"},
		{"short span id", "00-" + goodTrace + "-" + goodSpan[:14] + "-01"},
		{"all-zero trace id", "00-00000000000000000000000000000000-" + goodSpan + "-01"},
		{"all-zero span id", "00-" + goodTrace + "-0000000000000000-01"},
		{"version ff", "ff-" + goodTrace + "-" + goodSpan + "-01"},
		{"version not hex", "0g-" + goodTrace + "-" + goodSpan + "-01"},
		{"version wrong width", "0-" + goodTrace + "-" + goodSpan + "-01"},
		{"version 00 with extra field", "00-" + goodTrace + "-" + goodSpan + "-01-extra"},
		{"non-hex trace id", "00-" + "zzf92f3577b34da6a3ce929d0e0e4736" + "-" + goodSpan + "-01"},
		{"flags wrong width", "00-" + goodTrace + "-" + goodSpan + "-1"},
		{"flags not hex", "00-" + goodTrace + "-" + goodSpan + "-0x"},
		{"empty fields", "---"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, ok := ParseTraceparent(tc.h); ok {
				t.Fatalf("ParseTraceparent(%q) = ok, want rejection", tc.h)
			}
		})
	}
	// A future version may append fields; the four we understand still
	// parse (the spec requires forward compatibility below ff).
	if _, _, ok := ParseTraceparent("42-" + goodTrace + "-" + goodSpan + "-01-whatever"); !ok {
		t.Fatal("future-version traceparent with extra fields was rejected")
	}
}
