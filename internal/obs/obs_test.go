package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"chaos/internal/core/drive"
)

// A full ring must drop the oldest spans — never block, never grow —
// which is what lets a slow (or absent) trace consumer coexist with
// the engines' hot path.
func TestRingDropsOldestWhenFull(t *testing.T) {
	const capacity, total = 8, 30
	r := NewRing[drive.Span](capacity)
	for i := 0; i < total; i++ {
		r.Record(drive.Span{Iter: i, Phase: drive.PhaseScatter})
	}
	spans, dropped := r.Snapshot()
	if len(spans) != capacity {
		t.Fatalf("ring holds %d spans, want %d", len(spans), capacity)
	}
	if dropped != total-capacity {
		t.Fatalf("dropped = %d, want %d", dropped, total-capacity)
	}
	// Oldest-first snapshot of the newest `capacity` spans.
	for i, s := range spans {
		if want := total - capacity + i; s.Iter != want {
			t.Fatalf("spans[%d].Iter = %d, want %d (oldest must be evicted first)", i, s.Iter, want)
		}
	}
	if r.Dropped() != total-capacity {
		t.Fatalf("Dropped() = %d, want %d", r.Dropped(), total-capacity)
	}
}

// Concurrent writers — the native driver's machine goroutines — must
// never lose the ring's invariants: size stays bounded and every
// record is either retained or counted as dropped.
func TestRingConcurrentRecord(t *testing.T) {
	const capacity, writers, perWriter = 16, 8, 500
	r := NewRing[drive.Span](capacity)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(drive.Span{Machine: w, Iter: i})
			}
		}(w)
	}
	wg.Wait()
	spans, dropped := r.Snapshot()
	if len(spans) != capacity {
		t.Fatalf("ring holds %d spans, want %d", len(spans), capacity)
	}
	if got, want := uint64(len(spans))+dropped, uint64(writers*perWriter); got != want {
		t.Fatalf("retained+dropped = %d, want %d", got, want)
	}
}

func TestRingUnderCapacity(t *testing.T) {
	r := NewRing[drive.Span](8)
	r.Record(drive.Span{Iter: 3})
	r.Record(drive.Span{Iter: 4})
	spans, dropped := r.Snapshot()
	if dropped != 0 || len(spans) != 2 || spans[0].Iter != 3 || spans[1].Iter != 4 {
		t.Fatalf("snapshot = %v dropped=%d, want iters [3 4] dropped=0", spans, dropped)
	}
}

// The Chrome view must be a valid trace_event JSON object: a
// traceEvents array of complete ("X") events in microseconds plus
// per-machine thread_name metadata.
func TestWriteChromeTrace(t *testing.T) {
	spans := []drive.Span{
		{Iter: -1, Machine: 0, Part: -1, Phase: drive.PhasePreprocess, Start: 0, Dur: 2000, BytesIn: 64},
		{Iter: 0, Machine: 0, Part: 0, Phase: drive.PhaseScatter, Start: 2000, Dur: 1500, Chunks: 3, BytesIn: 96},
		{Iter: 0, Machine: 1, Part: 1, Phase: drive.PhaseGather, Start: 3500, Dur: 1000, BytesOut: 32},
		{Iter: 0, Machine: 1, Part: 0, Phase: drive.PhaseScatter, Stolen: true, Start: 4500, Dur: 500},
		{Iter: 0, Machine: 1, Part: -1, Phase: drive.PhaseSteal, Start: 5000, Dur: 100, StealsAccepted: 1, StealsRejected: 2},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	var meta, complete int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			complete++
		default:
			t.Fatalf("unexpected event phase %q", e.Ph)
		}
	}
	if meta != 2 { // machines 0 and 1
		t.Fatalf("thread_name metadata events = %d, want 2", meta)
	}
	if complete != len(spans) {
		t.Fatalf("complete events = %d, want %d", complete, len(spans))
	}
	// Spot-check microsecond conversion and tallies on the scatter span.
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Name == "scatter p0" && e.Tid == 0 {
			if e.Ts != 2.0 || e.Dur != 1.5 {
				t.Fatalf("scatter span ts/dur = %v/%v µs, want 2/1.5", e.Ts, e.Dur)
			}
			if e.Args["chunks"] != float64(3) || e.Args["bytesIn"] != float64(96) {
				t.Fatalf("scatter span args = %v", e.Args)
			}
			return
		}
	}
	t.Fatalf("no scatter p0 span on machine 0 in %s", buf.String())
}
