// Package obs is the flight-recorder collection side: a bounded,
// drop-oldest ring of drive.Span records and export views over it
// (JSON timeline, Chrome trace_event). The ring is the standard trace
// sink for both drivers — the DES driver feeds it from the simulation
// goroutine, the native driver concurrently from every machine
// goroutine — so Record is mutex-protected and never blocks beyond the
// copy of one span: when the ring is full the oldest span is dropped
// and a counter advanced, keeping a slow or absent consumer from ever
// stalling the hot path.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"chaos/internal/core/drive"
)

// Ring is a fixed-capacity buffer with drop-oldest overflow. It is
// generic over the record type: the engines' flight recorders hold
// drive.Span, the service's WAL ops timeline holds its own record.
type Ring[T any] struct {
	mu      sync.Mutex
	spans   []T    // circular storage, len == cap
	head    int    // index of the oldest span
	size    int    // live spans, ≤ len(spans)
	dropped uint64 // spans overwritten since creation
}

// NewRing returns a ring holding at most capacity spans; a
// non-positive capacity is bumped to 1 so Record always has a slot.
func NewRing[T any](capacity int) *Ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring[T]{spans: make([]T, capacity)}
}

// Record appends s, evicting the oldest span when full. Safe for
// concurrent use; the critical section is one span copy.
func (r *Ring[T]) Record(s T) {
	r.mu.Lock()
	if r.size == len(r.spans) {
		r.spans[r.head] = s
		r.head = (r.head + 1) % len(r.spans)
		r.dropped++
	} else {
		r.spans[(r.head+r.size)%len(r.spans)] = s
		r.size++
	}
	r.mu.Unlock()
}

// Snapshot returns the retained spans oldest-first plus the number
// dropped to overflow. The slice is a copy; the ring keeps recording.
func (r *Ring[T]) Snapshot() ([]T, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]T, r.size)
	for i := 0; i < r.size; i++ {
		out[i] = r.spans[(r.head+i)%len(r.spans)]
	}
	return out, r.dropped
}

// Dropped returns the overflow count alone.
func (r *Ring[T]) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// chromeEvent is one trace_event record in the Chrome/Perfetto JSON
// format (ph "X" = complete event with ts+dur, "M" = metadata). ts and
// dur are microseconds by spec.
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Cat  string  `json:"cat,omitempty"`
	// ID and BP serve flow events ("s"/"f"): ID pairs the start with its
	// finish, BP "e" binds the finish to the enclosing slice.
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace emits spans as a Chrome trace_event JSON object
// ({"traceEvents": [...]}) loadable in about:tracing or Perfetto. Each
// machine becomes a thread (tid) under pid 0, named via "M" metadata
// events; each span a complete ("X") event whose args carry the
// iteration, partition and byte/chunk/steal tallies.
func WriteChromeTrace(w io.Writer, spans []drive.Span) error {
	machines := map[int]bool{}
	for _, s := range spans {
		machines[s.Machine] = true
	}
	events := make([]chromeEvent, 0, len(spans)+len(machines))
	for m := range machines {
		events = append(events, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  0,
			Tid:  m,
			Args: map[string]any{"name": fmt.Sprintf("machine %d", m)},
		})
	}
	for _, s := range spans {
		name := s.Phase
		if s.Part >= 0 {
			name = fmt.Sprintf("%s p%d", s.Phase, s.Part)
		}
		if s.Stolen {
			name += " (stolen)"
		}
		args := map[string]any{"iter": s.Iter}
		if s.Part >= 0 {
			args["part"] = s.Part
		}
		if s.Chunks != 0 {
			args["chunks"] = s.Chunks
		}
		if s.BytesIn != 0 {
			args["bytesIn"] = s.BytesIn
		}
		if s.BytesOut != 0 {
			args["bytesOut"] = s.BytesOut
		}
		if s.Stolen {
			args["stolen"] = true
		}
		if s.Phase == drive.PhaseSteal {
			args["stealsAccepted"] = s.StealsAccepted
			args["stealsRejected"] = s.StealsRejected
		}
		events = append(events, chromeEvent{
			Name: name,
			Ph:   "X",
			Ts:   float64(s.Start) / 1e3,
			Dur:  float64(s.Dur) / 1e3,
			Pid:  0,
			Tid:  s.Machine,
			Cat:  s.Phase,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}
