// Package cli holds the front-end conventions every chaos binary
// shares: one structured (log/slog) text logger to stderr, tagged with
// the program name so interleaved output in scripts and CI stays
// attributable. Result output (reports, tables, generated data) still
// goes to stdout untouched — only diagnostics flow through the logger.
package cli

import (
	"log/slog"
	"os"
)

// NewLogger returns the standard front-end logger: text lines on
// stderr carrying the program name.
func NewLogger(program string) *slog.Logger {
	return slog.New(slog.NewTextHandler(os.Stderr, nil)).With(slog.String("program", program))
}

// Fatal logs msg with the error and exits non-zero — the slog
// counterpart of log.Fatal for the binaries' unrecoverable paths.
func Fatal(l *slog.Logger, msg string, err error) {
	l.Error(msg, slog.Any("err", err))
	os.Exit(1)
}
