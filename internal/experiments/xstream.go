package experiments

import (
	"fmt"

	"chaos"
	"chaos/internal/algorithms"
	"chaos/internal/gas"
	"chaos/internal/graph"
	"chaos/internal/xstream"
)

// xstreamRun adapts the generic single-machine engine to one call site per
// vertex-state type.
func xstreamRun[V, U, A any](cfg xstream.Config, prog gas.Program[V, U, A], edges []chaos.Edge, n uint64) (float64, error) {
	res, err := xstream.Run(cfg, prog, edges, n)
	if err != nil {
		return 0, err
	}
	return res.Runtime.Seconds(), nil
}

// xstreamByName runs the named algorithm on the X-Stream baseline with the
// same input conventions as chaos.RunByName.
func xstreamByName(cfg xstream.Config, alg string, edges []chaos.Edge, n uint64) (float64, error) {
	und := func() []chaos.Edge { return graph.Undirected(edges) }
	switch alg {
	case "BFS":
		return xstreamRun(cfg, &algorithms.BFS{}, und(), n)
	case "WCC":
		return xstreamRun(cfg, &algorithms.WCC{}, und(), n)
	case "MCST":
		return xstreamRun(cfg, &algorithms.MCST{}, und(), n)
	case "MIS":
		return xstreamRun(cfg, &algorithms.MIS{}, und(), n)
	case "SSSP":
		return xstreamRun(cfg, &algorithms.SSSP{}, und(), n)
	case "PR":
		return xstreamRun(cfg, &algorithms.PageRank{Iterations: 5}, edges, n)
	case "SCC":
		return xstreamRun(cfg, &algorithms.SCC{}, algorithms.AugmentEdges(edges), n)
	case "Cond":
		return xstreamRun(cfg, &algorithms.Conductance{}, edges, n)
	case "SpMV":
		return xstreamRun(cfg, &algorithms.SpMV{}, edges, n)
	case "BP":
		return xstreamRun(cfg, &algorithms.BP{Iterations: 5}, edges, n)
	default:
		return 0, fmt.Errorf("experiments: unknown algorithm %s", alg)
	}
}
