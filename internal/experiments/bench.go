package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"
)

// BenchArm is one measured series of a benchmark experiment: a named
// configuration swept over the machine axis, with the simulated runtime
// per point and the host wall-clock the whole sweep cost.
type BenchArm struct {
	Name             string    `json:"name"`
	Machines         []int     `json:"machines"`
	SimulatedSeconds []float64 `json:"simulated_seconds"`
	WallSeconds      float64   `json:"wall_seconds"`
	// WallSecondsPerPoint breaks WallSeconds down per machine-axis
	// point, for experiments whose arms are compared on wall-clock
	// (the native-vs-DES record). Empty for the simulated figures.
	WallSecondsPerPoint []float64 `json:"wall_seconds_per_point,omitempty"`
	// SpillBytesPerPoint records the out-of-core spill traffic per
	// point; present only on the forced-spill (oocore) arm.
	SpillBytesPerPoint []int64 `json:"spill_bytes_per_point,omitempty"`
}

// BenchRecord is the machine-readable result of one benchmark experiment,
// written as BENCH_<experiment>.json next to the human-readable output.
// Wall-clock numbers track the reproduction's own performance trajectory
// across PRs (compare wall_seconds between runs of the same scale on the
// same host); simulated numbers are the paper-facing results.
type BenchRecord struct {
	Experiment string `json:"experiment"`
	Scale      string `json:"scale"`
	// GoMaxProcs and ComputeWorkers identify the host parallelism the
	// wall-clock numbers were measured under (compute_workers 0 means
	// GOMAXPROCS; simulated numbers are identical for every value).
	GoMaxProcs     int        `json:"gomaxprocs"`
	ComputeWorkers int        `json:"compute_workers"`
	WallSeconds    float64    `json:"wall_seconds"`
	GeneratedAt    string     `json:"generated_at"`
	Arms           []BenchArm `json:"arms"`
	// NativeBeatsDES is set by the native-vs-DES experiment: true when
	// the native plane's summed wall-clock was at or under the DES
	// driver's on the same graphs (the CI bench smoke asserts it).
	// Absent from every other record; a pointer so a losing run still
	// serializes an explicit false instead of vanishing from the JSON.
	NativeBeatsDES *bool `json:"native_beats_des,omitempty"`
}

// newBenchRecord starts a record for the given experiment at this scale.
func (s Scale) newBenchRecord(experiment string) *BenchRecord {
	return &BenchRecord{
		Experiment:     experiment,
		Scale:          s.Name,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		ComputeWorkers: s.ComputeWorkers,
		GeneratedAt:    time.Now().UTC().Format(time.RFC3339),
	}
}

// emitBench writes the record to BENCH_<experiment>.json under
// Scale.BenchDir. An empty BenchDir (the Lab/Quick defaults, used by the
// test harness) disables emission.
func (s Scale) emitBench(rec *BenchRecord) error {
	if s.BenchDir == "" {
		return nil
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(s.BenchDir, "BENCH_"+rec.Experiment+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("experiments: writing %s: %w", path, err)
	}
	return nil
}
