package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestNativeVsDESEmitsRecord runs the native-vs-DES comparison at quick
// scale and validates the emitted BENCH_native.json: two arms over the
// same machine axis, per-point wall-clock populated, and the native
// plane at or under the DES driver's wall-clock (the margin is
// structural — the DES serializes every event through one scheduler —
// so this holds on any host).
func TestNativeVsDESEmitsRecord(t *testing.T) {
	s := Quick
	s.BenchDir = t.TempDir()
	var buf bytes.Buffer
	if err := NativeVsDES(&buf, s); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(s.BenchDir, "BENCH_native.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rec BenchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Experiment != "native" || len(rec.Arms) != 2 {
		t.Fatalf("record shape wrong: %+v", rec)
	}
	des, nat := rec.Arms[0], rec.Arms[1]
	if des.Name != "des" || nat.Name != "native" {
		t.Fatalf("arm names %q, %q", des.Name, nat.Name)
	}
	if len(des.Machines) != len(s.Machines) || len(nat.Machines) != len(s.Machines) {
		t.Fatalf("machine axes truncated: %v %v", des.Machines, nat.Machines)
	}
	if len(des.WallSecondsPerPoint) != len(s.Machines) || len(nat.WallSecondsPerPoint) != len(s.Machines) {
		t.Fatal("per-point wall-clock missing")
	}
	if nat.WallSeconds <= 0 || des.WallSeconds <= 0 {
		t.Fatalf("wall totals not measured: des %g native %g", des.WallSeconds, nat.WallSeconds)
	}
	for i, ss := range nat.SimulatedSeconds {
		if ss != 0 {
			t.Errorf("native arm point %d claims simulated seconds %g", i, ss)
		}
	}
	if rec.NativeBeatsDES == nil {
		t.Fatal("record carries no native-vs-DES verdict")
	}
	if !*rec.NativeBeatsDES {
		t.Errorf("native wall %gs did not beat DES wall %gs", nat.WallSeconds, des.WallSeconds)
	}
}
