package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestNativeVsDESEmitsRecord runs the native-vs-DES comparison at quick
// scale and validates the emitted BENCH_native.json: five arms over the
// same machine axis (des/native/native-barrier on the strong-scale
// graph, the zero-copy/oocore transport pair on the larger out-of-core
// graph), per-point wall-clock populated, spill traffic recorded only
// on the budgeted arm, and the native plane at or under the DES
// driver's wall-clock (the margin is structural — the DES serializes
// every event through one scheduler — so this holds on any host).
func TestNativeVsDESEmitsRecord(t *testing.T) {
	s := Quick
	s.BenchDir = t.TempDir()
	var buf bytes.Buffer
	if err := NativeVsDES(&buf, s); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(s.BenchDir, "BENCH_native.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rec BenchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Experiment != "native" || len(rec.Arms) != 5 {
		t.Fatalf("record shape wrong: %+v", rec)
	}
	des, nat, bar, fast, ooc := rec.Arms[0], rec.Arms[1], rec.Arms[2], rec.Arms[3], rec.Arms[4]
	if des.Name != "des" || nat.Name != "native" || bar.Name != "native-barrier" ||
		fast.Name != "native-zerocopy" || ooc.Name != "oocore" {
		t.Fatalf("arm names %q, %q, %q, %q, %q", des.Name, nat.Name, bar.Name, fast.Name, ooc.Name)
	}
	for _, a := range rec.Arms {
		if len(a.Machines) != len(s.Machines) {
			t.Fatalf("arm %s machine axis truncated: %v", a.Name, a.Machines)
		}
		if len(a.WallSecondsPerPoint) != len(s.Machines) {
			t.Fatalf("arm %s per-point wall-clock missing", a.Name)
		}
		if a.WallSeconds <= 0 {
			t.Fatalf("arm %s wall total not measured: %g", a.Name, a.WallSeconds)
		}
	}
	for _, a := range []BenchArm{nat, bar, fast, ooc} {
		for i, ss := range a.SimulatedSeconds {
			if ss != 0 {
				t.Errorf("%s arm point %d claims simulated seconds %g", a.Name, i, ss)
			}
		}
	}
	// Spill traffic belongs to the budgeted arm and only to it.
	if len(ooc.SpillBytesPerPoint) != len(s.Machines) {
		t.Fatalf("oocore arm spill bytes missing: %v", ooc.SpillBytesPerPoint)
	}
	for i, b := range ooc.SpillBytesPerPoint {
		if b <= 0 {
			t.Errorf("oocore arm point %d did not spill", i)
		}
	}
	for _, a := range []BenchArm{des, nat, bar, fast} {
		if len(a.SpillBytesPerPoint) != 0 {
			t.Errorf("arm %s carries spill bytes: %v", a.Name, a.SpillBytesPerPoint)
		}
	}
	if rec.NativeBeatsDES == nil {
		t.Fatal("record carries no native-vs-DES verdict")
	}
	if !*rec.NativeBeatsDES {
		t.Errorf("native wall %gs did not beat DES wall %gs", nat.WallSeconds, des.WallSeconds)
	}
}
