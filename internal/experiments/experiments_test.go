package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestEveryExperimentRunsAtQuickScale executes each experiment end to end
// at the smoke scale and checks it emits its banner and at least one data
// row. Full-scale outputs are exercised by the benchmarks.
func TestEveryExperimentRunsAtQuickScale(t *testing.T) {
	cases := map[string]func(*bytes.Buffer) error{
		"Table 1":   func(b *bytes.Buffer) error { return Table1(b, Quick) },
		"Figure 5":  func(b *bytes.Buffer) error { return Figure5(b, Quick) },
		"Figure 7":  func(b *bytes.Buffer) error { return Figure7(b, Quick) },
		"Figure 8":  func(b *bytes.Buffer) error { return Figure8(b, Quick) },
		"Figure 9":  func(b *bytes.Buffer) error { return Figure9(b, Quick) },
		"Capacity":  func(b *bytes.Buffer) error { return Capacity(b, Quick) },
		"Figure 10": func(b *bytes.Buffer) error { return Figure10(b, Quick) },
		"Figure 11": func(b *bytes.Buffer) error { return Figure11(b, Quick) },
		"Figure 12": func(b *bytes.Buffer) error { return Figure12(b, Quick) },
		"Figure 13": func(b *bytes.Buffer) error { return Figure13(b, Quick) },
		"Figure 14": func(b *bytes.Buffer) error { return Figure14(b, Quick) },
		"Figure 15": func(b *bytes.Buffer) error { return Figure15(b, Quick) },
		"Figure 16": func(b *bytes.Buffer) error { return Figure16(b, Quick) },
		"Figure 17": func(b *bytes.Buffer) error { return Figure17(b, Quick) },
		"Figure 18": func(b *bytes.Buffer) error { return Figure18(b, Quick) },
		"Figure 19": func(b *bytes.Buffer) error { return Figure19(b, Quick) },
		"Figure 20": func(b *bytes.Buffer) error { return Figure20(b, Quick) },
	}
	for name, run := range cases {
		name, run := name, run
		t.Run(strings.ReplaceAll(name, " ", ""), func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(&buf); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if !strings.Contains(out, name) {
				t.Errorf("output missing banner %q:\n%s", name, out)
			}
			if strings.Count(out, "\n") < 4 {
				t.Errorf("output suspiciously short:\n%s", out)
			}
		})
	}
}

func TestWeakScalingCacheHits(t *testing.T) {
	a, err := RunWeakScaling(Quick, []string{"Cond"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWeakScaling(Quick, []string{"Cond"})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second identical sweep should hit the cache")
	}
}

func TestLog2(t *testing.T) {
	for _, tc := range []struct{ m, want int }{{1, 0}, {2, 1}, {4, 2}, {32, 5}} {
		if got := log2(tc.m); got != tc.want {
			t.Errorf("log2(%d) = %d, want %d", tc.m, got, tc.want)
		}
	}
}

func TestLabScaleSanity(t *testing.T) {
	if Lab.WeakBase <= 0 || Lab.ChunkBytes <= 0 || len(Lab.Machines) == 0 {
		t.Errorf("lab scale malformed: %+v", Lab)
	}
	if Lab.Machines[len(Lab.Machines)-1] != 32 {
		t.Error("lab scale should sweep to 32 machines like the paper")
	}
	opt := Lab.options(4, 1<<12)
	if opt.LatencyScale <= 0 || opt.LatencyScale > 1 {
		t.Errorf("latency scale %f out of range", opt.LatencyScale)
	}
}
