// Emission/listing order in this file must be byte-stable across runs:
// chaos-vet's detrange analyzer checks every map iteration below.
//
//chaos:sorted-maps
package experiments

import (
	"fmt"
	"io"

	"chaos"
)

// AblationCombiner measures the Pregel-style update-aggregation trade-off
// the paper discusses in §11.1: "While this optimization is also possible
// in Chaos, we find that the cost of merging the updates to the same
// vertex outweighs the benefits from reduced network traffic."
func AblationCombiner(w io.Writer, s Scale) error {
	header(w, "Ablation: combiners", "Pregel-style update aggregation (§11.1)",
		"merging cost outweighs the traffic reduction; Chaos ships raw updates")
	m := s.Machines[len(s.Machines)-1]
	fmt.Fprintf(w, "  %-6s %12s %12s %12s %12s %10s\n",
		"alg", "plain(s)", "combined(s)", "plainMB", "combinedMB", "slowdown")
	for _, alg := range []string{"BFS", "WCC", "SSSP", "PR"} {
		edges, n := graphFor(alg, s.StrongScale)
		opt := s.options(m, n)
		plain, err := chaos.RunByName(alg, edges, n, opt)
		if err != nil {
			return fmt.Errorf("%s plain: %w", alg, err)
		}
		opt.CombineUpdates = true
		comb, err := chaos.RunByName(alg, edges, n, opt)
		if err != nil {
			return fmt.Errorf("%s combined: %w", alg, err)
		}
		fmt.Fprintf(w, "  %-6s %12.4f %12.4f %12.1f %12.1f %9.2fx\n",
			alg, plain.SimulatedSeconds, comb.SimulatedSeconds,
			float64(plain.BytesWritten)/1e6, float64(comb.BytesWritten)/1e6,
			comb.SimulatedSeconds/plain.SimulatedSeconds)
	}
	return nil
}

// AblationCompaction measures the §6.1 extended model on MCST: dropping
// intra-component edges shrinks each Borůvka round's stream.
func AblationCompaction(w io.Writer, s Scale) error {
	header(w, "Ablation: edge rewriting", "MCST with Borůvka edge compaction (§6.1 extended model)",
		"the footnoted extension: rewritten edge sets shrink later iterations' I/O")
	fmt.Fprintf(w, "  %-9s %12s %12s %12s %12s %10s\n",
		"machines", "plain(s)", "compact(s)", "plainMB", "compactMB", "speedup")
	for _, m := range s.Machines {
		edges, n := graphFor("MCST", s.StrongScale)
		opt := s.options(m, n)
		plain, err := chaos.RunByName("MCST", edges, n, opt)
		if err != nil {
			return fmt.Errorf("m=%d plain: %w", m, err)
		}
		opt.RewriteEdges = true
		compact, err := chaos.RunByName("MCST", edges, n, opt)
		if err != nil {
			return fmt.Errorf("m=%d compact: %w", m, err)
		}
		fmt.Fprintf(w, "  %-9d %12.4f %12.4f %12.1f %12.1f %9.2fx\n",
			m, plain.SimulatedSeconds, compact.SimulatedSeconds,
			float64(plain.BytesRead)/1e6, float64(compact.BytesRead)/1e6,
			plain.SimulatedSeconds/compact.SimulatedSeconds)
	}
	return nil
}

// AblationReplication measures the §6.6 storage-fault-tolerance sketch:
// vertex sets mirrored on a second storage engine.
func AblationReplication(w io.Writer, s Scale) error {
	header(w, "Ablation: vertex replication", "vertex-set mirroring (§6.6)",
		"\"support could easily be added by replicating the vertex sets\": the overhead of doing so")
	m := s.Machines[len(s.Machines)-1]
	fmt.Fprintf(w, "  %-6s %12s %12s %12s %12s %10s\n",
		"alg", "plain(s)", "mirrored(s)", "plainMB-W", "mirrorMB-W", "overhead")
	for _, alg := range []string{"BFS", "PR"} {
		edges, n := graphFor(alg, s.StrongScale)
		opt := s.options(m, n)
		plain, err := chaos.RunByName(alg, edges, n, opt)
		if err != nil {
			return fmt.Errorf("%s plain: %w", alg, err)
		}
		opt.ReplicateVertices = true
		mirr, err := chaos.RunByName(alg, edges, n, opt)
		if err != nil {
			return fmt.Errorf("%s mirrored: %w", alg, err)
		}
		fmt.Fprintf(w, "  %-6s %12.4f %12.4f %12.1f %12.1f %9.1f%%\n",
			alg, plain.SimulatedSeconds, mirr.SimulatedSeconds,
			float64(plain.BytesWritten)/1e6, float64(mirr.BytesWritten)/1e6,
			100*(mirr.SimulatedSeconds/plain.SimulatedSeconds-1))
	}
	return nil
}

// AblationPartitionCount explores the §3 trade-off directly: "large sizes
// facilitate sequential access to edges and updates, but smaller sizes are
// desirable, as they lead to easier load balancing." The sweep varies the
// partition multiple k (partitions per machine) at the largest cluster.
func AblationPartitionCount(w io.Writer, s Scale) error {
	header(w, "Ablation: partition count", "streaming-partition multiple k (§3 trade-off)",
		"few large partitions stream best but balance worst; many small partitions invert the trade")
	m := s.Machines[len(s.Machines)-1]
	fmt.Fprintf(w, "  %-10s %12s %12s %14s %10s\n", "k", "BFS(s)", "PR(s)", "steals(BFS)", "barrier%")
	for _, k := range []int{1, 2, 4, 8} {
		sk := s
		sk.PartitionsPerMachine = k
		var bfsSecs, prSecs float64
		var steals int
		var barrier float64
		for _, alg := range []string{"BFS", "PR"} {
			edges, n := graphFor(alg, s.StrongScale)
			rep, err := chaos.RunByName(alg, edges, n, sk.options(m, n))
			if err != nil {
				return fmt.Errorf("k=%d %s: %w", k, alg, err)
			}
			if alg == "BFS" {
				bfsSecs = rep.SimulatedSeconds
				steals = rep.StealsAccepted
				barrier = rep.Breakdown["barrier"]
			} else {
				prSecs = rep.SimulatedSeconds
			}
		}
		fmt.Fprintf(w, "  %-10d %12.4f %12.4f %14d %9.1f%%\n", k, bfsSecs, prSecs, steals, 100*barrier)
	}
	return nil
}
