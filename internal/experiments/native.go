// Emission/listing order in this file must be byte-stable across runs:
// chaos-vet's detrange analyzer checks every map iteration below.
//
//chaos:sorted-maps
package experiments

import (
	"fmt"
	"io"
	"time"

	"chaos"
)

// NativeVsDES compares the native execution plane against the DES driver
// on the same graphs: identical algorithm, partitioning and seed, the
// two drivers' host wall-clock side by side, plus the DES arm's
// simulated seconds for reference. This experiment has no paper
// counterpart — it tracks the reproduction's own performance trajectory
// (ROADMAP: "as fast as the hardware allows") and backs the CI assertion
// that running the protocol without the simulator is never slower than
// running it under the simulator. Emits BENCH_native.json.
func NativeVsDES(w io.Writer, s Scale) error {
	header(w, "native", "native execution plane vs DES driver (host wall-clock)",
		"no figure; reproduction performance record (DESIGN.md, Two planes one protocol)")
	const alg = "PR"
	edges, n := graphFor(alg, s.StrongScale)
	rec := s.newBenchRecord("native")

	des := BenchArm{Name: "des"}
	nat := BenchArm{Name: "native"}
	var desWall, natWall float64
	for _, m := range s.Machines {
		opt := s.options(m, n)

		t0 := time.Now()
		rep, err := chaos.RunByName(alg, edges, n, opt)
		if err != nil {
			return err
		}
		wall := time.Since(t0).Seconds()
		des.Machines = append(des.Machines, m)
		des.SimulatedSeconds = append(des.SimulatedSeconds, rep.SimulatedSeconds)
		des.WallSecondsPerPoint = append(des.WallSecondsPerPoint, wall)
		desWall += wall

		// Same external clock as the DES arm (around the whole call,
		// setup and value collection included) so the CI-asserted
		// verdict compares identical measurement scopes —
		// Report.WallSeconds covers only the driver's execute loop.
		opt.Engine = chaos.EngineNative
		t0 = time.Now()
		if _, err := chaos.RunByName(alg, edges, n, opt); err != nil {
			return err
		}
		wall = time.Since(t0).Seconds()
		nat.Machines = append(nat.Machines, m)
		nat.SimulatedSeconds = append(nat.SimulatedSeconds, 0) // no virtual clock
		nat.WallSecondsPerPoint = append(nat.WallSecondsPerPoint, wall)
		natWall += wall
	}
	des.WallSeconds, nat.WallSeconds = desWall, natWall

	xAxis(w, "machines", des.Machines)
	series(w, "des wall s", des.Machines, des.WallSecondsPerPoint, "%8.3f")
	series(w, "native wall s", nat.Machines, nat.WallSecondsPerPoint, "%8.3f")
	series(w, "des simulated s", des.Machines, des.SimulatedSeconds, "%8.3f")
	if natWall > 0 {
		fmt.Fprintf(w, "  native speedup  %.1fx on host wall-clock (%.3fs vs %.3fs)\n",
			desWall/natWall, natWall, desWall)
	}
	fmt.Fprintf(w, "  results identical up to float fold order; simulated figures remain DES-only\n")

	rec.Arms = []BenchArm{des, nat}
	rec.WallSeconds = desWall + natWall
	verdict := natWall <= desWall
	rec.NativeBeatsDES = &verdict
	return s.emitBench(rec)
}
