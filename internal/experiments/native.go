// Emission/listing order in this file must be byte-stable across runs:
// chaos-vet's detrange analyzer checks every map iteration below.
//
//chaos:sorted-maps
package experiments

import (
	"fmt"
	"io"
	"time"

	"chaos"
)

// NativeVsDES compares the native execution plane against the DES driver
// on the same graphs: identical algorithm, partitioning and seed, the
// two drivers' host wall-clock side by side, plus the DES arm's
// simulated seconds for reference. This experiment has no paper
// counterpart — it tracks the reproduction's own performance trajectory
// (ROADMAP: "as fast as the hardware allows") and backs the CI assertion
// that running the protocol without the simulator is never slower than
// running it under the simulator. Emits BENCH_native.json.
func NativeVsDES(w io.Writer, s Scale) error {
	header(w, "native", "native execution plane vs DES driver (host wall-clock)",
		"no figure; reproduction performance record (DESIGN.md, Two planes one protocol)")
	const alg = "PR"
	edges, n := graphFor(alg, s.StrongScale)
	rec := s.newBenchRecord("native")

	des := BenchArm{Name: "des"}
	nat := BenchArm{Name: "native"}
	bar := BenchArm{Name: "native-barrier"}
	var desWall, natWall, barWall float64
	for _, m := range s.Machines {
		opt := s.options(m, n)

		t0 := time.Now()
		rep, err := chaos.RunByName(alg, edges, n, opt)
		if err != nil {
			return err
		}
		wall := time.Since(t0).Seconds()
		des.Machines = append(des.Machines, m)
		des.SimulatedSeconds = append(des.SimulatedSeconds, rep.SimulatedSeconds)
		des.WallSecondsPerPoint = append(des.WallSecondsPerPoint, wall)
		desWall += wall

		// Same external clock as the DES arm (around the whole call,
		// setup and value collection included) so the CI-asserted
		// verdict compares identical measurement scopes —
		// Report.WallSeconds covers only the driver's execute loop.
		opt.Engine = chaos.EngineNative
		t0 = time.Now()
		if _, err := chaos.RunByName(alg, edges, n, opt); err != nil {
			return err
		}
		wall = time.Since(t0).Seconds()
		nat.Machines = append(nat.Machines, m)
		nat.SimulatedSeconds = append(nat.SimulatedSeconds, 0) // no virtual clock
		nat.WallSecondsPerPoint = append(nat.WallSecondsPerPoint, wall)
		natWall += wall

		// The same native run under the barrier-per-phase layout: the
		// A/B pair that prices the streamed scatter→gather boundary.
		// Values are bit-identical; only the phase schedule differs.
		opt.NativeBarrier = true
		t0 = time.Now()
		if _, err := chaos.RunByName(alg, edges, n, opt); err != nil {
			return err
		}
		wall = time.Since(t0).Seconds()
		bar.Machines = append(bar.Machines, m)
		bar.SimulatedSeconds = append(bar.SimulatedSeconds, 0)
		bar.WallSecondsPerPoint = append(bar.WallSecondsPerPoint, wall)
		barWall += wall
	}
	des.WallSeconds, nat.WallSeconds, bar.WallSeconds = desWall, natWall, barWall
	// The pipelined layout is the default because it wins (or at worst
	// ties) the barrier layout: fail loudly if it loses past a noise
	// envelope, so a regression that makes streaming a pessimization
	// cannot hide inside a green record. The envelope is generous —
	// single-core quick runs measure scheduler noise, and the pipeline's
	// overlap only pays off with real parallelism — but an inversion
	// past 25%+0.5s is structural, not noise.
	if natWall > barWall*1.25+0.5 {
		return fmt.Errorf("experiments: pipelined native plane lost to the barrier layout (%.3fs vs %.3fs)", natWall, barWall)
	}

	// Out-of-core arms: the native plane once more over a graph big
	// enough that a 1 MiB update budget forces real spill-file traffic,
	// beside an unlimited (zero-copy, all in memory) run of the same
	// graph. The pair prices the spill round-trip — encode, write, read
	// back, decode — against the typed fast path; results are identical
	// either way, so only wall-clock separates the arms.
	oocScale := s.StrongScale
	if oocScale < 14 {
		oocScale = 14
	}
	oocEdges, oocN := graphFor(alg, oocScale)
	fast := BenchArm{Name: "native-zerocopy"}
	ooc := BenchArm{Name: "oocore"}
	var fastWall, oocWall float64
	for _, m := range s.Machines {
		opt := s.options(m, oocN)
		opt.Engine = chaos.EngineNative

		t0 := time.Now()
		if _, err := chaos.RunByName(alg, oocEdges, oocN, opt); err != nil {
			return err
		}
		wall := time.Since(t0).Seconds()
		fast.Machines = append(fast.Machines, m)
		fast.SimulatedSeconds = append(fast.SimulatedSeconds, 0)
		fast.WallSecondsPerPoint = append(fast.WallSecondsPerPoint, wall)
		fastWall += wall

		opt.MemoryBudgetMB = 1
		t0 = time.Now()
		rep, err := chaos.RunByName(alg, oocEdges, oocN, opt)
		if err != nil {
			return err
		}
		wall = time.Since(t0).Seconds()
		if rep.SpillBytes == 0 {
			return fmt.Errorf("experiments: oocore arm at m=%d did not spill (budget no longer binding at scale %d)", m, oocScale)
		}
		ooc.Machines = append(ooc.Machines, m)
		ooc.SimulatedSeconds = append(ooc.SimulatedSeconds, 0)
		ooc.WallSecondsPerPoint = append(ooc.WallSecondsPerPoint, wall)
		ooc.SpillBytesPerPoint = append(ooc.SpillBytesPerPoint, rep.SpillBytes)
		oocWall += wall
	}
	fast.WallSeconds, ooc.WallSeconds = fastWall, oocWall

	xAxis(w, "machines", des.Machines)
	series(w, "des wall s", des.Machines, des.WallSecondsPerPoint, "%8.3f")
	series(w, "native wall s", nat.Machines, nat.WallSecondsPerPoint, "%8.3f")
	series(w, "barrier wall s", bar.Machines, bar.WallSecondsPerPoint, "%8.3f")
	series(w, "des simulated s", des.Machines, des.SimulatedSeconds, "%8.3f")
	if natWall > 0 {
		fmt.Fprintf(w, "  native speedup  %.1fx on host wall-clock (%.3fs vs %.3fs)\n",
			desWall/natWall, natWall, desWall)
		fmt.Fprintf(w, "  pipeline vs barrier  %.2fx (%.3fs pipelined vs %.3fs barrier)\n",
			barWall/natWall, natWall, barWall)
	}
	fmt.Fprintf(w, "  results identical up to float fold order; simulated figures remain DES-only\n")
	fmt.Fprintf(w, "  out-of-core (RMAT-%d, 1 MiB update budget):\n", oocScale)
	series(w, "zero-copy wall s", fast.Machines, fast.WallSecondsPerPoint, "%8.3f")
	series(w, "oocore wall s", ooc.Machines, ooc.WallSecondsPerPoint, "%8.3f")
	if oocWall > 0 {
		fmt.Fprintf(w, "  spill overhead  %.1fx wall-clock vs zero-copy (%.3fs vs %.3fs)\n",
			oocWall/fastWall, oocWall, fastWall)
	}

	rec.Arms = []BenchArm{des, nat, bar, fast, ooc}
	rec.WallSeconds = desWall + natWall + barWall + fastWall + oocWall
	verdict := natWall <= desWall
	rec.NativeBeatsDES = &verdict
	return s.emitBench(rec)
}
