// Emission/listing order in this file must be byte-stable across runs:
// chaos-vet's detrange analyzer checks every map iteration below.
//
//chaos:sorted-maps
package experiments

import (
	"fmt"
	"io"
	"time"

	"chaos"
)

// bfsAndPR runs the two representative algorithms of §9.4 for a machine
// sweep under an option transform, returning normalized runtimes against
// the baseline series.
func bfsAndPR(s Scale, mutate func(*chaos.Options)) (map[string][]float64, error) {
	out, _, err := bfsAndPRTimed(s, mutate)
	return out, err
}

// bfsAndPRTimed is bfsAndPR plus the host wall-clock each algorithm's
// sweep cost, for the machine-readable benchmark records.
func bfsAndPRTimed(s Scale, mutate func(*chaos.Options)) (map[string][]float64, map[string]float64, error) {
	out := make(map[string][]float64)
	wall := make(map[string]float64)
	for _, alg := range []string{"BFS", "PR"} {
		edges, n := graphFor(alg, s.StrongScale)
		start := time.Now()
		for _, m := range s.Machines {
			opt := s.options(m, n)
			if mutate != nil {
				mutate(&opt)
			}
			rep, err := chaos.RunByName(alg, edges, n, opt)
			if err != nil {
				return nil, nil, fmt.Errorf("%s m=%d: %w", alg, m, err)
			}
			out[alg] = append(out[alg], rep.SimulatedSeconds)
		}
		wall[alg] = time.Since(start).Seconds()
	}
	return out, wall, nil
}

// Figure10 reproduces Figure 10: sensitivity to the number of CPU cores.
func Figure10(w io.Writer, s Scale) error {
	header(w, "Figure 10", "runtime vs machines for p in {8,12,16} cores",
		"adequate performance with half the cores; minimum cores needed to sustain network throughput")
	base, err := bfsAndPR(s, nil) // 16 cores
	if err != nil {
		return err
	}
	xAxis(w, "machines", s.Machines)
	for _, p := range []int{16, 12, 8} {
		p := p
		runs, err := bfsAndPR(s, func(o *chaos.Options) { o.Cores = p })
		if err != nil {
			return err
		}
		for _, alg := range []string{"BFS", "PR"} {
			vals := make([]float64, len(s.Machines))
			for i := range vals {
				vals[i] = runs[alg][i] / base[alg][0]
			}
			series(w, fmt.Sprintf("%s p=%d", alg, p), s.Machines, vals, "%8.3f")
		}
	}
	return nil
}

// Figure11 reproduces Figure 11: SSD vs HDD. It also writes
// BENCH_fig11.json (wall-clock and simulated seconds per arm) when the
// scale carries a benchmark directory, so the reproduction's own
// performance trajectory is tracked run over run.
func Figure11(w io.Writer, s Scale) error {
	header(w, "Figure 11", "runtime with SSD vs HDD, normalized to 1-machine SSD",
		"identical scaling; runtime inversely proportional to storage bandwidth (HDD ~2x slower)")
	rec := s.newBenchRecord("fig11")
	start := time.Now()
	// Both arms are pinned so a chaos-bench -storage override cannot turn
	// the labeled SSD baseline into a second HDD run.
	ssd, ssdWall, err := bfsAndPRTimed(s, func(o *chaos.Options) { o.Storage = chaos.SSD })
	if err != nil {
		return err
	}
	hdd, hddWall, err := bfsAndPRTimed(s, func(o *chaos.Options) { o.Storage = chaos.HDD })
	if err != nil {
		return err
	}
	xAxis(w, "machines", s.Machines)
	for _, alg := range []string{"BFS", "PR"} {
		vals := make([]float64, len(s.Machines))
		for i := range vals {
			vals[i] = ssd[alg][i] / ssd[alg][0]
		}
		series(w, alg+" SSD", s.Machines, vals, "%8.3f")
		for i := range vals {
			vals[i] = hdd[alg][i] / ssd[alg][0]
		}
		series(w, alg+" HDD", s.Machines, vals, "%8.3f")
		fmt.Fprintf(w, "  %s HDD/SSD single-machine ratio: %.2fx\n", alg, hdd[alg][0]/ssd[alg][0])
		rec.Arms = append(rec.Arms,
			BenchArm{Name: alg + " SSD", Machines: s.Machines, SimulatedSeconds: ssd[alg], WallSeconds: ssdWall[alg]},
			BenchArm{Name: alg + " HDD", Machines: s.Machines, SimulatedSeconds: hdd[alg], WallSeconds: hddWall[alg]})
	}
	rec.WallSeconds = time.Since(start).Seconds()
	return s.emitBench(rec)
}

// Figure12 reproduces Figure 12: 40 GigE vs 1 GigE, emitting
// BENCH_fig12.json alongside (see Figure11).
func Figure12(w io.Writer, s Scale) error {
	header(w, "Figure 12", "runtime with 40GigE vs 1GigE, normalized to 1-machine",
		"1GigE (slower than storage) breaks scaling: runtime grows with machines instead of holding flat")
	rec := s.newBenchRecord("fig12")
	start := time.Now()
	// Both arms are pinned so a chaos-bench -network override cannot turn
	// the labeled 40G baseline into a second 1G run.
	fast, fastWall, err := bfsAndPRTimed(s, func(o *chaos.Options) { o.Network = chaos.Net40GigE })
	if err != nil {
		return err
	}
	slow, slowWall, err := bfsAndPRTimed(s, func(o *chaos.Options) { o.Network = chaos.Net1GigE })
	if err != nil {
		return err
	}
	xAxis(w, "machines", s.Machines)
	for _, alg := range []string{"BFS", "PR"} {
		vals := make([]float64, len(s.Machines))
		for i := range vals {
			vals[i] = fast[alg][i] / fast[alg][0]
		}
		series(w, alg+" 40G", s.Machines, vals, "%8.3f")
		for i := range vals {
			vals[i] = slow[alg][i] / slow[alg][0]
		}
		series(w, alg+" 1G", s.Machines, vals, "%8.3f")
		rec.Arms = append(rec.Arms,
			BenchArm{Name: alg + " 40G", Machines: s.Machines, SimulatedSeconds: fast[alg], WallSeconds: fastWall[alg]},
			BenchArm{Name: alg + " 1G", Machines: s.Machines, SimulatedSeconds: slow[alg], WallSeconds: slowWall[alg]})
	}
	rec.WallSeconds = time.Since(start).Seconds()
	return s.emitBench(rec)
}

// Figure13 reproduces Figure 13: checkpointing overhead.
func Figure13(w io.Writer, s Scale) error {
	header(w, "Figure 13", "checkpointing overhead (BFS, PR)",
		"under 6% despite writing the full vertex state at every barrier")
	m := s.Machines[len(s.Machines)-1]
	fmt.Fprintf(w, "  %-6s %14s %14s %10s\n", "alg", "no-ckpt(s)", "ckpt(s)", "overhead")
	// Placement randomness perturbs individual runs by a few percent at
	// laboratory scale, so average both configurations over seeds.
	seeds := []int64{1, 2, 3, 4, 5}
	for _, alg := range []string{"PR", "BFS"} {
		edges, n := graphFor(alg, s.StrongScale)
		var plain, ckpt float64
		for _, seed := range seeds {
			opt := s.options(m, n)
			opt.Seed = seed
			rep, err := chaos.RunByName(alg, edges, n, opt)
			if err != nil {
				return err
			}
			plain += rep.SimulatedSeconds
			opt.CheckpointEvery = 1
			repCk, err := chaos.RunByName(alg, edges, n, opt)
			if err != nil {
				return err
			}
			ckpt += repCk.SimulatedSeconds
		}
		plain /= float64(len(seeds))
		ckpt /= float64(len(seeds))
		fmt.Fprintf(w, "  %-6s %14.4f %14.4f %9.1f%%\n", alg, plain, ckpt, 100*(ckpt/plain-1))
	}
	return nil
}

// Capacity reproduces the §9.3 capacity-scaling experiment by accounting:
// the trillion-edge graph cannot be materialized here, so per-edge,
// per-iteration I/O is measured at laboratory scale and extrapolated to
// RMAT-36 (16 TB input) over the aggregate HDD bandwidth of 32 machines,
// exactly the arithmetic that governs the paper's 9-hour BFS and 19-hour
// PageRank runs (214 TB and 395 TB of I/O at ~7 GB/s).
func Capacity(w io.Writer, s Scale) error {
	header(w, "Capacity (§9.3)", "trillion-edge projection from measured I/O ratios",
		"BFS a little over 9h (214 TB I/O), 5-iteration PR 19h (395 TB I/O) at ~7 GB/s aggregate")
	const (
		trillionEdges = 1e12
		inputBytes    = 16e12 // 16 TB input, non-compact weighted records
		aggBW         = 7e9   // paper-measured aggregate from 64 HDDs
	)
	for _, alg := range []string{"BFS", "PR"} {
		edges, n := graphFor(alg, s.StrongScale)
		opt := s.options(8, n)
		opt.Storage = chaos.HDD
		rep, err := chaos.RunByName(alg, edges, n, opt)
		if err != nil {
			return err
		}
		// The lab graph uses compact 4-byte IDs; RMAT-36 exceeds 2^32
		// vertices, doubling every ID field on disk (§8).
		const formatCorrection = 2.0
		bytesPerEdge := formatCorrection * float64(rep.BytesRead+rep.BytesWritten) / float64(len(edges))
		projectedIO := bytesPerEdge * trillionEdges
		hours := projectedIO / aggBW / 3600
		fmt.Fprintf(w, "  %-4s measured %6.1f B/edge total I/O (non-compact) -> projected %7.0f TB, %6.1f h at %.0f GB/s\n",
			alg, bytesPerEdge, projectedIO/1e12, hours, aggBW/1e9)
	}
	fmt.Fprintf(w, "  input: %.0f TB for %.0g edges (non-compact weighted records)\n", inputBytes/1e12, trillionEdges)
	return nil
}
