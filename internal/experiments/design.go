// Emission/listing order in this file must be byte-stable across runs:
// chaos-vet's detrange analyzer checks every map iteration below.
//
//chaos:sorted-maps
package experiments

import (
	"fmt"
	"io"
	"math"

	"chaos"
	"chaos/internal/cluster"
	"chaos/internal/giraph"
	"chaos/internal/gridpart"
	"chaos/internal/metrics"
)

// Figure14 reproduces Figure 14: aggregate storage bandwidth achieved
// during the weak-scaling experiment, against the devices' theoretical
// maximum.
func Figure14(w io.Writer, s Scale) error {
	header(w, "Figure 14", "aggregate bandwidth, normalized to 1 machine, vs theoretical max",
		"bandwidth scales linearly with machines, within 3% of device maximum")
	res, err := RunWeakScaling(s, chaos.Algorithms())
	if err != nil {
		return err
	}
	xAxis(w, "machines", res.Machines)
	for _, alg := range chaos.Algorithms() {
		bw := res.Bandwidth[alg]
		vals := make([]float64, len(bw))
		for i := range bw {
			vals[i] = bw[i] / bw[0]
		}
		series(w, alg, res.Machines, vals, "%8.2f")
	}
	maxNorm := make([]float64, len(res.Machines))
	for i := range maxNorm {
		maxNorm[i] = res.MaxBandwidth[i] / res.MaxBandwidth[0]
	}
	series(w, "max", res.Machines, maxNorm, "%8.2f")
	return nil
}

// Figure15 reproduces Figure 15: randomized placement vs a centralized
// chunk directory.
func Figure15(w io.Writer, s Scale) error {
	header(w, "Figure 15", "Chaos vs centralized chunk directory (weak scaling)",
		"the centralized entity becomes a bottleneck: its runtime grows faster with machines")
	xAxis(w, "machines", s.Machines)
	for _, alg := range []string{"BFS", "PR"} {
		for _, central := range []bool{false, true} {
			var base float64
			var vals []float64
			for i, m := range s.Machines {
				scale := s.WeakBase + log2(m)
				edges, n := graphFor(alg, scale)
				opt := s.options(m, n)
				opt.CentralDirectory = central
				rep, err := chaos.RunByName(alg, edges, n, opt)
				if err != nil {
					return fmt.Errorf("%s central=%v m=%d: %w", alg, central, m, err)
				}
				if i == 0 {
					base = rep.SimulatedSeconds
				}
				vals = append(vals, rep.SimulatedSeconds/base)
			}
			name := alg
			if central {
				name += " central"
			}
			series(w, name, s.Machines, vals, "%8.2f")
		}
	}
	return nil
}

// Figure16 reproduces Figure 16: runtime as a function of the request
// window phi*k.
func Figure16(w io.Writer, s Scale) error {
	header(w, "Figure 16", "runtime vs batch factor phi*k (normalized to phi*k=10)",
		"sweet spot at phi*k=10 (k=5, phi=2); small windows idle devices, huge windows add queueing")
	m := s.Machines[len(s.Machines)-1]
	windows := []int{1, 2, 3, 5, 10, 16, 32}
	fmt.Fprintf(w, "  %-10s", "phi*k")
	for _, pk := range windows {
		fmt.Fprintf(w, " %8d", pk)
	}
	fmt.Fprintln(w)
	for _, alg := range chaos.Algorithms() {
		edges, n := graphFor(alg, s.StrongScale)
		var at10 float64
		times := make([]float64, len(windows))
		for i, pk := range windows {
			opt := s.options(m, n)
			opt.WindowOverride = pk
			rep, err := chaos.RunByName(alg, edges, n, opt)
			if err != nil {
				return fmt.Errorf("%s phi*k=%d: %w", alg, pk, err)
			}
			times[i] = rep.SimulatedSeconds
			if pk == 10 {
				at10 = rep.SimulatedSeconds
			}
		}
		for i := range times {
			times[i] /= at10
		}
		fmt.Fprintf(w, "  %-10s", alg)
		for _, t := range times {
			fmt.Fprintf(w, " %8.2f", t)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Figure17 reproduces Figure 17: the runtime breakdown at the largest
// cluster size.
func Figure17(w io.Writer, s Scale) error {
	header(w, "Figure 17", "runtime breakdown (largest cluster, weak-scaled graph)",
		"graph processing 74-87% (avg 83%), idle <4%, copy+merge up to 22% (avg 14%)")
	m := s.Machines[len(s.Machines)-1]
	scale := s.WeakBase + log2(m)
	fmt.Fprintf(w, "  %-6s", "alg")
	for _, c := range metrics.Categories() {
		fmt.Fprintf(w, " %13s", c)
	}
	fmt.Fprintln(w)
	for _, alg := range chaos.Algorithms() {
		edges, n := graphFor(alg, scale)
		rep, err := chaos.RunByName(alg, edges, n, s.options(m, n))
		if err != nil {
			return fmt.Errorf("%s: %w", alg, err)
		}
		fmt.Fprintf(w, "  %-6s", alg)
		for _, c := range metrics.Categories() {
			fmt.Fprintf(w, " %12.1f%%", 100*rep.Breakdown[c.String()])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Figure18 reproduces Figure 18: the work-stealing bias sweep.
func Figure18(w io.Writer, s Scale) error {
	header(w, "Figure 18", "runtime vs stealing bias alpha, normalized to alpha=1",
		"alpha=1 (the analytic criterion) is fastest; no stealing and always-steal both lose")
	m := s.Machines[len(s.Machines)-1]
	scale := s.WeakBase + log2(m)
	alphas := []float64{0, 0.8, 1.0, 1.2, math.Inf(1)}
	fmt.Fprintf(w, "  %-6s %8s %8s %8s %8s %8s\n", "alg", "a=0", "a=0.8", "a=1", "a=1.2", "a=inf")
	for _, alg := range []string{"BFS", "PR"} {
		edges, n := graphFor(alg, scale)
		times := make([]float64, len(alphas))
		var at1 float64
		for i, a := range alphas {
			opt := s.options(m, n)
			switch {
			case a == 0:
				opt.DisableStealing = true
			case math.IsInf(a, 1):
				opt.AlwaysSteal = true
			default:
				opt.Alpha = a
			}
			rep, err := chaos.RunByName(alg, edges, n, opt)
			if err != nil {
				return fmt.Errorf("%s alpha=%v: %w", alg, a, err)
			}
			times[i] = rep.SimulatedSeconds
			if a == 1.0 {
				at1 = rep.SimulatedSeconds
			}
		}
		fmt.Fprintf(w, "  %-6s", alg)
		for _, t := range times {
			fmt.Fprintf(w, " %8.3f", t/at1)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Figure19 reproduces Figure 19: Chaos vs the Giraph baseline on PageRank,
// each normalized to its own single-machine runtime.
func Figure19(w io.Writer, s Scale) error {
	header(w, "Figure 19", "Chaos vs Giraph, PR strong scaling, each self-normalized",
		"static partitioning caps Giraph's scalability; Chaos scales much closer to linear")
	edges, n := graphFor("PR", s.StrongScale)
	xAxis(w, "machines", s.Machines)

	var chaosBase float64
	var chaosVals []float64
	for i, m := range s.Machines {
		rep, err := chaos.RunByName("PR", edges, n, s.options(m, n))
		if err != nil {
			return err
		}
		if i == 0 {
			chaosBase = rep.SimulatedSeconds
		}
		chaosVals = append(chaosVals, rep.SimulatedSeconds/chaosBase)
	}
	series(w, "Chaos", s.Machines, chaosVals, "%8.3f")

	var giraphBase float64
	var giraphVals []float64
	for i, m := range s.Machines {
		spec := cluster.ScaleLatencies(cluster.SSD(m), float64(s.ChunkBytes)/float64(4<<20))
		cfg := giraph.DefaultConfig(spec)
		res, err := giraph.RunPageRank(cfg, edges, n)
		if err != nil {
			return err
		}
		if i == 0 {
			giraphBase = res.Runtime.Seconds()
		}
		giraphVals = append(giraphVals, res.Runtime.Seconds()/giraphBase)
	}
	series(w, "Giraph", s.Machines, giraphVals, "%8.3f")
	last := len(s.Machines) - 1
	fmt.Fprintf(w, "  speedup at %d machines: Chaos %.1fx, Giraph %.1fx\n",
		s.Machines[last], 1/chaosVals[last], 1/giraphVals[last])
	return nil
}

// Figure20 reproduces Figure 20: the worst-case dynamic rebalancing cost of
// Chaos against PowerGraph's in-memory grid partitioning time.
func Figure20(w io.Writer, s Scale) error {
	header(w, "Figure 20", "rebalance time / grid partitioning time",
		"dynamic load balancing costs about a tenth of up-front grid partitioning")
	m := s.Machines[len(s.Machines)-1]
	grid, err := gridpart.New(m)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-6s %14s %14s %8s\n", "alg", "rebalance(s)", "partition(s)", "ratio")
	for _, alg := range chaos.Algorithms() {
		edges, n := graphFor(alg, s.StrongScale)
		rep, err := chaos.RunByName(alg, edges, n, s.options(m, n))
		if err != nil {
			return fmt.Errorf("%s: %w", alg, err)
		}
		part := grid.Partition(cluster.SSD(m), edges, n)
		ratio := rep.RebalanceSeconds / part.Time.Seconds()
		fmt.Fprintf(w, "  %-6s %14.3f %14.3f %8.2f\n", alg, rep.RebalanceSeconds, part.Time.Seconds(), ratio)
	}
	return nil
}

// All runs every experiment in paper order.
func All(w io.Writer, s Scale) error {
	steps := []func(io.Writer, Scale) error{
		Table1, Figure5, Figure7, Figure8, Figure9, Capacity,
		Figure10, Figure11, Figure12, Figure13, Figure14, Figure15,
		Figure16, Figure17, Figure18, Figure19, Figure20,
	}
	for _, f := range steps {
		if err := f(w, s); err != nil {
			return err
		}
	}
	return nil
}
