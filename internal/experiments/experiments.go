// Package experiments regenerates every table and figure of the Chaos
// evaluation (SOSP 2015, §8-§10) at laboratory scale: the same sweeps, the
// same normalizations and the same comparisons, run against the simulated
// rack described in DESIGN.md. Absolute numbers differ from the paper's
// testbed; shapes, winners and crossovers are the reproduction target, and
// EXPERIMENTS.md records both sides for every experiment.
//
// Record emission must be byte-stable across runs — BENCH_*.json files
// are committed and diffed — so every file in this package that could
// iterate a map carries //chaos:sorted-maps and is checked by
// chaos-vet's detrange analyzer.
//
//chaos:sorted-maps
package experiments

import (
	"fmt"
	"io"

	"chaos"
)

// Scale selects the experiment size. Lab is sized so the full suite runs
// in a couple of minutes inside the discrete-event simulation.
type Scale struct {
	// WeakBase is the RMAT scale run on one machine in weak-scaling
	// sweeps (doubling per doubling of machines, as RMAT-27..32 in §9.1).
	WeakBase int
	// StrongScale is the fixed RMAT scale of strong-scaling sweeps
	// (RMAT-27 in §9.2).
	StrongScale int
	// WebPages is the synthetic Data Commons page count (§9.2).
	WebPages uint64
	// Machines is the cluster-size sweep (1..32 in the paper).
	Machines []int
	// ChunkBytes scales the 4 MB chunk down with the graphs.
	ChunkBytes int
	// PartitionsPerMachine forces the streaming-partition multiple.
	PartitionsPerMachine int
	// Storage and Network set the default modeled hardware for every
	// experiment (chaos-bench -storage/-network); experiments that sweep
	// a device still apply their own override on top.
	Storage chaos.Storage
	Network chaos.Network
	// Name labels the scale in machine-readable benchmark records.
	Name string
	// BenchDir, when set, makes experiments that support it write
	// BENCH_<experiment>.json records there (chaos-bench -bench-json).
	BenchDir string
	// ComputeWorkers bounds the engine's host worker pool (0 =
	// GOMAXPROCS); chaos-bench -workers. Simulated results are identical
	// for every value, only wall-clock changes.
	ComputeWorkers int
}

// Lab is the default laboratory scale, calibrated so that chunk counts per
// partition stay large enough for the randomized protocol to behave as it
// does at paper scale, while the whole suite still runs in minutes.
var Lab = Scale{
	Name:                 "lab",
	WeakBase:             10,
	StrongScale:          12,
	WebPages:             1 << 14,
	Machines:             []int{1, 2, 4, 8, 16, 32},
	ChunkBytes:           1 << 10,
	PartitionsPerMachine: 2,
}

// Quick is a reduced scale for smoke tests.
var Quick = Scale{
	Name:                 "quick",
	WeakBase:             8,
	StrongScale:          9,
	WebPages:             1 << 11,
	Machines:             []int{1, 4, 16},
	ChunkBytes:           1 << 10,
	PartitionsPerMachine: 2,
}

// options builds run options for m machines over a graph with n vertices
// whose vertex records occupy roughly vbytes.
func (s Scale) options(m int, n uint64) chaos.Options {
	const vbytes = 8
	budget := int64(n)*vbytes/int64(s.PartitionsPerMachine*m) + vbytes
	return chaos.Options{
		Machines:       m,
		Storage:        s.Storage,
		Network:        s.Network,
		ChunkBytes:     s.ChunkBytes,
		MemBudgetBytes: budget,
		LatencyScale:   float64(s.ChunkBytes) / float64(4<<20),
		ComputeWorkers: s.ComputeWorkers,
		Seed:           1,
	}
}

// graphFor generates the RMAT input for one algorithm at the given scale.
func graphFor(alg string, scale int) ([]chaos.Edge, uint64) {
	edges := chaos.GenerateRMAT(scale, chaos.NeedsWeights(alg), 42)
	return edges, uint64(1) << uint(scale)
}

// header prints an experiment banner.
func header(w io.Writer, id, title, paper string) {
	fmt.Fprintf(w, "\n=== %s: %s ===\n", id, title)
	fmt.Fprintf(w, "    paper: %s\n", paper)
}

// series prints one named row of values.
func series(w io.Writer, name string, xs []int, vals []float64, format string) {
	fmt.Fprintf(w, "  %-14s", name)
	for i := range xs {
		fmt.Fprintf(w, " "+format, vals[i])
	}
	fmt.Fprintln(w)
}

// xAxis prints the machine-count axis row.
func xAxis(w io.Writer, label string, xs []int) {
	fmt.Fprintf(w, "  %-14s", label)
	for _, x := range xs {
		fmt.Fprintf(w, " %8d", x)
	}
	fmt.Fprintln(w)
}
