// Emission/listing order in this file must be byte-stable across runs:
// chaos-vet's detrange analyzer checks every map iteration below.
//
//chaos:sorted-maps
package experiments

import (
	"fmt"
	"io"

	"chaos"
	"chaos/internal/cluster"
	"chaos/internal/xstream"
)

// Table1 reproduces Table 1: single-machine runtime of every algorithm for
// X-Stream (direct I/O) and Chaos (client-server storage protocol). The
// paper's shape: the two are comparable, with Chaos paying an indirection
// penalty on most algorithms.
func Table1(w io.Writer, s Scale) error {
	header(w, "Table 1", "single-machine runtime, X-Stream vs Chaos",
		"X-Stream faster on most algorithms; same order of magnitude (e.g. BFS 497s vs 594s)")
	fmt.Fprintf(w, "  %-10s %12s %12s %8s\n", "algorithm", "x-stream(s)", "chaos(s)", "ratio")
	for _, alg := range chaos.Algorithms() {
		edges, n := graphFor(alg, s.StrongScale)
		rep, err := chaos.RunByName(alg, edges, n, s.options(1, n))
		if err != nil {
			return fmt.Errorf("chaos %s: %w", alg, err)
		}
		xt, err := runXStream(alg, s)
		if err != nil {
			return fmt.Errorf("x-stream %s: %w", alg, err)
		}
		fmt.Fprintf(w, "  %-10s %12.2f %12.2f %8.2f\n", alg, xt, rep.SimulatedSeconds, rep.SimulatedSeconds/xt)
	}
	return nil
}

// runXStream executes one algorithm on the X-Stream baseline, matching the
// input conventions of RunByName.
func runXStream(alg string, s Scale) (float64, error) {
	edges, n := graphFor(alg, s.StrongScale)
	spec := cluster.ScaleLatencies(cluster.SSD(1), float64(s.ChunkBytes)/float64(4<<20))
	cfg := xstream.Config{Spec: spec, ChunkBytes: s.ChunkBytes}
	secs, err := xstreamByName(cfg, alg, edges, n)
	if err != nil {
		return 0, err
	}
	return secs, nil
}

// Figure5 reproduces Figure 5: theoretical storage utilization rho(m, k)
// for k in {1,2,3,5} over 1..32 machines (Equation 4).
func Figure5(w io.Writer, s Scale) error {
	header(w, "Figure 5", "theoretical utilization vs machines, by batch factor k",
		"k=5 stays above 99.3% for any cluster size; k=1 falls toward 1-1/e")
	ms := make([]int, 32)
	for i := range ms {
		ms[i] = i + 1
	}
	fmt.Fprintf(w, "  %-6s %10s %10s %10s %10s\n", "m", "k=1", "k=2", "k=3", "k=5")
	for _, m := range []int{1, 2, 4, 8, 16, 24, 32} {
		fmt.Fprintf(w, "  %-6d", m)
		for _, k := range []float64{1, 2, 3, 5} {
			fmt.Fprintf(w, " %10.4f", chaos.TheoreticalUtilization(m, k))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  asymptotic floors: k=1 %.4f, k=2 %.4f, k=3 %.4f, k=5 %.4f\n",
		chaos.UtilizationFloor(1), chaos.UtilizationFloor(2), chaos.UtilizationFloor(3), chaos.UtilizationFloor(5))
	return nil
}

// WeakScalingResult carries one weak-scaling sweep for reuse by Figure 14.
type WeakScalingResult struct {
	Machines []int
	// Normalized[alg][i] is runtime at Machines[i] over runtime at 1.
	Normalized map[string][]float64
	// Bandwidth[alg][i] is the aggregate storage bandwidth achieved.
	Bandwidth map[string][]float64
	// MaxBandwidth[i] is the theoretical aggregate device bandwidth.
	MaxBandwidth []float64
}

// weakCache memoizes weak-scaling sweeps so that Figures 7 and 14, which
// plot different series of the same experiment, run it once.
var weakCache = map[string]*WeakScalingResult{}

// RunWeakScaling performs the §9.1 experiment: problem size doubles with
// the machine count (RMAT-27 on 1 machine to RMAT-32 on 32 in the paper).
// Results are memoized per (scale, algorithm set).
func RunWeakScaling(s Scale, algs []string) (*WeakScalingResult, error) {
	key := fmt.Sprintf("%+v|%v", s, algs)
	if r, ok := weakCache[key]; ok {
		return r, nil
	}
	r, err := runWeakScaling(s, algs)
	if err == nil {
		weakCache[key] = r
	}
	return r, err
}

func runWeakScaling(s Scale, algs []string) (*WeakScalingResult, error) {
	res := &WeakScalingResult{
		Machines:     s.Machines,
		Normalized:   make(map[string][]float64),
		Bandwidth:    make(map[string][]float64),
		MaxBandwidth: make([]float64, len(s.Machines)),
	}
	for i, m := range s.Machines {
		res.MaxBandwidth[i] = float64(m) * 400e6
	}
	for _, alg := range algs {
		var base float64
		for i, m := range s.Machines {
			scale := s.WeakBase + log2(m)
			edges, n := graphFor(alg, scale)
			rep, err := chaos.RunByName(alg, edges, n, s.options(m, n))
			if err != nil {
				return nil, fmt.Errorf("%s m=%d: %w", alg, m, err)
			}
			if i == 0 {
				base = rep.SimulatedSeconds
			}
			res.Normalized[alg] = append(res.Normalized[alg], rep.SimulatedSeconds/base)
			res.Bandwidth[alg] = append(res.Bandwidth[alg], rep.AggregateBandwidth)
		}
	}
	return res, nil
}

// Figure7 reproduces Figure 7: weak-scaling runtime normalized to one
// machine, all ten algorithms.
func Figure7(w io.Writer, s Scale) error {
	header(w, "Figure 7", "weak scaling, normalized runtime (RMAT base..base+5)",
		"average 1.61x for a 32x larger problem on 32 machines; Cond ~0.97x, MCST ~2.29x")
	res, err := RunWeakScaling(s, chaos.Algorithms())
	if err != nil {
		return err
	}
	xAxis(w, "machines", res.Machines)
	var sum float64
	for _, alg := range chaos.Algorithms() {
		vals := res.Normalized[alg]
		series(w, alg, res.Machines, vals, "%8.2f")
		sum += vals[len(vals)-1]
	}
	fmt.Fprintf(w, "  mean normalized runtime at %d machines: %.2fx\n",
		res.Machines[len(res.Machines)-1], sum/float64(len(chaos.Algorithms())))
	return nil
}

// Figure8 reproduces Figure 8: strong scaling on a fixed graph.
func Figure8(w io.Writer, s Scale) error {
	header(w, "Figure 8", "strong scaling, normalized runtime (fixed RMAT)",
		"average ~13x speedup on 32 machines; Cond up to 23x, MCST ~8x")
	xAxis(w, "machines", s.Machines)
	var sum float64
	for _, alg := range chaos.Algorithms() {
		edges, n := graphFor(alg, s.StrongScale)
		var base float64
		var vals []float64
		for i, m := range s.Machines {
			rep, err := chaos.RunByName(alg, edges, n, s.options(m, n))
			if err != nil {
				return fmt.Errorf("%s m=%d: %w", alg, m, err)
			}
			if i == 0 {
				base = rep.SimulatedSeconds
			}
			vals = append(vals, rep.SimulatedSeconds/base)
		}
		series(w, alg, s.Machines, vals, "%8.3f")
		sum += base / (vals[len(vals)-1] * base)
	}
	fmt.Fprintf(w, "  mean speedup at %d machines: %.1fx\n",
		s.Machines[len(s.Machines)-1], sum/float64(len(chaos.Algorithms())))
	return nil
}

// Figure9 reproduces Figure 9: strong scaling on the (synthetic) Data
// Commons web graph from HDDs, BFS and PageRank.
func Figure9(w io.Writer, s Scale) error {
	header(w, "Figure 9", "strong scaling, web graph, HDD (BFS, PR)",
		"speedups of 20 (BFS) and 18.5 (PR) on 32 machines")
	edges := chaos.GenerateWebGraph(s.WebPages, 42)
	n := s.WebPages
	xAxis(w, "machines", s.Machines)
	for _, alg := range []string{"BFS", "PR"} {
		var base float64
		var vals []float64
		for i, m := range s.Machines {
			opt := s.options(m, n)
			opt.Storage = chaos.HDD
			rep, err := chaos.RunByName(alg, edges, n, opt)
			if err != nil {
				return fmt.Errorf("%s m=%d: %w", alg, m, err)
			}
			if i == 0 {
				base = rep.SimulatedSeconds
			}
			vals = append(vals, rep.SimulatedSeconds/base)
		}
		series(w, alg, s.Machines, vals, "%8.3f")
		fmt.Fprintf(w, "  %s speedup at %d machines: %.1fx\n",
			alg, s.Machines[len(s.Machines)-1], 1/vals[len(vals)-1])
	}
	return nil
}

func log2(m int) int {
	n := 0
	for 1<<uint(n) < m {
		n++
	}
	return n
}
