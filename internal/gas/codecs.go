package gas

import (
	"encoding/binary"
	"math"
)

// Uint32Codec serializes a uint32 in 4 bytes.
func Uint32Codec() Codec[uint32] {
	return Codec[uint32]{
		Bytes: 4,
		Put:   func(b []byte, v *uint32) { binary.LittleEndian.PutUint32(b, *v) },
		Get:   func(b []byte, v *uint32) { *v = binary.LittleEndian.Uint32(b) },
	}
}

// Uint64Codec serializes a uint64 in 8 bytes.
func Uint64Codec() Codec[uint64] {
	return Codec[uint64]{
		Bytes: 8,
		Put:   func(b []byte, v *uint64) { binary.LittleEndian.PutUint64(b, *v) },
		Get:   func(b []byte, v *uint64) { *v = binary.LittleEndian.Uint64(b) },
	}
}

// Float32Codec serializes a float32 in 4 bytes.
func Float32Codec() Codec[float32] {
	return Codec[float32]{
		Bytes: 4,
		Put:   func(b []byte, v *float32) { binary.LittleEndian.PutUint32(b, math.Float32bits(*v)) },
		Get:   func(b []byte, v *float32) { *v = math.Float32frombits(binary.LittleEndian.Uint32(b)) },
	}
}
