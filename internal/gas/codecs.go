package gas

import (
	"encoding/binary"
	"math"
)

// Uint32Codec serializes a uint32 in 4 bytes.
func Uint32Codec() Codec[uint32] {
	return Codec[uint32]{
		Bytes: 4,
		Put:   func(b []byte, v *uint32) { binary.LittleEndian.PutUint32(b, *v) },
		Get:   func(b []byte, v *uint32) { *v = binary.LittleEndian.Uint32(b) },
	}
}

// Uint64Codec serializes a uint64 in 8 bytes.
func Uint64Codec() Codec[uint64] {
	return Codec[uint64]{
		Bytes: 8,
		Put:   func(b []byte, v *uint64) { binary.LittleEndian.PutUint64(b, *v) },
		Get:   func(b []byte, v *uint64) { *v = binary.LittleEndian.Uint64(b) },
	}
}

// Float32Codec serializes a float32 in 4 bytes.
func Float32Codec() Codec[float32] {
	return Codec[float32]{
		Bytes: 4,
		Put:   func(b []byte, v *float32) { binary.LittleEndian.PutUint32(b, math.Float32bits(*v)) },
		Get:   func(b []byte, v *float32) { *v = math.Float32frombits(binary.LittleEndian.Uint32(b)) },
	}
}

// DecodeSliceInto decodes buf (a whole number of records) into dst, which
// must have room for len(buf)/Bytes records, and returns that count. It is
// the bulk counterpart of record-at-a-time Get calls for callers that own
// a reusable destination (vertex arrays, pooled update-record slices).
func (c Codec[T]) DecodeSliceInto(dst []T, buf []byte) int {
	n := len(buf) / c.Bytes
	for i := 0; i < n; i++ {
		c.Get(buf[i*c.Bytes:], &dst[i])
	}
	return n
}
