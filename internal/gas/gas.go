// Package gas defines the Gather-Apply-Scatter programming model Chaos
// exposes to algorithms (§2). The model is edge-centric: during scatter the
// engine streams edges and calls Scatter with the source vertex state;
// during gather it streams updates and folds them into per-vertex
// accumulators; apply folds accumulators into vertex values.
//
// Chaos follows the PowerLyra simplification: updates are scattered only
// over outgoing edges and gathered only for incoming edges. As in the
// paper, the final result of the user functions must be independent of
// application order; the engine exploits this order-independence freely.
//
// Two deliberate extensions over the paper's minimal interface, both of
// which X-Stream's own algorithm suite required:
//
//   - Scatter returns the update's destination vertex explicitly (normally
//     e.Dst). Multi-phase algorithms such as MCST route updates to e.Src or
//     to a component representative.
//   - Accumulators expose an explicit commutative Merge. Figure 3 of the
//     paper applies each replica's accumulator in turn; Merge is the
//     order-independent fixed point of that loop and keeps algorithms like
//     PageRank expressible without hidden state.
package gas

import "chaos/internal/graph"

// Codec serializes fixed-size records of type T. Fixed sizes keep chunk
// arithmetic exact, mirroring the paper's 4/8-byte on-disk fields.
type Codec[T any] struct {
	// Bytes is the encoded record size.
	Bytes int
	// Put encodes *v into buf[:Bytes].
	Put func(buf []byte, v *T)
	// Get decodes buf[:Bytes] into *v.
	Get func(buf []byte, v *T)
}

// EncodeSlice encodes vs into a fresh buffer.
func (c Codec[T]) EncodeSlice(vs []T) []byte {
	buf := make([]byte, c.Bytes*len(vs))
	for i := range vs {
		c.Put(buf[i*c.Bytes:], &vs[i])
	}
	return buf
}

// DecodeSlice decodes buf (a whole number of records) appending to dst.
func (c Codec[T]) DecodeSlice(dst []T, buf []byte) []T {
	n := len(buf) / c.Bytes
	for i := 0; i < n; i++ {
		var v T
		c.Get(buf[i*c.Bytes:], &v)
		dst = append(dst, v)
	}
	return dst
}

// Program is a GAS computation over vertex state V, update payload U and
// accumulator A.
type Program[V, U, A any] interface {
	// Name identifies the algorithm in output.
	Name() string
	// Weighted reports whether the algorithm consumes edge weights; it
	// selects the on-disk edge format (§8).
	Weighted() bool
	// Init initializes a vertex before the first iteration. outDegree is
	// the vertex's out-degree, counted for free during the pre-processing
	// pass for programs whose NeedsDegrees returns true (else zero).
	Init(id graph.VertexID, v *V, outDegree uint32)
	// NeedsDegrees requests out-degree counting during pre-processing.
	NeedsDegrees() bool
	// Scatter may emit an update for edge e given the source vertex
	// state. It returns the update's destination (normally e.Dst), the
	// payload, and whether to emit at all.
	Scatter(iter int, e graph.Edge, src *V) (dst graph.VertexID, val U, emit bool)
	// InitAccum returns the identity accumulator.
	InitAccum() A
	// Gather folds one update into an accumulator. v is the destination
	// vertex's current (pre-apply) state, read-only; it is available
	// because the gather phase loads the partition's vertex set (§5.2),
	// and algorithms such as SCC filter updates against it.
	Gather(a A, u U, v *V) A
	// Merge combines two accumulators; it must be commutative and
	// associative, and Merge(x, InitAccum()) must equal x.
	Merge(a, b A) A
	// Apply folds the accumulator into the vertex value and reports
	// whether the vertex changed (drives convergence).
	Apply(iter int, id graph.VertexID, v *V, a A) bool
	// Converged reports whether the computation is complete after
	// iteration iter in which changed vertices changed.
	Converged(iter int, changed uint64) bool
	// VertexCodec serializes vertex state for storage.
	VertexCodec() Codec[V]
	// UpdateCodec serializes update payloads for storage and network.
	UpdateCodec() Codec[U]
	// AccumBytes is the in-memory accumulator size, used to cost the
	// master's fetch of stealer accumulators over the network.
	AccumBytes() int
}

// Combiner is an optional Program extension: programs whose updates to the
// same destination can be pre-merged (a Pregel-style combiner, §11.1 of
// the paper) implement it, and the engine applies it inside the scatter
// buffers when Config.CombineUpdates is set. The paper found that for
// Chaos "the cost of merging the updates to the same vertex outweighs the
// benefits from reduced network traffic"; the ablation benchmark measures
// exactly that trade.
type Combiner[U any] interface {
	// Combine merges two updates addressed to the same vertex.
	Combine(a, b U) U
}

// EdgeRewriter is an optional Program extension implementing the extended
// model of §6.1, in which "edges may also be rewritten during the
// computation": the engine consults it for every edge during scatter and
// materializes a next-generation edge set that replaces the old one at the
// iteration boundary. Dropping edges shrinks later iterations' streams
// (e.g. Borůvka discarding intra-component edges).
type EdgeRewriter[V any] interface {
	// RewriteEdge returns the edge to carry into the next iteration and
	// whether to keep it at all.
	RewriteEdge(iter int, e graph.Edge, src *V) (graph.Edge, bool)
}
