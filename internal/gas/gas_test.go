package gas

import (
	"testing"
	"testing/quick"
)

func TestUint32CodecRoundTrip(t *testing.T) {
	c := Uint32Codec()
	prop := func(v uint32) bool {
		buf := make([]byte, c.Bytes)
		c.Put(buf, &v)
		var got uint32
		c.Get(buf, &got)
		return got == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64CodecRoundTrip(t *testing.T) {
	c := Uint64Codec()
	prop := func(v uint64) bool {
		buf := make([]byte, c.Bytes)
		c.Put(buf, &v)
		var got uint64
		c.Get(buf, &got)
		return got == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat32CodecRoundTrip(t *testing.T) {
	c := Float32Codec()
	for _, v := range []float32{0, 1.5, -3.25, 1e30, -1e-30} {
		buf := make([]byte, c.Bytes)
		c.Put(buf, &v)
		var got float32
		c.Get(buf, &got)
		if got != v {
			t.Errorf("round trip %g -> %g", v, got)
		}
	}
}

func TestEncodeDecodeSlice(t *testing.T) {
	c := Uint32Codec()
	in := []uint32{1, 2, 3, 4, 5}
	buf := c.EncodeSlice(in)
	if len(buf) != 20 {
		t.Fatalf("buffer %d bytes, want 20", len(buf))
	}
	got := c.DecodeSlice(nil, buf)
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("slice round trip: got %v", got)
		}
	}
}

func TestDecodeSliceAppends(t *testing.T) {
	c := Uint32Codec()
	buf := c.EncodeSlice([]uint32{7})
	got := c.DecodeSlice([]uint32{1, 2}, buf)
	if len(got) != 3 || got[2] != 7 {
		t.Errorf("append decode: %v", got)
	}
}
