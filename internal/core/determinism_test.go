package core

import (
	"reflect"
	"testing"

	"chaos/internal/algorithms"
	"chaos/internal/gas"
	"chaos/internal/graph"
)

// checkWorkerDeterminism runs the same program twice — once with the
// serial inline path (ComputeWorkers = 1) and once on a real worker pool
// — and requires bit-identical vertex values and a bit-identical
// metrics.Run, including every simulated timestamp-derived figure. This
// is the contract that lets the engine use host parallelism inside a
// deterministic discrete-event simulation (see parallel.go).
func checkWorkerDeterminism[V, U, A any](t *testing.T, name string,
	mkProg func() gas.Program[V, U, A], edges []graph.Edge, n uint64, mutate func(*Config)) {
	t.Helper()
	serial := testConfig(4, n, 8)
	serial.ComputeWorkers = 1
	if mutate != nil {
		mutate(&serial)
	}
	parallel := serial
	parallel.ComputeWorkers = 8

	sVals, sRun, err := Run(serial, mkProg(), edges, n)
	if err != nil {
		t.Fatalf("%s serial: %v", name, err)
	}
	pVals, pRun, err := Run(parallel, mkProg(), edges, n)
	if err != nil {
		t.Fatalf("%s parallel: %v", name, err)
	}
	if !reflect.DeepEqual(sVals, pVals) {
		t.Errorf("%s: parallel values differ from serial", name)
	}
	if !reflect.DeepEqual(sRun, pRun) {
		t.Errorf("%s: parallel run metrics differ from serial:\nserial:   %+v\nparallel: %+v", name, sRun, pRun)
	}
	if sRun.Runtime != pRun.Runtime {
		t.Errorf("%s: simulated runtime %v (serial) vs %v (parallel)", name, sRun.Runtime, pRun.Runtime)
	}
}

// TestParallelChunkProcessingIsDeterministic covers the three required
// algorithm shapes: PR (float accumulators, dense updates), SSSP
// (weighted edges, min-folds), SCC (multi-phase with engine-visible
// program state).
func TestParallelChunkProcessingIsDeterministic(t *testing.T) {
	edges, n := testGraph(8, true)

	checkWorkerDeterminism(t, "PR",
		func() gas.Program[algorithms.PRVertex, float32, float64] {
			return &algorithms.PageRank{Iterations: 5}
		}, edges, n, nil)

	checkWorkerDeterminism(t, "SSSP",
		func() gas.Program[algorithms.SSSPVertex, float32, float32] {
			return &algorithms.SSSP{}
		}, graph.Undirected(edges), n, nil)

	checkWorkerDeterminism(t, "SCC",
		func() gas.Program[algorithms.SCCVertex, uint32, algorithms.SCCAccum] {
			return &algorithms.SCC{}
		}, algorithms.AugmentEdges(edges), n, nil)
}

// The extended-model paths run their kernels on workers too: the combiner
// merges inside per-chunk maps, the rewriter emits next-generation edge
// chunks, and checkpoint/rollback replays iterations.
func TestParallelExtensionsAreDeterministic(t *testing.T) {
	edges, n := testGraph(8, true)

	checkWorkerDeterminism(t, "PR+combine",
		func() gas.Program[algorithms.PRVertex, float32, float64] {
			return &algorithms.PageRank{Iterations: 5}
		}, edges, n, func(c *Config) { c.CombineUpdates = true })

	checkWorkerDeterminism(t, "MCST+rewrite",
		func() gas.Program[algorithms.MCSTVertex, algorithms.MCSTUpdate, algorithms.MCSTAccum] {
			return &algorithms.MCST{}
		}, graph.Undirected(edges), n, func(c *Config) { c.RewriteEdges = true })

	checkWorkerDeterminism(t, "PR+ckpt+fail",
		func() gas.Program[algorithms.PRVertex, float32, float64] {
			return &algorithms.PageRank{Iterations: 5}
		}, edges, n, func(c *Config) { c.CheckpointEvery = 2; c.FailAtIteration = 3 })
}
