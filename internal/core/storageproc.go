package core

import (
	"fmt"

	"chaos/internal/sim"
	"chaos/internal/storage"
)

// shutdown terminates a service process at the end of a run.
type shutdown struct{}

// writeAck confirms a write-class request (chunk write, vertex write,
// update delete, checkpoint write) back to the issuing computation engine.
type writeAck struct{ from int }

// ckptWrite charges the device for a checkpoint shadow copy (the bytes are
// retained by the engine's checkpoint map, so only the I/O is modeled).
type ckptWrite struct {
	bytes int
	from  int
	ackTo *sim.Mailbox
}

// storageProc is one machine's storage engine (§6): it serves every request
// in its entirety before the next, giving sequential access to each chunk,
// and tracks per-iteration chunk consumption through the Store.
func (eng *engine[V, U, A]) storageProc(p *sim.Proc, id int) {
	st := eng.stores[id]
	dev := eng.clu.Machines[id].Device
	inbox := eng.storeIn[id]
	for {
		switch m := inbox.Recv(p).(type) {
		case chunkReq:
			idx, length, ok := st.ConsumeChunk(m.kind, m.part)
			reply := chunkReply{kind: m.kind, part: m.part, from: id, idx: idx, length: length, empty: !ok}
			if ok {
				dev.Use(p, int64(length))
				eng.run.BytesRead += int64(length)
				if !eng.hasChunkTask(m.kind, m.part, id, idx) {
					// No pre-dispatched compute task covers this chunk
					// (defensive; the streamers always build the task set
					// first): ship the bytes for inline processing.
					data, err := st.ReadChunkAt(m.kind, m.part, idx)
					if err != nil {
						panic(fmt.Sprintf("core: storage %d: %v", id, err))
					}
					reply.data = data
				}
			}
			eng.clu.Send(id, m.from, int64(length)+controlMsgBytes, m.replyTo, reply)
		case writeChunk:
			if err := st.PutChunk(m.kind, m.part, m.data); err != nil {
				panic(fmt.Sprintf("core: storage %d: %v", id, err))
			}
			dev.Use(p, int64(len(m.data)))
			eng.run.BytesWritten += int64(len(m.data))
			eng.clu.Send(id, m.from, controlMsgBytes, eng.machines[m.from].inbox, writeAck{from: id})
		case vertexRead:
			data, err := st.GetVertexChunk(m.part, m.idx)
			if err != nil {
				panic(fmt.Sprintf("core: storage %d: %v", id, err))
			}
			dev.Use(p, int64(len(data)))
			eng.run.BytesRead += int64(len(data))
			eng.clu.Send(id, m.from, int64(len(data))+controlMsgBytes, m.replyTo,
				vertexReadReply{part: m.part, idx: m.idx, data: data})
		case vertexWrite:
			if err := st.PutVertexChunk(m.part, m.idx, m.data); err != nil {
				panic(fmt.Sprintf("core: storage %d: %v", id, err))
			}
			dev.Use(p, int64(len(m.data)))
			eng.run.BytesWritten += int64(len(m.data))
			eng.clu.Send(id, m.from, controlMsgBytes, eng.machines[m.from].inbox, writeAck{from: id})
		case deleteUpdates:
			if err := st.DeleteUpdates(m.part); err != nil {
				panic(fmt.Sprintf("core: storage %d: %v", id, err))
			}
			eng.clu.Send(id, m.from, controlMsgBytes, eng.machines[m.from].inbox, writeAck{from: id})
		case ckptWrite:
			dev.Use(p, int64(m.bytes))
			eng.run.BytesWritten += int64(m.bytes)
			eng.run.CheckpointBytes += int64(m.bytes)
			eng.clu.Send(id, m.from, controlMsgBytes, m.ackTo, writeAck{from: id})
		case shutdown:
			return
		default:
			panic(fmt.Sprintf("core: storage %d: unexpected message %T", id, m))
		}
	}
}

// arbiterProc answers steal proposals for the partitions this machine
// masters, applying the criterion of §5.4. The master estimates D by
// multiplying the unprocessed data on its local storage engine by the
// machine count — accurate because data is spread evenly (§5.4) — which
// keeps the decision entirely local.
func (eng *engine[V, U, A]) arbiterProc(p *sim.Proc, id int) {
	inbox := eng.arbIn[id]
	ms := eng.machines[id]
	for {
		switch m := inbox.Recv(p).(type) {
		case stealPropose:
			kind := storage.EdgeSet
			if m.ph == gatherPhase {
				kind = storage.UpdateSet
			}
			accepted := false
			if !ms.closed[m.part] {
				d := eng.stores[id].RemainingBytes(kind, m.part) * int64(eng.layout.NumMachines)
				v := eng.vertexSetBytes(m.part)
				accepted = stealCriterion(v, d, ms.workers[m.part], eng.cfg.Alpha)
			}
			if accepted {
				ms.workers[m.part]++
				if m.ph == gatherPhase {
					ms.stealers[m.part] = append(ms.stealers[m.part], m.from)
				}
				eng.run.StealsAccepted++
			} else {
				eng.run.StealsRejected++
			}
			eng.clu.Send(id, m.from, controlMsgBytes, m.replyTo, stealResp{part: m.part, accepted: accepted})
		case shutdown:
			return
		default:
			panic(fmt.Sprintf("core: arbiter %d: unexpected message %T", id, m))
		}
	}
}

// directoryProc is the centralized metadata server of the Figure 15
// baseline: every placement and location decision serializes through it.
func (eng *engine[V, U, A]) directoryProc(p *sim.Proc) {
	for {
		switch m := eng.dirIn.Recv(p).(type) {
		case dirReq:
			p.Sleep(eng.cfg.DirectoryServiceTime)
			resp := dirResp{op: m.op, kind: m.kind, part: m.part, tag: m.tag}
			switch m.op {
			case dirPlace:
				resp.machine = eng.dir.Place(m.kind, m.part)
				resp.ok = true
			case dirLocate:
				resp.machine, resp.ok = eng.dir.Locate(m.kind, m.part)
			case dirReset:
				eng.dir.Reset(m.kind, m.part)
				resp.ok = true
			case dirDelete:
				eng.dir.Delete(m.kind, m.part)
				resp.ok = true
			}
			eng.clu.Send(0, m.from, controlMsgBytes, m.replyTo, resp)
		case shutdown:
			return
		default:
			panic(fmt.Sprintf("core: directory: unexpected message %T", m))
		}
	}
}
