package core

import (
	"math"
	"testing"

	"chaos/internal/algorithms"
	"chaos/internal/cluster"
	"chaos/internal/graph"
	"chaos/internal/refalgo"
	"chaos/internal/rmat"
)

// testConfig returns a lab-scale configuration: small chunks and a vertex
// memory budget that forces several partitions per machine, so stealing
// and chunk-protocol paths are exercised even on tiny graphs. Fixed
// latencies scale with the chunk shrink factor, preserving the paper's
// latency-to-service ratios (see DESIGN.md).
func testConfig(m int, numVertices uint64, vertexBytes int) Config {
	const chunk = 4 << 10
	cfg := DefaultConfig(cluster.ScaleLatencies(cluster.SSD(m), chunk/float64(4<<20)))
	cfg.ChunkBytes = chunk
	cfg.VertexChunkBytes = chunk
	// Aim for 2 partitions per machine.
	cfg.MemBudget = int64(numVertices)*int64(vertexBytes)/int64(2*m) + int64(vertexBytes)
	return cfg
}

func testGraph(scale int, weighted bool) ([]graph.Edge, uint64) {
	g := rmat.New(scale, 42)
	g.Weighted = weighted
	return g.Generate(), g.NumVertices()
}

func TestBFSMatchesReferenceSingleMachine(t *testing.T) {
	edges, n := testGraph(8, false)
	und := graph.Undirected(edges)
	values, run, err := Run(testConfig(1, n, 5), &algorithms.BFS{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	want := refalgo.BFSLevels(graph.BuildAdjacency(und, n), 0)
	for i := range values {
		if values[i].Level != want[i] {
			t.Fatalf("vertex %d: level %d, want %d", i, values[i].Level, want[i])
		}
	}
	if run.Iterations == 0 || run.Runtime == 0 {
		t.Errorf("stats not recorded: %+v", run)
	}
}

func TestBFSMatchesReferenceMultiMachine(t *testing.T) {
	edges, n := testGraph(8, false)
	und := graph.Undirected(edges)
	want := refalgo.BFSLevels(graph.BuildAdjacency(und, n), 0)
	for _, m := range []int{2, 4, 8} {
		values, _, err := Run(testConfig(m, n, 5), &algorithms.BFS{}, und, n)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		for i := range values {
			if values[i].Level != want[i] {
				t.Fatalf("m=%d vertex %d: level %d, want %d", m, i, values[i].Level, want[i])
			}
		}
	}
}

func TestPageRankMatchesReference(t *testing.T) {
	edges, n := testGraph(8, false)
	want := refalgo.PageRank(graph.BuildAdjacency(edges, n), 5)
	for _, m := range []int{1, 4} {
		values, _, err := Run(testConfig(m, n, 8), &algorithms.PageRank{Iterations: 5}, edges, n)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		for i := range values {
			got := float64(values[i].Rank)
			if math.Abs(got-want[i]) > 1e-3*math.Max(1, want[i]) {
				t.Fatalf("m=%d vertex %d: rank %g, want %g", m, i, got, want[i])
			}
		}
	}
}

func TestResultsIdenticalAcrossClusterSizes(t *testing.T) {
	edges, n := testGraph(7, false)
	und := graph.Undirected(edges)
	base, _, err := Run(testConfig(1, n, 5), &algorithms.WCC{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{2, 5} {
		got, _, err := Run(testConfig(m, n, 5), &algorithms.WCC{}, und, n)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		for i := range got {
			if got[i].Label != base[i].Label {
				t.Fatalf("m=%d vertex %d: label %d, want %d", m, i, got[i].Label, base[i].Label)
			}
		}
	}
}

func TestStealingDoesNotChangeResults(t *testing.T) {
	edges, n := testGraph(7, false)
	und := graph.Undirected(edges)
	for _, alpha := range []float64{0, 1, math.Inf(1)} {
		cfg := testConfig(4, n, 5)
		cfg.Alpha = alpha
		values, _, err := Run(cfg, &algorithms.BFS{}, und, n)
		if err != nil {
			t.Fatalf("alpha=%v: %v", alpha, err)
		}
		want := refalgo.BFSLevels(graph.BuildAdjacency(und, n), 0)
		for i := range values {
			if values[i].Level != want[i] {
				t.Fatalf("alpha=%v vertex %d wrong", alpha, i)
			}
		}
	}
}

func TestBatchFactorDoesNotChangeResults(t *testing.T) {
	edges, n := testGraph(7, false)
	want := refalgo.PageRank(graph.BuildAdjacency(edges, n), 3)
	for _, w := range []int{1, 2, 10, 32} {
		cfg := testConfig(3, n, 8)
		cfg.WindowOverride = w
		values, _, err := Run(cfg, &algorithms.PageRank{Iterations: 3}, edges, n)
		if err != nil {
			t.Fatalf("window=%d: %v", w, err)
		}
		for i := range values {
			if math.Abs(float64(values[i].Rank)-want[i]) > 1e-3*math.Max(1, want[i]) {
				t.Fatalf("window=%d vertex %d wrong", w, i)
			}
		}
	}
}

func TestCentralDirectoryModeCorrect(t *testing.T) {
	edges, n := testGraph(7, false)
	und := graph.Undirected(edges)
	cfg := testConfig(4, n, 5)
	cfg.CentralDirectory = true
	values, _, err := Run(cfg, &algorithms.BFS{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	want := refalgo.BFSLevels(graph.BuildAdjacency(und, n), 0)
	for i := range values {
		if values[i].Level != want[i] {
			t.Fatalf("vertex %d: level %d, want %d", i, values[i].Level, want[i])
		}
	}
}

func TestUtilizationFormula(t *testing.T) {
	// Equation 4 at the paper's example: k=5 keeps utilization >= 99.3%
	// for any machine count.
	for m := 2; m <= 64; m++ {
		if u := Utilization(m, 5); u < 0.993 {
			t.Errorf("rho(%d, 5) = %f, want >= 0.993", m, u)
		}
	}
	if u := Utilization(4, 1); math.Abs(u-(1-math.Pow(0.75, 4))) > 1e-12 {
		t.Errorf("rho(4,1) = %f", u)
	}
	if f := UtilizationFloor(5); math.Abs(f-(1-math.Exp(-5))) > 1e-12 {
		t.Errorf("floor(5) = %f", f)
	}
	// Utilization decreases with m toward the floor.
	if Utilization(4, 2) < Utilization(100, 2) {
		t.Error("utilization should fall with machine count")
	}
	if Utilization(1000, 2) < UtilizationFloor(2) {
		t.Error("utilization should stay above the asymptotic floor")
	}
}

func TestStealCriterion(t *testing.T) {
	// V/B + D/(B(H+1)) < alpha * D/(BH), B cancels.
	if !stealCriterion(10, 1000, 1, 1) {
		t.Error("cheap vertex set, lots of data: should steal")
	}
	if stealCriterion(1000, 100, 1, 1) {
		t.Error("vertex set dwarfs remaining data: should not steal")
	}
	if stealCriterion(10, 1000, 1, 0) {
		t.Error("alpha=0 must never steal")
	}
	if !stealCriterion(900, 1000, 1, math.Inf(1)) {
		t.Error("alpha=inf must always steal when data remains")
	}
	if stealCriterion(0, 0, 1, math.Inf(1)) {
		t.Error("no data left: never steal")
	}
	// More helpers make stealing less attractive.
	if stealCriterion(50, 1000, 8, 1) && !stealCriterion(50, 1000, 1, 1) {
		t.Error("criterion should tighten with more workers")
	}
}
