package core

import (
	"fmt"
	"slices"

	"chaos/internal/core/drive"
	"chaos/internal/graph"
	"chaos/internal/metrics"
	"chaos/internal/sim"
	"chaos/internal/storage"
)

// degreeDelta carries one machine's out-degree counts for a partition to
// that partition's master during pre-processing.
type degreeDelta struct {
	part   int
	counts []uint32
	from   int
}

// machine is one computation engine plus the master-side steal state shared
// with its arbiter process. All fields are confined to simulation context.
type machine[V, U, A any] struct {
	id    int
	eng   *engine[V, U, A]
	inbox *sim.Mailbox
	stats *metrics.MachineStats

	// Master-side steal state, shared with the arbiter and reset at the
	// start of every phase.
	workers  map[int]int
	stealers map[int][]int
	closed   map[int]bool

	// pendingWrites counts unacknowledged write-class requests.
	pendingWrites int

	// wire is this machine's side of the update-transport seam
	// (internal/core/drive): it buffers encoded update records per
	// destination partition and hands exactly-limit-sized chunks to
	// writeDataChunk as they fill (§5.1). Under the DES every update
	// crosses a modeled storage boundary, so the wire always carries
	// bytes — its chunk boundaries and flush sequence are bit-identical
	// to the buffering it replaced.
	wire *drive.Wire

	// combBuf replaces updBuf when the Pregel-style combiner is active:
	// updates to the same destination merge in place before spilling.
	combBuf []map[graph.VertexID]U

	// edgeNextBuf accumulates rewritten next-generation edge records per
	// partition under the §6.1 extended model.
	edgeNextBuf [][]byte

	// Gather-steal accumulator hand-off state.
	stolenAccums    map[int][]A
	requestedAccums map[int]bool

	// Pre-processing degree exchange.
	degAcc map[int][]uint32
	degGot int

	// Central-directory continuations by request tag.
	dirTag     uint64
	dirPending map[uint64]func(dirResp)

	// Flight-recorder tallies (trace.go): monotone counters snapshotted
	// by markSpan so emitSpan reports per-span deltas. Plain Go state,
	// never simulation state.
	trChunks                 int
	trBytesIn, trBytesOut    int64
	trStealsAcc, trStealsRej int
}

func newMachine[V, U, A any](eng *engine[V, U, A], id int) *machine[V, U, A] {
	m := &machine[V, U, A]{
		id:              id,
		eng:             eng,
		inbox:           sim.NewMailbox(eng.env, fmt.Sprintf("compute%d", id)),
		stats:           &eng.run.Machines[id],
		workers:         make(map[int]int),
		stealers:        make(map[int][]int),
		closed:          make(map[int]bool),
		stolenAccums:    make(map[int][]A),
		requestedAccums: make(map[int]bool),
		degAcc:          make(map[int][]uint32),
		dirPending:      make(map[uint64]func(dirResp)),
		edgeNextBuf:     make([][]byte, eng.layout.NumPartitions),
	}
	m.wire = drive.NewWire(eng.layout.NumPartitions, eng.updatesPerChunk()*eng.updBytes, func(tp int, chunk []byte) {
		m.writeDataChunk(storage.UpdateSet, tp, chunk)
	})
	if eng.combiner != nil {
		m.combBuf = make([]map[graph.VertexID]U, eng.layout.NumPartitions)
	}
	return m
}

func (m *machine[V, U, A]) send(dst int, bytes int64, mb *sim.Mailbox, msg any) {
	m.eng.clu.Send(m.id, dst, bytes, mb, msg)
}

func (m *machine[V, U, A]) cpu(p *sim.Proc, ops int) {
	if ops > 0 {
		m.eng.clu.Machines[m.id].CPU.Use(p, int64(ops))
	}
}

// handleAsync processes messages that may interleave with any blocking
// wait: write acknowledgements, directory responses, accumulator requests
// from masters, and pre-processing degree deltas. It reports whether the
// message was consumed.
func (m *machine[V, U, A]) handleAsync(msg any) bool {
	switch t := msg.(type) {
	case writeAck:
		m.pendingWrites--
		if m.pendingWrites < 0 {
			panic(fmt.Sprintf("core: machine %d: unexpected write ack", m.id))
		}
		return true
	case dirResp:
		cont, ok := m.dirPending[t.tag]
		if !ok {
			panic(fmt.Sprintf("core: machine %d: directory response with unknown tag %d", m.id, t.tag))
		}
		delete(m.dirPending, t.tag)
		cont(t)
		return true
	case getAccums:
		if accums, ok := m.stolenAccums[t.part]; ok {
			bytes := int64(len(accums))*int64(m.eng.prog.AccumBytes()) + controlMsgBytes
			m.send(t.from, bytes, t.replyTo, accumReply{part: t.part, from: m.id, accums: accums})
			delete(m.stolenAccums, t.part)
		} else {
			m.requestedAccums[t.part] = true
		}
		return true
	case degreeDelta:
		acc := m.degAcc[t.part]
		if acc == nil {
			acc = make([]uint32, m.eng.layout.Size(t.part))
			m.degAcc[t.part] = acc
		}
		for i, d := range t.counts {
			acc[i] += d
		}
		m.degGot++
		return true
	default:
		return false
	}
}

// recvExpect blocks until a message satisfying match arrives, servicing
// async traffic in between. Unexpected messages indicate a protocol bug
// and panic immediately.
func (m *machine[V, U, A]) recvExpect(p *sim.Proc, what string, match func(any) bool) any {
	for {
		msg := m.inbox.Recv(p)
		if m.handleAsync(msg) {
			continue
		}
		if match(msg) {
			return msg
		}
		panic(fmt.Sprintf("core: machine %d: got %T while expecting %s", m.id, msg, what))
	}
}

// drainWrites blocks until all write-class requests have been acknowledged.
func (m *machine[V, U, A]) drainWrites(p *sim.Proc) {
	for m.pendingWrites > 0 {
		if !m.handleAsync(m.inbox.Recv(p)) {
			panic(fmt.Sprintf("core: machine %d: unexpected message while draining writes", m.id))
		}
	}
}

// resetPhaseState clears the master-side steal bookkeeping at a phase
// boundary. All machines leave the previous barrier at the same instant
// and reset before any new proposal can cross the network.
func (m *machine[V, U, A]) resetPhaseState() {
	clear(m.workers)
	clear(m.stealers)
	clear(m.closed)
}

// main is the computation engine's top-level loop: pre-processing, then
// iterations of scatter / gather+apply with barriers after each phase (§4),
// convergence voting, optional checkpointing and failure recovery.
func (m *machine[V, U, A]) main(p *sim.Proc) {
	eng := m.eng
	m.preprocess(p)
	iter := 0
	for {
		m.scatterRun(p, iter)
		m.gatherRun(p, iter)
		if m.id == 0 {
			eng.decide(iter)
		}
		t0 := p.Now()
		eng.barrier.Wait(p)
		m.stats.Add(metrics.Barrier, p.Now()-t0)
		d := eng.decision
		if d.rollbackTo >= 0 {
			m.restore(p)
			eng.barrier.Wait(p)
			m.resetEdgeCursors()
			iter = d.rollbackTo + 1
			continue
		}
		if d.done {
			eng.run.Iterations = iter + 1
			break
		}
		m.resetEdgeCursors()
		iter++
	}
	// Orderly shutdown of this machine's service processes.
	m.eng.storeIn[m.id].Put(shutdown{})
	m.eng.arbIn[m.id].Put(shutdown{})
	if m.id == 0 && eng.dirIn != nil {
		eng.dirIn.Put(shutdown{})
	}
}

// resetEdgeCursors rewinds the local store's edge consumption for the next
// iteration (the file-pointer reset of §7), or promotes the rewritten
// next-generation edge sets under the §6.1 extended model. Pure metadata.
func (m *machine[V, U, A]) resetEdgeCursors() {
	for part := 0; part < m.eng.layout.NumPartitions; part++ {
		if m.eng.rewriter != nil {
			if err := m.eng.stores[m.id].PromoteEdges(part); err != nil {
				panic(fmt.Sprintf("core: machine %d: promoting edges: %v", m.id, err))
			}
			continue
		}
		m.eng.stores[m.id].ResetConsumption(storage.EdgeSet, part)
	}
	if m.eng.dir != nil && m.id == 0 {
		for part := 0; part < m.eng.layout.NumPartitions; part++ {
			m.eng.dir.Reset(storage.EdgeSet, part)
		}
	}
}

// ---------------------------------------------------------------------------
// Pre-processing (§3): one pass over the input edge list, binning edges by
// source partition into chunks spread randomly over the storage engines,
// counting out-degrees if the program wants them, then initializing and
// writing the vertex sets.

func (m *machine[V, U, A]) preprocess(p *sim.Proc) {
	eng := m.eng
	mk := m.markSpan(p)
	myEdges := eng.inputEdges[m.id]
	edgeSize := eng.edgeFmt.EdgeSize()
	perChunk := eng.cfg.ChunkBytes / edgeSize
	if perChunk < 1 {
		perChunk = 1
	}
	needDeg := eng.prog.NeedsDegrees()
	localDeg := make(map[int][]uint32)
	edgeBufs := make([][]byte, eng.layout.NumPartitions)
	dev := eng.clu.Machines[m.id].Device

	for i := 0; i < len(myEdges); i += perChunk {
		hi := i + perChunk
		if hi > len(myEdges) {
			hi = len(myEdges)
		}
		batch := myEdges[i:hi]
		dev.Use(p, int64(len(batch)*edgeSize)) // read the raw input
		eng.run.BytesRead += int64(len(batch) * edgeSize)
		m.trBytesIn += int64(len(batch) * edgeSize)
		m.trChunks++
		m.cpu(p, len(batch))
		for _, e := range batch {
			part := eng.layout.Of(e.Src)
			buf := edgeBufs[part]
			off := len(buf)
			buf = append(buf, make([]byte, edgeSize)...)
			eng.edgeFmt.Encode(buf[off:], e)
			if len(buf) >= perChunk*edgeSize {
				m.writeDataChunk(storage.EdgeSet, part, buf)
				buf = nil
			}
			edgeBufs[part] = buf
			if needDeg {
				deg := localDeg[part]
				if deg == nil {
					deg = make([]uint32, eng.layout.Size(part))
					localDeg[part] = deg
				}
				lo, _ := eng.layout.Range(part)
				deg[e.Src-lo]++
			}
		}
	}
	for part, buf := range edgeBufs {
		if len(buf) > 0 {
			m.writeDataChunk(storage.EdgeSet, part, buf)
		}
	}
	m.drainWrites(p)
	eng.barrier.Wait(p)

	if needDeg {
		// Every machine sends its per-partition counts to the
		// partition master; masters fold them.
		for part := 0; part < eng.layout.NumPartitions; part++ {
			master := eng.layout.Master(part)
			counts := localDeg[part]
			bytes := int64(4*len(counts)) + controlMsgBytes
			m.send(master, bytes, eng.machines[master].inbox, degreeDelta{part: part, counts: counts, from: m.id})
		}
		expect := eng.layout.NumMachines * len(eng.layout.PartitionsOf(m.id))
		for m.degGot < expect {
			if !m.handleAsync(m.inbox.Recv(p)) {
				panic(fmt.Sprintf("core: machine %d: unexpected message during degree exchange", m.id))
			}
		}
		eng.barrier.Wait(p)
	}

	// Initialize vertex values and record them on storage.
	for _, part := range eng.layout.PartitionsOf(m.id) {
		size := eng.layout.Size(part)
		if size == 0 {
			continue
		}
		lo, _ := eng.layout.Range(part)
		verts := make([]V, size)
		deg := m.degAcc[part]
		for i := range verts {
			var d uint32
			if deg != nil {
				d = deg[i]
			}
			eng.prog.Init(lo+graph.VertexID(i), &verts[i], d)
		}
		m.writeVertices(part, verts, false)
	}
	m.drainWrites(p)
	m.emitSpan(p, mk, -1, -1, drive.PhasePreprocess, false)
	eng.barrier.Wait(p)
	if m.id == 0 {
		eng.run.Preprocess = p.Now()
	}
}

// ---------------------------------------------------------------------------
// Chunk I/O helpers.

// writeDataChunk stores a chunk of edges or updates on a uniformly random
// storage engine (§6.3), or on the engine the central directory picks in
// directory mode. The write is asynchronous; drainWrites collects the ack.
func (m *machine[V, U, A]) writeDataChunk(kind storage.SetKind, part int, data []byte) {
	eng := m.eng
	m.pendingWrites++
	m.trBytesOut += int64(len(data))
	if eng.dir != nil {
		m.dirRequest(dirPlace, kind, part, func(r dirResp) {
			m.send(r.machine, int64(len(data))+controlMsgBytes, eng.storeIn[r.machine],
				writeChunk{kind: kind, part: part, from: m.id, data: data})
		})
		return
	}
	target := eng.env.Rand().Intn(eng.layout.NumMachines)
	m.send(target, int64(len(data))+controlMsgBytes, eng.storeIn[target],
		writeChunk{kind: kind, part: part, from: m.id, data: data})
}

// dirRequest sends an asynchronous request to the central directory and
// registers a continuation for its response.
func (m *machine[V, U, A]) dirRequest(op dirOp, kind storage.SetKind, part int, cont func(dirResp)) {
	m.dirTag++
	tag := m.dirTag
	m.dirPending[tag] = cont
	m.send(0, controlMsgBytes, m.eng.dirIn, dirReq{op: op, kind: kind, part: part, from: m.id, tag: tag, replyTo: m.inbox})
}

// streamChunks drives the batched chunk protocol of §6.5 for one partition's
// edge or update set: keep a window of phi*k requests outstanding to
// uniformly random storage engines, process chunk replies as they arrive,
// and finish when every engine has reported empty. The reply identifies
// the chunk by (store, cursor index); its computation was dispatched to
// the worker pool when the stream was acquired, and the caller's onChunk
// merges the result at the deterministic delivery instant.
func (m *machine[V, U, A]) streamChunks(p *sim.Proc, kind storage.SetKind, part int, onChunk func(chunkReply)) {
	eng := m.eng
	nm := eng.layout.NumMachines
	outstanding := 0

	if eng.dir != nil {
		// Directory mode: each slot is a locate followed by a fetch.
		exhausted := false
		issue := func() bool {
			if exhausted {
				return false
			}
			outstanding++
			m.dirRequest(dirLocate, kind, part, func(r dirResp) {
				if !r.ok {
					exhausted = true
					outstanding--
					return
				}
				m.send(r.machine, controlMsgBytes, eng.storeIn[r.machine],
					chunkReq{kind: kind, part: part, from: m.id, replyTo: m.inbox})
			})
			return true
		}
		for outstanding < eng.window && issue() {
		}
		for outstanding > 0 {
			msg := m.inbox.Recv(p)
			if m.handleAsync(msg) {
				continue
			}
			r, ok := msg.(chunkReply)
			if !ok || r.kind != kind || r.part != part {
				panic(fmt.Sprintf("core: machine %d: got %T while streaming %v of partition %d", m.id, msg, kind, part))
			}
			outstanding--
			if r.empty {
				// The directory said the chunk was there; a race
				// would be a protocol bug.
				panic(fmt.Sprintf("core: machine %d: directory pointed at empty store %d", m.id, r.from))
			}
			onChunk(r)
			for outstanding < eng.window && issue() {
			}
		}
		return
	}

	empty := make([]bool, nm)
	nEmpty := 0
	issue := func() bool {
		if nEmpty == nm {
			return false
		}
		t := eng.env.Rand().Intn(nm)
		for empty[t] {
			t = (t + 1) % nm
		}
		m.send(t, controlMsgBytes, eng.storeIn[t], chunkReq{kind: kind, part: part, from: m.id, replyTo: m.inbox})
		outstanding++
		return true
	}
	for outstanding < eng.window && issue() {
	}
	for outstanding > 0 {
		msg := m.inbox.Recv(p)
		if m.handleAsync(msg) {
			continue
		}
		r, ok := msg.(chunkReply)
		if !ok || r.kind != kind || r.part != part {
			panic(fmt.Sprintf("core: machine %d: got %T while streaming %v of partition %d", m.id, msg, kind, part))
		}
		outstanding--
		if r.empty {
			if !empty[r.from] {
				empty[r.from] = true
				nEmpty++
			}
		} else {
			onChunk(r)
		}
		for outstanding < eng.window && issue() {
		}
	}
}

// loadVertices reads a partition's vertex set into memory, pipelining chunk
// reads from their hashed homes (§6.4).
func (m *machine[V, U, A]) loadVertices(p *sim.Proc, part int) []V {
	eng := m.eng
	size := eng.layout.Size(part)
	if size == 0 {
		return nil
	}
	codec := eng.vCodec
	verts := make([]V, size)
	per := eng.verticesPerChunk()
	n := eng.vertexChunks(part)
	issued, done := 0, 0
	for done < n {
		for issued < n && issued-done < eng.window {
			home := storage.VertexChunkHome(part, issued, eng.layout.NumMachines)
			m.send(home, controlMsgBytes, eng.storeIn[home], vertexRead{part: part, idx: issued, from: m.id, replyTo: m.inbox})
			issued++
		}
		msg := m.inbox.Recv(p)
		if m.handleAsync(msg) {
			continue
		}
		r, ok := msg.(vertexReadReply)
		if !ok || r.part != part {
			panic(fmt.Sprintf("core: machine %d: got %T while loading vertices of partition %d", m.id, msg, part))
		}
		codec.DecodeSliceInto(verts[r.idx*per:], r.data)
		m.trBytesIn += int64(len(r.data))
		done++
	}
	return verts
}

// writeVertices records a partition's vertex set back to storage,
// asynchronously, optionally also charging the checkpoint shadow copy and
// capturing its bytes (phase 1 of §6.6).
func (m *machine[V, U, A]) writeVertices(part int, verts []V, checkpoint bool) {
	eng := m.eng
	codec := eng.vCodec
	per := eng.verticesPerChunk()
	n := eng.vertexChunks(part)
	var ckptChunks [][]byte
	if checkpoint {
		ckptChunks = make([][]byte, n)
	}
	for idx := 0; idx < n; idx++ {
		lo := idx * per
		hi := lo + per
		if hi > len(verts) {
			hi = len(verts)
		}
		data := codec.EncodeSlice(verts[lo:hi])
		m.trBytesOut += int64(len(data))
		home := storage.VertexChunkHome(part, idx, eng.layout.NumMachines)
		m.pendingWrites++
		m.send(home, int64(len(data))+controlMsgBytes, eng.storeIn[home],
			vertexWrite{part: part, idx: idx, from: m.id, data: data})
		if eng.cfg.ReplicateVertices {
			rep := storage.VertexChunkReplica(part, idx, eng.layout.NumMachines)
			m.pendingWrites++
			m.send(rep, int64(len(data))+controlMsgBytes, eng.storeIn[rep],
				vertexWrite{part: part, idx: idx, from: m.id, data: data})
		}
		if checkpoint {
			ckptChunks[idx] = data
			m.pendingWrites++
			m.send(home, int64(len(data))+controlMsgBytes, eng.storeIn[home],
				ckptWrite{bytes: len(data), from: m.id, ackTo: m.inbox})
		}
	}
	if checkpoint {
		eng.ckptPending[part] = ckptChunks
	}
}

// restore rewrites this machine's partitions' vertex sets from the last
// committed checkpoint after a transient failure.
func (m *machine[V, U, A]) restore(p *sim.Proc) {
	eng := m.eng
	for _, part := range eng.layout.PartitionsOf(m.id) {
		chunks, ok := eng.ckptVerts[part]
		if !ok {
			continue // empty partition
		}
		for idx, data := range chunks {
			home := storage.VertexChunkHome(part, idx, eng.layout.NumMachines)
			m.pendingWrites++
			m.send(home, int64(len(data))+controlMsgBytes, eng.storeIn[home],
				vertexWrite{part: part, idx: idx, from: m.id, data: data})
		}
	}
	m.drainWrites(p)
}

// ---------------------------------------------------------------------------
// Update record encoding: destination ID (4 or 8 bytes, §8) plus payload.

func (m *machine[V, U, A]) appendUpdate(buf []byte, dst graph.VertexID, val *U) []byte {
	return m.eng.appendUpdateRecord(buf, dst, val)
}

func (m *machine[V, U, A]) decodeUpdate(buf []byte) (graph.VertexID, U) {
	r := m.eng.decodeUpdateRecord(buf)
	return r.Dst, r.Val
}

// ---------------------------------------------------------------------------
// Scatter phase (§5.1).

func (m *machine[V, U, A]) scatterRun(p *sim.Proc, iter int) {
	eng := m.eng
	m.resetPhaseState()
	for _, part := range eng.layout.PartitionsOf(m.id) {
		m.workers[part]++
		t0 := p.Now()
		mk := m.markSpan(p)
		verts := m.loadVertices(p, part)
		m.scatterPartition(p, iter, part, verts)
		m.emitSpan(p, mk, iter, part, drive.PhaseScatter, false)
		m.stats.Add(metrics.GPMasterMe, p.Now()-t0)
	}
	m.stealSweep(p, scatterPhase, iter)
	m.flushAllUpdates()
	m.drainWrites(p)
	t0 := p.Now()
	eng.barrier.Wait(p)
	m.stats.Add(metrics.Barrier, p.Now()-t0)
}

// scatterPartition streams a partition's edges and emits updates. The
// per-chunk computation (decode, rewriter, Scatter, update encoding) was
// dispatched to the worker pool when the stream was acquired; here each
// delivered chunk's pure result is merged — in delivery order, before any
// simulated time is charged for it — into the machine's spill buffers.
// With a combiner, updates to the same destination merge inside the
// buffers (§11.1); with a rewriter, the surviving edges are written into
// the next-generation edge set (§6.1 extended model).
func (m *machine[V, U, A]) scatterPartition(p *sim.Proc, iter, part int, verts []V) {
	eng := m.eng
	w := m.acquireScatterStream(iter, part, verts)
	m.streamChunks(p, storage.EdgeSet, part, func(r chunkReply) {
		m.trChunks++
		m.trBytesIn += int64(r.length)
		sc := w.at(r.from, r.idx)
		if sc == nil {
			// Inline mode (and, defensively, any chunk predating the
			// stream's task set): the reply carries the bytes, run the
			// same kernel at the delivery instant.
			sc = &scatterChunk[U]{}
			eng.kern.ScatterChunk(iter, part, verts, r.data, &sc.out)
		} else {
			sc.Wait()
		}
		m.mergeScatter(p, part, &sc.out)
	})
	eng.releaseScatterStream(part)
}

// mergeScatter replays one chunk's pure scatter result against the
// machine's buffers at the chunk's simulated delivery time: CPU charges,
// buffer appends and chunk spills happen exactly as if the records had
// been processed inline.
func (m *machine[V, U, A]) mergeScatter(p *sim.Proc, part int, out *drive.ScatterOut[U]) {
	eng := m.eng
	m.cpu(p, out.N)
	if eng.rewriter != nil && len(out.EdgesNext) > 0 {
		limit := spillLimit(eng.cfg.ChunkBytes, eng.edgeFmt.EdgeSize())
		m.edgeNextBuf[part] = m.appendSpill(storage.EdgeSetNext, part, m.edgeNextBuf[part], out.EdgesNext, limit)
	}
	if eng.combiner != nil {
		per := eng.updatesPerChunk()
		for tp, chunkMap := range out.Combined {
			if len(chunkMap) == 0 {
				continue
			}
			mp := m.combBuf[tp]
			if mp == nil {
				mp = make(map[graph.VertexID]U, per)
				m.combBuf[tp] = mp
			}
			for dst, val := range chunkMap {
				if old, ok := mp[dst]; ok {
					mp[dst] = eng.combiner.Combine(old, val)
				} else {
					mp[dst] = val
				}
			}
			if len(mp) >= per {
				m.flushCombined(tp)
			}
		}
	}
	for tp, b := range out.Updates {
		if len(b) == 0 {
			continue
		}
		m.wire.Put(tp, b)
	}
	// Combining costs an extra hash-merge per emitted update; the
	// paper found this overhead outweighs the traffic reduction.
	m.cpu(p, 2*out.CombineOps)
	eng.kern.ReleaseScatterOut(out)
}

// spillLimit is the spill threshold in bytes for record-aligned buffers:
// the smallest whole number of records covering chunkBytes.
func spillLimit(chunkBytes, recSize int) int {
	n := (chunkBytes + recSize - 1) / recSize
	if n < 1 {
		n = 1
	}
	return n * recSize
}

// appendSpill appends b to buf, writing out full chunks of exactly limit
// bytes as they fill. Spilled slices are handed to the storage protocol
// and must not be reused, so the remainder is copied to fresh backing.
func (m *machine[V, U, A]) appendSpill(kind storage.SetKind, part int, buf, b []byte, limit int) []byte {
	buf = append(buf, b...)
	for len(buf) >= limit {
		m.writeDataChunk(kind, part, buf[:limit:limit])
		rest := buf[limit:]
		if len(rest) == 0 {
			return nil
		}
		buf = append(make([]byte, 0, limit), rest...)
	}
	return buf
}

// flushCombined encodes and spills one destination partition's combined
// update buffer. Keys are sorted so the encoded byte order — and with it
// downstream gather order and any float folds — is deterministic.
func (m *machine[V, U, A]) flushCombined(tp int) {
	mp := m.combBuf[tp]
	if len(mp) == 0 {
		return
	}
	dsts := make([]graph.VertexID, 0, len(mp))
	for dst := range mp {
		dsts = append(dsts, dst)
	}
	slices.Sort(dsts)
	buf := make([]byte, 0, len(mp)*m.eng.updBytes)
	for _, dst := range dsts {
		val := mp[dst]
		buf = m.appendUpdate(buf, dst, &val)
	}
	clear(mp)
	m.wire.PutChunk(tp, buf)
}

func (eng *engine[V, U, A]) updatesPerChunk() int {
	per := eng.cfg.ChunkBytes / eng.updBytes
	if per < 1 {
		per = 1
	}
	return per
}

// flushAllUpdates writes out the partially filled update (and rewritten
// edge) buffers at the end of a scatter phase.
func (m *machine[V, U, A]) flushAllUpdates() {
	m.wire.FlushPartials()
	if m.eng.combiner != nil {
		for tp := range m.combBuf {
			m.flushCombined(tp)
		}
	}
	if m.eng.rewriter != nil {
		for part, buf := range m.edgeNextBuf {
			if len(buf) > 0 {
				m.writeDataChunk(storage.EdgeSetNext, part, buf)
				m.edgeNextBuf[part] = nil
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Gather + apply phase (§5.2, §5.3).

func (m *machine[V, U, A]) gatherRun(p *sim.Proc, iter int) {
	eng := m.eng
	m.resetPhaseState()
	for _, part := range eng.layout.PartitionsOf(m.id) {
		m.workers[part]++
		t0 := p.Now()
		mk := m.markSpan(p)
		verts := m.loadVertices(p, part)
		accums := m.newAccums(len(verts))
		m.gatherPartition(p, part, verts, accums)
		m.emitSpan(p, mk, iter, part, drive.PhaseGather, false)
		m.stats.Add(metrics.GPMasterMe, p.Now()-t0)
		mk = m.markSpan(p)
		m.applyPartition(p, iter, part, verts, accums)
		m.emitSpan(p, mk, iter, part, drive.PhaseApply, false)
	}
	m.stealSweep(p, gatherPhase, iter)
	m.drainWrites(p)
	t0 := p.Now()
	eng.barrier.Wait(p)
	m.stats.Add(metrics.Barrier, p.Now()-t0)
}

func (m *machine[V, U, A]) newAccums(n int) []A {
	accums := make([]A, n)
	for i := range accums {
		accums[i] = m.eng.prog.InitAccum()
	}
	return accums
}

// gatherPartition streams a partition's updates into accumulators. verts
// is the partition's vertex set, read-only during gather. Each chunk's
// decode was dispatched to the worker pool when the stream was acquired
// (shared between master and stealers); the fold into this machine's
// accumulators runs as a chained worker task — chained in the chunks'
// deterministic delivery order, so the accumulator fold sequence is
// identical for any worker count — and the whole chain is awaited before
// the accumulators are read.
func (m *machine[V, U, A]) gatherPartition(p *sim.Proc, part int, verts []V, accums []A) {
	eng := m.eng
	lo, _ := eng.layout.Range(part)
	w := eng.acquireGatherStream(part)
	var tail *chunkTask
	m.streamChunks(p, storage.UpdateSet, part, func(r chunkReply) {
		m.trChunks++
		m.trBytesIn += int64(r.length)
		m.cpu(p, r.length/eng.updBytes)
		gc := w.at(r.from, r.idx)
		if gc == nil {
			// Inline mode or defensive fallback: decode at delivery
			// (see scatterPartition).
			gc = &gatherChunk[U]{}
			gc.Done = closedChan
			gc.recs = eng.kern.DecodeUpdateChunk(eng.kern.GrabRecs(), r.data)
		}
		ft := &chunkTask{Prev: tail, Fn: func() {
			gc.Wait() // decode complete
			for i := range gc.recs {
				u := &gc.recs[i]
				accums[u.Dst-lo] = eng.prog.Gather(accums[u.Dst-lo], u.Val, &verts[u.Dst-lo])
			}
			eng.kern.ReleaseRecs(gc.recs)
			gc.recs = nil
		}}
		eng.pool.Submit(ft)
		tail = ft
	})
	if tail != nil {
		tail.Wait()
	}
	eng.releaseGatherStream(part)
}

// applyPartition is the master-side wrap-up for one of its partitions:
// close the partition to new stealers, fetch and merge their accumulators,
// apply, write the vertex set back, and delete the update set.
func (m *machine[V, U, A]) applyPartition(p *sim.Proc, iter, part int, verts []V, accums []A) {
	eng := m.eng
	m.closed[part] = true
	stealers := m.stealers[part]
	for _, s := range stealers {
		m.send(s, controlMsgBytes, eng.machines[s].inbox, getAccums{part: part, from: m.id, replyTo: m.inbox})
	}
	for range stealers {
		t0 := p.Now()
		msg := m.recvExpect(p, fmt.Sprintf("accumulators for partition %d", part), func(msg any) bool {
			r, ok := msg.(accumReply)
			return ok && r.part == part
		})
		m.stats.Add(metrics.MergeWait, p.Now()-t0)
		t0 = p.Now()
		theirs := msg.(accumReply).accums.([]A)
		m.cpu(p, len(theirs))
		for i := range accums {
			accums[i] = eng.prog.Merge(accums[i], theirs[i])
		}
		m.stats.Add(metrics.Merge, p.Now()-t0)
	}

	t0 := p.Now()
	lo, _ := eng.layout.Range(part)
	m.cpu(p, len(verts))
	var changed uint64
	for i := range verts {
		if eng.prog.Apply(iter, lo+graph.VertexID(i), &verts[i], accums[i]) {
			changed++
		}
	}
	eng.changed += changed
	m.writeVertices(part, verts, eng.checkpointDue(iter))
	// Delete the consumed update set everywhere (§6.1).
	for s := 0; s < eng.layout.NumMachines; s++ {
		m.pendingWrites++
		m.send(s, controlMsgBytes, eng.storeIn[s], deleteUpdates{part: part, from: m.id})
	}
	if eng.dir != nil {
		m.pendingWrites++
		m.dirRequest(dirDelete, storage.UpdateSet, part, func(dirResp) { m.pendingWrites-- })
	}
	m.stats.Add(metrics.GPMasterMe, p.Now()-t0)
}

// ---------------------------------------------------------------------------
// Work stealing (§5.3, §5.4).

// stealSweep repeatedly offers help to the masters of other partitions in
// random order until a full sweep finds no partition that needs it.
func (m *machine[V, U, A]) stealSweep(p *sim.Proc, ph phase, iter int) {
	eng := m.eng
	if eng.cfg.Alpha == 0 || eng.layout.NumMachines == 1 {
		return
	}
	var others []int
	for part := 0; part < eng.layout.NumPartitions; part++ {
		if eng.layout.Master(part) != m.id {
			others = append(others, part)
		}
	}
	mk := m.markSpan(p)
	defer m.emitSpan(p, mk, iter, -1, drive.PhaseSteal, false)
	for {
		helped := false
		rng := eng.env.Rand()
		rng.Shuffle(len(others), func(i, j int) { others[i], others[j] = others[j], others[i] })
		for _, part := range others {
			if !m.propose(p, ph, part) {
				continue
			}
			helped = true
			if ph == scatterPhase {
				m.scatterSteal(p, iter, part)
			} else {
				m.gatherSteal(p, iter, part)
			}
		}
		if !helped {
			return
		}
	}
}

// propose sends a steal proposal to the partition's master and waits for
// the verdict.
func (m *machine[V, U, A]) propose(p *sim.Proc, ph phase, part int) bool {
	eng := m.eng
	master := eng.layout.Master(part)
	m.send(master, controlMsgBytes, eng.arbIn[master], stealPropose{ph: ph, part: part, from: m.id, replyTo: m.inbox})
	msg := m.recvExpect(p, fmt.Sprintf("steal response for partition %d", part), func(msg any) bool {
		r, ok := msg.(stealResp)
		return ok && r.part == part
	})
	if msg.(stealResp).accepted {
		m.trStealsAcc++
		return true
	}
	m.trStealsRej++
	return false
}

// scatterSteal processes part of another machine's partition during
// scatter: read the vertex set (the cost of stealing), then stream and
// scatter edges exactly as the master does.
func (m *machine[V, U, A]) scatterSteal(p *sim.Proc, iter, part int) {
	mk := m.markSpan(p)
	t0 := p.Now()
	verts := m.loadVertices(p, part)
	m.stats.Add(metrics.Copy, p.Now()-t0)
	t0 = p.Now()
	m.scatterPartition(p, iter, part, verts)
	m.stats.Add(metrics.GPMasterOther, p.Now()-t0)
	m.emitSpan(p, mk, iter, part, drive.PhaseScatter, true)
}

// gatherSteal processes part of another machine's partition during gather,
// keeping a private accumulator array that the master fetches when it has
// finished its own part (§5.3). Per the paper, the stealer waits for the
// master's request before doing anything else; the wait is very short
// because everyone drains the same chunk pool.
func (m *machine[V, U, A]) gatherSteal(p *sim.Proc, iter, part int) {
	eng := m.eng
	mk := m.markSpan(p)
	t0 := p.Now()
	verts := m.loadVertices(p, part)
	m.stats.Add(metrics.Copy, p.Now()-t0)
	t0 = p.Now()
	accums := m.newAccums(len(verts))
	m.gatherPartition(p, part, verts, accums)
	m.stats.Add(metrics.GPMasterOther, p.Now()-t0)
	m.emitSpan(p, mk, iter, part, drive.PhaseGather, true)

	t0 = p.Now()
	if m.requestedAccums[part] {
		delete(m.requestedAccums, part)
		master := eng.layout.Master(part)
		bytes := int64(len(accums))*int64(eng.prog.AccumBytes()) + controlMsgBytes
		m.send(master, bytes, eng.machines[master].inbox, accumReply{part: part, from: m.id, accums: accums})
	} else {
		m.stolenAccums[part] = accums
		for {
			if _, pending := m.stolenAccums[part]; !pending {
				break
			}
			if !m.handleAsync(m.inbox.Recv(p)) {
				panic(fmt.Sprintf("core: machine %d: unexpected message while awaiting accumulator request", m.id))
			}
		}
	}
	m.stats.Add(metrics.MergeWait, p.Now()-t0)
}
