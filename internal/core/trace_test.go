package core

import (
	"reflect"
	"testing"

	"chaos/internal/algorithms"
	"chaos/internal/core/drive"
	"chaos/internal/graph"
)

// TestTraceEmitsPerPhaseSpans: a traced run produces preprocess spans
// for every machine and scatter/gather/apply spans for every iteration,
// with coherent time ranges and tallies.
func TestTraceEmitsPerPhaseSpans(t *testing.T) {
	edges, n := testGraph(8, false)

	var spans []drive.Span
	cfg := testConfig(2, n, 8)
	cfg.Trace = func(s drive.Span) { spans = append(spans, s) }
	_, run, err := Run(cfg, &algorithms.PageRank{Iterations: 5}, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("trace callback never fired")
	}
	perPhase := map[string]int{}
	machines := map[int]bool{}
	maxIter := -1
	for _, s := range spans {
		perPhase[s.Phase]++
		machines[s.Machine] = true
		if s.Iter > maxIter {
			maxIter = s.Iter
		}
		if s.Start < 0 || s.Dur < 0 {
			t.Fatalf("span with negative time range: %+v", s)
		}
		if s.Phase == drive.PhasePreprocess && s.Iter != -1 {
			t.Fatalf("preprocess span carries iteration %d, want -1", s.Iter)
		}
		if (s.Phase == drive.PhasePreprocess || s.Phase == drive.PhaseSteal) && s.Part != -1 {
			t.Fatalf("machine-scoped %s span carries partition %d, want -1", s.Phase, s.Part)
		}
		if (s.Phase == drive.PhaseScatter || s.Phase == drive.PhaseGather) && s.Chunks < 0 {
			t.Fatalf("span with negative chunk tally: %+v", s)
		}
	}
	if perPhase[drive.PhasePreprocess] != cfg.Spec.Machines {
		t.Errorf("%d preprocess spans, want one per machine (%d)", perPhase[drive.PhasePreprocess], cfg.Spec.Machines)
	}
	if len(machines) != cfg.Spec.Machines {
		t.Errorf("spans name %d machines, want %d", len(machines), cfg.Spec.Machines)
	}
	if maxIter != run.Iterations-1 {
		t.Errorf("last traced iteration %d, want %d", maxIter, run.Iterations-1)
	}
	for _, ph := range []string{drive.PhaseScatter, drive.PhaseGather, drive.PhaseApply} {
		// At least one span per (iteration, partition) master-side pass.
		if min := run.Iterations; perPhase[ph] < min {
			t.Errorf("%d %s spans over %d iterations", perPhase[ph], ph, run.Iterations)
		}
	}
	// Steal verdicts in the span stream agree with the run's report.
	var acc, rej int
	for _, s := range spans {
		acc += s.StealsAccepted
		rej += s.StealsRejected
	}
	if acc != run.StealsAccepted || rej != run.StealsRejected {
		t.Errorf("traced steal verdicts %d/%d, run reports %d/%d",
			acc, rej, run.StealsAccepted, run.StealsRejected)
	}
}

// TestTraceDoesNotPerturbRun is the determinism guarantee: a run with a
// trace subscriber produces bit-identical values, metrics and virtual
// clock to one without.
func TestTraceDoesNotPerturbRun(t *testing.T) {
	edges, n := testGraph(7, false)
	und := graph.Undirected(edges)

	plain, plainRun, err := Run(testConfig(2, n, 5), &algorithms.BFS{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(2, n, 5)
	fired := 0
	cfg.Trace = func(drive.Span) { fired++ }
	got, run, err := Run(cfg, &algorithms.BFS{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	if fired == 0 {
		t.Fatal("trace callback never fired")
	}
	if !reflect.DeepEqual(plain, got) {
		t.Error("vertex values drifted under a trace subscriber")
	}
	if !reflect.DeepEqual(plainRun, run) {
		t.Errorf("run metrics drifted under a trace subscriber:\n%+v\nvs\n%+v", run, plainRun)
	}
}
