// Package core implements the Chaos runtime (§4-§6): per-machine
// computation and storage engines exchanging chunk requests over a
// simulated cluster, streaming-partition scatter/gather with randomized
// work stealing, batched storage access, checkpointing, and the runtime
// accounting the paper's evaluation reports.
//
// The engine executes the real protocol over real graph data inside a
// deterministic discrete-event simulation: algorithm results are exact,
// virtual time reproduces the paper's performance behaviour (see
// DESIGN.md for the hardware substitution argument).
package core

import (
	"fmt"
	"math"

	"chaos/internal/cluster"
	"chaos/internal/core/drive"
	"chaos/internal/sim"
	"chaos/internal/storage"
)

// Config parameterizes one Chaos run.
type Config struct {
	// Spec describes the cluster hardware.
	Spec cluster.Spec
	// ChunkBytes is the edge/update chunk size; the paper uses 4 MB
	// blocks (§7). Benches use smaller chunks with smaller graphs to
	// preserve the chunk-per-partition ratio.
	ChunkBytes int
	// VertexChunkBytes is the vertex-set chunk size (defaults to
	// ChunkBytes).
	VertexChunkBytes int
	// BatchK is the batch factor k: the number of requests kept
	// outstanding at storage engines. The paper's sweet spot is k=5
	// (99.3%+ utilization regardless of cluster size, §6.5).
	BatchK int
	// WindowOverride, when positive, fixes the request window phi*k
	// directly (the Figure 16 sweep).
	WindowOverride int
	// Alpha is the work-stealing bias of §10.2: 0 disables stealing, 1
	// is the analytic criterion, math.Inf(1) always steals.
	Alpha float64
	// MemBudget is the per-machine memory available for one partition's
	// vertex set; it determines the partition count (§3). Zero means
	// unconstrained (one partition per machine).
	MemBudget int64
	// TransportBudgetBytes bounds the update transport's resident
	// memory on the native driver: past it, overflowing buckets are
	// encoded and spilled to temp files under SpillDir, streamed back
	// in deterministic fold order (out-of-core mode). Zero means
	// unbounded (the zero-copy in-memory transport). The DES driver
	// ignores it: simulated storage makes every DES run out-of-core by
	// construction.
	TransportBudgetBytes int64
	// SpillDir is the parent directory for the native driver's spill
	// files ("" = the OS temp dir). Operational, not semantic: it never
	// affects results and is deliberately absent from option
	// fingerprints.
	SpillDir string
	// MaxIterations caps the main loop (safety net; 0 means 1000).
	MaxIterations int
	// CheckpointEvery enables vertex-state checkpoints at every n-th
	// iteration boundary using the 2-phase protocol of §6.6 (0 = off).
	CheckpointEvery int
	// FailAtIteration injects one transient machine failure at the start
	// of the given 1-based iteration; the run then recovers from the last
	// checkpoint (requires CheckpointEvery > 0).
	FailAtIteration int
	// CentralDirectory replaces randomized chunk placement with the
	// centralized metadata server of the Figure 15 baseline.
	CentralDirectory bool
	// CombineUpdates applies the program's Combiner (if implemented)
	// inside scatter buffers, the Pregel-style aggregation of §11.1.
	CombineUpdates bool
	// RewriteEdges enables the §6.1 extended model for programs
	// implementing gas.EdgeRewriter: scatter materializes a rewritten
	// next-generation edge set that replaces the old one each iteration.
	// Incompatible with checkpoint rollback and the central directory.
	RewriteEdges bool
	// ReplicateVertices mirrors every vertex chunk on a second storage
	// engine (§6.6: tolerating storage failures "could easily be added
	// by replicating the vertex sets").
	ReplicateVertices bool
	// DirectoryServiceTime is the per-request service time of the
	// central directory (defaults to 50µs).
	DirectoryServiceTime sim.Time
	// PhaseBarrier restores the native driver's two-global-barriers-per-
	// iteration phase layout: every scatter finishes before any gather
	// starts. The default (false) pipelines the boundary — a gather folds
	// each source's update chunks as soon as that source's scatter
	// completes, overlapping with still-running scatters. Results are
	// bit-identical either way (the fold order, not the phase order, is
	// the determinism invariant; see DESIGN.md "Streaming the phase
	// boundary"); only wall-clock and the scheduling-dependent steal
	// counters differ. The DES driver ignores it: its simulated phases
	// are barrier-ordered by construction.
	PhaseBarrier bool
	// ComputeWorkers bounds the worker pool that executes per-chunk
	// compute (decode, GAS kernel, update encoding) off the simulation
	// thread. Zero means GOMAXPROCS. Results, metrics and simulated
	// times are bit-identical for every worker count (see parallel.go);
	// the knob only trades wall-clock time.
	ComputeWorkers int
	// Seed selects the random stream for placement, stealing order and
	// request routing.
	Seed int64
	// BackendFor supplies the storage backend per machine; nil means
	// in-memory.
	BackendFor func(machine int) storage.Backend
	// Interrupt, when non-nil, is polled at each iteration boundary
	// (machine 0's decision point). When it returns true the run stops
	// cleanly at that boundary — in-flight chunk work drains, the
	// simulation unwinds — and Run returns ErrInterrupted. The job
	// service wires a context's Done check here so DELETE on a running
	// job is observed between iterations.
	Interrupt func() bool
	// Progress, when non-nil, is called at the same iteration boundary
	// Interrupt is polled at, with a snapshot of the run's counters so
	// far. The callback only observes state the decision point has
	// already settled — it draws no randomness, consumes no virtual
	// time, and cannot reorder simulated events — so subscribing is
	// guaranteed not to change results, reports or the virtual clock
	// (TestProgressDoesNotPerturbRun). It runs on the simulation
	// goroutine: a slow callback stalls host wall-clock, never
	// simulated time.
	Progress func(Progress)
	// Trace, when non-nil, receives one drive.Span per unit of
	// per-machine work (preprocess, scatter/gather/apply per partition,
	// steal sweeps) the moment the engine settles it. Like Progress the
	// hook is observational-only: it is handed already-settled tallies
	// and cannot reach the run's RNG, clock or mailboxes, so attaching
	// a recorder leaves results, reports and the virtual clock
	// bit-identical (TestTraceDoesNotPerturbRun). Under this driver the
	// callback always runs on the simulation goroutine; the native
	// driver invokes it concurrently from machine goroutines, so shared
	// recorders must be safe for concurrent use (obs.Ring is).
	Trace drive.TraceFn
}

// Progress is the point-in-time counter snapshot handed to
// Config.Progress at each iteration boundary. The final snapshot of a
// converged run matches the run's metrics (same Iterations, bytes and
// steal totals at the last decision point).
type Progress struct {
	// Iterations counts completed iterations (1 at the first boundary).
	Iterations int
	// Now is the virtual clock at the decision point.
	Now sim.Time
	// BytesRead / BytesWritten are the device-level totals so far.
	BytesRead, BytesWritten int64
	// StealsAccepted counts steal proposals accepted so far.
	StealsAccepted int
	// StealsRejected counts steal proposals the §5.4 criterion turned
	// down so far.
	StealsRejected int
	// SpillBytes counts encoded bytes the native driver's update
	// transport has written to spill storage so far (always 0 under the
	// DES driver, whose simulated storage engines account bytes in
	// BytesRead/BytesWritten instead).
	SpillBytes int64
}

// DefaultConfig returns the paper's defaults on the given hardware.
func DefaultConfig(spec cluster.Spec) Config {
	return Config{
		Spec:       spec,
		ChunkBytes: 4 << 20,
		BatchK:     5,
		Alpha:      1,
		Seed:       1,
	}
}

// Normalize validates the configuration and fills engine defaults in
// place. The DES driver applies it on entry to Run; sibling drivers
// (internal/core/native) call it so every driver agrees on defaults and
// rejects the same invalid configurations.
func (c *Config) Normalize() error { return c.normalize() }

func (c *Config) normalize() error {
	if c.Spec.Machines <= 0 {
		return fmt.Errorf("core: config needs at least one machine")
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 4 << 20
	}
	if c.VertexChunkBytes <= 0 {
		c.VertexChunkBytes = c.ChunkBytes
	}
	if c.BatchK <= 0 {
		c.BatchK = 5
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 1000
	}
	if c.DirectoryServiceTime <= 0 {
		c.DirectoryServiceTime = 50 * sim.Microsecond
	}
	if c.FailAtIteration > 0 && c.CheckpointEvery <= 0 {
		return fmt.Errorf("core: failure injection requires checkpointing")
	}
	if c.RewriteEdges && c.CentralDirectory {
		return fmt.Errorf("core: edge rewriting is not supported with the central directory baseline")
	}
	if c.RewriteEdges && c.FailAtIteration > 0 {
		return fmt.Errorf("core: edge rewriting cannot roll back; disable failure injection")
	}
	return nil
}

// window returns the request window phi*k (Equation 3): large enough that
// k requests are at the storage engines despite Rnetwork in-transit time.
func (c *Config) window(clu *cluster.Cluster) int {
	if c.WindowOverride > 0 {
		return c.WindowOverride
	}
	w := int(math.Ceil(clu.Phi(int64(c.ChunkBytes)) * float64(c.BatchK)))
	if w < 1 {
		w = 1
	}
	return w
}

// Utilization returns the theoretical storage-engine utilization
// rho(m, k) = 1 - (1 - k/m)^m of Equation 4, for m machines and batch
// factor k. For k >= m utilization is 1.
func Utilization(m int, k float64) float64 {
	if float64(m) <= k {
		return 1
	}
	return 1 - math.Pow(1-k/float64(m), float64(m))
}

// UtilizationFloor returns the m -> infinity lower bound 1 - e^-k of
// Equation 5.
func UtilizationFloor(k float64) float64 { return 1 - math.Exp(-k) }
