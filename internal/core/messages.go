package core

import (
	"chaos/internal/sim"
	"chaos/internal/storage"
)

// Protocol messages between computation engines, storage engines, steal
// arbiters and the (optional) central directory. Sizes below are the
// modeled wire sizes; control messages are small and dominated by the
// per-hop latency.
const controlMsgBytes = 64

// chunkReq asks a storage engine for any unconsumed chunk of a partition's
// edge or update set (§6.3: the request names a partition, never a
// particular chunk).
type chunkReq struct {
	kind    storage.SetKind
	part    int
	from    int
	replyTo *sim.Mailbox
}

// chunkReply carries one chunk back, or empty=true when the storage engine
// has no unconsumed chunks left for that partition this iteration. The
// chunk is identified by its cursor index on the serving store; its bytes
// were pre-read when the stream's compute tasks were dispatched, so data
// is populated only on the defensive fallback path.
type chunkReply struct {
	kind   storage.SetKind
	part   int
	from   int
	idx    int
	length int
	data   []byte
	empty  bool
}

// writeChunk appends a chunk of edges or updates on a storage engine and
// acknowledges through ack.
type writeChunk struct {
	kind storage.SetKind
	part int
	from int
	data []byte
	ack  *sim.Counter
}

// vertexRead fetches vertex chunk idx of a partition.
type vertexRead struct {
	part, idx int
	from      int
	replyTo   *sim.Mailbox
}

// vertexReadReply returns a vertex chunk.
type vertexReadReply struct {
	part, idx int
	data      []byte
}

// vertexWrite stores vertex chunk idx of a partition and acknowledges.
type vertexWrite struct {
	part, idx int
	from      int
	data      []byte
	ack       *sim.Counter
}

// deleteUpdates discards a partition's consumed update set after gather.
type deleteUpdates struct {
	part int
	from int
	ack  *sim.Counter
}

// resetEdges rewinds the edge-set consumption cursor at iteration end.
type resetEdges struct {
	part int
}

// phase labels the two phases of an iteration.
type phase int

const (
	scatterPhase phase = iota
	gatherPhase
)

func (ph phase) String() string {
	if ph == scatterPhase {
		return "scatter"
	}
	return "gather"
}

// stealPropose is engine from's offer to help with a partition (§5.3).
type stealPropose struct {
	ph      phase
	part    int
	from    int
	replyTo *sim.Mailbox
}

// stealResp is the master's accept/reject answer.
type stealResp struct {
	part     int
	accepted bool
}

// getAccums is the master's request for a stealer's accumulators for a
// partition whose gather the master has finished.
type getAccums struct {
	part    int
	from    int
	replyTo *sim.Mailbox
}

// accumReply carries a stealer's accumulator array (as a typed slice; the
// modeled wire size is len * Program.AccumBytes).
type accumReply struct {
	part   int
	from   int
	accums any
}

// dirOp is a central-directory operation kind (Figure 15 baseline).
type dirOp int

const (
	dirPlace dirOp = iota
	dirLocate
	dirReset
	dirDelete
)

// dirReq is a request to the central directory.
type dirReq struct {
	op      dirOp
	kind    storage.SetKind
	part    int
	from    int
	tag     uint64
	replyTo *sim.Mailbox
}

// dirResp carries the directory's placement/location decision.
type dirResp struct {
	op      dirOp
	kind    storage.SetKind
	part    int
	tag     uint64
	machine int
	ok      bool
}
