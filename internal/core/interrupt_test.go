package core

import (
	"errors"
	"testing"

	"chaos/internal/algorithms"
	"chaos/internal/graph"
)

// TestInterruptStopsAtIterationBoundary: an Interrupt that fires after
// a couple of iterations must end the run with ErrInterrupted, well
// before the algorithm's natural iteration count, without deadlocking
// the simulation.
func TestInterruptStopsAtIterationBoundary(t *testing.T) {
	edges, n := testGraph(8, false)

	// 10 rounds of PageRank normally; the interrupt cuts it to 2.
	polls := 0
	cfg := testConfig(2, n, 8)
	cfg.Interrupt = func() bool {
		polls++
		return polls >= 2 // cancel at the second iteration boundary
	}
	values, run, err := Run(cfg, &algorithms.PageRank{Iterations: 10}, edges, n)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if values != nil || run != nil {
		t.Error("interrupted run must not hand back partial values or stats")
	}
	if polls != 2 {
		t.Errorf("interrupt polled %d times, want exactly 2 (once per boundary)", polls)
	}
}

// TestInterruptNeverFiringChangesNothing: a non-nil Interrupt that
// always reports false must not perturb results or simulated time.
func TestInterruptNeverFiringChangesNothing(t *testing.T) {
	edges, n := testGraph(7, false)
	und := graph.Undirected(edges)
	plain, prep, err := Run(testConfig(2, n, 5), &algorithms.BFS{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(2, n, 5)
	cfg.Interrupt = func() bool { return false }
	got, rep, err := Run(cfg, &algorithms.BFS{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runtime != prep.Runtime || rep.Iterations != prep.Iterations {
		t.Errorf("report drifted: %v/%d vs %v/%d", rep.Runtime, rep.Iterations, prep.Runtime, prep.Iterations)
	}
	for i := range got {
		if got[i].Level != plain[i].Level {
			t.Fatalf("vertex %d: level %d, want %d", i, got[i].Level, plain[i].Level)
		}
	}
}
