package native_test

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"chaos/internal/algorithms"
	"chaos/internal/core"
	"chaos/internal/core/native"
	"chaos/internal/graph"
	"chaos/internal/refalgo"
)

// spillCfg is cfg with the transport forced into out-of-core mode: a
// budget far below the lab-scale update working set, spilling into a
// test-private directory so leftovers are detectable.
func spillCfg(t *testing.T, m int, n uint64, vbytes int) core.Config {
	t.Helper()
	c := cfg(m, n, vbytes)
	c.TransportBudgetBytes = 1 << 10 // ~4 KiB chunks, so every phase spills
	c.SpillDir = t.TempDir()
	return c
}

// requireNoSpillLeftovers fails when anything is left under the run's
// spill directory: every run — completed, interrupted or rolled back —
// must delete its temp dir.
func requireNoSpillLeftovers(t *testing.T, dir string) {
	t.Helper()
	var left []string
	err := filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if p != dir {
			left = append(left, p)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking spill dir: %v", err)
	}
	if len(left) > 0 {
		t.Fatalf("spill files left behind: %v", left)
	}
}

// TestNativeSpillMatchesInMemory checks the out-of-core transport is
// invisible to results: a run with a budget small enough to spill every
// phase produces bit-identical vertex values to the unbudgeted zero-copy
// run, because spilled chunks stream back in the same (src, chunk) fold
// order they were produced in.
func TestNativeSpillMatchesInMemory(t *testing.T) {
	edges, n := rmatEdges(7, false, 21)
	mem, _, err := native.Run(cfg(4, n, 8), &algorithms.PageRank{Iterations: 5}, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	c := spillCfg(t, 4, n, 8)
	spilled, run, err := native.Run(c, &algorithms.PageRank{Iterations: 5}, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	if run.SpillBytes == 0 || run.SpillFiles == 0 {
		t.Fatalf("budget %d did not force spilling: %+v", c.TransportBudgetBytes, run)
	}
	if !reflect.DeepEqual(mem, spilled) {
		t.Error("out-of-core run diverged from the in-memory run")
	}
	requireNoSpillLeftovers(t, c.SpillDir)
}

// TestNativeSpillMatchesReference runs a forced-spill BFS against the
// reference implementation (exact integer results, so any fold-order
// corruption in the spill round-trip is loud).
func TestNativeSpillMatchesReference(t *testing.T) {
	edges, n := rmatEdges(8, false, 7)
	und := graph.Undirected(edges)
	want := refalgo.BFSLevels(graph.BuildAdjacency(und, n), 0)
	for _, m := range machineCounts {
		c := spillCfg(t, m, n, 5)
		values, run, err := native.Run(c, &algorithms.BFS{}, und, n)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if run.SpillBytes == 0 {
			t.Fatalf("m=%d: no spill traffic recorded", m)
		}
		for i := range values {
			if values[i].Level != want[i] {
				t.Fatalf("m=%d vertex %d: level %d, want %d", m, i, values[i].Level, want[i])
			}
		}
		requireNoSpillLeftovers(t, c.SpillDir)
	}
}

// TestNativeSpillWeightedMatchesReference covers the float fold path
// (SSSP) under forced spilling.
func TestNativeSpillWeightedMatchesReference(t *testing.T) {
	edges, n := rmatEdges(7, true, 13)
	und := graph.Undirected(edges)
	want := refalgo.SSSPDistances(graph.BuildAdjacency(und, n), 0)
	c := spillCfg(t, 2, n, 5)
	values, _, err := native.Run(c, &algorithms.SSSP{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		got, exp := values[i].Dist, want[i]
		if exp == algorithms.Inf {
			if got != algorithms.Inf {
				t.Fatalf("vertex %d: dist %g, want unreachable", i, got)
			}
			continue
		}
		if math.Abs(float64(got-exp)) > 1e-4*math.Max(1, float64(exp)) {
			t.Fatalf("vertex %d: dist %g, want %g", i, got, exp)
		}
	}
	requireNoSpillLeftovers(t, c.SpillDir)
}

// TestNativeSpillCleanupOnInterrupt: a run stopped mid-flight at an
// iteration boundary still deletes its spill directory.
func TestNativeSpillCleanupOnInterrupt(t *testing.T) {
	edges, n := rmatEdges(7, false, 5)
	c := spillCfg(t, 2, n, 8)
	boundaries := 0
	c.Interrupt = func() bool {
		boundaries++
		return boundaries >= 2
	}
	_, _, err := native.Run(c, &algorithms.PageRank{Iterations: 10}, edges, n)
	if err != core.ErrInterrupted {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	requireNoSpillLeftovers(t, c.SpillDir)
}

// TestNativeSpillCleanupAfterRollback: checkpoint rollback re-executes
// iterations (fresh spill traffic each attempt) and the run still ends
// with correct results and an empty spill directory.
func TestNativeSpillCleanupAfterRollback(t *testing.T) {
	edges, n := rmatEdges(7, false, 9)
	und := graph.Undirected(edges)
	want := refalgo.BFSLevels(graph.BuildAdjacency(und, n), 0)
	c := spillCfg(t, 2, n, 5)
	c.CheckpointEvery = 1
	c.FailAtIteration = 2
	values, run, err := native.Run(c, &algorithms.BFS{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	if run.Recoveries != 1 {
		t.Errorf("recoveries = %d, want 1", run.Recoveries)
	}
	for i := range values {
		if values[i].Level != want[i] {
			t.Fatalf("vertex %d after recovery: level %d, want %d", i, values[i].Level, want[i])
		}
	}
	requireNoSpillLeftovers(t, c.SpillDir)
}

// TestNativeSpillSurvivesRestart simulates the process-restart story:
// a fresh run pointed at a spill dir holding a dead run's orphan
// directory neither trips over it nor deletes it (boot-time sweeping is
// the service's job), and cleans up only its own files.
func TestNativeSpillSurvivesRestart(t *testing.T) {
	edges, n := rmatEdges(7, false, 3)
	c := spillCfg(t, 2, n, 8)
	orphan := filepath.Join(c.SpillDir, "chaos-spill-dead")
	if err := os.MkdirAll(orphan, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(orphan, "upd.s0000.d0001"), []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := native.Run(c, &algorithms.PageRank{Iterations: 3}, edges, n); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); err != nil {
		t.Fatalf("run disturbed another run's spill dir: %v", err)
	}
	entries, err := os.ReadDir(c.SpillDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("spill dir should hold only the orphan, got %d entries", len(entries))
	}
}

// TestNativeUnbudgetedRunNeverSpills pins the fast path: without a
// budget the transport stays in memory and reports zero spill traffic.
func TestNativeUnbudgetedRunNeverSpills(t *testing.T) {
	if os.Getenv("CHAOS_NATIVE_SPILL_BUDGET") != "" {
		t.Skip("package-wide forced spilling is on")
	}
	edges, n := rmatEdges(7, false, 3)
	c := cfg(2, n, 8)
	c.SpillDir = t.TempDir()
	_, run, err := native.Run(c, &algorithms.PageRank{Iterations: 3}, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	if run.SpillBytes != 0 || run.SpillFiles != 0 {
		t.Fatalf("in-memory run reported spill traffic: %+v", run)
	}
	requireNoSpillLeftovers(t, c.SpillDir)
}
