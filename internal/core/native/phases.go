package native

import (
	"slices"
	"sync"

	"chaos/internal/core/drive"
	"chaos/internal/graph"
)

// ---------------------------------------------------------------------------
// Pre-processing (§3): one pass over the input edge list, binning edges
// by source partition into chunks, counting out-degrees if the program
// wants them, then initializing the resident vertex sets. Machines bin
// their input slices concurrently; per-partition chunk lists are
// concatenated in machine order so the edge stream every later scatter
// sees is deterministic.

func (r *run[V, U, A]) preprocess(edges []graph.Edge) {
	np := r.layout.NumPartitions
	perMachine := drive.SplitInput(edges, r.nm)
	edgeSize := r.kern.EdgeFmt.EdgeSize()
	limit := drive.SpillLimit(r.cfg.ChunkBytes, edgeSize)
	needDeg := r.prog.NeedsDegrees()

	type binned struct {
		chunks [][][]byte // per partition
		deg    [][]uint32 // per partition, nil unless needDeg
	}
	bins := make([]binned, r.nm)
	var wg sync.WaitGroup
	wg.Add(r.nm)
	for m := 0; m < r.nm; m++ {
		go func(m int) {
			defer wg.Done()
			t0 := r.elapsed()
			b := &bins[m]
			b.chunks = make([][][]byte, np)
			if needDeg {
				b.deg = make([][]uint32, np)
			}
			tails := make([][]byte, np)
			for _, e := range perMachine[m] {
				p := r.layout.Of(e.Src)
				buf := tails[p]
				off := len(buf)
				buf = append(buf, make([]byte, edgeSize)...)
				r.kern.EdgeFmt.Encode(buf[off:], e)
				if len(buf) >= limit {
					b.chunks[p] = append(b.chunks[p], buf)
					buf = nil
				}
				tails[p] = buf
				if needDeg {
					deg := b.deg[p]
					if deg == nil {
						deg = make([]uint32, r.layout.Size(p))
						b.deg[p] = deg
					}
					lo, _ := r.layout.Range(p)
					deg[e.Src-lo]++
				}
			}
			for p, buf := range tails {
				if len(buf) > 0 {
					b.chunks[p] = append(b.chunks[p], buf)
				}
			}
			if r.cfg.Trace != nil {
				var nchunks int
				var binnedBytes int64
				for _, chunks := range b.chunks {
					nchunks += len(chunks)
					binnedBytes += storedBytes(chunks)
				}
				r.cfg.Trace(drive.Span{
					Iter: -1, Machine: m, Part: -1, Phase: drive.PhasePreprocess,
					Start: int64(t0), Dur: int64(r.elapsed() - t0),
					Chunks:  nchunks,
					BytesIn: int64(len(perMachine[m]) * edgeSize), BytesOut: binnedBytes,
				})
			}
		}(m)
	}
	wg.Wait()

	// Concatenate in machine order (the deterministic stream order) and
	// fold degrees.
	var degAcc [][]uint32
	if needDeg {
		degAcc = make([][]uint32, np)
	}
	for m := range bins {
		for p, chunks := range bins[m].chunks {
			for _, c := range chunks {
				r.edges[p] = append(r.edges[p], c)
				r.bytesWritten.Add(int64(len(c)))
			}
		}
		if needDeg {
			for p, deg := range bins[m].deg {
				if deg == nil {
					continue
				}
				if degAcc[p] == nil {
					degAcc[p] = make([]uint32, r.layout.Size(p))
				}
				for i, d := range deg {
					degAcc[p][i] += d
				}
			}
		}
	}

	// Initialize vertex values straight into the resident store. Init
	// may keep private program state (it runs on the simulation thread
	// under the DES driver), so this stays on one goroutine. No bytes
	// move — the store is the decoded values themselves — so nothing is
	// tallied here; vertex bytes only count where the codec runs
	// (checkpoints and their restore).
	for p := 0; p < np; p++ {
		size := r.layout.Size(p)
		if size == 0 {
			continue
		}
		lo, _ := r.layout.Range(p)
		verts := make([]V, size)
		var deg []uint32
		if needDeg {
			deg = degAcc[p]
		}
		for i := range verts {
			var d uint32
			if deg != nil {
				d = deg[i]
			}
			r.prog.Init(lo+graph.VertexID(i), &verts[i], d)
		}
		r.verts[p] = verts
	}
}

// ---------------------------------------------------------------------------
// Checkpoint encode: the one recurring place vertex bytes still move.

// encodeVertices encodes partition p's resident vertex set into
// fixed-geometry chunks for the §6.6 checkpoint shadow copy (phase 1),
// returning the chunk list and its total encoded bytes.
func (r *run[V, U, A]) encodeVertices(p int) ([][]byte, int64) {
	verts := r.verts[p]
	per := r.cfg.VertexChunkBytes / r.kern.VBytes
	if per < 1 {
		per = 1
	}
	n := (len(verts) + per - 1) / per
	chunks := make([][]byte, 0, n)
	var encoded int64
	for idx := 0; idx < n; idx++ {
		lo := idx * per
		hi := min(lo+per, len(verts))
		data := r.kern.VCodec.EncodeSlice(verts[lo:hi])
		chunks = append(chunks, data)
		encoded += int64(len(data))
	}
	r.bytesWritten.Add(encoded)
	r.ckptBytes.Add(encoded)
	return chunks, encoded
}

// storedBytes sums a chunk list's encoded lengths (flight-recorder
// tallies and the scatter steal criterion's D).
func storedBytes(chunks [][]byte) int64 {
	var n int64
	for _, c := range chunks {
		n += int64(len(c))
	}
	return n
}

// ---------------------------------------------------------------------------
// Scatter phase (§5.1): stream the partition's edge chunks, run the
// shared typed scatter kernel on the compute pool over the resident
// vertex values, and merge each chunk's result — in the deterministic
// chunk order — into the update transport: record slices move into the
// per-(src, dst) buckets zero-copy, and only a spilling transport ever
// encodes them.

func (r *run[V, U, A]) scatterPartition(iter, mach, p int, stolen bool) {
	kern := r.kern
	t0 := r.elapsed()
	var bytesIn, bytesOut int64
	verts := r.verts[p]
	chunks := r.edges[p]

	// Dispatch every chunk's pure kernel to the shared pool, then merge
	// in chunk order (the same dispatch-then-join pattern as the DES
	// driver's pre-read streams).
	type scatterChunk struct {
		drive.Task
		out drive.ScatterOut[U]
	}
	tasks := make([]*scatterChunk, len(chunks))
	for i, data := range chunks {
		sc := &scatterChunk{}
		data := data
		sc.Fn = func() { kern.ScatterChunkTyped(iter, p, verts, data, &sc.out) }
		tasks[i] = sc
		r.pool.Submit(&sc.Task)
		r.bytesRead.Add(int64(len(data)))
		bytesIn += int64(len(data))
	}

	combined := r.combined // nil unless combining
	var combinedPer int
	if kern.Combiner != nil {
		if combined[p] == nil {
			combined[p] = make([]map[graph.VertexID]U, r.layout.NumPartitions)
		}
		combinedPer = max(r.cfg.ChunkBytes/kern.UpdBytes, 1)
	}
	var nextTail []byte
	edgeLimit := drive.SpillLimit(r.cfg.ChunkBytes, kern.EdgeFmt.EdgeSize())
	mergeT0 := r.elapsed()
	var spillBytes int64
	var spillChunks int

	for _, sc := range tasks {
		sc.Wait()
		out := &sc.out
		if kern.Rewriter != nil && len(out.EdgesNext) > 0 {
			bytesOut += int64(len(out.EdgesNext))
			nextTail = r.appendSpill(&r.edgesNext[p], nextTail, out.EdgesNext, edgeLimit)
		}
		if kern.Combiner != nil {
			for tp, chunkMap := range out.Combined {
				if len(chunkMap) == 0 {
					continue
				}
				mp := combined[p][tp]
				if mp == nil {
					mp = make(map[graph.VertexID]U, combinedPer)
					combined[p][tp] = mp
				}
				for dst, val := range chunkMap {
					if old, ok := mp[dst]; ok {
						mp[dst] = kern.Combiner.Combine(old, val)
					} else {
						mp[dst] = val
					}
				}
				if len(mp) >= combinedPer {
					enc, sb, sn := r.flushCombined(p, tp, mp)
					bytesOut += enc
					spillBytes += sb
					spillChunks += sn
				}
			}
		}
		for tp, recs := range out.Typed {
			if len(recs) == 0 {
				continue
			}
			sz := int64(len(recs)) * int64(kern.UpdBytes)
			bytesOut += sz
			r.bytesWritten.Add(sz)
			// Ownership of the record slice transfers to the transport;
			// nil the slot so ReleaseScatterOut leaves it alone.
			out.Typed[tp] = nil
			sb, sn := r.tr.Put(p, tp, recs)
			spillBytes += sb
			spillChunks += sn
		}
		kern.ReleaseScatterOut(out)
	}

	// Flush the remaining combined updates at phase end.
	if kern.Combiner != nil {
		for tp, mp := range combined[p] {
			if len(mp) > 0 {
				enc, sb, sn := r.flushCombined(p, tp, mp)
				bytesOut += enc
				spillBytes += sb
				spillChunks += sn
			}
		}
	}
	if len(nextTail) > 0 {
		r.putEdgeNextChunk(p, nextTail)
	}
	if spillChunks > 0 && r.cfg.Trace != nil {
		r.cfg.Trace(drive.Span{
			Iter: iter, Machine: mach, Part: p, Phase: drive.PhaseSpill, Stolen: stolen,
			Start: int64(mergeT0), Dur: int64(r.elapsed() - mergeT0),
			Chunks: spillChunks, BytesOut: spillBytes,
		})
	}
	if r.cfg.Trace != nil {
		r.cfg.Trace(drive.Span{
			Iter: iter, Machine: mach, Part: p, Phase: drive.PhaseScatter, Stolen: stolen,
			Start: int64(t0), Dur: int64(r.elapsed() - t0),
			Chunks: len(chunks), BytesIn: bytesIn, BytesOut: bytesOut,
		})
	}
}

// appendSpill appends b to buf, pushing full chunks of exactly limit
// bytes into dst as they fill. Spilled slices join the store and must
// not be reused, so the remainder is copied to fresh backing.
func (r *run[V, U, A]) appendSpill(dst *[][]byte, buf, b []byte, limit int) []byte {
	buf = append(buf, b...)
	for len(buf) >= limit {
		chunk := buf[:limit:limit]
		*dst = append(*dst, chunk)
		r.bytesWritten.Add(int64(limit))
		rest := buf[limit:]
		if len(rest) == 0 {
			return nil
		}
		buf = append(make([]byte, 0, limit), rest...)
	}
	return buf
}

func (r *run[V, U, A]) putEdgeNextChunk(p int, data []byte) {
	r.edgesNext[p] = append(r.edgesNext[p], data)
	r.bytesWritten.Add(int64(len(data)))
}

// flushCombined hands one destination partition's combined updates to
// the transport as a single sorted chunk, returning the
// encoded-equivalent bytes plus any spill the Put triggered. Keys are
// sorted so the record order — and with it downstream gather order and
// any float folds — is deterministic (identical discipline to the DES
// driver). The map is cleared, not discarded: it lives in r.combined
// and is reused across iterations.
func (r *run[V, U, A]) flushCombined(src, dst int, mp map[graph.VertexID]U) (encoded, spilledBytes int64, spilledChunks int) {
	if len(mp) == 0 {
		return 0, 0, 0
	}
	dsts := make([]graph.VertexID, 0, len(mp))
	for d := range mp {
		dsts = append(dsts, d)
	}
	slices.Sort(dsts)
	recs := r.kern.GrabRecs()
	for _, d := range dsts {
		recs = append(recs, drive.UpdRec[U]{Dst: d, Val: mp[d]})
	}
	clear(mp)
	encoded = int64(len(recs)) * int64(r.kern.UpdBytes)
	r.bytesWritten.Add(encoded)
	spilledBytes, spilledChunks = r.tr.Put(src, dst, recs)
	return encoded, spilledBytes, spilledChunks
}

// ---------------------------------------------------------------------------
// Gather + apply phase (§5.2, §5.3): stream the partition's update
// chunks in (source partition, chunk) order — the deterministic fold
// order — decoding and folding each source's chunks as soon as that
// source's scatter completes, then apply to the resident vertex set.

func (r *run[V, U, A]) gatherPartition(iter, mach, p int, stolen bool) {
	t0 := r.elapsed()
	var bytesIn int64
	var nchunks int
	verts := r.verts[p]
	accums := r.accums[p]
	for i := range accums {
		accums[i] = r.prog.InitAccum()
	}
	lo, _ := r.layout.Range(p)

	// Stream the transport's chunks for this partition source by source:
	// wait for each source's scatter-completion signal, drain its bucket
	// (the streaming edge of the pipeline — in the pinned (source
	// partition, chunk) order, sources ascending), and dispatch each
	// chunk's Load to the pool (a slice hand-back for resident chunks, a
	// read+decode for spilled ones), with the fold into this partition's
	// accumulators chained behind it in that same order — the DES
	// driver's exact gather pattern, minus the global barrier. Folds are
	// the bulk of gather compute, so running them as pool tasks keeps
	// native jobs inside the scheduler's shared compute budget instead
	// of doing the heavy lifting on unbudgeted machine goroutines. The
	// channel waits are on this machine goroutine, never on pool
	// workers, so the pool cannot deadlock on them. Under
	// Config.PhaseBarrier every channel is already closed and the loop
	// degenerates to the classic full drain.
	type gatherChunk struct {
		drive.Task
		recs []drive.UpdRec[U]
	}
	var tail *drive.Task
	for src := 0; src < r.layout.NumPartitions; src++ {
		<-r.scatterDone[src]
		pending := r.tr.DrainFrom(p, src)
		for i := range pending {
			pc := &pending[i]
			gc := &gatherChunk{}
			gc.Fn = func() { gc.recs = pc.Load() }
			r.pool.Submit(&gc.Task)
			r.bytesRead.Add(pc.Bytes)
			nchunks++
			bytesIn += pc.Bytes
			ft := &drive.Task{Prev: tail, Fn: func() {
				gc.Wait() // load complete
				for i := range gc.recs {
					u := &gc.recs[i]
					accums[u.Dst-lo] = r.prog.Gather(accums[u.Dst-lo], u.Val, &verts[u.Dst-lo])
				}
				pc.Release(gc.recs)
				gc.recs = nil
			}}
			r.pool.Submit(ft)
			tail = ft
		}
	}
	if tail != nil {
		tail.Wait()
	}
	if r.cfg.Trace != nil {
		r.cfg.Trace(drive.Span{
			Iter: iter, Machine: mach, Part: p, Phase: drive.PhaseGather, Stolen: stolen,
			Start: int64(t0), Dur: int64(r.elapsed() - t0),
			Chunks: nchunks, BytesIn: bytesIn,
		})
	}
	applyT0 := r.elapsed()

	// Apply (serialized across partitions; see applyMu). The source loop
	// above waited on all NumPartitions scatterDone channels, so Apply —
	// which mutates the resident values scatters read — still runs
	// strictly after every scatter of this iteration, pipelined or not.
	r.applyMu.Lock()
	var changed uint64
	for i := range verts {
		if r.prog.Apply(iter, lo+graph.VertexID(i), &verts[i], accums[i]) {
			changed++
		}
	}
	r.applyMu.Unlock()
	r.changed.Add(changed)

	// Stage the checkpoint shadow copy (phase 1 of §6.6) — the one
	// recurring boundary vertex bytes still cross under the resident
	// store.
	var stored int64
	if r.checkpointDue(iter) {
		r.ckptPending[p], stored = r.encodeVertices(p)
	}
	if r.cfg.Trace != nil {
		r.cfg.Trace(drive.Span{
			Iter: iter, Machine: mach, Part: p, Phase: drive.PhaseApply, Stolen: stolen,
			Start: int64(applyT0), Dur: int64(r.elapsed() - applyT0),
			BytesOut: stored,
		})
	}
	// The consumed update set was deleted by the drains above (§6.1):
	// this goroutine owns column p of the transport's buckets from each
	// source's completion signal on, and the last released spilled chunk
	// truncates each bucket's spill stream.
}
