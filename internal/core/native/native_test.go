package native_test

import (
	"math"
	"os"
	"reflect"
	"strconv"
	"testing"

	"chaos/internal/algorithms"
	"chaos/internal/cluster"
	"chaos/internal/core"
	"chaos/internal/core/native"
	"chaos/internal/graph"
	"chaos/internal/refalgo"
	"chaos/internal/rmat"
)

// cfg builds a lab-scale config forcing ~2 partitions per machine, the
// same shape the DES driver's equivalence tests use.
//
// CHAOS_NATIVE_SPILL_BUDGET (bytes), when set, forces the update
// transport into out-of-core mode for every test in this package: CI
// uses it to re-run the whole refalgo-equivalence suite with real
// spill-file traffic under -race. Bytes rather than MiB because the
// lab-scale working sets here are a few KiB — a 1 MiB floor would never
// spill.
func cfg(m int, n uint64, vbytes int) core.Config {
	c := core.DefaultConfig(cluster.SSD(m))
	c.ChunkBytes = 4 << 10
	c.VertexChunkBytes = 4 << 10
	c.MemBudget = int64(n)*int64(vbytes)/int64(2*m) + int64(vbytes)
	if v := os.Getenv("CHAOS_NATIVE_SPILL_BUDGET"); v != "" {
		b, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			panic("bad CHAOS_NATIVE_SPILL_BUDGET: " + err.Error())
		}
		c.TransportBudgetBytes = b
	}
	return c
}

func rmatEdges(scale int, weighted bool, seed int64) ([]graph.Edge, uint64) {
	g := rmat.New(scale, seed)
	g.Weighted = weighted
	return g.Generate(), g.NumVertices()
}

// machineCounts is the sweep every per-algorithm equivalence test runs:
// single machine, a small cluster, and a wider cluster (each with ~2
// partitions per machine, so 1, 4 and 16 partitions).
var machineCounts = []int{1, 2, 8}

func TestNativeBFSMatchesReference(t *testing.T) {
	edges, n := rmatEdges(8, false, 7)
	und := graph.Undirected(edges)
	want := refalgo.BFSLevels(graph.BuildAdjacency(und, n), 0)
	for _, m := range machineCounts {
		values, run, err := native.Run(cfg(m, n, 5), &algorithms.BFS{}, und, n)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		for i := range values {
			if values[i].Level != want[i] {
				t.Fatalf("m=%d vertex %d: level %d, want %d", m, i, values[i].Level, want[i])
			}
		}
		if run.Iterations == 0 || run.Runtime == 0 {
			t.Errorf("m=%d: stats not recorded: %+v", m, run)
		}
	}
}

func TestNativeWCCMatchesReference(t *testing.T) {
	edges, n := rmatEdges(8, false, 11)
	und := graph.Undirected(edges)
	want := refalgo.WCCLabels(graph.BuildAdjacency(und, n))
	for _, m := range machineCounts {
		values, _, err := native.Run(cfg(m, n, 5), &algorithms.WCC{}, und, n)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		for i := range values {
			if values[i].Label != want[i] {
				t.Fatalf("m=%d vertex %d: label %d, want %d", m, i, values[i].Label, want[i])
			}
		}
	}
}

func TestNativeSSSPMatchesReference(t *testing.T) {
	edges, n := rmatEdges(8, true, 13)
	und := graph.Undirected(edges)
	want := refalgo.SSSPDistances(graph.BuildAdjacency(und, n), 0)
	for _, m := range machineCounts {
		values, _, err := native.Run(cfg(m, n, 5), &algorithms.SSSP{}, und, n)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		for i := range values {
			got, exp := values[i].Dist, want[i]
			if exp == algorithms.Inf {
				if got != algorithms.Inf {
					t.Fatalf("m=%d vertex %d: dist %g, want unreachable", m, i, got)
				}
				continue
			}
			if math.Abs(float64(got-exp)) > 1e-4*math.Max(1, float64(exp)) {
				t.Fatalf("m=%d vertex %d: dist %g, want %g", m, i, got, exp)
			}
		}
	}
}

func TestNativePageRankMatchesReference(t *testing.T) {
	edges, n := rmatEdges(8, false, 15)
	want := refalgo.PageRank(graph.BuildAdjacency(edges, n), 5)
	for _, m := range machineCounts {
		values, _, err := native.Run(cfg(m, n, 8), &algorithms.PageRank{Iterations: 5}, edges, n)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		for i := range values {
			if math.Abs(float64(values[i].Rank)-want[i]) > 1e-3*math.Max(1, want[i]) {
				t.Fatalf("m=%d vertex %d: rank %g, want %g", m, i, values[i].Rank, want[i])
			}
		}
	}
}

func TestNativeMISMatchesReference(t *testing.T) {
	edges, n := rmatEdges(7, false, 17)
	und := graph.Undirected(edges)
	adj := graph.BuildAdjacency(und, n)
	for _, m := range machineCounts {
		prog := &algorithms.MIS{}
		values, _, err := native.Run(cfg(m, n, 2), prog, und, n)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		in := make([]bool, n)
		for i := range values {
			in[i] = prog.InSet(values[i])
		}
		if !refalgo.IsIndependentSet(adj, in) {
			t.Fatalf("m=%d: result is not independent", m)
		}
		if !refalgo.IsMaximalIndependentSet(adj, in) {
			t.Fatalf("m=%d: result is not maximal", m)
		}
	}
}

func TestNativeMCSTMatchesReference(t *testing.T) {
	edges, n := rmatEdges(7, true, 21)
	und := graph.Undirected(edges)
	wantW, wantE := refalgo.MSTWeight(graph.BuildAdjacency(und, n))
	for _, m := range machineCounts {
		prog := &algorithms.MCST{}
		_, _, err := native.Run(cfg(m, n, 8), prog, und, n)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if prog.Edges != wantE {
			t.Fatalf("m=%d: %d forest edges, want %d", m, prog.Edges, wantE)
		}
		if math.Abs(prog.Total-wantW) > 1e-3*math.Max(1, wantW) {
			t.Fatalf("m=%d: forest weight %g, want %g", m, prog.Total, wantW)
		}
	}
}

func TestNativeSCCMatchesReference(t *testing.T) {
	edges, n := rmatEdges(7, false, 23)
	want := refalgo.SCCIDs(graph.BuildAdjacency(edges, n))
	aug := algorithms.AugmentEdges(edges)
	for _, m := range machineCounts {
		values, _, err := native.Run(cfg(m, n, 11), &algorithms.SCC{}, aug, n)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		// Compare partitions: same grouping, arbitrary labels.
		toRef := make(map[uint32]uint32)
		toGot := make(map[uint32]uint32)
		for i := range values {
			g, w := values[i].SCC, want[i]
			if r, ok := toRef[g]; ok && r != w {
				t.Fatalf("m=%d vertex %d: SCC label %d maps to both %d and %d", m, i, g, r, w)
			}
			toRef[g] = w
			if r, ok := toGot[w]; ok && r != g {
				t.Fatalf("m=%d vertex %d: reference SCC %d maps to both %d and %d", m, i, w, r, g)
			}
			toGot[w] = g
			if !values[i].Done {
				t.Fatalf("m=%d: vertex %d left undecided", m, i)
			}
		}
	}
}

func TestNativeConductanceMatchesReference(t *testing.T) {
	edges, n := rmatEdges(8, false, 29)
	adj := graph.BuildAdjacency(edges, n)
	want := refalgo.Conductance(adj, algorithms.InSubset)
	for _, m := range machineCounts {
		prog := &algorithms.Conductance{}
		values, run, err := native.Run(cfg(m, n, 13), prog, edges, n)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if got := prog.Aggregate(values); math.Abs(got-want) > 1e-9 {
			t.Fatalf("m=%d: conductance %g, want %g", m, got, want)
		}
		if run.Iterations != 1 {
			t.Errorf("m=%d: conductance took %d iterations, want 1", m, run.Iterations)
		}
	}
}

func TestNativeSpMVMatchesReference(t *testing.T) {
	edges, n := rmatEdges(8, true, 31)
	adj := graph.BuildAdjacency(edges, n)
	for _, m := range machineCounts {
		prog := &algorithms.SpMV{}
		values, _, err := native.Run(cfg(m, n, 8), prog, edges, n)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		x := make([]float32, n)
		for i := range x {
			x[i] = values[i].X
		}
		want := refalgo.SpMV(adj, x)
		for i := range values {
			if math.Abs(float64(values[i].Y)-want[i]) > 1e-3*math.Max(1, math.Abs(want[i])) {
				t.Fatalf("m=%d vertex %d: y %g, want %g", m, i, values[i].Y, want[i])
			}
		}
	}
}

func TestNativeBPMatchesReference(t *testing.T) {
	edges, n := rmatEdges(7, true, 37)
	for _, m := range machineCounts {
		prog := &algorithms.BP{Iterations: 4}
		values, _, err := native.Run(cfg(m, n, 4), prog, edges, n)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		want := refalgo.BPBeliefs(graph.BuildAdjacency(edges, n), prog.Prior, 4)
		for i := range values {
			if math.Abs(float64(values[i].Belief-want[i])) > 1e-2 {
				t.Fatalf("m=%d vertex %d: belief %g, want %g", m, i, values[i].Belief, want[i])
			}
		}
	}
}

// TestNativeAgreesWithSimDriver runs the two drivers over the same graph
// with the same seed and compares final vertex values: exact equality
// for the discrete-valued algorithms (their folds are min/max/flag
// operations, order-independent in exact arithmetic), small relative
// tolerance where floating-point sums fold in different orders.
func TestNativeAgreesWithSimDriver(t *testing.T) {
	edges, n := rmatEdges(7, false, 42)
	und := graph.Undirected(edges)

	simBFS, _, err := core.Run(cfg(4, n, 5), &algorithms.BFS{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	natBFS, _, err := native.Run(cfg(4, n, 5), &algorithms.BFS{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(simBFS, natBFS) {
		t.Error("BFS: drivers disagree on final vertex values")
	}

	simWCC, _, err := core.Run(cfg(4, n, 5), &algorithms.WCC{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	natWCC, _, err := native.Run(cfg(4, n, 5), &algorithms.WCC{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(simWCC, natWCC) {
		t.Error("WCC: drivers disagree on final vertex values")
	}

	simPR, _, err := core.Run(cfg(4, n, 8), &algorithms.PageRank{Iterations: 5}, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	natPR, _, err := native.Run(cfg(4, n, 8), &algorithms.PageRank{Iterations: 5}, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range simPR {
		a, b := float64(simPR[i].Rank), float64(natPR[i].Rank)
		if math.Abs(a-b) > 1e-4*math.Max(1, math.Abs(a)) {
			t.Fatalf("PR vertex %d: sim %g vs native %g", i, a, b)
		}
	}
}

// TestNativeDeterministicForSeed checks run-to-run reproducibility: the
// fold orders that reach floating point are fixed, so two native runs of
// the same configuration produce bit-identical values even though
// goroutine scheduling differs.
func TestNativeDeterministicForSeed(t *testing.T) {
	edges, n := rmatEdges(7, false, 3)
	c := cfg(4, n, 8)
	v1, _, err := native.Run(c, &algorithms.PageRank{Iterations: 5}, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	v2, _, err := native.Run(c, &algorithms.PageRank{Iterations: 5}, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v1, v2) {
		t.Error("two native runs of the same seed diverged")
	}
}

func TestNativeInterruptStopsAtBoundary(t *testing.T) {
	edges, n := rmatEdges(7, false, 5)
	c := cfg(2, n, 8)
	boundaries := 0
	c.Interrupt = func() bool {
		boundaries++
		return boundaries >= 2
	}
	_, _, err := native.Run(c, &algorithms.PageRank{Iterations: 10}, edges, n)
	if err != core.ErrInterrupted {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if boundaries != 2 {
		t.Errorf("interrupt polled %d times, want 2", boundaries)
	}
}

func TestNativeProgressReporting(t *testing.T) {
	edges, n := rmatEdges(7, false, 5)
	c := cfg(2, n, 8)
	var ticks []core.Progress
	c.Progress = func(p core.Progress) { ticks = append(ticks, p) }
	_, run, err := native.Run(c, &algorithms.PageRank{Iterations: 4}, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(ticks) != run.Iterations {
		t.Fatalf("%d progress ticks for %d iterations", len(ticks), run.Iterations)
	}
	last := ticks[len(ticks)-1]
	if last.Iterations != run.Iterations {
		t.Errorf("last tick reports %d iterations, run has %d", last.Iterations, run.Iterations)
	}
	if last.BytesRead == 0 || last.Now == 0 {
		t.Errorf("final tick not populated: %+v", last)
	}
	if last.StealsRejected != run.StealsRejected {
		t.Errorf("last tick reports %d steals rejected, run has %d", last.StealsRejected, run.StealsRejected)
	}
	if last.SpillBytes != run.SpillBytes {
		t.Errorf("last tick reports %d spill bytes, run has %d", last.SpillBytes, run.SpillBytes)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i].Iterations != ticks[i-1].Iterations+1 || ticks[i].Now < ticks[i-1].Now {
			t.Errorf("ticks not monotonic: %+v -> %+v", ticks[i-1], ticks[i])
		}
	}
}

// TestNativeCheckpointRecovery injects a transient failure and checks the
// run recovers from the last committed checkpoint with correct results.
func TestNativeCheckpointRecovery(t *testing.T) {
	edges, n := rmatEdges(7, false, 9)
	und := graph.Undirected(edges)
	want := refalgo.BFSLevels(graph.BuildAdjacency(und, n), 0)
	c := cfg(2, n, 5)
	c.CheckpointEvery = 1
	c.FailAtIteration = 2 // transient failure after a checkpoint exists
	values, run, err := native.Run(c, &algorithms.BFS{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	if run.Recoveries != 1 {
		t.Errorf("recoveries = %d, want 1", run.Recoveries)
	}
	if run.CheckpointBytes == 0 {
		t.Error("no checkpoint bytes recorded")
	}
	for i := range values {
		if values[i].Level != want[i] {
			t.Fatalf("vertex %d after recovery: level %d, want %d", i, values[i].Level, want[i])
		}
	}
}

func TestNativeCombinerPreservesResults(t *testing.T) {
	edges, n := rmatEdges(7, false, 15)
	want := refalgo.PageRank(graph.BuildAdjacency(edges, n), 5)
	c := cfg(2, n, 8)
	c.CombineUpdates = true
	values, _, err := native.Run(c, &algorithms.PageRank{Iterations: 5}, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		if math.Abs(float64(values[i].Rank)-want[i]) > 1e-3*math.Max(1, want[i]) {
			t.Fatalf("vertex %d: rank %g, want %g", i, values[i].Rank, want[i])
		}
	}
}

func TestNativeEdgeRewritingPreservesMCST(t *testing.T) {
	edges, n := rmatEdges(7, true, 5)
	und := graph.Undirected(edges)
	wantW, wantE := refalgo.MSTWeight(graph.BuildAdjacency(und, n))
	c := cfg(2, n, 8)
	c.RewriteEdges = true
	prog := &algorithms.MCST{}
	_, _, err := native.Run(c, prog, und, n)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Edges != wantE {
		t.Fatalf("%d forest edges, want %d", prog.Edges, wantE)
	}
	if math.Abs(prog.Total-wantW) > 1e-3*math.Max(1, wantW) {
		t.Fatalf("forest weight %g, want %g", prog.Total, wantW)
	}
}

func TestNativeRejectsCentralDirectory(t *testing.T) {
	edges, n := rmatEdges(6, false, 1)
	c := cfg(2, n, 8)
	c.CentralDirectory = true
	if _, _, err := native.Run(c, &algorithms.PageRank{Iterations: 1}, edges, n); err == nil {
		t.Fatal("central directory should be rejected by the native driver")
	}
}

// TestNativeBarrierPipelinedEquivalence runs the same seed under the
// streaming pipeline (default) and the two-barrier phase layout
// (Config.PhaseBarrier) and requires bit-identical values plus identical
// deterministic counters. Steal counters are excluded: they are
// scheduling-dependent under both layouts. Always-steal at m=8
// maximizes cross-machine interleaving, so a fold-order break in the
// pipeline would show up as float drift here. The CHAOS_NATIVE_SPILL_
// BUDGET rerun exercises the same pair with real spill traffic — the
// byte counters still agree because a chunk's encoded-equivalent size
// is the same spilled or resident.
func TestNativeBarrierPipelinedEquivalence(t *testing.T) {
	edges, n := rmatEdges(8, false, 21)
	pipelined := cfg(8, n, 8)
	pipelined.Alpha = math.Inf(1)
	pipelined.CheckpointEvery = 2
	barrier := pipelined
	barrier.PhaseBarrier = true
	v1, run1, err := native.Run(pipelined, &algorithms.PageRank{Iterations: 5}, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	v2, run2, err := native.Run(barrier, &algorithms.PageRank{Iterations: 5}, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v1, v2) {
		t.Error("pipelined and barrier layouts produced different values")
	}
	if run1.Iterations != run2.Iterations {
		t.Errorf("iterations: pipelined %d, barrier %d", run1.Iterations, run2.Iterations)
	}
	if run1.BytesRead != run2.BytesRead || run1.BytesWritten != run2.BytesWritten {
		t.Errorf("byte tallies diverged: pipelined (%d, %d), barrier (%d, %d)",
			run1.BytesRead, run1.BytesWritten, run2.BytesRead, run2.BytesWritten)
	}
	if run1.CheckpointBytes != run2.CheckpointBytes {
		t.Errorf("checkpoint bytes: pipelined %d, barrier %d", run1.CheckpointBytes, run2.CheckpointBytes)
	}
}

// TestNativeStealingOnStreamedPath drives the pipelined layout with
// stealing fully on (alpha = infinity, m=8, so gather steals overlap
// running scatters) and checks results against the reference — under
// -race in CI, this is the pipeline's data-race harness.
func TestNativeStealingOnStreamedPath(t *testing.T) {
	edges, n := rmatEdges(8, false, 23)
	want := refalgo.PageRank(graph.BuildAdjacency(edges, n), 5)
	c := cfg(8, n, 8)
	c.Alpha = math.Inf(1)
	values, run, err := native.Run(c, &algorithms.PageRank{Iterations: 5}, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		if math.Abs(float64(values[i].Rank)-want[i]) > 1e-3*math.Max(1, want[i]) {
			t.Fatalf("vertex %d: rank %g, want %g", i, values[i].Rank, want[i])
		}
	}
	if run.StealsAccepted == 0 {
		t.Error("always-steal run accepted no steals; the streamed steal path went unexercised")
	}
}

func TestNativeComputeWorkersDoNotChangeResults(t *testing.T) {
	edges, n := rmatEdges(7, false, 19)
	serial := cfg(2, n, 8)
	serial.ComputeWorkers = 1
	pooled := serial
	pooled.ComputeWorkers = 8
	v1, _, err := native.Run(serial, &algorithms.PageRank{Iterations: 5}, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	v2, _, err := native.Run(pooled, &algorithms.PageRank{Iterations: 5}, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v1, v2) {
		t.Error("native results differ across compute worker counts")
	}
}
