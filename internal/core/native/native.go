// Package native is the second driver of the Chaos protocol: it executes
// the same data plane as internal/core — streaming partitions, chunked
// update sets, the GAS kernels of internal/core/drive, work stealing by
// the §5.4 criterion, checkpoint/recovery decisions — but directly on the
// host instead of under the discrete-event simulation. Machines are
// goroutine groups, chunks are real byte slices moving through shared
// per-(source, destination) buckets with barrier-ordered hand-off, and
// the only clock is host wall-clock: nothing charges virtual time.
//
// What the native driver does and does not validate (see DESIGN.md, "Two
// planes, one protocol"): algorithm results are exact and are tested
// against internal/refalgo exactly like the DES driver's; performance
// numbers are host wall-clock with no claim of reproducing the paper's
// testbed. The evaluation figures remain DES-only.
//
// Determinism: for a fixed seed the final vertex values are reproducible
// run to run — every order that reaches a floating-point fold is fixed
// (edge chunks are binned per machine and concatenated in machine order;
// update chunks fold in (source partition, chunk) order; combiner
// flushes sort destinations). Which goroutine processes which partition
// varies with host scheduling, but partition processing is
// order-independent by the same GAS argument the paper relies on, so
// only the steal counters are scheduling-dependent.
package native

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"chaos/internal/core"
	"chaos/internal/core/drive"
	"chaos/internal/gas"
	"chaos/internal/graph"
	"chaos/internal/metrics"
	"chaos/internal/partition"
	"chaos/internal/sim"
	"chaos/internal/storage"
)

// Run executes prog over the given unsorted edge list natively and
// returns the final vertex values plus runtime statistics. The returned
// metrics mirror the DES driver's shape, with wall-clock durations in
// the time fields (Runtime, Preprocess) — callers that report "simulated
// seconds" must not source them from a native run.
func Run[V, U, A any](cfg core.Config, prog gas.Program[V, U, A], edges []graph.Edge, numVertices uint64) ([]V, *metrics.Run, error) {
	r, err := newRun(cfg, prog, edges, numVertices)
	if err != nil {
		return nil, nil, err
	}
	interrupted, err := r.execute(edges)
	if err != nil {
		return nil, nil, err
	}
	if interrupted {
		// The partial vertex state is not a result anyone asked for.
		return nil, nil, core.ErrInterrupted
	}
	values := r.collectValues()
	return values, r.rmet, nil
}

// run carries the state of one native execution.
type run[V, U, A any] struct {
	cfg    core.Config
	prog   gas.Program[V, U, A]
	kern   *drive.Kernel[V, U, A]
	layout *partition.Layout
	pool   *drive.Pool
	nm     int

	// The native chunk store. verts[p] holds partition p's encoded
	// vertex chunks (fixed positions, rewritten after apply); edges[p]
	// its current-generation edge chunks; edgesNext[p] the rewritten
	// next generation under the §6.1 extended model. Every slot has
	// exactly one writer per phase and readers only on the other side
	// of a phase barrier, so the store needs no locks.
	verts     [][][]byte
	edges     [][][]byte
	edgesNext [][][]byte

	// tr carries updates from scatter to gather through the transport
	// seam (internal/core/drive): typed record slices through
	// per-(src, dst) buckets under the same one-writer-per-phase
	// discipline, zero-copy in memory and — past
	// Config.TransportBudgetBytes — encoded onto spill files.
	tr drive.Transport[U]

	// claimed is the per-phase partition ownership table: masters claim
	// their own partitions first, idle machines steal the rest through
	// the §5.4 criterion.
	claimed []atomic.Bool
	// rngs holds one steal-sweep RNG per machine, created once per run
	// so probe orders vary across phases (as the DES driver's
	// persistent env RNG does) while staying seed-deterministic. Each
	// goroutine touches only its own machine's entry.
	rngs []*rand.Rand

	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	ckptBytes    atomic.Int64
	changed      atomic.Uint64
	stealsAcc    atomic.Int64
	stealsRej    atomic.Int64

	// applyMu serializes Init/Apply across partitions: those program
	// hooks run on the single simulation thread under the DES driver,
	// so programs are free to keep private state in them (MCST's
	// component forest does). Scatter/Gather/Combine/RewriteEdge run
	// concurrently here exactly as they do on the DES driver's worker
	// pool.
	applyMu sync.Mutex

	// Checkpoint state (2-phase, §6.6): chunks staged per partition
	// during apply, committed by the decision point.
	ckptPending [][][]byte
	ckptVerts   [][][]byte
	ckptIter    int
	failed      bool

	start time.Time
	rmet  *metrics.Run
}

func newRun[V, U, A any](cfg core.Config, prog gas.Program[V, U, A], edges []graph.Edge, numVertices uint64) (*run[V, U, A], error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	if cfg.CentralDirectory {
		return nil, fmt.Errorf("native: the central-directory baseline is a DES-only experiment")
	}
	if numVertices == 0 {
		numVertices = graph.MaxVertex(edges)
	}
	if numVertices == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	vcodec := prog.VertexCodec()
	memBudget := cfg.MemBudget
	if memBudget <= 0 {
		memBudget = int64(numVertices+1) * int64(vcodec.Bytes) // unconstrained
	}
	layout, err := partition.NewLayout(numVertices, cfg.Spec.Machines, int64(vcodec.Bytes), memBudget)
	if err != nil {
		return nil, err
	}
	r := &run[V, U, A]{
		cfg:      cfg,
		prog:     prog,
		kern:     drive.NewKernel(prog, layout),
		layout:   layout,
		nm:       cfg.Spec.Machines,
		ckptIter: -1,
		rmet:     metrics.NewRun(prog.Name(), cfg.Spec.Machines),
	}
	if cfg.CombineUpdates {
		c, ok := any(prog).(gas.Combiner[U])
		if !ok {
			return nil, fmt.Errorf("core: %s does not implement gas.Combiner; cannot combine updates", prog.Name())
		}
		r.kern.Combiner = c
	}
	if cfg.RewriteEdges {
		rw, ok := any(prog).(gas.EdgeRewriter[V])
		if !ok {
			return nil, fmt.Errorf("core: %s does not implement gas.EdgeRewriter; cannot rewrite edges", prog.Name())
		}
		r.kern.Rewriter = rw
	}
	np := layout.NumPartitions
	r.verts = make([][][]byte, np)
	r.edges = make([][][]byte, np)
	r.edgesNext = make([][][]byte, np)
	if cfg.TransportBudgetBytes > 0 {
		// Out-of-core mode: overflow past the budget is encoded with
		// the kernel codec and spilled to real temp files, one
		// directory per run, removed when the transport closes.
		dir, err := os.MkdirTemp(cfg.SpillDir, "chaos-spill-*")
		if err != nil {
			return nil, fmt.Errorf("native: spill dir: %w", err)
		}
		backend, err := storage.NewFileBackend(dir)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		r.tr = r.kern.NewSpillTransport(cfg.TransportBudgetBytes, backend, func() error { return os.RemoveAll(dir) })
	} else {
		r.tr = r.kern.NewMemTransport()
	}
	r.claimed = make([]atomic.Bool, np)
	r.rngs = make([]*rand.Rand, r.nm)
	for m := range r.rngs {
		r.rngs[m] = rand.New(rand.NewSource(cfg.Seed + int64(m)))
	}
	r.ckptPending = make([][][]byte, np)
	r.ckptVerts = make([][][]byte, np)
	return r, nil
}

// execute drives the run: preprocess, then iterations of scatter and
// gather+apply with a decision point between iterations, mirroring the
// DES driver's loop. It reports whether Config.Interrupt stopped the run.
func (r *run[V, U, A]) execute(edges []graph.Edge) (interrupted bool, err error) {
	// The native plane measures real elapsed time by design: its report
	// carries wall-clock, never virtual time (see Report.WallSeconds).
	// These are the only two sanctioned clock reads in the deterministic
	// packages; chaos-vet's wallclock analyzer enforces that.
	r.start = time.Now() //chaos:wallclock-ok native plane measures wall time by design
	r.pool = drive.NewPool(r.cfg.ComputeWorkers)
	defer r.pool.Close()
	// Closing the transport removes any spill files, on every exit path:
	// completion, interrupt, and rollback alike (update sets are fully
	// consumed by the gather preceding each decision point, so nothing
	// pending is lost).
	defer func() {
		if cerr := r.tr.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	r.preprocess(edges)
	r.rmet.Preprocess = r.elapsed()

	for iter := 0; ; {
		r.runPhase(iter, func(m, p int, stolen bool) { r.scatterPartition(iter, m, p, stolen) }, scatterPhase)
		r.runPhase(iter, func(m, p int, stolen bool) { r.gatherPartition(iter, m, p, stolen) }, gatherPhase)

		// Decision point (machine 0's role under the DES driver).
		changed := r.changed.Swap(0)
		if r.cfg.Progress != nil {
			r.cfg.Progress(core.Progress{
				Iterations:     iter + 1,
				Now:            r.elapsed(),
				BytesRead:      r.bytesRead.Load(),
				BytesWritten:   r.bytesWritten.Load(),
				StealsAccepted: int(r.stealsAcc.Load()),
			})
		}
		done := r.prog.Converged(iter, changed) || iter+1 >= r.cfg.MaxIterations
		if !done && r.cfg.Interrupt != nil && r.cfg.Interrupt() {
			done = true
			interrupted = true
		}
		if r.checkpointDue(iter) {
			// Phase 2 of §6.6: promote pending to stable, then discard
			// the previous checkpoint.
			r.ckptVerts = r.ckptPending
			r.ckptPending = make([][][]byte, r.layout.NumPartitions)
			r.ckptIter = iter
		}
		if !done && r.cfg.FailAtIteration > 0 && !r.failed && iter+1 >= r.cfg.FailAtIteration && r.ckptIter >= 0 {
			// Transient failure injection: restore the last committed
			// checkpoint and resume after it.
			r.failed = true
			r.rmet.Recoveries++
			r.restore()
			iter = r.ckptIter + 1
			continue
		}
		if done {
			r.rmet.Iterations = iter + 1
			break
		}
		if r.kern.Rewriter != nil {
			r.promoteEdges()
		}
		iter++
	}

	r.rmet.Runtime = r.elapsed()
	r.rmet.BytesRead = r.bytesRead.Load()
	r.rmet.BytesWritten = r.bytesWritten.Load()
	r.rmet.CheckpointBytes = r.ckptBytes.Load()
	r.rmet.StealsAccepted = int(r.stealsAcc.Load())
	r.rmet.StealsRejected = int(r.stealsRej.Load())
	st := r.tr.Stats()
	r.rmet.SpillBytes = st.SpillBytes
	r.rmet.SpillFiles = st.SpillFiles
	return interrupted, nil
}

// elapsed is host wall-clock since the run started, in the same
// nanosecond unit the DES uses for virtual time.
func (r *run[V, U, A]) elapsed() sim.Time { return sim.Time(time.Since(r.start)) } //chaos:wallclock-ok native plane measures wall time by design

func (r *run[V, U, A]) checkpointDue(iter int) bool {
	return r.cfg.CheckpointEvery > 0 && (iter+1)%r.cfg.CheckpointEvery == 0
}

// runPhase processes every partition exactly once: nm machine goroutines
// claim their own partitions first (masters take whatever of their own
// work nobody stole, so every partition is processed even when the
// criterion rejects stealing it), then sweep the rest in seeded-random
// order, stealing any still-unclaimed partition the §5.4 criterion
// accepts. process is handed the claiming machine and whether the claim
// was a steal, so the flight recorder can attribute the span.
func (r *run[V, U, A]) runPhase(iter int, process func(m, p int, stolen bool), ph phaseKind) {
	for i := range r.claimed {
		r.claimed[i].Store(false)
	}
	stealing := r.cfg.Alpha != 0 && r.nm > 1
	// Snapshot each partition's streamed-set size before work starts:
	// the steal criterion's D. Stealing only ever claims unstarted
	// partitions, whose remaining bytes equal this phase-start total —
	// and probing live store slots mid-phase would race their owners.
	var rem []int64
	if stealing {
		rem = make([]int64, r.layout.NumPartitions)
		for p := range rem {
			rem[p] = r.remainingBytes(ph, p)
		}
	}
	var wg sync.WaitGroup
	wg.Add(r.nm)
	for m := 0; m < r.nm; m++ {
		go func(m int) {
			defer wg.Done()
			// Own partitions first, in order.
			for _, p := range r.layout.PartitionsOf(m) {
				if r.claimed[p].CompareAndSwap(false, true) {
					process(m, p, false)
				}
			}
			if !stealing {
				return
			}
			// Steal sweep over everyone else's partitions, in this
			// machine's seeded-random order (§5.3).
			sweepT0 := r.elapsed()
			var acc, rej int
			rng := r.rngs[m]
			others := make([]int, 0, r.layout.NumPartitions)
			for p := 0; p < r.layout.NumPartitions; p++ {
				if r.layout.Master(p) != m {
					others = append(others, p)
				}
			}
			rng.Shuffle(len(others), func(i, j int) { others[i], others[j] = others[j], others[i] })
			for _, p := range others {
				if r.claimed[p].Load() {
					continue
				}
				if !drive.StealCriterion(r.vertexSetBytes(p), rem[p], 1, r.cfg.Alpha) {
					r.stealsRej.Add(1)
					rej++
					continue
				}
				if r.claimed[p].CompareAndSwap(false, true) {
					r.stealsAcc.Add(1)
					acc++
					process(m, p, true)
				}
			}
			if r.cfg.Trace != nil {
				r.cfg.Trace(drive.Span{
					Iter: iter, Machine: m, Part: -1, Phase: drive.PhaseSteal,
					Start: int64(sweepT0), Dur: int64(r.elapsed() - sweepT0),
					StealsAccepted: acc, StealsRejected: rej,
				})
			}
		}(m)
	}
	wg.Wait()
	// Every partition is claimed at this point: layout.PartitionsOf
	// covers all partitions across machines 0..nm-1, and each master
	// claims its own unconditionally before returning.
}

type phaseKind int

const (
	scatterPhase phaseKind = iota
	gatherPhase
)

// remainingBytes is D in the steal criterion: the unprocessed bytes of
// the partition's streamed set this phase.
func (r *run[V, U, A]) remainingBytes(ph phaseKind, p int) int64 {
	if ph == scatterPhase {
		var total int64
		for _, c := range r.edges[p] {
			total += int64(len(c))
		}
		return total
	}
	return r.tr.PendingBytes(p)
}

// vertexSetBytes is V in the steal criterion.
func (r *run[V, U, A]) vertexSetBytes(p int) int64 {
	return int64(r.layout.Size(p)) * int64(r.kern.VBytes)
}

// promoteEdges swaps in the rewritten next-generation edge sets at the
// iteration boundary (§6.1 extended model).
func (r *run[V, U, A]) promoteEdges() {
	for p := range r.edges {
		r.edges[p] = r.edgesNext[p]
		r.edgesNext[p] = nil
	}
}

// restore rewrites every partition's vertex chunks from the last
// committed checkpoint after an injected failure.
func (r *run[V, U, A]) restore() {
	for p, chunks := range r.ckptVerts {
		if chunks == nil {
			continue
		}
		r.verts[p] = chunks
		for _, c := range chunks {
			r.bytesWritten.Add(int64(len(c)))
		}
	}
}

// collectValues decodes the final vertex state out of the native store.
func (r *run[V, U, A]) collectValues() []V {
	values := make([]V, r.layout.NumVertices)
	for p := 0; p < r.layout.NumPartitions; p++ {
		lo, hi := r.layout.Range(p)
		if lo == hi {
			continue
		}
		at := uint64(lo)
		for _, chunk := range r.verts[p] {
			at += uint64(r.kern.VCodec.DecodeSliceInto(values[at:], chunk))
		}
		if at != uint64(hi) {
			panic(fmt.Sprintf("native: partition %d vertex chunks held %d records, want %d", p, at-uint64(lo), uint64(hi-lo)))
		}
	}
	return values
}
