// Package native is the second driver of the Chaos protocol: it executes
// the same data plane as internal/core — streaming partitions, chunked
// update sets, the GAS kernels of internal/core/drive, work stealing by
// the §5.4 criterion, checkpoint/recovery decisions — but directly on the
// host instead of under the discrete-event simulation. Machines are
// goroutine groups, vertex state is resident typed memory, update chunks
// move through shared per-(source, destination) buckets with
// completion-signaled hand-off, and the only clock is host wall-clock:
// nothing charges virtual time.
//
// What the native driver does and does not validate (see DESIGN.md, "Two
// planes, one protocol"): algorithm results are exact and are tested
// against internal/refalgo exactly like the DES driver's; performance
// numbers are host wall-clock with no claim of reproducing the paper's
// testbed. The evaluation figures remain DES-only.
//
// Determinism: for a fixed seed the final vertex values are reproducible
// run to run — every order that reaches a floating-point fold is fixed
// (edge chunks are binned per machine and concatenated in machine order;
// update chunks fold in (source partition, chunk) order; combiner
// flushes sort destinations). Which goroutine processes which partition
// varies with host scheduling, but partition processing is
// order-independent by the same GAS argument the paper relies on, so
// only the steal counters are scheduling-dependent. Pipelining the
// scatter→gather boundary (the default; see Config.PhaseBarrier) keeps
// that argument intact because the fold order, not the phase order, is
// what the float folds see.
package native

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"chaos/internal/core"
	"chaos/internal/core/drive"
	"chaos/internal/gas"
	"chaos/internal/graph"
	"chaos/internal/metrics"
	"chaos/internal/partition"
	"chaos/internal/sim"
	"chaos/internal/storage"
)

// Run executes prog over the given unsorted edge list natively and
// returns the final vertex values plus runtime statistics. The returned
// metrics mirror the DES driver's shape, with wall-clock durations in
// the time fields (Runtime, Preprocess) — callers that report "simulated
// seconds" must not source them from a native run.
func Run[V, U, A any](cfg core.Config, prog gas.Program[V, U, A], edges []graph.Edge, numVertices uint64) ([]V, *metrics.Run, error) {
	r, err := newRun(cfg, prog, edges, numVertices)
	if err != nil {
		return nil, nil, err
	}
	interrupted, err := r.execute(edges)
	if err != nil {
		return nil, nil, err
	}
	if interrupted {
		// The partial vertex state is not a result anyone asked for.
		return nil, nil, core.ErrInterrupted
	}
	values := r.collectValues()
	return values, r.rmet, nil
}

// run carries the state of one native execution.
type run[V, U, A any] struct {
	cfg    core.Config
	prog   gas.Program[V, U, A]
	kern   *drive.Kernel[V, U, A]
	layout *partition.Layout
	pool   *drive.Pool
	nm     int

	// The resident vertex store. verts[p] holds partition p's decoded
	// vertex values, live across phases and iterations — the producer
	// and consumer share an address space, so the vertex set crosses no
	// boundary and is never encoded at rest. kern.VCodec runs only where
	// bytes genuinely move: checkpoint shadow copies (§6.6) and their
	// restore. Partition p's values are written by gather(p)'s Apply and
	// read by scatter(p); the scatter-completion signal plus the
	// iteration barrier order those accesses (see runIteration).
	verts [][]V
	// edges[p] holds partition p's current-generation encoded edge
	// chunks; edgesNext[p] the rewritten next generation under the §6.1
	// extended model. One writer per slot per iteration, promoted at the
	// decision point.
	edges     [][][]byte
	edgesNext [][][]byte

	// tr carries updates from scatter to gather through the transport
	// seam (internal/core/drive): typed record slices through
	// per-(src, dst) buckets under the one-writer-until-completion
	// discipline, zero-copy in memory and — past
	// Config.TransportBudgetBytes — encoded onto spill files.
	tr drive.Transport[U]

	// Per-phase partition ownership tables: masters claim their own
	// partitions first, idle machines steal the rest through the §5.4
	// criterion. Two tables because the pipelined layout runs both
	// phases of one iteration concurrently.
	scatterClaimed []atomic.Bool
	gatherClaimed  []atomic.Bool
	// scatterDone[p] closes when scatter(p) completes; remade each
	// iteration. The close is the happens-before edge that lets
	// gather(q) drain bucket (p, q) — and, once all np channels are
	// closed, run Apply — while other scatters may still be running.
	scatterDone []chan struct{}
	// rngs holds one steal-sweep RNG per machine, created once per run
	// so probe orders vary across phases (as the DES driver's
	// persistent env RNG does) while staying seed-deterministic. Each
	// goroutine touches only its own machine's entry.
	rngs []*rand.Rand
	// others[m] is machine m's steal-sweep probe scratch: the fixed set
	// of partitions m does not master, reshuffled in place each sweep
	// (allocated once per run, not once per sweep).
	others [][]int

	// accums[p] is partition p's gather accumulator slice, allocated
	// once and reset via InitAccum at the top of each gather — the
	// iteration loop's largest recurring allocation before pooling.
	accums [][]A
	// combined[p][dst] is scatter(p)'s combiner map for destination dst,
	// reused across iterations (flushes clear, never discard, the maps).
	// Only touched by the machine running scatter(p); the iteration
	// barrier orders cross-iteration handoff. Nil unless combining.
	combined [][]map[graph.VertexID]U

	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	ckptBytes    atomic.Int64
	changed      atomic.Uint64
	stealsAcc    atomic.Int64
	stealsRej    atomic.Int64

	// applyMu serializes Init/Apply across partitions: those program
	// hooks run on the single simulation thread under the DES driver,
	// so programs are free to keep private state in them (MCST's
	// component forest does). Scatter/Gather/Combine/RewriteEdge run
	// concurrently here exactly as they do on the DES driver's worker
	// pool. Pipelining preserves the contract Apply additionally relies
	// on — running strictly after every scatter of its iteration —
	// because gather(p) waits on all np scatterDone channels before its
	// Apply (see gatherPartition).
	applyMu sync.Mutex

	// Checkpoint state (2-phase, §6.6): encoded shadow chunks staged per
	// partition during apply, committed by the decision point. The
	// checkpoint is the one place vertex bytes still move, so it is the
	// one place kern.VCodec still runs per iteration.
	ckptPending [][][]byte
	ckptVerts   [][][]byte
	ckptIter    int
	failed      bool

	start time.Time
	rmet  *metrics.Run
}

func newRun[V, U, A any](cfg core.Config, prog gas.Program[V, U, A], edges []graph.Edge, numVertices uint64) (*run[V, U, A], error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	if cfg.CentralDirectory {
		return nil, fmt.Errorf("native: the central-directory baseline is a DES-only experiment")
	}
	if numVertices == 0 {
		numVertices = graph.MaxVertex(edges)
	}
	if numVertices == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	vcodec := prog.VertexCodec()
	memBudget := cfg.MemBudget
	if memBudget <= 0 {
		memBudget = int64(numVertices+1) * int64(vcodec.Bytes) // unconstrained
	}
	layout, err := partition.NewLayout(numVertices, cfg.Spec.Machines, int64(vcodec.Bytes), memBudget)
	if err != nil {
		return nil, err
	}
	r := &run[V, U, A]{
		cfg:      cfg,
		prog:     prog,
		kern:     drive.NewKernel(prog, layout),
		layout:   layout,
		nm:       cfg.Spec.Machines,
		ckptIter: -1,
		rmet:     metrics.NewRun(prog.Name(), cfg.Spec.Machines),
	}
	if cfg.CombineUpdates {
		c, ok := any(prog).(gas.Combiner[U])
		if !ok {
			return nil, fmt.Errorf("core: %s does not implement gas.Combiner; cannot combine updates", prog.Name())
		}
		r.kern.Combiner = c
	}
	if cfg.RewriteEdges {
		rw, ok := any(prog).(gas.EdgeRewriter[V])
		if !ok {
			return nil, fmt.Errorf("core: %s does not implement gas.EdgeRewriter; cannot rewrite edges", prog.Name())
		}
		r.kern.Rewriter = rw
	}
	np := layout.NumPartitions
	r.verts = make([][]V, np)
	r.edges = make([][][]byte, np)
	r.edgesNext = make([][][]byte, np)
	if cfg.TransportBudgetBytes > 0 {
		// Out-of-core mode: overflow past the budget is encoded with
		// the kernel codec and spilled to real temp files, one
		// directory per run, removed when the transport closes.
		dir, err := os.MkdirTemp(cfg.SpillDir, "chaos-spill-*")
		if err != nil {
			return nil, fmt.Errorf("native: spill dir: %w", err)
		}
		backend, err := storage.NewFileBackend(dir)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		r.tr = r.kern.NewSpillTransport(cfg.TransportBudgetBytes, backend, func() error { return os.RemoveAll(dir) })
	} else {
		r.tr = r.kern.NewMemTransport()
	}
	r.scatterClaimed = make([]atomic.Bool, np)
	r.gatherClaimed = make([]atomic.Bool, np)
	r.scatterDone = make([]chan struct{}, np)
	r.rngs = make([]*rand.Rand, r.nm)
	r.others = make([][]int, r.nm)
	for m := range r.rngs {
		r.rngs[m] = rand.New(rand.NewSource(cfg.Seed + int64(m)))
		for p := 0; p < np; p++ {
			if layout.Master(p) != m {
				r.others[m] = append(r.others[m], p)
			}
		}
	}
	r.accums = make([][]A, np)
	for p := 0; p < np; p++ {
		r.accums[p] = make([]A, layout.Size(p))
	}
	if r.kern.Combiner != nil {
		r.combined = make([][]map[graph.VertexID]U, np)
	}
	r.ckptPending = make([][][]byte, np)
	r.ckptVerts = make([][][]byte, np)
	return r, nil
}

// execute drives the run: preprocess, then iterations of scatter and
// gather+apply with a decision point between iterations, mirroring the
// DES driver's loop. It reports whether Config.Interrupt stopped the run.
func (r *run[V, U, A]) execute(edges []graph.Edge) (interrupted bool, err error) {
	// The native plane measures real elapsed time by design: its report
	// carries wall-clock, never virtual time (see Report.WallSeconds).
	// These are the only two sanctioned clock reads in the deterministic
	// packages; chaos-vet's wallclock analyzer enforces that.
	r.start = time.Now() //chaos:wallclock-ok native plane measures wall time by design
	r.pool = drive.NewPool(r.cfg.ComputeWorkers)
	defer r.pool.Close()
	// Closing the transport removes any spill files, on every exit path:
	// completion, interrupt, and rollback alike (update sets are fully
	// consumed by the gather preceding each decision point, so nothing
	// pending is lost).
	defer func() {
		if cerr := r.tr.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	r.preprocess(edges)
	r.rmet.Preprocess = r.elapsed()

	for iter := 0; ; {
		r.runIteration(iter)

		// Decision point (machine 0's role under the DES driver).
		changed := r.changed.Swap(0)
		if r.cfg.Progress != nil {
			r.cfg.Progress(core.Progress{
				Iterations:     iter + 1,
				Now:            r.elapsed(),
				BytesRead:      r.bytesRead.Load(),
				BytesWritten:   r.bytesWritten.Load(),
				StealsAccepted: int(r.stealsAcc.Load()),
				StealsRejected: int(r.stealsRej.Load()),
				SpillBytes:     r.tr.Stats().SpillBytes,
			})
		}
		done := r.prog.Converged(iter, changed) || iter+1 >= r.cfg.MaxIterations
		if !done && r.cfg.Interrupt != nil && r.cfg.Interrupt() {
			done = true
			interrupted = true
		}
		if r.checkpointDue(iter) {
			// Phase 2 of §6.6: promote pending to stable, then discard
			// the previous checkpoint.
			r.ckptVerts = r.ckptPending
			r.ckptPending = make([][][]byte, r.layout.NumPartitions)
			r.ckptIter = iter
		}
		if !done && r.cfg.FailAtIteration > 0 && !r.failed && iter+1 >= r.cfg.FailAtIteration && r.ckptIter >= 0 {
			// Transient failure injection: restore the last committed
			// checkpoint and resume after it.
			r.failed = true
			r.rmet.Recoveries++
			r.restore()
			iter = r.ckptIter + 1
			continue
		}
		if done {
			r.rmet.Iterations = iter + 1
			break
		}
		if r.kern.Rewriter != nil {
			r.promoteEdges()
		}
		iter++
	}

	r.rmet.Runtime = r.elapsed()
	r.rmet.BytesRead = r.bytesRead.Load()
	r.rmet.BytesWritten = r.bytesWritten.Load()
	r.rmet.CheckpointBytes = r.ckptBytes.Load()
	r.rmet.StealsAccepted = int(r.stealsAcc.Load())
	r.rmet.StealsRejected = int(r.stealsRej.Load())
	st := r.tr.Stats()
	r.rmet.SpillBytes = st.SpillBytes
	r.rmet.SpillFiles = st.SpillFiles
	return interrupted, nil
}

// elapsed is host wall-clock since the run started, in the same
// nanosecond unit the DES uses for virtual time.
func (r *run[V, U, A]) elapsed() sim.Time { return sim.Time(time.Since(r.start)) } //chaos:wallclock-ok native plane measures wall time by design

func (r *run[V, U, A]) checkpointDue(iter int) bool {
	return r.cfg.CheckpointEvery > 0 && (iter+1)%r.cfg.CheckpointEvery == 0
}

// runIteration processes every partition's scatter and gather exactly
// once, then returns with the iteration fully settled (the decision
// point still needs one barrier; pipelining removes the mid-iteration
// one).
//
// Pipelined layout (the default): each of the nm machine goroutines runs
// scatter over its own partitions, closes each partition's scatterDone
// as it finishes, sweeps for scatter steals, then moves straight into
// gather — its gathers fold each source's chunks as that source's
// channel closes, overlapping with other machines' still-running
// scatters. No goroutine ever blocks before finishing its scatter stage,
// so every scatterDone channel is guaranteed to close and the gather
// waits cannot deadlock.
//
// Barrier layout (Config.PhaseBarrier): the classic two-phase schedule —
// all scatters, one wg.Wait, all gathers — for A/B measurement and as
// the conservative fallback. The gather path is identical (the channel
// waits are free once every channel is closed), so the two layouts
// produce bit-identical values by construction: the per-bucket fold
// order is pinned either way.
func (r *run[V, U, A]) runIteration(iter int) {
	np := r.layout.NumPartitions
	for i := 0; i < np; i++ {
		r.scatterClaimed[i].Store(false)
		r.gatherClaimed[i].Store(false)
		r.scatterDone[i] = make(chan struct{})
	}
	if r.cfg.PhaseBarrier {
		r.runStage(iter, scatterPhase)
		r.runStage(iter, gatherPhase)
		return
	}
	var wg sync.WaitGroup
	wg.Add(r.nm)
	for m := 0; m < r.nm; m++ {
		go func(m int) {
			defer wg.Done()
			r.ownPartitions(iter, m, scatterPhase)
			r.stealSweep(iter, m, scatterPhase)
			r.ownPartitions(iter, m, gatherPhase)
			r.stealSweep(iter, m, gatherPhase)
		}(m)
	}
	wg.Wait()
}

// runStage runs one phase to completion across all machines (the
// barrier layout's building block).
func (r *run[V, U, A]) runStage(iter int, ph phaseKind) {
	var wg sync.WaitGroup
	wg.Add(r.nm)
	for m := 0; m < r.nm; m++ {
		go func(m int) {
			defer wg.Done()
			r.ownPartitions(iter, m, ph)
			r.stealSweep(iter, m, ph)
		}(m)
	}
	wg.Wait()
	// Every partition is claimed at this point: layout.PartitionsOf
	// covers all partitions across machines 0..nm-1, and each master
	// claims its own unconditionally in ownPartitions.
}

// ownPartitions claims and processes machine m's own partitions, in
// order (masters take whatever of their own work nobody stole, so every
// partition is processed even when the criterion rejects stealing it).
func (r *run[V, U, A]) ownPartitions(iter, m int, ph phaseKind) {
	claimed := r.phaseClaimed(ph)
	for _, p := range r.layout.PartitionsOf(m) {
		if claimed[p].CompareAndSwap(false, true) {
			r.processPartition(iter, m, p, false, ph)
		}
	}
}

// stealSweep probes everyone else's partitions in machine m's
// seeded-random order (§5.3), stealing any still-unclaimed partition the
// §5.4 criterion accepts. The criterion's D is read live — the edge set
// is immutable within an iteration and the transport's PendingBytes is a
// single atomic — so the sweep needs no phase-start snapshot and stays
// correct while producers are still running (the pipelined layout).
func (r *run[V, U, A]) stealSweep(iter, m int, ph phaseKind) {
	if r.cfg.Alpha == 0 || r.nm <= 1 {
		return
	}
	claimed := r.phaseClaimed(ph)
	sweepT0 := r.elapsed()
	var acc, rej int
	rng := r.rngs[m]
	others := r.others[m]
	rng.Shuffle(len(others), func(i, j int) { others[i], others[j] = others[j], others[i] })
	for _, p := range others {
		if claimed[p].Load() {
			continue
		}
		if !drive.StealCriterion(r.vertexSetBytes(p), r.remainingBytes(ph, p), 1, r.cfg.Alpha) {
			r.stealsRej.Add(1)
			rej++
			continue
		}
		if claimed[p].CompareAndSwap(false, true) {
			r.stealsAcc.Add(1)
			acc++
			r.processPartition(iter, m, p, true, ph)
		}
	}
	if r.cfg.Trace != nil {
		r.cfg.Trace(drive.Span{
			Iter: iter, Machine: m, Part: -1, Phase: drive.PhaseSteal,
			Start: int64(sweepT0), Dur: int64(r.elapsed() - sweepT0),
			StealsAccepted: acc, StealsRejected: rej,
		})
	}
}

// processPartition dispatches one claimed partition to its phase worker.
// Whoever claims scatter(p) — master or thief — closes its completion
// channel, exactly once, after the last Put of p's update set.
func (r *run[V, U, A]) processPartition(iter, m, p int, stolen bool, ph phaseKind) {
	if ph == scatterPhase {
		r.scatterPartition(iter, m, p, stolen)
		close(r.scatterDone[p])
	} else {
		r.gatherPartition(iter, m, p, stolen)
	}
}

type phaseKind int

const (
	scatterPhase phaseKind = iota
	gatherPhase
)

func (r *run[V, U, A]) phaseClaimed(ph phaseKind) []atomic.Bool {
	if ph == scatterPhase {
		return r.scatterClaimed
	}
	return r.gatherClaimed
}

// remainingBytes is D in the steal criterion: the unprocessed bytes of
// the partition's streamed set this phase. Safe to read while the
// partition's producers run: the edge set is immutable within an
// iteration, and PendingBytes is atomic.
func (r *run[V, U, A]) remainingBytes(ph phaseKind, p int) int64 {
	if ph == scatterPhase {
		return storedBytes(r.edges[p])
	}
	return r.tr.PendingBytes(p)
}

// vertexSetBytes is V in the steal criterion (encoded-equivalent, as the
// paper prices the transfer a real steal would cost).
func (r *run[V, U, A]) vertexSetBytes(p int) int64 {
	return int64(r.layout.Size(p)) * int64(r.kern.VBytes)
}

// promoteEdges swaps in the rewritten next-generation edge sets at the
// iteration boundary (§6.1 extended model).
func (r *run[V, U, A]) promoteEdges() {
	for p := range r.edges {
		r.edges[p] = r.edgesNext[p]
		r.edgesNext[p] = nil
	}
}

// restore decodes the last committed checkpoint back into the resident
// vertex store after an injected failure — one of the places vertex
// bytes genuinely move, so it reads through the codec and counts toward
// BytesRead.
func (r *run[V, U, A]) restore() {
	for p, chunks := range r.ckptVerts {
		if chunks == nil {
			continue
		}
		verts := r.verts[p]
		at := 0
		for _, c := range chunks {
			at += r.kern.VCodec.DecodeSliceInto(verts[at:], c)
			r.bytesRead.Add(int64(len(c)))
		}
		if at != len(verts) {
			panic(fmt.Sprintf("native: checkpoint for partition %d held %d records, want %d", p, at, len(verts)))
		}
	}
}

// collectValues copies the final vertex state out of the resident store.
func (r *run[V, U, A]) collectValues() []V {
	values := make([]V, r.layout.NumVertices)
	for p := 0; p < r.layout.NumPartitions; p++ {
		lo, hi := r.layout.Range(p)
		if lo == hi {
			continue
		}
		if copied := copy(values[lo:hi], r.verts[p]); uint64(copied) != uint64(hi-lo) {
			panic(fmt.Sprintf("native: partition %d store held %d records, want %d", p, copied, uint64(hi-lo)))
		}
	}
	return values
}
