package core

import (
	"math"
	"testing"
	"testing/quick"

	"chaos/internal/algorithms"
	"chaos/internal/cluster"
	"chaos/internal/graph"
	"chaos/internal/sim"
)

func TestSplitInputCoversAllEdges(t *testing.T) {
	prop := func(nEdges uint16, nmRaw uint8) bool {
		nm := int(nmRaw%32) + 1
		edges := make([]graph.Edge, int(nEdges)%5000)
		for i := range edges {
			edges[i] = graph.Edge{Src: graph.VertexID(i)}
		}
		parts := splitInput(edges, nm)
		if len(parts) != nm {
			return false
		}
		total := 0
		for _, p := range parts {
			total += len(p)
		}
		if total != len(edges) {
			return false
		}
		// Slices must be contiguous and in order.
		seen := 0
		for _, p := range parts {
			for _, e := range p {
				if int(e.Src) != seen {
					return false
				}
				seen++
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUpdateRecordRoundTrip(t *testing.T) {
	for _, n := range []uint64{1 << 10, 1 << 33} {
		cfg := testConfig(2, n, 8)
		eng, err := newEngine(cfg, &algorithms.PageRank{Iterations: 1}, []graph.Edge{{Src: 0, Dst: 1}}, n)
		if err != nil {
			t.Fatal(err)
		}
		m := eng.machines[0]
		wantID := 4
		if n >= 1<<32 {
			wantID = 8
		}
		if eng.idBytes != wantID {
			t.Errorf("n=%d: idBytes=%d, want %d", n, eng.idBytes, wantID)
		}
		prop := func(dst uint32, val float32) bool {
			d := graph.VertexID(dst)
			if n >= 1<<33 {
				d += 1 << 32 // exercise wide IDs
			}
			if uint64(d) >= n {
				d = graph.VertexID(n - 1)
			}
			buf := m.appendUpdate(nil, d, &val)
			if len(buf) != eng.updBytes {
				return false
			}
			gd, gv := m.decodeUpdate(buf)
			return gd == d && (gv == val || (math.IsNaN(float64(gv)) && math.IsNaN(float64(val))))
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		eng.env.Close()
	}
}

func TestWindowComputation(t *testing.T) {
	cfg := DefaultConfig(cluster.SSD(8))
	env := clusterEnv(t, cfg)
	w := cfg.window(env)
	// phi is slightly above 1 at the 4MB default chunk, so the window is
	// a small multiple of k=5.
	if w < cfg.BatchK || w > 4*cfg.BatchK {
		t.Errorf("window = %d, want within [k, 4k] = [5, 20]", w)
	}
	cfg.WindowOverride = 3
	if got := cfg.window(env); got != 3 {
		t.Errorf("override ignored: %d", got)
	}
}

func clusterEnv(t *testing.T, cfg Config) *cluster.Cluster {
	t.Helper()
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	return cluster.New(sim.NewEnv(1), cfg.Spec)
}

func TestVertexChunkGeometry(t *testing.T) {
	cfg := testConfig(2, 1000, 8)
	cfg.VertexChunkBytes = 64 // 8 vertices per chunk
	eng, err := newEngine(cfg, &algorithms.PageRank{Iterations: 1},
		[]graph.Edge{{Src: 0, Dst: 1}}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.env.Close()
	if got := eng.verticesPerChunk(); got != 8 {
		t.Errorf("verticesPerChunk = %d, want 8", got)
	}
	total := 0
	for part := 0; part < eng.layout.NumPartitions; part++ {
		n := eng.vertexChunks(part)
		size := eng.layout.Size(part)
		if size == 0 && n != 0 {
			t.Errorf("empty partition %d has %d chunks", part, n)
		}
		if size > 0 {
			want := int((size + 7) / 8)
			if n != want {
				t.Errorf("partition %d: %d chunks, want %d", part, n, want)
			}
		}
		total += n
	}
	if total == 0 {
		t.Error("no vertex chunks at all")
	}
	if got := eng.vertexSetBytes(0); got != int64(eng.layout.Size(0))*8 {
		t.Errorf("vertexSetBytes = %d", got)
	}
}

func TestDecisionStateMachine(t *testing.T) {
	cfg := testConfig(1, 100, 8)
	cfg.CheckpointEvery = 2
	eng, err := newEngine(cfg, &algorithms.PageRank{Iterations: 10},
		[]graph.Edge{{Src: 0, Dst: 1}}, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.env.Close()
	// Not converged, no checkpoint at iter 0.
	eng.changed = 5
	eng.decide(0)
	if eng.decision.done || eng.ckptIter != -1 {
		t.Errorf("iter 0: %+v ckptIter=%d", eng.decision, eng.ckptIter)
	}
	// Checkpoint commits at iter 1 ((1+1)%2 == 0).
	eng.ckptPending[0] = [][]byte{{1}}
	eng.decide(1)
	if eng.ckptIter != 1 {
		t.Errorf("checkpoint not committed at iter 1: %d", eng.ckptIter)
	}
	if len(eng.ckptVerts) != 1 {
		t.Error("pending checkpoint not promoted")
	}
	// Convergence at the program's iteration bound.
	eng.decide(9)
	if !eng.decision.done {
		t.Error("not done at PageRank's final iteration")
	}
}

func TestChangedCounterResetsAtDecision(t *testing.T) {
	cfg := testConfig(1, 100, 8)
	eng, err := newEngine(cfg, &algorithms.PageRank{Iterations: 10},
		[]graph.Edge{{Src: 0, Dst: 1}}, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.env.Close()
	eng.changed = 42
	eng.decide(0)
	if eng.changed != 0 {
		t.Errorf("changed = %d after decide, want 0", eng.changed)
	}
}
