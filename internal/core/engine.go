package core

import (
	"errors"
	"fmt"

	"chaos/internal/cluster"
	"chaos/internal/core/drive"
	"chaos/internal/gas"
	"chaos/internal/graph"
	"chaos/internal/metrics"
	"chaos/internal/partition"
	"chaos/internal/sim"
	"chaos/internal/storage"
)

// ErrInterrupted reports a run stopped by Config.Interrupt at an
// iteration boundary before converging. No values are returned: the
// vertex state mid-algorithm is not a meaningful partial result.
var ErrInterrupted = errors.New("core: run interrupted")

// decision is the shared verdict machine 0 publishes between the gather
// barrier and the decision barrier of each iteration.
type decision struct {
	iter       int
	done       bool
	rollbackTo int // checkpointed iteration to restore, or -1
}

// engine carries the shared state of one run. Everything here is touched
// only from simulation context, where the DES scheduler serializes all
// access.
type engine[V, U, A any] struct {
	cfg    Config
	prog   gas.Program[V, U, A]
	layout *partition.Layout
	env    *sim.Env
	clu    *cluster.Cluster

	// kern is the driver-neutral data plane (record formats, pure chunk
	// kernels, scratch pools) shared with internal/core/native; see
	// internal/core/drive. The fields below mirror its geometry for the
	// engine's own chunk arithmetic.
	kern     *drive.Kernel[V, U, A]
	edgeFmt  graph.Format
	idBytes  int // update destination field width
	updBytes int // encoded update record size
	vBytes   int // encoded vertex record size
	window   int

	// Cached codecs: Program codec accessors construct fresh closures on
	// every call, which the per-chunk hot paths cannot afford.
	updCodec gas.Codec[U]
	vCodec   gas.Codec[V]

	stores   []*storage.Store
	storeIn  []*sim.Mailbox
	arbIn    []*sim.Mailbox
	machines []*machine[V, U, A]
	barrier  *sim.Barrier

	// Shared iteration state (serialized by the DES).
	changed  uint64
	decision decision

	// Checkpoint state: encoded vertex chunks per partition, captured
	// during apply write-back of checkpoint iterations (2-phase: pending
	// until machine 0 commits at the decision point).
	ckptPending map[int][][]byte
	ckptVerts   map[int][][]byte
	ckptIter    int
	failed      bool
	interrupted bool // Config.Interrupt fired; Run returns ErrInterrupted

	inputEdges [][]graph.Edge // per-machine slice of the unsorted input
	run        *metrics.Run
	dir        *storage.Directory
	dirIn      *sim.Mailbox

	// Optional model extensions (§6.1 footnote, §11.1).
	combiner gas.Combiner[U]
	rewriter gas.EdgeRewriter[V]

	// Compute offload (see parallel.go): the worker pool, the per-stream
	// pre-dispatched chunk tasks (scratch pools live on the kernel). The
	// maps are touched only from simulation context.
	pool           *workerPool
	scatterStreams map[int]*streamTasks[scatterChunk[U]]
	gatherStreams  map[int]*streamTasks[gatherChunk[U]]
}

// Run executes prog over the given unsorted edge list on the configured
// cluster and returns the final vertex values plus runtime statistics.
// Timing covers pre-processing through the final apply, as in the paper.
func Run[V, U, A any](cfg Config, prog gas.Program[V, U, A], edges []graph.Edge, numVertices uint64) ([]V, *metrics.Run, error) {
	eng, err := newEngine(cfg, prog, edges, numVertices)
	if err != nil {
		return nil, nil, err
	}
	if err := eng.execute(); err != nil {
		return nil, nil, err
	}
	if eng.interrupted {
		// The partial vertex state is not a result anyone asked for.
		return nil, nil, ErrInterrupted
	}
	values, err := eng.collectValues()
	if err != nil {
		return nil, nil, err
	}
	return values, eng.run, nil
}

// newEngine validates the configuration and builds the simulated cluster,
// stores and machine state for one run.
func newEngine[V, U, A any](cfg Config, prog gas.Program[V, U, A], edges []graph.Edge, numVertices uint64) (*engine[V, U, A], error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if numVertices == 0 {
		numVertices = graph.MaxVertex(edges)
	}
	if numVertices == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}

	vcodec := prog.VertexCodec()
	memBudget := cfg.MemBudget
	if memBudget <= 0 {
		memBudget = int64(numVertices+1) * int64(vcodec.Bytes) // unconstrained
	}
	layout, err := partition.NewLayout(numVertices, cfg.Spec.Machines, int64(vcodec.Bytes), memBudget)
	if err != nil {
		return nil, err
	}

	env := sim.NewEnv(cfg.Seed)
	clu := cluster.New(env, cfg.Spec)
	eng := &engine[V, U, A]{
		cfg:            cfg,
		prog:           prog,
		layout:         layout,
		env:            env,
		clu:            clu,
		run:            metrics.NewRun(prog.Name(), cfg.Spec.Machines),
		ckptPending:    make(map[int][][]byte),
		ckptVerts:      make(map[int][][]byte),
		ckptIter:       -1,
		scatterStreams: make(map[int]*streamTasks[scatterChunk[U]]),
		gatherStreams:  make(map[int]*streamTasks[gatherChunk[U]]),
	}
	eng.decision.rollbackTo = -1
	eng.kern = drive.NewKernel(prog, layout)
	eng.edgeFmt = eng.kern.EdgeFmt
	eng.idBytes = eng.kern.IDBytes
	eng.updCodec = eng.kern.UpdCodec
	eng.vCodec = eng.kern.VCodec
	eng.updBytes = eng.kern.UpdBytes
	eng.vBytes = eng.kern.VBytes
	eng.window = cfg.window(clu)

	if cfg.CombineUpdates {
		c, ok := any(prog).(gas.Combiner[U])
		if !ok {
			return nil, fmt.Errorf("core: %s does not implement gas.Combiner; cannot combine updates", prog.Name())
		}
		eng.combiner = c
		eng.kern.Combiner = c
	}
	if cfg.RewriteEdges {
		r, ok := any(prog).(gas.EdgeRewriter[V])
		if !ok {
			return nil, fmt.Errorf("core: %s does not implement gas.EdgeRewriter; cannot rewrite edges", prog.Name())
		}
		eng.rewriter = r
		eng.kern.Rewriter = r
	}

	nm := cfg.Spec.Machines
	eng.inputEdges = splitInput(edges, nm)
	for i := 0; i < nm; i++ {
		backend := storage.Backend(storage.NewMemBackend())
		if cfg.BackendFor != nil {
			backend = cfg.BackendFor(i)
		}
		eng.stores = append(eng.stores, storage.NewStore(i, layout.NumPartitions, backend))
		eng.storeIn = append(eng.storeIn, sim.NewMailbox(env, fmt.Sprintf("store%d", i)))
		eng.arbIn = append(eng.arbIn, sim.NewMailbox(env, fmt.Sprintf("arb%d", i)))
	}
	if cfg.CentralDirectory {
		eng.dir = storage.NewDirectory(nm, env.Rand())
		eng.dirIn = sim.NewMailbox(env, "directory")
	}
	eng.barrier = sim.NewBarrier(env, nm)
	for i := 0; i < nm; i++ {
		eng.machines = append(eng.machines, newMachine(eng, i))
	}

	// Spawn the per-machine storage engines, steal arbiters and
	// computation engines, plus the optional central directory.
	for i := 0; i < nm; i++ {
		i := i
		env.Spawn(fmt.Sprintf("m%d.store", i), func(p *sim.Proc) { eng.storageProc(p, i) })
		env.Spawn(fmt.Sprintf("m%d.arbiter", i), func(p *sim.Proc) { eng.arbiterProc(p, i) })
	}
	if cfg.CentralDirectory {
		env.Spawn("directory", func(p *sim.Proc) { eng.directoryProc(p) })
	}
	for i := 0; i < nm; i++ {
		m := eng.machines[i]
		env.Spawn(fmt.Sprintf("m%d.compute", i), func(p *sim.Proc) { m.main(p) })
	}
	return eng, nil
}

// execute drives the simulation to completion. The compute pool exists
// only for the duration of the run; close drains every dispatched task,
// so a failed run never leaks worker goroutines.
func (eng *engine[V, U, A]) execute() error {
	eng.pool = newWorkerPool(eng.cfg.ComputeWorkers)
	defer eng.pool.Close()
	eng.env.Run()
	if stuck := eng.env.Stuck(); len(stuck) > 0 {
		eng.env.Close()
		return fmt.Errorf("core: deadlock, stuck processes: %v", stuck)
	}
	eng.env.Close()
	eng.run.Runtime = eng.env.Now()
	eng.run.DeviceUtilization = eng.clu.DeviceUtilization()
	return nil
}

// splitInput divides the unsorted edge list evenly across machines,
// modeling the paper's input "randomly distributed over all storage
// devices" (§8). Shared with the native driver via internal/core/drive.
func splitInput(edges []graph.Edge, nm int) [][]graph.Edge {
	return drive.SplitInput(edges, nm)
}

// collectValues reads the final vertex state back from the stores
// (host-side; the computation has already recorded it on storage).
func (eng *engine[V, U, A]) collectValues() ([]V, error) {
	vcodec := eng.prog.VertexCodec()
	values := make([]V, eng.layout.NumVertices)
	perChunk := eng.verticesPerChunk()
	for part := 0; part < eng.layout.NumPartitions; part++ {
		lo, hi := eng.layout.Range(part)
		size := uint64(hi - lo)
		if size == 0 {
			continue
		}
		nchunks := int((size + uint64(perChunk) - 1) / uint64(perChunk))
		at := uint64(lo)
		for idx := 0; idx < nchunks; idx++ {
			home := storage.VertexChunkHome(part, idx, eng.layout.NumMachines)
			data, err := eng.stores[home].GetVertexChunk(part, idx)
			if err != nil && eng.cfg.ReplicateVertices {
				// Primary lost: recover from the replica (§6.6).
				rep := storage.VertexChunkReplica(part, idx, eng.layout.NumMachines)
				data, err = eng.stores[rep].GetVertexChunk(part, idx)
			}
			if err != nil {
				return nil, fmt.Errorf("core: collecting results: %w", err)
			}
			at += uint64(vcodec.DecodeSliceInto(values[at:], data))
		}
		if at != uint64(hi) {
			return nil, fmt.Errorf("core: partition %d vertex chunks held %d records, want %d", part, at-uint64(lo), size)
		}
	}
	return values, nil
}

func (eng *engine[V, U, A]) verticesPerChunk() int {
	per := eng.cfg.VertexChunkBytes / eng.vBytes
	if per < 1 {
		per = 1
	}
	return per
}

func (eng *engine[V, U, A]) vertexChunks(part int) int {
	size := eng.layout.Size(part)
	if size == 0 {
		return 0
	}
	per := uint64(eng.verticesPerChunk())
	return int((size + per - 1) / per)
}

// vertexSetBytes is V in the steal criterion: the partition's vertex-set
// size on storage.
func (eng *engine[V, U, A]) vertexSetBytes(part int) int64 {
	return int64(eng.layout.Size(part)) * int64(eng.vBytes)
}

// decide is machine 0's decision-point logic between the gather barrier and
// the decision barrier: convergence, checkpoint commit, failure injection.
func (eng *engine[V, U, A]) decide(iter int) {
	if eng.cfg.Progress != nil {
		// Same boundary as the Interrupt poll below. Purely observational:
		// every counter read here is already settled for this iteration,
		// and the callback cannot touch the RNG, clock or mailboxes, so a
		// run with a subscriber is bit-identical to one without.
		eng.cfg.Progress(Progress{
			Iterations:     iter + 1,
			Now:            eng.env.Now(),
			BytesRead:      eng.run.BytesRead,
			BytesWritten:   eng.run.BytesWritten,
			StealsAccepted: eng.run.StealsAccepted,
			StealsRejected: eng.run.StealsRejected,
			SpillBytes:     eng.run.SpillBytes,
		})
	}
	d := decision{iter: iter, rollbackTo: -1}
	d.done = eng.prog.Converged(iter, eng.changed) || iter+1 >= eng.cfg.MaxIterations
	if !d.done && eng.cfg.Interrupt != nil && eng.cfg.Interrupt() {
		// Cooperative cancellation: finish this iteration's barriers
		// normally (so every process unwinds cleanly) and stop.
		d.done = true
		eng.interrupted = true
	}
	eng.changed = 0

	if eng.checkpointDue(iter) {
		// Phase 2 of the checkpoint protocol: every master finished
		// writing its shadow copy before the gather barrier, so commit
		// by promoting pending to stable and only then discarding the
		// previous checkpoint (§6.6: new values completely stored
		// before the old values are removed).
		eng.ckptVerts = eng.ckptPending
		eng.ckptPending = make(map[int][][]byte)
		eng.ckptIter = iter
	}

	if !d.done && eng.cfg.FailAtIteration > 0 && !eng.failed && iter+1 >= eng.cfg.FailAtIteration && eng.ckptIter >= 0 {
		eng.failed = true
		eng.run.Recoveries++
		d.rollbackTo = eng.ckptIter
	}
	eng.decision = d
}

// checkpointDue reports whether iteration iter ends with a checkpoint.
func (eng *engine[V, U, A]) checkpointDue(iter int) bool {
	return eng.cfg.CheckpointEvery > 0 && (iter+1)%eng.cfg.CheckpointEvery == 0
}

// stealCriterion evaluates Equation 2 with the alpha bias of §10.2:
// accept iff V + D/(H+1) < alpha * D/H. Shared with the native driver
// via internal/core/drive.
func stealCriterion(vBytes, dBytes int64, workers int, alpha float64) bool {
	return drive.StealCriterion(vBytes, dBytes, workers, alpha)
}
