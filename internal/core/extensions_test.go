package core

import (
	"math"
	"testing"

	"chaos/internal/algorithms"
	"chaos/internal/graph"
	"chaos/internal/refalgo"
	"chaos/internal/storage"
)

func TestCombinerPreservesPageRank(t *testing.T) {
	edges, n := testGraph(8, false)
	want := refalgo.PageRank(graph.BuildAdjacency(edges, n), 5)
	cfg := testConfig(4, n, 8)
	cfg.CombineUpdates = true
	values, run, err := Run(cfg, &algorithms.PageRank{Iterations: 5}, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		if math.Abs(float64(values[i].Rank)-want[i]) > 1e-3*math.Max(1, want[i]) {
			t.Fatalf("vertex %d: rank %g, want %g", i, values[i].Rank, want[i])
		}
	}
	// Combining must not increase the update volume.
	plain := cfg
	plain.CombineUpdates = false
	_, runPlain, err := Run(plain, &algorithms.PageRank{Iterations: 5}, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	if run.BytesWritten > runPlain.BytesWritten {
		t.Errorf("combining wrote more bytes (%d) than plain (%d)", run.BytesWritten, runPlain.BytesWritten)
	}
}

func TestCombinerPreservesBFS(t *testing.T) {
	edges, n := testGraph(8, false)
	und := graph.Undirected(edges)
	want := refalgo.BFSLevels(graph.BuildAdjacency(und, n), 0)
	cfg := testConfig(3, n, 5)
	cfg.CombineUpdates = true
	values, _, err := Run(cfg, &algorithms.BFS{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		if values[i].Level != want[i] {
			t.Fatalf("vertex %d: level %d, want %d", i, values[i].Level, want[i])
		}
	}
}

func TestCombinerRequiresImplementation(t *testing.T) {
	edges, n := testGraph(6, false)
	cfg := testConfig(2, n, 2)
	cfg.CombineUpdates = true
	// MIS has no Combiner (its updates are not mergeable).
	if _, _, err := Run(cfg, &algorithms.MIS{}, graph.Undirected(edges), n); err == nil {
		t.Error("combining without a Combiner implementation should error")
	}
}

func TestEdgeRewritingPreservesMCST(t *testing.T) {
	for _, m := range []int{1, 4} {
		edges, n := testGraph(8, true)
		und := graph.Undirected(edges)
		wantW, wantE := refalgo.MSTWeight(graph.BuildAdjacency(und, n))
		cfg := testConfig(m, n, 8)
		cfg.RewriteEdges = true
		prog := &algorithms.MCST{}
		_, run, err := Run(cfg, prog, und, n)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if prog.Edges != wantE || math.Abs(prog.Total-wantW) > 1e-3*math.Max(1, wantW) {
			t.Fatalf("m=%d: forest (%g, %d), want (%g, %d)", m, prog.Total, prog.Edges, wantW, wantE)
		}
		// Compaction must reduce total edge reads versus the
		// non-rewriting run (later rounds stream fewer edges).
		plain := cfg
		plain.RewriteEdges = false
		prog2 := &algorithms.MCST{}
		_, runPlain, err := Run(plain, prog2, und, n)
		if err != nil {
			t.Fatal(err)
		}
		if run.BytesRead >= runPlain.BytesRead {
			t.Errorf("m=%d: compaction read %d bytes, plain read %d — no shrink", m, run.BytesRead, runPlain.BytesRead)
		}
	}
}

func TestEdgeRewritingRequiresImplementation(t *testing.T) {
	edges, n := testGraph(6, false)
	cfg := testConfig(2, n, 5)
	cfg.RewriteEdges = true
	if _, _, err := Run(cfg, &algorithms.BFS{}, graph.Undirected(edges), n); err == nil {
		t.Error("rewriting without an EdgeRewriter implementation should error")
	}
}

func TestEdgeRewritingConfigConflicts(t *testing.T) {
	edges, n := testGraph(6, true)
	und := graph.Undirected(edges)
	cfg := testConfig(2, n, 8)
	cfg.RewriteEdges = true
	cfg.CentralDirectory = true
	if _, _, err := Run(cfg, &algorithms.MCST{}, und, n); err == nil {
		t.Error("rewriting with the central directory should be rejected")
	}
	cfg = testConfig(2, n, 8)
	cfg.RewriteEdges = true
	cfg.CheckpointEvery = 1
	cfg.FailAtIteration = 2
	if _, _, err := Run(cfg, &algorithms.MCST{}, und, n); err == nil {
		t.Error("rewriting with failure injection should be rejected")
	}
}

func TestVertexReplicationRecoversFromLostPrimaries(t *testing.T) {
	edges, n := testGraph(7, false)
	und := graph.Undirected(edges)
	want := refalgo.BFSLevels(graph.BuildAdjacency(und, n), 0)

	cfg := testConfig(4, n, 5)
	cfg.ReplicateVertices = true
	eng, err := newEngine(cfg, &algorithms.BFS{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.execute(); err != nil {
		t.Fatal(err)
	}
	// Simulate a storage failure: drop every primary vertex chunk.
	nm := eng.layout.NumMachines
	for part := 0; part < eng.layout.NumPartitions; part++ {
		for idx := 0; idx < eng.vertexChunks(part); idx++ {
			home := storage.VertexChunkHome(part, idx, nm)
			eng.stores[home].DropVertexChunk(part, idx)
		}
	}
	values, err := eng.collectValues()
	if err != nil {
		t.Fatalf("recovery from replicas failed: %v", err)
	}
	for i := range values {
		if values[i].Level != want[i] {
			t.Fatalf("vertex %d after replica recovery: level %d, want %d", i, values[i].Level, want[i])
		}
	}
}

func TestVertexReplicationWithoutFlagCannotRecover(t *testing.T) {
	edges, n := testGraph(6, false)
	und := graph.Undirected(edges)
	cfg := testConfig(3, n, 5)
	eng, err := newEngine(cfg, &algorithms.BFS{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.execute(); err != nil {
		t.Fatal(err)
	}
	nm := eng.layout.NumMachines
	for part := 0; part < eng.layout.NumPartitions; part++ {
		if eng.vertexChunks(part) > 0 {
			home := storage.VertexChunkHome(part, 0, nm)
			eng.stores[home].DropVertexChunk(part, 0)
			break
		}
	}
	if _, err := eng.collectValues(); err == nil {
		t.Error("losing an unreplicated chunk should be unrecoverable")
	}
}

func TestReplicationDoublesVertexWriteTraffic(t *testing.T) {
	edges, n := testGraph(7, false)
	und := graph.Undirected(edges)
	base := testConfig(4, n, 5)
	_, plain, err := Run(base, &algorithms.BFS{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	repl := base
	repl.ReplicateVertices = true
	values, mirrored, err := Run(repl, &algorithms.BFS{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	want := refalgo.BFSLevels(graph.BuildAdjacency(und, n), 0)
	for i := range values {
		if values[i].Level != want[i] {
			t.Fatalf("vertex %d wrong with replication", i)
		}
	}
	if mirrored.BytesWritten <= plain.BytesWritten {
		t.Errorf("replication should write more: %d vs %d", mirrored.BytesWritten, plain.BytesWritten)
	}
}

func TestReplicaPlacementDistinctFromHome(t *testing.T) {
	for part := 0; part < 50; part++ {
		for idx := 0; idx < 50; idx++ {
			for _, m := range []int{2, 3, 8, 32} {
				h := storage.VertexChunkHome(part, idx, m)
				r := storage.VertexChunkReplica(part, idx, m)
				if h == r {
					t.Fatalf("replica co-located with home (part=%d idx=%d m=%d)", part, idx, m)
				}
				if r < 0 || r >= m {
					t.Fatalf("replica %d out of range", r)
				}
			}
		}
	}
	if storage.VertexChunkReplica(1, 1, 1) != 0 {
		t.Error("single machine replica must be machine 0")
	}
}
