package drive

import "sync/atomic"

// Transport is the seam between update producers (scatter) and consumers
// (gather): the one place where typed update records either stay typed
// slices or become encoded bytes. A driver Puts the records partition
// src's scatter emitted for partition dst, chunk by chunk, and later
// drains partition dst's pending chunks in the deterministic
// (source partition, chunk) fold order — either all at once (Drain) or
// source by source as each scatter completes (DrainFrom, the streaming
// consumer API behind the native driver's pipelined phase boundary).
// Encoding is a property of crossing a real boundary — the in-memory
// transport never encodes, the spilling transport encodes exactly the
// chunks that overflow its budget onto storage, and the DES driver's
// Wire always encodes because its simulated storage engines only move
// bytes.
//
// Concurrency contract (the native store's one-writer discipline):
// bucket (src, dst) is written only by the goroutine running scatter(src)
// — including any budget-pressure spilling, which sweeps row src only —
// until scatter(src)'s completion is published (a channel close or a
// phase barrier). Afterwards the bucket is read only by the goroutine
// running gather(dst), via DrainFrom(dst, src) or Drain(dst). The
// completion signal is the happens-before edge; no slot is ever touched
// from two goroutines without one. PendingBytes is a single atomic read,
// safe at any time — steal sweeps consult it live while producers are
// still Putting into the column.
//
// Transports never touch a clock, an RNG or a mailbox; spill I/O failure
// mid-phase is unrecoverable and panics with context.
type Transport[U any] interface {
	// Put transfers ownership of recs — one scatter chunk's worth of
	// updates from partition src to partition dst — to the transport.
	// The caller must not touch recs afterwards; the transport releases
	// it to the kernel pools once consumed. The returned tallies report
	// any spilling the Put triggered, so the driver can emit
	// PhaseSpill spans without the transport reading a clock.
	Put(src, dst int, recs []UpdRec[U]) (spilledBytes int64, spilledChunks int)
	// PendingBytes is D in the §5.4 steal criterion: the
	// encoded-equivalent bytes pending for partition dst. A single
	// atomic read — callable concurrently with Put and DrainFrom.
	PendingBytes(dst int) int64
	// Drain removes and returns dst's pending chunks in (source
	// partition, chunk production) order — the deterministic fold order.
	// Each chunk must be Loaded (any goroutine) and then Released.
	Drain(dst int) []PendingChunk[U]
	// DrainFrom removes and returns only the chunks src's scatter
	// emitted for dst, in production order. Draining src 0..np-1 in
	// ascending order yields exactly Drain's sequence, so a consumer
	// that folds each source's chunks as that source completes sees the
	// same deterministic fold order as one that waits for all of them.
	// Callable only after scatter(src)'s completion is published.
	DrainFrom(dst, src int) []PendingChunk[U]
	// Stats reports the cumulative spill tallies of the run.
	Stats() TransportStats
	// Close releases the transport's resources (spill files included).
	Close() error
}

// TransportStats are the cumulative spill tallies of one run.
type TransportStats struct {
	// SpillBytes counts encoded bytes written to spill storage.
	SpillBytes int64
	// SpillFiles counts spill files created (one per (src, dst) stream
	// that ever overflowed).
	SpillFiles int
}

// PendingChunk is one drained update chunk awaiting its gather fold.
// Load materializes the typed records — a pure computation safe on any
// goroutine, so drivers run it on the compute pool exactly like a chunk
// decode — and Release returns the scratch to the kernel pools (and, for
// the last spilled chunk of a drained bucket, reclaims the bucket's
// spill-file space).
type PendingChunk[U any] struct {
	// Bytes is the chunk's encoded-equivalent size, for byte tallies and
	// flight-recorder spans.
	Bytes   int64
	load    func() []UpdRec[U]
	release func([]UpdRec[U])
}

// Load materializes the chunk's records. Call exactly once.
func (c *PendingChunk[U]) Load() []UpdRec[U] { return c.load() }

// Release recycles the records Load returned. Call exactly once, after
// the fold has consumed them.
func (c *PendingChunk[U]) Release(recs []UpdRec[U]) { c.release(recs) }

// MemTransport is the zero-copy in-memory transport: pooled typed record
// slices move from scatter to gather through per-(src, dst) bucket slots
// with no encode/decode round-trip. Rows are allocated per source
// partition so concurrent producers write disjoint backing arrays, and
// the record slices themselves are arena-recycled across iterations
// through the kernel's per-core sharded pools (sync.Pool is per-P).
type MemTransport[U any] struct {
	updBytes int
	release  func([]UpdRec[U])
	// buckets[src][dst] holds the chunks src's scatter emitted for dst,
	// in production order. One writer per row during scatter, one reader
	// per column once the source completes (see the Transport contract).
	buckets [][][][]UpdRec[U]
	// pending[dst] is the column's encoded-equivalent byte total,
	// maintained atomically so steal sweeps can read it while producers
	// are still appending.
	pending []atomic.Int64
}

// NewMemTransport returns the in-memory transport over the kernel's
// record geometry and pools.
func (k *Kernel[V, U, A]) NewMemTransport() *MemTransport[U] {
	np := k.Layout.NumPartitions
	t := &MemTransport[U]{
		updBytes: k.UpdBytes,
		release:  k.ReleaseRecs,
		buckets:  make([][][][]UpdRec[U], np),
		pending:  make([]atomic.Int64, np),
	}
	for src := 0; src < np; src++ {
		t.buckets[src] = make([][][]UpdRec[U], np)
	}
	return t
}

// Put appends recs as one chunk of bucket (src, dst). Never spills.
func (t *MemTransport[U]) Put(src, dst int, recs []UpdRec[U]) (int64, int) {
	t.buckets[src][dst] = append(t.buckets[src][dst], recs)
	t.pending[dst].Add(int64(len(recs)) * int64(t.updBytes))
	return 0, 0
}

// PendingBytes reports the encoded-equivalent bytes pending for dst.
func (t *MemTransport[U]) PendingBytes(dst int) int64 {
	return t.pending[dst].Load()
}

// Drain removes and returns dst's chunks in (src, chunk) order.
func (t *MemTransport[U]) Drain(dst int) []PendingChunk[U] {
	var out []PendingChunk[U]
	for src := range t.buckets {
		out = append(out, t.DrainFrom(dst, src)...)
	}
	return out
}

// DrainFrom removes and returns bucket (src, dst)'s chunks in
// production order.
func (t *MemTransport[U]) DrainFrom(dst, src int) []PendingChunk[U] {
	chunks := t.buckets[src][dst]
	if len(chunks) == 0 {
		return nil
	}
	t.buckets[src][dst] = nil
	out := make([]PendingChunk[U], 0, len(chunks))
	var drained int64
	for _, recs := range chunks {
		recs := recs
		sz := int64(len(recs)) * int64(t.updBytes)
		drained += sz
		out = append(out, PendingChunk[U]{
			Bytes:   sz,
			load:    func() []UpdRec[U] { return recs },
			release: t.release,
		})
	}
	t.pending[dst].Add(-drained)
	return out
}

// Stats reports zero: the in-memory transport never spills.
func (t *MemTransport[U]) Stats() TransportStats { return TransportStats{} }

// Close is a no-op: all memory is pooled or garbage-collected.
func (t *MemTransport[U]) Close() error { return nil }

// drainState tracks one drained bucket's outstanding spilled chunks so
// the bucket's spill stream is truncated exactly once, after the last
// spilled chunk has been folded and released.
type drainState struct {
	remaining atomic.Int64
	truncate  func(stream string)
	stream    string
}

func (d *drainState) done() {
	if d.remaining.Add(-1) == 0 {
		d.truncate(d.stream)
	}
}
