package drive

import "sync/atomic"

// Transport is the seam between update producers (scatter) and consumers
// (gather): the one place where typed update records either stay typed
// slices or become encoded bytes. A driver Puts the records partition
// src's scatter emitted for partition dst, chunk by chunk, and later
// Drains partition dst's pending chunks in the deterministic
// (source partition, chunk) fold order. Encoding is a property of
// crossing a real boundary — the in-memory transport never encodes, the
// spilling transport encodes exactly the chunks that overflow its budget
// onto storage, and the DES driver's Wire always encodes because its
// simulated storage engines only move bytes.
//
// Concurrency contract (the native store's one-writer discipline):
// during a scatter phase, row src is written only by the goroutine
// processing partition src; during a gather phase, column dst is drained
// only by the goroutine processing partition dst. The two phases are
// separated by a barrier, and PendingBytes is only consulted between
// phases (the steal criterion snapshot), so no slot is ever touched from
// two goroutines without a barrier in between.
//
// Transports never touch a clock, an RNG or a mailbox; spill I/O failure
// mid-phase is unrecoverable and panics with context.
type Transport[U any] interface {
	// Put transfers ownership of recs — one scatter chunk's worth of
	// updates from partition src to partition dst — to the transport.
	// The caller must not touch recs afterwards; the transport releases
	// it to the kernel pools once consumed. The returned tallies report
	// any spilling the Put triggered, so the driver can emit
	// PhaseSpill spans without the transport reading a clock.
	Put(src, dst int, recs []UpdRec[U]) (spilledBytes int64, spilledChunks int)
	// PendingBytes is D in the §5.4 steal criterion: the
	// encoded-equivalent bytes pending for partition dst.
	PendingBytes(dst int) int64
	// Drain removes and returns dst's pending chunks in (source
	// partition, chunk production) order — the deterministic fold order.
	// Each chunk must be Loaded (any goroutine) and then Released.
	Drain(dst int) []PendingChunk[U]
	// Stats reports the cumulative spill tallies of the run.
	Stats() TransportStats
	// Close releases the transport's resources (spill files included).
	Close() error
}

// TransportStats are the cumulative spill tallies of one run.
type TransportStats struct {
	// SpillBytes counts encoded bytes written to spill storage.
	SpillBytes int64
	// SpillFiles counts spill files created (one per (src, dst) stream
	// that ever overflowed).
	SpillFiles int
}

// PendingChunk is one drained update chunk awaiting its gather fold.
// Load materializes the typed records — a pure computation safe on any
// goroutine, so drivers run it on the compute pool exactly like a chunk
// decode — and Release returns the scratch to the kernel pools (and, for
// the last spilled chunk of a drained column, reclaims the column's
// spill-file space).
type PendingChunk[U any] struct {
	// Bytes is the chunk's encoded-equivalent size, for byte tallies and
	// flight-recorder spans.
	Bytes   int64
	load    func() []UpdRec[U]
	release func([]UpdRec[U])
}

// Load materializes the chunk's records. Call exactly once.
func (c *PendingChunk[U]) Load() []UpdRec[U] { return c.load() }

// Release recycles the records Load returned. Call exactly once, after
// the fold has consumed them.
func (c *PendingChunk[U]) Release(recs []UpdRec[U]) { c.release(recs) }

// MemTransport is the zero-copy in-memory transport: pooled typed record
// slices move from scatter to gather through per-(src, dst) bucket slots
// with no encode/decode round-trip. Rows are allocated per source
// partition so concurrent producers write disjoint backing arrays, and
// the record slices themselves are arena-recycled across iterations
// through the kernel's per-core sharded pools (sync.Pool is per-P).
type MemTransport[U any] struct {
	updBytes int
	release  func([]UpdRec[U])
	// buckets[src][dst] holds the chunks src's scatter emitted for dst,
	// in production order. One writer per row during scatter, one reader
	// per column during gather (see the Transport contract).
	buckets [][][][]UpdRec[U]
}

// NewMemTransport returns the in-memory transport over the kernel's
// record geometry and pools.
func (k *Kernel[V, U, A]) NewMemTransport() *MemTransport[U] {
	np := k.Layout.NumPartitions
	t := &MemTransport[U]{
		updBytes: k.UpdBytes,
		release:  k.ReleaseRecs,
		buckets:  make([][][][]UpdRec[U], np),
	}
	for src := 0; src < np; src++ {
		t.buckets[src] = make([][][]UpdRec[U], np)
	}
	return t
}

// Put appends recs as one chunk of bucket (src, dst). Never spills.
func (t *MemTransport[U]) Put(src, dst int, recs []UpdRec[U]) (int64, int) {
	t.buckets[src][dst] = append(t.buckets[src][dst], recs)
	return 0, 0
}

// PendingBytes sums the encoded-equivalent bytes pending for dst.
func (t *MemTransport[U]) PendingBytes(dst int) int64 {
	var total int64
	for src := range t.buckets {
		for _, recs := range t.buckets[src][dst] {
			total += int64(len(recs)) * int64(t.updBytes)
		}
	}
	return total
}

// Drain removes and returns dst's chunks in (src, chunk) order.
func (t *MemTransport[U]) Drain(dst int) []PendingChunk[U] {
	var out []PendingChunk[U]
	for src := range t.buckets {
		for _, recs := range t.buckets[src][dst] {
			recs := recs
			out = append(out, PendingChunk[U]{
				Bytes:   int64(len(recs)) * int64(t.updBytes),
				load:    func() []UpdRec[U] { return recs },
				release: t.release,
			})
		}
		t.buckets[src][dst] = nil
	}
	return out
}

// Stats reports zero: the in-memory transport never spills.
func (t *MemTransport[U]) Stats() TransportStats { return TransportStats{} }

// Close is a no-op: all memory is pooled or garbage-collected.
func (t *MemTransport[U]) Close() error { return nil }

// drainState tracks one drained column's outstanding spilled chunks so
// the column's spill streams are truncated exactly once, after the last
// spilled chunk has been folded and released.
type drainState struct {
	remaining atomic.Int64
	truncate  func(streams []string)
	streams   []string
}

func (d *drainState) done() {
	if d.remaining.Add(-1) == 0 {
		d.truncate(d.streams)
	}
}
