package drive

import (
	"sync/atomic"
	"testing"

	"chaos/internal/algorithms"
	"chaos/internal/graph"
	"chaos/internal/partition"
)

func TestKernelUpdateRecordRoundTrip(t *testing.T) {
	for _, n := range []uint64{1 << 10, 1 << 33} {
		layout, err := partition.FixedLayout(n, 2, 4)
		if err != nil {
			t.Fatal(err)
		}
		k := NewKernel(&algorithms.PageRank{Iterations: 1}, layout)
		wantID := 4
		if n >= 1<<32 {
			wantID = 8
		}
		if k.IDBytes != wantID {
			t.Errorf("n=%d: IDBytes=%d, want %d", n, k.IDBytes, wantID)
		}
		dst := graph.VertexID(n - 3)
		val := float32(0.25)
		buf := k.AppendUpdate(nil, dst, &val)
		if len(buf) != k.UpdBytes {
			t.Fatalf("record size %d, want %d", len(buf), k.UpdBytes)
		}
		r := k.DecodeUpdate(buf)
		if r.Dst != dst || r.Val != val {
			t.Errorf("round trip (%d, %g) -> (%d, %g)", dst, val, r.Dst, r.Val)
		}
		recs := k.DecodeUpdateChunk(nil, append(append([]byte{}, buf...), buf...))
		if len(recs) != 2 || recs[1].Dst != dst {
			t.Errorf("chunk decode got %+v", recs)
		}
	}
}

func TestSpillLimit(t *testing.T) {
	for _, tc := range []struct{ chunk, rec, want int }{
		{1024, 8, 1024},
		{1024, 12, 1032}, // smallest whole number of 12-byte records >= 1024
		{4, 8, 8},        // at least one record
	} {
		if got := SpillLimit(tc.chunk, tc.rec); got != tc.want {
			t.Errorf("SpillLimit(%d, %d) = %d, want %d", tc.chunk, tc.rec, got, tc.want)
		}
	}
}

// TestPoolChainOrder submits a chain of dependent tasks interleaved with
// independent ones and checks chained tasks observe their predecessors'
// effects (the fold-ordering contract both drivers rely on).
func TestPoolChainOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		var order [64]int32
		var seq atomic.Int32
		var tail *Task
		for i := 0; i < len(order); i++ {
			i := i
			tk := &Task{Prev: tail, Fn: func() { order[i] = seq.Add(1) }}
			p.Submit(tk)
			tail = tk
		}
		tail.Wait()
		p.Close()
		for i := 1; i < len(order); i++ {
			if order[i] <= order[i-1] {
				t.Fatalf("workers=%d: chained task %d ran at %d, before predecessor at %d",
					workers, i, order[i], order[i-1])
			}
		}
	}
}

func TestStealCriterion(t *testing.T) {
	// No data, no steal; alpha 0 disables.
	if StealCriterion(10, 0, 1, 1) || StealCriterion(10, 1000, 1, 0) {
		t.Error("degenerate cases should reject")
	}
	// Large D vs small V: worth stealing at alpha 1.
	if !StealCriterion(10, 1_000_000, 1, 1) {
		t.Error("large remaining work should accept")
	}
	// Tiny D vs large V: not worth a vertex-set copy.
	if StealCriterion(1_000_000, 10, 1, 1) {
		t.Error("tiny remaining work should reject")
	}
}
