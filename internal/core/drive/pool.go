package drive

import (
	"runtime"
	"sync"
)

// Task is one unit of off-thread compute. Fn runs on a pool worker after
// the optional predecessor completes; Done is closed when Fn has
// returned.
type Task struct {
	Prev *Task
	Fn   func()
	Done chan struct{}
}

// Wait blocks until the task has completed. The blocking receive also
// establishes the happens-before edge that lets the caller read the
// task's results race-free.
func (t *Task) Wait() { <-t.Done }

// ClosedChan is a pre-closed done channel for inline-computed tasks.
var ClosedChan = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// Pool runs chunk tasks on a fixed set of goroutines. Tasks are executed
// FIFO per worker pull; a task's Prev (if any) is always submitted
// earlier, so the pull order guarantees the predecessor has been picked
// up by some worker (or finished) before the successor runs — chained
// waits cannot deadlock, for any pool size.
//
// With one worker (or on a single-core host) there is nothing to overlap
// with, so the pool degenerates to inline mode: Submit runs the task on
// the spot and Wait is free. Because every task is pure and ordered only
// by its explicit dependencies, inline execution produces bit-identical
// results to any pool size — inline mode IS the serial baseline the
// DES driver's determinism tests compare against. The native driver
// shares the pool for its per-chunk compute: there the pool size only
// changes wall-clock overlap, never results, by the same purity argument.
type Pool struct {
	inline bool
	tasks  chan *Task
	wg     sync.WaitGroup
}

// NewPool builds a pool of the given width; workers <= 0 means
// GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Clamp: the worker count reaches this point from the network-facing
	// job API, and goroutines are a real host resource. Extra workers
	// beyond the core count buy nothing for pure compute; the floor
	// keeps a real pool testable on small hosts.
	if limit := max(4*runtime.GOMAXPROCS(0), 16); workers > limit {
		workers = limit
	}
	if workers <= 1 {
		return &Pool{inline: true}
	}
	p := &Pool{tasks: make(chan *Task, 4096)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for t := range p.tasks {
				if t.Prev != nil {
					<-t.Prev.Done
					t.Prev = nil
				}
				t.Fn()
				// Drop the closure so the captured inputs (notably a
				// pre-read chunk's bytes) become collectable as soon as
				// the result exists, not when the stream is released.
				t.Fn = nil
				close(t.Done)
			}
		}()
	}
	return p
}

// Inline reports whether the pool runs tasks at submission time (the
// serial degenerate mode).
func (p *Pool) Inline() bool { return p.inline }

// Submit enqueues a task. Submission order is the determinism contract:
// a task must be submitted after its Prev and after any task whose Done
// channel its Fn waits on — which is also why inline execution at submit
// time is always legal.
func (p *Pool) Submit(t *Task) {
	if p.inline {
		t.Done = ClosedChan
		t.Fn()
		t.Fn, t.Prev = nil, nil
		return
	}
	t.Done = make(chan struct{})
	p.tasks <- t
}

// Close drains and stops the workers. All submitted tasks run to
// completion first.
func (p *Pool) Close() {
	if p.inline {
		return
	}
	close(p.tasks)
	p.wg.Wait()
}
