package drive

import (
	"fmt"
	"sync/atomic"

	"chaos/internal/storage"
)

// SpillTransport is the out-of-core transport: it keeps buckets typed and
// in memory exactly like MemTransport until the configured budget is
// exceeded, then encodes whole overflowing buckets with the kernel codec
// and appends them to one storage stream per (src, dst) pair. Drained
// buckets stream their spilled chunks back in production order — spilled
// chunks always precede a bucket's in-memory tail, so the per-(src, dst)
// record sequence, and with it every float fold, is identical to the
// all-in-memory run.
//
// Budget enforcement keeps the one-writer discipline: a Put that tips the
// total over budget spills buckets of its own source row only, so no lock
// protects bucket state; only the global byte counters and the backend
// (which serializes internally) are shared.
type SpillTransport[U any] struct {
	updBytes int
	budget   int64
	backend  storage.Backend
	cleanup  func() error

	encode      func(buf []byte, recs []UpdRec[U]) []byte
	decode      func(recs []UpdRec[U], data []byte) []UpdRec[U]
	grabBuf     func() []byte
	releaseBuf  func([]byte)
	grabRecs    func() []UpdRec[U]
	releaseRecs func([]UpdRec[U])

	memBytes   atomic.Int64
	spillBytes atomic.Int64
	spillFiles atomic.Int64

	rows []spillRow[U]
	// pending[dst] is the column's encoded-equivalent byte total
	// (spilled and resident both — the codec is fixed-width, so
	// spilling a chunk never changes its pending contribution),
	// maintained atomically so steal sweeps can read it while
	// producers are still Putting.
	pending []atomic.Int64
}

// spillRow is one source partition's buckets. Allocated per row so
// concurrent producers write disjoint backing arrays.
type spillRow[U any] struct {
	buckets []spillBucket[U]
}

// spillBucket is one (src, dst) slot: the spilled chunk refs (oldest
// first, always preceding mem in fold order) plus the in-memory tail.
type spillBucket[U any] struct {
	stream  string
	created bool       // stream file exists this run
	refs    []chunkRef // on-disk chunks, production order
	mem     [][]UpdRec[U]
}

// chunkRef locates one encoded chunk inside its bucket's stream.
type chunkRef struct {
	off int64
	n   int
}

// NewSpillTransport returns the spilling transport over the kernel's
// codec and pools. budget is the in-memory byte ceiling
// (encoded-equivalent); backend receives the overflow, one stream per
// (src, dst) bucket; cleanup (optional) runs after the backend closes,
// typically removing the spill directory.
func (k *Kernel[V, U, A]) NewSpillTransport(budget int64, backend storage.Backend, cleanup func() error) *SpillTransport[U] {
	np := k.Layout.NumPartitions
	t := &SpillTransport[U]{
		updBytes:    k.UpdBytes,
		budget:      budget,
		backend:     backend,
		cleanup:     cleanup,
		encode:      k.AppendRecs,
		decode:      k.DecodeUpdateChunk,
		grabBuf:     k.GrabBuf,
		releaseBuf:  k.ReleaseBuf,
		grabRecs:    k.GrabRecs,
		releaseRecs: k.ReleaseRecs,
		rows:        make([]spillRow[U], np),
		pending:     make([]atomic.Int64, np),
	}
	for src := 0; src < np; src++ {
		t.rows[src].buckets = make([]spillBucket[U], np)
		for dst := 0; dst < np; dst++ {
			t.rows[src].buckets[dst].stream = fmt.Sprintf("upd.s%04d.d%04d", src, dst)
		}
	}
	return t
}

// Put appends recs as one chunk of bucket (src, dst), then — if the
// in-memory total crossed the budget — spills buckets of row src until
// the total is back under budget or the row is empty.
func (t *SpillTransport[U]) Put(src, dst int, recs []UpdRec[U]) (int64, int) {
	b := &t.rows[src].buckets[dst]
	b.mem = append(b.mem, recs)
	sz := int64(len(recs)) * int64(t.updBytes)
	t.pending[dst].Add(sz)
	if t.memBytes.Add(sz) <= t.budget {
		return 0, 0
	}
	var bytes int64
	var chunks int
	for d := 0; d < len(t.rows[src].buckets) && t.memBytes.Load() > t.budget; d++ {
		n, c := t.spillBucket(src, d)
		bytes += n
		chunks += c
	}
	return bytes, chunks
}

// spillBucket encodes and writes out every in-memory chunk of bucket
// (src, dst), oldest first, preserving the record sequence on disk.
func (t *SpillTransport[U]) spillBucket(src, dst int) (int64, int) {
	b := &t.rows[src].buckets[dst]
	if len(b.mem) == 0 {
		return 0, 0
	}
	buf := t.grabBuf()
	n := len(b.mem)
	var freed, written int64
	for i, recs := range b.mem {
		buf = t.encode(buf[:0], recs)
		off, err := t.backend.Write(b.stream, buf)
		if err != nil {
			// Mid-phase spill failure is unrecoverable: the update set
			// can no longer be materialized for gather.
			panic(fmt.Sprintf("drive: spill write %s: %v", b.stream, err))
		}
		if !b.created {
			b.created = true
			t.spillFiles.Add(1)
		}
		b.refs = append(b.refs, chunkRef{off: off, n: len(buf)})
		freed += int64(len(recs)) * int64(t.updBytes)
		written += int64(len(buf))
		t.releaseRecs(recs)
		b.mem[i] = nil
	}
	b.mem = b.mem[:0]
	t.releaseBuf(buf)
	t.memBytes.Add(-freed)
	t.spillBytes.Add(written)
	return written, n
}

// PendingBytes reports dst's encoded-equivalent bytes, spilled and
// resident.
func (t *SpillTransport[U]) PendingBytes(dst int) int64 {
	return t.pending[dst].Load()
}

// Drain removes and returns dst's chunks in (src, chunk) order: each
// bucket's spilled chunks first (they are the oldest), then its
// in-memory tail.
func (t *SpillTransport[U]) Drain(dst int) []PendingChunk[U] {
	var out []PendingChunk[U]
	for src := range t.rows {
		out = append(out, t.DrainFrom(dst, src)...)
	}
	return out
}

// DrainFrom removes and returns bucket (src, dst)'s chunks in
// production order: the spilled prefix, then the in-memory tail. The
// bucket's spill stream is truncated once its last spilled chunk is
// released.
func (t *SpillTransport[U]) DrainFrom(dst, src int) []PendingChunk[U] {
	b := &t.rows[src].buckets[dst]
	if len(b.refs) == 0 && len(b.mem) == 0 {
		return nil
	}
	out := make([]PendingChunk[U], 0, len(b.refs)+len(b.mem))
	var drained int64
	if len(b.refs) > 0 {
		state := &drainState{stream: b.stream, truncate: func(stream string) {
			if err := t.backend.Truncate(stream); err != nil {
				panic(fmt.Sprintf("drive: spill truncate %s: %v", stream, err))
			}
		}}
		state.remaining.Store(int64(len(b.refs)))
		for _, ref := range b.refs {
			ref := ref
			stream := b.stream
			drained += int64(ref.n)
			out = append(out, PendingChunk[U]{
				Bytes: int64(ref.n),
				load: func() []UpdRec[U] {
					data, err := t.backend.Read(stream, ref.off, ref.n)
					if err != nil {
						panic(fmt.Sprintf("drive: spill read %s@%d: %v", stream, ref.off, err))
					}
					return t.decode(t.grabRecs(), data)
				},
				release: func(recs []UpdRec[U]) {
					t.releaseRecs(recs)
					state.done()
				},
			})
		}
		b.refs = nil
	}
	for _, recs := range b.mem {
		recs := recs
		sz := int64(len(recs)) * int64(t.updBytes)
		drained += sz
		out = append(out, PendingChunk[U]{
			Bytes: sz,
			load:  func() []UpdRec[U] { return recs },
			release: func(recs []UpdRec[U]) {
				t.memBytes.Add(-sz)
				t.releaseRecs(recs)
			},
		})
	}
	b.mem = nil
	t.pending[dst].Add(-drained)
	return out
}

// Stats reports the run's cumulative spill tallies.
func (t *SpillTransport[U]) Stats() TransportStats {
	return TransportStats{
		SpillBytes: t.spillBytes.Load(),
		SpillFiles: int(t.spillFiles.Load()),
	}
}

// Close closes the backend and then runs the cleanup hook (spill
// directory removal), returning the first error.
func (t *SpillTransport[U]) Close() error {
	err := t.backend.Close()
	if t.cleanup != nil {
		if cerr := t.cleanup(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
