package drive

// Flight-recorder trace hook. Both drivers feed the same span stream:
// one Span per (machine, phase, partition) unit of work, emitted at the
// instant the work finishes. The hook is observational-only by the same
// argument as the progress callback — it reads counters the driver has
// already settled and cannot reach a clock, an RNG or a mailbox — so a
// run with a subscriber is bit-identical to one without (the DES
// driver's virtual clock included; see TestTraceDeterminism).
//
// Time base: under the DES driver Start/Dur are virtual nanoseconds
// (the simulation clock); under the native driver they are host
// wall-clock nanoseconds since the run started. Spans from one run
// always share one base, so a timeline view needs no unit switch.

// Phase labels carried by Span.Phase.
const (
	// PhasePreprocess is the §3 input pass: edge binning, degree
	// exchange, vertex-set initialization. Emitted with Iter == -1
	// (pre-processing precedes iteration 0).
	PhasePreprocess = "preprocess"
	// PhaseScatter is one partition's scatter work (§5.1): vertex load,
	// edge streaming, update encoding and spilling.
	PhaseScatter = "scatter"
	// PhaseGather is one partition's gather work (§5.2): vertex load,
	// update streaming, accumulator folds.
	PhaseGather = "gather"
	// PhaseApply is one partition's apply wrap-up (§5.3): stealer
	// accumulator merges, the Apply loop, vertex write-back.
	PhaseApply = "apply"
	// PhaseSteal summarizes one machine's steal sweep in a phase: how
	// many proposals were accepted and rejected, and how long the sweep
	// ran. Emitted with Part == -1 (the sweep spans partitions).
	PhaseSteal = "steal"
	// PhaseSpill summarizes the update chunks a partition's scatter
	// merge pushed over the transport's memory budget onto spill
	// storage: BytesOut is the encoded bytes written, Chunks the chunks
	// spilled, and the span brackets the merge during which the
	// overflow happened. Only the native driver's spilling transport
	// emits it (the DES models storage instead of spilling to it).
	PhaseSpill = "spill"
)

// Span is one flight-recorder record: a unit of per-machine work with
// its time range and the byte/chunk/steal tallies it settled. JSON tags
// are the wire form GET /v1/jobs/{id}/trace serves.
type Span struct {
	// Iter is the 0-based iteration, or -1 for pre-processing.
	Iter int `json:"iter"`
	// Machine is the computation engine that did the work.
	Machine int `json:"machine"`
	// Part is the partition worked on, or -1 for machine-scoped spans
	// (preprocess, steal sweeps).
	Part int `json:"part"`
	// Phase is one of the Phase* labels above.
	Phase string `json:"phase"`
	// Stolen marks work done on another master's partition.
	Stolen bool `json:"stolen,omitempty"`
	// Start/Dur are nanoseconds — virtual under the DES driver, host
	// wall-clock since run start under the native driver.
	Start int64 `json:"startNs"`
	Dur   int64 `json:"durNs"`
	// Chunks counts edge/update chunks streamed through the span.
	Chunks int `json:"chunks,omitempty"`
	// BytesIn / BytesOut are the bytes decoded into and encoded out of
	// the span's work (vertex loads and chunk streams in; update spills
	// and vertex write-backs out).
	BytesIn  int64 `json:"bytesIn,omitempty"`
	BytesOut int64 `json:"bytesOut,omitempty"`
	// StealsAccepted / StealsRejected are the verdicts of a PhaseSteal
	// sweep's proposals.
	StealsAccepted int `json:"stealsAccepted,omitempty"`
	StealsRejected int `json:"stealsRejected,omitempty"`
}

// TraceFn receives spans as the run settles them. Under the DES driver
// it is invoked from the single simulation goroutine; under the native
// driver concurrently from every machine goroutine, so implementations
// must be safe for concurrent use (the obs.Ring recorder is). Keep it
// cheap: a slow callback stalls host wall-clock, never simulated time
// or results.
type TraceFn func(Span)
