package drive

import (
	"testing"

	"chaos/internal/algorithms"
	"chaos/internal/graph"
	"chaos/internal/partition"
	"chaos/internal/storage"
)

func testKernel(t *testing.T, np int) *Kernel[algorithms.PRVertex, float32, float64] {
	t.Helper()
	layout, err := partition.FixedLayout(1<<10, 1, np)
	if err != nil {
		t.Fatal(err)
	}
	return NewKernel(&algorithms.PageRank{Iterations: 1}, layout)
}

// TestReleaseRecsRetentionBound pins the pool-retention fix: a scratch
// record slice whose encoded-equivalent capacity exceeds RetainBytes is
// dropped on release instead of parked in the pool, so one giant
// iteration cannot pin its peak allocation for the rest of the run.
func TestReleaseRecsRetentionBound(t *testing.T) {
	k := testKernel(t, 2)
	k.RetainBytes = 1 << 10
	oversized := (k.RetainBytes/k.UpdBytes)*2 + 7 // distinctive cap, over bound
	k.ReleaseRecs(make([]UpdRec[float32], 0, oversized))
	if got := k.GrabRecs(); cap(got) == oversized {
		t.Fatalf("oversized slice (cap %d) came back from the pool despite RetainBytes=%d",
			oversized, k.RetainBytes)
	}
	// A compliant slice is retained: put-then-get on one goroutine
	// returns the same backing array (per-P pool, nothing intervenes).
	// Retried because the race detector makes sync.Pool drop puts at
	// random — one retained round trip out of 32 proves the path.
	retained := false
	for i := 0; i < 32 && !retained; i++ {
		ok := make([]UpdRec[float32], 0, 8)
		k.ReleaseRecs(ok)
		retained = cap(k.GrabRecs()) == cap(ok)
	}
	if !retained {
		t.Fatal("in-bound slices are never retained by the pool")
	}
}

// TestReleaseBufRetentionBound is the byte-buffer analogue.
func TestReleaseBufRetentionBound(t *testing.T) {
	k := testKernel(t, 2)
	k.RetainBytes = 1 << 10
	oversized := k.RetainBytes*2 + 7
	k.ReleaseBuf(make([]byte, 0, oversized))
	if got := k.GrabBuf(); cap(got) == oversized {
		t.Fatalf("oversized buffer (cap %d) came back from the pool despite RetainBytes=%d",
			oversized, k.RetainBytes)
	}
}

// chunkOf builds one update chunk with recognizable payloads.
func chunkOf(base int, n int) []UpdRec[float32] {
	recs := make([]UpdRec[float32], n)
	for i := range recs {
		recs[i] = UpdRec[float32]{Dst: graph.VertexID(base + i), Val: float32(base) + float32(i)/16}
	}
	return recs
}

// drainAll loads and releases every pending chunk of dst, returning the
// concatenated record sequence (the fold order the gather path sees).
func drainAll[U any](tr Transport[U], dst int) []UpdRec[U] {
	var seq []UpdRec[U]
	for _, pc := range tr.Drain(dst) {
		recs := pc.Load()
		seq = append(seq, recs...)
		pc.Release(recs)
	}
	return seq
}

// TestMemTransportFoldOrder checks the zero-copy transport hands chunks
// back in (source partition, production) order with contents intact.
func TestMemTransportFoldOrder(t *testing.T) {
	k := testKernel(t, 3)
	tr := k.NewMemTransport()
	// Interleave producers: src 2 first, then 0, then 2 again, then 1.
	var want []UpdRec[float32]
	puts := []struct{ src, base int }{{2, 100}, {0, 200}, {2, 300}, {1, 400}}
	for _, p := range puts {
		c := chunkOf(p.base, 5)
		if sb, sn := tr.Put(p.src, 1, append([]UpdRec[float32](nil), c...)); sb != 0 || sn != 0 {
			t.Fatalf("MemTransport.Put reported spilling (%d, %d)", sb, sn)
		}
	}
	// Fold order: src ascending, each src's chunks in production order.
	for _, p := range []struct{ src, base int }{{0, 200}, {1, 400}, {2, 100}, {2, 300}} {
		want = append(want, chunkOf(p.base, 5)...)
	}
	if got := tr.PendingBytes(1); got != int64(len(want))*int64(k.UpdBytes) {
		t.Fatalf("PendingBytes = %d, want %d", got, int64(len(want))*int64(k.UpdBytes))
	}
	seq := drainAll[float32](tr, 1)
	if len(seq) != len(want) {
		t.Fatalf("drained %d records, want %d", len(seq), len(want))
	}
	for i := range seq {
		if seq[i] != want[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, seq[i], want[i])
		}
	}
	if tr.PendingBytes(1) != 0 {
		t.Error("column still pending after drain")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSpillTransportRoundTrip forces every chunk through the disk path
// (budget 0 keeps nothing resident) and checks the drained fold order
// and contents match production order exactly, streams are truncated
// after the last release, and the cleanup hook runs on Close.
func TestSpillTransportRoundTrip(t *testing.T) {
	k := testKernel(t, 3)
	backend, err := storage.NewFileBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cleaned := false
	tr := k.NewSpillTransport(0, backend, func() error { cleaned = true; return nil })

	var want []UpdRec[float32]
	for _, p := range []struct{ src, base int }{{1, 100}, {0, 200}, {1, 300}} {
		c := chunkOf(p.base, 4)
		sb, sn := tr.Put(p.src, 2, append([]UpdRec[float32](nil), c...))
		if sb == 0 || sn == 0 {
			t.Fatalf("zero budget should spill every Put, got (%d, %d)", sb, sn)
		}
	}
	for _, p := range []struct{ src, base int }{{0, 200}, {1, 100}, {1, 300}} {
		want = append(want, chunkOf(p.base, 4)...)
	}

	st := tr.Stats()
	if st.SpillBytes != int64(len(want))*int64(k.UpdBytes) {
		t.Errorf("SpillBytes = %d, want %d", st.SpillBytes, int64(len(want))*int64(k.UpdBytes))
	}
	if st.SpillFiles != 2 { // streams (0,2) and (1,2)
		t.Errorf("SpillFiles = %d, want 2", st.SpillFiles)
	}
	if got := tr.PendingBytes(2); got != int64(len(want))*int64(k.UpdBytes) {
		t.Errorf("PendingBytes = %d, want %d", got, int64(len(want))*int64(k.UpdBytes))
	}

	seq := drainAll[float32](tr, 2)
	if len(seq) != len(want) {
		t.Fatalf("drained %d records, want %d", len(seq), len(want))
	}
	for i := range seq {
		if seq[i] != want[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, seq[i], want[i])
		}
	}
	// The last Release of a column's spilled chunks truncates its streams.
	for _, stream := range []string{"upd.s0000.d0002", "upd.s0001.d0002"} {
		if sz, err := backend.Size(stream); err != nil || sz != 0 {
			t.Errorf("stream %s not truncated after drain: size %d, err %v", stream, sz, err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if !cleaned {
		t.Error("cleanup hook did not run on Close")
	}
}

// TestStreamingDrainFoldOrder pins the DrainFrom contract on both
// transports: consuming source by source — interleaved with later
// sources still producing, the pipelined phase layout — yields exactly
// the (source partition, chunk production) record sequence a full Drain
// would, and PendingBytes tracks the undrained remainder atomically.
// The spilling arm runs under a budget that spills part of src 0's
// bucket, so the drained sequence interleaves a spilled prefix with the
// resident tail mid-stream.
func TestStreamingDrainFoldOrder(t *testing.T) {
	k := testKernel(t, 3)
	backend, err := storage.NewFileBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const chunkRecs = 6
	// Budget fits two chunks: src 0's third Put spills its bucket, the
	// fourth chunk stays resident — DrainFrom(1, 0) must hand back the
	// spilled prefix then the mem tail.
	budget := int64(2*chunkRecs+1) * int64(k.UpdBytes)
	transports := map[string]Transport[float32]{
		"mem":   k.NewMemTransport(),
		"spill": k.NewSpillTransport(budget, backend, nil),
	}
	for _, name := range []string{"mem", "spill"} {
		tr := transports[name]
		t.Run(name, func(t *testing.T) {
			var want0, want2 []UpdRec[float32]
			for i := 0; i < 4; i++ {
				c := chunkOf(100*i, chunkRecs)
				want0 = append(want0, c...)
				tr.Put(0, 1, append([]UpdRec[float32](nil), c...))
			}
			// Source 1 emitted nothing; source 2 produces AFTER source 0
			// is already drained (the streaming interleave).
			var got []UpdRec[float32]
			drainFrom := func(src int) {
				for _, pc := range tr.DrainFrom(1, src) {
					recs := pc.Load()
					got = append(got, recs...)
					pc.Release(recs)
				}
			}
			drainFrom(0)
			if len(got) != len(want0) {
				t.Fatalf("src 0 drained %d records, want %d", len(got), len(want0))
			}
			for _, base := range []int{500, 600} {
				c := chunkOf(base, chunkRecs)
				want2 = append(want2, c...)
				tr.Put(2, 1, append([]UpdRec[float32](nil), c...))
			}
			if gotP, wantP := tr.PendingBytes(1), int64(len(want2))*int64(k.UpdBytes); gotP != wantP {
				t.Errorf("PendingBytes after partial drain = %d, want %d", gotP, wantP)
			}
			drainFrom(1)
			drainFrom(2)
			want := append(append([]UpdRec[float32](nil), want0...), want2...)
			if len(got) != len(want) {
				t.Fatalf("drained %d records, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("record %d: got %+v, want %+v (streaming fold order broken)", i, got[i], want[i])
				}
			}
			if tr.PendingBytes(1) != 0 {
				t.Error("column still pending after full streamed drain")
			}
			if err := tr.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
	if st := transports["spill"].Stats(); st.SpillBytes == 0 {
		t.Error("spill arm never spilled; the spilled-prefix interleave went unexercised")
	}
}

// TestSpillTransportPartialSpill puts chunks under a budget that spills
// some but not all: the drained sequence must still be exactly the
// production sequence (spilled prefix, then the in-memory tail).
func TestSpillTransportPartialSpill(t *testing.T) {
	k := testKernel(t, 2)
	backend, err := storage.NewFileBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const chunkRecs = 8
	// Budget fits two chunks; the third Put tips over and spills the
	// bucket, the fourth stays resident.
	budget := int64(2*chunkRecs+1) * int64(k.UpdBytes)
	tr := k.NewSpillTransport(budget, backend, nil)
	var want []UpdRec[float32]
	for i := 0; i < 4; i++ {
		c := chunkOf(100*i, chunkRecs)
		want = append(want, c...)
		tr.Put(0, 1, append([]UpdRec[float32](nil), c...))
	}
	if st := tr.Stats(); st.SpillBytes == 0 {
		t.Fatal("budget was never exceeded; test is vacuous")
	}
	seq := drainAll[float32](tr, 1)
	if len(seq) != len(want) {
		t.Fatalf("drained %d records, want %d", len(seq), len(want))
	}
	for i := range seq {
		if seq[i] != want[i] {
			t.Fatalf("record %d: got %+v, want %+v (spill/mem fold order broken)", i, seq[i], want[i])
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}
