// Package drive is the driver-neutral toolkit of the Chaos data plane.
//
// The Chaos contribution is a protocol — streaming partitions, randomized
// chunk placement, batched storage access, randomized work stealing — not
// the testbed it runs on (see DESIGN.md, "Two planes, one protocol").
// This package holds the pieces of that protocol that are pure functions
// of graph data and configuration, so more than one driver can execute
// them:
//
//   - internal/core runs the protocol under the deterministic
//     discrete-event simulation (the evaluation plane: virtual time,
//     modeled devices, paper-facing figures);
//   - internal/core/native runs the same protocol as goroutine groups
//     moving real chunks through memory with no virtual-time charging
//     (the execution plane: host wall-clock is the only clock).
//
// Everything here is side-effect-free with respect to any driver's
// scheduler state: kernels never touch a clock, an RNG or a mailbox.
// That property is what lets the DES driver offload them to worker
// goroutines while staying bit-reproducible (invariants in
// internal/core/parallel.go), and what lets the native driver run them
// with plain goroutines.
package drive

import (
	"encoding/binary"
	"sync"

	"chaos/internal/gas"
	"chaos/internal/graph"
	"chaos/internal/partition"
)

// UpdRec is one decoded update record (destination plus payload).
type UpdRec[U any] struct {
	Dst graph.VertexID
	Val U
}

// ScatterOut is the pure result of scattering one edge chunk: everything
// a driver needs to replay the chunk's side effects (buffer appends,
// spills, CPU charges) without touching a single record itself.
type ScatterOut[U any] struct {
	N          int      // edge records decoded
	CombineOps int      // combiner merges performed
	Updates    [][]byte // encoded update records per destination partition
	// Typed replaces Updates under ScatterChunkTyped (the native
	// zero-copy path): per-destination-partition pooled record slices,
	// whose ownership the driver transfers to its Transport.
	Typed [][]UpdRec[U]
	// Combined replaces Updates when the Pregel-style combiner is active:
	// per-destination-partition maps of pre-merged updates.
	Combined []map[graph.VertexID]U
	// EdgesNext holds the chunk's surviving rewritten edges (§6.1
	// extended model).
	EdgesNext []byte
}

// Kernel bundles the driver-independent data plane of one run: record
// formats, codecs, the per-chunk scatter/gather computations, and the
// scratch-buffer pools they draw from. A Kernel is shared freely between
// goroutines; the pools are concurrency-safe and the kernels are pure.
type Kernel[V, U, A any] struct {
	Prog    gas.Program[V, U, A]
	Layout  *partition.Layout
	EdgeFmt graph.Format
	// IDBytes is the update destination field width (4 or 8 bytes, §8);
	// UpdBytes = IDBytes + UpdCodec.Bytes is the full update record.
	IDBytes  int
	UpdBytes int
	VBytes   int
	// Cached codecs: Program codec accessors construct fresh closures on
	// every call, which the per-chunk hot paths cannot afford.
	UpdCodec gas.Codec[U]
	VCodec   gas.Codec[V]
	// Combiner/Rewriter are the resolved optional extensions (nil when
	// disabled); the driver asserts and reports configuration errors.
	Combiner gas.Combiner[U]
	Rewriter gas.EdgeRewriter[V]

	// RetainBytes bounds the capacity of scratch slices returned to the
	// pools: anything larger is dropped for the garbage collector, so
	// one giant iteration cannot pin its high-water mark for the rest
	// of the run. Zero disables the bound (tests only); NewKernel sets
	// DefaultRetainBytes.
	RetainBytes int

	recPool      sync.Pool
	bufPool      sync.Pool
	partsPool    sync.Pool
	recPartsPool sync.Pool
}

// DefaultRetainBytes is the pool retention bound NewKernel installs: the
// largest scratch-slice capacity worth keeping across iterations.
const DefaultRetainBytes = 8 << 20

// NewKernel derives the record geometry for prog over layout. weighted
// edge format selection and ID width follow §8: 4-byte destinations below
// 2^32 vertices, 8-byte above.
func NewKernel[V, U, A any](prog gas.Program[V, U, A], layout *partition.Layout) *Kernel[V, U, A] {
	k := &Kernel[V, U, A]{
		Prog:    prog,
		Layout:  layout,
		EdgeFmt: graph.FormatFor(layout.NumVertices, prog.Weighted()),
	}
	if layout.NumVertices < 1<<32 {
		k.IDBytes = 4
	} else {
		k.IDBytes = 8
	}
	k.UpdCodec = prog.UpdateCodec()
	k.VCodec = prog.VertexCodec()
	k.UpdBytes = k.IDBytes + k.UpdCodec.Bytes
	k.VBytes = k.VCodec.Bytes
	k.RetainBytes = DefaultRetainBytes
	return k
}

// EncodeDst writes an update's destination ID field (4 or 8 bytes, §8).
func (k *Kernel[V, U, A]) EncodeDst(buf []byte, dst graph.VertexID) {
	if k.IDBytes == 4 {
		binary.LittleEndian.PutUint32(buf, uint32(dst))
	} else {
		binary.LittleEndian.PutUint64(buf, uint64(dst))
	}
}

// DecodeDst reads an update's destination ID field.
func (k *Kernel[V, U, A]) DecodeDst(buf []byte) graph.VertexID {
	if k.IDBytes == 4 {
		return graph.VertexID(binary.LittleEndian.Uint32(buf))
	}
	return graph.VertexID(binary.LittleEndian.Uint64(buf))
}

// AppendUpdate encodes one update record (destination ID field plus
// payload, §8) onto buf. The single definition of the update wire
// format's encode side.
func (k *Kernel[V, U, A]) AppendUpdate(buf []byte, dst graph.VertexID, val *U) []byte {
	off := len(buf)
	buf = append(buf, make([]byte, k.UpdBytes)...)
	k.EncodeDst(buf[off:], dst)
	k.UpdCodec.Put(buf[off+k.IDBytes:], val)
	return buf
}

// AppendRecs encodes a typed record slice onto buf — the spill side of
// the transport seam, and the bulk inverse of DecodeUpdateChunk.
func (k *Kernel[V, U, A]) AppendRecs(buf []byte, recs []UpdRec[U]) []byte {
	for i := range recs {
		buf = k.AppendUpdate(buf, recs[i].Dst, &recs[i].Val)
	}
	return buf
}

// DecodeUpdate decodes one update record, the inverse of AppendUpdate.
func (k *Kernel[V, U, A]) DecodeUpdate(rec []byte) (r UpdRec[U]) {
	r.Dst = k.DecodeDst(rec)
	k.UpdCodec.Get(rec[k.IDBytes:], &r.Val)
	return r
}

// DecodeUpdateChunk bulk-decodes one update chunk, appending to recs.
func (k *Kernel[V, U, A]) DecodeUpdateChunk(recs []UpdRec[U], data []byte) []UpdRec[U] {
	ub := k.UpdBytes
	n := len(data) / ub
	for i := 0; i < n; i++ {
		recs = append(recs, k.DecodeUpdate(data[i*ub:]))
	}
	return recs
}

// ScatterChunk is the pure scatter computation on one edge chunk: decode
// each edge, consult the rewriter, apply the program's Scatter, and
// encode emitted updates grouped by destination partition. It may run on
// any goroutine and must not touch driver state; verts is read-only and
// stable for the whole phase.
func (k *Kernel[V, U, A]) ScatterChunk(iter, part int, verts []V, data []byte, out *ScatterOut[U]) {
	lo, _ := k.Layout.Range(part)
	edgeSize := k.EdgeFmt.EdgeSize()
	n := len(data) / edgeSize
	out.N = n
	out.Updates = k.GrabParts()
	if k.Combiner != nil {
		out.Combined = make([]map[graph.VertexID]U, k.Layout.NumPartitions)
	}
	for i := 0; i < n; i++ {
		e := k.EdgeFmt.Decode(data[i*edgeSize:])
		src := &verts[e.Src-lo]
		if k.Rewriter != nil {
			if ne, keep := k.Rewriter.RewriteEdge(iter, e, src); keep {
				if out.EdgesNext == nil {
					out.EdgesNext = k.GrabBuf()
				}
				off := len(out.EdgesNext)
				out.EdgesNext = append(out.EdgesNext, make([]byte, edgeSize)...)
				k.EdgeFmt.Encode(out.EdgesNext[off:], ne)
			}
		}
		dst, val, emit := k.Prog.Scatter(iter, e, src)
		if !emit {
			continue
		}
		tp := k.Layout.Of(dst)
		if k.Combiner != nil {
			mp := out.Combined[tp]
			if mp == nil {
				mp = make(map[graph.VertexID]U)
				out.Combined[tp] = mp
			}
			if old, ok := mp[dst]; ok {
				mp[dst] = k.Combiner.Combine(old, val)
			} else {
				mp[dst] = val
			}
			out.CombineOps++
			continue
		}
		buf := out.Updates[tp]
		if buf == nil {
			buf = k.GrabBuf()
		}
		out.Updates[tp] = k.AppendUpdate(buf, dst, &val)
	}
}

// ScatterChunkTyped is ScatterChunk for drivers that move decoded
// records through a Transport (the native zero-copy path): emitted
// updates stay typed, grouped per destination partition in pooled
// record slices, and are never encoded unless a spilling transport
// later pushes them across the memory-budget boundary. The edge loop is
// deliberately a twin of ScatterChunk's — the two differ only in the
// emit step, and sharing it through a per-update closure would tax the
// DES driver's hot path.
func (k *Kernel[V, U, A]) ScatterChunkTyped(iter, part int, verts []V, data []byte, out *ScatterOut[U]) {
	lo, _ := k.Layout.Range(part)
	edgeSize := k.EdgeFmt.EdgeSize()
	n := len(data) / edgeSize
	out.N = n
	out.Typed = k.GrabRecParts()
	if k.Combiner != nil {
		out.Combined = make([]map[graph.VertexID]U, k.Layout.NumPartitions)
	}
	for i := 0; i < n; i++ {
		e := k.EdgeFmt.Decode(data[i*edgeSize:])
		src := &verts[e.Src-lo]
		if k.Rewriter != nil {
			if ne, keep := k.Rewriter.RewriteEdge(iter, e, src); keep {
				if out.EdgesNext == nil {
					out.EdgesNext = k.GrabBuf()
				}
				off := len(out.EdgesNext)
				out.EdgesNext = append(out.EdgesNext, make([]byte, edgeSize)...)
				k.EdgeFmt.Encode(out.EdgesNext[off:], ne)
			}
		}
		dst, val, emit := k.Prog.Scatter(iter, e, src)
		if !emit {
			continue
		}
		tp := k.Layout.Of(dst)
		if k.Combiner != nil {
			mp := out.Combined[tp]
			if mp == nil {
				mp = make(map[graph.VertexID]U)
				out.Combined[tp] = mp
			}
			if old, ok := mp[dst]; ok {
				mp[dst] = k.Combiner.Combine(old, val)
			} else {
				mp[dst] = val
			}
			out.CombineOps++
			continue
		}
		recs := out.Typed[tp]
		if recs == nil {
			recs = k.GrabRecs()
		}
		out.Typed[tp] = append(recs, UpdRec[U]{Dst: dst, Val: val})
	}
}

// GrabRecs returns a pooled decoded-record slice; ReleaseRecs recycles it
// once a fold has consumed it.
func (k *Kernel[V, U, A]) GrabRecs() []UpdRec[U] {
	if v := k.recPool.Get(); v != nil {
		return v.([]UpdRec[U])[:0]
	}
	return nil
}

// ReleaseRecs recycles a decoded-record slice. Slices whose capacity
// exceeds RetainBytes (encoded-equivalent) are dropped instead of
// pooled, so a one-off giant chunk cannot pin its high-water mark in
// the pool for the rest of the run.
func (k *Kernel[V, U, A]) ReleaseRecs(recs []UpdRec[U]) {
	if cap(recs) == 0 {
		return
	}
	if k.RetainBytes > 0 && cap(recs)*max(k.UpdBytes, 1) > k.RetainBytes {
		return
	}
	k.recPool.Put(recs[:0])
}

// GrabBuf / ReleaseBuf pool the per-chunk encode buffers; GrabParts pools
// the per-destination-partition buffer tables. Kernels grab, the driver
// releases after merging a chunk's result.
func (k *Kernel[V, U, A]) GrabBuf() []byte {
	if v := k.bufPool.Get(); v != nil {
		return v.([]byte)[:0]
	}
	return nil
}

// ReleaseBuf recycles a per-chunk encode buffer, subject to the same
// RetainBytes bound as ReleaseRecs.
func (k *Kernel[V, U, A]) ReleaseBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	if k.RetainBytes > 0 && cap(b) > k.RetainBytes {
		return
	}
	k.bufPool.Put(b[:0])
}

// GrabParts returns a pooled per-destination-partition buffer table.
func (k *Kernel[V, U, A]) GrabParts() [][]byte {
	if v := k.partsPool.Get(); v != nil {
		return v.([][]byte)
	}
	return make([][]byte, k.Layout.NumPartitions)
}

// GrabRecParts returns a pooled per-destination-partition record-slice
// table (the typed twin of GrabParts).
func (k *Kernel[V, U, A]) GrabRecParts() [][]UpdRec[U] {
	if v := k.recPartsPool.Get(); v != nil {
		return v.([][]UpdRec[U])
	}
	return make([][]UpdRec[U], k.Layout.NumPartitions)
}

// ReleaseScatterOut returns a merged chunk result's scratch memory to the
// pools. Typed slots the driver handed to its Transport must be nil'd
// before the call — whatever remains is recycled here.
func (k *Kernel[V, U, A]) ReleaseScatterOut(out *ScatterOut[U]) {
	if out.Updates != nil {
		for tp, b := range out.Updates {
			if b != nil {
				k.ReleaseBuf(b)
				out.Updates[tp] = nil
			}
		}
		k.partsPool.Put(out.Updates)
		out.Updates = nil
	}
	if out.Typed != nil {
		for tp, recs := range out.Typed {
			if recs != nil {
				k.ReleaseRecs(recs)
				out.Typed[tp] = nil
			}
		}
		k.recPartsPool.Put(out.Typed)
		out.Typed = nil
	}
	if out.EdgesNext != nil {
		k.ReleaseBuf(out.EdgesNext)
		out.EdgesNext = nil
	}
	out.Combined = nil
}

// StealCriterion evaluates Equation 2 with the alpha bias of §10.2:
// accept iff V + D/(H+1) < alpha * D/H. Both drivers consult it — the DES
// arbiter with modeled storage-byte estimates, the native scheduler hook
// with live queue depths.
func StealCriterion(vBytes, dBytes int64, workers int, alpha float64) bool {
	if dBytes <= 0 {
		return false
	}
	if alpha == 0 {
		return false
	}
	h := float64(workers)
	if h < 1 {
		h = 1
	}
	d := float64(dBytes)
	lhs := float64(vBytes) + d/(h+1)
	rhs := alpha * d / h
	return lhs < rhs
}

// SplitInput divides the unsorted edge list evenly across machines,
// modeling the paper's input "randomly distributed over all storage
// devices" (§8).
func SplitInput(edges []graph.Edge, nm int) [][]graph.Edge {
	out := make([][]graph.Edge, nm)
	per := (len(edges) + nm - 1) / nm
	for i := 0; i < nm; i++ {
		lo := i * per
		hi := lo + per
		if lo > len(edges) {
			lo = len(edges)
		}
		if hi > len(edges) {
			hi = len(edges)
		}
		out[i] = edges[lo:hi]
	}
	return out
}

// SpillLimit is the spill threshold in bytes for record-aligned buffers:
// the smallest whole number of records covering chunkBytes.
func SpillLimit(chunkBytes, recSize int) int {
	n := (chunkBytes + recSize - 1) / recSize
	if n < 1 {
		n = 1
	}
	return n * recSize
}
