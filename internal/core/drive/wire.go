package drive

// Wire is the DES driver's side of the transport seam: the byte-format
// update path. Under the simulation every update chunk crosses a modeled
// storage boundary, so records are always encoded — Wire owns the
// per-destination record-aligned buffering that turns a scatter kernel's
// encoded output into exactly-limit-sized chunks, handing each finished
// chunk to the driver's flush callback at the instant it fills. The
// chunk boundaries and flush call sequence are bit-identical to the
// buffering it replaced, which is what keeps the simulation's RNG draw
// order, and with it every determinism test, unchanged.
//
// Wire is single-goroutine (simulation context), like the machine state
// it belongs to.
type Wire struct {
	limit int
	bufs  [][]byte
	flush func(dst int, chunk []byte)
}

// NewWire returns a Wire over np destination partitions. limit is the
// record-aligned chunk size in bytes; flush receives each finished chunk
// (ownership transfers: flushed slices join the storage protocol and are
// never reused).
func NewWire(np, limit int, flush func(dst int, chunk []byte)) *Wire {
	return &Wire{limit: limit, bufs: make([][]byte, np), flush: flush}
}

// Put appends encoded records to dst's buffer, flushing full chunks of
// exactly limit bytes as they fill. The remainder is copied to fresh
// backing because flushed slices must not be reused.
func (w *Wire) Put(dst int, b []byte) {
	buf := append(w.bufs[dst], b...)
	for len(buf) >= w.limit {
		w.flush(dst, buf[:w.limit:w.limit])
		rest := buf[w.limit:]
		if len(rest) == 0 {
			buf = nil
			break
		}
		buf = append(make([]byte, 0, w.limit), rest...)
	}
	w.bufs[dst] = buf
}

// PutChunk ships one pre-assembled chunk immediately, bypassing the
// record-aligned buffering (the combiner's sorted flushes are chunks of
// their own regardless of size).
func (w *Wire) PutChunk(dst int, chunk []byte) {
	w.flush(dst, chunk)
}

// FlushPartials writes out the partially filled buffers in ascending
// destination order (the deterministic phase-end flush).
func (w *Wire) FlushPartials() {
	for dst, buf := range w.bufs {
		if len(buf) > 0 {
			w.flush(dst, buf)
			w.bufs[dst] = nil
		}
	}
}
