package core

import (
	"chaos/internal/core/drive"
	"chaos/internal/graph"
	"chaos/internal/storage"
)

// This file implements the deterministic compute offload of the engine's
// hot path. The discrete-event simulation stays single-threaded and
// bit-reproducible; the pure per-chunk computation — decoding edge or
// update records, applying the GAS kernel, encoding emitted updates — is
// a side-effect-free function of the chunk bytes and the (read-only,
// phase-stable) vertex set, so it can run on a bounded pool of OS worker
// goroutines while the simulation advances. The pool and the kernels
// themselves live in internal/core/drive, shared with the native driver;
// this file is the DES-side harness that dispatches them and joins their
// results at deterministic points of the simulation's schedule.
//
// The determinism argument, in three invariants (see DESIGN.md):
//
//  1. Every task is a pure function of inputs fixed at dispatch time.
//     Workers never touch the simulation's RNG, clock, mailboxes or
//     metrics.
//  2. The simulation consumes task results only at fixed points of its
//     own deterministic schedule (a chunk's delivery, a stream's end),
//     always by blocking until the result is ready. Worker timing can
//     therefore never reorder simulated events.
//  3. Tasks whose effects are order-sensitive (gather folds into one
//     machine's accumulators) are chained in delivery order, which is
//     itself deterministic; all other tasks are order-free.
//
// Together these make results, metrics and simulated timestamps
// bit-identical for any worker count, including 1.

// chunkTask, workerPool and closedChan are the drive-package primitives
// under their historical engine-local names.
type chunkTask = drive.Task

type workerPool = drive.Pool

func newWorkerPool(workers int) *workerPool { return drive.NewPool(workers) }

var closedChan = drive.ClosedChan

// scatterChunk pairs a task with its typed result.
type scatterChunk[U any] struct {
	chunkTask
	out drive.ScatterOut[U]
}

// gatherChunk is the decode stage of one update chunk: the records are
// consumer-independent, so one decode serves master and stealers alike.
type gatherChunk[U any] struct {
	chunkTask
	recs []drive.UpdRec[U]
}

// streamTasks indexes a stream's pre-dispatched chunk tasks by (storage
// engine, cursor index). base records each store's cursor at build time.
type streamTasks[T any] struct {
	refs int
	base []int
	byID [][]*T
}

// at returns the task for cursor index idx on store s, or nil when the
// stream was built after that chunk was consumed (impossible in the
// current protocol, but the storage engine falls back to an inline read).
func (w *streamTasks[T]) at(s, idx int) *T {
	if w == nil || s >= len(w.byID) {
		return nil
	}
	i := idx - w.base[s]
	if i < 0 || i >= len(w.byID[s]) {
		return nil
	}
	return w.byID[s][i]
}

// acquireScatterStream pre-reads every unconsumed edge chunk of the
// partition and dispatches one scatter task per chunk. The first streamer
// (master or stealer — their vertex-set copies are identical) builds the
// task set; later streamers share it. Chunks consumed between build and a
// later join were already computed, so joining is always safe.
//
// In inline mode there is nothing to overlap with, so no tasks are built:
// the storage engine ships each chunk's bytes with the reply and the
// streamer runs the same kernel at the delivery instant — the identical
// computation on the identical bytes in the identical order, without
// holding a whole stream's scratch buffers live at once.
func (m *machine[V, U, A]) acquireScatterStream(iter, part int, verts []V) *streamTasks[scatterChunk[U]] {
	eng := m.eng
	if eng.pool.Inline() {
		return nil
	}
	w := eng.scatterStreams[part]
	if w == nil {
		w = &streamTasks[scatterChunk[U]]{base: make([]int, len(eng.stores)), byID: make([][]*scatterChunk[U], len(eng.stores))}
		for s := range eng.stores {
			chunks, base, err := eng.stores[s].UnconsumedChunkData(storage.EdgeSet, part)
			if err != nil {
				panic("core: pre-reading edge chunks: " + err.Error())
			}
			w.base[s] = base
			for _, data := range chunks {
				sc := &scatterChunk[U]{}
				data := data
				sc.Fn = func() { eng.kern.ScatterChunk(iter, part, verts, data, &sc.out) }
				w.byID[s] = append(w.byID[s], sc)
				eng.pool.Submit(&sc.chunkTask)
			}
		}
		eng.scatterStreams[part] = w
	}
	w.refs++
	return w
}

func (eng *engine[V, U, A]) releaseScatterStream(part int) {
	w := eng.scatterStreams[part]
	if w == nil {
		return // inline mode builds no task sets
	}
	w.refs--
	if w.refs == 0 {
		delete(eng.scatterStreams, part)
	}
}

// acquireGatherStream pre-reads every unconsumed update chunk of the
// partition and dispatches one decode task per chunk. Decoded records are
// folded into the consuming machine's accumulators by per-machine chained
// fold tasks (see gatherPartition), so the decode itself is shared.
func (eng *engine[V, U, A]) acquireGatherStream(part int) *streamTasks[gatherChunk[U]] {
	if eng.pool.Inline() {
		return nil // see acquireScatterStream
	}
	w := eng.gatherStreams[part]
	if w == nil {
		w = &streamTasks[gatherChunk[U]]{base: make([]int, len(eng.stores)), byID: make([][]*gatherChunk[U], len(eng.stores))}
		for s := range eng.stores {
			chunks, base, err := eng.stores[s].UnconsumedChunkData(storage.UpdateSet, part)
			if err != nil {
				panic("core: pre-reading update chunks: " + err.Error())
			}
			w.base[s] = base
			for _, data := range chunks {
				gc := &gatherChunk[U]{}
				data := data
				gc.Fn = func() {
					gc.recs = eng.kern.DecodeUpdateChunk(eng.kern.GrabRecs(), data)
				}
				w.byID[s] = append(w.byID[s], gc)
				eng.pool.Submit(&gc.chunkTask)
			}
		}
		eng.gatherStreams[part] = w
	}
	w.refs++
	return w
}

func (eng *engine[V, U, A]) releaseGatherStream(part int) {
	w := eng.gatherStreams[part]
	if w == nil {
		return // inline mode builds no task sets
	}
	w.refs--
	if w.refs == 0 {
		delete(eng.gatherStreams, part)
	}
}

// hasChunkTask reports whether a pre-dispatched task covers chunk idx of
// store s, letting the storage engine skip the data read for the reply.
func (eng *engine[V, U, A]) hasChunkTask(kind storage.SetKind, part, s, idx int) bool {
	switch kind {
	case storage.EdgeSet:
		return eng.scatterStreams[part].at(s, idx) != nil
	case storage.UpdateSet:
		return eng.gatherStreams[part].at(s, idx) != nil
	}
	return false
}

// appendUpdateRecord, decodeUpdateRecord and decodeUpdateChunk are the
// engine-local spellings of the kernel's update wire format (the kernel
// is the single definition; see internal/core/drive).
func (eng *engine[V, U, A]) appendUpdateRecord(buf []byte, dst graph.VertexID, val *U) []byte {
	return eng.kern.AppendUpdate(buf, dst, val)
}

func (eng *engine[V, U, A]) decodeUpdateRecord(rec []byte) drive.UpdRec[U] {
	return eng.kern.DecodeUpdate(rec)
}

func (eng *engine[V, U, A]) decodeUpdateChunk(recs []drive.UpdRec[U], data []byte) []drive.UpdRec[U] {
	return eng.kern.DecodeUpdateChunk(recs, data)
}
