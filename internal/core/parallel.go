package core

import (
	"runtime"
	"sync"

	"chaos/internal/graph"
	"chaos/internal/storage"
)

// This file implements the deterministic compute offload of the engine's
// hot path. The discrete-event simulation stays single-threaded and
// bit-reproducible; the pure per-chunk computation — decoding edge or
// update records, applying the GAS kernel, encoding emitted updates — is
// a side-effect-free function of the chunk bytes and the (read-only,
// phase-stable) vertex set, so it can run on a bounded pool of OS worker
// goroutines while the simulation advances.
//
// The determinism argument, in three invariants (see DESIGN.md):
//
//  1. Every task is a pure function of inputs fixed at dispatch time.
//     Workers never touch the simulation's RNG, clock, mailboxes or
//     metrics.
//  2. The simulation consumes task results only at fixed points of its
//     own deterministic schedule (a chunk's delivery, a stream's end),
//     always by blocking until the result is ready. Worker timing can
//     therefore never reorder simulated events.
//  3. Tasks whose effects are order-sensitive (gather folds into one
//     machine's accumulators) are chained in delivery order, which is
//     itself deterministic; all other tasks are order-free.
//
// Together these make results, metrics and simulated timestamps
// bit-identical for any worker count, including 1.

// chunkTask is one unit of off-simulation compute. fn runs on a pool
// worker after the optional predecessor completes; done is closed when fn
// has returned.
type chunkTask struct {
	prev *chunkTask
	fn   func()
	done chan struct{}
}

// wait blocks until the task has completed. Called from the simulation
// thread; the blocking receive also establishes the happens-before edge
// that lets the simulation read the task's results race-free.
func (t *chunkTask) wait() { <-t.done }

// workerPool runs chunk tasks on a fixed set of goroutines. Tasks are
// executed FIFO per worker pull; a task's prev (if any) is always
// submitted earlier, so the pull order guarantees the predecessor has
// been picked up by some worker (or finished) before the successor runs —
// chained waits cannot deadlock, for any pool size.
//
// With one worker (or on a single-core host) there is nothing to overlap
// with, so the pool degenerates to inline mode: submit runs the task on
// the spot and wait is free. Because every task is pure and ordered only
// by its explicit dependencies, inline execution produces bit-identical
// results to any pool size — inline mode IS the serial baseline the
// determinism tests compare against.
type workerPool struct {
	inline bool
	tasks  chan *chunkTask
	wg     sync.WaitGroup
}

func newWorkerPool(workers int) *workerPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Clamp: ComputeWorkers reaches this point from the network-facing
	// job API, and goroutines are a real host resource. Extra workers
	// beyond the core count buy nothing for pure compute; the floor
	// keeps a real pool testable on small hosts.
	if limit := max(4*runtime.GOMAXPROCS(0), 16); workers > limit {
		workers = limit
	}
	if workers <= 1 {
		return &workerPool{inline: true}
	}
	p := &workerPool{tasks: make(chan *chunkTask, 4096)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for t := range p.tasks {
				if t.prev != nil {
					<-t.prev.done
					t.prev = nil
				}
				t.fn()
				// Drop the closure so the captured inputs (notably a
				// pre-read chunk's bytes) become collectable as soon as
				// the result exists, not when the stream is released.
				t.fn = nil
				close(t.done)
			}
		}()
	}
	return p
}

// submit enqueues a task. Submission order is the determinism contract:
// a task must be submitted after its prev and after any task whose done
// channel its fn waits on — which is also why inline execution at submit
// time is always legal.
func (p *workerPool) submit(t *chunkTask) {
	if p.inline {
		t.done = closedChan
		t.fn()
		t.fn, t.prev = nil, nil
		return
	}
	t.done = make(chan struct{})
	p.tasks <- t
}

// close drains and stops the workers. All submitted tasks run to
// completion first.
func (p *workerPool) close() {
	if p.inline {
		return
	}
	close(p.tasks)
	p.wg.Wait()
}

// updRec is one decoded update record (destination plus payload).
type updRec[U any] struct {
	dst graph.VertexID
	val U
}

// scatterOut is the pure result of scattering one edge chunk: everything
// the simulation needs to replay the chunk's side effects (buffer
// appends, spills, CPU charges) without touching a single record itself.
type scatterOut[U any] struct {
	n          int      // edge records decoded
	combineOps int      // combiner merges performed (charged 2 ops each)
	updates    [][]byte // encoded update records per destination partition
	// combined replaces updates when the Pregel-style combiner is active:
	// per-destination-partition maps of pre-merged updates.
	combined []map[graph.VertexID]U
	// edgesNext holds the chunk's surviving rewritten edges (§6.1
	// extended model).
	edgesNext []byte
}

// scatterChunk pairs a task with its typed result.
type scatterChunk[U any] struct {
	chunkTask
	out scatterOut[U]
}

// gatherChunk is the decode stage of one update chunk: the records are
// consumer-independent, so one decode serves master and stealers alike.
type gatherChunk[U any] struct {
	chunkTask
	recs []updRec[U]
}

// streamTasks indexes a stream's pre-dispatched chunk tasks by (storage
// engine, cursor index). base records each store's cursor at build time.
type streamTasks[T any] struct {
	refs int
	base []int
	byID [][]*T
}

// at returns the task for cursor index idx on store s, or nil when the
// stream was built after that chunk was consumed (impossible in the
// current protocol, but the storage engine falls back to an inline read).
func (w *streamTasks[T]) at(s, idx int) *T {
	if w == nil || s >= len(w.byID) {
		return nil
	}
	i := idx - w.base[s]
	if i < 0 || i >= len(w.byID[s]) {
		return nil
	}
	return w.byID[s][i]
}

// acquireScatterStream pre-reads every unconsumed edge chunk of the
// partition and dispatches one scatter task per chunk. The first streamer
// (master or stealer — their vertex-set copies are identical) builds the
// task set; later streamers share it. Chunks consumed between build and a
// later join were already computed, so joining is always safe.
//
// In inline mode there is nothing to overlap with, so no tasks are built:
// the storage engine ships each chunk's bytes with the reply and the
// streamer runs the same kernel at the delivery instant — the identical
// computation on the identical bytes in the identical order, without
// holding a whole stream's scratch buffers live at once.
func (m *machine[V, U, A]) acquireScatterStream(iter, part int, verts []V) *streamTasks[scatterChunk[U]] {
	eng := m.eng
	if eng.pool.inline {
		return nil
	}
	w := eng.scatterStreams[part]
	if w == nil {
		w = &streamTasks[scatterChunk[U]]{base: make([]int, len(eng.stores)), byID: make([][]*scatterChunk[U], len(eng.stores))}
		for s := range eng.stores {
			chunks, base, err := eng.stores[s].UnconsumedChunkData(storage.EdgeSet, part)
			if err != nil {
				panic("core: pre-reading edge chunks: " + err.Error())
			}
			w.base[s] = base
			for _, data := range chunks {
				sc := &scatterChunk[U]{}
				data := data
				sc.fn = func() { eng.scatterChunkKernel(iter, part, verts, data, &sc.out) }
				w.byID[s] = append(w.byID[s], sc)
				eng.pool.submit(&sc.chunkTask)
			}
		}
		eng.scatterStreams[part] = w
	}
	w.refs++
	return w
}

func (eng *engine[V, U, A]) releaseScatterStream(part int) {
	w := eng.scatterStreams[part]
	if w == nil {
		return // inline mode builds no task sets
	}
	w.refs--
	if w.refs == 0 {
		delete(eng.scatterStreams, part)
	}
}

// acquireGatherStream pre-reads every unconsumed update chunk of the
// partition and dispatches one decode task per chunk. Decoded records are
// folded into the consuming machine's accumulators by per-machine chained
// fold tasks (see gatherPartition), so the decode itself is shared.
func (eng *engine[V, U, A]) acquireGatherStream(part int) *streamTasks[gatherChunk[U]] {
	if eng.pool.inline {
		return nil // see acquireScatterStream
	}
	w := eng.gatherStreams[part]
	if w == nil {
		w = &streamTasks[gatherChunk[U]]{base: make([]int, len(eng.stores)), byID: make([][]*gatherChunk[U], len(eng.stores))}
		for s := range eng.stores {
			chunks, base, err := eng.stores[s].UnconsumedChunkData(storage.UpdateSet, part)
			if err != nil {
				panic("core: pre-reading update chunks: " + err.Error())
			}
			w.base[s] = base
			for _, data := range chunks {
				gc := &gatherChunk[U]{}
				data := data
				gc.fn = func() {
					gc.recs = eng.decodeUpdateChunk(eng.grabRecs(), data)
				}
				w.byID[s] = append(w.byID[s], gc)
				eng.pool.submit(&gc.chunkTask)
			}
		}
		eng.gatherStreams[part] = w
	}
	w.refs++
	return w
}

func (eng *engine[V, U, A]) releaseGatherStream(part int) {
	w := eng.gatherStreams[part]
	if w == nil {
		return // inline mode builds no task sets
	}
	w.refs--
	if w.refs == 0 {
		delete(eng.gatherStreams, part)
	}
}

// hasChunkTask reports whether a pre-dispatched task covers chunk idx of
// store s, letting the storage engine skip the data read for the reply.
func (eng *engine[V, U, A]) hasChunkTask(kind storage.SetKind, part, s, idx int) bool {
	switch kind {
	case storage.EdgeSet:
		return eng.scatterStreams[part].at(s, idx) != nil
	case storage.UpdateSet:
		return eng.gatherStreams[part].at(s, idx) != nil
	}
	return false
}

// grabRecs returns a pooled decoded-record slice; releaseRecs recycles it
// once a fold task has consumed it.
func (eng *engine[V, U, A]) grabRecs() []updRec[U] {
	if v := eng.recPool.Get(); v != nil {
		return v.([]updRec[U])[:0]
	}
	return nil
}

func (eng *engine[V, U, A]) releaseRecs(recs []updRec[U]) {
	if cap(recs) > 0 {
		eng.recPool.Put(recs[:0])
	}
}

// grabBuf / releaseBuf pool the per-chunk encode buffers; grabParts
// pools the per-destination-partition buffer tables. Workers grab, the
// simulation thread releases after merging. Scratch liveness peaks at
// the chunks computed but not yet merged — up to a whole stream when
// workers outpace the simulation — which stays proportional to data the
// in-memory backend already holds resident; the DES consumes results in
// delivery order, recycling as it goes.
func (eng *engine[V, U, A]) grabBuf() []byte {
	if v := eng.bufPool.Get(); v != nil {
		return v.([]byte)[:0]
	}
	return nil
}

func (eng *engine[V, U, A]) releaseBuf(b []byte) {
	if cap(b) > 0 {
		eng.bufPool.Put(b[:0])
	}
}

func (eng *engine[V, U, A]) grabParts() [][]byte {
	if v := eng.partsPool.Get(); v != nil {
		return v.([][]byte)
	}
	return make([][]byte, eng.layout.NumPartitions)
}

// releaseScatterOut returns a merged chunk result's scratch memory to the
// pools.
func (eng *engine[V, U, A]) releaseScatterOut(out *scatterOut[U]) {
	for tp, b := range out.updates {
		if b != nil {
			eng.releaseBuf(b)
			out.updates[tp] = nil
		}
	}
	eng.partsPool.Put(out.updates)
	out.updates = nil
	if out.edgesNext != nil {
		eng.releaseBuf(out.edgesNext)
		out.edgesNext = nil
	}
	out.combined = nil
}

// appendUpdateRecord encodes one update record (destination ID field
// plus payload, §8) onto buf. The single definition of the update wire
// format's encode side; the kernel and the combiner flush both use it.
func (eng *engine[V, U, A]) appendUpdateRecord(buf []byte, dst graph.VertexID, val *U) []byte {
	off := len(buf)
	buf = append(buf, make([]byte, eng.updBytes)...)
	eng.encodeDst(buf[off:], dst)
	eng.updCodec.Put(buf[off+eng.idBytes:], val)
	return buf
}

// decodeUpdateRecord decodes one update record, the inverse of
// appendUpdateRecord.
func (eng *engine[V, U, A]) decodeUpdateRecord(rec []byte) (r updRec[U]) {
	r.dst = eng.decodeDst(rec)
	eng.updCodec.Get(rec[eng.idBytes:], &r.val)
	return r
}

// decodeUpdateChunk bulk-decodes one update chunk into recs.
func (eng *engine[V, U, A]) decodeUpdateChunk(recs []updRec[U], data []byte) []updRec[U] {
	ub := eng.updBytes
	n := len(data) / ub
	for i := 0; i < n; i++ {
		recs = append(recs, eng.decodeUpdateRecord(data[i*ub:]))
	}
	return recs
}

// scatterChunkKernel is the pure scatter computation on one edge chunk:
// decode each edge, consult the rewriter, apply the program's Scatter,
// and encode emitted updates grouped by destination partition. It runs on
// pool workers and must not touch simulation state; verts is read-only
// and stable for the whole phase.
func (eng *engine[V, U, A]) scatterChunkKernel(iter, part int, verts []V, data []byte, out *scatterOut[U]) {
	lo, _ := eng.layout.Range(part)
	edgeSize := eng.edgeFmt.EdgeSize()
	n := len(data) / edgeSize
	out.n = n
	out.updates = eng.grabParts()
	if eng.combiner != nil {
		out.combined = make([]map[graph.VertexID]U, eng.layout.NumPartitions)
	}
	for i := 0; i < n; i++ {
		e := eng.edgeFmt.Decode(data[i*edgeSize:])
		src := &verts[e.Src-lo]
		if eng.rewriter != nil {
			if ne, keep := eng.rewriter.RewriteEdge(iter, e, src); keep {
				if out.edgesNext == nil {
					out.edgesNext = eng.grabBuf()
				}
				off := len(out.edgesNext)
				out.edgesNext = append(out.edgesNext, make([]byte, edgeSize)...)
				eng.edgeFmt.Encode(out.edgesNext[off:], ne)
			}
		}
		dst, val, emit := eng.prog.Scatter(iter, e, src)
		if !emit {
			continue
		}
		tp := eng.layout.Of(dst)
		if eng.combiner != nil {
			mp := out.combined[tp]
			if mp == nil {
				mp = make(map[graph.VertexID]U)
				out.combined[tp] = mp
			}
			if old, ok := mp[dst]; ok {
				mp[dst] = eng.combiner.Combine(old, val)
			} else {
				mp[dst] = val
			}
			out.combineOps++
			continue
		}
		buf := out.updates[tp]
		if buf == nil {
			buf = eng.grabBuf()
		}
		out.updates[tp] = eng.appendUpdateRecord(buf, dst, &val)
	}
}
