package core

import (
	"fmt"
	"math"
	"testing"

	"chaos/internal/algorithms"
	"chaos/internal/cluster"
	"chaos/internal/graph"
	"chaos/internal/refalgo"
	"chaos/internal/storage"
)

func TestFileBackendEndToEnd(t *testing.T) {
	edges, n := testGraph(7, false)
	und := graph.Undirected(edges)
	dir := t.TempDir()
	cfg := testConfig(3, n, 5)
	var backends []*storage.FileBackend
	cfg.BackendFor = func(machine int) storage.Backend {
		b, err := storage.NewFileBackend(fmt.Sprintf("%s/m%d", dir, machine))
		if err != nil {
			t.Fatal(err)
		}
		backends = append(backends, b)
		return b
	}
	values, _, err := Run(cfg, &algorithms.BFS{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range backends {
		b.Close()
	}
	want := refalgo.BFSLevels(graph.BuildAdjacency(und, n), 0)
	for i := range values {
		if values[i].Level != want[i] {
			t.Fatalf("file backend: vertex %d level %d, want %d", i, values[i].Level, want[i])
		}
	}
}

func TestTinyGraphs(t *testing.T) {
	// Single vertex with a self-loop.
	edges := []graph.Edge{{Src: 0, Dst: 0}}
	values, _, err := Run(testConfig(2, 1, 5), &algorithms.BFS{}, edges, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != 1 || values[0].Level != 0 {
		t.Errorf("single vertex: %+v", values)
	}
	// Two vertices, one edge, more machines than vertices.
	edges = []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}}
	values, _, err = Run(testConfig(4, 2, 5), &algorithms.BFS{}, edges, 2)
	if err != nil {
		t.Fatal(err)
	}
	if values[1].Level != 1 {
		t.Errorf("two vertices: %+v", values)
	}
}

func TestEmptyGraphRejected(t *testing.T) {
	if _, _, err := Run(testConfig(1, 1, 5), &algorithms.BFS{}, nil, 0); err == nil {
		t.Error("empty graph should error")
	}
}

func TestVertexCountInferred(t *testing.T) {
	edges := graph.Undirected([]graph.Edge{{Src: 0, Dst: 7}})
	values, _, err := Run(testConfig(2, 8, 5), &algorithms.BFS{}, edges, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != 8 {
		t.Errorf("inferred %d vertices, want 8", len(values))
	}
}

func TestHDDSlowerThanSSDProportionally(t *testing.T) {
	edges, n := testGraph(9, false)
	ssdCfg := testConfig(4, n, 8)
	_, ssd, err := Run(ssdCfg, &algorithms.PageRank{Iterations: 3}, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	hddCfg := ssdCfg
	hddCfg.Spec = cluster.ScaleLatencies(cluster.HDD(4), float64(ssdCfg.ChunkBytes)/float64(4<<20))
	_, hdd, err := Run(hddCfg, &algorithms.PageRank{Iterations: 3}, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	ratio := hdd.Runtime.Seconds() / ssd.Runtime.Seconds()
	// HDD bandwidth is half the SSD's; Figure 11 expects roughly
	// inverse-proportional runtime.
	if ratio < 1.5 || ratio > 4 {
		t.Errorf("HDD/SSD ratio %.2f, want about 2", ratio)
	}
}

func TestSlowNetworkHurtsMultiMachine(t *testing.T) {
	edges, n := testGraph(9, false)
	fast := testConfig(4, n, 8)
	_, f, err := Run(fast, &algorithms.PageRank{Iterations: 3}, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	slow := fast
	slow.Spec = cluster.GigE1(fast.Spec)
	_, s, err := Run(slow, &algorithms.PageRank{Iterations: 3}, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	if s.Runtime <= f.Runtime {
		t.Errorf("1GigE (%v) should be slower than 40GigE (%v) on 4 machines", s.Runtime, f.Runtime)
	}
}

func TestStealingImprovesSkewedRuntime(t *testing.T) {
	// RMAT partition skew means the no-stealing configuration should be
	// slower at identical correctness (the alpha=0 column of Figure 18).
	edges, n := testGraph(10, false)
	und := graph.Undirected(edges)
	withSteal := testConfig(8, n, 5)
	_, a, err := Run(withSteal, &algorithms.BFS{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	noSteal := withSteal
	noSteal.Alpha = 0
	_, b, err := Run(noSteal, &algorithms.BFS{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	if b.Runtime.Seconds() < a.Runtime.Seconds()*0.95 {
		t.Errorf("no-stealing run (%v) clearly faster than stealing run (%v)", b.Runtime, a.Runtime)
	}
	if a.StealsAccepted == 0 {
		t.Error("no steals happened in the stealing configuration")
	}
}

func TestCentralDirectorySlowerAtScale(t *testing.T) {
	edges, n := testGraph(10, false)
	cfg := testConfig(8, n, 8)
	_, chaosRun, err := Run(cfg, &algorithms.PageRank{Iterations: 3}, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CentralDirectory = true
	_, central, err := Run(cfg, &algorithms.PageRank{Iterations: 3}, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	if central.Runtime <= chaosRun.Runtime {
		t.Errorf("central directory (%v) should be slower than randomized placement (%v)",
			central.Runtime, chaosRun.Runtime)
	}
}

func TestWindowOneUnderutilizesDevices(t *testing.T) {
	edges, n := testGraph(10, false)
	cfg := testConfig(8, n, 8)
	cfg.WindowOverride = 10
	_, batched, err := Run(cfg, &algorithms.PageRank{Iterations: 3}, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	cfg.WindowOverride = 1
	_, serial, err := Run(cfg, &algorithms.PageRank{Iterations: 3}, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Runtime <= batched.Runtime {
		t.Errorf("window=1 (%v) should be slower than window=10 (%v), Figure 16",
			serial.Runtime, batched.Runtime)
	}
	if serial.DeviceUtilization >= batched.DeviceUtilization {
		t.Errorf("window=1 utilization %.2f should trail window=10 %.2f",
			serial.DeviceUtilization, batched.DeviceUtilization)
	}
}

func TestExactlyOnceUnderMaximumStealing(t *testing.T) {
	// With alpha=inf every proposal is accepted; the update counts (and
	// thus PageRank sums) must still be exact.
	edges, n := testGraph(8, false)
	want := refalgo.PageRank(graph.BuildAdjacency(edges, n), 4)
	cfg := testConfig(6, n, 8)
	cfg.Alpha = math.Inf(1)
	values, run, err := Run(cfg, &algorithms.PageRank{Iterations: 4}, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	if run.StealsAccepted == 0 {
		// Possible on a tiny graph when phases drain before proposals
		// land; the correctness check below is what matters.
		t.Logf("always-steal run saw no accepted steals (%d rejected)", run.StealsRejected)
	}
	for i := range values {
		got := float64(values[i].Rank)
		if diff := got - want[i]; diff > 1e-3 || diff < -1e-3 {
			t.Fatalf("vertex %d: rank %g, want %g (duplicate or lost updates?)", i, got, want[i])
		}
	}
}
