package core

import (
	"chaos/internal/core/drive"
	"chaos/internal/sim"
)

// DES side of the flight recorder (drive/trace.go). The machine keeps
// monotone byte/chunk/steal tallies as plain Go fields — they are not
// simulation state, consume no virtual time and draw no randomness —
// and each span is the delta between two tally snapshots bracketing a
// unit of work. Every emission happens on the simulation goroutine at
// an instant the surrounding code already reached, so attaching a
// recorder cannot perturb event order, the virtual clock or results
// (TestTraceDoesNotPerturbRun).

// spanMark snapshots the tallies and virtual clock at span start.
type spanMark struct {
	start                sim.Time
	chunks               int
	bytesIn, bytesOut    int64
	stealsAcc, stealsRej int
}

func (m *machine[V, U, A]) traceOn() bool { return m.eng.cfg.Trace != nil }

// markSpan opens a span: the matching emitSpan reports deltas from here.
func (m *machine[V, U, A]) markSpan(p *sim.Proc) spanMark {
	if !m.traceOn() {
		return spanMark{}
	}
	return spanMark{
		start:     p.Now(),
		chunks:    m.trChunks,
		bytesIn:   m.trBytesIn,
		bytesOut:  m.trBytesOut,
		stealsAcc: m.trStealsAcc,
		stealsRej: m.trStealsRej,
	}
}

// emitSpan closes a span opened by markSpan and hands it to the hook.
func (m *machine[V, U, A]) emitSpan(p *sim.Proc, mk spanMark, iter, part int, phase string, stolen bool) {
	if !m.traceOn() {
		return
	}
	m.eng.cfg.Trace(drive.Span{
		Iter:           iter,
		Machine:        m.id,
		Part:           part,
		Phase:          phase,
		Stolen:         stolen,
		Start:          int64(mk.start),
		Dur:            int64(p.Now() - mk.start),
		Chunks:         m.trChunks - mk.chunks,
		BytesIn:        m.trBytesIn - mk.bytesIn,
		BytesOut:       m.trBytesOut - mk.bytesOut,
		StealsAccepted: m.trStealsAcc - mk.stealsAcc,
		StealsRejected: m.trStealsRej - mk.stealsRej,
	})
}
