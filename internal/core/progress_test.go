package core

import (
	"reflect"
	"testing"

	"chaos/internal/algorithms"
	"chaos/internal/graph"
)

// TestProgressReportsAtEveryBoundary: the callback fires once per
// iteration boundary with monotonic counters, and the final snapshot
// agrees with the run's own metrics.
func TestProgressReportsAtEveryBoundary(t *testing.T) {
	edges, n := testGraph(8, false)

	var ticks []Progress
	cfg := testConfig(2, n, 8)
	cfg.Progress = func(p Progress) { ticks = append(ticks, p) }
	_, run, err := Run(cfg, &algorithms.PageRank{Iterations: 5}, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(ticks) != run.Iterations {
		t.Fatalf("%d progress ticks, want one per iteration (%d)", len(ticks), run.Iterations)
	}
	for i, p := range ticks {
		if p.Iterations != i+1 {
			t.Errorf("tick %d reports iteration %d", i, p.Iterations)
		}
		if i > 0 {
			prev := ticks[i-1]
			if p.Now < prev.Now || p.BytesRead < prev.BytesRead ||
				p.BytesWritten < prev.BytesWritten || p.StealsAccepted < prev.StealsAccepted {
				t.Errorf("tick %d counters regressed: %+v after %+v", i, p, prev)
			}
		}
	}
	last := ticks[len(ticks)-1]
	if last.Iterations != run.Iterations || last.StealsAccepted != run.StealsAccepted {
		t.Errorf("final tick %+v disagrees with run metrics (%d iters, %d steals)",
			last, run.Iterations, run.StealsAccepted)
	}
	// The final boundary precedes the run's unwind, and writes after the
	// last decision point (final apply) may still land; the snapshot must
	// never exceed the totals.
	if last.BytesRead > run.BytesRead || last.BytesWritten > run.BytesWritten {
		t.Errorf("final tick read/written %d/%d exceeds run totals %d/%d",
			last.BytesRead, last.BytesWritten, run.BytesRead, run.BytesWritten)
	}
}

// TestProgressDoesNotPerturbRun is the determinism guarantee: a run
// with a progress subscriber produces bit-identical values, metrics and
// virtual clock to one without.
func TestProgressDoesNotPerturbRun(t *testing.T) {
	edges, n := testGraph(7, false)
	und := graph.Undirected(edges)

	plain, plainRun, err := Run(testConfig(2, n, 5), &algorithms.BFS{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(2, n, 5)
	ticks := 0
	cfg.Progress = func(Progress) { ticks++ }
	got, run, err := Run(cfg, &algorithms.BFS{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	if ticks == 0 {
		t.Fatal("progress callback never fired")
	}
	if !reflect.DeepEqual(plain, got) {
		t.Error("vertex values drifted under a progress subscriber")
	}
	if !reflect.DeepEqual(plainRun, run) {
		t.Errorf("run metrics drifted under a progress subscriber:\n%+v\nvs\n%+v", run, plainRun)
	}
}
