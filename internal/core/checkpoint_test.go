package core

import (
	"testing"

	"chaos/internal/algorithms"
	"chaos/internal/graph"
	"chaos/internal/refalgo"
)

func TestCheckpointingPreservesResults(t *testing.T) {
	edges, n := testGraph(7, false)
	und := graph.Undirected(edges)
	want := refalgo.BFSLevels(graph.BuildAdjacency(und, n), 0)
	cfg := testConfig(4, n, 5)
	cfg.CheckpointEvery = 1
	values, run, err := Run(cfg, &algorithms.BFS{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		if values[i].Level != want[i] {
			t.Fatalf("vertex %d: level %d, want %d", i, values[i].Level, want[i])
		}
	}
	if run.CheckpointBytes == 0 {
		t.Error("checkpointing recorded no I/O")
	}
}

func TestCheckpointOverheadIsModest(t *testing.T) {
	// Figure 13: checkpoint overhead should be small (under 6% in the
	// paper; we allow a loose bound at lab scale where vertex state is a
	// larger share of total I/O).
	edges, n := testGraph(9, false)
	base := testConfig(4, n, 8)
	prog := &algorithms.PageRank{Iterations: 5}
	_, runBase, err := Run(base, prog, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	ck := base
	ck.CheckpointEvery = 1
	_, runCk, err := Run(ck, prog, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	if runCk.BytesWritten <= runBase.BytesWritten {
		t.Error("checkpointing should write extra bytes")
	}
	overhead := runCk.Runtime.Seconds()/runBase.Runtime.Seconds() - 1
	// Placement randomness differs between the runs, so allow noise on
	// the low side, but the overhead must stay modest (paper: under 6%
	// at scale; vertex state is a larger share of I/O at lab scale).
	if overhead < -0.05 || overhead > 0.5 {
		t.Errorf("checkpoint overhead %.1f%%, want small", 100*overhead)
	}
}

func TestFailureRecoveryFromCheckpoint(t *testing.T) {
	edges, n := testGraph(7, false)
	und := graph.Undirected(edges)
	want := refalgo.BFSLevels(graph.BuildAdjacency(und, n), 0)

	cfg := testConfig(4, n, 5)
	cfg.CheckpointEvery = 1
	cfg.FailAtIteration = 2 // transient failure after a checkpoint exists
	values, run, err := Run(cfg, &algorithms.BFS{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	if run.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", run.Recoveries)
	}
	for i := range values {
		if values[i].Level != want[i] {
			t.Fatalf("after recovery, vertex %d: level %d, want %d", i, values[i].Level, want[i])
		}
	}
}

func TestFailureRecoveryBitIdenticalToCleanRun(t *testing.T) {
	edges, n := testGraph(7, false)
	prog := &algorithms.PageRank{Iterations: 6}
	clean := testConfig(2, n, 8)
	clean.CheckpointEvery = 2
	a, _, err := Run(clean, prog, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	failed := clean
	failed.FailAtIteration = 5
	b, runB, err := Run(failed, prog, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	if runB.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", runB.Recoveries)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("vertex %d: %+v vs %+v after recovery", i, a[i], b[i])
		}
	}
}

func TestFailureWithoutCheckpointRejected(t *testing.T) {
	edges, n := testGraph(6, false)
	cfg := testConfig(2, n, 5)
	cfg.FailAtIteration = 2
	if _, _, err := Run(cfg, &algorithms.BFS{}, edges, n); err == nil {
		t.Error("failure injection without checkpointing should be rejected")
	}
}

func TestRuntimeIncludesPreprocessing(t *testing.T) {
	edges, n := testGraph(7, false)
	_, run, err := Run(testConfig(2, n, 5), &algorithms.BFS{}, graph.Undirected(edges), n)
	if err != nil {
		t.Fatal(err)
	}
	if run.Preprocess <= 0 || run.Preprocess >= run.Runtime {
		t.Errorf("preprocess %v not within runtime %v", run.Preprocess, run.Runtime)
	}
}

func TestDeterministicRuntimeForSeed(t *testing.T) {
	edges, n := testGraph(7, false)
	und := graph.Undirected(edges)
	cfg := testConfig(4, n, 5)
	_, a, err := Run(cfg, &algorithms.BFS{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := Run(cfg, &algorithms.BFS{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	if a.Runtime != b.Runtime || a.BytesRead != b.BytesRead {
		t.Errorf("identical seeds gave different runs: %v/%v vs %v/%v",
			a.Runtime, a.BytesRead, b.Runtime, b.BytesRead)
	}
	cfg2 := cfg
	cfg2.Seed = 99
	_, c, err := Run(cfg2, &algorithms.BFS{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	if c.Runtime == a.Runtime && c.BytesRead == a.BytesRead && c.StealsAccepted == a.StealsAccepted {
		t.Log("different seed produced identical run (possible but unlikely)")
	}
}
