// Package rmat generates R-MAT graphs (Chakrabarti, Zhan, Faloutsos, SDM
// 2004), the synthetic workload used throughout the Chaos evaluation. A
// scale-n graph has 2^n vertices and 2^(n+4) edges (§8), i.e. an average
// degree of 16, and a heavily skewed degree distribution — the skew is what
// makes streaming partitions unbalanced and work stealing worthwhile.
package rmat

import (
	"math/rand"

	"chaos/internal/graph"
)

// Default recursion probabilities, the values popularized by Graph500.
const (
	DefaultA = 0.57
	DefaultB = 0.19
	DefaultC = 0.19
	DefaultD = 0.05
)

// Generator produces R-MAT edges deterministically from a seed.
type Generator struct {
	// Scale is the R-MAT scale: 2^Scale vertices, 2^(Scale+4) edges.
	Scale int
	// A, B, C, D are the quadrant probabilities; they must sum to 1.
	A, B, C, D float64
	// Weighted attaches uniform [0,1) weights to edges.
	Weighted bool
	// Seed selects the random stream.
	Seed int64
	// NoiseSmoothing perturbs quadrant probabilities per level, the
	// standard trick that prevents exactly repeated degree ties.
	NoiseSmoothing bool
}

// New returns a generator for the given scale with default parameters.
func New(scale int, seed int64) *Generator {
	return &Generator{Scale: scale, A: DefaultA, B: DefaultB, C: DefaultC, D: DefaultD, Seed: seed}
}

// NumVertices returns 2^Scale.
func (g *Generator) NumVertices() uint64 { return 1 << uint(g.Scale) }

// NumEdges returns 2^(Scale+4).
func (g *Generator) NumEdges() uint64 { return 1 << uint(g.Scale+4) }

// Format returns the natural binary format for this graph (§8: compact
// below 2^32 vertices).
func (g *Generator) Format() graph.Format {
	return graph.FormatFor(g.NumVertices(), g.Weighted)
}

// Generate materializes the full edge list in memory. Intended for
// laboratory scales; for streaming use Each.
func (g *Generator) Generate() []graph.Edge {
	edges := make([]graph.Edge, 0, g.NumEdges())
	g.Each(func(e graph.Edge) { edges = append(edges, e) })
	return edges
}

// Each invokes fn for every generated edge in a deterministic order.
func (g *Generator) Each(fn func(graph.Edge)) {
	rng := rand.New(rand.NewSource(g.Seed))
	n := g.NumEdges()
	for i := uint64(0); i < n; i++ {
		fn(g.edge(rng))
	}
}

// edge draws one edge by recursive quadrant descent.
func (g *Generator) edge(rng *rand.Rand) graph.Edge {
	var src, dst uint64
	a, b, c := g.A, g.B, g.C
	for level := 0; level < g.Scale; level++ {
		pa, pb, pc := a, b, c
		if g.NoiseSmoothing {
			// +-10% multiplicative noise, renormalized.
			na := pa * (0.9 + 0.2*rng.Float64())
			nb := pb * (0.9 + 0.2*rng.Float64())
			nc := pc * (0.9 + 0.2*rng.Float64())
			nd := (1 - pa - pb - pc) * (0.9 + 0.2*rng.Float64())
			sum := na + nb + nc + nd
			pa, pb, pc = na/sum, nb/sum, nc/sum
		}
		r := rng.Float64()
		src <<= 1
		dst <<= 1
		switch {
		case r < pa:
			// top-left: no bits set
		case r < pa+pb:
			dst |= 1
		case r < pa+pb+pc:
			src |= 1
		default:
			src |= 1
			dst |= 1
		}
	}
	e := graph.Edge{Src: graph.VertexID(src), Dst: graph.VertexID(dst)}
	if g.Weighted {
		e.Weight = rng.Float32()
	}
	return e
}
