package rmat

import (
	"math"
	"sort"
	"testing"

	"chaos/internal/graph"
)

func TestScaleCounts(t *testing.T) {
	g := New(10, 1)
	if g.NumVertices() != 1024 {
		t.Errorf("vertices = %d, want 1024", g.NumVertices())
	}
	if g.NumEdges() != 16384 {
		t.Errorf("edges = %d, want 16384 (2^(n+4))", g.NumEdges())
	}
	edges := g.Generate()
	if uint64(len(edges)) != g.NumEdges() {
		t.Errorf("generated %d edges, want %d", len(edges), g.NumEdges())
	}
}

func TestAllIDsInRange(t *testing.T) {
	g := New(8, 3)
	n := graph.VertexID(g.NumVertices())
	for _, e := range g.Generate() {
		if e.Src >= n || e.Dst >= n {
			t.Fatalf("edge %+v out of range [0,%d)", e, n)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := New(8, 42).Generate()
	b := New(8, 42).Generate()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs across runs with equal seed", i)
		}
	}
	c := New(8, 43).Generate()
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical graphs")
	}
}

func TestDegreeSkew(t *testing.T) {
	// R-MAT graphs are heavily skewed: the max out-degree should far
	// exceed the mean (16), and low-ID vertices should be the hubs.
	g := New(12, 7)
	deg := make([]int, g.NumVertices())
	g.Each(func(e graph.Edge) { deg[e.Src]++ })
	sorted := append([]int(nil), deg...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	if sorted[0] < 100 {
		t.Errorf("max degree %d, want heavy skew (>=100 for scale 12)", sorted[0])
	}
	// Top 1%% of vertices should hold a disproportionate share of edges.
	top := 0
	for _, d := range sorted[:len(sorted)/100] {
		top += d
	}
	if frac := float64(top) / float64(g.NumEdges()); frac < 0.10 {
		t.Errorf("top 1%% of vertices hold %.2f of edges, want >= 0.10", frac)
	}
}

func TestQuadrantProbabilities(t *testing.T) {
	// With scale 1 the first bit split directly reflects (A,B,C,D).
	g := New(16, 9)
	var counts [4]float64
	g.Each(func(e graph.Edge) {
		hi := uint64(g.NumVertices() / 2)
		q := 0
		if uint64(e.Src) >= hi {
			q += 2
		}
		if uint64(e.Dst) >= hi {
			q++
		}
		counts[q]++
	})
	total := float64(g.NumEdges())
	want := [4]float64{g.A, g.B, g.C, g.D}
	for q := range counts {
		got := counts[q] / total
		if math.Abs(got-want[q]) > 0.02 {
			t.Errorf("quadrant %d frequency %.3f, want %.3f +- 0.02", q, got, want[q])
		}
	}
}

func TestWeightedEdges(t *testing.T) {
	g := New(8, 5)
	g.Weighted = true
	for _, e := range g.Generate() {
		if e.Weight < 0 || e.Weight >= 1 {
			t.Fatalf("weight %f out of [0,1)", e.Weight)
		}
	}
	if !g.Format().Weighted {
		t.Error("format should be weighted")
	}
}

func TestFormatSelection(t *testing.T) {
	if f := New(10, 1).Format(); !f.Compact {
		t.Error("scale-10 should use compact format")
	}
	if f := New(33, 1).Format(); f.Compact {
		t.Error("scale-33 (2^33 vertices) must use non-compact format")
	}
}

func TestNoiseSmoothingStaysInRange(t *testing.T) {
	g := New(8, 11)
	g.NoiseSmoothing = true
	n := graph.VertexID(g.NumVertices())
	for _, e := range g.Generate() {
		if e.Src >= n || e.Dst >= n {
			t.Fatalf("edge %+v out of range with noise smoothing", e)
		}
	}
}
