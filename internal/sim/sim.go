// Package sim provides a small deterministic discrete-event simulation
// kernel used to model a Chaos cluster: virtual time, cooperatively
// scheduled processes, FIFO bandwidth/latency resources (storage devices,
// NICs), mailboxes and barriers.
//
// Exactly one process runs at any moment; the scheduler hands control to
// the process whose next event is earliest, with a monotonically increasing
// sequence number breaking ties. All randomness must come from Env.Rand.
// Runs with equal seeds are therefore bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"runtime"
)

// Time is virtual time in nanoseconds since the start of the simulation.
type Time int64

// Convenient virtual-time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a duration expressed in seconds to a Time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// Seconds reports the duration in (fractional) seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// event is a scheduled occurrence: either a callback run in scheduler
// context or the wake-up of a parked process.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	proc *Proc
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Env is a simulation environment. The zero value is not usable; create
// environments with NewEnv.
type Env struct {
	now     Time
	events  eventHeap
	seq     uint64
	resume  chan struct{}
	procs   []*Proc
	rng     *rand.Rand
	stopped bool
	nevents uint64
	// free recycles event structs between heap pops and pushes; a busy
	// simulation fires millions of events and the per-event allocation
	// otherwise dominates the scheduler's cost.
	free []*event
}

// newEvent takes an event from the free list or allocates one.
func (e *Env) newEvent(at Time, fn func(), p *Proc) *event {
	e.seq++
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn, ev.proc = at, e.seq, fn, p
		return ev
	}
	return &event{at: at, seq: e.seq, fn: fn, proc: p}
}

// NewEnv returns an environment whose random choices derive from seed.
func NewEnv(seed int64) *Env {
	return &Env{
		resume: make(chan struct{}),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Rand returns the environment's deterministic random source. It must only
// be used from process context or scheduler callbacks, never concurrently.
func (e *Env) Rand() *rand.Rand { return e.rng }

// Events reports the total number of events fired so far.
func (e *Env) Events() uint64 { return e.nevents }

// At schedules fn to run in scheduler context at time t. Scheduling in the
// past panics: it would break causality.
func (e *Env) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	heap.Push(&e.events, e.newEvent(t, fn, nil))
}

// After schedules fn to run d from now.
func (e *Env) After(d Time, fn func()) { e.At(e.now+d, fn) }

func (e *Env) scheduleWake(t Time, p *Proc) {
	if t < e.now {
		panic(fmt.Sprintf("sim: waking %s at %v before now %v", p.name, t, e.now))
	}
	heap.Push(&e.events, e.newEvent(t, nil, p))
}

// Run drives the simulation until no events remain, and returns the final
// virtual time. Processes still blocked afterwards can be inspected with
// Stuck; call Close to release their goroutines.
func (e *Env) Run() Time {
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		e.nevents++
		p, fn := ev.proc, ev.fn
		ev.fn, ev.proc = nil, nil
		e.free = append(e.free, ev)
		if p != nil {
			if p.state == procDone {
				continue
			}
			p.state = procRunning
			p.wake <- struct{}{}
			<-e.resume
		} else {
			fn()
		}
	}
	return e.now
}

// Stuck returns the names of processes that are still parked (typically
// waiting on a mailbox that will never receive). A correct simulation
// finishes with no stuck processes.
func (e *Env) Stuck() []string {
	var s []string
	for _, p := range e.procs {
		if p.state == procParked {
			s = append(s, p.name+" ["+p.blockedOn+"]")
		}
	}
	return s
}

// Close terminates all parked process goroutines. The environment must not
// be used afterwards.
func (e *Env) Close() {
	e.stopped = true
	for _, p := range e.procs {
		if p.state == procParked {
			p.wake <- struct{}{}
			<-e.resume
		}
	}
}

// procState tracks where a process is in its lifecycle.
type procState int8

const (
	procParked procState = iota
	procRunning
	procDone
)

// Proc is a simulated process: a goroutine that runs only when the
// scheduler hands it control and parks whenever it waits for virtual time
// or a message.
type Proc struct {
	env       *Env
	name      string
	wake      chan struct{}
	state     procState
	blockedOn string
}

// Spawn starts a new process executing fn. The process first runs at the
// current virtual time, after already-queued events.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, wake: make(chan struct{})}
	e.procs = append(e.procs, p)
	go func() {
		<-p.wake
		if e.stopped {
			p.state = procDone
			e.resume <- struct{}{}
			return
		}
		fn(p)
		p.state = procDone
		e.resume <- struct{}{}
	}()
	e.scheduleWake(e.now, p)
	return p
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// park yields control to the scheduler until another event wakes p.
func (p *Proc) park(why string) {
	p.state = procParked
	p.blockedOn = why
	p.env.resume <- struct{}{}
	<-p.wake
	p.blockedOn = ""
	if p.env.stopped {
		p.state = procDone
		p.env.resume <- struct{}{}
		runtime.Goexit()
	}
}

// Sleep advances the process's local time by d.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	p.env.scheduleWake(p.env.now+d, p)
	p.park("sleep")
}

// SleepUntil parks the process until virtual time t (a no-op if t is not in
// the future).
func (p *Proc) SleepUntil(t Time) {
	if t <= p.env.now {
		return
	}
	p.env.scheduleWake(t, p)
	p.park("sleep-until")
}

// Yield reschedules the process at the current time, letting every event
// already queued for this instant run first.
func (p *Proc) Yield() {
	p.env.scheduleWake(p.env.now, p)
	p.park("yield")
}
