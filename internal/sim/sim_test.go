package sim

import (
	"testing"
	"testing/quick"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	env := NewEnv(1)
	var woke Time
	env.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * Second)
		woke = p.Now()
	})
	end := env.Run()
	if woke != 5*Second {
		t.Errorf("woke at %v, want 5s", woke)
	}
	if end != 5*Second {
		t.Errorf("run ended at %v, want 5s", end)
	}
}

func TestEventOrderingIsDeterministic(t *testing.T) {
	run := func(seed int64) []int {
		env := NewEnv(seed)
		var order []int
		for i := 0; i < 10; i++ {
			i := i
			d := Time(env.Rand().Intn(5)) * Second
			env.Spawn("p", func(p *Proc) {
				p.Sleep(d)
				order = append(order, i)
			})
		}
		env.Run()
		return order
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs with equal seeds diverged: %v vs %v", a, b)
		}
	}
}

func TestSameTimeEventsFireInScheduleOrder(t *testing.T) {
	env := NewEnv(1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		env.At(Second, func() { order = append(order, i) })
	}
	env.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of order: %v", order)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	env := NewEnv(1)
	env.Spawn("p", func(p *Proc) { p.Sleep(Second) })
	env.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	env.At(0, func() {})
}

func TestResourceFIFOQueueing(t *testing.T) {
	env := NewEnv(1)
	res := NewResource(env, "disk", 100, 0) // 100 B/s
	var done [2]Time
	for i := 0; i < 2; i++ {
		i := i
		env.Spawn("user", func(p *Proc) {
			done[i] = res.Use(p, 100) // 1s service each
		})
	}
	env.Run()
	if done[0] != Second || done[1] != 2*Second {
		t.Errorf("completion times %v, want 1s and 2s", done)
	}
	if got := res.BusyTime(); got != 2*Second {
		t.Errorf("busy time %v, want 2s", got)
	}
	if got := res.Bytes(); got != 200 {
		t.Errorf("bytes %d, want 200", got)
	}
}

func TestResourceLatencyAndBandwidthCompose(t *testing.T) {
	env := NewEnv(1)
	res := NewResource(env, "disk", 1000, 100*Millisecond)
	if got := res.ServiceTime(500); got != 600*Millisecond {
		t.Errorf("service time %v, want 600ms", got)
	}
	// Zero bandwidth means infinitely fast: latency only.
	inf := NewResource(env, "fast", 0, 10*Millisecond)
	if got := inf.ServiceTime(1 << 30); got != 10*Millisecond {
		t.Errorf("service time %v, want 10ms", got)
	}
}

func TestResourceScheduleCallback(t *testing.T) {
	env := NewEnv(1)
	res := NewResource(env, "disk", 100, 0)
	var at Time
	res.Schedule(50, func() { at = env.Now() })
	env.Run()
	if at != 500*Millisecond {
		t.Errorf("callback at %v, want 0.5s", at)
	}
}

func TestResourceUtilization(t *testing.T) {
	env := NewEnv(1)
	res := NewResource(env, "disk", 100, 0)
	env.Spawn("u", func(p *Proc) {
		res.Use(p, 100) // busy 1s
		p.Sleep(Second) // idle 1s
	})
	env.Run()
	if got := res.Utilization(); got != 0.5 {
		t.Errorf("utilization %f, want 0.5", got)
	}
}

func TestMailboxDeliveryWakesReceiver(t *testing.T) {
	env := NewEnv(1)
	mb := NewMailbox(env, "inbox")
	var got any
	var at Time
	env.Spawn("recv", func(p *Proc) {
		got = mb.Recv(p)
		at = p.Now()
	})
	env.Spawn("send", func(p *Proc) {
		p.Sleep(3 * Second)
		mb.Put("hello")
	})
	env.Run()
	if got != "hello" || at != 3*Second {
		t.Errorf("got %v at %v, want hello at 3s", got, at)
	}
}

func TestMailboxPutAfterModelsDelay(t *testing.T) {
	env := NewEnv(1)
	mb := NewMailbox(env, "inbox")
	var at Time
	env.Spawn("recv", func(p *Proc) {
		mb.Recv(p)
		at = p.Now()
	})
	mb.PutAfter(7*Second, 1)
	env.Run()
	if at != 7*Second {
		t.Errorf("received at %v, want 7s", at)
	}
}

func TestMailboxPreservesFIFO(t *testing.T) {
	env := NewEnv(1)
	mb := NewMailbox(env, "inbox")
	var got []int
	env.Spawn("recv", func(p *Proc) {
		for i := 0; i < 10; i++ {
			got = append(got, mb.Recv(p).(int))
		}
	})
	env.Spawn("send", func(p *Proc) {
		for i := 0; i < 10; i++ {
			mb.Put(i)
			p.Sleep(Millisecond)
		}
	})
	env.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("messages out of order: %v", got)
		}
	}
}

func TestBarrierReleasesAllAtOnce(t *testing.T) {
	env := NewEnv(1)
	b := NewBarrier(env, 3)
	var times []Time
	for i := 0; i < 3; i++ {
		d := Time(i) * Second
		env.Spawn("p", func(p *Proc) {
			p.Sleep(d)
			b.Wait(p)
			times = append(times, p.Now())
		})
	}
	env.Run()
	if len(times) != 3 {
		t.Fatalf("only %d parties released", len(times))
	}
	for _, tm := range times {
		if tm != 2*Second {
			t.Errorf("released at %v, want 2s (slowest arrival)", tm)
		}
	}
}

func TestBarrierIsReusable(t *testing.T) {
	env := NewEnv(1)
	b := NewBarrier(env, 2)
	var rounds int
	for i := 0; i < 2; i++ {
		env.Spawn("p", func(p *Proc) {
			for r := 0; r < 5; r++ {
				p.Sleep(Time(env.Rand().Intn(3)) * Second)
				b.Wait(p)
			}
			rounds++
		})
	}
	env.Run()
	if rounds != 2 {
		t.Errorf("%d processes finished, want 2 (deadlock in reuse?)", rounds)
	}
	if s := env.Stuck(); len(s) != 0 {
		t.Errorf("stuck processes: %v", s)
	}
}

func TestCounterWaitZero(t *testing.T) {
	env := NewEnv(1)
	c := NewCounter(env)
	c.Add(3)
	var at Time
	env.Spawn("waiter", func(p *Proc) {
		c.WaitZero(p)
		at = p.Now()
	})
	for i := 1; i <= 3; i++ {
		env.At(Time(i)*Second, func() { c.Done() })
	}
	env.Run()
	if at != 3*Second {
		t.Errorf("released at %v, want 3s", at)
	}
}

func TestStuckDetection(t *testing.T) {
	env := NewEnv(1)
	mb := NewMailbox(env, "never")
	env.Spawn("lost", func(p *Proc) { mb.Recv(p) })
	env.Run()
	if s := env.Stuck(); len(s) != 1 {
		t.Fatalf("stuck = %v, want one entry", s)
	}
	env.Close()
	if s := env.Stuck(); len(s) != 0 {
		t.Errorf("after Close stuck = %v, want none", s)
	}
}

func TestResourceFreeAtNeverRegresses(t *testing.T) {
	// Property: for any request sequence, completion times are
	// non-decreasing and busy time equals the sum of service times.
	f := func(sizes []uint16) bool {
		env := NewEnv(7)
		res := NewResource(env, "d", 1e6, Microsecond)
		var last Time
		var busy Time
		ok := true
		env.Spawn("u", func(p *Proc) {
			for _, s := range sizes {
				busy += res.ServiceTime(int64(s))
				done := res.Use(p, int64(s))
				if done < last {
					ok = false
				}
				last = done
			}
		})
		env.Run()
		return ok && res.BusyTime() == busy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSpawnAfterRunContinues(t *testing.T) {
	env := NewEnv(1)
	env.Spawn("a", func(p *Proc) { p.Sleep(Second) })
	env.Run()
	var ran bool
	env.Spawn("b", func(p *Proc) { ran = true })
	env.Run()
	if !ran {
		t.Error("process spawned after first Run never ran")
	}
}

func TestYieldRunsQueuedEventsFirst(t *testing.T) {
	env := NewEnv(1)
	var order []string
	env.Spawn("a", func(p *Proc) {
		env.At(env.Now(), func() { order = append(order, "event") })
		p.Yield()
		order = append(order, "proc")
	})
	env.Run()
	if len(order) != 2 || order[0] != "event" || order[1] != "proc" {
		t.Errorf("order = %v, want [event proc]", order)
	}
}
