package sim

import "fmt"

// Resource models a FIFO server with a fixed per-operation latency and a
// byte bandwidth: a storage device, a NIC, or a CPU complex. Requests are
// served in arrival order; a request arriving while the server is busy
// queues behind the previous one. The model is the standard single-server
// queue shortcut: rather than simulating the queue explicitly, the server
// tracks the time at which it next becomes free.
type Resource struct {
	env *Env
	// Name identifies the resource in statistics output.
	Name string
	// BytesPerSec is the service bandwidth; zero means infinitely fast.
	BytesPerSec float64
	// Latency is the fixed per-operation overhead (seek, request setup).
	Latency Time

	freeAt Time
	busy   Time
	bytes  int64
	ops    int64
}

// NewResource creates a FIFO resource attached to env.
func NewResource(env *Env, name string, bytesPerSec float64, latency Time) *Resource {
	return &Resource{env: env, Name: name, BytesPerSec: bytesPerSec, Latency: latency}
}

// ServiceTime returns the raw service time for an operation of the given
// size, excluding queueing.
func (r *Resource) ServiceTime(bytes int64) Time {
	t := r.Latency
	if r.BytesPerSec > 0 {
		t += Time(float64(bytes) / r.BytesPerSec * float64(Second))
	}
	return t
}

// reserve books an operation and returns its completion time.
func (r *Resource) reserve(bytes int64) Time {
	start := r.env.now
	if r.freeAt > start {
		start = r.freeAt
	}
	svc := r.ServiceTime(bytes)
	r.freeAt = start + svc
	r.busy += svc
	r.bytes += bytes
	r.ops++
	return r.freeAt
}

// Use performs a blocking operation of the given size from process context:
// the process queues, is served, and resumes when the operation completes.
// It returns the completion time.
func (r *Resource) Use(p *Proc, bytes int64) Time {
	done := r.reserve(bytes)
	p.SleepUntil(done)
	return done
}

// Schedule books a non-blocking operation and invokes fn (in scheduler
// context) when it completes. fn may be nil.
func (r *Resource) Schedule(bytes int64, fn func()) Time {
	done := r.reserve(bytes)
	if fn != nil {
		r.env.At(done, fn)
	}
	return done
}

// BusyTime returns the cumulative time this resource has spent serving.
func (r *Resource) BusyTime() Time { return r.busy }

// Bytes returns the cumulative bytes served.
func (r *Resource) Bytes() int64 { return r.bytes }

// Ops returns the number of operations served.
func (r *Resource) Ops() int64 { return r.ops }

// Utilization returns busy time divided by elapsed virtual time.
func (r *Resource) Utilization() float64 {
	if r.env.now == 0 {
		return 0
	}
	return float64(r.busy) / float64(r.env.now)
}

func (r *Resource) String() string {
	return fmt.Sprintf("%s{bw=%.0fB/s lat=%v util=%.1f%%}", r.Name, r.BytesPerSec, r.Latency, 100*r.Utilization())
}
