package sim

// Mailbox is an unbounded FIFO message queue with at most one waiting
// receiver, the usual shape for an actor-style engine inbox. Senders never
// block; a receiver parks until a message arrives.
type Mailbox struct {
	env    *Env
	name   string
	q      []any
	waiter *Proc
}

// NewMailbox creates a mailbox attached to env.
func NewMailbox(env *Env, name string) *Mailbox {
	return &Mailbox{env: env, name: name}
}

// Len returns the number of queued messages.
func (m *Mailbox) Len() int { return len(m.q) }

// Put delivers msg immediately (at the current virtual time), waking the
// receiver if one is parked. It may be called from process or scheduler
// context.
func (m *Mailbox) Put(msg any) {
	m.q = append(m.q, msg)
	if m.waiter != nil {
		w := m.waiter
		m.waiter = nil
		m.env.scheduleWake(m.env.now, w)
	}
}

// PutAfter delivers msg d from now. It models transmission or processing
// delays without tying up the sending process.
func (m *Mailbox) PutAfter(d Time, msg any) {
	m.env.After(d, func() { m.Put(msg) })
}

// Recv returns the next message, parking the calling process until one is
// available. Only one process may wait on a mailbox at a time.
func (m *Mailbox) Recv(p *Proc) any {
	for len(m.q) == 0 {
		if m.waiter != nil && m.waiter != p {
			panic("sim: two processes waiting on mailbox " + m.name)
		}
		m.waiter = p
		p.park("recv " + m.name)
	}
	msg := m.q[0]
	m.q[0] = nil
	m.q = m.q[1:]
	return msg
}

// TryRecv returns the next message without blocking; ok is false if the
// mailbox is empty.
func (m *Mailbox) TryRecv() (msg any, ok bool) {
	if len(m.q) == 0 {
		return nil, false
	}
	msg = m.q[0]
	m.q[0] = nil
	m.q = m.q[1:]
	return msg, true
}

// Barrier makes n processes rendezvous: each caller parks until all n have
// arrived, then all resume at the same virtual time. Barriers are reusable
// (generation-counted).
type Barrier struct {
	env     *Env
	n       int
	arrived int
	waiting []*Proc
}

// NewBarrier creates a barrier for n parties.
func NewBarrier(env *Env, n int) *Barrier {
	if n <= 0 {
		panic("sim: barrier requires at least one party")
	}
	return &Barrier{env: env, n: n}
}

// Wait blocks p until all parties have arrived.
func (b *Barrier) Wait(p *Proc) {
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		for _, w := range b.waiting {
			b.env.scheduleWake(b.env.now, w)
		}
		b.waiting = b.waiting[:0]
		return
	}
	b.waiting = append(b.waiting, p)
	p.park("barrier")
}

// Counter is a WaitGroup analogue: WaitZero parks until the count returns
// to zero. It tracks, for example, unacknowledged asynchronous writes.
type Counter struct {
	env    *Env
	n      int
	waiter *Proc
}

// NewCounter creates a counter attached to env.
func NewCounter(env *Env) *Counter { return &Counter{env: env} }

// Add increments the counter by k.
func (c *Counter) Add(k int) { c.n += k }

// Value returns the current count.
func (c *Counter) Value() int { return c.n }

// Done decrements the counter, waking a parked WaitZero caller when it
// reaches zero.
func (c *Counter) Done() {
	c.n--
	if c.n < 0 {
		panic("sim: counter went negative")
	}
	if c.n == 0 && c.waiter != nil {
		w := c.waiter
		c.waiter = nil
		c.env.scheduleWake(c.env.now, w)
	}
}

// WaitZero parks p until the counter is zero.
func (c *Counter) WaitZero(p *Proc) {
	for c.n > 0 {
		if c.waiter != nil && c.waiter != p {
			panic("sim: two processes waiting on counter")
		}
		c.waiter = p
		p.park("counter")
	}
}
