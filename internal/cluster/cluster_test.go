package cluster

import (
	"testing"

	"chaos/internal/sim"
)

func TestSpecPresets(t *testing.T) {
	s := SSD(32)
	if s.Machines != 32 || s.Cores != 16 {
		t.Errorf("SSD preset wrong: %+v", s)
	}
	h := HDD(4)
	if h.StorageBytesPerSec >= s.StorageBytesPerSec {
		t.Error("HDD should be slower than SSD")
	}
	g := GigE1(s)
	if g.NICBytesPerSec >= s.NICBytesPerSec {
		t.Error("1GigE should be slower than 40GigE")
	}
	if g.NICBytesPerSec >= h.StorageBytesPerSec {
		t.Error("1GigE must be slower than disk bandwidth (the Figure 12 premise)")
	}
}

func TestEffNICBandwidthCoreLimited(t *testing.T) {
	s := SSD(1)
	full := s.effNICBandwidth()
	s8 := WithCores(s, 8)
	if s8.effNICBandwidth() >= full {
		t.Errorf("8 cores should limit NIC: %g vs %g", s8.effNICBandwidth(), full)
	}
	if s8.Cores != 8 {
		t.Error("WithCores did not set cores")
	}
}

func TestSendChargesNetworkPath(t *testing.T) {
	env := sim.NewEnv(1)
	c := New(env, SSD(2))
	mb := sim.NewMailbox(env, "in")
	var at sim.Time
	env.Spawn("recv", func(p *sim.Proc) {
		mb.Recv(p)
		at = p.Now()
	})
	c.Send(0, 1, 5*GB, mb, "big") // 1s egress + hop + 1s ingress
	env.Run()
	want := 2*sim.Second + c.Spec.NetHopLatency
	if at != want {
		t.Errorf("arrival at %v, want %v", at, want)
	}
	if c.Machines[0].NICOut.Bytes() != 5*GB || c.Machines[1].NICIn.Bytes() != 5*GB {
		t.Error("NIC accounting wrong")
	}
}

func TestLoopbackSkipsNIC(t *testing.T) {
	env := sim.NewEnv(1)
	c := New(env, SSD(2))
	mb := sim.NewMailbox(env, "in")
	env.Spawn("recv", func(p *sim.Proc) { mb.Recv(p) })
	c.Send(1, 1, 1<<30, mb, "local")
	env.Run()
	if c.Machines[1].NICIn.Bytes() != 0 || c.Machines[1].NICOut.Bytes() != 0 {
		t.Error("loopback should not touch the NIC")
	}
}

func TestSendsSerializeOnNIC(t *testing.T) {
	env := sim.NewEnv(1)
	c := New(env, SSD(2))
	mb := sim.NewMailbox(env, "in")
	var times []sim.Time
	env.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			mb.Recv(p)
			times = append(times, p.Now())
		}
	})
	c.Send(0, 1, 5*GB, mb, 1)
	c.Send(0, 1, 5*GB, mb, 2)
	env.Run()
	if len(times) != 2 {
		t.Fatalf("got %d messages", len(times))
	}
	if times[1]-times[0] < sim.Second {
		t.Errorf("second message arrived %v after first; NIC egress should serialize by 1s", times[1]-times[0])
	}
}

func TestPhiAboveOneForPaperConfig(t *testing.T) {
	// The window amplification must exceed 1 (requests spend real time
	// in the network) but stay small; the paper measured phi = 2 on its
	// stack, ours models a faster one (about 1.1).
	env := sim.NewEnv(1)
	c := New(env, SSD(32))
	phi := c.Phi(4 << 20)
	if phi <= 1.0 || phi > 2.5 {
		t.Errorf("phi = %.2f, want in (1, 2.5]", phi)
	}
	// Smaller chunks raise phi: fixed latencies loom larger.
	if c.Phi(4<<10) <= phi {
		t.Error("phi should grow as chunks shrink")
	}
}

func TestAggregateBandwidthScalesLinearly(t *testing.T) {
	env := sim.NewEnv(1)
	c1 := New(env, SSD(1))
	c32 := New(env, SSD(32))
	if c32.AggregateStorageBandwidth() != 32*c1.AggregateStorageBandwidth() {
		t.Error("aggregate bandwidth should scale with machine count")
	}
}

func TestDeviceUtilizationAveraged(t *testing.T) {
	env := sim.NewEnv(1)
	c := New(env, SSD(2))
	env.Spawn("u", func(p *sim.Proc) {
		c.Machines[0].Device.Use(p, int64(400*MB)) // ~1s busy
		p.Sleep(sim.Second)                        // total 2s elapsed
	})
	env.Run()
	u := c.DeviceUtilization()
	if u < 0.2 || u > 0.3 {
		t.Errorf("mean utilization %.2f, want about 0.25 (one of two devices busy half the time)", u)
	}
	if c.BytesMoved() != int64(400*MB) {
		t.Errorf("bytes moved %d", c.BytesMoved())
	}
}
